package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// word.Caps is the single capability probe for the optional Mem fast
// paths. Every consumer takes a word.MemCaps at construction time; ad-hoc
// type asserts of the optional interfaces scattered through call sites
// are the failure mode this guard locks out.
func TestNoAdHocCapabilityAsserts(t *testing.T) {
	assertRE := regexp.MustCompile(`\.\(\s*word\.(BatchMem|BatchReadMem|ContentRetainer|BatchIntoMem|DurableMem)\s*\)`)
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || path == filepath.Join("internal", "word") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if assertRE.MatchString(line) {
				t.Errorf("%s:%d: ad-hoc capability assert %q — probe once with word.Caps instead",
					path, i+1, strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
}
