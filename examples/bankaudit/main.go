// The paper's introduction example (§2.2): auditing every account balance
// at a consistent point in time while customer transactions keep
// committing. The auditor snapshots the account segment's root PLID —
// that single register copy *is* the consistent read — and iterates at
// leisure; concurrent transfers proceed with merge-update and are never
// stalled. A database needs block copying and undo to do this; HICAMP's
// immutable DAG gives it away for free.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/hds"
	"repro/internal/iterreg"
	"repro/internal/merge"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

const (
	accounts       = 2000
	initialBalance = 1000
	transfers      = 400
	tellers        = 6
)

func main() {
	h := hds.NewHeap(core.DefaultConfig(16))

	// The ledger: one segment, one word per account, merge-update so
	// disjoint transfers commit concurrently.
	tx := segment.NewTxn(h.M, segment.NewSparse(0))
	for a := 0; a < accounts; a++ {
		tx.WriteWord(uint64(a), initialBalance, word.TagRaw)
	}
	ledger := h.SM.Create(segmap.Entry{
		Seg: tx.Commit(), Flags: segmap.FlagMergeUpdate, Size: accounts * 8,
	})

	var committed int64
	var wg sync.WaitGroup

	// Tellers move money between accounts, concurrently.
	for t := 0; t < tellers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := uint64((t*transfers + i) % accounts)
				to := uint64((t*transfers + i*7 + 13) % accounts)
				if from == to {
					continue
				}
				for {
					it, err := iterreg.Open(h.M, h.SM, ledger)
					if err != nil {
						log.Fatal(err)
					}
					fb, _ := it.Load(from)
					tb, _ := it.Load(to)
					if fb < 10 {
						it.Close()
						break
					}
					it.Store(from, fb-10, word.TagRaw)
					it.Store(to, tb+10, word.TagRaw)
					ok, err := it.CommitMerge(accounts * 8)
					it.Close()
					if err == merge.ErrConflict {
						continue // same-account race: retry
					}
					if err != nil {
						log.Fatal(err)
					}
					if ok {
						atomic.AddInt64(&committed, 1)
						break
					}
				}
			}
		}(t)
	}

	// The auditor: snapshot once, sum all balances with an iterator
	// register while the tellers keep committing underneath.
	wg.Add(1)
	var auditTotal uint64
	go func() {
		defer wg.Done()
		snap, err := iterreg.Open(h.M, h.SM, segmap.ReadOnlyRef(ledger))
		if err != nil {
			log.Fatal(err)
		}
		defer snap.Close()
		for a := uint64(0); a < accounts; a++ {
			v, _ := snap.Load(a)
			auditTotal += v
		}
	}()
	wg.Wait()

	// Conservation law: the audit saw a consistent cut, and the final
	// state conserves money exactly.
	want := uint64(accounts * initialBalance)
	if auditTotal != want {
		log.Fatalf("audit saw a torn state: %d != %d", auditTotal, want)
	}
	final, _ := iterreg.Open(h.M, h.SM, segmap.ReadOnlyRef(ledger))
	defer final.Close()
	var finalTotal uint64
	for a := uint64(0); a < accounts; a++ {
		v, _ := final.Load(a)
		finalTotal += v
	}
	fmt.Printf("%d transfers committed by %d tellers during the audit\n", committed, tellers)
	fmt.Printf("audit total:  %d (consistent snapshot: money conserved)\n", auditTotal)
	fmt.Printf("final total:  %d (still conserved after all commits)\n", finalTotal)
	if finalTotal != want {
		log.Fatal("money not conserved")
	}
	ok, fail := h.SM.CASStats()
	fmt.Printf("segment-map commits: %d succeeded, %d conflicted and merged/retried\n", ok, fail)
}
