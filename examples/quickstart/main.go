// Quickstart: the HICAMP memory model in five minutes — content-unique
// segments, O(1) equality, zero-cost snapshots, copy-on-write updates and
// single-CAS atomic publication.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/hds"
	"repro/internal/iterreg"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

func main() {
	// A machine is the simulated memory system: deduplicated DRAM behind
	// the HICAMP cache. DefaultConfig(16) is the paper's configuration
	// with 16-byte lines.
	h := hds.NewHeap(core.DefaultConfig(16))

	// 1. Content uniqueness: equal contents get equal root PLIDs, so
	// comparing two strings is comparing two machine words (§2.2).
	a := hds.NewString(h, []byte("This is a long string containing Another string"))
	b := hds.NewString(h, []byte("This is a long string containing Another string"))
	fmt.Printf("a == b in O(1): %v (both roots %#x)\n", a.Equal(b), a.Key())

	// 2. Deduplication: storing the same content twice allocates nothing.
	before := h.M.LiveLines()
	c := hds.NewString(h, []byte("This is a long string containing Another string"))
	fmt.Printf("lines allocated by the third copy: %d\n", h.M.LiveLines()-before)
	c.Release(h)

	// 3. Segments publish through the virtual segment map; readers get
	// snapshots that no writer can disturb (§2.3).
	seg := segment.BuildWords(h.M, []uint64{10, 20, 30, 40}, nil)
	vsid := h.SM.Create(segmap.Entry{Seg: seg, Size: 32})

	reader, err := iterreg.Open(h.M, h.SM, segmap.ReadOnlyRef(vsid))
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()

	// 4. Copy-on-write update through an iterator register (§3.3): write
	// into transient lines, commit with one CAS.
	writer, err := iterreg.Open(h.M, h.SM, vsid)
	if err != nil {
		log.Fatal(err)
	}
	defer writer.Close()
	writer.Store(1, 999, word.TagRaw)
	if ok, err := writer.TryCommit(32); !ok || err != nil {
		log.Fatalf("commit: %v %v", ok, err)
	}

	snapVal, _ := reader.Load(1)
	fresh, _ := iterreg.Open(h.M, h.SM, vsid)
	defer fresh.Close()
	newVal, _ := fresh.Load(1)
	fmt.Printf("reader's snapshot still sees %d; new readers see %d\n", snapVal, newVal)

	// 5. The memory system is observable: every simulated DRAM access is
	// accounted by category (the Figure 6 stack).
	st := h.M.Stats()
	fmt.Printf("DRAM accesses so far: %d (lookups %d, RC %d)\n",
		st.Store.Total(), st.Store.LookupTraffic(), st.Store.RCTraffic())

	a.Release(h)
	b.Release(h)
	fmt.Printf("live lines: %d\n", h.M.LiveLines())
}
