// The §5.3 scenario: virtual-machine hosting. Scale out VMmark-style
// workloads and compare plain allocation, an ideal page-sharing
// hypervisor, and HICAMP 64-byte line deduplication.
package main

import (
	"fmt"

	"repro/internal/vmhost"
)

func main() {
	fmt.Println("memory consumed by 10 VMs of each workload (model scale, MB):")
	fmt.Printf("%-10s %10s %12s %10s %8s %8s\n",
		"workload", "allocated", "page-share", "hicamp64", "ps_x", "hic_x")
	for _, c := range vmhost.Classes() {
		pts := vmhost.ScaleVMs(c, 10)
		p := pts[len(pts)-1]
		fmt.Printf("%-10s %10.2f %12.2f %10.2f %7.2fx %7.2fx\n",
			c.Name,
			float64(p.Allocated)/(1<<20),
			float64(p.PageShared)/(1<<20),
			float64(p.Hicamp)/(1<<20),
			p.CompactionPageShare(), p.CompactionHicamp())
	}

	fmt.Println("\nscaling whole VMmark tiles (6 VMs each):")
	for _, p := range vmhost.ScaleTiles(10) {
		fmt.Printf("  %2d tiles: allocated %7.1f MB  page-share %6.1f MB (%.2fx)  hicamp %6.1f MB (%.2fx)\n",
			p.N,
			float64(p.Allocated)/(1<<20),
			float64(p.PageShared)/(1<<20), p.CompactionPageShare(),
			float64(p.Hicamp)/(1<<20), p.CompactionHicamp())
	}
	fmt.Println("\nline-level dedup wins where page sharing cannot: pages that")
	fmt.Println("differ in a few cache lines (guest page tables, timestamps,")
	fmt.Println("per-VM config) still share every unchanged 64-byte line.")
}
