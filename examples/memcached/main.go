// The §4.4 scenario in its purest form: memcached as direct shared
// memory. Concurrent client goroutines read a shared key-value map
// under snapshot isolation while writers commit with merge-update — no
// locks, no lost updates, and hardware-enforced isolation (a reader
// holds a read-only capability and physically cannot corrupt the map).
//
// This is the in-process baseline: clients touch the store through
// plain function calls, so what it measures is the data structure
// itself. The real server — the memcached text protocol over TCP, with
// every connection's in-flight requests aggregated into shared gather
// and commit waves — is cmd/hicampd on internal/netfront; run
// `hicampd -addr :11211` and point any memcached client (or nc) at it.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/kvstore"
)

func main() {
	srv := kvstore.NewHicampServer(core.DefaultConfig(16))

	// Preload a working set through the bulk path: one wave commit
	// instead of 200 per-key commits.
	keys := make([]string, 200)
	vals := make([][]byte, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("page:%04d", i)
		vals[i] = []byte(fmt.Sprintf("<html><body>cached page %d</body></html>", i))
	}
	batch := make(kvstore.Batch, len(keys))
	for i := range keys {
		batch[i] = kvstore.KV{Key: []byte(keys[i]), Value: vals[i]}
	}
	if err := srv.Write(batch); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	var gets, hits, sets int64
	var mu sync.Mutex

	// Eight "client threads": six readers with their own iterator
	// registers, two writers updating overlapping keys concurrently.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reader, err := srv.OpenReader()
			if err != nil {
				log.Fatal(err)
			}
			defer reader.Close()
			localHits := 0
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("page:%04d", (g*97+i*31)%220) // some misses
				if _, ok := srv.GetVia(reader, []byte(key)); ok {
					localHits++
				}
			}
			mu.Lock()
			gets += 500
			hits += int64(localHits)
			mu.Unlock()
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("page:%04d", (g*50+i)%220)
				val := fmt.Sprintf("<html><body>page %s rewritten by writer %d round %d</body></html>", key, g, i)
				if err := srv.Set([]byte(key), []byte(val)); err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				sets++
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("processed %d gets (%d hits) and %d sets concurrently\n", gets, hits, sets)
	fmt.Printf("map entries: %d, live lines: %d (%.1f KB deduplicated)\n",
		srv.Map().Len(), srv.Heap.M.LiveLines(), float64(srv.Heap.M.FootprintBytes())/1024)
	fmt.Printf("DRAM accesses: %d total (reads %d, writes %d, lookups %d, dealloc %d, RC %d)\n",
		st.Store.Total(), st.Store.DataReads, st.Store.DataWrites,
		st.Store.LookupTraffic(), st.Store.DeallocOps, st.Store.RCTraffic())

	// Fault isolation: a client that dies mid-update leaves no trace —
	// buffered writes are discarded on Close without ever allocating, and
	// the map's root never moved.
	crasher, _ := srv.OpenReader()
	crasher.Store(12345, 0xDEAD, 0)
	crasher.Close() // "process killed": abort, nothing published
	fmt.Println("a crashed writer left the shared state untouched:",
		srv.Map().Len(), "entries")
}
