// The §5.2 scenario: sparse matrices as content-unique quad-trees. A FEM
// stencil matrix is stored in the QTS and NZD formats, its footprint
// compared against CSR, a matrix-vector multiply verified against the
// reference kernel, and the partitioned concurrent SpMV of §5.2.2 run
// under snapshot isolation.
package main

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/segment"
	"repro/internal/spmv"
)

func main() {
	mach := core.NewMachine(core.DefaultConfig(16))
	m := spmv.FEM2D(40) // 1600x1600 Laplacian with material regions

	fmt.Printf("matrix %s: %dx%d, %d non-zeros, symmetric=%v\n",
		m.Name, m.Rows, m.Cols, m.NNZ(), m.Sym)

	// Build both HICAMP formats in deduplicated memory.
	q := spmv.BuildQTS(mach, m)
	z := spmv.BuildNZD(mach, m)
	fmt.Printf("CSR baseline: %d bytes (symmetric CSR %d)\n", m.CSRBytes(), m.SymCSRBytes())
	fmt.Printf("QTS quad-tree: %d bytes (%.1f%% of baseline)\n",
		q.FootprintBytes(mach), 100*float64(q.FootprintBytes(mach))/float64(m.BaselineBytes()))
	fmt.Printf("NZD pattern+values: %d bytes\n", z.FootprintBytes(mach))

	// Multiply and verify against the plain-Go reference.
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	xseg := spmv.BuildXSegment(mach, x)
	y := q.MulVec(mach, xseg, m.Cols)
	if !spmv.VecEqual(y, m.MulVec(x)) {
		panic("QTS result mismatch")
	}
	fmt.Println("QTS SpMV matches the reference kernel")

	// §5.2.2: partition the result among K threads, each reading the
	// same immutable tree — no locks, no false sharing, snapshot-stable.
	const workers = 4
	part := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker multiplies the full tree but keeps only its
			// row range (a row-partitioned traversal would skip subtrees;
			// the shared immutable reads are the point here).
			yw := q.MulVec(mach, xseg, m.Cols)
			lo, hi := w*m.Rows/workers, (w+1)*m.Rows/workers
			part[w] = yw[lo:hi]
		}(w)
	}
	wg.Wait()
	var merged []float64
	for _, p := range part {
		merged = append(merged, p...)
	}
	if !spmv.VecEqual(merged, y) {
		panic("partitioned result mismatch")
	}
	fmt.Printf("%d workers computed partitions against one snapshot\n", workers)

	q.Release(mach)
	z.Release(mach)
	segment.ReleaseSeg(mach, xseg)
	fmt.Printf("live lines after release: %d\n", mach.LiveLines())
}
