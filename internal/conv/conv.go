// Package conv models the conventional Von Neumann baseline the paper
// compares against: a flat physical address space accessed through the
// two-level cache hierarchy of package cachesim (the PTLSim + DineroIV
// setup of §5). Domain packages (kvstore, spmv) emit per-operation memory
// reference streams against a Space, which forwards them to the
// hierarchy; the resulting DRAM read/write counts are the baseline bars
// of Figures 6 and 7.
package conv

import (
	"fmt"

	"repro/internal/cachesim"
)

// Space is a flat address space with a bump allocator for carving out
// named regions, fronted by a cache hierarchy.
type Space struct {
	H    *cachesim.Hierarchy
	next uint64
}

// NewSpace creates an address space over a hierarchy with the paper's
// baseline cache parameters at the given line size.
func NewSpace(lineBytes int) *Space {
	return NewSpaceWith(cachesim.PaperHierConfig(lineBytes))
}

// NewSpaceWith creates an address space over an explicitly configured
// hierarchy (experiments scale the caches with their workloads).
func NewSpaceWith(cfg cachesim.HierConfig) *Space {
	return &Space{
		H:    cachesim.NewHierarchy(cfg),
		next: 1 << 12, // leave page zero unmapped, as an OS would
	}
}

// Alloc reserves size bytes aligned to align and returns the base
// address. Alignment must be a power of two.
func (s *Space) Alloc(size uint64, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("conv: alignment %d not a power of two", align))
	}
	s.next = (s.next + align - 1) &^ (align - 1)
	base := s.next
	s.next += size
	return base
}

// Brk returns the current top of the allocated space.
func (s *Space) Brk() uint64 { return s.next }

// Load and Store issue single references.
func (s *Space) Load(addr uint64, size int)  { s.H.Load(addr, size) }
func (s *Space) Store(addr uint64, size int) { s.H.Store(addr, size) }

// ReadRange streams a sequential read of n bytes.
func (s *Space) ReadRange(addr uint64, n int) {
	line := s.H.LineBytes()
	for off := 0; off < n; off += line {
		chunk := line
		if rem := n - off; rem < chunk {
			chunk = rem
		}
		s.H.Load(addr+uint64(off), chunk)
	}
}

// WriteRange streams a sequential write of n bytes.
func (s *Space) WriteRange(addr uint64, n int) {
	line := s.H.LineBytes()
	for off := 0; off < n; off += line {
		chunk := line
		if rem := n - off; rem < chunk {
			chunk = rem
		}
		s.H.Store(addr+uint64(off), chunk)
	}
}

// Copy streams a memory copy (the dominant cost of socket IPC).
func (s *Space) Copy(dst, src uint64, n int) { s.H.Copy(dst, src, n) }

// Stats returns the hierarchy counters.
func (s *Space) Stats() cachesim.HierStats { return s.H.Stats }

// Flush drains dirty lines so deferred writebacks are charged.
func (s *Space) Flush() { s.H.Flush() }
