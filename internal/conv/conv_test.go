package conv

import "testing"

func TestAllocAlignment(t *testing.T) {
	s := NewSpace(16)
	a := s.Alloc(100, 64)
	if a%64 != 0 {
		t.Fatalf("alloc not aligned: %#x", a)
	}
	b := s.Alloc(8, 0)
	if b < a+100 {
		t.Fatalf("allocations overlap: %#x after %#x+100", b, a)
	}
	if s.Brk() < b+8 {
		t.Fatal("brk behind allocation")
	}
}

func TestAllocBadAlignmentPanics(t *testing.T) {
	s := NewSpace(16)
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two alignment accepted")
		}
	}()
	s.Alloc(8, 3)
}

func TestReadWriteRangeTraffic(t *testing.T) {
	s := NewSpace(16)
	base := s.Alloc(1024, 64)
	s.ReadRange(base, 1024)
	if got := s.Stats().DRAMReads; got != 64 {
		t.Fatalf("cold 1KB read = %d DRAM reads, want 64", got)
	}
	s.WriteRange(base, 1024)
	s.Flush()
	if got := s.Stats().DRAMWrites; got != 64 {
		t.Fatalf("1KB write+flush = %d DRAM writes, want 64", got)
	}
}

func TestCopyChargesBothSides(t *testing.T) {
	s := NewSpace(16)
	src := s.Alloc(256, 64)
	dst := s.Alloc(256, 64)
	s.Copy(dst, src, 256)
	if s.Stats().Loads != 16 || s.Stats().Stores != 16 {
		t.Fatalf("copy traffic %d/%d, want 16/16", s.Stats().Loads, s.Stats().Stores)
	}
}
