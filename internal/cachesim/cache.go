// Package cachesim provides the cache models used by both architectures in
// the evaluation: a generic set-associative write-back cache with LRU
// replacement, used as the HICAMP last-level cache (paper §3.1, Figure 3)
// by package core, and a conventional two-level hierarchy standing in for
// the paper's DineroIV baseline (32 KB 4-way L1D + 4 MB 16-way L2).
package cachesim

import (
	"fmt"

	"repro/internal/word"
)

// Kind distinguishes what a cache entry holds.
type Kind uint8

const (
	// KindData is a HICAMP data line, identified by PLID.
	KindData Kind = iota
	// KindRC is a reference-count line, identified by bucket number.
	KindRC
	// KindAddr is a conventional-memory line, identified by line address.
	KindAddr
)

// Key identifies a cache entry.
type Key struct {
	Kind Kind
	ID   uint64
}

// Entry is one cache line.
type Entry struct {
	Key     Key
	Content word.Content
	Dirty   bool
}

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
	DirtyEvts uint64
}

// Cache is a set-associative cache with true-LRU replacement. Each set is
// kept in MRU-first order.
type Cache struct {
	sets  [][]Entry
	ways  int
	Stats Stats
}

// New creates a cache with the given geometry. Sets must be a power of two.
func New(sets, ways int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cachesim: sets %d not a positive power of two", sets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("cachesim: ways %d", ways))
	}
	return &Cache{sets: make([][]Entry, sets), ways: ways}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetMask returns the index mask (Sets-1).
func (c *Cache) SetMask() uint64 { return uint64(len(c.sets) - 1) }

// Probe looks up key in the given set, promoting it to MRU on hit. The
// returned pointer stays valid until the next mutation of the set; callers
// may flip Dirty through it.
func (c *Cache) Probe(set int, key Key) (*Entry, bool) {
	s := c.sets[set]
	for i := range s {
		if s[i].Key == key {
			c.promote(set, i)
			c.Stats.Hits++
			return &c.sets[set][0], true
		}
	}
	c.Stats.Misses++
	return nil, false
}

// ProbeContent searches the set for a data-line entry with the given
// content — the lookup-by-content path of the HICAMP cache (Figure 3).
// Because every hash bucket maps to exactly one set, a single set probe
// suffices; the caller derives set from the content hash.
func (c *Cache) ProbeContent(set int, cont word.Content) (*Entry, bool) {
	s := c.sets[set]
	for i := range s {
		if s[i].Key.Kind == KindData && s[i].Content == cont {
			c.promote(set, i)
			c.Stats.Hits++
			return &c.sets[set][0], true
		}
	}
	c.Stats.Misses++
	return nil, false
}

// Insert places e at the MRU position of the set, evicting the LRU entry
// when the set is full. It returns the evicted entry, if any. Inserting a
// key already present replaces that entry in place (promoted to MRU).
func (c *Cache) Insert(set int, e Entry) (Entry, bool) {
	s := c.sets[set]
	for i := range s {
		if s[i].Key == e.Key {
			c.promote(set, i)
			c.sets[set][0] = e
			return Entry{}, false
		}
	}
	c.Stats.Inserts++
	if len(s) < c.ways {
		c.sets[set] = append(s, Entry{})
		copy(c.sets[set][1:], c.sets[set])
		c.sets[set][0] = e
		return Entry{}, false
	}
	victim := s[len(s)-1]
	copy(s[1:], s[:len(s)-1])
	s[0] = e
	c.Stats.Evictions++
	if victim.Dirty {
		c.Stats.DirtyEvts++
	}
	return victim, true
}

// Invalidate removes the entry with the given key from the set, reporting
// whether it was present. Invalidated entries are dropped without
// writeback — used when a line is de-allocated (paper §3.1: before an
// immutable line is de-allocated it is invalidated in all caches).
func (c *Cache) Invalidate(set int, key Key) bool {
	s := c.sets[set]
	for i := range s {
		if s[i].Key == key {
			c.sets[set] = append(s[:i], s[i+1:]...)
			return true
		}
	}
	return false
}

// FlushDirty invokes fn for every dirty entry and marks it clean; used at
// the end of a measurement window to account pending writebacks.
func (c *Cache) FlushDirty(fn func(Entry)) {
	for set := range c.sets {
		for i := range c.sets[set] {
			if c.sets[set][i].Dirty {
				fn(c.sets[set][i])
				c.sets[set][i].Dirty = false
			}
		}
	}
}

// Len returns the number of resident entries (for tests).
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.sets {
		n += len(s)
	}
	return n
}

func (c *Cache) promote(set, i int) {
	if i == 0 {
		return
	}
	s := c.sets[set]
	e := s[i]
	copy(s[1:i+1], s[:i])
	s[0] = e
}
