// Package cachesim provides the cache models used by both architectures in
// the evaluation: a generic set-associative write-back cache with LRU
// replacement, used as the HICAMP last-level cache (paper §3.1, Figure 3)
// by package core, and a conventional two-level hierarchy standing in for
// the paper's DineroIV baseline (32 KB 4-way L1D + 4 MB 16-way L2).
//
// The set-associative Cache is safe for concurrent use with per-set
// striping: every set carries its own reader/writer lock (sets are
// independent by construction — an entry's set is a pure function of its
// key). Recency is tracked with per-entry atomic stamps instead of a
// move-to-front list, so Probe — the hot path, hammered by every DAG walk
// on the same few root-line sets — takes only the shared lock; exact LRU
// is preserved because the eviction victim is the minimum stamp, which
// orders entries identically to a recency list. Event counters live in a
// small array of atomic shards merged by StatsSnapshot. No set lock is
// ever held across a caller-supplied callback, so eviction handling may
// re-enter the memory system freely.
package cachesim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/word"
)

// Kind distinguishes what a cache entry holds.
type Kind uint8

const (
	// KindData is a HICAMP data line, identified by PLID.
	KindData Kind = iota
	// KindRC is a reference-count line, identified by bucket number.
	KindRC
	// KindAddr is a conventional-memory line, identified by line address.
	KindAddr
)

// Key identifies a cache entry.
type Key struct {
	Kind Kind
	ID   uint64
}

// Entry is one cache line.
type Entry struct {
	Key     Key
	Content word.Content
	Dirty   bool
}

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Inserts   uint64
	Evictions uint64
	DirtyEvts uint64
}

const (
	cHits = iota
	cMisses
	cInserts
	cEvictions
	cDirtyEvts
	cacheStatCount
)

// cacheStatShards bounds stat-counter contention without one shard per
// set; a set's shard is set & (cacheStatShards-1).
const cacheStatShards = 8

type cacheStatShard struct {
	c [cacheStatCount]uint64
	_ [64 - (cacheStatCount*8)%64]byte
}

// cacheSet is one set. Entries live in parallel slices; order carries no
// meaning (recency is the stamp). keys and content are written only under
// the exclusive lock; dirty and stamp are atomic so the shared-lock Probe
// can mark writes and record recency.
type cacheSet struct {
	mu      sync.RWMutex
	keys    []Key
	content []word.Content
	dirty   []uint32 // atomic: 0 clean, 1 dirty
	stamp   []uint64 // atomic: recency tick; larger = more recent
}

// Cache is a set-associative cache with true-LRU replacement (stamp
// ordering) and per-set lock striping.
type Cache struct {
	sets   []cacheSet
	ways   int
	tick   atomic.Uint64
	shards [cacheStatShards]cacheStatShard
}

// New creates a cache with the given geometry. Sets must be a power of two.
func New(sets, ways int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cachesim: sets %d not a positive power of two", sets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("cachesim: ways %d", ways))
	}
	return &Cache{sets: make([]cacheSet, sets), ways: ways}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetMask returns the index mask (Sets-1).
func (c *Cache) SetMask() uint64 { return uint64(len(c.sets) - 1) }

func (c *Cache) bump(set, counter int) {
	atomic.AddUint64(&c.shards[set&(cacheStatShards-1)].c[counter], 1)
}

// StatsSnapshot merges the counter shards into one Stats value.
func (c *Cache) StatsSnapshot() Stats {
	var sum [cacheStatCount]uint64
	for i := range c.shards {
		for j := 0; j < cacheStatCount; j++ {
			sum[j] += atomic.LoadUint64(&c.shards[i].c[j])
		}
	}
	return Stats{
		Hits:      sum[cHits],
		Misses:    sum[cMisses],
		Inserts:   sum[cInserts],
		Evictions: sum[cEvictions],
		DirtyEvts: sum[cDirtyEvts],
	}
}

// ResetStats zeroes the event counters (cache contents are kept).
func (c *Cache) ResetStats() {
	for i := range c.shards {
		for j := 0; j < cacheStatCount; j++ {
			atomic.StoreUint64(&c.shards[i].c[j], 0)
		}
	}
}

// touch records a use of entry i; the caller holds the set lock (shared
// suffices).
func (c *Cache) touch(cs *cacheSet, i int) {
	atomic.StoreUint64(&cs.stamp[i], c.tick.Add(1))
}

// Probe looks up key in the given set, refreshing its recency on hit and
// returning a copy of the entry. When markDirty is set, a hit entry is
// flagged dirty — the probe-and-dirty of a cached write. Only the shared
// set lock is taken: recency and the dirty flag are atomic, so concurrent
// probes of the same hot set do not serialize.
func (c *Cache) Probe(set int, key Key, markDirty bool) (Entry, bool) {
	cs := &c.sets[set]
	cs.mu.RLock()
	for i := range cs.keys {
		if cs.keys[i] == key {
			c.touch(cs, i)
			if markDirty {
				atomic.StoreUint32(&cs.dirty[i], 1)
			}
			e := Entry{Key: key, Content: cs.content[i],
				Dirty: atomic.LoadUint32(&cs.dirty[i]) != 0}
			cs.mu.RUnlock()
			c.bump(set, cHits)
			return e, true
		}
	}
	cs.mu.RUnlock()
	c.bump(set, cMisses)
	return Entry{}, false
}

// ProbeContent searches the set for a data-line entry with the given
// content — the lookup-by-content path of the HICAMP cache (Figure 3).
// Because every hash bucket maps to exactly one set, a single set probe
// suffices; the caller derives set from the content hash.
func (c *Cache) ProbeContent(set int, cont word.Content) (Entry, bool) {
	cs := &c.sets[set]
	cs.mu.RLock()
	for i := range cs.keys {
		if cs.keys[i].Kind == KindData && cs.content[i] == cont {
			c.touch(cs, i)
			e := Entry{Key: cs.keys[i], Content: cont,
				Dirty: atomic.LoadUint32(&cs.dirty[i]) != 0}
			cs.mu.RUnlock()
			c.bump(set, cHits)
			return e, true
		}
	}
	cs.mu.RUnlock()
	c.bump(set, cMisses)
	return Entry{}, false
}

// Insert places e in the set as most recent, evicting the LRU entry when
// the set is full. It returns the evicted entry, if any; the set lock is
// released before returning, so the caller may handle the eviction with
// further memory-system calls. Inserting a key already present replaces
// that entry in place (refreshed to most recent).
func (c *Cache) Insert(set int, e Entry) (Entry, bool) {
	cs := &c.sets[set]
	var d uint32
	if e.Dirty {
		d = 1
	}
	cs.mu.Lock()
	for i := range cs.keys {
		if cs.keys[i] == e.Key {
			cs.content[i] = e.Content
			atomic.StoreUint32(&cs.dirty[i], d)
			c.touch(cs, i)
			cs.mu.Unlock()
			return Entry{}, false
		}
	}
	c.bump(set, cInserts)
	if len(cs.keys) < c.ways {
		cs.keys = append(cs.keys, e.Key)
		cs.content = append(cs.content, e.Content)
		cs.dirty = append(cs.dirty, d)
		cs.stamp = append(cs.stamp, c.tick.Add(1))
		cs.mu.Unlock()
		return Entry{}, false
	}
	// Evict the LRU entry: the minimum stamp.
	v := 0
	for i := 1; i < len(cs.stamp); i++ {
		if atomic.LoadUint64(&cs.stamp[i]) < atomic.LoadUint64(&cs.stamp[v]) {
			v = i
		}
	}
	victim := Entry{Key: cs.keys[v], Content: cs.content[v],
		Dirty: atomic.LoadUint32(&cs.dirty[v]) != 0}
	cs.keys[v], cs.content[v] = e.Key, e.Content
	atomic.StoreUint32(&cs.dirty[v], d)
	c.touch(cs, v)
	cs.mu.Unlock()
	c.bump(set, cEvictions)
	if victim.Dirty {
		c.bump(set, cDirtyEvts)
	}
	return victim, true
}

// Invalidate removes the entry with the given key from the set, reporting
// whether it was present. Invalidated entries are dropped without
// writeback — used when a line is de-allocated (paper §3.1: before an
// immutable line is de-allocated it is invalidated in all caches).
func (c *Cache) Invalidate(set int, key Key) bool {
	cs := &c.sets[set]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for i := range cs.keys {
		if cs.keys[i] == key {
			last := len(cs.keys) - 1
			cs.keys[i] = cs.keys[last]
			cs.content[i] = cs.content[last]
			atomic.StoreUint32(&cs.dirty[i], atomic.LoadUint32(&cs.dirty[last]))
			atomic.StoreUint64(&cs.stamp[i], atomic.LoadUint64(&cs.stamp[last]))
			cs.keys = cs.keys[:last]
			cs.content = cs.content[:last]
			cs.dirty = cs.dirty[:last]
			cs.stamp = cs.stamp[:last]
			return true
		}
	}
	return false
}

// FlushDirty invokes fn for every dirty entry and marks it clean; used at
// the end of a measurement window to account pending writebacks. fn runs
// with no set lock held (dirty entries are snapshotted per set), so it may
// call back into the memory system.
func (c *Cache) FlushDirty(fn func(Entry)) {
	var dirty []Entry
	for set := range c.sets {
		cs := &c.sets[set]
		cs.mu.Lock()
		for i := range cs.keys {
			if atomic.LoadUint32(&cs.dirty[i]) != 0 {
				dirty = append(dirty, Entry{Key: cs.keys[i], Content: cs.content[i], Dirty: true})
				atomic.StoreUint32(&cs.dirty[i], 0)
			}
		}
		cs.mu.Unlock()
		for _, e := range dirty {
			fn(e)
		}
		dirty = dirty[:0]
	}
}

// Len returns the number of resident entries (for tests).
func (c *Cache) Len() int {
	n := 0
	for set := range c.sets {
		cs := &c.sets[set]
		cs.mu.RLock()
		n += len(cs.keys)
		cs.mu.RUnlock()
	}
	return n
}
