package cachesim

import "fmt"

// HierStats counts events in the conventional two-level hierarchy.
type HierStats struct {
	Loads      uint64
	Stores     uint64
	L1Hits     uint64
	L1Misses   uint64
	L2Hits     uint64
	L2Misses   uint64
	DRAMReads  uint64 // L2 miss fills
	DRAMWrites uint64 // dirty L2 evictions (plus final flush)
}

// DRAMAccesses returns total off-chip accesses, the Figure 6 metric for
// the conventional architecture.
func (s HierStats) DRAMAccesses() uint64 { return s.DRAMReads + s.DRAMWrites }

// Hierarchy models the paper's conventional baseline memory system: a
// write-back, write-allocate L1D in front of a write-back L2; misses in L2
// read DRAM and dirty L2 victims write DRAM. The hierarchy is driven by an
// address trace, exactly like the DineroIV setup the paper used.
type Hierarchy struct {
	l1, l2    *Cache
	lineBytes int
	Stats     HierStats
}

// HierConfig sizes the hierarchy. Values are in bytes.
type HierConfig struct {
	LineBytes int
	L1Bytes   int
	L1Ways    int
	L2Bytes   int
	L2Ways    int
}

// PaperHierConfig returns the baseline used throughout §5: 4-way 32 KB L1
// data cache, 16-way 4 MB L2, with the given line size.
func PaperHierConfig(lineBytes int) HierConfig {
	return HierConfig{
		LineBytes: lineBytes,
		L1Bytes:   32 << 10,
		L1Ways:    4,
		L2Bytes:   4 << 20,
		L2Ways:    16,
	}
}

// NewHierarchy builds the two-level hierarchy.
func NewHierarchy(cfg HierConfig) *Hierarchy {
	mkSets := func(bytes, ways int) int {
		lines := bytes / cfg.LineBytes
		sets := lines / ways
		if sets <= 0 || sets&(sets-1) != 0 {
			panic(fmt.Sprintf("cachesim: %d B / %d ways yields %d sets (need power of two)",
				bytes, ways, sets))
		}
		return sets
	}
	return &Hierarchy{
		l1:        New(mkSets(cfg.L1Bytes, cfg.L1Ways), cfg.L1Ways),
		l2:        New(mkSets(cfg.L2Bytes, cfg.L2Ways), cfg.L2Ways),
		lineBytes: cfg.LineBytes,
	}
}

// LineBytes returns the configured line size.
func (h *Hierarchy) LineBytes() int { return h.lineBytes }

// Load simulates a read of size bytes at addr.
func (h *Hierarchy) Load(addr uint64, size int) {
	h.Stats.Loads++
	h.access(addr, size, false)
}

// Store simulates a write of size bytes at addr.
func (h *Hierarchy) Store(addr uint64, size int) {
	h.Stats.Stores++
	h.access(addr, size, true)
}

// Copy simulates a memory copy of n bytes (load source, store destination),
// the dominant pattern of socket-based IPC.
func (h *Hierarchy) Copy(dst, src uint64, n int) {
	for off := 0; off < n; off += h.lineBytes {
		chunk := h.lineBytes
		if rem := n - off; rem < chunk {
			chunk = rem
		}
		h.Load(src+uint64(off), chunk)
		h.Store(dst+uint64(off), chunk)
	}
}

func (h *Hierarchy) access(addr uint64, size int, write bool) {
	if size <= 0 {
		size = 1
	}
	first := addr / uint64(h.lineBytes)
	last := (addr + uint64(size) - 1) / uint64(h.lineBytes)
	for ln := first; ln <= last; ln++ {
		h.accessLine(ln, write)
	}
}

func (h *Hierarchy) accessLine(lineAddr uint64, write bool) {
	key := Key{Kind: KindAddr, ID: lineAddr}
	s1 := int(lineAddr & h.l1.SetMask())
	if _, ok := h.l1.Probe(s1, key, write); ok {
		h.Stats.L1Hits++
		return
	}
	h.Stats.L1Misses++

	s2 := int(lineAddr & h.l2.SetMask())
	if _, ok := h.l2.Probe(s2, key, false); ok {
		h.Stats.L2Hits++
	} else {
		h.Stats.L2Misses++
		h.Stats.DRAMReads++
		if victim, evicted := h.l2.Insert(s2, Entry{Key: key}); evicted && victim.Dirty {
			h.Stats.DRAMWrites++
		}
	}
	// Fill L1; a dirty L1 victim is written back into L2.
	if victim, evicted := h.l1.Insert(s1, Entry{Key: key, Dirty: write}); evicted && victim.Dirty {
		h.writebackToL2(victim.Key)
	}
}

func (h *Hierarchy) writebackToL2(key Key) {
	s2 := int(key.ID & h.l2.SetMask())
	if _, ok := h.l2.Probe(s2, key, true); ok {
		return
	}
	// Victim missing from L2 (non-inclusive corner): allocate it dirty.
	if victim, evicted := h.l2.Insert(s2, Entry{Key: key, Dirty: true}); evicted && victim.Dirty {
		h.Stats.DRAMWrites++
	}
}

// Flush writes back all dirty lines in both levels, charging DRAM writes
// for dirty L2 lines (and for dirty L1 lines not resident in L2). Call at
// the end of a measurement window.
func (h *Hierarchy) Flush() {
	h.l1.FlushDirty(func(e Entry) { h.writebackToL2(e.Key) })
	h.l2.FlushDirty(func(Entry) { h.Stats.DRAMWrites++ })
}
