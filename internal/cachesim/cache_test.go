package cachesim

import (
	"testing"

	"repro/internal/word"
)

func dataKey(id uint64) Key { return Key{Kind: KindData, ID: id} }

func TestProbeHitMiss(t *testing.T) {
	c := New(4, 2)
	if _, ok := c.Probe(0, dataKey(1), false); ok {
		t.Fatal("empty cache hit")
	}
	c.Insert(0, Entry{Key: dataKey(1)})
	if _, ok := c.Probe(0, dataKey(1), false); !ok {
		t.Fatal("inserted entry missed")
	}
	if st := c.StatsSnapshot(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1, 2)
	c.Insert(0, Entry{Key: dataKey(1)})
	c.Insert(0, Entry{Key: dataKey(2)})
	c.Probe(0, dataKey(1), false) // 1 becomes MRU; 2 is LRU
	victim, evicted := c.Insert(0, Entry{Key: dataKey(3)})
	if !evicted || victim.Key != dataKey(2) {
		t.Fatalf("victim = %+v, want key 2", victim)
	}
	if _, ok := c.Probe(0, dataKey(1), false); !ok {
		t.Fatal("MRU entry evicted")
	}
}

func TestInsertExistingReplaces(t *testing.T) {
	c := New(1, 2)
	c.Insert(0, Entry{Key: dataKey(1)})
	c.Insert(0, Entry{Key: dataKey(1), Dirty: true})
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	e, _ := c.Probe(0, dataKey(1), false)
	if !e.Dirty {
		t.Fatal("replacement lost dirty flag")
	}
}

func TestProbeContent(t *testing.T) {
	c := New(2, 4)
	cont := word.ContentFromBytes(2, []byte("find me by body"))
	c.Insert(1, Entry{Key: dataKey(42), Content: cont})
	e, ok := c.ProbeContent(1, cont)
	if !ok {
		t.Fatal("content probe missed")
	}
	if e.Key.ID != 42 {
		t.Fatalf("recovered PLID = %d, want 42", e.Key.ID)
	}
	// Content lookup must not match RC entries.
	c.Insert(1, Entry{Key: Key{Kind: KindRC, ID: 7}, Content: cont})
	if e, _ := c.ProbeContent(1, cont); e.Key.Kind != KindData {
		t.Fatal("content probe matched a non-data entry")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1, 4)
	c.Insert(0, Entry{Key: dataKey(1), Dirty: true})
	if !c.Invalidate(0, dataKey(1)) {
		t.Fatal("invalidate missed present entry")
	}
	if c.Invalidate(0, dataKey(1)) {
		t.Fatal("invalidate found absent entry")
	}
	if c.Len() != 0 {
		t.Fatal("entry still resident")
	}
}

func TestFlushDirty(t *testing.T) {
	c := New(2, 2)
	c.Insert(0, Entry{Key: dataKey(1), Dirty: true})
	c.Insert(1, Entry{Key: dataKey(2)})
	var flushed []uint64
	c.FlushDirty(func(e Entry) { flushed = append(flushed, e.Key.ID) })
	if len(flushed) != 1 || flushed[0] != 1 {
		t.Fatalf("flushed = %v, want [1]", flushed)
	}
	c.FlushDirty(func(e Entry) { t.Fatalf("entry %d still dirty", e.Key.ID) })
}

func TestBadGeometryPanics(t *testing.T) {
	for _, g := range [][2]int{{0, 2}, {3, 2}, {4, 0}} {
		func() {
			defer func() { recover() }()
			New(g[0], g[1])
			t.Errorf("geometry %v accepted", g)
		}()
	}
}

func TestHierarchyBasics(t *testing.T) {
	h := NewHierarchy(HierConfig{LineBytes: 16, L1Bytes: 256, L1Ways: 2, L2Bytes: 1024, L2Ways: 4})
	h.Load(0, 8)
	if h.Stats.DRAMReads != 1 {
		t.Fatalf("cold load DRAM reads = %d, want 1", h.Stats.DRAMReads)
	}
	h.Load(0, 8) // L1 hit
	if h.Stats.L1Hits != 1 {
		t.Fatalf("L1 hits = %d, want 1", h.Stats.L1Hits)
	}
	if h.Stats.DRAMReads != 1 {
		t.Fatalf("hit went to DRAM")
	}
}

func TestHierarchyLineSplit(t *testing.T) {
	h := NewHierarchy(HierConfig{LineBytes: 16, L1Bytes: 256, L1Ways: 2, L2Bytes: 1024, L2Ways: 4})
	h.Load(8, 16) // straddles two 16-byte lines
	if h.Stats.DRAMReads != 2 {
		t.Fatalf("straddling load DRAM reads = %d, want 2", h.Stats.DRAMReads)
	}
}

func TestHierarchyDirtyWriteback(t *testing.T) {
	h := NewHierarchy(HierConfig{LineBytes: 16, L1Bytes: 32, L1Ways: 1, L2Bytes: 64, L2Ways: 1})
	// L2 has 4 sets? 64/16/1 = 4 sets; L1 has 2 sets.
	h.Store(0, 8)
	// Evict line 0 from both levels by touching conflicting lines.
	h.Load(64, 8)  // same L2 set as 0 (4 sets * 16B = 64B period)
	h.Load(128, 8) // evicts again
	if h.Stats.DRAMWrites == 0 {
		t.Fatal("dirty line never written back to DRAM")
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewHierarchy(HierConfig{LineBytes: 16, L1Bytes: 256, L1Ways: 2, L2Bytes: 1024, L2Ways: 4})
	h.Store(0, 8)
	if h.Stats.DRAMWrites != 0 {
		t.Fatal("premature writeback")
	}
	h.Flush()
	if h.Stats.DRAMWrites != 1 {
		t.Fatalf("flush DRAM writes = %d, want 1", h.Stats.DRAMWrites)
	}
}

func TestHierarchyCopy(t *testing.T) {
	h := NewHierarchy(PaperHierConfig(16))
	h.Copy(1<<20, 0, 64)
	if h.Stats.Loads != 4 || h.Stats.Stores != 4 {
		t.Fatalf("copy ops = %d/%d, want 4/4", h.Stats.Loads, h.Stats.Stores)
	}
	if h.Stats.DRAMReads != 8 {
		t.Fatalf("cold copy DRAM reads = %d, want 8", h.Stats.DRAMReads)
	}
}

func TestPaperHierConfigGeometry(t *testing.T) {
	h := NewHierarchy(PaperHierConfig(16))
	if h.l1.Sets()*h.l1.Ways()*16 != 32<<10 {
		t.Fatalf("L1 capacity mismatch: %d sets x %d ways", h.l1.Sets(), h.l1.Ways())
	}
	if h.l2.Sets()*h.l2.Ways()*16 != 4<<20 {
		t.Fatalf("L2 capacity mismatch: %d sets x %d ways", h.l2.Sets(), h.l2.Ways())
	}
}

func TestWorkingSetFitsInL2(t *testing.T) {
	// A working set larger than L1 but smaller than L2 must, on a second
	// pass, hit in L2 and generate no new DRAM reads.
	h := NewHierarchy(HierConfig{LineBytes: 16, L1Bytes: 1 << 10, L1Ways: 4, L2Bytes: 64 << 10, L2Ways: 16})
	const n = 32 << 10
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < n; a += 16 {
			h.Load(a, 8)
		}
	}
	if h.Stats.DRAMReads != n/16 {
		t.Fatalf("DRAM reads = %d, want %d (second pass must hit L2)",
			h.Stats.DRAMReads, n/16)
	}
	if h.Stats.L2Hits == 0 {
		t.Fatal("no L2 hits recorded")
	}
}
