package experiments

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/netfront"
)

// The network front end's load claim, measured end to end: many
// concurrent memcached connections driving one HICAMP store through
// loopback TCP. The baseline dispatches each request as its own store
// operation the moment it parses (Aggregate=false); the candidate
// coalesces the in-flight requests of ALL connections into bounded
// flush windows — one snapshot + one gather wave per namespace for the
// window's reads, one Apply wave commit for its writes — so the map
// root path, interior lines shared between the window's keys, and the
// per-commit publish cost amortize across connections instead of being
// paid per request.
//
// Each connection pipelines Depth requests per burst (send all, flush,
// read all), the standard memcached client discipline; per-request
// latency is the burst round-trip divided by its depth, so the p99
// column reports what a pipelined client observes, batching delay
// included.

// NetloadConfig sizes one loopback run.
type NetloadConfig struct {
	Conns      int  // concurrent client connections
	Depth      int  // pipelined requests per burst
	Rounds     int  // bursts per connection
	KeysPerGet int  // keys per get request
	SetEvery   int  // every Nth request of a burst is a set; 0 = read-only
	Preload    int  // keys loaded before the measured window
	ValueBytes int  // approximate stored value size
	Aggregate  bool // cross-connection batch aggregation on/off
}

// NetloadRow is one measured run.
type NetloadRow struct {
	Mode       string // "pipelined" or "naive"
	Conns      int
	Requests   uint64  // protocol requests completed in the window
	RPS        float64 // requests per second
	P50us      float64 // median per-request latency, microseconds
	P99us      float64
	Batches    uint64  // flush windows executed (0 in naive mode)
	AvgBatch   float64 // ops per window
	DRAM       uint64  // simulated DRAM accesses in the window
	DRAMPerReq float64
}

// NetloadResult carries the sweep rows for benchjson and tests.
type NetloadResult struct {
	MultiGet []NetloadRow // read-only pipelined multiget, naive then pipelined
	MixedRW  []NetloadRow // mixed get/set, naive then pipelined
}

// RunNetload produces the network front-end table: the pipelined
// multiget and mixed read/write workloads, each in naive per-request
// dispatch and cross-connection aggregation modes.
func RunNetload(sc Scale) (Table, NetloadResult, error) {
	t := Table{
		Title: "Network front end: pipelined batch aggregation vs per-request dispatch",
		Note:  "loopback memcached protocol; aggregation coalesces all connections' in-flight ops into one gather/apply wave per flush window",
		Headers: []string{"workload", "mode", "conns", "requests", "rps",
			"p99", "windows", "dram/req"},
	}
	var res NetloadResult

	conns, rounds := 16, 8
	if sc == ScalePaper {
		conns, rounds = 64, 30
	}
	mget := NetloadConfig{
		Conns: conns, Depth: 4, Rounds: rounds, KeysPerGet: 4,
		Preload: 2048, ValueBytes: 64,
	}
	mixed := mget
	mixed.KeysPerGet = 1
	mixed.SetEvery = 4

	for _, w := range []struct {
		name string
		cfg  NetloadConfig
		dst  *[]NetloadRow
	}{{"multiget", mget, &res.MultiGet}, {"mixed_rw", mixed, &res.MixedRW}} {
		for _, agg := range []bool{false, true} {
			cfg := w.cfg
			cfg.Aggregate = agg
			row, err := RunNetloadWorkload(cfg)
			if err != nil {
				return t, res, err
			}
			*w.dst = append(*w.dst, row)
			t.AddRow(w.name, row.Mode, u(uint64(row.Conns)), u(row.Requests),
				fmt.Sprintf("%.0f", row.RPS),
				fmt.Sprintf("%.0fus", row.P99us),
				fmt.Sprintf("%d (%.1f ops)", row.Batches, row.AvgBatch),
				fmt.Sprintf("%.1f", row.DRAMPerReq))
		}
	}
	return t, res, nil
}

// RunNetloadWorkload runs one loopback workload against a fresh server
// and store: preload through the protocol, then Conns concurrent
// pipelined clients for Rounds bursts each, measuring requests/s,
// latency percentiles, window telemetry and simulated DRAM traffic.
func RunNetloadWorkload(c NetloadConfig) (NetloadRow, error) {
	store := kvstore.NewHicampServer(core.Config{
		LineBytes: 16, BucketBits: 18, DataWays: 12,
		CacheLines: (256 << 10) / 16, CacheWays: 16,
	})
	opts := netfront.DefaultOptions()
	opts.Aggregate = c.Aggregate
	srv := netfront.NewServer(store, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return NetloadRow{}, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	keys := make([]string, c.Preload)
	val := make([]byte, c.ValueBytes)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := range keys {
		keys[i] = fmt.Sprintf("net:key:%05d", i)
	}
	if err := netloadPreload(addr, keys, val); err != nil {
		return NetloadRow{}, err
	}
	store.Heap.M.FlushCache()
	store.Heap.M.ResetStats()
	base := srv.Counters()

	lats := make([][]time.Duration, c.Conns)
	errs := make([]error, c.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < c.Conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lats[g], errs[g] = netloadConn(addr, c, keys, val, g)
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return NetloadRow{}, err
		}
	}

	store.Heap.M.FlushCache()
	dram := store.Heap.M.Stats().Store.Total()
	cnt := srv.Counters()
	if err := srv.Close(); err != nil {
		return NetloadRow{}, err
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pctl := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i].Nanoseconds()) / 1e3
	}
	requests := uint64(c.Conns * c.Rounds * c.Depth)
	row := NetloadRow{
		Mode:       "naive",
		Conns:      c.Conns,
		Requests:   requests,
		RPS:        float64(requests) / elapsed.Seconds(),
		P50us:      pctl(0.50),
		P99us:      pctl(0.99),
		Batches:    cnt.Batches - base.Batches,
		DRAM:       dram,
		DRAMPerReq: float64(dram) / float64(requests),
	}
	if c.Aggregate {
		row.Mode = "pipelined"
		if row.Batches > 0 {
			row.AvgBatch = float64(cnt.BatchedOps-base.BatchedOps) / float64(row.Batches)
		}
	}
	return row, nil
}

// netloadPreload loads the key set through the protocol (so values
// carry the server's flags framing) with noreply sets, then reads one
// key back — the read passes the connection's class barrier only after
// every preceding write has committed.
func netloadPreload(addr string, keys []string, val []byte) error {
	cl, err := netfront.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	for _, k := range keys {
		if err := cl.SendSet(k, 0, val, true); err != nil {
			return err
		}
	}
	if err := cl.Flush(); err != nil {
		return err
	}
	if _, ok, err := cl.Get(keys[0]); err != nil || !ok {
		return fmt.Errorf("preload readback: ok=%v err=%v", ok, err)
	}
	return nil
}

// netloadConn drives one connection: Rounds bursts of Depth pipelined
// requests. Gets draw keys from a per-connection xorshift stream over
// the preloaded set (all hits); when SetEvery > 0, every SetEvery-th
// request of a burst rewrites one key instead.
func netloadConn(addr string, c NetloadConfig, keys []string, val []byte, seed int) ([]time.Duration, error) {
	cl, err := netfront.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	x := uint64(seed)*2654435761 + 12345
	next := func() int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(len(keys)))
	}
	lats := make([]time.Duration, 0, c.Rounds)
	kbuf := make([]string, c.KeysPerGet)
	isSet := make([]bool, c.Depth)
	for r := 0; r < c.Rounds; r++ {
		t0 := time.Now()
		for d := 0; d < c.Depth; d++ {
			isSet[d] = c.SetEvery > 0 && d%c.SetEvery == c.SetEvery-1
			if isSet[d] {
				if err := cl.SendSet(keys[next()], 0, val, false); err != nil {
					return nil, err
				}
				continue
			}
			for i := range kbuf {
				kbuf[i] = keys[next()]
			}
			if err := cl.SendGet(false, kbuf...); err != nil {
				return nil, err
			}
		}
		if err := cl.Flush(); err != nil {
			return nil, err
		}
		for d := 0; d < c.Depth; d++ {
			if isSet[d] {
				if rep, err := cl.ReadReply(); err != nil {
					return nil, err
				} else if rep != "STORED" {
					return nil, fmt.Errorf("set: %q", rep)
				}
				continue
			}
			vs, err := cl.ReadValues()
			if err != nil {
				return nil, err
			}
			if len(vs) != c.KeysPerGet {
				return nil, fmt.Errorf("get: %d/%d values", len(vs), c.KeysPerGet)
			}
		}
		// Per-request latency: the burst round-trip over its depth — what
		// a pipelined client observes, batching delay included.
		lats = append(lats, time.Since(t0)/time.Duration(c.Depth))
	}
	return lats, nil
}
