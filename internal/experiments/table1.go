package experiments

import (
	"repro/internal/datagen"
	"repro/internal/kvstore"
)

// Table1Row is one dataset row of Table 1.
type Table1Row struct {
	Dataset    string
	Items      int
	TotalBytes uint64
	Compaction map[int]float64 // line size -> ratio
}

// RunTable1 regenerates Table 1: memcached data compaction for web-page,
// script and image corpora at 16/32/64-byte lines. The paper's seven
// datasets (Wikipedia and Facebook dumps) are replaced by seeded
// synthetic corpora with matching redundancy character (see DESIGN.md).
func RunTable1(sc Scale) (Table, []Table1Row) {
	n := 60
	mean := 3000
	if sc == ScalePaper {
		n, mean = 1500, 8000
	}
	corpora := []*datagen.Corpus{
		datagen.HTMLCorpus("wiki-pages", n, mean, 101),
		datagen.HTMLCorpus("fb-pages-may", n/2, mean/2, 102),
		datagen.HTMLCorpus("fb-pages-sept", n, mean, 103),
		datagen.ScriptCorpus("fb-scripts-may", n/4, mean/4, 104),
		datagen.ScriptCorpus("fb-scripts-sept", n/4, mean/4, 105),
		datagen.BinaryCorpus("fb-images-may", n/2, mean, 106),
		datagen.BinaryCorpus("fb-images-sept", n/2, mean, 107),
	}

	t := Table{
		Title:   "Table 1: Memcached data compaction (ratio, conventional/HICAMP)",
		Note:    "synthetic corpora standing in for the paper's Wikipedia/Facebook dumps",
		Headers: []string{"dataset", "items", "MB", "LS=16", "LS=32", "LS=64"},
	}
	var rows []Table1Row
	for _, c := range corpora {
		row := Table1Row{
			Dataset:    c.Name,
			Items:      len(c.Items),
			TotalBytes: c.TotalBytes(),
			Compaction: map[int]float64{},
		}
		for _, lb := range []int{16, 32, 64} {
			row.Compaction[lb] = kvstore.CompactionRatio(lb, c)
		}
		rows = append(rows, row)
		t.AddRow(c.Name, u(uint64(len(c.Items))), mb(c.TotalBytes()),
			f2(row.Compaction[16]), f2(row.Compaction[32]), f2(row.Compaction[64]))
	}
	return t, rows
}
