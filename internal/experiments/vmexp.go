package experiments

import "repro/internal/vmhost"

// RunFig9 regenerates Figure 9: memory consumed by 1..10 VMs of each
// VMmark workload class under plain allocation, ideal page sharing and
// HICAMP 64-byte line dedup. Sizes are the paper's divided by 1024 (see
// vmhost.Classes); compaction factors are scale-free.
func RunFig9() (Table, map[string][]vmhost.Point) {
	t := Table{
		Title:   "Figure 9: Memory consumption of individual VMmark VMs (MB, model scale)",
		Headers: []string{"workload", "VMs", "allocated", "page-share", "hicamp64", "ps_x", "hic_x"},
	}
	series := map[string][]vmhost.Point{}
	for _, c := range vmhost.Classes() {
		pts := vmhost.ScaleVMs(c, 10)
		series[c.Name] = pts
		for _, p := range pts {
			if p.N != 1 && p.N != 5 && p.N != 10 {
				continue // print the shape; full series returned to callers
			}
			t.AddRow(c.Name, u(uint64(p.N)), mb(p.Allocated), mb(p.PageShared),
				mb(p.Hicamp), f2(p.CompactionPageShare()), f2(p.CompactionHicamp()))
		}
	}
	return t, series
}

// RunFig10 regenerates Figure 10: the same comparison for 1..10 whole
// VMmark tiles (six VMs per tile).
func RunFig10() (Table, []vmhost.Point) {
	t := Table{
		Title:   "Figure 10: Memory consumption of VMmark tiles (MB, model scale)",
		Headers: []string{"tiles", "allocated", "page-share", "hicamp64", "ps_x", "hic_x"},
	}
	pts := vmhost.ScaleTiles(10)
	for _, p := range pts {
		t.AddRow(u(uint64(p.N)), mb(p.Allocated), mb(p.PageShared), mb(p.Hicamp),
			f2(p.CompactionPageShare()), f2(p.CompactionHicamp()))
	}
	return t, pts
}
