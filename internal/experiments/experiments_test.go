package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestAnalyticMatchesPaperNumbers(t *testing.T) {
	// §5.1.1: N=10^6, 16-byte lines: 2*20*50ns = 2 us update time,
	// conflict probability 2us/50us = 0.04; N=10^9: 0.06; merge 200 ns.
	r := Analytic(1e6, 16)
	if math.Abs(r.UpdateSec-2e-6) > 1e-8 {
		t.Fatalf("update = %v, want 2us", r.UpdateSec)
	}
	if math.Abs(r.ConflictP-0.04) > 0.001 {
		t.Fatalf("conflict p = %v, want 0.04", r.ConflictP)
	}
	if math.Abs(r.MergeSec-200e-9) > 1e-12 {
		t.Fatalf("merge = %v, want 200ns", r.MergeSec)
	}
	r9 := Analytic(1e9, 16)
	if math.Abs(r9.ConflictP-0.06) > 0.001 {
		t.Fatalf("conflict p @1e9 = %v, want ~0.06", r9.ConflictP)
	}
	// Longer lines reduce levels and conflicts proportionally (§5.1.1).
	r64 := Analytic(1e6, 64)
	if r64.ConflictP >= r.ConflictP/2 {
		t.Fatalf("64B conflict %v not well below 16B %v", r64.ConflictP, r.ConflictP)
	}
}

func TestRunConflictLiveNoLostUpdates(t *testing.T) {
	tbl, live, err := RunConflict(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if live.LostUpdates != 0 {
		t.Fatalf("%d updates lost under contention", live.LostUpdates)
	}
	if live.MergeFailures != 0 {
		t.Fatalf("%d merge failures for disjoint updates", live.MergeFailures)
	}
	if live.CASAttempts == 0 {
		t.Fatal("no CAS attempts recorded")
	}
	if !strings.Contains(tbl.Render(), "P(conflict)") {
		t.Fatal("table missing headers")
	}
}

func TestRunContentionShape(t *testing.T) {
	tbl, res, err := RunContention(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Disjoint) < 2 || len(res.Overlap) != 4 {
		t.Fatalf("sweep shapes: %d disjoint, %d overlap", len(res.Disjoint), len(res.Overlap))
	}
	// Disjoint writers: every stale publish rebased (conflicts observed,
	// none failed) and DRAM/commit stays flat while the segment grows —
	// well under the size ratio; path depth adds only a log factor.
	first, last := res.Disjoint[0], res.Disjoint[len(res.Disjoint)-1]
	if first.Conflicts == 0 {
		t.Fatal("disjoint sweep produced no contention")
	}
	sizeRatio := float64(last.Words) / float64(first.Words)
	if last.DRAMPerCommit >= first.DRAMPerCommit*sizeRatio/4 {
		t.Fatalf("DRAM/commit grew with size: %.1f @%d words vs %.1f @%d words",
			first.DRAMPerCommit, first.Words, last.DRAMPerCommit, last.Words)
	}
	// Overlapping writers: replays scale with the overlap fraction.
	if res.Overlap[0].Replays != 0 {
		t.Fatalf("disjoint end replayed %d times", res.Overlap[0].Replays)
	}
	for i := 1; i < len(res.Overlap); i++ {
		if res.Overlap[i].Replays <= res.Overlap[i-1].Replays {
			t.Fatalf("replays not increasing with overlap: %+v", res.Overlap)
		}
	}
	if !strings.Contains(tbl.Render(), "overlap") {
		t.Fatal("table missing overlap rows")
	}
}

func TestRunNetloadShape(t *testing.T) {
	tbl, res, err := RunNetload(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range map[string][]NetloadRow{
		"multiget": res.MultiGet, "mixed_rw": res.MixedRW,
	} {
		if len(rows) != 2 {
			t.Fatalf("%s: %d rows, want naive+pipelined", name, len(rows))
		}
		naive, pipe := rows[0], rows[1]
		if naive.Mode != "naive" || pipe.Mode != "pipelined" {
			t.Fatalf("%s: modes %q/%q", name, naive.Mode, pipe.Mode)
		}
		for _, r := range rows {
			if r.Requests == 0 || r.RPS <= 0 || r.P99us <= 0 || r.DRAM == 0 {
				t.Fatalf("%s %s: empty measurement %+v", name, r.Mode, r)
			}
		}
		// Per-request dispatch never batches; aggregation must have
		// coalesced ops across connections (windows > 0, >1 op each).
		if naive.Batches != 0 {
			t.Fatalf("%s: naive mode executed %d windows", name, naive.Batches)
		}
		if pipe.Batches == 0 || pipe.AvgBatch <= 1 {
			t.Fatalf("%s: aggregation did not coalesce: %d windows, %.1f ops",
				name, pipe.Batches, pipe.AvgBatch)
		}
	}
	if !strings.Contains(tbl.Render(), "pipelined") {
		t.Fatal("table missing pipelined rows")
	}
}

func TestRunTable1Shape(t *testing.T) {
	tbl, rows := RunTable1(ScaleTest)
	if len(rows) != 7 {
		t.Fatalf("%d datasets, want 7 (as in Table 1)", len(rows))
	}
	for _, r := range rows {
		if strings.Contains(r.Dataset, "images") {
			if r.Compaction[16] > 1.15 {
				t.Errorf("%s compacts %.2fx; images must not compact", r.Dataset, r.Compaction[16])
			}
		} else {
			if r.Compaction[16] < 1.2 {
				t.Errorf("%s compacts only %.2fx at 16B", r.Dataset, r.Compaction[16])
			}
			if r.Compaction[16] < r.Compaction[64] {
				t.Errorf("%s: compaction must not improve with larger lines (%.2f vs %.2f)",
					r.Dataset, r.Compaction[16], r.Compaction[64])
			}
		}
	}
	if !strings.Contains(tbl.Render(), "LS=16") {
		t.Fatal("render missing line-size columns")
	}
}

func TestRunFig6Shape(t *testing.T) {
	tbl, results, err := RunFig6(ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d line sizes, want 3", len(results))
	}
	for _, r := range results {
		if r.HicampTotal() == 0 || r.ConvTotal() == 0 {
			t.Fatalf("degenerate totals at %dB", r.LineBytes)
		}
		// Paper: "the number of off-chip DRAM accesses for HICAMP is
		// comparable or smaller than for a conventional memory system".
		if float64(r.HicampTotal()) > 1.5*float64(r.ConvTotal()) {
			t.Fatalf("%dB: HICAMP %d vs conv %d breaks the comparable-or-smaller shape",
				r.LineBytes, r.HicampTotal(), r.ConvTotal())
		}
	}
	if !strings.Contains(tbl.Render(), "hicamp") {
		t.Fatal("bad render")
	}
}

func TestRunFig8AndTable2Shape(t *testing.T) {
	_, results := RunFig8(ScaleTest)
	if len(results) != 100 {
		t.Fatalf("%d matrices, want 100", len(results))
	}
	over := 0
	for _, r := range results {
		if r.SizeRatio() > 1.25 {
			over++
		}
	}
	// Paper: "matrices are the same size or smaller in HICAMP except for
	// a few having negligible increases".
	if over > len(results)/10 {
		t.Fatalf("%d/100 matrices grew materially under HICAMP", over)
	}

	tbl, rows := RunTable2(results)
	byCat := map[string]Table2Row{}
	for _, r := range rows {
		byCat[r.Category] = r
	}
	all, ok := byCat["All"]
	if !ok || all.Matrices != 100 {
		t.Fatalf("All row wrong: %+v", all)
	}
	if all.MeanSize >= 1.0 {
		t.Fatalf("mean size ratio %.2f: no compaction overall", all.MeanSize)
	}
	// Shape: LPs (vs full CSR) compact better than symmetric matrices
	// (vs already-halved symmetric CSR), as in Table 2 (43.0% vs 76.9%).
	if byCat["LPs"].MeanSize >= byCat["Symmetric"].MeanSize {
		t.Fatalf("LP ratio %.2f >= symmetric %.2f; Table 2 ordering broken",
			byCat["LPs"].MeanSize, byCat["Symmetric"].MeanSize)
	}
	if !strings.Contains(tbl.Render(), "Symmetric") {
		t.Fatal("bad render")
	}
}

func TestRunFig7Shape(t *testing.T) {
	_, results := RunFig7(ScaleTest)
	if len(results) < 15 {
		t.Fatalf("only %d traffic points", len(results))
	}
	var mean float64
	wins := 0
	for _, r := range results {
		mean += r.Ratio()
		if r.Ratio() <= 1.0 {
			wins++
		}
	}
	mean /= float64(len(results))
	// Paper: average ~20% reduction, most matrices at or below ratio 1.
	if mean > 1.15 {
		t.Fatalf("mean HICAMP/conv ratio %.2f; expected near or below 1", mean)
	}
	if wins < len(results)/2 {
		t.Fatalf("HICAMP wins only %d/%d matrices", wins, len(results))
	}
}

func TestRunFig9Fig10Shape(t *testing.T) {
	tbl9, series := RunFig9()
	if len(series) != 6 {
		t.Fatalf("%d workloads, want 6", len(series))
	}
	for name, pts := range series {
		if len(pts) != 10 {
			t.Fatalf("%s has %d points", name, len(pts))
		}
		last := pts[9]
		if last.Hicamp > last.PageShared || last.PageShared > last.Allocated {
			t.Fatalf("%s: ordering broken at 10 VMs", name)
		}
	}
	_, pts := RunFig10()
	last := pts[9]
	if last.CompactionHicamp() < 1.5*last.CompactionPageShare() {
		t.Fatalf("tiles: HICAMP %.2fx not well above page sharing %.2fx",
			last.CompactionHicamp(), last.CompactionPageShare())
	}
	if !strings.Contains(tbl9.Render(), "hicamp64") {
		t.Fatal("bad render")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := Table{Title: "T", Headers: []string{"a", "bb"}}
	tbl.AddRow("xxx", "y")
	out := tbl.Render()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "xxx") {
		t.Fatalf("render = %q", out)
	}
}
