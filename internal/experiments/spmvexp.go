package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/spmv"
)

// RunFig7 regenerates Figure 7: the ratio of HICAMP to conventional
// off-chip accesses for SpMV (log2 scale in the paper) against matrix
// size. The paper's headline: ~20% mean reduction over matrices larger
// than the L2. The paper excludes matrices that fit in its 4 MB L2; the
// scaled suite keeps that regime by scaling the caches with it (64 KB L2
// at test scale), so working sets still exceed the last level and the
// measured traffic is capacity traffic, not warm-cache noise.
func RunFig7(sc Scale) (Table, []spmv.TrafficResult) {
	scale, seed := 1, int64(7)
	l2Bytes := 64 << 10
	if sc == ScalePaper {
		scale = 3
		l2Bytes = 512 << 10
	}
	const lineBytes = 16
	hier := cachesim.HierConfig{
		LineBytes: lineBytes,
		L1Bytes:   l2Bytes / 32, L1Ways: 4,
		L2Bytes: l2Bytes, L2Ways: 16,
	}
	hcfg := core.Config{
		LineBytes:  lineBytes,
		BucketBits: 20,
		DataWays:   12,
		CacheLines: l2Bytes / lineBytes,
		CacheWays:  16,
	}
	suite := spmv.Suite(scale, seed)
	t := Table{
		Title:   "Figure 7: SpMV off-chip accesses, HICAMP/conventional",
		Note:    "matrices larger than the (scaled) L2 only; ratio < 1 means HICAMP issues fewer DRAM accesses",
		Headers: []string{"matrix", "category", "csr_bytes", "conv", "hicamp", "ratio", "log2"},
	}
	var results []spmv.TrafficResult
	for _, m := range suite {
		if m.BaselineBytes() <= uint64(l2Bytes)/4 {
			continue // the paper's "larger than L2" restriction, scaled
		}
		r := spmv.MeasureTrafficWith(hier, hcfg, m)
		results = append(results, r)
		t.AddRow(r.Name, r.Category, u(r.CSRBytes), u(r.ConvDRAM), u(r.HicampDRAM),
			f2(r.Ratio()), f2(math.Log2(r.Ratio())))
	}
	sort.Slice(results, func(i, j int) bool { return results[i].CSRBytes < results[j].CSRBytes })
	var sum float64
	for _, r := range results {
		sum += r.Ratio()
	}
	t.AddRow("", "", "", "", "mean ratio:", f2(sum/float64(len(results))), "")
	return t, results
}

// RunFig8 regenerates Figure 8: per-matrix footprint ratio of the best
// HICAMP format (QTS or NZD) to CSR/symmetric-CSR.
func RunFig8(sc Scale) (Table, []spmv.FootprintResult) {
	scale := 1
	if sc == ScalePaper {
		scale = 3
	}
	suite := spmv.Suite(scale, 7)
	t := Table{
		Title:   "Figure 8: Sparse matrix memory footprint (HICAMP/conventional)",
		Headers: []string{"matrix", "category", "sym", "csr_bytes", "qts", "nzd", "best", "ratio"},
	}
	var results []spmv.FootprintResult
	for _, m := range suite {
		r := spmv.MeasureFootprint(16, m)
		results = append(results, r)
		t.AddRow(r.Name, r.Category, fmt.Sprintf("%v", r.Sym), u(r.CSRBytes),
			u(r.QTSBytes), u(r.NZDBytes), u(r.HicampBytes), f2(r.SizeRatio()))
	}
	return t, results
}

// Table2Row aggregates Figure 8 results by category.
type Table2Row struct {
	Category string
	Matrices int
	MeanSize float64 // mean HICAMP/conventional size ratio ("savings")
	StdDev   float64
}

// RunTable2 regenerates Table 2: footprint savings grouped by matrix
// class (the paper reports mean HICAMP bytes per 100 conventional bytes
// with standard deviation).
func RunTable2(results []spmv.FootprintResult) (Table, []Table2Row) {
	groups := map[string][]float64{}
	for _, r := range results {
		ratio := r.SizeRatio()
		groups["All"] = append(groups["All"], ratio)
		if r.Sym {
			groups["Symmetric"] = append(groups["Symmetric"], ratio)
		} else {
			groups["Non-symmetric"] = append(groups["Non-symmetric"], ratio)
		}
		switch r.Category {
		case "FEM":
			groups["FEMs"] = append(groups["FEMs"], ratio)
		case "LP":
			groups["LPs"] = append(groups["LPs"], ratio)
		}
	}
	t := Table{
		Title:   "Table 2: Sparse matrix compaction by category",
		Note:    "size = mean HICAMP bytes per 100 conventional bytes (paper: All 62.7%)",
		Headers: []string{"category", "matrices", "size", "stddev"},
	}
	var rows []Table2Row
	for _, cat := range []string{"All", "Non-symmetric", "Symmetric", "FEMs", "LPs"} {
		rs := groups[cat]
		if len(rs) == 0 {
			continue
		}
		mean, sd := meanStd(rs)
		rows = append(rows, Table2Row{Category: cat, Matrices: len(rs), MeanSize: mean, StdDev: sd})
		t.AddRow(cat, u(uint64(len(rs))), pct(mean), pct(sd))
	}
	return t, rows
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return
}
