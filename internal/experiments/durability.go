package experiments

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
)

// Durability: the cost of making HICAMP's only mutable state — the
// segment map — and its content-addressed lines crash-consistent. Two
// questions, two sections of rows:
//
//   - Commit cost. Every acked write waits for its log records to be
//     stable. Per-write fsync pays one disk barrier per op; the group-
//     commit flusher aggregates every op that lands inside one bounded
//     flush window into a single fsync, so concurrent writers share
//     barriers (fsyncs/op drops with concurrency) while no writer ever
//     blocks another's append.
//
//   - Recovery cost. A restart replays checkpoint + log tail. The
//     checkpoint bounds the tail: rows sweep where the last checkpoint
//     fell (never / mid-run / end-of-run) and report recovery time and
//     replayed-record counts for the same final state.

// DurabilityRow is one scenario of the durability experiment. Commit
// rows fill the throughput columns; recovery rows fill the recovery
// columns.
type DurabilityRow struct {
	Scenario    string
	Writers     int
	Ops         int
	Wall        time.Duration
	OpsPerSec   float64
	Fsyncs      uint64
	FsyncsPerOp float64
	MaxGroup    uint64 // largest records-per-fsync group commit

	RecoveryTime   time.Duration
	Replayed       uint64 // log records applied at Open
	RecoveredLines uint64
}

// durabilityServer opens a durable server in a fresh temp dir.
func durabilityServer(flushWindow time.Duration) (*kvstore.HicampServer, string, error) {
	dir, err := os.MkdirTemp("", "hicamp-durability-*")
	if err != nil {
		return nil, "", err
	}
	s, err := kvstore.NewHicampServerOpts(core.TestConfig(), kvstore.ServerOptions{
		DataDir:     dir,
		FlushWindow: flushWindow,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	return s, dir, nil
}

// commitScenario runs ops acked writes across writers goroutines and
// reports the fsync sharing the flush window bought.
func commitScenario(name string, writers, ops int, flushWindow time.Duration) (DurabilityRow, error) {
	s, dir, err := durabilityServer(flushWindow)
	if err != nil {
		return DurabilityRow{}, err
	}
	defer os.RemoveAll(dir)
	defer s.Close()

	perWriter := ops / writers
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := []byte(fmt.Sprintf("w%02d-k%05d", w, i))
				val := []byte(fmt.Sprintf("value %05d from writer %02d, durably acked", i, w))
				if err := s.Set(key, val); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return DurabilityRow{}, err
		}
	}
	ds := s.DurableStats()
	total := perWriter * writers
	row := DurabilityRow{
		Scenario: name, Writers: writers, Ops: total, Wall: wall,
		OpsPerSec: float64(total) / wall.Seconds(),
		Fsyncs:    ds.Fsyncs, MaxGroup: ds.MaxGroupSize,
	}
	if total > 0 {
		row.FsyncsPerOp = float64(ds.Fsyncs) / float64(total)
	}
	return row, nil
}

// recoveryScenario builds keys bindings, checkpoints after ckptAt of
// them (skipped when negative), closes, and reports the reopen cost.
func recoveryScenario(name string, keys, ckptAt int) (DurabilityRow, error) {
	s, dir, err := durabilityServer(0)
	if err != nil {
		return DurabilityRow{}, err
	}
	defer os.RemoveAll(dir)
	write := func(s *kvstore.HicampServer, lo, hi int) error {
		var b kvstore.Batch
		for i := lo; i < hi; i++ {
			b = b.Set([]byte(fmt.Sprintf("rk-%06d", i)),
				[]byte(fmt.Sprintf("recovery payload %06d with some body to replay", i)))
		}
		return s.Write(b)
	}
	stop := ckptAt
	if stop < 0 {
		stop = keys
	}
	if err := write(s, 0, stop); err != nil {
		s.Close()
		return DurabilityRow{}, err
	}
	if ckptAt >= 0 {
		if err := s.Checkpoint(); err != nil {
			s.Close()
			return DurabilityRow{}, err
		}
		if err := write(s, ckptAt, keys); err != nil {
			s.Close()
			return DurabilityRow{}, err
		}
	}
	if err := s.Close(); err != nil {
		return DurabilityRow{}, err
	}

	r, err := kvstore.NewHicampServerOpts(core.TestConfig(), kvstore.ServerOptions{DataDir: dir})
	if err != nil {
		return DurabilityRow{}, err
	}
	defer r.Close()
	ds := r.DurableStats()
	return DurabilityRow{
		Scenario: name, Ops: keys,
		RecoveryTime: ds.RecoveryTime, Replayed: ds.ReplayedRecords,
		RecoveredLines: ds.RecoveredLines,
	}, nil
}

// RunDurability measures acked-write throughput under per-write fsync
// vs group commit, and cold recovery time against where the last
// checkpoint fell.
func RunDurability(sc Scale) (Table, []DurabilityRow, error) {
	ops, keys, window := 256, 1500, 500*time.Microsecond
	if sc == ScalePaper {
		ops, keys, window = 4096, 20000, 2*time.Millisecond
	}

	var rows []DurabilityRow
	commit := []struct {
		name    string
		writers int
		window  time.Duration
	}{
		// 1ns window: the flusher fsyncs every append on its own — the
		// per-write-fsync baseline.
		{"per-write fsync, 1 writer", 1, time.Nanosecond},
		{"group commit, 1 writer", 1, window},
		{"group commit, 4 writers", 4, window},
		{"group commit, 16 writers", 16, window},
	}
	for _, c := range commit {
		row, err := commitScenario(c.name, c.writers, ops, c.window)
		if err != nil {
			return Table{}, nil, err
		}
		rows = append(rows, row)
	}
	recovery := []struct {
		name   string
		ckptAt int
	}{
		{"recover: no checkpoint (full replay)", -1},
		{"recover: checkpoint at half", keys / 2},
		{"recover: checkpoint at end", keys},
	}
	for _, r := range recovery {
		row, err := recoveryScenario(r.name, keys, r.ckptAt)
		if err != nil {
			return Table{}, nil, err
		}
		rows = append(rows, row)
	}

	t := Table{
		Title: "Durability: group-commit acked writes and checkpoint-bounded recovery",
		Note: fmt.Sprintf("commit rows: %d acked single-key sets, flush window %s; recovery rows: %d-key store reopened cold",
			ops, window, keys),
		Headers: []string{"scenario", "writers", "ops", "wall ms", "ops/s",
			"fsyncs", "fsync/op", "max group", "recovery ms", "replayed", "lines"},
	}
	for _, r := range rows {
		if r.RecoveryTime == 0 && r.Replayed == 0 && r.RecoveredLines == 0 {
			t.AddRow(r.Scenario, fmt.Sprintf("%d", r.Writers), fmt.Sprintf("%d", r.Ops),
				fmt.Sprintf("%.1f", float64(r.Wall.Microseconds())/1000),
				fmt.Sprintf("%.0f", r.OpsPerSec),
				fmt.Sprintf("%d", r.Fsyncs), fmt.Sprintf("%.3f", r.FsyncsPerOp),
				fmt.Sprintf("%d", r.MaxGroup), "-", "-", "-")
			continue
		}
		t.AddRow(r.Scenario, "-", fmt.Sprintf("%d", r.Ops), "-", "-", "-", "-", "-",
			fmt.Sprintf("%.1f", float64(r.RecoveryTime.Microseconds())/1000),
			fmt.Sprintf("%d", r.Replayed), fmt.Sprintf("%d", r.RecoveredLines))
	}
	return t, rows, nil
}
