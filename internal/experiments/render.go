// Package experiments regenerates every table and figure of the paper's
// evaluation (§5). Each Run* function returns a Table that prints the
// same rows or series the paper reports; cmd/hicampbench drives them and
// EXPERIMENTS.md records paper-vs-measured values. Scale factors let the
// same harness run test-sized (seconds) or paper-sized (minutes).
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleTest finishes in seconds; used by unit tests and CI.
	ScaleTest Scale = iota
	// ScalePaper approaches the paper's workload sizes (minutes).
	ScalePaper
)

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func u(v uint64) string    { return fmt.Sprintf("%d", v) }
func mb(v uint64) string   { return fmt.Sprintf("%.2f", float64(v)/(1<<20)) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
