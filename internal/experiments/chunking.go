package experiments

import (
	"repro/internal/chunker"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/segment"
)

// Content-defined chunked ingest over shifted near-duplicate corpora —
// the workload Table 1's aligned corpora deliberately avoid. The
// aligned baseline (one BuildBytes segment per document) re-
// canonicalizes every line after an insertion, so near-duplicates of
// unpadded documents share almost nothing; chunked ingest cuts at
// content-defined boundaries, so every chunk outside the edit windows
// re-resolves to its existing sub-DAG. Two metrics per line size:
// resident unique-line footprint (aligned vs chunked, after loading
// bases + variants) and simulated DRAM per variant ingest with a cold
// vs warm chunk memo.

// ChunkingRow is one line-size row of the chunking experiment.
type ChunkingRow struct {
	LineBytes      int
	Items          int
	TotalBytes     uint64
	AlignedLines   uint64  // live lines after aligned BuildBytes of all items
	ChunkedLines   uint64  // live lines after chunked ingest of all items
	FootprintRatio float64 // aligned/chunked; >1 means chunking wins
	ColdDRAM       uint64  // simulated DRAM ingesting the variants, cold memo
	WarmDRAM       uint64  // same variants, memo warm from the bases
	DRAMRatio      float64 // cold/warm
	MemoHitRate    float64 // fraction of variant chunks served by the memo
}

// chunkingMachine: ample LLC (the accounting regime of the twin-machine
// pins) so the cold/warm comparison measures memo traffic, not cache
// capacity.
func chunkingMachine(lineBytes int) *core.Machine {
	return core.NewMachine(core.Config{
		LineBytes: lineBytes, BucketBits: 16, DataWays: 12,
		CacheLines: 1 << 15, CacheWays: 8,
	})
}

func chunkingDram(m *core.Machine, fn func()) uint64 {
	m.ResetStats()
	fn()
	m.FlushCache()
	return m.Stats().Store.Total()
}

// RunChunking loads a shifted near-duplicate corpus three ways per line
// size — aligned BuildBytes, chunked ingest, and chunked re-ingest of
// the variants against a warm memo — and reports footprint and DRAM.
func RunChunking(sc Scale) (Table, []ChunkingRow) {
	nBases, variantsPer, editsPer, mean := 8, 3, 4, 24<<10
	if sc == ScalePaper {
		nBases, variantsPer, editsPer, mean = 32, 5, 6, 48<<10
	}
	c := datagen.NearDuplicateCorpus("shifted-html", nBases, variantsPer, editsPer, mean, 211)
	items := c.AllItems()

	t := Table{
		Title: "Chunked ingest: shift-surviving dedup on near-duplicate documents",
		Note:  "aligned = one BuildBytes segment per doc; chunked = content-defined chunk DAGs; DRAM columns ingest the variants only",
		Headers: []string{"LS", "items", "MB", "aligned lines", "chunked lines", "ratio",
			"cold DRAM", "warm DRAM", "ratio", "memo hit"},
	}
	var rows []ChunkingRow
	for _, lb := range []int{16, 32, 64} {
		row := ChunkingRow{LineBytes: lb, Items: len(items), TotalBytes: c.TotalBytes()}

		// Footprint: everything resident at once, like a cache holding
		// every revision of its hot documents.
		ma := chunkingMachine(lb)
		ab := segment.NewBuilder(ma, 0)
		for _, it := range items {
			ab.BuildBytes(it)
		}
		ab.Close()
		row.AlignedLines = ma.LiveLines()

		mc := chunkingMachine(lb)
		g := chunker.NewIngestor(mc, chunker.Config{})
		for _, it := range c.Bases {
			g.IngestBytes(it)
		}
		mc.FlushCache()
		preStats := g.Stats()
		row.WarmDRAM = chunkingDram(mc, func() {
			for _, it := range c.Variants {
				g.IngestBytes(it)
			}
		})
		post := g.Stats()
		if vc := post.Chunks - preStats.Chunks; vc > 0 {
			row.MemoHitRate = float64(post.MemoHits-preStats.MemoHits) / float64(vc)
		}
		row.ChunkedLines = mc.LiveLines()
		g.Close()

		// Cold: identical machine history (bases ingested the same way),
		// but the variant pass starts with an empty memo.
		md := chunkingMachine(lb)
		g1 := chunker.NewIngestor(md, chunker.Config{})
		for _, it := range c.Bases {
			g1.IngestBytes(it)
		}
		g1.Close()
		g2 := chunker.NewIngestor(md, chunker.Config{})
		md.FlushCache()
		row.ColdDRAM = chunkingDram(md, func() {
			for _, it := range c.Variants {
				g2.IngestBytes(it)
			}
		})
		g2.Close()

		if row.ChunkedLines > 0 {
			row.FootprintRatio = float64(row.AlignedLines) / float64(row.ChunkedLines)
		}
		if row.WarmDRAM > 0 {
			row.DRAMRatio = float64(row.ColdDRAM) / float64(row.WarmDRAM)
		}
		rows = append(rows, row)
		t.AddRow(u(uint64(lb)), u(uint64(row.Items)), mb(row.TotalBytes),
			u(row.AlignedLines), u(row.ChunkedLines), f2(row.FootprintRatio),
			u(row.ColdDRAM), u(row.WarmDRAM), f2(row.DRAMRatio), pct(row.MemoHitRate))
	}
	return t, rows
}
