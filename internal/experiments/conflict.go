package experiments

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/hds"
	"repro/internal/merge"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// The §5.1.1 concurrency analysis, in two parts: the paper's analytic
// model evaluated at its own parameters (checking we reproduce 2 µs
// update latency, conflict probability 0.04 at N=10^6 / 0.06 at 10^9,
// and ~200 ns merge-update latency), and a live contention run driving
// goroutines through MCAS on a shared map to measure the actual CAS
// conflict and merge-resolution rates in the simulator.

// DRAMLatency is the paper's DRAM access latency constant.
const DRAMLatency = 50e-9 // 50 ns

// AnalyticRow is one parameter point of the model.
type AnalyticRow struct {
	N          float64 // key-value pairs in the map
	LineBytes  int
	Levels     float64 // DAG levels touched by an update
	UpdateSec  float64 // 2 * levels * tDRAM
	ConflictP  float64 // updateSec / meanSetInterval
	MergeSec   float64 // geometric series ~= 4 * tDRAM
	SetPeriodS float64
}

// Analytic evaluates the paper's model: an 8-processor system at 200 K
// commands/s with a 10:1 get:set ratio issues one set every 50 µs; a map
// update reloads and regenerates log_fanout(N) levels, each costing one
// DRAM read on the way down and one lookup on the way up.
func Analytic(n float64, lineBytes int) AnalyticRow {
	fanout := float64(lineBytes / 8)
	levels := math.Log(n) / math.Log(fanout)
	update := 2 * levels * DRAMLatency
	const setPeriod = 50e-6 // one set per 50 microseconds
	return AnalyticRow{
		N:         n,
		LineBytes: lineBytes,
		Levels:    levels,
		UpdateSec: update,
		ConflictP: update / setPeriod,
		// Conflict one level below root with p=1/2, two with 1/4, ...:
		// expected merge cost 2*tDRAM*(1+1/2+1/4+...) = 4*tDRAM.
		MergeSec:   4 * DRAMLatency,
		SetPeriodS: setPeriod,
	}
}

// LiveResult reports the measured contention run.
type LiveResult struct {
	Workers        int
	UpdatesPerWkr  int
	CASAttempts    uint64
	CASConflicts   uint64
	MergesResolved uint64
	MergeFailures  uint64
	LostUpdates    int
	// Map is the segment map's conflict telemetry at the end of the run:
	// per-entry commit/conflict/denial/abort totals (segmap.Snapshot).
	Map segmap.Snapshot
}

// RunConflict produces the §5.1.1 table: analytic rows at the paper's
// parameters plus a live goroutine contention measurement.
func RunConflict(sc Scale) (Table, LiveResult, error) {
	t := Table{
		Title: "Sec 5.1.1: Concurrent update analysis",
		Note:  "analytic model at the paper's parameters; live mCAS contention below",
		Headers: []string{"N", "line", "levels", "update_us",
			"P(conflict)", "merge_ns"},
	}
	for _, n := range []float64{1e6, 1e9} {
		for _, lb := range []int{16, 32, 64} {
			r := Analytic(n, lb)
			t.AddRow(fmt.Sprintf("%.0e", r.N), u(uint64(lb)), f2(r.Levels),
				f2(r.UpdateSec*1e6), f3(r.ConflictP), f2(r.MergeSec*1e9))
		}
	}

	live, err := runLiveContention(sc)
	if err != nil {
		return t, live, err
	}
	t.AddRow("", "", "", "", "", "")
	t.AddRow("live:", fmt.Sprintf("workers=%d", live.Workers),
		fmt.Sprintf("attempts=%d", live.CASAttempts),
		fmt.Sprintf("conflicts=%d", live.CASConflicts),
		fmt.Sprintf("merged=%d", live.MergesResolved),
		fmt.Sprintf("lost=%d", live.LostUpdates))
	t.AddRow("segmap:", fmt.Sprintf("entries=%d", live.Map.Entries),
		fmt.Sprintf("commits=%d", live.Map.Total.Commits),
		fmt.Sprintf("conflicts=%d", live.Map.Total.Conflicts),
		fmt.Sprintf("denied=%d", live.Map.Total.Denied),
		fmt.Sprintf("aborts=%d", live.Map.Total.Aborts))
	return t, live, nil
}

func runLiveContention(sc Scale) (LiveResult, error) {
	workers, updates := 8, 40
	if sc == ScalePaper {
		workers, updates = 16, 250
	}
	h := hds.NewHeap(core.Config{
		LineBytes: 16, BucketBits: 16, DataWays: 12, CacheLines: 8192, CacheWays: 16,
	})
	vsid := h.SM.Create(segmap.Entry{
		Seg:   segment.NewSparse(16),
		Flags: segmap.FlagMergeUpdate,
	})

	var mu sync.Mutex
	agg := LiveResult{Workers: workers, UpdatesPerWkr: updates}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var st merge.Stats
			for i := 0; i < updates; i++ {
				e, err := h.SM.Load(vsid)
				if err != nil {
					errs <- err
					return
				}
				idx := uint64(1 + g*updates + i)
				tx := segment.NewTxn(h.M, e.Seg)
				tx.WriteWord(idx, uint64(g+1), word.TagRaw)
				next := tx.Commit()
				// Register the version's full logical size: the snapshot's
				// registered size extended by this write. MCAS additionally
				// keeps the maximum across merged-in versions, so the
				// entry's size tracks the largest committed write whatever
				// the commit order.
				size := (idx + 1) * 8
				if e.Size > size {
					size = e.Size
				}
				ok, err := merge.MCAS(h.M, h.SM, vsid, e.Seg, next, size, &st)
				segment.ReleaseSeg(h.M, e.Seg)
				if err != nil || !ok {
					errs <- fmt.Errorf("worker %d: mcas ok=%v err=%v", g, ok, err)
					return
				}
			}
			mu.Lock()
			agg.MergesResolved += st.Merges - st.Failures
			agg.MergeFailures += st.Failures
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return agg, err
	}
	okCAS, failCAS := h.SM.CASStats()
	agg.CASAttempts = okCAS + failCAS
	agg.CASConflicts = failCAS
	agg.Map = h.SM.Snapshot()

	// Verify no update was lost.
	final, err := h.SM.Load(vsid)
	if err != nil {
		return agg, err
	}
	defer segment.ReleaseSeg(h.M, final.Seg)
	for g := 0; g < workers; g++ {
		for i := 0; i < updates; i++ {
			if v, _ := segment.ReadWord(h.M, final.Seg, uint64(1+g*updates+i)); v != uint64(g+1) {
				agg.LostUpdates++
			}
		}
	}
	// The registered size must reflect the largest committed write even
	// when that write's publish was rebased by a later merge.
	if want := uint64(workers*updates+1) * 8; final.Size != want {
		return agg, fmt.Errorf("registered size %d, want %d (merge dropped size)", final.Size, want)
	}
	return agg, nil
}
