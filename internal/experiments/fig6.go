package experiments

import (
	"repro/internal/kvstore"
)

// RunFig6 regenerates Figure 6: memcached DRAM accesses on the
// conventional architecture versus HICAMP at 16/32/64-byte lines, with
// HICAMP traffic split into reads / writes / lookups / de-allocation /
// reference counting. The paper ran 100 K preloaded items and 15 K
// requests; ScaleTest uses 1/50 of that, ScalePaper 1/5 (the simulator
// is a functional model, not a data-parallel trace replayer).
func RunFig6(sc Scale) (Table, []kvstore.Fig6Result, error) {
	items, reqs, mean := 300, 600, 1500
	if sc == ScalePaper {
		items, reqs, mean = 20000, 3000, 3000
	}
	w := kvstore.NewWorkload(items, reqs, mean, 2012)

	t := Table{
		Title: "Figure 6: Memcached DRAM accesses",
		Note:  "per architecture and line size (counts for the measured request window)",
		Headers: []string{"line", "arch", "reads", "writes", "lookups",
			"dealloc", "RC", "total"},
	}
	var results []kvstore.Fig6Result
	for _, lb := range []int{16, 32, 64} {
		r, err := kvstore.RunFig6(lb, w)
		if err != nil {
			return t, nil, err
		}
		results = append(results, r)
		t.AddRow(u(uint64(lb)), "conv", u(r.ConvReads), u(r.ConvWrites),
			"-", "-", "-", u(r.ConvTotal()))
		t.AddRow(u(uint64(lb)), "hicamp", u(r.HicReads), u(r.HicWrites),
			u(r.HicLookups), u(r.HicDealloc), u(r.HicRC), u(r.HicampTotal()))
	}
	return t, results, nil
}
