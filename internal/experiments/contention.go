package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hds"
	"repro/internal/merge"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// The §2.4/§3.4 contention claim, measured: under multi-writer
// merge-update the cost of a commit tracks the *overlap* between
// concurrent updates, not the size of the shared structure.
//
// Contention is generated deterministically (the 1-CPU container rarely
// interleaves optimistic goroutines mid-update): each round, every
// writer builds its version against the same snapshot and the versions
// publish sequentially, so all but the first publish per round are
// guaranteed stale and must rebase through the merge engine — the
// paper's concurrent-set conflict model with the conflict probability
// pinned to 1. Two sweeps:
//
//   - Disjoint-range writers over growing segment sizes: every rebase
//     succeeds and the simulated-DRAM cost per commit stays flat as the
//     segment grows 16× — the wave merge only walks changed paths,
//     untouched sub-DAGs pass by PLID comparison.
//
//   - Overlapping key ranges: writers bind worker-distinct value PLIDs
//     to partially shared key sets. Shared keys are true conflicts
//     (distinct references stored into one field), so the merge aborts
//     and the batch replays against the committed version; cost and
//     throughput degrade with the overlap fraction while the disjoint
//     end commits without replays.

// DisjointRow is one segment size of the disjoint-writer sweep.
type DisjointRow struct {
	Words         uint64 // preloaded segment size
	Workers       int
	Commits       uint64 // successful MCAS publishes
	Conflicts     uint64 // CAS attempts that lost and merged
	DRAMPerCommit float64
}

// OverlapRow is one overlap fraction of the overlapping-range sweep.
type OverlapRow struct {
	Overlap      float64 // fraction of each worker's keys drawn from the shared pool
	Workers      int
	Keys         uint64 // key commits attempted (constant across fractions)
	KeysPerSec   float64
	CASConflicts uint64 // segment-map CAS losses (merge attempts)
	Replays      uint64 // commits replayed after a true merge conflict
	DRAMPerKey   float64
}

// ContentionResult carries the raw sweep rows for benchjson and tests.
type ContentionResult struct {
	Disjoint []DisjointRow
	Overlap  []OverlapRow
}

// RunContention produces the contention table: the disjoint-range DRAM
// flatness sweep and the overlapping-range degradation sweep.
func RunContention(sc Scale) (Table, ContentionResult, error) {
	t := Table{
		Title: "Sec 2.4/3.4: multi-writer contention (merge-update)",
		Note:  "disjoint writers: DRAM/commit flat as the segment grows; overlapping writers: cost degrades with overlap, not size",
		Headers: []string{"sweep", "param", "workers", "commits",
			"conflicts", "cost"},
	}
	var res ContentionResult

	workers, rounds := 4, 24
	sizes := []uint64{1 << 12, 1 << 14, 1 << 16}
	if sc == ScalePaper {
		workers, rounds = 8, 100
		sizes = []uint64{1 << 12, 1 << 16, 1 << 20}
	}
	for _, words := range sizes {
		row, err := runDisjointContention(words, workers, rounds)
		if err != nil {
			return t, res, err
		}
		res.Disjoint = append(res.Disjoint, row)
		t.AddRow("disjoint", fmt.Sprintf("%d words", row.Words), u(uint64(row.Workers)),
			u(row.Commits), u(row.Conflicts),
			fmt.Sprintf("%.1f DRAM/commit", row.DRAMPerCommit))
	}

	oRounds, keysPerWkr := 16, 8
	if sc == ScalePaper {
		oRounds, keysPerWkr = 60, 16
	}
	for _, f := range []float64{0, 0.25, 0.5, 1.0} {
		row, err := runOverlapContention(f, workers, oRounds, keysPerWkr)
		if err != nil {
			return t, res, err
		}
		res.Overlap = append(res.Overlap, row)
		t.AddRow("overlap", pct(row.Overlap), u(uint64(row.Workers)),
			u(row.Keys), u(row.CASConflicts),
			fmt.Sprintf("%.0f keys/s, %d replays", row.KeysPerSec, row.Replays))
	}
	return t, res, nil
}

// runDisjointContention preloads a merge-update word segment and drives
// stale-snapshot rounds of disjoint single-word commits spread across
// the whole range, measuring simulated DRAM per successful commit.
func runDisjointContention(words uint64, workers, rounds int) (DisjointRow, error) {
	h := hds.NewHeap(core.Config{
		LineBytes: 64, BucketBits: 16, DataWays: 12,
		CacheLines: 1 << 15, CacheWays: 8, // ample LLC: capacity misses excluded
	})
	ws := make([]uint64, words)
	for i := range ws {
		ws[i] = uint64(i%251) + 1
	}
	base := segment.BuildWords(h.M, ws, nil)
	vsid := h.SM.Create(segmap.Entry{
		Seg: base, Size: words * 8, Flags: segmap.FlagMergeUpdate,
	})
	// Exclude the preload's deferred writebacks from the measured window.
	h.M.FlushCache()
	h.M.ResetStats()

	stride := words / uint64(workers*rounds)
	if stride == 0 {
		stride = 1
	}
	for r := 0; r < rounds; r++ {
		e, err := h.SM.Load(vsid)
		if err != nil {
			return DisjointRow{}, err
		}
		// Every worker builds against the same snapshot; all but the
		// first publish rebases over the round's earlier committers.
		for g := 0; g < workers; g++ {
			idx := (uint64(g*rounds+r) * stride) % words
			next, _ := segment.WriteBatch(h.M, e.Seg,
				[]segment.Update{{Idx: idx, W: uint64(g*rounds+r) + 1000, T: word.TagRaw}})
			ok, err := merge.MCAS(h.M, h.SM, vsid, e.Seg, next, words*8, nil)
			if err != nil || !ok {
				segment.ReleaseSeg(h.M, e.Seg)
				return DisjointRow{}, fmt.Errorf("disjoint worker %d round %d: ok=%v err=%v", g, r, ok, err)
			}
		}
		segment.ReleaseSeg(h.M, e.Seg)
	}
	h.M.FlushCache()
	dramTotal := h.M.Stats().Store.Total()
	okCAS, failCAS := h.SM.CASStats()
	return DisjointRow{
		Words:         words,
		Workers:       workers,
		Commits:       okCAS,
		Conflicts:     failCAS,
		DRAMPerCommit: float64(dramTotal) / float64(okCAS),
	}, nil
}

// runOverlapContention drives stale-snapshot rounds of per-key commits
// whose key sets share an overlap fraction of a common pool. Values are
// worker-distinct PLIDs, so a shared key is a true conflict: the stale
// publisher's merge aborts and the commit replays against the committed
// version (the application-level retry the paper prescribes for real
// conflicts). Replay work — and therefore cost per key — scales with
// the overlap fraction, not the structure size.
func runOverlapContention(overlap float64, workers, rounds, keysPerWkr int) (OverlapRow, error) {
	h := hds.NewHeap(core.Config{
		LineBytes: 64, BucketBits: 16, DataWays: 12,
		CacheLines: 1 << 15, CacheWays: 8,
	})
	vsid := h.SM.Create(segmap.Entry{
		Seg: segment.NewSparse(8), Flags: segmap.FlagMergeUpdate,
	})
	shared := int(overlap * float64(keysPerWkr))
	arity := uint64(h.M.LineWords())

	// Worker-distinct value references.
	vals := make([]word.PLID, workers)
	for g := range vals {
		vals[g] = h.M.LookupLine(word.ContentFromBytes(h.M.LineWords(),
			[]byte(fmt.Sprintf("value of worker %d", g))))
	}
	h.M.FlushCache()
	h.M.ResetStats()

	var replays uint64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		e, err := h.SM.Load(vsid)
		if err != nil {
			return OverlapRow{}, err
		}
		// Every worker publishes its keys against the round's snapshot.
		for g := 0; g < workers; g++ {
			for k := 0; k < keysPerWkr; k++ {
				var idx uint64
				if k < shared {
					// Shared pool: the same key slots for every worker,
					// spread one per line so each conflict dirties its
					// own path.
					idx = uint64(r*keysPerWkr+k) * arity
				} else {
					// Private range per worker.
					idx = uint64(1<<16) + uint64((g*rounds+r)*keysPerWkr+k)*arity
				}
				snap, owned := e.Seg, false
				for {
					next, _ := segment.WriteBatch(h.M, snap,
						[]segment.Update{{Idx: idx, W: uint64(vals[g]), T: word.TagPLID}})
					ok, merr := merge.MCAS(h.M, h.SM, vsid, snap, next, 0, nil)
					if owned {
						segment.ReleaseSeg(h.M, snap)
						owned = false
					}
					if ok {
						break
					}
					if merr != nil && merr != merge.ErrConflict {
						segment.ReleaseSeg(h.M, e.Seg)
						return OverlapRow{}, merr
					}
					// True conflict: replay against the committed version.
					replays++
					cur, lerr := h.SM.Load(vsid)
					if lerr != nil {
						segment.ReleaseSeg(h.M, e.Seg)
						return OverlapRow{}, lerr
					}
					snap, owned = cur.Seg, true
				}
			}
		}
		segment.ReleaseSeg(h.M, e.Seg)
	}
	secs := time.Since(start).Seconds()
	h.M.FlushCache()
	dramTotal := h.M.Stats().Store.Total()
	_, failCAS := h.SM.CASStats()
	total := uint64(workers * rounds * keysPerWkr)
	return OverlapRow{
		Overlap:      overlap,
		Workers:      workers,
		Keys:         total,
		KeysPerSec:   float64(total) / secs,
		CASConflicts: failCAS,
		Replays:      replays,
		DRAMPerKey:   float64(dramTotal) / float64(total),
	}, nil
}
