package segmap

import (
	"fmt"

	"repro/internal/word"
)

// Durability hooks and restore paths. The segment map is the only
// mutable state in the architecture, so root publishes observed here —
// together with the store's line liveness journal — are everything the
// write-ahead layer (internal/durable) needs to reconstruct the machine.
// Weak aliases are deliberately not journaled: they are non-owning
// ephemeral references whose zeroing semantics would require persisting
// slot generations; a restarted process re-creates any aliases it needs
// (documented limitation, see DESIGN.md).

// Journal observes entry publishes and deletes for the write-ahead log.
// Both methods are called with sm.mu held — that lock is the publish
// order, and the log must record publishes in the order readers could
// observe them. Implementations must not call back into the map and must
// not block beyond a buffer append.
type Journal interface {
	// JournalPublish records that v now maps to e (creation or root
	// replacement; e.Seg.Root may be Zero for an empty segment).
	JournalPublish(v word.VSID, e Entry)
	// JournalDelete records that v's entry was removed.
	JournalDelete(v word.VSID)
}

// SetJournal attaches the publish journal. Attach before the map serves
// traffic (it is read without synchronization); passing nil detaches.
func (sm *Map) SetJournal(j Journal) {
	sm.mu.Lock()
	sm.journal = j
	sm.mu.Unlock()
}

// DumpEntry pairs a VSID with its entry for checkpointing.
type DumpEntry struct {
	V word.VSID
	E Entry
}

// Dump returns every live non-weak entry under one lock acquisition —
// the checkpoint snapshot. The returned roots are NOT retained: the
// caller must pair the dump with log positioning (see internal/durable)
// rather than holding the segments.
func (sm *Map) Dump() []DumpEntry {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make([]DumpEntry, 0, len(sm.slots))
	for i := range sm.slots {
		s := &sm.slots[i]
		if !s.used || s.weak {
			continue
		}
		out = append(out, DumpEntry{V: word.VSID(i + 1), E: s.e})
	}
	return out
}

// Restore installs entries at their exact VSIDs into an empty map — the
// recovery path. VSIDs are positional (slot index + 1) and embedded in
// client state (kvstore namespaces, hds handles), so a restored map must
// reproduce them exactly. Gaps between the installed VSIDs become free
// slots, preserving the allocator's reuse behaviour. Ownership of one
// reference per non-zero root transfers to the map (recovery installed
// those references when it rebuilt the store's counts). No journal
// callbacks fire: recovery replays the log, it does not extend it.
func (sm *Map) Restore(entries []DumpEntry) error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if len(sm.slots) != 0 {
		return fmt.Errorf("segmap: restore into non-empty map (%d slots)", len(sm.slots))
	}
	var max word.VSID
	for _, de := range entries {
		if de.V == 0 || de.V&(roBit|weakBit) != 0 {
			return fmt.Errorf("segmap: restore of invalid VSID %#x", uint64(de.V))
		}
		if de.V > max {
			max = de.V
		}
	}
	sm.slots = make([]slot, max)
	for _, de := range entries {
		s := &sm.slots[de.V-1]
		if s.used {
			return fmt.Errorf("segmap: duplicate VSID %#x in restore", uint64(de.V))
		}
		*s = slot{used: true, e: de.E}
	}
	for i := range sm.slots {
		if !sm.slots[i].used {
			sm.free = append(sm.free, word.VSID(i+1))
		}
	}
	return nil
}
