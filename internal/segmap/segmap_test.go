package segmap

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/segment"
	"repro/internal/word"
)

func setup(t *testing.T) (*core.Machine, *Map) {
	t.Helper()
	m := core.NewMachine(core.TestConfig())
	return m, New(m)
}

func mkSeg(m *core.Machine, s string) segment.Seg {
	return segment.BuildBytes(m, []byte(s))
}

func TestCreateLoad(t *testing.T) {
	m, sm := setup(t)
	seg := mkSeg(m, "hello segment map")
	v := sm.Create(Entry{Seg: seg, Size: 17})
	e, err := sm.Load(v)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Seg.Equal(seg) || e.Size != 17 {
		t.Fatalf("loaded %+v", e)
	}
	segment.ReleaseSeg(m, e.Seg)
}

func TestLoadRetainsSnapshot(t *testing.T) {
	// Snapshot isolation: a loaded segment must survive a concurrent
	// commit that replaces (and would otherwise reclaim) the old DAG.
	m, sm := setup(t)
	v := sm.Create(Entry{Seg: mkSeg(m, "version one of the data")})
	snap, _ := sm.Load(v)
	old, _ := sm.Load(v)
	if !sm.CAS(v, old.Seg, mkSeg(m, "version two of the data"), 23) {
		t.Fatal("CAS failed")
	}
	segment.ReleaseSeg(m, old.Seg)
	// The snapshot must still read as version one.
	got := segment.ReadBytes(m, snap.Seg, 0, 23)
	if string(got) != "version one of the data" {
		t.Fatalf("snapshot corrupted: %q", got)
	}
	segment.ReleaseSeg(m, snap.Seg)
	if err := m.CheckConsistency(sm.externalRefs()); err != nil {
		t.Fatal(err)
	}
}

func TestCASConflictFails(t *testing.T) {
	m, sm := setup(t)
	base := mkSeg(m, "base")
	v := sm.Create(Entry{Seg: base})
	winner := mkSeg(m, "winner")
	if !sm.CAS(v, base, winner, 6) {
		t.Fatal("first CAS failed")
	}
	loser := mkSeg(m, "loser")
	if sm.CAS(v, base, loser, 5) {
		t.Fatal("stale CAS succeeded")
	}
	segment.ReleaseSeg(m, loser) // failed CAS leaves ownership with caller
	e, _ := sm.Load(v)
	if string(segment.ReadBytes(m, e.Seg, 0, 6)) != "winner" {
		t.Fatal("wrong version visible")
	}
	segment.ReleaseSeg(m, e.Seg)
}

func TestReadOnlyRefCannotUpdate(t *testing.T) {
	m, sm := setup(t)
	base := mkSeg(m, "protected")
	v := sm.Create(Entry{Seg: base})
	ro := ReadOnlyRef(v)
	if !IsReadOnly(ro) || IsReadOnly(v) {
		t.Fatal("capability bits wrong")
	}
	e, err := sm.Load(ro)
	if err != nil {
		t.Fatal("read-only load must work:", err)
	}
	segment.ReleaseSeg(m, e.Seg)
	next := mkSeg(m, "attack!!!")
	if sm.CAS(ro, base, next, 9) {
		t.Fatal("CAS through read-only reference succeeded")
	}
	segment.ReleaseSeg(m, next)
	if err := sm.Delete(ro); err == nil {
		t.Fatal("delete through read-only reference succeeded")
	}
}

func TestWeakAliasZeroesAfterDelete(t *testing.T) {
	m, sm := setup(t)
	v := sm.Create(Entry{Seg: mkSeg(m, "weakly referenced")})
	w := sm.CreateWeakAlias(v)
	e, err := sm.Load(w)
	if err != nil || e.Seg.Root == word.Zero {
		t.Fatalf("weak load before delete: %v, %+v", err, e)
	}
	segment.ReleaseSeg(m, e.Seg)
	if err := sm.Delete(v); err != nil {
		t.Fatal(err)
	}
	e, err = sm.Load(w)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seg.Root != word.Zero {
		t.Fatal("weak reference not zeroed after reclamation")
	}
	if m.LiveLines() != 0 {
		t.Fatal("weak alias kept the segment alive")
	}
}

func TestWeakAliasDetectsSlotReuse(t *testing.T) {
	m, sm := setup(t)
	v := sm.Create(Entry{Seg: mkSeg(m, "first occupant")})
	w := sm.CreateWeakAlias(v)
	sm.Delete(v)
	v2 := sm.Create(Entry{Seg: mkSeg(m, "second occupant")})
	if v2 != v {
		t.Skip("slot not reused; nothing to check")
	}
	e, _ := sm.Load(w)
	if e.Seg.Root != word.Zero {
		t.Fatal("weak alias resurrected against an unrelated segment")
	}
}

func TestDeleteReleasesRoot(t *testing.T) {
	m, sm := setup(t)
	v := sm.Create(Entry{Seg: mkSeg(m, "to be deleted, content long enough to use lines")})
	if m.LiveLines() == 0 {
		t.Fatal("setup: no lines")
	}
	if err := sm.Delete(v); err != nil {
		t.Fatal(err)
	}
	if m.LiveLines() != 0 {
		t.Fatalf("%d lines leaked after delete", m.LiveLines())
	}
	if _, err := sm.Load(v); err == nil {
		t.Fatal("load of deleted VSID succeeded")
	}
}

func TestBatchAtomicCommit(t *testing.T) {
	// §2.3: multiple segments updated by one atomic commit.
	m, sm := setup(t)
	v1 := sm.Create(Entry{Seg: mkSeg(m, "account A: 100")})
	v2 := sm.Create(Entry{Seg: mkSeg(m, "account B: 50")})
	b := sm.Begin()
	e1, _ := b.Load(v1)
	e2, _ := b.Load(v2)
	segment.ReleaseSeg(m, e1.Seg)
	segment.ReleaseSeg(m, e2.Seg)
	b.Store(v1, Entry{Seg: mkSeg(m, "account A: 70"), Size: 14})
	b.Store(v2, Entry{Seg: mkSeg(m, "account B: 80"), Size: 13})
	if !b.Commit() {
		t.Fatal("batch commit failed")
	}
	g1, _ := sm.Load(v1)
	g2, _ := sm.Load(v2)
	if string(segment.ReadBytes(m, g1.Seg, 0, 13)) != "account A: 70" {
		t.Fatalf("v1 = %q", segment.ReadBytes(m, g1.Seg, 0, 13))
	}
	if string(segment.ReadBytes(m, g2.Seg, 0, 13)) != "account B: 80" {
		t.Fatalf("v2 = %q", segment.ReadBytes(m, g2.Seg, 0, 13))
	}
	segment.ReleaseSeg(m, g1.Seg)
	segment.ReleaseSeg(m, g2.Seg)
}

func TestBatchConflictAbortsAll(t *testing.T) {
	m, sm := setup(t)
	v1 := sm.Create(Entry{Seg: mkSeg(m, "x1")})
	v2 := sm.Create(Entry{Seg: mkSeg(m, "x2")})
	b := sm.Begin()
	e1, _ := b.Load(v1)
	segment.ReleaseSeg(m, e1.Seg)
	b.Store(v1, Entry{Seg: mkSeg(m, "b1")})
	b.Store(v2, Entry{Seg: mkSeg(m, "b2")})
	// Interleaving writer commits to v1 before the batch.
	cur, _ := sm.Load(v1)
	if !sm.CAS(v1, cur.Seg, mkSeg(m, "i1"), 2) {
		t.Fatal("interleaving CAS failed")
	}
	segment.ReleaseSeg(m, cur.Seg)
	if b.Commit() {
		t.Fatal("conflicting batch committed")
	}
	// v2 must be untouched by the failed batch.
	g2, _ := sm.Load(v2)
	if string(segment.ReadBytes(m, g2.Seg, 0, 2)) != "x2" {
		t.Fatal("failed batch partially applied")
	}
	segment.ReleaseSeg(m, g2.Seg)
}

func TestConcurrentCASOneWinnerPerRound(t *testing.T) {
	m, sm := setup(t)
	v := sm.Create(Entry{Seg: mkSeg(m, "counter: 0")})
	var wg sync.WaitGroup
	wins := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				old, _ := sm.Load(v)
				next := segment.BuildBytes(m, []byte("counter: g"+string(rune('0'+g))))
				if sm.CAS(v, old.Seg, next, 11) {
					wins[g]++
				} else {
					segment.ReleaseSeg(m, next)
				}
				segment.ReleaseSeg(m, old.Seg)
			}
		}(g)
	}
	wg.Wait()
	ok, fail := sm.CASStats()
	if ok+fail != 8*50 {
		t.Fatalf("CAS attempts %d+%d != 400", ok, fail)
	}
	if ok == 0 {
		t.Fatal("no CAS ever succeeded")
	}
	if err := m.CheckConsistency(sm.externalRefs()); err != nil {
		t.Fatal(err)
	}
}

// externalRefs reports the root references the map currently owns, for
// consistency checking in tests.
func (sm *Map) externalRefs() map[word.PLID]uint64 {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	ext := make(map[word.PLID]uint64)
	for _, s := range sm.slots {
		if s.used && !s.weak && s.e.Seg.Root != word.Zero {
			ext[s.e.Seg.Root]++
		}
	}
	return ext
}
