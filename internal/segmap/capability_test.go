package segmap

import (
	"sync"
	"testing"

	"repro/internal/segment"
	"repro/internal/word"
)

// Regression: Batch.Store used to accept a weak-alias VSID and silently
// follow it to the target at commit, letting a non-updating reference
// mutate the entry it aliased. A weak VSID must be rejected at Store,
// exactly like Map.CAS rejects it.
func TestBatchStoreRejectsWeakVSID(t *testing.T) {
	m, sm := setup(t)
	v := sm.Create(Entry{Seg: mkSeg(m, "guarded target")})
	w := sm.CreateWeakAlias(v)

	b := sm.Begin()
	evil := mkSeg(m, "smuggled write!")
	if err := b.Store(w, Entry{Seg: evil, Size: 15}); err == nil {
		b.Abort()
		t.Fatal("batch store through weak VSID accepted")
	}
	// The rejected store leaves ownership with the caller.
	segment.ReleaseSeg(m, evil)
	b.Abort()

	e, _ := sm.Load(v)
	if string(segment.ReadBytes(m, e.Seg, 0, 14)) != "guarded target" {
		t.Fatalf("target mutated through weak alias: %q",
			segment.ReadBytes(m, e.Seg, 0, 14))
	}
	segment.ReleaseSeg(m, e.Seg)

	snap := sm.Snapshot()
	if snap.Total.Denied == 0 {
		t.Fatal("capability denial not recorded in Snapshot")
	}
	if err := m.CheckConsistency(sm.externalRefs()); err != nil {
		t.Fatal(err)
	}
}

// A batch that mixes a valid store with a weak-VSID store must still
// commit the valid one after the weak store errors out.
func TestBatchWeakRejectionDoesNotPoisonBatch(t *testing.T) {
	m, sm := setup(t)
	v := sm.Create(Entry{Seg: mkSeg(m, "aa")})
	w := sm.CreateWeakAlias(v)

	b := sm.Begin()
	bad := mkSeg(m, "xx")
	if err := b.Store(w, Entry{Seg: bad}); err == nil {
		t.Fatal("weak store accepted")
	}
	segment.ReleaseSeg(m, bad)
	b.Store(v, Entry{Seg: mkSeg(m, "bb"), Size: 2})
	if !b.Commit() {
		t.Fatal("commit of remaining valid store failed")
	}
	e, _ := sm.Load(v)
	if string(segment.ReadBytes(m, e.Seg, 0, 2)) != "bb" {
		t.Fatal("valid store lost")
	}
	segment.ReleaseSeg(m, e.Seg)
}

// Regression: CreateWeakAlias of a VSID that is itself a weak alias used
// to record the alias *slot* as its target. Deleting the intermediate
// alias then wrongly zeroed the second-level alias while the base segment
// was still live — and deleting the base left the second-level alias
// resurrecting through a dangling chain. The chain must be resolved to
// the base target at creation.
func TestWeakAliasOfWeakAliasTracksBaseTarget(t *testing.T) {
	m, sm := setup(t)
	v := sm.Create(Entry{Seg: mkSeg(m, "base segment data")})
	w1 := sm.CreateWeakAlias(v)
	w2 := sm.CreateWeakAlias(w1)

	// Deleting the intermediate alias must NOT affect w2: its target is
	// the base entry, which is still live.
	if err := sm.Delete(w1); err != nil {
		t.Fatal(err)
	}
	e, err := sm.Load(w2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seg.Root == word.Zero {
		t.Fatal("alias-of-alias zeroed by intermediate alias deletion")
	}
	if string(segment.ReadBytes(m, e.Seg, 0, 17)) != "base segment data" {
		t.Fatalf("alias-of-alias reads %q", segment.ReadBytes(m, e.Seg, 0, 17))
	}
	segment.ReleaseSeg(m, e.Seg)

	// Deleting the base must zero w2 like any weak reference.
	if err := sm.Delete(v); err != nil {
		t.Fatal(err)
	}
	e, err = sm.Load(w2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seg.Root != word.Zero {
		t.Fatal("alias-of-alias survived base target deletion")
	}
	if m.LiveLines() != 0 {
		t.Fatal("alias chain kept the segment alive")
	}
}

// An alias of an already-zeroed alias must itself read as zero, not
// resurrect through slot reuse of the base target.
func TestWeakAliasOfDeadAliasStaysZero(t *testing.T) {
	m, sm := setup(t)
	v := sm.Create(Entry{Seg: mkSeg(m, "short-lived")})
	w1 := sm.CreateWeakAlias(v)
	if err := sm.Delete(v); err != nil {
		t.Fatal(err)
	}
	// w1 now reads zero; a new alias chained through it must too — even
	// after the base slot is reused by an unrelated entry.
	w2 := sm.CreateWeakAlias(w1)
	v2 := sm.Create(Entry{Seg: mkSeg(m, "new occupant")})
	e, err := sm.Load(w2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seg.Root != word.Zero {
		t.Fatal("alias of dead alias resurrected against slot reuse")
	}
	if err := sm.Delete(v2); err != nil {
		t.Fatal(err)
	}
}

// Snapshot must expose per-VSID commit/conflict/denial/abort counters and
// keep Total monotone across entry deletion.
func TestSnapshotTelemetry(t *testing.T) {
	m, sm := setup(t)
	v := sm.Create(Entry{Seg: mkSeg(m, "t0")})

	// One commit, one conflict, one denial, one abort.
	old, _ := sm.Load(v)
	if !sm.CAS(v, old.Seg, mkSeg(m, "t1"), 2) {
		t.Fatal("CAS failed")
	}
	stale := mkSeg(m, "t2")
	if sm.CAS(v, old.Seg, stale, 2) {
		t.Fatal("stale CAS succeeded")
	}
	segment.ReleaseSeg(m, stale)
	segment.ReleaseSeg(m, old.Seg)
	ro := ReadOnlyRef(v)
	denied := mkSeg(m, "t3")
	if sm.CAS(ro, segment.Seg{}, denied, 2) {
		t.Fatal("read-only CAS succeeded")
	}
	segment.ReleaseSeg(m, denied)
	b := sm.Begin()
	b.Store(v, Entry{Seg: mkSeg(m, "t4")})
	b.Abort()

	snap := sm.Snapshot()
	st, ok := snap.PerVSID[v]
	if !ok {
		t.Fatalf("no per-VSID stats for %#x: %+v", uint64(v), snap)
	}
	if st.Commits != 1 || st.Conflicts != 1 || st.Denied != 1 || st.Aborts != 1 {
		t.Fatalf("per-VSID stats = %+v", st)
	}
	if snap.Total != st {
		t.Fatalf("total %+v != per-VSID %+v with one entry", snap.Total, st)
	}
	if snap.Entries != 1 || snap.Weak != 0 {
		t.Fatalf("entries=%d weak=%d", snap.Entries, snap.Weak)
	}

	// Totals survive slot reclamation.
	if err := sm.Delete(v); err != nil {
		t.Fatal(err)
	}
	after := sm.Snapshot()
	if after.Total != st {
		t.Fatalf("total changed across delete: %+v", after.Total)
	}
	if len(after.PerVSID) != 0 {
		t.Fatal("deleted slot still listed per-VSID")
	}
}

// Stress: concurrent CAS, batch commits and deletes over an overlapping
// set of VSIDs, under the race detector. Checks that the map survives
// entry churn without leaking or corrupting reference counts.
func TestConcurrentCASBatchDelete(t *testing.T) {
	m, sm := setup(t)
	const nVSID = 6
	const rounds = 40

	vsids := make([]word.VSID, nVSID)
	for i := range vsids {
		vsids[i] = sm.Create(Entry{Seg: mkSeg(m, "seed entry number "+string(rune('0'+i)))})
	}

	var wg sync.WaitGroup
	// CAS writers over all entries.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				v := vsids[(g+i)%nVSID]
				old, err := sm.Load(v)
				if err != nil {
					continue // entry deleted by the churn goroutine
				}
				next := segment.BuildBytes(m, []byte("cas writer update g"+string(rune('0'+g))))
				if !sm.CAS(v, old.Seg, next, 21) {
					segment.ReleaseSeg(m, next)
				}
				segment.ReleaseSeg(m, old.Seg)
			}
		}(g)
	}
	// Batch writers over overlapping pairs.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				a, b := vsids[(g+i)%nVSID], vsids[(g+i+1)%nVSID]
				batch := sm.Begin()
				ea, err := batch.Load(a)
				if err != nil {
					batch.Abort()
					continue
				}
				segment.ReleaseSeg(m, ea.Seg)
				batch.Store(a, Entry{Seg: segment.BuildBytes(m, []byte("batch a"))})
				batch.Store(b, Entry{Seg: segment.BuildBytes(m, []byte("batch b"))})
				batch.Commit() // failure releases the buffered roots
			}
		}(g)
	}
	// Churn: delete and recreate one entry repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/2; i++ {
			v := sm.Create(Entry{Seg: segment.BuildBytes(m, []byte("churned entry"))})
			w := sm.CreateWeakAlias(v)
			if e, err := sm.Load(w); err == nil && e.Seg.Root != word.Zero {
				segment.ReleaseSeg(m, e.Seg)
			}
			sm.Delete(v)
			sm.Delete(w)
		}
	}()
	wg.Wait()

	snap := sm.Snapshot()
	if snap.Total.Commits == 0 {
		t.Fatal("no update ever committed under contention")
	}
	for _, v := range vsids {
		if err := sm.Delete(v); err != nil {
			t.Fatal(err)
		}
	}
	if m.LiveLines() != 0 {
		t.Fatalf("%d lines leaked after concurrent churn", m.LiveLines())
	}
	if err := m.CheckConsistency(nil); err != nil {
		t.Fatal(err)
	}
}
