// Package segmap implements the HICAMP virtual segment map (paper §2.3):
// the mapping from virtual segment IDs to [root PLID, height, flags]
// entries. The map is the only mutable state in the architecture; every
// segment update is published by atomically replacing a root PLID here,
// which is what gives HICAMP its snapshot isolation and single-CAS atomic
// update.
//
// Read-only references are modelled as a capability bit inside the VSID
// value itself: a thread handed a read-only VSID can load snapshots but
// its CAS attempts fail, matching the paper's "a reference can be passed
// as read-only, restricting the process from updating the root PLID".
//
// Weak references are aliases that do not pin the segment: after the
// target entry is deleted, loads through the alias return the zero
// segment rather than keeping the DAG alive. Weak VSIDs carry no update
// capability either: a CAS or batch store through a weak alias always
// fails, like a read-only reference.
//
// The paper allows the map itself to live either in a HICAMP segment (so
// several entries commit atomically) or in conventional memory. Batch
// provides the former's semantics: a group of entry updates that commits
// atomically, all-or-nothing, with write-write conflict detection.
//
// The map keeps per-VSID conflict telemetry — commit, conflict,
// capability-denial and abort counts — exposed by Snapshot, the
// observability surface the §5.1.1 contention experiments read.
package segmap

import (
	"fmt"
	"sync"

	"repro/internal/segment"
	"repro/internal/word"
)

// Flags annotate a segment map entry.
type Flags uint8

const (
	// FlagMergeUpdate marks the segment as eligible for merge-update
	// (paper §3.4): conflicting CAS attempts try a three-way merge
	// instead of failing back to the application.
	FlagMergeUpdate Flags = 1 << iota
)

// roBit marks a VSID value as a read-only capability.
const roBit word.VSID = 1 << 62

// weakBit marks a VSID value as a weak alias.
const weakBit word.VSID = 1 << 61

// ReadOnlyRef derives the read-only capability for a VSID.
func ReadOnlyRef(v word.VSID) word.VSID { return v | roBit }

// IsReadOnly reports whether a VSID is a read-only capability.
func IsReadOnly(v word.VSID) bool { return v&roBit != 0 }

// IsWeak reports whether a VSID is a weak alias (either the weak
// capability bit on the value, or a VSID naming a weak-alias slot carries
// it from CreateWeakAlias).
func IsWeak(v word.VSID) bool { return v&weakBit != 0 }

func baseID(v word.VSID) word.VSID { return v &^ (roBit | weakBit) }

// Entry is one segment map record. Size is the segment's logical byte
// length — software metadata kept alongside the architectural
// [rootPLID, height, flags] triple (see DESIGN.md deviations).
type Entry struct {
	Seg   segment.Seg
	Flags Flags
	Size  uint64
}

// VSIDStats counts the update outcomes observed through one VSID — the
// per-entry conflict telemetry of the §5.1.1 analysis.
type VSIDStats struct {
	Commits   uint64 // successful CAS or batch publishes
	Conflicts uint64 // publishes lost to a concurrent committer (stale root)
	Denied    uint64 // attempts rejected by capability checks (read-only/weak)
	Aborts    uint64 // explicit batch aborts touching this entry
}

func (s VSIDStats) add(o VSIDStats) VSIDStats {
	return VSIDStats{
		Commits:   s.Commits + o.Commits,
		Conflicts: s.Conflicts + o.Conflicts,
		Denied:    s.Denied + o.Denied,
		Aborts:    s.Aborts + o.Aborts,
	}
}

type slot struct {
	used     bool
	weak     bool
	gen      uint64    // bumped on delete, detects slot reuse
	alias    word.VSID // weak aliases point at their target's VSID
	aliasGen uint64    // target generation observed at alias creation
	e        Entry
	stats    VSIDStats
}

// Map is a virtual segment map. All methods are safe for concurrent use.
// The map itself stays a single serialization point — it models the one
// architecturally-atomic CAS on an entry — but it never holds its lock
// across reference-count traffic into the memory system: retains happen
// under the lock (they must be atomic with reading the root), releases of
// displaced roots happen after it is dropped.
type Map struct {
	mu    sync.Mutex
	mem   word.Mem
	slots []slot
	free  []word.VSID
	// Aggregate stats. casOK/casFail keep the legacy CAS success/failure
	// split; reclaimed accumulates the per-VSID counters of deleted slots
	// so Snapshot totals are stable across slot reuse.
	casOK     uint64
	casFail   uint64
	reclaimed VSIDStats

	// journal, when non-nil, observes publishes and deletes for the
	// write-ahead log (see durable.go). Called under sm.mu.
	journal Journal
}

// New creates an empty map over the given memory.
func New(mem word.Mem) *Map { return &Map{mem: mem} }

// Create installs a new entry and returns its VSID. Ownership of the
// caller's reference on e.Seg.Root transfers to the map.
func (sm *Map) Create(e Entry) word.VSID {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	v := sm.install(slot{used: true, e: e})
	if sm.journal != nil {
		sm.journal.JournalPublish(v, e)
	}
	return v
}

// CreateWeakAlias returns a weak VSID for target: loading through it
// yields target's current segment until target is deleted, after which it
// yields the zero segment (the paper's "reference that should be zeroed
// when the segment is reclaimed"). An alias of a VSID that is itself a
// weak alias resolves the chain at creation time: the new alias binds to
// the base target (and the base target's generation), so it tracks the
// real segment's lifetime rather than the intermediate alias slot's.
func (sm *Map) CreateWeakAlias(target word.VSID) word.VSID {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	id := baseID(target)
	var gen uint64
	if id != 0 && uint64(id) <= uint64(len(sm.slots)) {
		t := &sm.slots[id-1]
		if t.used && t.weak {
			// Alias-of-alias: bind to the base target the intermediate
			// alias observed, including its generation — so if the base
			// was already reclaimed, the new alias reads zero too.
			id, gen = t.alias, t.aliasGen
		} else {
			gen = t.gen
		}
	}
	return sm.install(slot{used: true, weak: true, alias: id, aliasGen: gen}) | weakBit
}

func (sm *Map) install(s slot) word.VSID {
	if n := len(sm.free); n > 0 {
		v := sm.free[n-1]
		sm.free = sm.free[:n-1]
		s.gen = sm.slots[v-1].gen // preserve reuse detection
		sm.slots[v-1] = s
		return v
	}
	sm.slots = append(sm.slots, s)
	return word.VSID(len(sm.slots))
}

func (sm *Map) slotFor(v word.VSID) (*slot, error) {
	id := baseID(v)
	if id == 0 || uint64(id) > uint64(len(sm.slots)) {
		return nil, fmt.Errorf("segmap: invalid VSID %#x", uint64(v))
	}
	s := &sm.slots[id-1]
	if !s.used {
		return nil, fmt.Errorf("segmap: dangling VSID %#x", uint64(v))
	}
	if s.weak {
		if s.alias == 0 || uint64(s.alias) > uint64(len(sm.slots)) {
			return nil, nil
		}
		t := &sm.slots[s.alias-1]
		if !t.used || t.gen != s.aliasGen {
			return nil, nil // weak target reclaimed (or slot reused): zero
		}
		return t, nil
	}
	return s, nil
}

// statSlot returns the slot whose telemetry an operation on v should be
// charged to: the named slot itself (not the alias target), so denials
// through a weak alias show up against the alias. Returns nil when v does
// not name a live slot.
func (sm *Map) statSlot(v word.VSID) *slot {
	id := baseID(v)
	if id == 0 || uint64(id) > uint64(len(sm.slots)) {
		return nil
	}
	s := &sm.slots[id-1]
	if !s.used {
		return nil
	}
	return s
}

// Load returns a stable snapshot of the segment: the root reference count
// is bumped so concurrent commits cannot reclaim the DAG under the
// reader. Callers release it with segment.ReleaseSeg when done. Loading
// through a reclaimed weak alias returns the zero segment.
func (sm *Map) Load(v word.VSID) (Entry, error) {
	sm.mu.Lock()
	s, err := sm.slotFor(v)
	if err != nil {
		sm.mu.Unlock()
		return Entry{}, err
	}
	if s == nil {
		sm.mu.Unlock()
		return Entry{}, nil // zeroed weak reference
	}
	e := s.e
	touch := retainUnder(sm.mem, e.Seg)
	sm.mu.Unlock()
	if touch != nil {
		touch()
	}
	return e, nil
}

// deferredRetainer is implemented by memories (core.Machine) that can
// split a retain into the atomic count bump and the traffic accounting.
type deferredRetainer interface {
	RetainDeferred(p word.PLID) func()
}

// retainUnder takes the lock-atomic half of a segment retain: the count
// is bumped before sm.mu drops — so a concurrent commit cannot reclaim
// the DAG between the root read and the retain — while the
// reference-count traffic accounting, which re-enters the cache layer, is
// returned as a closure for the caller to run after unlocking. Memories
// without the split fall back to a full retain under the lock.
func retainUnder(mem word.Mem, s segment.Seg) func() {
	if s.Root == word.Zero {
		return nil
	}
	if dr, ok := mem.(deferredRetainer); ok {
		return dr.RetainDeferred(s.Root)
	}
	segment.RetainSeg(mem, s)
	return nil
}

// Flags returns the entry's flags.
func (sm *Map) Flags(v word.VSID) (Flags, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	s, err := sm.slotFor(v)
	if err != nil || s == nil {
		return 0, err
	}
	return s.e.Flags, nil
}

// CAS atomically replaces the entry's segment with next if its current
// root still equals old's root — the non-blocking atomic update of §2.2.
// On success the map takes ownership of the caller's reference on
// next.Root and releases its reference on the old root; on failure the
// caller keeps ownership of next. CAS through a read-only or weak
// reference always fails.
func (sm *Map) CAS(v word.VSID, old segment.Seg, next segment.Seg, size uint64) bool {
	sm.mu.Lock()
	if IsReadOnly(v) || IsWeak(v) {
		sm.casFail++
		if s := sm.statSlot(v); s != nil {
			s.stats.Denied++
		}
		sm.mu.Unlock()
		return false
	}
	s, err := sm.slotFor(v)
	if err != nil || s == nil {
		sm.casFail++
		sm.mu.Unlock()
		return false
	}
	if s.e.Seg.Root != old.Root {
		sm.casFail++
		s.stats.Conflicts++
		sm.mu.Unlock()
		return false
	}
	prev := s.e.Seg
	s.e.Seg = next
	s.e.Size = size
	sm.casOK++
	s.stats.Commits++
	if sm.journal != nil {
		sm.journal.JournalPublish(baseID(v), s.e)
	}
	sm.mu.Unlock()
	// The displaced root is released outside the lock: the new root is
	// already published, and holding the map across the recursive
	// de-allocation would serialize unrelated commits behind it.
	segment.ReleaseSeg(sm.mem, prev)
	return true
}

// Delete removes the entry, releasing its reference on the root. Weak
// aliases to it start reading as zero. Deleting through a read-only
// reference fails.
func (sm *Map) Delete(v word.VSID) error {
	sm.mu.Lock()
	if IsReadOnly(v) {
		if s := sm.statSlot(v); s != nil {
			s.stats.Denied++
		}
		sm.mu.Unlock()
		return fmt.Errorf("segmap: delete through read-only VSID %#x", uint64(v))
	}
	id := baseID(v)
	if id == 0 || uint64(id) > uint64(len(sm.slots)) || !sm.slots[id-1].used {
		sm.mu.Unlock()
		return fmt.Errorf("segmap: invalid VSID %#x", uint64(v))
	}
	s := &sm.slots[id-1]
	var release segment.Seg
	doRelease := !s.weak
	if doRelease {
		release = s.e.Seg
	}
	sm.reclaimed = sm.reclaimed.add(s.stats)
	wasWeak := s.weak
	*s = slot{gen: s.gen + 1}
	sm.free = append(sm.free, id)
	if sm.journal != nil && !wasWeak {
		sm.journal.JournalDelete(id)
	}
	sm.mu.Unlock()
	if doRelease {
		segment.ReleaseSeg(sm.mem, release)
	}
	return nil
}

// CASStats returns (successes, failures) of CAS attempts.
func (sm *Map) CASStats() (uint64, uint64) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.casOK, sm.casFail
}

// Snapshot is a point-in-time view of the map's conflict telemetry.
type Snapshot struct {
	Entries int // live entries (including weak aliases)
	Weak    int // of which weak aliases
	CASOK   uint64
	CASFail uint64
	// PerVSID holds the counters of live slots with any recorded
	// activity, keyed by base VSID.
	PerVSID map[word.VSID]VSIDStats
	// Total aggregates every slot's counters, including slots since
	// deleted, so it is monotone across entry churn.
	Total VSIDStats
}

// Snapshot captures the current conflict/retry/abort counters.
func (sm *Map) Snapshot() Snapshot {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	snap := Snapshot{
		CASOK:   sm.casOK,
		CASFail: sm.casFail,
		PerVSID: make(map[word.VSID]VSIDStats),
		Total:   sm.reclaimed,
	}
	for i := range sm.slots {
		s := &sm.slots[i]
		if !s.used {
			continue
		}
		snap.Entries++
		if s.weak {
			snap.Weak++
		}
		snap.Total = snap.Total.add(s.stats)
		if s.stats != (VSIDStats{}) {
			snap.PerVSID[word.VSID(i+1)] = s.stats
		}
	}
	return snap
}

// Batch is an atomic multi-entry update: the semantics of a segment map
// that is itself a HICAMP segment, where revised entries become visible
// only when the revised map commits (paper §2.3). Conflict detection is
// per-entry: the batch fails if any written entry changed since the
// batch snapshotted it. A Batch belongs to one thread (it models one
// core's pending map revision); Commit and Abort serialize against the
// map itself.
type Batch struct {
	sm     *Map
	reads  map[word.VSID]word.PLID // root observed at first access
	writes map[word.VSID]Entry
}

// Begin opens a batch.
func (sm *Map) Begin() *Batch {
	return &Batch{
		sm:     sm,
		reads:  make(map[word.VSID]word.PLID),
		writes: make(map[word.VSID]Entry),
	}
}

// Load reads an entry within the batch, recording its root for conflict
// detection. The returned segment is retained like Map.Load.
func (b *Batch) Load(v word.VSID) (Entry, error) {
	if e, ok := b.writes[baseID(v)]; ok {
		segment.RetainSeg(b.sm.mem, e.Seg)
		return e, nil
	}
	e, err := b.sm.Load(v)
	if err != nil {
		return Entry{}, err
	}
	if _, seen := b.reads[baseID(v)]; !seen {
		b.reads[baseID(v)] = e.Seg.Root
	}
	return e, nil
}

// Store buffers an entry update. Ownership of the caller's reference on
// e.Seg.Root transfers to the batch (released if the batch fails). Like
// Map.CAS, storing through a read-only or weak capability is rejected:
// a weak alias is a non-updating reference, and following it to the
// target at commit time would let the alias holder mutate an entry it
// was never granted (§2.3: "CAS through a read-only or weak reference
// always fails").
func (b *Batch) Store(v word.VSID, e Entry) error {
	if IsReadOnly(v) {
		b.noteDenied(v)
		return fmt.Errorf("segmap: batch store through read-only VSID %#x", uint64(v))
	}
	if IsWeak(v) {
		b.noteDenied(v)
		return fmt.Errorf("segmap: batch store through weak VSID %#x", uint64(v))
	}
	id := baseID(v)
	if prev, ok := b.writes[id]; ok {
		segment.ReleaseSeg(b.sm.mem, prev.Seg)
	}
	b.writes[id] = e
	return nil
}

func (b *Batch) noteDenied(v word.VSID) {
	sm := b.sm
	sm.mu.Lock()
	if s := sm.statSlot(v); s != nil {
		s.stats.Denied++
	}
	sm.mu.Unlock()
}

// Commit applies every buffered store atomically if no written entry has
// changed since the batch read it. On failure all buffered references are
// released and no entry changes. It reports success.
func (b *Batch) Commit() bool {
	sm := b.sm
	sm.mu.Lock()
	for v := range b.writes {
		s, err := sm.slotFor(v)
		if err != nil || s == nil {
			drop := b.takeWrites()
			sm.mu.Unlock()
			releaseAll(sm.mem, drop)
			return false
		}
		if seen, ok := b.reads[v]; ok && s.e.Seg.Root != seen {
			sm.casFail++
			if st := sm.statSlot(v); st != nil {
				st.stats.Conflicts++
			}
			drop := b.takeWrites()
			sm.mu.Unlock()
			releaseAll(sm.mem, drop)
			return false
		}
	}
	// The weak/read-only screen ran in Store, and slotFor above resolved
	// plain live slots only, so every write lands on the entry it named.
	var displaced []segment.Seg
	for v, e := range b.writes {
		s, _ := sm.slotFor(v)
		displaced = append(displaced, s.e.Seg)
		s.e = e
		sm.casOK++
		s.stats.Commits++
		if sm.journal != nil {
			sm.journal.JournalPublish(v, e)
		}
	}
	b.writes = nil
	sm.mu.Unlock()
	releaseAll(sm.mem, displaced)
	return true
}

// Abort releases all buffered references without applying anything.
func (b *Batch) Abort() {
	sm := b.sm
	sm.mu.Lock()
	for v := range b.writes {
		if s := sm.statSlot(v); s != nil {
			s.stats.Aborts++
		}
	}
	drop := b.takeWrites()
	sm.mu.Unlock()
	releaseAll(sm.mem, drop)
}

// takeWrites detaches the buffered segments for release outside the lock.
func (b *Batch) takeWrites() []segment.Seg {
	segs := make([]segment.Seg, 0, len(b.writes))
	for _, e := range b.writes {
		segs = append(segs, e.Seg)
	}
	b.writes = nil
	return segs
}

func releaseAll(mem word.Mem, segs []segment.Seg) {
	for _, s := range segs {
		segment.ReleaseSeg(mem, s)
	}
}
