// Package segmap implements the HICAMP virtual segment map (paper §2.3):
// the mapping from virtual segment IDs to [root PLID, height, flags]
// entries. The map is the only mutable state in the architecture; every
// segment update is published by atomically replacing a root PLID here,
// which is what gives HICAMP its snapshot isolation and single-CAS atomic
// update.
//
// Read-only references are modelled as a capability bit inside the VSID
// value itself: a thread handed a read-only VSID can load snapshots but
// its CAS attempts fail, matching the paper's "a reference can be passed
// as read-only, restricting the process from updating the root PLID".
//
// Weak references are aliases that do not pin the segment: after the
// target entry is deleted, loads through the alias return the zero
// segment rather than keeping the DAG alive.
//
// The paper allows the map itself to live either in a HICAMP segment (so
// several entries commit atomically) or in conventional memory. Batch
// provides the former's semantics: a group of entry updates that commits
// atomically, all-or-nothing, with write-write conflict detection.
package segmap

import (
	"fmt"
	"sync"

	"repro/internal/segment"
	"repro/internal/word"
)

// Flags annotate a segment map entry.
type Flags uint8

const (
	// FlagMergeUpdate marks the segment as eligible for merge-update
	// (paper §3.4): conflicting CAS attempts try a three-way merge
	// instead of failing back to the application.
	FlagMergeUpdate Flags = 1 << iota
)

// roBit marks a VSID value as a read-only capability.
const roBit word.VSID = 1 << 62

// weakBit marks a VSID value as a weak alias.
const weakBit word.VSID = 1 << 61

// ReadOnlyRef derives the read-only capability for a VSID.
func ReadOnlyRef(v word.VSID) word.VSID { return v | roBit }

// IsReadOnly reports whether a VSID is a read-only capability.
func IsReadOnly(v word.VSID) bool { return v&roBit != 0 }

func baseID(v word.VSID) word.VSID { return v &^ (roBit | weakBit) }

// Entry is one segment map record. Size is the segment's logical byte
// length — software metadata kept alongside the architectural
// [rootPLID, height, flags] triple (see DESIGN.md deviations).
type Entry struct {
	Seg   segment.Seg
	Flags Flags
	Size  uint64
}

type slot struct {
	used     bool
	weak     bool
	gen      uint64    // bumped on delete, detects slot reuse
	alias    word.VSID // weak aliases point at their target's VSID
	aliasGen uint64    // target generation observed at alias creation
	e        Entry
}

// Map is a virtual segment map. All methods are safe for concurrent use.
type Map struct {
	mu    sync.Mutex
	mem   word.Mem
	slots []slot
	free  []word.VSID
	// Stats
	casOK   uint64
	casFail uint64
}

// New creates an empty map over the given memory.
func New(mem word.Mem) *Map { return &Map{mem: mem} }

// Create installs a new entry and returns its VSID. Ownership of the
// caller's reference on e.Seg.Root transfers to the map.
func (sm *Map) Create(e Entry) word.VSID {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.install(slot{used: true, e: e})
}

// CreateWeakAlias returns a weak VSID for target: loading through it
// yields target's current segment until target is deleted, after which it
// yields the zero segment (the paper's "reference that should be zeroed
// when the segment is reclaimed").
func (sm *Map) CreateWeakAlias(target word.VSID) word.VSID {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	id := baseID(target)
	var gen uint64
	if id != 0 && uint64(id) <= uint64(len(sm.slots)) {
		gen = sm.slots[id-1].gen
	}
	return sm.install(slot{used: true, weak: true, alias: id, aliasGen: gen}) | weakBit
}

func (sm *Map) install(s slot) word.VSID {
	if n := len(sm.free); n > 0 {
		v := sm.free[n-1]
		sm.free = sm.free[:n-1]
		s.gen = sm.slots[v-1].gen // preserve reuse detection
		sm.slots[v-1] = s
		return v
	}
	sm.slots = append(sm.slots, s)
	return word.VSID(len(sm.slots))
}

func (sm *Map) slotFor(v word.VSID) (*slot, error) {
	id := baseID(v)
	if id == 0 || uint64(id) > uint64(len(sm.slots)) {
		return nil, fmt.Errorf("segmap: invalid VSID %#x", uint64(v))
	}
	s := &sm.slots[id-1]
	if !s.used {
		return nil, fmt.Errorf("segmap: dangling VSID %#x", uint64(v))
	}
	if s.weak {
		if s.alias == 0 || uint64(s.alias) > uint64(len(sm.slots)) {
			return nil, nil
		}
		t := &sm.slots[s.alias-1]
		if !t.used || t.gen != s.aliasGen {
			return nil, nil // weak target reclaimed (or slot reused): zero
		}
		return t, nil
	}
	return s, nil
}

// Load returns a stable snapshot of the segment: the root reference count
// is bumped so concurrent commits cannot reclaim the DAG under the
// reader. Callers release it with segment.ReleaseSeg when done. Loading
// through a reclaimed weak alias returns the zero segment.
func (sm *Map) Load(v word.VSID) (Entry, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	s, err := sm.slotFor(v)
	if err != nil {
		return Entry{}, err
	}
	if s == nil {
		return Entry{}, nil // zeroed weak reference
	}
	segment.RetainSeg(sm.mem, s.e.Seg)
	return s.e, nil
}

// Flags returns the entry's flags.
func (sm *Map) Flags(v word.VSID) (Flags, error) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	s, err := sm.slotFor(v)
	if err != nil || s == nil {
		return 0, err
	}
	return s.e.Flags, nil
}

// CAS atomically replaces the entry's segment with next if its current
// root still equals old's root — the non-blocking atomic update of §2.2.
// On success the map takes ownership of the caller's reference on
// next.Root and releases its reference on the old root; on failure the
// caller keeps ownership of next. CAS through a read-only or weak
// reference always fails.
func (sm *Map) CAS(v word.VSID, old segment.Seg, next segment.Seg, size uint64) bool {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if IsReadOnly(v) || v&weakBit != 0 {
		sm.casFail++
		return false
	}
	s, err := sm.slotFor(v)
	if err != nil || s == nil {
		sm.casFail++
		return false
	}
	if s.e.Seg.Root != old.Root {
		sm.casFail++
		return false
	}
	prev := s.e.Seg
	s.e.Seg = next
	s.e.Size = size
	sm.casOK++
	segment.ReleaseSeg(sm.mem, prev)
	return true
}

// Delete removes the entry, releasing its reference on the root. Weak
// aliases to it start reading as zero. Deleting through a read-only
// reference fails.
func (sm *Map) Delete(v word.VSID) error {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if IsReadOnly(v) {
		return fmt.Errorf("segmap: delete through read-only VSID %#x", uint64(v))
	}
	id := baseID(v)
	if id == 0 || uint64(id) > uint64(len(sm.slots)) || !sm.slots[id-1].used {
		return fmt.Errorf("segmap: invalid VSID %#x", uint64(v))
	}
	s := &sm.slots[id-1]
	if !s.weak {
		segment.ReleaseSeg(sm.mem, s.e.Seg)
	}
	*s = slot{gen: s.gen + 1}
	sm.free = append(sm.free, id)
	return nil
}

// CASStats returns (successes, failures) of CAS attempts.
func (sm *Map) CASStats() (uint64, uint64) {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.casOK, sm.casFail
}

// Batch is an atomic multi-entry update: the semantics of a segment map
// that is itself a HICAMP segment, where revised entries become visible
// only when the revised map commits (paper §2.3). Conflict detection is
// per-entry: the batch fails if any written entry changed since the
// batch snapshotted it. A Batch belongs to one thread (it models one
// core's pending map revision); Commit and Abort serialize against the
// map itself.
type Batch struct {
	sm     *Map
	reads  map[word.VSID]word.PLID // root observed at first access
	writes map[word.VSID]Entry
}

// Begin opens a batch.
func (sm *Map) Begin() *Batch {
	return &Batch{
		sm:     sm,
		reads:  make(map[word.VSID]word.PLID),
		writes: make(map[word.VSID]Entry),
	}
}

// Load reads an entry within the batch, recording its root for conflict
// detection. The returned segment is retained like Map.Load.
func (b *Batch) Load(v word.VSID) (Entry, error) {
	if e, ok := b.writes[baseID(v)]; ok {
		segment.RetainSeg(b.sm.mem, e.Seg)
		return e, nil
	}
	e, err := b.sm.Load(v)
	if err != nil {
		return Entry{}, err
	}
	if _, seen := b.reads[baseID(v)]; !seen {
		b.reads[baseID(v)] = e.Seg.Root
	}
	return e, nil
}

// Store buffers an entry update. Ownership of the caller's reference on
// e.Seg.Root transfers to the batch (released if the batch fails).
func (b *Batch) Store(v word.VSID, e Entry) error {
	if IsReadOnly(v) {
		return fmt.Errorf("segmap: batch store through read-only VSID %#x", uint64(v))
	}
	id := baseID(v)
	if prev, ok := b.writes[id]; ok {
		segment.ReleaseSeg(b.sm.mem, prev.Seg)
	}
	b.writes[id] = e
	return nil
}

// Commit applies every buffered store atomically if no written entry has
// changed since the batch read it. On failure all buffered references are
// released and no entry changes. It reports success.
func (b *Batch) Commit() bool {
	sm := b.sm
	sm.mu.Lock()
	defer sm.mu.Unlock()
	for v := range b.writes {
		s, err := sm.slotFor(v)
		if err != nil || s == nil {
			b.dropLocked()
			return false
		}
		if seen, ok := b.reads[v]; ok && s.e.Seg.Root != seen {
			sm.casFail++
			b.dropLocked()
			return false
		}
	}
	for v, e := range b.writes {
		s, _ := sm.slotFor(v)
		segment.ReleaseSeg(sm.mem, s.e.Seg)
		s.e = e
		sm.casOK++
	}
	b.writes = nil
	return true
}

// Abort releases all buffered references without applying anything.
func (b *Batch) Abort() {
	b.sm.mu.Lock()
	defer b.sm.mu.Unlock()
	b.dropLocked()
}

func (b *Batch) dropLocked() {
	for _, e := range b.writes {
		segment.ReleaseSeg(b.sm.mem, e.Seg)
	}
	b.writes = nil
}
