package word

import "math/bits"

// Path and data compaction (paper §3.2, Figure 4).
//
// Path compaction: when an interior DAG node would hold a single non-zero
// PLID, the node is elided and the path to the surviving child is encoded
// in the unused high bits of the PLID word in the grandparent. Layout of a
// TagCompact word, low to high:
//
//	[0, plidBits)            target PLID
//	[plidBits, 60)           child indexes, idxBits each, first-descended
//	                         index in the lowest bits
//	[60, 64)                 path length (number of indexes)
//
// Data compaction: a TagInline word packs an entire leaf line of small
// values, one field of 64/arity bits per word, value i in bits
// [i*64/arity, (i+1)*64/arity). With 16-byte lines this packs two 32-bit
// values; with 64-byte lines it packs eight byte-sized values (the paper's
// "array of small integers" case).

const pathLenShift = 60

// idxBits returns the bits needed for one child index at the given arity.
func idxBits(arity int) int {
	return bits.Len(uint(arity - 1))
}

// MaxPathLen returns how many child indexes a compact word can carry for
// the given arity and PLID width.
func MaxPathLen(arity, plidBits int) int {
	ib := idxBits(arity)
	n := (pathLenShift - plidBits) / ib
	if n > 15 { // 4-bit length field
		n = 15
	}
	return n
}

// EncodeCompact packs a PLID and a descent path into a compact word.
// path[0] is the child index taken first (at the highest elided level).
// It reports false when the path does not fit.
func EncodeCompact(p PLID, path []int, arity, plidBits int) (uint64, bool) {
	if len(path) == 0 || len(path) > MaxPathLen(arity, plidBits) {
		return 0, false
	}
	if uint64(p)>>plidBits != 0 {
		return 0, false
	}
	ib := idxBits(arity)
	w := uint64(p)
	for i, idx := range path {
		if idx < 0 || idx >= arity {
			return 0, false
		}
		w |= uint64(idx) << (plidBits + i*ib)
	}
	w |= uint64(len(path)) << pathLenShift
	return w, true
}

// DecodeCompact unpacks a compact word into its target PLID and descent
// path (first-descended index first).
func DecodeCompact(w uint64, arity, plidBits int) (PLID, []int) {
	ib := idxBits(arity)
	n := int(w >> pathLenShift)
	path := make([]int, n)
	mask := uint64(arity - 1)
	for i := 0; i < n; i++ {
		path[i] = int((w >> (plidBits + i*ib)) & mask)
	}
	p := PLID(w & (1<<plidBits - 1))
	return p, path
}

// DecodeCompactInto is DecodeCompact appending the path into buf's
// storage (buf is overwritten from the start; pass a stack array's
// prefix), so the hot wave walks decode without allocating. Any buf with
// capacity >= MaxCompactPath suffices.
func DecodeCompactInto(w uint64, arity, plidBits int, buf []int) (PLID, []int) {
	ib := idxBits(arity)
	n := int(w >> pathLenShift)
	path := buf[:0]
	mask := uint64(arity - 1)
	for i := 0; i < n; i++ {
		path = append(path, int((w>>(plidBits+i*ib))&mask))
	}
	return PLID(w & (1<<plidBits - 1)), path
}

// MaxCompactPath bounds the path length of any compact word: the 4-bit
// length field above pathLenShift caps paths at 15 steps, so a stack
// array of this size always holds a decoded path.
const MaxCompactPath = 16

// CompactPLID extracts just the target PLID of a compact word, for
// callers (reference-count walks) that do not need the path. Unlike
// DecodeCompact it allocates nothing.
func CompactPLID(w uint64, plidBits int) PLID {
	return PLID(w & (1<<plidBits - 1))
}

// CompactDrop splits a compact word into its first descent index and the
// edge one level down, without allocating: when the path had length 1 the
// remainder is the bare target PLID (isPLID true), otherwise it is the
// compact word for the rest of the path.
func CompactDrop(w uint64, arity, plidBits int) (head int, inner uint64, isPLID bool) {
	ib := idxBits(arity)
	n := int(w >> pathLenShift)
	head = int((w >> plidBits) & uint64(arity-1))
	plid := w & (1<<plidBits - 1)
	if n <= 1 {
		return head, plid, true
	}
	rest := (w >> (plidBits + ib)) & (1<<((n-1)*ib) - 1)
	return head, plid | rest<<plidBits | uint64(n-1)<<pathLenShift, false
}

// InlineAt extracts field i of an inline word without unpacking the rest.
func InlineAt(w uint64, i, arity int) uint64 {
	fb := 64 / arity
	if fb >= 64 {
		return w
	}
	return (w >> (i * fb)) & (1<<fb - 1)
}

// PackInline packs arity values into one inline word, one 64/arity-bit
// field per value. It reports false when any value does not fit.
func PackInline(vals []uint64, arity int) (uint64, bool) {
	if len(vals) != arity {
		return 0, false
	}
	fb := 64 / arity
	limit := uint64(1) << fb
	var w uint64
	for i, v := range vals {
		if fb < 64 && v >= limit {
			return 0, false
		}
		w |= v << (i * fb)
	}
	return w, true
}

// UnpackInline expands an inline word into its arity packed values.
func UnpackInline(w uint64, arity int) []uint64 {
	vals := make([]uint64, arity)
	UnpackInlineInto(w, arity, vals)
	return vals
}

// UnpackInlineInto is UnpackInline writing into vals[:arity] (typically
// a stack array or a Content's word array), allocating nothing.
func UnpackInlineInto(w uint64, arity int, vals []uint64) {
	fb := 64 / arity
	var mask uint64
	if fb >= 64 {
		mask = ^uint64(0)
	} else {
		mask = 1<<fb - 1
	}
	for i := 0; i < arity; i++ {
		vals[i] = (w >> (i * fb)) & mask
	}
}
