package word

// Capability detection. The memory API grew three optional fast-path
// interfaces around Mem — batched lookup (BatchMem), batched read
// (BatchReadMem) and content revalidation (ContentRetainer) — and every
// bulk consumer used to probe for them with its own type assert at its
// own call site. Caps collapses that sprawl into one probe: callers ask
// once, at construction time, and afterwards use the MemCaps methods,
// which route to the batch implementation when the memory system has one
// and to the exactly-equivalent serial loop when it does not.

// BulkMem is the full bulk-capable memory interface: a Mem that batches
// both lookup-by-content and read-by-PLID and can revalidate remembered
// content→PLID associations. core.Machine implements it; a Mem that
// implements BulkMem gets every fast path MemCaps can offer.
type BulkMem interface {
	Mem
	LookupLineBatch(cs []Content) []PLID
	ReadLineBatch(ps []PLID) []Content
	RetainIfContent(p PLID, c Content) bool
}

// BatchIntoMem is the allocation-free flavor of the batch capabilities:
// the caller supplies the result buffer (typically pooled scratch), so a
// steady-state wave pays zero allocations for its fetch. A memory system
// implementing BatchIntoMem must write out[i] for every i with the exact
// semantics of the returning variants. core.Machine implements it.
type BatchIntoMem interface {
	LookupLineBatchInto(cs []Content, out []PLID)
	ReadLineBatchInto(ps []PLID, out []Content)
}

// MemCaps bundles a Mem with its optional fast paths, probed once. The
// zero value is not meaningful; construct with Caps. MemCaps is a small
// value type — copy it freely.
type MemCaps struct {
	// M is the underlying memory system every non-batch operation
	// (Retain, Release, ReadLine, ...) goes through.
	M Mem

	batch    BatchMem
	reader   BatchReadMem
	retainer ContentRetainer
	into     BatchIntoMem
	durable  DurableMem
}

// Caps probes m for its optional capabilities. Call it once when a bulk
// consumer is constructed (or once at the entry of a bulk free function)
// and keep the result; do not re-assert the capability interfaces at
// call sites.
func Caps(m Mem) MemCaps {
	bm, _ := m.(BatchMem)
	br, _ := m.(BatchReadMem)
	cr, _ := m.(ContentRetainer)
	bi, _ := m.(BatchIntoMem)
	dm, _ := m.(DurableMem)
	if dm != nil && !dm.DurableEnabled() {
		// A machine without persistence attached implements the interface
		// but has nothing to sync; treat the capability as absent so
		// HasDurable answers what callers actually want to know.
		dm = nil
	}
	return MemCaps{M: m, batch: bm, reader: br, retainer: cr, into: bi, durable: dm}
}

// HasBatchLookup reports whether LookupBatch routes to a native batched
// implementation (true) or the serial fallback loop (false). Consumers
// that shard batches across workers use this to decide whether sharding
// can pay off.
func (c MemCaps) HasBatchLookup() bool { return c.batch != nil }

// HasBatchRead reports whether ReadBatch routes to a native batched
// implementation.
func (c MemCaps) HasBatchRead() bool { return c.reader != nil }

// CanRetainContent reports whether RetainIfContent can ever succeed —
// memoizing consumers disable content→PLID caching when it cannot,
// because a remembered PLID would be unverifiable.
func (c MemCaps) CanRetainContent() bool { return c.retainer != nil }

// LookupBatch behaves exactly like one Mem.LookupLine per element —
// positional results, one reference acquired per element, all-zero
// contents resolving to Zero — through the batch path when the memory
// system provides one and a serial loop otherwise.
func (c MemCaps) LookupBatch(cs []Content) []PLID {
	if c.batch != nil {
		return c.batch.LookupLineBatch(cs)
	}
	out := make([]PLID, len(cs))
	for i := range cs {
		out[i] = c.M.LookupLine(cs[i])
	}
	return out
}

// ReadBatch behaves exactly like one Mem.ReadLine per element —
// positional results, Zero reading as all-zero content — through the
// batch path when the memory system provides one and a serial loop
// otherwise.
func (c MemCaps) ReadBatch(ps []PLID) []Content {
	if c.reader != nil {
		return c.reader.ReadLineBatch(ps)
	}
	out := make([]Content, len(ps))
	for i, p := range ps {
		out[i] = c.M.ReadLine(p)
	}
	return out
}

// LookupBatchInto is LookupBatch writing into a caller-supplied buffer
// (len(out) must equal len(cs)): the allocation-free path the wave
// engines pair with pooled scratch. Falls back through the returning
// batch capability (one allocation, custom batch-only memories) or the
// serial loop (allocation-free) when the memory system lacks the native
// into-variant.
func (c MemCaps) LookupBatchInto(cs []Content, out []PLID) {
	if len(out) != len(cs) {
		panic("word: LookupBatchInto buffer length mismatch")
	}
	if c.into != nil {
		c.into.LookupLineBatchInto(cs, out)
		return
	}
	if c.batch != nil {
		copy(out, c.batch.LookupLineBatch(cs))
		return
	}
	for i := range cs {
		out[i] = c.M.LookupLine(cs[i])
	}
}

// ReadBatchInto is ReadBatch writing into a caller-supplied buffer
// (len(out) must equal len(ps)), with the same fallback ladder as
// LookupBatchInto.
func (c MemCaps) ReadBatchInto(ps []PLID, out []Content) {
	if len(out) != len(ps) {
		panic("word: ReadBatchInto buffer length mismatch")
	}
	if c.into != nil {
		c.into.ReadLineBatchInto(ps, out)
		return
	}
	if c.reader != nil {
		copy(out, c.reader.ReadLineBatch(ps))
		return
	}
	for i, p := range ps {
		out[i] = c.M.ReadLine(p)
	}
}

// RetainIfContent acquires one reference on p only if the line is still
// live and still holds content ct, reporting whether it did. When the
// memory system cannot revalidate content it returns false, which sends
// the caller down the authoritative lookup path — the always-correct
// degradation.
func (c MemCaps) RetainIfContent(p PLID, ct Content) bool {
	if c.retainer == nil {
		return false
	}
	return c.retainer.RetainIfContent(p, ct)
}

// HasDurable reports whether the memory system has active write-ahead
// persistence — i.e. whether SyncDurable actually waits for stable
// storage. Servers use it to decide whether a write needs a durability
// acknowledgement before answering.
func (c MemCaps) HasDurable() bool { return c.durable != nil }

// SyncDurable blocks until every mutation issued before the call is
// durable. On a memory system without persistence it returns nil
// immediately — the simulation-only semantics, where every commit is
// "durable" the moment it publishes.
func (c MemCaps) SyncDurable() error {
	if c.durable == nil {
		return nil
	}
	return c.durable.SyncDurable()
}
