package word_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

// fakeMem implements only the base word.Mem interface — none of the
// optional fast paths — so Caps must report every capability absent and
// route the bulk helpers through the serial fallbacks.
type fakeMem struct {
	byContent map[word.Content]word.PLID
	byPLID    map[word.PLID]word.Content
	refs      map[word.PLID]int
	next      uint64
	lookups   int
	reads     int
}

func newFakeMem() *fakeMem {
	return &fakeMem{
		byContent: map[word.Content]word.PLID{},
		byPLID:    map[word.PLID]word.Content{},
		refs:      map[word.PLID]int{},
	}
}

func (f *fakeMem) LookupLine(c word.Content) word.PLID {
	f.lookups++
	if c.IsZero() {
		return word.Zero
	}
	if p, ok := f.byContent[c]; ok {
		f.refs[p]++
		return p
	}
	f.next++
	p := word.PLID(f.next)
	f.byContent[c] = p
	f.byPLID[p] = c
	f.refs[p] = 1
	return p
}

func (f *fakeMem) ReadLine(p word.PLID) word.Content {
	f.reads++
	if p == word.Zero {
		return word.NewContent(f.LineWords())
	}
	return f.byPLID[p]
}

func (f *fakeMem) Retain(p word.PLID) {
	if p != word.Zero {
		f.refs[p]++
	}
}

func (f *fakeMem) Release(p word.PLID) {
	if p != word.Zero {
		f.refs[p]--
	}
}

func (f *fakeMem) LineWords() int { return 4 }
func (f *fakeMem) PLIDBits() int  { return 48 }

func TestCapsFallbacks(t *testing.T) {
	fm := newFakeMem()
	caps := word.Caps(fm)
	if caps.HasBatchLookup() || caps.HasBatchRead() || caps.CanRetainContent() {
		t.Fatalf("plain Mem probed as capable: %v %v %v",
			caps.HasBatchLookup(), caps.HasBatchRead(), caps.CanRetainContent())
	}

	cs := make([]word.Content, 3)
	for i := range cs {
		cs[i] = word.NewContent(fm.LineWords())
		cs[i].W[0] = uint64(i + 1)
	}
	ps := caps.LookupBatch(cs)
	if len(ps) != len(cs) || fm.lookups != len(cs) {
		t.Fatalf("fallback LookupBatch: %d results from %d lookups", len(ps), fm.lookups)
	}
	back := caps.ReadBatch(ps)
	if fm.reads != len(ps) {
		t.Fatalf("fallback ReadBatch issued %d reads, want %d", fm.reads, len(ps))
	}
	for i := range back {
		if back[i] != cs[i] {
			t.Fatalf("content %d did not round-trip", i)
		}
	}
	if caps.RetainIfContent(ps[0], cs[0]) {
		t.Fatalf("RetainIfContent must report false without ContentRetainer support")
	}
	if fm.refs[ps[0]] != 1 {
		t.Fatalf("unsupported RetainIfContent changed the refcount to %d", fm.refs[ps[0]])
	}
}

func TestCapsMachineFastPaths(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	caps := word.Caps(m)
	if !caps.HasBatchLookup() || !caps.HasBatchRead() || !caps.CanRetainContent() {
		t.Fatalf("Machine must probe as fully bulk-capable")
	}

	c := word.NewContent(m.LineWords())
	c.W[0], c.W[1] = 0xA0, 0xB0
	p := caps.LookupBatch([]word.Content{c})[0]
	if p == word.Zero {
		t.Fatalf("lookup returned Zero for non-zero content")
	}
	if got := caps.ReadBatch([]word.PLID{p})[0]; got != c {
		t.Fatalf("batch read mismatch")
	}
	if !caps.RetainIfContent(p, c) {
		t.Fatalf("RetainIfContent must succeed for a live matching line")
	}
	m.Release(p)
	m.Release(p)
	if live := m.LiveLines(); live != 0 {
		t.Fatalf("%d lines leaked", live)
	}
}
