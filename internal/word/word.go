// Package word defines the architectural data types of the HICAMP memory
// system: physical line IDs (PLIDs), virtual segment IDs (VSIDs), per-word
// tags, and fixed-size line content.
//
// A HICAMP memory line is a small fixed-size unit (16, 32 or 64 bytes)
// holding 64-bit words. Every word carries a hardware tag identifying it as
// raw data, a protected PLID reference, a PLID with a compacted DAG path
// (path compaction, paper §3.2), an inline-packed vector of small values
// (data compaction, paper §3.2), or a protected VSID reference. In the
// hardware proposal the tags live in spare ECC bits; here they are explicit.
package word

import "fmt"

// PLID is a physical line identifier. PLIDs are a hardware-protected type:
// they can only be produced by a lookup-by-content operation or copied from
// an existing PLID. The zero PLID names the architectural all-zero line.
type PLID uint64

// VSID is a virtual segment identifier, resolved to a root PLID through the
// virtual segment map (paper §2.3). The zero VSID is the null reference.
type VSID uint64

// Zero is the PLID of the architectural zero line. Reading it returns
// all-zero content without any memory access, and reference-count
// operations on it are no-ops.
const Zero PLID = 0

// Tag identifies the hardware type of one 64-bit word within a line.
type Tag uint8

const (
	// TagRaw marks an untyped data word.
	TagRaw Tag = iota
	// TagPLID marks a word holding a PLID reference to another line.
	TagPLID
	// TagCompact marks a word holding a PLID plus a compacted DAG path
	// (the word stands for a chain of interior nodes that each had a
	// single non-zero child).
	TagCompact
	// TagInline marks a word holding an arity-sized vector of small
	// values packed into 64 bits, standing for an entire leaf line.
	TagInline
	// TagVSID marks a word holding a VSID reference. VSIDs do not pin
	// lines directly; they resolve through the segment map.
	TagVSID
)

// String returns a short mnemonic for the tag.
func (t Tag) String() string {
	switch t {
	case TagRaw:
		return "raw"
	case TagPLID:
		return "plid"
	case TagCompact:
		return "compact"
	case TagInline:
		return "inline"
	case TagVSID:
		return "vsid"
	}
	return fmt.Sprintf("tag(%d)", uint8(t))
}

// MaxWords is the largest supported line size in 64-bit words (64 bytes).
const MaxWords = 8

// Content is the full content of one memory line: N 64-bit words plus their
// tags. Content values are comparable with == and serve directly as
// deduplication keys. Words at index >= N must be zero with TagRaw so that
// equal logical contents compare equal.
type Content struct {
	W [MaxWords]uint64
	T [MaxWords]Tag
	N uint8
}

// NewContent returns an all-zero content for a line of n words.
// It panics if n is not a supported line width.
func NewContent(n int) Content {
	if n != 2 && n != 4 && n != 8 {
		panic(fmt.Sprintf("word: unsupported line width %d words", n))
	}
	return Content{N: uint8(n)}
}

// IsZero reports whether every word is zero raw data, i.e. the content of
// the architectural zero line.
func (c Content) IsZero() bool {
	for i := 0; i < int(c.N); i++ {
		if c.W[i] != 0 || c.T[i] != TagRaw {
			return false
		}
	}
	return true
}

// Words returns the used words as a slice (a copy).
func (c Content) Words() []uint64 {
	out := make([]uint64, c.N)
	copy(out, c.W[:c.N])
	return out
}

// Bytes serializes the data words little-endian, 8 bytes per word,
// ignoring tags. It is the byte-level view of a leaf line.
func (c Content) Bytes() []byte {
	out := make([]byte, int(c.N)*8)
	for i := 0; i < int(c.N); i++ {
		putLE64(out[i*8:], c.W[i])
	}
	return out
}

// ContentFromBytes builds leaf content of n words from up to n*8 bytes,
// zero-padding the tail. All words are tagged raw.
func ContentFromBytes(n int, b []byte) Content {
	c := NewContent(n)
	for i := 0; i < n; i++ {
		lo := i * 8
		if lo >= len(b) {
			break
		}
		hi := lo + 8
		if hi > len(b) {
			hi = len(b)
		}
		c.W[i] = le64(b[lo:hi])
	}
	return c
}

// Hash returns a 64-bit FNV-1a hash of the content including tags. The
// memory system derives the DRAM hash bucket and the 8-bit signature from
// disjoint portions of this value.
func (c Content) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	step := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	step(c.N)
	for i := 0; i < int(c.N); i++ {
		w := c.W[i]
		for s := 0; s < 64; s += 8 {
			step(byte(w >> s))
		}
		step(byte(c.T[i]))
	}
	return h
}

// Signature returns the 8-bit content signature stored in the signature way
// of a hash bucket (paper §3.1). It is derived from hash bits disjoint from
// the low bucket-index bits so that signatures discriminate within a bucket.
// The returned signature is never zero: zero marks an empty way.
func (c Content) Signature() uint8 { return SignatureOf(c.Hash()) }

// SignatureOf derives the bucket signature from an already computed content
// hash, so batch paths that need both the bucket index and the signature
// hash each content once.
func SignatureOf(h uint64) uint8 {
	s := uint8(h >> 56)
	if s == 0 {
		s = 0xA5
	}
	return s
}

// Mem is the minimal interface the DAG machinery needs from the memory
// system. The core machine implements it with a deduplicating store fronted
// by the HICAMP cache; tests can implement it with a trivial map.
type Mem interface {
	// LookupLine returns the PLID of the line with the given content,
	// allocating it if absent. The caller acquires one reference. Looking
	// up all-zero content returns Zero without allocation. When a new
	// line is allocated, the memory system takes one reference on every
	// PLID-tagged word inside it (released again when the line is freed).
	LookupLine(c Content) PLID
	// ReadLine returns the content of the line named by p. Reading Zero
	// returns all-zero content.
	ReadLine(p PLID) Content
	// Retain adds a reference to p. Retaining Zero is a no-op.
	Retain(p PLID)
	// Release drops a reference to p, freeing the line (and recursively
	// releasing the lines it references) when the count reaches zero.
	Release(p PLID)
	// LineWords returns the line width in 64-bit words (the DAG arity).
	LineWords() int
	// PLIDBits returns how many low bits of a word a PLID can occupy,
	// bounding the space available for path compaction.
	PLIDBits() int
}

// BatchMem is implemented by memory systems that support batched
// lookup-by-content. LookupLineBatch behaves exactly like one LookupLine
// per element — positional results, one reference acquired per element,
// all-zero contents resolving to Zero — but lets the memory system take
// its internal locks once per batch instead of once per line. Bulk
// producers (segment.Builder) type-assert for it and fall back to
// LookupLine when the Mem does not provide it.
type BatchMem interface {
	Mem
	LookupLineBatch(cs []Content) []PLID
}

// BatchReadMem is implemented by memory systems that support batched
// read-by-PLID. ReadLineBatch behaves exactly like one ReadLine per
// element — positional results, Zero reading as all-zero content, the
// same per-line cache and DRAM accounting — but lets the memory system
// take its internal locks once per batch instead of once per line. Bulk
// consumers (the segment package's level-order materializer) type-assert
// for it and fall back to ReadLine when the Mem does not provide it.
type BatchReadMem interface {
	Mem
	ReadLineBatch(ps []PLID) []Content
}

// ContentRetainer is implemented by memory systems that can validate a
// remembered content→PLID association: RetainIfContent acquires one
// reference on p only if the line is still live and still holds content
// c, reporting whether it did. This is the primitive behind content-hit
// caching — between remembering the association and reusing it, the line
// may have been freed (and even reallocated for different content) by a
// concurrent release; a false return means the caller must fall back to
// the authoritative LookupLine path. A successful call charges exactly
// one reference-count touch, never lookup traffic.
type ContentRetainer interface {
	RetainIfContent(p PLID, c Content) bool
}

// DurableMem is implemented by memory systems backed by a write-ahead
// persistence layer (internal/durable). SyncDurable blocks until every
// mutation issued before the call — line commits and segment-map
// publishes — has reached stable storage; it is the acknowledgement
// point a durable server awaits before answering a write. A memory
// system may implement the interface without persistence attached:
// DurableEnabled reports whether SyncDurable actually waits on anything,
// and Caps treats a disabled implementation as absent, so simulation-only
// machines keep their zero-cost paths.
type DurableMem interface {
	DurableEnabled() bool
	SyncDurable() error
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < len(b) && i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
