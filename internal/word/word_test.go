package word

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewContentWidths(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		c := NewContent(n)
		if int(c.N) != n {
			t.Errorf("NewContent(%d).N = %d", n, c.N)
		}
		if !c.IsZero() {
			t.Errorf("NewContent(%d) not zero", n)
		}
	}
}

func TestNewContentPanicsOnBadWidth(t *testing.T) {
	for _, n := range []int{0, 1, 3, 5, 9, 16} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewContent(%d) did not panic", n)
				}
			}()
			NewContent(n)
		}()
	}
}

func TestContentIsZero(t *testing.T) {
	c := NewContent(4)
	if !c.IsZero() {
		t.Fatal("fresh content should be zero")
	}
	c.W[2] = 1
	if c.IsZero() {
		t.Fatal("non-zero word not detected")
	}
	c.W[2] = 0
	c.T[1] = TagPLID
	if c.IsZero() {
		t.Fatal("non-raw tag must make content non-zero (zero PLID word is still a typed word)")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	data := []byte("hello, hicamp!!!")
	c := ContentFromBytes(2, data)
	got := c.Bytes()
	if string(got) != string(data) {
		t.Fatalf("round trip = %q, want %q", got, data)
	}
}

func TestContentFromBytesPadding(t *testing.T) {
	c := ContentFromBytes(4, []byte{0xFF})
	if c.W[0] != 0xFF {
		t.Errorf("W[0] = %#x", c.W[0])
	}
	for i := 1; i < 4; i++ {
		if c.W[i] != 0 {
			t.Errorf("W[%d] = %#x, want 0", i, c.W[i])
		}
	}
	b := c.Bytes()
	if len(b) != 32 {
		t.Fatalf("len(Bytes) = %d, want 32", len(b))
	}
}

func TestHashDistinguishesTags(t *testing.T) {
	a := NewContent(2)
	b := NewContent(2)
	a.W[0], b.W[0] = 7, 7
	b.T[0] = TagPLID
	if a.Hash() == b.Hash() {
		t.Fatal("hash must include tags")
	}
	if a == b {
		t.Fatal("contents with different tags must not compare equal")
	}
}

func TestHashDeterministic(t *testing.T) {
	c := ContentFromBytes(8, []byte("determinism matters for canonical DAGs"))
	if c.Hash() != c.Hash() {
		t.Fatal("hash not deterministic")
	}
}

func TestSignatureNeverZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		c := NewContent(2)
		c.W[0] = rng.Uint64()
		c.W[1] = rng.Uint64()
		if c.Signature() == 0 {
			t.Fatalf("zero signature for %v", c.W[:2])
		}
	}
}

func TestEncodeDecodeCompact(t *testing.T) {
	for _, arity := range []int{2, 4, 8} {
		plidBits := 24
		max := MaxPathLen(arity, plidBits)
		if max < 4 {
			t.Fatalf("arity %d: MaxPathLen = %d, too small to be useful", arity, max)
		}
		path := []int{1, 0, arity - 1, 1}
		w, ok := EncodeCompact(PLID(0xABCDE), path, arity, plidBits)
		if !ok {
			t.Fatalf("arity %d: encode failed", arity)
		}
		p, got := DecodeCompact(w, arity, plidBits)
		if p != 0xABCDE {
			t.Errorf("arity %d: plid = %#x", arity, p)
		}
		if len(got) != len(path) {
			t.Fatalf("arity %d: path len = %d", arity, len(got))
		}
		for i := range path {
			if got[i] != path[i] {
				t.Errorf("arity %d: path[%d] = %d, want %d", arity, i, got[i], path[i])
			}
		}
	}
}

func TestEncodeCompactRejects(t *testing.T) {
	if _, ok := EncodeCompact(1, nil, 2, 24); ok {
		t.Error("empty path accepted")
	}
	if _, ok := EncodeCompact(1, []int{2}, 2, 24); ok {
		t.Error("out-of-range index accepted")
	}
	if _, ok := EncodeCompact(1<<30, []int{1}, 2, 24); ok {
		t.Error("oversized PLID accepted")
	}
	long := make([]int, MaxPathLen(2, 24)+1)
	if _, ok := EncodeCompact(1, long, 2, 24); ok {
		t.Error("over-long path accepted")
	}
}

func TestCompactRoundTripProperty(t *testing.T) {
	f := func(praw uint32, pathRaw []byte) bool {
		arity := []int{2, 4, 8}[int(praw)%3]
		plidBits := 26
		p := PLID(praw) & (1<<plidBits - 1)
		n := len(pathRaw)
		if max := MaxPathLen(arity, plidBits); n > max {
			n = max
		}
		if n == 0 {
			return true
		}
		path := make([]int, n)
		for i := 0; i < n; i++ {
			path[i] = int(pathRaw[i]) % arity
		}
		w, ok := EncodeCompact(p, path, arity, plidBits)
		if !ok {
			return false
		}
		gp, gpath := DecodeCompact(w, arity, plidBits)
		if gp != p || len(gpath) != n {
			return false
		}
		for i := range path {
			if gpath[i] != path[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackInline(t *testing.T) {
	// Arity 2: two 32-bit fields (paper Figure 4b).
	w, ok := PackInline([]uint64{0xDEADBEEF, 0x12345678}, 2)
	if !ok {
		t.Fatal("pack failed")
	}
	vals := UnpackInline(w, 2)
	if vals[0] != 0xDEADBEEF || vals[1] != 0x12345678 {
		t.Fatalf("unpack = %#x", vals)
	}
	// Arity 8: byte-sized fields (array of small integers).
	in := []uint64{1, 2, 3, 4, 5, 6, 254, 0}
	w8, ok := PackInline(in, 8)
	if !ok {
		t.Fatal("pack8 failed")
	}
	out := UnpackInline(w8, 8)
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("unpack8[%d] = %d, want %d", i, out[i], in[i])
		}
	}
}

func TestPackInlineRejectsOversize(t *testing.T) {
	if _, ok := PackInline([]uint64{1 << 32, 0}, 2); ok {
		t.Error("33-bit value accepted at arity 2")
	}
	if _, ok := PackInline([]uint64{256, 0, 0, 0, 0, 0, 0, 0}, 8); ok {
		t.Error("9-bit value accepted at arity 8")
	}
	if _, ok := PackInline([]uint64{1}, 2); ok {
		t.Error("wrong-length slice accepted")
	}
}

func TestInlineRoundTripProperty(t *testing.T) {
	f := func(sel uint8, raw [8]uint32) bool {
		arity := []int{2, 4, 8}[int(sel)%3]
		fb := 64 / arity
		vals := make([]uint64, arity)
		for i := range vals {
			v := uint64(raw[i])
			if fb < 64 {
				v &= 1<<fb - 1
			}
			vals[i] = v
		}
		w, ok := PackInline(vals, arity)
		if !ok {
			return false
		}
		got := UnpackInline(w, arity)
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTagString(t *testing.T) {
	for tag, want := range map[Tag]string{
		TagRaw: "raw", TagPLID: "plid", TagCompact: "compact",
		TagInline: "inline", TagVSID: "vsid", Tag(99): "tag(99)",
	} {
		if got := tag.String(); got != want {
			t.Errorf("Tag(%d).String() = %q, want %q", tag, got, want)
		}
	}
}
