package datagen

import (
	"bytes"
	"testing"

	"repro/internal/store"
)

func TestCorporaDeterministic(t *testing.T) {
	a := HTMLCorpus("wiki", 10, 4096, 42)
	b := HTMLCorpus("wiki", 10, 4096, 42)
	if len(a.Items) != len(b.Items) {
		t.Fatal("sizes differ")
	}
	for i := range a.Items {
		if !bytes.Equal(a.Items[i], b.Items[i]) {
			t.Fatalf("item %d differs across identical seeds", i)
		}
	}
	c := HTMLCorpus("wiki", 10, 4096, 43)
	if bytes.Equal(a.Items[0], c.Items[0]) {
		t.Fatal("different seeds produced identical items")
	}
}

func TestHTMLCorpusDeduplicates(t *testing.T) {
	c := HTMLCorpus("wiki", 50, 4096, 1)
	unique := store.UniqueLineCount(16, c.Items...)
	raw := (c.TotalBytes() + 15) / 16
	ratio := float64(raw) / float64(unique)
	if ratio < 1.3 {
		t.Fatalf("HTML corpus dedup ratio %.2f; want > 1.3 (Table 1 text range)", ratio)
	}
}

func TestScriptCorpusDeduplicatesHarder(t *testing.T) {
	c := ScriptCorpus("fb", 30, 2048, 2)
	unique := store.UniqueLineCount(16, c.Items...)
	raw := (c.TotalBytes() + 15) / 16
	if ratio := float64(raw) / float64(unique); ratio < 1.5 {
		t.Fatalf("script corpus dedup ratio %.2f; want > 1.5", ratio)
	}
}

func TestBinaryCorpusDoesNotDeduplicate(t *testing.T) {
	c := BinaryCorpus("img", 30, 3000, 3)
	unique := store.UniqueLineCount(16, c.Items...)
	raw := (c.TotalBytes() + 15) / 16
	ratio := float64(raw) / float64(unique)
	if ratio > 1.1 {
		t.Fatalf("high-entropy corpus deduped %.2fx; images must not compact", ratio)
	}
}

func TestPowerLawSizes(t *testing.T) {
	c := HTMLCorpus("w", 300, 4096, 7)
	var total, over int
	for _, it := range c.Items {
		total += len(it)
		if len(it) > 3*4096 {
			over++
		}
	}
	meanGot := total / len(c.Items)
	if meanGot < 1024 || meanGot > 16384 {
		t.Fatalf("mean size %d too far from requested 4096", meanGot)
	}
	if over == 0 {
		t.Fatal("no heavy-tail items; size distribution is not power-law")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.07, 9)
	counts := make([]int, 1000)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[500]*5 {
		t.Fatalf("head key %d vs mid key %d: insufficient skew", counts[0], counts[500])
	}
}

func TestRequestTraceRatio(t *testing.T) {
	tr := RequestTrace(1000, 10000, 10, 11)
	gets := 0
	for _, r := range tr {
		if r.Get {
			gets++
		}
		if r.Key < 0 || r.Key >= 1000 {
			t.Fatalf("key %d out of range", r.Key)
		}
	}
	ratio := float64(gets) / float64(len(tr)-gets)
	if ratio < 7 || ratio > 14 {
		t.Fatalf("get:set ratio %.1f, want ~10", ratio)
	}
}
