package datagen

import (
	"fmt"
	"math/rand"
)

// Shifted/near-duplicate corpora: the workload the aligned Table-1
// corpora deliberately avoid. HTMLCorpus pads every fragment to a
// 64-byte boundary so shared content stays line-aligned — the regime
// where fixed-arity dedup wins. Real edit streams (wiki revisions, CMS
// re-renders, config pushes) instead produce near-duplicates of
// UNPADDED documents: a few bytes inserted or deleted near the front
// shift everything after the edit off line alignment, and aligned dedup
// collapses. These generators produce exactly that shape — a set of
// base documents plus edited variants with byte-local, offset-controlled
// edits — as the measurement corpus for content-defined chunked ingest.

// EditOp is the kind of one byte-local edit.
type EditOp int

const (
	// EditInsert inserts Data at Off.
	EditInsert EditOp = iota
	// EditDelete removes Len bytes at Off.
	EditDelete
	// EditReplace overwrites len(Data) bytes at Off with Data.
	EditReplace
)

func (op EditOp) String() string {
	switch op {
	case EditInsert:
		return "insert"
	case EditDelete:
		return "delete"
	case EditReplace:
		return "replace"
	}
	return fmt.Sprintf("EditOp(%d)", int(op))
}

// Edit is one byte-local change at a controlled offset.
type Edit struct {
	Op   EditOp
	Off  int
	Len  int    // EditDelete: bytes removed
	Data []byte // EditInsert/EditReplace: bytes written
}

// ApplyEdits returns doc with the edits applied. Edits are given in
// ascending Off against the ORIGINAL document and must not overlap;
// offsets are clamped into the document. The input is never modified.
func ApplyEdits(doc []byte, edits []Edit) []byte {
	out := make([]byte, 0, len(doc)+editGrowth(edits))
	prev := 0
	for _, e := range edits {
		off := e.Off
		if off < prev {
			off = prev
		}
		if off > len(doc) {
			off = len(doc)
		}
		out = append(out, doc[prev:off]...)
		switch e.Op {
		case EditInsert:
			out = append(out, e.Data...)
			prev = off
		case EditDelete:
			prev = off + e.Len
			if prev > len(doc) {
				prev = len(doc)
			}
		case EditReplace:
			out = append(out, e.Data...)
			prev = off + len(e.Data)
			if prev > len(doc) {
				prev = len(doc)
			}
		}
	}
	return append(out, doc[prev:]...)
}

func editGrowth(edits []Edit) int {
	g := 0
	for _, e := range edits {
		g += len(e.Data)
	}
	return g
}

// ShiftedCorpus is a near-duplicate document set: Bases[i] are
// independent documents, Variants[j] are edited copies; VariantBase[j]
// names the base each variant was derived from and VariantEdits[j]
// records exactly which byte-local edits were applied.
type ShiftedCorpus struct {
	Name         string
	Bases        [][]byte
	Variants     [][]byte
	VariantBase  []int
	VariantEdits [][]Edit
}

// AllItems returns bases then variants, the full ingest stream.
func (c *ShiftedCorpus) AllItems() [][]byte {
	out := make([][]byte, 0, len(c.Bases)+len(c.Variants))
	out = append(out, c.Bases...)
	return append(out, c.Variants...)
}

// TotalBytes sums every item.
func (c *ShiftedCorpus) TotalBytes() uint64 {
	var n uint64
	for _, it := range c.AllItems() {
		n += uint64(len(it))
	}
	return n
}

// unpaddedHTMLDoc is an HTMLCorpus-flavored page WITHOUT the 64-byte
// fragment padding: same boilerplate, shared fragment pool and lorem
// sentences, but emitted as a template engine actually concatenates
// them — so nothing is line-aligned and only content-defined chunking
// can recover the redundancy.
func unpaddedHTMLDoc(rng *rand.Rand, pool []string, id, size int) []byte {
	var b []byte
	b = append(b, htmlBoilerplate[0]...)
	b = append(b, fmt.Sprintf("<title>Doc %d</title></head><body>", id)...)
	for _, frag := range htmlBoilerplate[1:] {
		b = append(b, frag...)
	}
	for len(b) < size {
		if rng.Intn(100) < 55 {
			b = append(b, pool[rng.Intn(len(pool))]...)
		} else {
			b = append(b, "<p>"+sentence(rng, 18)+"</p>"...)
		}
	}
	return append(b, "</body></html>"...)
}

// randomEdits draws nEdits non-overlapping byte-local edits at
// rng-chosen offsets spread over the document: small insertions
// (a handful of bytes — the alignment-killer), small deletions, and
// short replacements, mimicking revision diffs.
func randomEdits(rng *rand.Rand, docLen, nEdits int) []Edit {
	if nEdits <= 0 {
		return nil
	}
	edits := make([]Edit, 0, nEdits)
	stride := docLen / (nEdits + 1)
	if stride < 32 {
		stride = 32
	}
	for k := 0; k < nEdits; k++ {
		off := (k+1)*stride - rng.Intn(stride/2+1)
		if off >= docLen {
			break
		}
		switch rng.Intn(3) {
		case 0:
			ins := fmt.Sprintf("<ins rev=%d>%s</ins>", rng.Intn(1<<16), loremWords[rng.Intn(len(loremWords))])
			edits = append(edits, Edit{Op: EditInsert, Off: off, Data: []byte(ins)})
		case 1:
			n := 1 + rng.Intn(24)
			if off+n > docLen {
				n = docLen - off
			}
			edits = append(edits, Edit{Op: EditDelete, Off: off, Len: n})
		default:
			rep := []byte(loremWords[rng.Intn(len(loremWords))])
			if off+len(rep) > docLen {
				rep = rep[:docLen-off]
			}
			edits = append(edits, Edit{Op: EditReplace, Off: off, Data: rep})
		}
	}
	return edits
}

// NearDuplicateCorpus generates nBases unpadded HTML documents of
// roughly meanSize bytes and variantsPer edited variants of each, every
// variant carrying editsPer byte-local edits at controlled offsets.
// Deterministic in seed.
func NearDuplicateCorpus(name string, nBases, variantsPer, editsPer, meanSize int, seed int64) *ShiftedCorpus {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]string, 64)
	for i := range pool {
		pool[i] = "<p>" + sentence(rng, 24) + "</p>"
	}
	c := &ShiftedCorpus{Name: name}
	for i := 0; i < nBases; i++ {
		doc := unpaddedHTMLDoc(rng, pool, i, powerLawSize(rng, meanSize))
		c.Bases = append(c.Bases, doc)
		for v := 0; v < variantsPer; v++ {
			edits := randomEdits(rng, len(doc), editsPer)
			c.Variants = append(c.Variants, ApplyEdits(doc, edits))
			c.VariantBase = append(c.VariantBase, i)
			c.VariantEdits = append(c.VariantEdits, edits)
		}
	}
	return c
}
