// Package datagen synthesizes the datasets of the paper's evaluation:
// memcached item corpora standing in for the Wikipedia/Facebook dumps of
// Table 1, and power-law request streams ("typical for memcached
// workloads", §5.1.2). Corpora are generated from fixed seeds so every
// run reproduces the same bytes.
//
// The generators control exactly the two properties deduplication is
// sensitive to: cross-item redundancy (shared boilerplate and fragments)
// and intra-item entropy (compressed image data has nearly none). See
// DESIGN.md for the substitution rationale.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/segment"
	"repro/internal/word"
)

// Corpus is a set of items (values to cache) plus their keys.
type Corpus struct {
	Name  string
	Keys  []string
	Items [][]byte
}

// TotalBytes returns the summed item size.
func (c *Corpus) TotalBytes() uint64 {
	var n uint64
	for _, it := range c.Items {
		n += uint64(len(it))
	}
	return n
}

// BuildSegments loads every item of the corpus into m through one bulk
// builder: the heavy cross-item redundancy these corpora model (shared
// boilerplate, fragment pools) hits the builder's memo instead of issuing
// per-line store lookups. Segments are returned in item order; the caller
// owns one root reference each (segment.ReleaseSeg to drop).
func (c *Corpus) BuildSegments(m word.Mem) []segment.Seg {
	b := segment.NewBuilder(m, 0)
	defer b.Close()
	out := make([]segment.Seg, len(c.Items))
	for i, it := range c.Items {
		out[i] = b.BuildBytes(it)
	}
	return out
}

// htmlBoilerplate fragments shared across generated pages, mirroring the
// common markup of template-generated sites.
var htmlBoilerplate = []string{
	"<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">",
	"<link rel=\"stylesheet\" href=\"/static/css/site-2008-05.css\" type=\"text/css\" media=\"screen\">",
	"<script type=\"text/javascript\" src=\"/static/js/common.js\"></script>",
	"<div class=\"navbar\"><ul class=\"nav-list\"><li><a href=\"/home\">Home</a></li><li><a href=\"/about\">About</a></li></ul></div>",
	"<div class=\"footer\"><p>Content is available under the terms of the license. Privacy policy. Disclaimers.</p></div>",
	"<table class=\"infobox\" cellspacing=\"3\"><tr><th colspan=\"2\" class=\"infobox-title\">",
	"<div class=\"advertisement\" id=\"ad-top\"><!-- served by adserver-07 --></div>",
	"<span class=\"editsection\">[<a href=\"/edit\" title=\"Edit section\">edit</a>]</span>",
}

var loremWords = []string{
	"the", "of", "and", "a", "to", "in", "is", "was", "he", "for", "it",
	"with", "as", "his", "on", "be", "at", "by", "had", "not", "are",
	"system", "memory", "data", "page", "user", "time", "first", "also",
	"which", "their", "other", "more", "these", "new", "some", "could",
	"history", "article", "section", "reference", "category", "external",
}

// HTMLCorpus generates n web-page items: shared boilerplate, a pool of
// reusable paragraph fragments (pages on related topics repeat them), and
// unique text. Sizes follow a power law like real page dumps.
func HTMLCorpus(name string, n int, meanSize int, seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	// Fragment pool: paragraphs shared by multiple pages.
	pool := make([]string, 64)
	for i := range pool {
		pool[i] = "<p>" + sentence(rng, 24) + "</p>"
	}
	c := &Corpus{Name: name}
	for i := 0; i < n; i++ {
		size := powerLawSize(rng, meanSize)
		var b []byte
		b = append(b, htmlBoilerplate[0]...)
		b = appendPadded(b, []byte(fmt.Sprintf("<title>Page %d</title></head><body>", i)))
		for _, frag := range htmlBoilerplate[1:] {
			b = appendPadded(b, []byte(frag))
		}
		for len(b) < size {
			if rng.Intn(100) < 55 {
				// Shared fragment: cross-item redundancy.
				b = appendPadded(b, []byte(pool[rng.Intn(len(pool))]))
			} else {
				b = appendPadded(b, []byte("<p>"+sentence(rng, 18)+"</p>"))
			}
		}
		b = append(b, "</body></html>"...)
		c.Items = append(c.Items, b)
		c.Keys = append(c.Keys, fmt.Sprintf("%s:page:%06d", name, i))
	}
	return c
}

// appendPadded appends unit and pads to a 64-byte boundary with spaces
// (HTML-neutral). Template engines emit block-structured output, which is
// what keeps shared fragments line-aligned across pages — the property
// that lets deduplication work at every line size the paper evaluates.
func appendPadded(b, unit []byte) []byte {
	b = append(b, unit...)
	for len(b)%64 != 0 {
		b = append(b, ' ')
	}
	return b
}

// ScriptCorpus generates JavaScript-like items: heavy internal repetition
// (minified library prologues, repeated idioms), high cross-item sharing.
func ScriptCorpus(name string, n int, meanSize int, seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	idioms := []string{
		"function(a,b){return a===b||typeof a===typeof b&&String(a)===String(b)}",
		"var _gel=function(n){return document.getElementById(n)};",
		"for(var i=0;i<arr.length;i++){if(arr[i]==null)continue;fn(arr[i],i);}",
		"try{x=new XMLHttpRequest()}catch(e){x=new ActiveXObject('Msxml2.XMLHTTP')}",
		"window.setTimeout(function(){poll(url,cb)},1000);",
	}
	prologue := "/* lib v1.2.3 (c) 2008 */(function(window,undefined){var doc=window.document;"
	c := &Corpus{Name: name}
	for i := 0; i < n; i++ {
		size := powerLawSize(rng, meanSize)
		b := []byte(prologue)
		for len(b) < size {
			if rng.Intn(100) < 70 {
				b = appendPadded(b, []byte(idioms[rng.Intn(len(idioms))]))
			} else {
				b = appendPadded(b, []byte(fmt.Sprintf("var v%d=%d;", rng.Intn(1000), rng.Intn(100000))))
			}
		}
		b = append(b, "})(window);"...)
		c.Items = append(c.Items, b)
		c.Keys = append(c.Keys, fmt.Sprintf("%s:script:%06d", name, i))
	}
	return c
}

// BinaryCorpus generates compressed-image-like items: high-entropy bytes
// with essentially no redundancy, the Table 1 case where deduplication
// yields nothing and the DAG adds its small overhead.
func BinaryCorpus(name string, n int, meanSize int, seed int64) *Corpus {
	rng := rand.New(rand.NewSource(seed))
	c := &Corpus{Name: name}
	for i := 0; i < n; i++ {
		size := powerLawSize(rng, meanSize)
		b := make([]byte, size)
		rng.Read(b)
		// JPEG/GIF header magic: the only shared bytes real images have.
		copy(b, []byte{0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x10, 'J', 'F', 'I', 'F'})
		c.Items = append(c.Items, b)
		c.Keys = append(c.Keys, fmt.Sprintf("%s:img:%06d", name, i))
	}
	return c
}

func sentence(rng *rand.Rand, words int) string {
	b := make([]byte, 0, words*6)
	for i := 0; i < words; i++ {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, loremWords[rng.Intn(len(loremWords))]...)
	}
	b = append(b, '.')
	return string(b)
}

// powerLawSize draws an item size from a Pareto(alpha=1.5) whose mean is
// approximately mean, truncated to [64, 40*mean].
func powerLawSize(rng *rand.Rand, mean int) int {
	const alpha = 1.5
	xm := float64(mean) * (alpha - 1) / alpha
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	size := int(xm / math.Pow(u, 1/alpha))
	if size < 64 {
		size = 64
	}
	if size > mean*40 {
		size = mean * 40
	}
	return size
}

// Zipf produces a power-law key popularity distribution, the standard
// memcached request skew.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf creates a sampler over [0, n) with exponent s (~1.01 typical).
func NewZipf(n int, s float64, seed int64) *Zipf {
	rng := rand.New(rand.NewSource(seed))
	return &Zipf{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

// Next returns a key index.
func (z *Zipf) Next() int { return int(z.z.Uint64()) }

// Request is one memcached operation in a generated trace.
type Request struct {
	Get bool
	Key int // corpus item index
}

// RequestTrace draws nReq requests over a corpus with the given get:set
// ratio (e.g. 10 for the paper's 10:1) and Zipf-skewed popularity.
func RequestTrace(corpusSize, nReq, getToSet int, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	z := NewZipf(corpusSize, 1.07, seed+1)
	out := make([]Request, nReq)
	for i := range out {
		out[i] = Request{
			Get: rng.Intn(getToSet+1) != 0, // 1 set per getToSet gets
			Key: z.Next(),
		}
	}
	return out
}
