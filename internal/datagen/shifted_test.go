package datagen

import (
	"bytes"
	"testing"
)

func TestApplyEdits(t *testing.T) {
	doc := []byte("0123456789")
	cases := []struct {
		name  string
		edits []Edit
		want  string
	}{
		{"none", nil, "0123456789"},
		{"insert", []Edit{{Op: EditInsert, Off: 3, Data: []byte("XY")}}, "012XY3456789"},
		{"delete", []Edit{{Op: EditDelete, Off: 2, Len: 3}}, "0156789"},
		{"replace", []Edit{{Op: EditReplace, Off: 4, Data: []byte("AB")}}, "0123AB6789"},
		{"multi", []Edit{
			{Op: EditInsert, Off: 1, Data: []byte("+")},
			{Op: EditDelete, Off: 5, Len: 2},
			{Op: EditReplace, Off: 9, Data: []byte("Z")},
		}, "0+123478Z"},
		{"insert-at-end", []Edit{{Op: EditInsert, Off: 10, Data: []byte("!")}}, "0123456789!"},
		{"clamped-past-end", []Edit{{Op: EditInsert, Off: 99, Data: []byte("!")}}, "0123456789!"},
		{"delete-overrun", []Edit{{Op: EditDelete, Off: 8, Len: 99}}, "01234567"},
	}
	for _, tc := range cases {
		got := ApplyEdits(doc, tc.edits)
		if string(got) != tc.want {
			t.Errorf("%s: ApplyEdits = %q, want %q", tc.name, got, tc.want)
		}
		if string(doc) != "0123456789" {
			t.Fatalf("%s: input mutated to %q", tc.name, doc)
		}
	}
}

// TestEditsAreByteLocal pins the property the chunking measurements
// depend on: a variant differs from its base only inside its edit
// regions — the prefix before the first edit and the suffix after the
// last edit (shifted by the net size change) are byte-identical.
func TestEditsAreByteLocal(t *testing.T) {
	c := NearDuplicateCorpus("t", 4, 3, 5, 48<<10, 7)
	if len(c.Variants) != 12 || len(c.VariantBase) != 12 || len(c.VariantEdits) != 12 {
		t.Fatalf("corpus shape: %d variants, %d bases, %d edit sets",
			len(c.Variants), len(c.VariantBase), len(c.VariantEdits))
	}
	for j, v := range c.Variants {
		base := c.Bases[c.VariantBase[j]]
		edits := c.VariantEdits[j]
		if len(edits) == 0 {
			t.Fatalf("variant %d has no edits", j)
		}
		first := edits[0].Off
		if !bytes.Equal(v[:first], base[:first]) {
			t.Fatalf("variant %d: prefix before first edit (off %d) differs", j, first)
		}
		// Net shift = inserted - deleted bytes.
		shift := 0
		lastEnd := 0 // end of the last edit region in base coordinates
		for _, e := range edits {
			switch e.Op {
			case EditInsert:
				shift += len(e.Data)
				if e.Off > lastEnd {
					lastEnd = e.Off
				}
			case EditDelete:
				shift -= e.Len
				if end := e.Off + e.Len; end > lastEnd {
					lastEnd = end
				}
			case EditReplace:
				if end := e.Off + len(e.Data); end > lastEnd {
					lastEnd = end
				}
			}
		}
		if len(v) != len(base)+shift {
			t.Fatalf("variant %d: length %d, want base %d %+d", j, len(v), len(base), shift)
		}
		tail := base[lastEnd:]
		if !bytes.Equal(v[len(v)-len(tail):], tail) {
			t.Fatalf("variant %d: suffix after last edit (base off %d) differs", j, lastEnd)
		}
		// The edits really did change something.
		if bytes.Equal(v, base) {
			t.Fatalf("variant %d is byte-identical to its base", j)
		}
	}
}

// The generator is deterministic in its seed and unpadded (no 64-byte
// alignment runs — the property separating it from HTMLCorpus).
func TestNearDuplicateDeterministicUnpadded(t *testing.T) {
	a := NearDuplicateCorpus("t", 2, 2, 3, 32<<10, 11)
	b := NearDuplicateCorpus("t", 2, 2, 3, 32<<10, 11)
	ia, ib := a.AllItems(), b.AllItems()
	if len(ia) != len(ib) {
		t.Fatal("item count diverged across runs")
	}
	for i := range ia {
		if !bytes.Equal(ia[i], ib[i]) {
			t.Fatalf("item %d diverged across identical seeds", i)
		}
	}
	pad := []byte("        ") // appendPadded's space runs
	for i, it := range ia {
		if bytes.Contains(it, pad) {
			t.Fatalf("item %d contains alignment padding — shifted corpus must be unpadded", i)
		}
	}
	if got, want := a.TotalBytes(), uint64(0); got == want {
		t.Fatal("empty corpus")
	}
}
