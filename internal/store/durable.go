package store

import (
	"fmt"
	"sync/atomic"

	"repro/internal/word"
)

// Durability hooks and restore paths. The store is the authoritative
// line state, so the write-ahead layer (internal/durable) observes line
// liveness transitions here: one JournalAlloc per line allocation and
// one JournalFree per reclamation, both invoked while the line's lock
// (its bucket stripe, or the overflow lock) is still held. That lock is
// what orders a PLID's free against its re-allocation — the same slot
// can be recycled for different content, and the log must record the
// transitions in the order the store applied them. Intermediate
// reference-count changes are deliberately not journaled: lines are
// immutable and content-addressed, so recovery derives every count
// structurally (DAG in-degree plus segment-map root references), which
// is also the only correct answer — transient references held by
// in-flight operations at crash time must not survive restart.

// Journal observes line liveness transitions for the write-ahead log.
// Both methods are called with the line's lock held; implementations
// must not call back into the store and must not block on I/O beyond a
// buffer append (group commit does the writing elsewhere).
type Journal interface {
	// JournalAlloc records that p was allocated holding c.
	JournalAlloc(p word.PLID, c word.Content)
	// JournalFree records that p's count reached zero and the line was
	// reclaimed (the terminal reference-count delta).
	JournalFree(p word.PLID)
}

// SetJournal attaches the liveness journal. Attach before the store
// serves traffic (it is read without synchronization on the hot paths);
// passing nil detaches.
func (s *Store) SetJournal(j Journal) { s.journal = j }

// ForEachLive visits every live line with its current content and
// reference count, one lock stripe at a time under shared locks — the
// fuzzy checkpoint iterator. Lines allocated or freed while the walk is
// in flight may or may not be visited; the write-ahead layer pairs the
// walk with a log position taken beforehand, so the log tail replays
// any transition the walk raced with. fn must not call back into the
// store (it runs under a stripe's shared lock). Returning false stops
// the walk.
func (s *Store) ForEachLive(fn func(p word.PLID, c word.Content, rc uint64) bool) {
	for st := 0; st < numStripes; st++ {
		mu := &s.stripes[st].mu
		mu.RLock()
		for b := st; b < len(s.buckets); b += numStripes {
			ways := s.buckets[b].ways
			for w := range ways {
				if !ways[w].used {
					continue
				}
				if !fn(s.plidFor(uint64(b), w), ways[w].content, atomic.LoadUint64(&ways[w].rc)) {
					mu.RUnlock()
					return
				}
			}
		}
		mu.RUnlock()
	}
	s.ovMu.Lock()
	defer s.ovMu.Unlock()
	for i := range s.overflow {
		if !s.overflow[i].used {
			continue
		}
		if !fn(s.overflowPLID(uint32(i)), s.overflow[i].content, s.overflow[i].rc) {
			return
		}
	}
}

// InstallLine places content at an exact PLID with an exact reference
// count — the recovery path. PLIDs are positional (bucket and way are
// baked into the value), so a restored store must reproduce them
// exactly: hds.Map slots are indexed by key-root PLIDs, and a rebuild
// into a different PLID space would orphan every binding. The content
// must hash to the PLID's bucket (i.e. the store geometry must match
// the one that produced the log); violations return an error rather
// than corrupting the bucket index. No DRAM traffic is charged: restore
// is not simulated memory activity. Call only on a quiesced store
// (recovery runs before the machine serves traffic) and finish with
// FinishRestore.
func (s *Store) InstallLine(p word.PLID, c word.Content, rc uint64) error {
	if p == word.Zero || c.IsZero() {
		return fmt.Errorf("store: install of zero PLID or zero content")
	}
	if int(c.N) != s.arity {
		return fmt.Errorf("store: install content width %d, line width %d", c.N, s.arity)
	}
	h := c.Hash()
	sig := word.SignatureOf(h)
	if s.isOverflow(p) {
		// The overflow area grows on demand; the only hard bound on an
		// overflow PLID is the PLID width compaction relies on.
		if uint64(p) >= 1<<uint(s.PLIDBits()) {
			return fmt.Errorf("store: install overflow PLID %#x out of range", uint64(p))
		}
		slot := uint64(p) - s.ovBase()
		s.ovMu.Lock()
		defer s.ovMu.Unlock()
		for uint64(len(s.overflow)) <= slot {
			s.overflow = append(s.overflow, line{})
		}
		if s.overflow[slot].used {
			return fmt.Errorf("store: install into occupied overflow slot %d", slot)
		}
		s.overflow[slot] = line{used: true, sig: sig, rc: rc, inDRAM: true, content: c}
		if s.ovIndex == nil {
			s.ovIndex = make(map[word.Content]uint32)
		}
		s.ovIndex[c] = uint32(slot)
		s.liveLines.Add(1)
		return nil
	}
	bkt := uint64(p) & s.bucketMask
	way := int(uint64(p)>>s.cfg.BucketBits) - 2
	if way < 0 || way >= s.cfg.DataWays {
		return fmt.Errorf("store: install PLID %#x names way %d", uint64(p), way)
	}
	if h&s.bucketMask != bkt {
		return fmt.Errorf("store: install PLID %#x bucket %d, content hashes to %d (geometry mismatch)",
			uint64(p), bkt, h&s.bucketMask)
	}
	mu := &s.stripes[stripeOf(bkt)].mu
	mu.Lock()
	defer mu.Unlock()
	b := &s.buckets[bkt]
	if b.ways == nil {
		b.ways = make([]line, s.cfg.DataWays)
	}
	if b.ways[way].used {
		return fmt.Errorf("store: install into occupied PLID %#x", uint64(p))
	}
	b.ways[way] = line{used: true, sig: sig, rc: rc, inDRAM: true, content: c}
	s.liveLines.Add(1)
	return nil
}

// FinishRestore rebuilds the overflow free list after a sequence of
// InstallLine calls left holes in the overflow area (slots whose lines
// were dead at checkpoint time stay reusable).
func (s *Store) FinishRestore() {
	s.ovMu.Lock()
	defer s.ovMu.Unlock()
	s.freeOv = s.freeOv[:0]
	for i := range s.overflow {
		if !s.overflow[i].used {
			s.freeOv = append(s.freeOv, uint32(i))
		}
	}
}
