// Package store implements the HICAMP deduplicating main memory
// (paper §3.1, Figure 2).
//
// DRAM is divided into hash buckets, one per DRAM row. A 16-way bucket
// dedicates way 0 to a line of 8-bit content signatures, way 1 to a line of
// reference counts, ways 2..2+DataWays-1 to data lines and the remaining
// ways to the overflow area. A line is stored in the bucket selected by a
// hash of its content; lookup-by-content reads the signature line, compares
// signatures, reads candidate data lines, and either returns the matching
// PLID or allocates a free way. A PLID is the concatenation of the way
// number and the bucket number, so the controller can always recompute the
// bucket from the content hash — the property the HICAMP cache indexing
// relies on.
//
// The store is the authoritative state below the HICAMP cache: the cache
// layer (package cachesim, composed in package core) decides which of these
// operations actually reach DRAM. Every method that touches simulated DRAM
// increments a named Stats counter.
package store

import (
	"fmt"

	"repro/internal/word"
)

// Config sizes the simulated memory.
type Config struct {
	// LineBytes is the memory line size: 16, 32 or 64.
	LineBytes int
	// BucketBits sets the number of hash buckets (1 << BucketBits).
	BucketBits int
	// DataWays is the number of data lines per bucket (paper example: 12).
	DataWays int
}

// DefaultConfig mirrors the paper's running example: 16-byte lines with
// twelve data ways per bucket.
func DefaultConfig() Config {
	return Config{LineBytes: 16, BucketBits: 16, DataWays: 12}
}

func (c Config) validate() error {
	switch c.LineBytes {
	case 16, 32, 64:
	default:
		return fmt.Errorf("store: line size %d not one of 16/32/64", c.LineBytes)
	}
	if c.BucketBits < 4 || c.BucketBits > 32 {
		return fmt.Errorf("store: bucket bits %d out of range [4,32]", c.BucketBits)
	}
	if c.DataWays < 1 || c.DataWays > 12 {
		return fmt.Errorf("store: data ways %d out of range [1,12]", c.DataWays)
	}
	return nil
}

// Stats counts simulated DRAM accesses by kind. The categories match the
// stacked bars of the paper's Figure 6.
type Stats struct {
	SigReads    uint64 // signature-line reads during lookup-by-content
	SigWrites   uint64 // signature-line updates on allocate/free
	DataReads   uint64 // demand data-line reads (cache miss fills)
	LookupReads uint64 // data-line reads comparing lookup candidates
	DataWrites  uint64 // data-line writebacks from the cache
	RCReads     uint64 // reference-count line fills
	RCWrites    uint64 // reference-count line writebacks
	DeallocOps  uint64 // line de-allocations (recursive state machine steps)
	Lookups     uint64 // lookup-by-content operations reaching DRAM
	LookupHits  uint64 // lookups that matched an existing line
	Allocs      uint64 // lines allocated
	Frees       uint64 // lines freed
	FalseSig    uint64 // signature matches whose data compare failed
	Overflows   uint64 // allocations diverted to the overflow area
}

// Total returns the total number of DRAM line accesses (reads + writes of
// any way), the quantity plotted in Figure 6.
func (s Stats) Total() uint64 {
	return s.SigReads + s.SigWrites + s.DataReads + s.LookupReads +
		s.DataWrites + s.RCReads + s.RCWrites + s.DeallocOps
}

// LookupTraffic returns the Figure 6 "Lookups" category: signature line
// reads/updates plus candidate data-line reads during lookup-by-content.
func (s Stats) LookupTraffic() uint64 { return s.SigReads + s.SigWrites + s.LookupReads }

// RCTraffic returns the Figure 6 "RC" category.
func (s Stats) RCTraffic() uint64 { return s.RCReads + s.RCWrites }

type line struct {
	used    bool
	sig     uint8
	rc      uint64
	inDRAM  bool // content has been written back to DRAM
	content word.Content
}

type bucket struct {
	ways []line
}

// Store is the deduplicating line memory.
type Store struct {
	cfg        Config
	arity      int
	bucketMask uint64
	buckets    []bucket
	overflow   []line
	freeOv     []uint32                // free slots in overflow
	ovIndex    map[word.Content]uint32 // content -> overflow slot
	liveLines  uint64
	rows       rowTracker
	Stats      Stats

	// OnRCTouch, when non-nil, is invoked for every reference-count
	// mutation with the PLID whose count changed. The cache layer uses
	// it to model reference-count line traffic (§3.1: counts are cached
	// in the HICAMP cache and written to DRAM on eviction). init marks
	// the count initialization of a fresh allocation, which is written
	// straight into the cache without fetching the line from DRAM
	// (§3.1: "when the line is allocated by lookup operation its
	// reference count is written in the LLC and propagated to DRAM only
	// when the line is evicted").
	OnRCTouch func(p word.PLID, init bool)
}

func (s *Store) rcTouched(p word.PLID, init bool) {
	if s.OnRCTouch != nil {
		s.OnRCTouch(p, init)
	}
}

// New creates a store. It panics on an invalid configuration, which is a
// programming error in the simulator setup, not a runtime condition.
func New(cfg Config) *Store {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	n := 1 << cfg.BucketBits
	s := &Store{
		cfg:        cfg,
		arity:      cfg.LineBytes / 8,
		bucketMask: uint64(n - 1),
		buckets:    make([]bucket, n),
	}
	// Bucket way arrays are allocated lazily on first use: a 2^20-bucket
	// store would otherwise commit ~1 GB up front.
	return s
}

// Config returns the configuration the store was built with.
func (s *Store) Config() Config { return s.cfg }

// LineWords returns the line width in 64-bit words (the DAG arity).
func (s *Store) LineWords() int { return s.arity }

// LiveLines returns the number of currently allocated lines.
func (s *Store) LiveLines() uint64 { return s.liveLines }

// FootprintBytes returns the DRAM bytes held by live lines.
func (s *Store) FootprintBytes() uint64 { return s.liveLines * uint64(s.cfg.LineBytes) }

// PLID layout: [0,BucketBits) bucket | [BucketBits,+4) way+2 | overflow bit.
// Data ways are numbered 2..13 following Figure 2 (way 0 = signatures,
// way 1 = reference counts), so a data PLID is never zero and the zero
// PLID can denote the architectural zero line.

const wayFieldBits = 4

// overflowSlotBits bounds the overflow area (2^overflowSlotBits slots
// beyond the first), sized far above any bucket spill the experiments
// produce while keeping PLIDs narrow enough for path compaction.
const overflowSlotBits = 10

// PLIDBits returns the number of low word bits a PLID occupies, bounding
// the space available to path compaction. Overflow PLIDs occupy the range
// [2^(BucketBits+4), 2^(BucketBits+4) * (1+2^overflowSlotBits)).
func (s *Store) PLIDBits() int { return s.cfg.BucketBits + wayFieldBits + overflowSlotBits + 1 }

// ovBase returns the first overflow PLID value.
func (s *Store) ovBase() uint64 { return 1 << (s.cfg.BucketBits + wayFieldBits) }

func (s *Store) plidFor(bkt uint64, way int) word.PLID {
	return word.PLID(uint64(way+2)<<s.cfg.BucketBits | bkt)
}

func (s *Store) overflowPLID(slot uint32) word.PLID {
	// Addition (not OR) keeps the mapping injective for every slot.
	return word.PLID(s.ovBase() + uint64(slot))
}

func (s *Store) isOverflow(p word.PLID) bool {
	return uint64(p) >= s.ovBase()
}

// BucketOf returns the hash bucket a PLID belongs to. Overflow PLIDs have
// no bucket; the second result reports whether the PLID is a bucket line.
func (s *Store) BucketOf(p word.PLID) (uint64, bool) {
	if s.isOverflow(p) {
		return 0, false
	}
	return uint64(p) & s.bucketMask, true
}

// BucketIndex returns the bucket a content hashes to.
func (s *Store) BucketIndex(c word.Content) uint64 {
	return c.Hash() & s.bucketMask
}

func (s *Store) lineAt(p word.PLID) *line {
	if s.isOverflow(p) {
		slot := uint64(p) - s.ovBase()
		if slot >= uint64(len(s.overflow)) {
			panic(fmt.Sprintf("store: bad overflow PLID %#x", uint64(p)))
		}
		return &s.overflow[slot]
	}
	bkt := uint64(p) & s.bucketMask
	way := int(uint64(p)>>s.cfg.BucketBits) - 2
	if way < 0 || way >= s.cfg.DataWays || s.buckets[bkt].ways == nil {
		panic(fmt.Sprintf("store: bad PLID %#x (way %d)", uint64(p), way))
	}
	return &s.buckets[bkt].ways[way]
}

// Lookup performs the DRAM lookup-by-content protocol of §3.1 and returns
// the PLID plus whether the content already existed. The caller acquires
// one reference; on a fresh allocation the store additionally takes one
// reference per PLID-tagged word inside the content (the line's own
// references, released when the line is freed). Content of all zeroes
// must be handled by the caller (the zero PLID) and panics here.
func (s *Store) Lookup(c word.Content) (word.PLID, bool) {
	if c.IsZero() {
		panic("store: Lookup of zero content (use word.Zero)")
	}
	if int(c.N) != s.arity {
		panic(fmt.Sprintf("store: content width %d, line width %d", c.N, s.arity))
	}
	s.Stats.Lookups++
	bkt := s.BucketIndex(c)
	sig := c.Signature()
	b := &s.buckets[bkt]
	if b.ways == nil {
		b.ways = make([]line, s.cfg.DataWays)
	}

	// Step 2-3: read the signature line, compare signatures. This is the
	// access that opens the bucket's DRAM row; the candidate reads,
	// signature update and RC access below stay in the open row (§3.1).
	s.rows.touch(bkt)
	s.Stats.SigReads++
	for w := range b.ways {
		ln := &b.ways[w]
		if !ln.used || ln.sig != sig {
			continue
		}
		// Step 4: candidate data line read and compare (open-row hit).
		s.rows.touch(bkt)
		s.Stats.LookupReads++
		if ln.content == c {
			ln.rc++
			s.rcTouched(s.plidFor(bkt, w), false)
			s.Stats.LookupHits++
			return s.plidFor(bkt, w), true
		}
		s.Stats.FalseSig++
	}
	// Overflow lines for this content are found via the overflow scan;
	// model it as one extra read when the bucket has seen overflow.
	if p, ok := s.findOverflow(c); ok {
		s.Stats.LookupReads++
		s.lineAt(p).rc++
		s.rcTouched(p, false)
		s.Stats.LookupHits++
		return p, true
	}

	// Step 6: allocate. Find an empty way via the signature line (already
	// read); the signature update is one write back to the same DRAM row.
	for w := range b.ways {
		if !b.ways[w].used {
			b.ways[w] = line{used: true, sig: sig, rc: 1, content: c}
			s.rows.touch(bkt)
			s.Stats.SigWrites++
			s.Stats.Allocs++
			s.liveLines++
			s.rcTouched(s.plidFor(bkt, w), true)
			s.retainChildren(c)
			return s.plidFor(bkt, w), false
		}
	}
	// Bucket full: spill to the overflow area.
	p := s.allocOverflow(c, sig)
	s.retainChildren(c)
	return p, false
}

func (s *Store) findOverflow(c word.Content) (word.PLID, bool) {
	// The hardware chains overflow lines from the bucket row; the
	// simulator keeps a content index for speed and charges the DRAM
	// accesses at the call site.
	slot, ok := s.ovIndex[c]
	if !ok {
		return 0, false
	}
	return s.overflowPLID(slot), true
}

func (s *Store) allocOverflow(c word.Content, sig uint8) word.PLID {
	s.Stats.Overflows++
	s.Stats.Allocs++
	s.Stats.SigWrites++ // overflow pointer update in the bucket row
	s.liveLines++
	var slot uint32
	if n := len(s.freeOv); n > 0 {
		slot = s.freeOv[n-1]
		s.freeOv = s.freeOv[:n-1]
		s.overflow[slot] = line{used: true, sig: sig, rc: 1, content: c}
	} else {
		slot = uint32(len(s.overflow))
		s.overflow = append(s.overflow, line{used: true, sig: sig, rc: 1, content: c})
	}
	if s.ovIndex == nil {
		s.ovIndex = make(map[word.Content]uint32)
	}
	s.ovIndex[c] = slot
	s.rcTouched(s.overflowPLID(slot), true)
	return s.overflowPLID(slot)
}

func (s *Store) retainChildren(c word.Content) {
	for i := 0; i < int(c.N); i++ {
		switch c.T[i] {
		case word.TagPLID:
			s.Retain(word.PLID(c.W[i]))
		case word.TagCompact:
			p, _ := word.DecodeCompact(c.W[i], s.arity, s.PLIDBits())
			s.Retain(p)
		}
	}
}

// Read returns the content of a line, counting one DRAM data read.
// Reading the zero PLID returns zero content with no DRAM access.
func (s *Store) Read(p word.PLID) word.Content {
	if p == word.Zero {
		return word.NewContent(s.arity)
	}
	s.Stats.DataReads++
	s.rows.touch(s.rowOf(p))
	ln := s.lineAt(p)
	if !ln.used {
		panic(fmt.Sprintf("store: read of freed PLID %#x", uint64(p)))
	}
	return ln.content
}

// Peek returns a line's content without simulating a DRAM access. The
// cache layer uses it to fill entries whose DRAM traffic it accounts
// itself, and tests use it to inspect state.
func (s *Store) Peek(p word.PLID) (word.Content, bool) {
	if p == word.Zero {
		return word.NewContent(s.arity), true
	}
	ln := s.lineAt(p)
	if !ln.used {
		return word.Content{}, false
	}
	return ln.content, true
}

// RefCount returns the current reference count of a line (0 if freed).
func (s *Store) RefCount(p word.PLID) uint64 {
	if p == word.Zero {
		return 0
	}
	ln := s.lineAt(p)
	if !ln.used {
		return 0
	}
	return ln.rc
}

// Retain adds one reference to p without touching DRAM counters; the
// caller models the reference-count line traffic (they are cached).
func (s *Store) Retain(p word.PLID) {
	if p == word.Zero {
		return
	}
	ln := s.lineAt(p)
	if !ln.used {
		panic(fmt.Sprintf("store: retain of freed PLID %#x", uint64(p)))
	}
	ln.rc++
	s.rcTouched(p, false)
}

// Freed describes one line reclaimed by Release: its PLID and the hash
// of the content it held, which the cache layer needs to locate (and
// invalidate) the corresponding cache set after the content is gone.
type Freed struct {
	P word.PLID
	H uint64
}

// Release drops one reference to p. When the count reaches zero the line
// is freed: its signature is zeroed (one DRAM write, counted as a dealloc
// op) and references held by its PLID words are released recursively by
// the hardware de-allocation state machine. It returns the lines freed by
// this release so the cache layer can invalidate them.
func (s *Store) Release(p word.PLID) []Freed {
	if p == word.Zero {
		return nil
	}
	var freed []Freed
	work := []word.PLID{p}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if cur == word.Zero {
			continue
		}
		ln := s.lineAt(cur)
		if !ln.used {
			panic(fmt.Sprintf("store: release of freed PLID %#x", uint64(cur)))
		}
		if ln.rc == 0 {
			panic(fmt.Sprintf("store: reference underflow on PLID %#x", uint64(cur)))
		}
		ln.rc--
		s.rcTouched(cur, false)
		if ln.rc > 0 {
			continue
		}
		// Free: zero the signature, queue children for the state machine.
		s.Stats.DeallocOps++
		s.Stats.Frees++
		s.liveLines--
		for i := 0; i < int(ln.content.N); i++ {
			switch ln.content.T[i] {
			case word.TagPLID:
				work = append(work, word.PLID(ln.content.W[i]))
			case word.TagCompact:
				cp, _ := word.DecodeCompact(ln.content.W[i], s.arity, s.PLIDBits())
				work = append(work, cp)
			}
		}
		hash := ln.content.Hash()
		if s.isOverflow(cur) {
			slot := uint32(uint64(cur) - s.ovBase())
			delete(s.ovIndex, s.overflow[slot].content)
			s.overflow[slot] = line{}
			s.freeOv = append(s.freeOv, slot)
		} else {
			*ln = line{}
		}
		freed = append(freed, Freed{P: cur, H: hash})
	}
	return freed
}

// Writeback records the eviction of a dirty (newly created) line from the
// cache: the first time a line leaves the cache its data is written to
// DRAM (paper §3.1). Subsequent writebacks of the same immutable line are
// impossible because clean lines are dropped silently.
func (s *Store) Writeback(p word.PLID) {
	if p == word.Zero {
		return
	}
	ln := s.lineAt(p)
	if !ln.used || ln.inDRAM {
		return
	}
	ln.inDRAM = true
	s.rows.touch(s.rowOf(p))
	s.Stats.DataWrites++
}

// RCLineRead and RCLineWrite account reference-count line DRAM traffic;
// the cache layer calls them on RC-line fills and dirty evictions.
func (s *Store) RCLineRead()  { s.Stats.RCReads++ }
func (s *Store) RCLineWrite() { s.Stats.RCWrites++ }

// CheckConsistency verifies the reference-counting invariant: every live
// line's count equals the number of PLID words in live lines that name it,
// plus the external references the caller says it holds. It returns an
// error describing the first violation found.
func (s *Store) CheckConsistency(external map[word.PLID]uint64) error {
	indeg := make(map[word.PLID]uint64)
	addRefs := func(c word.Content) {
		for i := 0; i < int(c.N); i++ {
			switch c.T[i] {
			case word.TagPLID:
				if p := word.PLID(c.W[i]); p != word.Zero {
					indeg[p]++
				}
			case word.TagCompact:
				p, _ := word.DecodeCompact(c.W[i], s.arity, s.PLIDBits())
				if p != word.Zero {
					indeg[p]++
				}
			}
		}
	}
	forEachLive := func(fn func(p word.PLID, ln *line)) {
		for b := range s.buckets {
			for w := range s.buckets[b].ways {
				if s.buckets[b].ways[w].used {
					fn(s.plidFor(uint64(b), w), &s.buckets[b].ways[w])
				}
			}
		}
		for i := range s.overflow {
			if s.overflow[i].used {
				fn(s.overflowPLID(uint32(i)), &s.overflow[i])
			}
		}
	}
	forEachLive(func(_ word.PLID, ln *line) { addRefs(ln.content) })
	var err error
	forEachLive(func(p word.PLID, ln *line) {
		if err != nil {
			return
		}
		want := indeg[p] + external[p]
		if ln.rc != want {
			err = fmt.Errorf("store: PLID %#x rc=%d, want %d (internal %d + external %d)",
				uint64(p), ln.rc, want, indeg[p], external[p])
		}
	})
	if err != nil {
		return err
	}
	// Every line a live line references must itself be live.
	for p := range indeg {
		if ln := s.lineAt(p); !ln.used {
			return fmt.Errorf("store: dangling reference to freed PLID %#x", uint64(p))
		}
	}
	return nil
}

// UniqueLineCount reports how many distinct lines the given byte streams
// would occupy at this store's line size, without allocating them. It is
// the fast dedup counter used by the footprint experiments (Table 1,
// Figures 8-10); see DESIGN.md.
func UniqueLineCount(lineBytes int, streams ...[]byte) uint64 {
	seen := make(map[word.Content]struct{})
	arity := lineBytes / 8
	for _, b := range streams {
		for off := 0; off < len(b); off += lineBytes {
			end := off + lineBytes
			if end > len(b) {
				end = len(b)
			}
			c := word.ContentFromBytes(arity, b[off:end])
			if c.IsZero() {
				continue
			}
			seen[c] = struct{}{}
		}
	}
	return uint64(len(seen))
}

// WaysPerBucket returns the number of data ways, exposed for tests
// asserting the Figure 2 geometry.
func (s *Store) WaysPerBucket() int { return s.cfg.DataWays }
