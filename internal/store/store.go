// Package store implements the HICAMP deduplicating main memory
// (paper §3.1, Figure 2).
//
// DRAM is divided into hash buckets, one per DRAM row. A 16-way bucket
// dedicates way 0 to a line of 8-bit content signatures, way 1 to a line of
// reference counts, ways 2..2+DataWays-1 to data lines and the remaining
// ways to the overflow area. A line is stored in the bucket selected by a
// hash of its content; lookup-by-content reads the signature line, compares
// signatures, reads candidate data lines, and either returns the matching
// PLID or allocates a free way. A PLID is the concatenation of the way
// number and the bucket number, so the controller can always recompute the
// bucket from the content hash — the property the HICAMP cache indexing
// relies on.
//
// The store is the authoritative state below the HICAMP cache: the cache
// layer (package cachesim, composed in package core) decides which of these
// operations actually reach DRAM. Every method that touches simulated DRAM
// increments a named Stats counter.
//
// Concurrency model: a line's bucket is a pure function of its content
// hash, so distinct buckets are independent by construction. The store
// exploits that with lock striping — buckets are guarded by a fixed array
// of reader/writer stripe locks, the overflow area by one dedicated lock
// acquired only while at most one bucket stripe is held (the fixed order
// stripe → overflow rules out deadlock). Counters live in per-stripe
// shards updated with atomic adds and merged by StatsSnapshot, and no
// internal lock is ever held across a call into another package: the
// OnRCTouch callback fires only after every stripe has been released.
package store

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/pool"
	"repro/internal/word"
)

// Config sizes the simulated memory.
type Config struct {
	// LineBytes is the memory line size: 16, 32 or 64.
	LineBytes int
	// BucketBits sets the number of hash buckets (1 << BucketBits).
	BucketBits int
	// DataWays is the number of data lines per bucket (paper example: 12).
	DataWays int
}

// DefaultConfig mirrors the paper's running example: 16-byte lines with
// twelve data ways per bucket.
func DefaultConfig() Config {
	return Config{LineBytes: 16, BucketBits: 16, DataWays: 12}
}

func (c Config) validate() error {
	switch c.LineBytes {
	case 16, 32, 64:
	default:
		return fmt.Errorf("store: line size %d not one of 16/32/64", c.LineBytes)
	}
	if c.BucketBits < 4 || c.BucketBits > 32 {
		return fmt.Errorf("store: bucket bits %d out of range [4,32]", c.BucketBits)
	}
	if c.DataWays < 1 || c.DataWays > 12 {
		return fmt.Errorf("store: data ways %d out of range [1,12]", c.DataWays)
	}
	return nil
}

// Stats counts simulated DRAM accesses by kind. The categories match the
// stacked bars of the paper's Figure 6.
type Stats struct {
	SigReads    uint64 // signature-line reads during lookup-by-content
	SigWrites   uint64 // signature-line updates on allocate/free
	DataReads   uint64 // demand data-line reads (cache miss fills)
	LookupReads uint64 // data-line reads comparing lookup candidates
	DataWrites  uint64 // data-line writebacks from the cache
	RCReads     uint64 // reference-count line fills
	RCWrites    uint64 // reference-count line writebacks
	DeallocOps  uint64 // line de-allocations (recursive state machine steps)
	Lookups     uint64 // lookup-by-content operations reaching DRAM
	LookupHits  uint64 // lookups that matched an existing line
	Allocs      uint64 // lines allocated
	Frees       uint64 // lines freed
	FalseSig    uint64 // signature matches whose data compare failed
	Overflows   uint64 // allocations diverted to the overflow area
}

// Total returns the total number of DRAM line accesses (reads + writes of
// any way), the quantity plotted in Figure 6.
func (s Stats) Total() uint64 {
	return s.SigReads + s.SigWrites + s.DataReads + s.LookupReads +
		s.DataWrites + s.RCReads + s.RCWrites + s.DeallocOps
}

// LookupTraffic returns the Figure 6 "Lookups" category: signature line
// reads/updates plus candidate data-line reads during lookup-by-content.
func (s Stats) LookupTraffic() uint64 { return s.SigReads + s.SigWrites + s.LookupReads }

// RCTraffic returns the Figure 6 "RC" category.
func (s Stats) RCTraffic() uint64 { return s.RCReads + s.RCWrites }

// Counter indices into a stats shard; one per Stats field.
const (
	cSigReads = iota
	cSigWrites
	cDataReads
	cLookupReads
	cDataWrites
	cRCReads
	cRCWrites
	cDeallocOps
	cLookups
	cLookupHits
	cAllocs
	cFrees
	cFalseSig
	cOverflows
	statCount
)

// statsShard is one stripe's counter block, padded to its own cache lines
// so stripes never false-share. Fields are updated with atomic adds: the
// read paths hold only shared (reader) stripe locks.
type statsShard struct {
	c [statCount]uint64
	_ [64 - (statCount*8)%64]byte
}

// numStripes is the number of bucket lock stripes (power of two). A
// bucket's stripe is bkt & (numStripes-1); stores with fewer buckets than
// stripes simply leave some stripes idle.
const numStripes = 64

type stripe struct {
	mu sync.RWMutex
	// unlock/runlock are mu.Unlock/mu.RUnlock bound once at construction:
	// creating a method value per lock acquisition allocates, and the
	// line-lock helpers run on every memory access.
	unlock  func()
	runlock func()
	_       [64 - 40%64]byte // keep neighbouring stripe locks off one line
}

// ovShard is the stats shard charged for overflow-area operations.
const ovShard = numStripes

// line is one memory line. Structural fields (used, sig, content, inDRAM)
// are written only under the line's exclusive lock and may be read under
// its shared lock. rc is accessed with atomics so the dedup-hit and
// retain fast paths can adjust it under the shared lock: while any shared
// lock is held, a used line cannot be freed (freeing needs the exclusive
// lock), so an atomic increment of a live line's count is always safe.
type line struct {
	used    bool
	sig     uint8
	rc      uint64 // atomic
	inDRAM  bool   // content has been written back to DRAM
	content word.Content
}

type bucket struct {
	ways []line
}

// rcEvent records one reference-count mutation to be reported through
// OnRCTouch after every internal lock has been released.
type rcEvent struct {
	p    word.PLID
	init bool
}

// Store is the deduplicating line memory. All methods are safe for
// concurrent use; see the package comment for the striping design.
type Store struct {
	cfg        Config
	arity      int
	bucketMask uint64
	stripes    [numStripes]stripe
	buckets    []bucket

	ovMu     sync.Mutex // guards overflow, freeOv and ovIndex
	ovUnlock func()     // ovMu.Unlock, bound once (see stripe)
	overflow []line
	freeOv   []uint32                // free slots in overflow
	ovIndex  map[word.Content]uint32 // content -> overflow slot

	liveLines atomic.Uint64
	rows      rowTracker
	shards    [numStripes + 1]statsShard

	// OnRCTouch, when non-nil, is invoked for every reference-count
	// mutation with the PLID whose count changed. The cache layer uses
	// it to model reference-count line traffic (§3.1: counts are cached
	// in the HICAMP cache and written to DRAM on eviction). init marks
	// the count initialization of a fresh allocation, which is written
	// straight into the cache without fetching the line from DRAM
	// (§3.1: "when the line is allocated by lookup operation its
	// reference count is written in the LLC and propagated to DRAM only
	// when the line is evicted"). The callback always runs with no store
	// lock held, so it may call back into any Store method.
	OnRCTouch func(p word.PLID, init bool)

	// journal, when non-nil, observes line liveness transitions for the
	// write-ahead log (see durable.go). Attached before the store serves
	// traffic and read without synchronization on the hot paths.
	journal Journal
}

func (s *Store) bump(shard, counter int) {
	atomic.AddUint64(&s.shards[shard].c[counter], 1)
}

func (s *Store) bumpN(shard, counter, n int) {
	if n > 0 {
		atomic.AddUint64(&s.shards[shard].c[counter], uint64(n))
	}
}

// fire reports collected reference-count events; the caller must hold no
// store lock.
func (s *Store) fire(events []rcEvent) {
	if s.OnRCTouch == nil {
		return
	}
	for _, e := range events {
		s.OnRCTouch(e.p, e.init)
	}
}

// fire1 reports a single reference-count event without building a slice;
// the caller must hold no store lock.
func (s *Store) fire1(p word.PLID, init bool) {
	if s.OnRCTouch != nil {
		s.OnRCTouch(p, init)
	}
}

// New creates a store. It panics on an invalid configuration, which is a
// programming error in the simulator setup, not a runtime condition.
func New(cfg Config) *Store {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	n := 1 << cfg.BucketBits
	s := &Store{
		cfg:        cfg,
		arity:      cfg.LineBytes / 8,
		bucketMask: uint64(n - 1),
		buckets:    make([]bucket, n),
	}
	for i := range s.stripes {
		mu := &s.stripes[i].mu
		s.stripes[i].unlock = mu.Unlock
		s.stripes[i].runlock = mu.RUnlock
	}
	s.ovUnlock = s.ovMu.Unlock
	// Bucket way arrays are allocated lazily on first use: a 2^20-bucket
	// store would otherwise commit ~1 GB up front.
	return s
}

// Config returns the configuration the store was built with.
func (s *Store) Config() Config { return s.cfg }

// LineWords returns the line width in 64-bit words (the DAG arity).
func (s *Store) LineWords() int { return s.arity }

// LiveLines returns the number of currently allocated lines.
func (s *Store) LiveLines() uint64 { return s.liveLines.Load() }

// FootprintBytes returns the DRAM bytes held by live lines.
func (s *Store) FootprintBytes() uint64 { return s.LiveLines() * uint64(s.cfg.LineBytes) }

// StatsSnapshot merges the per-stripe counter shards into one Stats value.
// Concurrent operations may be mid-flight; each counter is individually
// exact (quiesce the store for cross-counter invariants).
func (s *Store) StatsSnapshot() Stats {
	var sum [statCount]uint64
	for i := range s.shards {
		for c := 0; c < statCount; c++ {
			sum[c] += atomic.LoadUint64(&s.shards[i].c[c])
		}
	}
	return Stats{
		SigReads:    sum[cSigReads],
		SigWrites:   sum[cSigWrites],
		DataReads:   sum[cDataReads],
		LookupReads: sum[cLookupReads],
		DataWrites:  sum[cDataWrites],
		RCReads:     sum[cRCReads],
		RCWrites:    sum[cRCWrites],
		DeallocOps:  sum[cDeallocOps],
		Lookups:     sum[cLookups],
		LookupHits:  sum[cLookupHits],
		Allocs:      sum[cAllocs],
		Frees:       sum[cFrees],
		FalseSig:    sum[cFalseSig],
		Overflows:   sum[cOverflows],
	}
}

// ResetStats zeroes every access counter (line contents are kept).
func (s *Store) ResetStats() {
	for i := range s.shards {
		for c := 0; c < statCount; c++ {
			atomic.StoreUint64(&s.shards[i].c[c], 0)
		}
	}
	s.rows.reset()
}

// PLID layout: [0,BucketBits) bucket | [BucketBits,+4) way+2 | overflow bit.
// Data ways are numbered 2..13 following Figure 2 (way 0 = signatures,
// way 1 = reference counts), so a data PLID is never zero and the zero
// PLID can denote the architectural zero line.

const wayFieldBits = 4

// overflowSlotBits bounds the overflow area (2^overflowSlotBits slots
// beyond the first), sized far above any bucket spill the experiments
// produce while keeping PLIDs narrow enough for path compaction.
const overflowSlotBits = 10

// PLIDBits returns the number of low word bits a PLID occupies, bounding
// the space available to path compaction. Overflow PLIDs occupy the range
// [2^(BucketBits+4), 2^(BucketBits+4) * (1+2^overflowSlotBits)).
func (s *Store) PLIDBits() int { return s.cfg.BucketBits + wayFieldBits + overflowSlotBits + 1 }

// ovBase returns the first overflow PLID value.
func (s *Store) ovBase() uint64 { return 1 << (s.cfg.BucketBits + wayFieldBits) }

func (s *Store) plidFor(bkt uint64, way int) word.PLID {
	return word.PLID(uint64(way+2)<<s.cfg.BucketBits | bkt)
}

func (s *Store) overflowPLID(slot uint32) word.PLID {
	// Addition (not OR) keeps the mapping injective for every slot.
	return word.PLID(s.ovBase() + uint64(slot))
}

func (s *Store) isOverflow(p word.PLID) bool {
	return uint64(p) >= s.ovBase()
}

// BucketOf returns the hash bucket a PLID belongs to. Overflow PLIDs have
// no bucket; the second result reports whether the PLID is a bucket line.
func (s *Store) BucketOf(p word.PLID) (uint64, bool) {
	if s.isOverflow(p) {
		return 0, false
	}
	return uint64(p) & s.bucketMask, true
}

// BucketIndex returns the bucket a content hashes to.
func (s *Store) BucketIndex(c word.Content) uint64 {
	return c.Hash() & s.bucketMask
}

// stripeOf maps a bucket to its lock stripe.
func stripeOf(bkt uint64) int { return int(bkt & (numStripes - 1)) }

// shardOf returns the stats shard index for a PLID.
func (s *Store) shardOf(p word.PLID) int {
	if b, ok := s.BucketOf(p); ok {
		return stripeOf(b)
	}
	return ovShard
}

// lockLine acquires the exclusive lock guarding p's line (its bucket
// stripe, or the overflow lock) and returns the unlock function.
func (s *Store) lockLine(p word.PLID) func() {
	if s.isOverflow(p) {
		s.ovMu.Lock()
		return s.ovUnlock
	}
	st := &s.stripes[stripeOf(uint64(p)&s.bucketMask)]
	st.mu.Lock()
	return st.unlock
}

// rlockLine acquires shared access to p's line for the lock-free-reader
// paths (Read, Peek, RefCount). Overflow lines use the exclusive overflow
// lock, which is the cold path.
func (s *Store) rlockLine(p word.PLID) func() {
	if s.isOverflow(p) {
		s.ovMu.Lock()
		return s.ovUnlock
	}
	st := &s.stripes[stripeOf(uint64(p)&s.bucketMask)]
	st.mu.RLock()
	return st.runlock
}

// lineAt resolves a PLID to its line slot. The caller must hold p's lock
// (shared or exclusive).
func (s *Store) lineAt(p word.PLID) *line {
	if s.isOverflow(p) {
		slot := uint64(p) - s.ovBase()
		if slot >= uint64(len(s.overflow)) {
			panic(fmt.Sprintf("store: bad overflow PLID %#x", uint64(p)))
		}
		return &s.overflow[slot]
	}
	bkt := uint64(p) & s.bucketMask
	way := int(uint64(p)>>s.cfg.BucketBits) - 2
	if way < 0 || way >= s.cfg.DataWays || s.buckets[bkt].ways == nil {
		panic(fmt.Sprintf("store: bad PLID %#x (way %d)", uint64(p), way))
	}
	return &s.buckets[bkt].ways[way]
}

// Lookup performs the DRAM lookup-by-content protocol of §3.1 and returns
// the PLID plus whether the content already existed. The caller acquires
// one reference; on a fresh allocation the store additionally takes one
// reference per PLID-tagged word inside the content (the line's own
// references, released when the line is freed). Content of all zeroes
// must be handled by the caller (the zero PLID) and panics here.
//
// The whole probe-or-allocate runs under the bucket's stripe lock, which
// is what keeps content unique under concurrency: two racing lookups of
// the same content serialize on the same stripe, so the second always
// finds the first's line.
func (s *Store) Lookup(c word.Content) (word.PLID, bool) {
	if c.IsZero() {
		panic("store: Lookup of zero content (use word.Zero)")
	}
	if int(c.N) != s.arity {
		panic(fmt.Sprintf("store: content width %d, line width %d", c.N, s.arity))
	}
	h := c.Hash()
	bkt := h & s.bucketMask
	st := stripeOf(bkt)
	s.bump(st, cLookups)
	sig := word.SignatureOf(h)

	// Dedup-hit fast path: most steady-state lookups find their content
	// already resident and only need an rc increment, which the shared
	// stripe lock plus an atomic add allow without excluding concurrent
	// hits on the same (hot, because deduplicated) bucket.
	if p, ok := s.lookupFast(bkt, st, c, sig); ok {
		return p, true
	}

	var acc [statCount]uint64
	mu := &s.stripes[st].mu
	mu.Lock()
	p, existed, ev := s.lookupLocked(bkt, c, sig, &acc)
	mu.Unlock()
	s.flush(st, &acc)
	s.fire1(ev.p, ev.init)
	if !existed {
		// The line's own references on its children. The caller holds a
		// reference on every child it placed in c, so the children cannot
		// be reclaimed between the allocation above and these retains.
		s.retainChildren(c)
	}
	return p, existed
}

// LookupBatch performs lookup-by-content for every content in cs, the bulk
// write-path primitive behind segment.Builder: contents are grouped by
// bucket stripe so each stripe lock is taken once per batch (not once per
// line), DRAM accounting is accumulated locally and flushed with one
// atomic add per counter per stripe group, and row touches coalesce per
// lookup. Results are positional: plids[i] and existed[i] describe cs[i]
// with the same reference semantics as Lookup (the caller acquires one
// reference per element; fresh allocations additionally retain their
// PLID-tagged children).
//
// Stripe groups are processed in ascending stripe order with the overflow
// lock only ever nested inside one stripe lock — the same stripe-then-
// overflow order every other path uses, so concurrent batches (and
// singular lookups) cannot deadlock. Duplicate contents within one batch
// are safe: they land in the same stripe group, serialize under its lock,
// and the second finds the line the first allocated. Reference-count
// events fire, and children of fresh lines are retained, only after every
// stripe lock has been released.
func (s *Store) LookupBatch(cs []word.Content) (plids []word.PLID, existed []bool) {
	plids = make([]word.PLID, len(cs))
	existed = make([]bool, len(cs))
	s.LookupBatchInto(cs, plids, existed)
	return plids, existed
}

// LookupBatchInto is LookupBatch writing into caller-supplied buffers of
// length len(cs) — the allocation-free batch lookup: the grouping and
// event scratch is pooled, so a steady-state call (every content already
// resident) allocates nothing.
func (s *Store) LookupBatchInto(cs []word.Content, plids []word.PLID, existed []bool) {
	n := len(cs)
	if len(plids) != n || len(existed) != n {
		panic("store: LookupBatchInto buffer length mismatch")
	}
	if n == 0 {
		return
	}
	var sc pool.Scratch
	defer sc.Release()
	events := poolEvents.Get(&sc, n)
	bkts := poolU64.Get(&sc, n)
	sigs := poolSigs.Get(&sc, n)
	var counts [numStripes]int32
	for i := range cs {
		if cs[i].IsZero() {
			panic("store: LookupBatch of zero content (use word.Zero)")
		}
		if int(cs[i].N) != s.arity {
			panic(fmt.Sprintf("store: content width %d, line width %d", cs[i].N, s.arity))
		}
		h := cs[i].Hash()
		bkts[i] = h & s.bucketMask
		sigs[i] = word.SignatureOf(h)
		counts[stripeOf(bkts[i])]++
	}
	// Counting sort of batch indices by stripe: order[start[st]:start[st+1]]
	// lists the elements of stripe st in input order.
	var start [numStripes + 1]int32
	for st := 0; st < numStripes; st++ {
		start[st+1] = start[st] + counts[st]
	}
	order := poolOrder.Get(&sc, n)
	next := start
	for i := range cs {
		st := stripeOf(bkts[i])
		order[next[st]] = int32(i)
		next[st]++
	}
	for st := 0; st < numStripes; st++ {
		group := order[start[st]:start[st+1]]
		if len(group) == 0 {
			continue
		}
		var acc [statCount]uint64
		acc[cLookups] = uint64(len(group))
		mu := &s.stripes[st].mu
		mu.Lock()
		for _, i := range group {
			plids[i], existed[i], events[i] = s.lookupLocked(bkts[i], cs[i], sigs[i], &acc)
		}
		mu.Unlock()
		s.flush(st, &acc)
	}
	for i := range cs {
		s.fire1(events[i].p, events[i].init)
		if !existed[i] {
			s.retainChildren(cs[i])
		}
	}
}

// flush adds a local counter accumulator into a stats shard, one atomic
// add per non-zero counter.
func (s *Store) flush(shard int, acc *[statCount]uint64) {
	for i, v := range acc {
		if v != 0 {
			atomic.AddUint64(&s.shards[shard].c[i], v)
		}
	}
}

// lookupFast probes for an existing line under the stripe's shared lock.
// The protocol's accounting (signature read, candidate reads, row
// touches) is deferred until a hit is confirmed, so a fall-through to the
// exclusive path — which re-runs the full protocol — never double-charges.
// While the shared lock is held a used line cannot be freed, so the
// atomic rc increment cannot resurrect a dead line.
func (s *Store) lookupFast(bkt uint64, st int, c word.Content, sig uint8) (word.PLID, bool) {
	mu := &s.stripes[st].mu
	mu.RLock()
	b := &s.buckets[bkt]
	if b.ways == nil {
		mu.RUnlock()
		return 0, false
	}
	reads := 0 // sig-matching candidates read, including the hit
	for w := range b.ways {
		ln := &b.ways[w]
		if !ln.used || ln.sig != sig {
			continue
		}
		reads++
		if ln.content == c {
			atomic.AddUint64(&ln.rc, 1)
			mu.RUnlock()
			s.chargeHit(bkt, st, reads, reads-1)
			p := s.plidFor(bkt, w)
			s.fire1(p, false)
			return p, true
		}
	}
	// Overflow probe, chained from the bucket row. Lock order matches the
	// exclusive path: stripe (shared here) then overflow.
	s.ovMu.Lock()
	slot, ok := s.ovIndex[c]
	var p word.PLID
	if ok {
		p = s.overflowPLID(slot)
		s.overflow[slot].rc++
	}
	s.ovMu.Unlock()
	mu.RUnlock()
	if !ok {
		return 0, false
	}
	s.chargeHit(bkt, st, reads+1, reads)
	s.fire1(p, false)
	return p, true
}

// chargeHit applies the deferred accounting of a fast-path lookup hit:
// one signature read plus `reads` candidate data reads (of which
// `falseSig` were signature aliases), all in the bucket's DRAM row. Row
// touches land after the data access rather than during it; hardware
// interleaves concurrent lookups' row activity the same way.
func (s *Store) chargeHit(bkt uint64, st, reads, falseSig int) {
	s.rows.touchN(bkt, reads+1)
	s.bump(st, cSigReads)
	s.bumpN(st, cLookupReads, reads)
	s.bumpN(st, cFalseSig, falseSig)
	s.bump(st, cLookupHits)
}

// lookupLocked is the locked body of Lookup and LookupBatch: the caller
// holds the bucket's stripe lock exclusively. DRAM accounting is charged
// into acc (the caller flushes it into the stripe's shard after
// unlocking), and the lookup's row accesses coalesce into one touchN per
// element. It returns the rc event to fire once the locks are gone.
func (s *Store) lookupLocked(bkt uint64, c word.Content, sig uint8, acc *[statCount]uint64) (word.PLID, bool, rcEvent) {
	b := &s.buckets[bkt]
	if b.ways == nil {
		b.ways = make([]line, s.cfg.DataWays)
	}

	// Step 2-3: read the signature line, compare signatures. This is the
	// access that opens the bucket's DRAM row; the candidate reads,
	// signature update and RC access below stay in the open row (§3.1).
	touches := 1
	acc[cSigReads]++
	for w := range b.ways {
		ln := &b.ways[w]
		if !ln.used || ln.sig != sig {
			continue
		}
		// Step 4: candidate data line read and compare (open-row hit).
		touches++
		acc[cLookupReads]++
		if ln.content == c {
			atomic.AddUint64(&ln.rc, 1)
			acc[cLookupHits]++
			s.rows.touchN(bkt, touches)
			p := s.plidFor(bkt, w)
			return p, true, rcEvent{p, false}
		}
		acc[cFalseSig]++
	}
	// Overflow lines for this content are found via the overflow scan
	// chained from the bucket row; model it as one extra read in the
	// bucket's open row. Lock order is always stripe → overflow.
	s.ovMu.Lock()
	if slot, ok := s.ovIndex[c]; ok {
		p := s.overflowPLID(slot)
		s.overflow[slot].rc++
		s.ovMu.Unlock()
		touches++
		acc[cLookupReads]++
		acc[cLookupHits]++
		s.rows.touchN(bkt, touches)
		return p, true, rcEvent{p, false}
	}
	s.ovMu.Unlock()

	// Step 6: allocate. Find an empty way via the signature line (already
	// read); the signature update is one write back to the same DRAM row.
	for w := range b.ways {
		if !b.ways[w].used {
			b.ways[w] = line{used: true, sig: sig, rc: 1, content: c}
			touches++
			acc[cSigWrites]++
			acc[cAllocs]++
			s.liveLines.Add(1)
			s.rows.touchN(bkt, touches)
			p := s.plidFor(bkt, w)
			if s.journal != nil {
				// Under the stripe lock: the same lock orders this PLID's
				// free against its re-allocation, so the log records
				// liveness transitions in application order.
				s.journal.JournalAlloc(p, c)
			}
			return p, false, rcEvent{p, true}
		}
	}
	// Bucket full: spill to the overflow area.
	s.rows.touchN(bkt, touches)
	p := s.allocOverflow(c, sig)
	return p, false, rcEvent{p, true}
}

// allocOverflow is called with the content's bucket stripe held.
func (s *Store) allocOverflow(c word.Content, sig uint8) word.PLID {
	s.bump(ovShard, cOverflows)
	s.bump(ovShard, cAllocs)
	s.bump(ovShard, cSigWrites) // overflow pointer update in the bucket row
	s.liveLines.Add(1)
	s.ovMu.Lock()
	defer s.ovMu.Unlock()
	var slot uint32
	if n := len(s.freeOv); n > 0 {
		slot = s.freeOv[n-1]
		s.freeOv = s.freeOv[:n-1]
		s.overflow[slot] = line{used: true, sig: sig, rc: 1, content: c}
	} else {
		slot = uint32(len(s.overflow))
		s.overflow = append(s.overflow, line{used: true, sig: sig, rc: 1, content: c})
	}
	if s.ovIndex == nil {
		s.ovIndex = make(map[word.Content]uint32)
	}
	s.ovIndex[c] = slot
	p := s.overflowPLID(slot)
	if s.journal != nil {
		// Under ovMu, which orders an overflow slot's free against its
		// reuse the same way a stripe lock does for bucket ways.
		s.journal.JournalAlloc(p, c)
	}
	return p
}

func (s *Store) retainChildren(c word.Content) {
	for i := 0; i < int(c.N); i++ {
		switch c.T[i] {
		case word.TagPLID:
			s.Retain(word.PLID(c.W[i]))
		case word.TagCompact:
			s.Retain(word.CompactPLID(c.W[i], s.PLIDBits()))
		}
	}
}

// Read returns the content of a line, counting one DRAM data read. It is
// part of the reader fast path: only a shared stripe lock is taken, so
// concurrent reads of in-DRAM lines never exclude one another. Reading the
// zero PLID returns zero content with no DRAM access.
func (s *Store) Read(p word.PLID) word.Content {
	if p == word.Zero {
		return word.NewContent(s.arity)
	}
	s.bump(s.shardOf(p), cDataReads)
	s.rows.touch(s.rowOf(p))
	unlock := s.rlockLine(p)
	ln := s.lineAt(p)
	used, c := ln.used, ln.content
	unlock()
	if !used {
		panic(fmt.Sprintf("store: read of freed PLID %#x", uint64(p)))
	}
	return c
}

// Peek returns a line's content without simulating a DRAM access. The
// cache layer uses it to fill entries whose DRAM traffic it accounts
// itself, and tests use it to inspect state. Like Read it takes only a
// shared stripe lock.
func (s *Store) Peek(p word.PLID) (word.Content, bool) {
	if p == word.Zero {
		return word.NewContent(s.arity), true
	}
	unlock := s.rlockLine(p)
	defer unlock()
	ln := s.lineAt(p)
	if !ln.used {
		return word.Content{}, false
	}
	return ln.content, true
}

// RefCount returns the current reference count of a line (0 if freed).
func (s *Store) RefCount(p word.PLID) uint64 {
	if p == word.Zero {
		return 0
	}
	unlock := s.rlockLine(p)
	defer unlock()
	ln := s.lineAt(p)
	if !ln.used {
		return 0
	}
	return atomic.LoadUint64(&ln.rc)
}

// Retain adds one reference to p without touching DRAM counters; the
// caller models the reference-count line traffic (they are cached). Only
// a shared lock is needed: the caller already holds a reference (so the
// line cannot die), and the increment itself is atomic.
func (s *Store) Retain(p word.PLID) {
	if p == word.Zero {
		return
	}
	s.RetainQuiet(p)
	s.fire1(p, false)
}

// RetainQuiet is Retain without the OnRCTouch callback: the caller takes
// responsibility for reporting the reference-count traffic afterwards.
// It exists so a caller holding its own lock can take a reference
// atomically with its read while keeping the callback's cache traffic out
// of the critical section.
func (s *Store) RetainQuiet(p word.PLID) {
	if p == word.Zero {
		return
	}
	unlock := s.rlockLine(p)
	ln := s.lineAt(p)
	if !ln.used {
		unlock()
		panic(fmt.Sprintf("store: retain of freed PLID %#x", uint64(p)))
	}
	atomic.AddUint64(&ln.rc, 1)
	unlock()
}

// RetainIfContent adds one reference to p only if the line is live and
// still holds content c, reporting whether it did. The cache layer uses it
// on content hits: between a cache probe and the retain, the line may have
// been freed (and its slot even reallocated for different content) by a
// concurrent release, in which case the caller must fall back to the
// authoritative lookup path.
func (s *Store) RetainIfContent(p word.PLID, c word.Content) bool {
	if p == word.Zero {
		return false
	}
	unlock := s.rlockLine(p)
	ln := s.lineAt(p)
	if !ln.used || ln.content != c {
		unlock()
		return false
	}
	// used && content match under the shared lock means the line is live
	// and cannot be freed until the lock drops, so the increment is safe.
	atomic.AddUint64(&ln.rc, 1)
	unlock()
	s.fire1(p, false)
	return true
}

// Freed describes one line reclaimed by Release: its PLID and the hash
// of the content it held, which the cache layer needs to locate (and
// invalidate) the corresponding cache set after the content is gone.
type Freed struct {
	P word.PLID
	H uint64
}

// Release drops one reference to p. When the count reaches zero the line
// is freed: its signature is zeroed (one DRAM write, counted as a dealloc
// op) and references held by its PLID words are released recursively by
// the hardware de-allocation state machine. It returns the lines freed by
// this release so the cache layer can invalidate them.
//
// The de-allocation worklist locks one line at a time and never holds two
// stripes at once; a freed parent's reference keeps each child alive until
// the worklist reaches it, so the per-line locking cannot race with a
// concurrent lookup re-allocating the child.
func (s *Store) Release(p word.PLID) []Freed {
	if p == word.Zero {
		return nil
	}
	if s.releaseFast(p) {
		return nil
	}
	var freed []Freed
	var events []rcEvent
	work := []word.PLID{p}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if cur == word.Zero {
			continue
		}
		unlock := s.lockLine(cur)
		ln := s.lineAt(cur)
		if !ln.used {
			unlock()
			panic(fmt.Sprintf("store: release of freed PLID %#x", uint64(cur)))
		}
		if atomic.LoadUint64(&ln.rc) == 0 {
			unlock()
			panic(fmt.Sprintf("store: reference underflow on PLID %#x", uint64(cur)))
		}
		left := atomic.AddUint64(&ln.rc, ^uint64(0))
		events = append(events, rcEvent{cur, false})
		if left > 0 {
			unlock()
			continue
		}
		// Free: zero the signature, queue children for the state machine.
		sh := s.shardOf(cur)
		s.bump(sh, cDeallocOps)
		s.bump(sh, cFrees)
		s.liveLines.Add(^uint64(0))
		for i := 0; i < int(ln.content.N); i++ {
			switch ln.content.T[i] {
			case word.TagPLID:
				work = append(work, word.PLID(ln.content.W[i]))
			case word.TagCompact:
				work = append(work, word.CompactPLID(ln.content.W[i], s.PLIDBits()))
			}
		}
		hash := ln.content.Hash()
		if s.isOverflow(cur) {
			slot := uint32(uint64(cur) - s.ovBase())
			delete(s.ovIndex, s.overflow[slot].content)
			s.overflow[slot] = line{}
			s.freeOv = append(s.freeOv, slot)
		} else {
			*ln = line{}
		}
		if s.journal != nil {
			// Still under the line's lock, matching JournalAlloc's order.
			s.journal.JournalFree(cur)
		}
		unlock()
		freed = append(freed, Freed{P: cur, H: hash})
	}
	s.fire(events)
	return freed
}

// releaseFast drops one reference under the shared lock when the count
// cannot reach zero, so hot shared lines (DAG roots, deduplicated
// interior nodes) release without serializing on the stripe's exclusive
// lock. The CAS from v to v-1 is attempted only for v >= 2: the result
// stays positive, so no free is needed, and the line cannot be freed
// underneath us because freeing requires the exclusive lock. If the count
// is 1 (this caller holds the last reference — nobody else can be
// releasing it), the caller falls back to the exclusive free path.
func (s *Store) releaseFast(p word.PLID) bool {
	unlock := s.rlockLine(p)
	ln := s.lineAt(p)
	if !ln.used {
		unlock()
		return false // slow path reports the underflow
	}
	for {
		v := atomic.LoadUint64(&ln.rc)
		if v < 2 {
			unlock()
			return false
		}
		if atomic.CompareAndSwapUint64(&ln.rc, v, v-1) {
			unlock()
			s.fire1(p, false)
			return true
		}
	}
}

// Writeback records the eviction of a dirty (newly created) line from the
// cache: the first time a line leaves the cache its data is written to
// DRAM (paper §3.1). Subsequent writebacks of the same immutable line are
// impossible because clean lines are dropped silently.
func (s *Store) Writeback(p word.PLID) {
	if p == word.Zero {
		return
	}
	unlock := s.lockLine(p)
	ln := s.lineAt(p)
	if !ln.used || ln.inDRAM {
		unlock()
		return
	}
	ln.inDRAM = true
	unlock()
	s.rows.touch(s.rowOf(p))
	s.bump(s.shardOf(p), cDataWrites)
}

// RCLineRead and RCLineWrite account reference-count line DRAM traffic;
// the cache layer calls them on RC-line fills and dirty evictions.
func (s *Store) RCLineRead()  { s.bump(ovShard, cRCReads) }
func (s *Store) RCLineWrite() { s.bump(ovShard, cRCWrites) }

// lockAll acquires every stripe (in index order) plus the overflow lock,
// freezing the whole store; unlockAll releases them. Used by the global
// invariant checker. The fixed order stripes → overflow matches every
// other path, so lockAll cannot deadlock against concurrent operations.
func (s *Store) lockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
	s.ovMu.Lock()
}

func (s *Store) unlockAll() {
	s.ovMu.Unlock()
	for i := len(s.stripes) - 1; i >= 0; i-- {
		s.stripes[i].mu.Unlock()
	}
}

// CheckConsistency verifies the reference-counting invariant: every live
// line's count equals the number of PLID words in live lines that name it,
// plus the external references the caller says it holds. It returns an
// error describing the first violation found. The check freezes the store
// (all stripes locked), so it observes an atomic snapshot; call it at
// quiescence — in-flight operations legitimately hold transient references
// the external map cannot know about.
func (s *Store) CheckConsistency(external map[word.PLID]uint64) error {
	s.lockAll()
	defer s.unlockAll()
	indeg := make(map[word.PLID]uint64)
	addRefs := func(c word.Content) {
		for i := 0; i < int(c.N); i++ {
			switch c.T[i] {
			case word.TagPLID:
				if p := word.PLID(c.W[i]); p != word.Zero {
					indeg[p]++
				}
			case word.TagCompact:
				p := word.CompactPLID(c.W[i], s.PLIDBits())
				if p != word.Zero {
					indeg[p]++
				}
			}
		}
	}
	forEachLive := func(fn func(p word.PLID, ln *line)) {
		for b := range s.buckets {
			for w := range s.buckets[b].ways {
				if s.buckets[b].ways[w].used {
					fn(s.plidFor(uint64(b), w), &s.buckets[b].ways[w])
				}
			}
		}
		for i := range s.overflow {
			if s.overflow[i].used {
				fn(s.overflowPLID(uint32(i)), &s.overflow[i])
			}
		}
	}
	forEachLive(func(_ word.PLID, ln *line) { addRefs(ln.content) })
	var err error
	forEachLive(func(p word.PLID, ln *line) {
		if err != nil {
			return
		}
		want := indeg[p] + external[p]
		if atomic.LoadUint64(&ln.rc) != want {
			err = fmt.Errorf("store: PLID %#x rc=%d, want %d (internal %d + external %d)",
				uint64(p), atomic.LoadUint64(&ln.rc), want, indeg[p], external[p])
		}
	})
	if err != nil {
		return err
	}
	// Every line a live line references must itself be live.
	for p := range indeg {
		if ln := s.lineAt(p); !ln.used {
			return fmt.Errorf("store: dangling reference to freed PLID %#x", uint64(p))
		}
	}
	return nil
}

// UniqueLineCount reports how many distinct lines the given byte streams
// would occupy at this store's line size, without allocating them. It is
// the fast dedup counter used by the footprint experiments (Table 1,
// Figures 8-10); see DESIGN.md.
func UniqueLineCount(lineBytes int, streams ...[]byte) uint64 {
	seen := make(map[word.Content]struct{})
	arity := lineBytes / 8
	for _, b := range streams {
		for off := 0; off < len(b); off += lineBytes {
			end := off + lineBytes
			if end > len(b) {
				end = len(b)
			}
			c := word.ContentFromBytes(arity, b[off:end])
			if c.IsZero() {
				continue
			}
			seen[c] = struct{}{}
		}
	}
	return uint64(len(seen))
}

// WaysPerBucket returns the number of data ways, exposed for tests
// asserting the Figure 2 geometry.
func (s *Store) WaysPerBucket() int { return s.cfg.DataWays }
