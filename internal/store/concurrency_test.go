package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/word"
)

// Regression: the overflow-hit path of Lookup used to charge LookupReads
// without registering the access with the row tracker, under-counting the
// bucket row's activity. The chain read must touch the bucket's row like
// every other access of the lookup protocol.
func TestOverflowHitTouchesBucketRow(t *testing.T) {
	s := New(Config{LineBytes: 16, BucketBits: 4, DataWays: 1})
	rng := rand.New(rand.NewSource(11))
	// Fill well past 16 buckets x 1 way so some lines land in overflow.
	var ovContent word.Content
	found := false
	for i := 0; i < 200; i++ {
		c := word.NewContent(2)
		c.W[0], c.W[1] = rng.Uint64(), rng.Uint64()
		p, _ := s.Lookup(c)
		if s.isOverflow(p) {
			ovContent, found = c, true
		}
	}
	if !found {
		t.Fatal("setup: no overflow-resident line")
	}

	// Warm the row tracker: one hit-lookup opens the bucket's row.
	if _, existed := s.Lookup(ovContent); !existed {
		t.Fatal("overflow line not found")
	}
	before := s.RowStats()
	beforeReads := s.StatsSnapshot().LookupReads
	// The second identical lookup must stay entirely in the open bucket
	// row: the signature read AND the overflow chain read are both row
	// touches (>= 2 row hits, 0 new activations). Before the fix the
	// chain read was invisible to the tracker and only one touch showed.
	if _, existed := s.Lookup(ovContent); !existed {
		t.Fatal("overflow line not found on repeat")
	}
	after := s.RowStats()
	if got := s.StatsSnapshot().LookupReads - beforeReads; got == 0 {
		t.Fatal("overflow hit did not charge a LookupRead")
	}
	if acts := after.Activations - before.Activations; acts != 0 {
		t.Fatalf("repeat lookup opened %d rows; all accesses belong to the open bucket row", acts)
	}
	if hits := after.RowHits - before.RowHits; hits < 2 {
		t.Fatalf("repeat lookup registered %d row touches, want >= 2 (sig read + overflow chain read)", hits)
	}
	// Drop the extra refs the two hit-lookups took.
	s.Release(mustPLID(s, ovContent))
	s.Release(mustPLID(s, ovContent))
}

func mustPLID(s *Store, c word.Content) word.PLID {
	p, existed := s.Lookup(c)
	if !existed {
		panic("content vanished")
	}
	s.Release(p) // undo the lookup's retain; caller releases the real ref
	return p
}

// buildChain creates a linear DAG of depth levels over a distinctive leaf
// and returns the root PLID. Interior nodes hold the only reference to
// their child, so releasing the root frees the whole chain.
func buildChain(s *Store, tag uint64, depth int) word.PLID {
	c := word.NewContent(s.LineWords())
	c.W[0], c.W[1] = tag, ^tag
	p, _ := s.Lookup(c)
	for i := 0; i < depth; i++ {
		parent := word.NewContent(s.LineWords())
		parent.W[0], parent.T[0] = uint64(p), word.TagPLID
		parent.W[1] = tag ^ uint64(i)<<32
		np, _ := s.Lookup(parent) // retains p for the new line
		s.Release(p)              // drop the build ref
		p = np
	}
	return p
}

// Stress: goroutines concurrently build and release overlapping DAGs —
// every goroutine's chains bottom out in a small shared set of leaves, so
// stripe locks, reference counts and the dedup index all contend. The
// striped store must neither leak nor double-free, and CheckConsistency
// must hold at quiescence. Run with -race.
func TestConcurrentLookupRelease(t *testing.T) {
	s := New(Config{LineBytes: 16, BucketBits: 6, DataWays: 4})
	const goroutines = 8
	const rounds = 60

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			var held []word.PLID
			for i := 0; i < rounds; i++ {
				// Shared tag space: goroutines collide on the same contents,
				// exercising the dedup path and rc contention — and the tag
				// cycle (3) is shorter than the held window (6), so every
				// goroutine re-looks-up leaves it still holds alive,
				// guaranteeing dedup hits however the scheduler interleaves.
				tag := uint64(i % 3)
				p := buildChain(s, tag, 1+(i/3)%4)
				held = append(held, p)
				if len(held) > 6 {
					s.Release(held[0])
					held = held[1:]
				}
			}
			for _, p := range held {
				s.Release(p)
			}
		}(g)
	}
	close(start)
	wg.Wait()

	if live := s.LiveLines(); live != 0 {
		t.Fatalf("%d lines leaked after concurrent churn", live)
	}
	if err := s.CheckConsistency(nil); err != nil {
		t.Fatal(err)
	}
	st := s.StatsSnapshot()
	if st.LookupHits == 0 {
		t.Fatal("overlapping DAGs never deduplicated")
	}
}

// Stress the overflow area specifically: tiny bucket space so most lines
// spill, with concurrent alloc/dedup/release traffic through ovMu.
func TestConcurrentOverflowChurn(t *testing.T) {
	s := New(Config{LineBytes: 16, BucketBits: 4, DataWays: 1})
	const goroutines = 6
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			// Hold every looked-up line until the end of the pass: 60
			// distinct contents against 16 buckets x 1 way guarantees
			// overflow spills whatever the interleaving.
			var held []word.PLID
			for i := 0; i < 80; i++ {
				c := word.NewContent(2)
				// Overlapping contents across goroutines.
				c.W[0], c.W[1] = uint64(i%20)+1, uint64(g%3)
				p, _ := s.Lookup(c)
				if got := s.Read(p); got != c {
					panic(fmt.Sprintf("read %v != %v", got, c))
				}
				held = append(held, p)
			}
			for _, p := range held {
				s.Release(p)
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if live := s.LiveLines(); live != 0 {
		t.Fatalf("%d lines leaked", live)
	}
	if err := s.CheckConsistency(nil); err != nil {
		t.Fatal(err)
	}
	if s.StatsSnapshot().Overflows == 0 {
		t.Fatal("expected overflow traffic with 4 buckets x 1 way")
	}
}
