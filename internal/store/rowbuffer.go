package store

import (
	"sync/atomic"

	"repro/internal/word"
)

// DRAM row-buffer model. §3.1 argues that the lookup-by-content protocol
// is DRAM-friendly: the signature read, candidate data reads, signature
// update and reference-count access of one lookup all land in the same
// DRAM row (the hash bucket *is* the row), so a lookup costs one row
// activation however many line transfers it makes. This model tracks the
// open row per bank and counts activations versus open-row hits, which
// the row-locality tests assert and the energy discussion in the paper
// relies on.
//
// The tracker is lock-free: each bank's open row is one atomic word, so
// the reader fast path (Store.Read) never takes a mutex for row
// accounting. Under concurrency the interleaving of row opens is whatever
// the scheduler produces — exactly as in hardware, where banks serve the
// cores' interleaved request stream.

// rowBanks is the number of DRAM banks (row buffers) modelled.
const rowBanks = 8

// RowStats counts row-buffer behaviour.
type RowStats struct {
	Activations uint64 // accesses that had to open a new row
	RowHits     uint64 // accesses served from the open row
}

// HitRate returns the fraction of accesses served by open rows.
func (r RowStats) HitRate() float64 {
	total := r.Activations + r.RowHits
	if total == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(total)
}

type rowTracker struct {
	// open holds row+1 per bank; 0 means no row open yet.
	open        [rowBanks]atomic.Uint64
	activations atomic.Uint64
	rowHits     atomic.Uint64
}

// touch records an access to the given row, returning whether it hit the
// open row of its bank.
func (rt *rowTracker) touch(row uint64) bool {
	bank := row % rowBanks
	if rt.open[bank].Load() == row+1 {
		rt.rowHits.Add(1)
		return true
	}
	rt.open[bank].Store(row + 1)
	rt.activations.Add(1)
	return false
}

// touchN records n back-to-back accesses to the same row with two atomic
// adds instead of n: at most the first access activates the row, every
// subsequent one hits the then-open row — exactly the counts an
// uninterrupted sequence of touch calls would produce. The batch lookup
// path uses it to coalesce one lookup's row accounting.
func (rt *rowTracker) touchN(row uint64, n int) {
	if n <= 0 {
		return
	}
	bank := row % rowBanks
	hits := uint64(n)
	if rt.open[bank].Load() != row+1 {
		rt.open[bank].Store(row + 1)
		rt.activations.Add(1)
		hits--
	}
	if hits > 0 {
		rt.rowHits.Add(hits)
	}
}

func (rt *rowTracker) reset() {
	rt.activations.Store(0)
	rt.rowHits.Store(0)
}

func (rt *rowTracker) snapshot() RowStats {
	return RowStats{Activations: rt.activations.Load(), RowHits: rt.rowHits.Load()}
}

// rowOf maps a line to its DRAM row: the hash bucket for bucket-resident
// lines; overflow lines live in rows past the bucket area.
func (s *Store) rowOf(p word.PLID) uint64 {
	if b, ok := s.BucketOf(p); ok {
		return b
	}
	slot := uint64(p) - s.ovBase()
	rowSize := uint64(16) // overflow lines per row
	return uint64(1)<<s.cfg.BucketBits + slot/rowSize
}

// RowStats returns the accumulated row-buffer counters.
func (s *Store) RowStats() RowStats { return s.rows.snapshot() }
