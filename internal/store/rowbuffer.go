package store

import "repro/internal/word"

// DRAM row-buffer model. §3.1 argues that the lookup-by-content protocol
// is DRAM-friendly: the signature read, candidate data reads, signature
// update and reference-count access of one lookup all land in the same
// DRAM row (the hash bucket *is* the row), so a lookup costs one row
// activation however many line transfers it makes. This model tracks the
// open row per bank and counts activations versus open-row hits, which
// the row-locality tests assert and the energy discussion in the paper
// relies on.

// rowBanks is the number of DRAM banks (row buffers) modelled.
const rowBanks = 8

// RowStats counts row-buffer behaviour.
type RowStats struct {
	Activations uint64 // accesses that had to open a new row
	RowHits     uint64 // accesses served from the open row
}

// HitRate returns the fraction of accesses served by open rows.
func (r RowStats) HitRate() float64 {
	total := r.Activations + r.RowHits
	if total == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(total)
}

type rowTracker struct {
	open  [rowBanks]uint64
	valid [rowBanks]bool
	Stats RowStats
}

// touch records an access to the given row, returning whether it hit the
// open row of its bank.
func (rt *rowTracker) touch(row uint64) bool {
	bank := row % rowBanks
	if rt.valid[bank] && rt.open[bank] == row {
		rt.Stats.RowHits++
		return true
	}
	rt.valid[bank] = true
	rt.open[bank] = row
	rt.Stats.Activations++
	return false
}

// rowOf maps a line to its DRAM row: the hash bucket for bucket-resident
// lines; overflow lines live in rows past the bucket area.
func (s *Store) rowOf(p word.PLID) uint64 {
	if b, ok := s.BucketOf(p); ok {
		return b
	}
	slot := uint64(p) - s.ovBase()
	rowSize := uint64(16) // overflow lines per row
	return uint64(1)<<s.cfg.BucketBits + slot/rowSize
}

// RowStats returns the accumulated row-buffer counters.
func (s *Store) RowStats() RowStats { return s.rows.Stats }
