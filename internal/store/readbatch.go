package store

import (
	"fmt"

	"repro/internal/pool"
	"repro/internal/word"
)

// Pooled scratch for the batch paths: grouping scratch is borrowed per
// call so a steady-state batch read or lookup allocates nothing.
var (
	poolGroup  = pool.NewSlice[int16]("store.group")
	poolOrder  = pool.NewSlice[int32]("store.order")
	poolEvents = pool.NewSlice[rcEvent]("store.rcevent")
	poolU64    = pool.NewSlice[uint64]("store.u64")
	poolSigs   = pool.NewSlice[uint8]("store.sig")
)

// ReadBatch returns the content of every line in ps, the bulk read-path
// primitive behind core.Machine.ReadLineBatch: PLIDs are grouped by
// bucket stripe so each stripe's reader lock is taken once per batch (not
// once per line), and the data-read accounting is accumulated locally and
// flushed with one atomic add per stripe group. Results are positional
// with the exact semantics of Read — zero PLIDs resolve to all-zero
// content with no DRAM access, reading a freed PLID panics — and the
// accounting is pinned identical to len(ps) serial Read calls: the same
// DataReads per stats shard, and row-buffer touches replayed in input
// order so the activation/open-row-hit sequence matches what the serial
// loop would have produced.
//
// Stripe groups are processed in ascending stripe order with the overflow
// lock taken on its own (never nested inside a stripe lock), so
// concurrent batches, lookups and releases cannot deadlock. Duplicate
// PLIDs within one batch are safe: both land in the same group and read
// the same line under one shared lock.
func (s *Store) ReadBatch(ps []word.PLID) []word.Content {
	out := make([]word.Content, len(ps))
	s.ReadBatchInto(ps, out)
	return out
}

// ReadBatchInto is ReadBatch writing into a caller-supplied buffer of
// length len(ps) — the allocation-free batch read: the internal grouping
// scratch is pooled, so a steady-state call allocates nothing.
func (s *Store) ReadBatchInto(ps []word.PLID, out []word.Content) {
	n := len(ps)
	if len(out) != n {
		panic("store: ReadBatchInto buffer length mismatch")
	}
	if n == 0 {
		return
	}
	var sc pool.Scratch
	defer sc.Release()
	// Group element indices by lock domain with a counting sort: stripes
	// 0..numStripes-1 for bucket lines, ovShard for the overflow area.
	gidx := poolGroup.Get(&sc, n) // lock group per element; -1 for the zero PLID
	var counts [numStripes + 1]int32
	for i, p := range ps {
		if p == word.Zero {
			gidx[i] = -1
			out[i] = word.NewContent(s.arity)
			continue
		}
		g := int16(ovShard)
		if !s.isOverflow(p) {
			g = int16(stripeOf(uint64(p) & s.bucketMask))
		}
		gidx[i] = g
		counts[g]++
	}
	var start [numStripes + 2]int32
	for g := 0; g <= numStripes; g++ {
		start[g+1] = start[g] + counts[g]
	}
	order := poolOrder.Get(&sc, int(start[numStripes+1]))
	next := start
	for i := range ps {
		if gidx[i] < 0 {
			continue
		}
		order[next[gidx[i]]] = int32(i)
		next[gidx[i]]++
	}
	for g := 0; g <= numStripes; g++ {
		group := order[start[g]:start[g+1]]
		if len(group) == 0 {
			continue
		}
		var unlock func()
		if g == ovShard {
			s.ovMu.Lock()
			unlock = s.ovUnlock
		} else {
			s.stripes[g].mu.RLock()
			unlock = s.stripes[g].runlock
		}
		bad := word.Zero // first freed PLID found; the panic fires unlocked
		for _, i := range group {
			ln := s.lineAt(ps[i])
			if !ln.used {
				bad = ps[i]
				break
			}
			out[i] = ln.content
		}
		unlock()
		if bad != word.Zero {
			panic(fmt.Sprintf("store: read of freed PLID %#x", uint64(bad)))
		}
		s.bumpN(g, cDataReads, len(group))
	}
	// Replay the row-buffer touches in input order — the exact
	// activation/hit sequence len(ps) serial Read calls produce.
	for i, p := range ps {
		if gidx[i] >= 0 {
			s.rows.touch(s.rowOf(p))
		}
	}
}
