package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/word"
)

func testConfig() Config {
	return Config{LineBytes: 16, BucketBits: 8, DataWays: 12}
}

func leaf(s *Store, b []byte) word.Content {
	return word.ContentFromBytes(s.LineWords(), b)
}

func TestLookupDeduplicates(t *testing.T) {
	s := New(testConfig())
	c := leaf(s, []byte("duplicate me!!"))
	p1, existed1 := s.Lookup(c)
	p2, existed2 := s.Lookup(c)
	if existed1 {
		t.Fatal("first lookup reported existing")
	}
	if !existed2 {
		t.Fatal("second lookup did not dedup")
	}
	if p1 != p2 {
		t.Fatalf("same content, different PLIDs: %#x vs %#x", p1, p2)
	}
	if rc := s.RefCount(p1); rc != 2 {
		t.Fatalf("rc = %d, want 2", rc)
	}
	if s.LiveLines() != 1 {
		t.Fatalf("live lines = %d, want 1", s.LiveLines())
	}
}

func TestDistinctContentDistinctPLIDs(t *testing.T) {
	s := New(testConfig())
	p1, _ := s.Lookup(leaf(s, []byte("content A")))
	p2, _ := s.Lookup(leaf(s, []byte("content B")))
	if p1 == p2 {
		t.Fatal("distinct contents share a PLID")
	}
}

func TestZeroPLIDRead(t *testing.T) {
	s := New(testConfig())
	c := s.Read(word.Zero)
	if !c.IsZero() {
		t.Fatal("zero PLID must read as zero content")
	}
	if s.StatsSnapshot().DataReads != 0 {
		t.Fatal("reading the zero line must not touch DRAM")
	}
}

func TestLookupZeroContentPanics(t *testing.T) {
	s := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Lookup of zero content must panic")
		}
	}()
	s.Lookup(word.NewContent(s.LineWords()))
}

func TestReadReturnsContent(t *testing.T) {
	s := New(testConfig())
	c := leaf(s, []byte("read me back!!"))
	p, _ := s.Lookup(c)
	got := s.Read(p)
	if got != c {
		t.Fatalf("Read = %v, want %v", got, c)
	}
}

func TestReleaseFreesLine(t *testing.T) {
	s := New(testConfig())
	c := leaf(s, []byte("transient"))
	p, _ := s.Lookup(c)
	freed := s.Release(p)
	if len(freed) != 1 || freed[0].P != p {
		t.Fatalf("freed = %v, want [%#x]", freed, p)
	}
	if s.LiveLines() != 0 {
		t.Fatalf("live = %d", s.LiveLines())
	}
	// The slot must be reusable.
	p2, existed := s.Lookup(c)
	if existed {
		t.Fatal("freed line still found")
	}
	if p2 != p {
		t.Fatalf("slot not reused: %#x vs %#x", p2, p)
	}
}

func TestRecursiveDealloc(t *testing.T) {
	s := New(testConfig())
	// Build leaf <- parent <- grandparent, each holding the only ref
	// to its child (after we release our build-time refs).
	lp, _ := s.Lookup(leaf(s, []byte("leaf")))
	parent := word.NewContent(s.LineWords())
	parent.W[0], parent.T[0] = uint64(lp), word.TagPLID
	pp, _ := s.Lookup(parent) // store retains lp for the new line
	s.Release(lp)             // drop our build ref; parent now sole owner
	gp := word.NewContent(s.LineWords())
	gp.W[1], gp.T[1] = uint64(pp), word.TagPLID
	gpp, _ := s.Lookup(gp)
	s.Release(pp)
	if s.LiveLines() != 3 {
		t.Fatalf("live = %d, want 3", s.LiveLines())
	}
	freed := s.Release(gpp)
	if len(freed) != 3 {
		t.Fatalf("recursive dealloc freed %d lines, want 3", len(freed))
	}
	if s.LiveLines() != 0 {
		t.Fatalf("live = %d after recursive free", s.LiveLines())
	}
	if got := s.StatsSnapshot().DeallocOps; got != 3 {
		t.Fatalf("DeallocOps = %d, want 3", got)
	}
}

func TestSharedChildSurvives(t *testing.T) {
	s := New(testConfig())
	lp, _ := s.Lookup(leaf(s, []byte("shared leaf")))
	mk := func(slot int) word.PLID {
		c := word.NewContent(s.LineWords())
		c.W[slot], c.T[slot] = uint64(lp), word.TagPLID
		p, _ := s.Lookup(c)
		return p
	}
	a, b := mk(0), mk(1)
	s.Release(lp) // build ref gone; both parents still reference it
	s.Release(a)
	if s.RefCount(lp) == 0 {
		t.Fatal("shared leaf freed while parent b still references it")
	}
	s.Release(b)
	if s.RefCount(lp) != 0 {
		t.Fatal("leaf leaked after all parents freed")
	}
}

func TestReleaseUnderflowPanics(t *testing.T) {
	s := New(testConfig())
	p, _ := s.Lookup(leaf(s, []byte("x")))
	s.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic")
		}
	}()
	s.Release(p)
}

func TestLookupDRAMCost(t *testing.T) {
	// §3.1: a lookup that misses costs one signature read plus one
	// signature write; a lookup that hits costs a signature read plus
	// one data read (absent false signature matches).
	s := New(testConfig())
	c := leaf(s, []byte("cost model"))
	s.Lookup(c)
	st := s.StatsSnapshot()
	if st.SigReads != 1 || st.SigWrites != 1 {
		t.Fatalf("miss: sigR=%d sigW=%d, want 1/1", st.SigReads, st.SigWrites)
	}
	if st.LookupReads != 0 && st.FalseSig == 0 {
		t.Fatalf("miss should not read data lines, got %d", st.LookupReads)
	}
	before := st
	s.Lookup(c)
	after := s.StatsSnapshot()
	if got := after.SigReads - before.SigReads; got != 1 {
		t.Fatalf("hit: sig reads = %d, want 1", got)
	}
	if got := after.LookupReads - before.LookupReads; got < 1 {
		t.Fatalf("hit: candidate reads = %d, want >= 1", got)
	}
}

func TestBucketOverflow(t *testing.T) {
	// Tiny store: force one bucket to fill and spill to overflow.
	s := New(Config{LineBytes: 16, BucketBits: 4, DataWays: 1})
	rng := rand.New(rand.NewSource(7))
	plids := make(map[word.PLID]word.Content)
	for i := 0; i < 200; i++ {
		c := word.NewContent(2)
		c.W[0], c.W[1] = rng.Uint64(), rng.Uint64()
		p, existed := s.Lookup(c)
		if existed {
			t.Fatalf("random content %d deduped unexpectedly", i)
		}
		plids[p] = c
	}
	if s.StatsSnapshot().Overflows == 0 {
		t.Fatal("expected overflow allocations with 16 buckets x 1 way")
	}
	for p, c := range plids {
		if got := s.Read(p); got != c {
			t.Fatalf("overflow read mismatch at %#x", uint64(p))
		}
	}
	// Dedup must also work for overflow-resident lines.
	for p, c := range plids {
		p2, existed := s.Lookup(c)
		if !existed || p2 != p {
			t.Fatalf("overflow dedup failed: %#x vs %#x", p2, p)
		}
		break
	}
}

func TestOverflowFreeAndReuse(t *testing.T) {
	s := New(Config{LineBytes: 16, BucketBits: 4, DataWays: 1})
	rng := rand.New(rand.NewSource(9))
	var ps []word.PLID
	for i := 0; i < 64; i++ {
		c := word.NewContent(2)
		c.W[0], c.W[1] = rng.Uint64(), rng.Uint64()
		p, _ := s.Lookup(c)
		ps = append(ps, p)
	}
	for _, p := range ps {
		s.Release(p)
	}
	if s.LiveLines() != 0 {
		t.Fatalf("live = %d after releasing everything", s.LiveLines())
	}
	if err := s.CheckConsistency(nil); err != nil {
		t.Fatal(err)
	}
}

func TestWritebackCountsOnce(t *testing.T) {
	s := New(testConfig())
	p, _ := s.Lookup(leaf(s, []byte("dirty line")))
	s.Writeback(p)
	s.Writeback(p)
	if got := s.StatsSnapshot().DataWrites; got != 1 {
		t.Fatalf("DataWrites = %d, want 1 (lines are immutable)", got)
	}
}

func TestPLIDNeverZero(t *testing.T) {
	s := New(Config{LineBytes: 16, BucketBits: 4, DataWays: 12})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		c := word.NewContent(2)
		c.W[0] = rng.Uint64()
		if c.IsZero() {
			continue
		}
		p, _ := s.Lookup(c)
		if p == word.Zero {
			t.Fatal("allocated data line got the zero PLID")
		}
	}
}

func TestBucketOfMatchesHash(t *testing.T) {
	s := New(testConfig())
	c := leaf(s, []byte("bucket check"))
	p, _ := s.Lookup(c)
	b, ok := s.BucketOf(p)
	if !ok {
		t.Fatal("bucket line reported as overflow")
	}
	if b != s.BucketIndex(c) {
		t.Fatalf("BucketOf = %d, BucketIndex = %d", b, s.BucketIndex(c))
	}
}

func TestCheckConsistencyDetectsExternal(t *testing.T) {
	s := New(testConfig())
	p, _ := s.Lookup(leaf(s, []byte("held externally")))
	if err := s.CheckConsistency(map[word.PLID]uint64{p: 1}); err != nil {
		t.Fatalf("consistent store flagged: %v", err)
	}
	if err := s.CheckConsistency(nil); err == nil {
		t.Fatal("missing external ref not detected")
	}
}

func TestRefCountInvariantProperty(t *testing.T) {
	// Property: after an arbitrary interleaving of lookups and releases,
	// reference counts equal in-degree plus externally held refs.
	f := func(ops []uint16) bool {
		s := New(Config{LineBytes: 16, BucketBits: 6, DataWays: 12})
		external := make(map[word.PLID]uint64)
		var held []word.PLID
		for _, op := range ops {
			if op%3 == 0 && len(held) > 0 {
				i := int(op/3) % len(held)
				p := held[i]
				held = append(held[:i], held[i+1:]...)
				external[p]--
				if external[p] == 0 {
					delete(external, p)
				}
				s.Release(p)
				continue
			}
			c := word.NewContent(2)
			c.W[0] = uint64(op % 37) // small space forces dedup hits
			if op%5 == 0 && len(held) > 0 {
				// Interior line referencing a held PLID.
				c.W[1] = uint64(held[int(op)%len(held)])
				c.T[1] = word.TagPLID
			}
			if c.IsZero() {
				continue
			}
			p, _ := s.Lookup(c)
			held = append(held, p)
			external[p]++
		}
		return s.CheckConsistency(external) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueLineCount(t *testing.T) {
	a := make([]byte, 64)
	for i := range a {
		a[i] = byte(i)
	}
	if got := UniqueLineCount(16, a); got != 4 {
		t.Fatalf("distinct lines = %d, want 4", got)
	}
	if got := UniqueLineCount(16, a, a); got != 4 {
		t.Fatalf("duplicated stream = %d unique lines, want 4", got)
	}
	zeros := make([]byte, 64)
	if got := UniqueLineCount(16, zeros); got != 0 {
		t.Fatalf("zero lines counted: %d", got)
	}
}

func TestFootprintBytes(t *testing.T) {
	s := New(testConfig())
	s.Lookup(leaf(s, []byte("one")))
	s.Lookup(leaf(s, []byte("two")))
	if got := s.FootprintBytes(); got != 32 {
		t.Fatalf("footprint = %d, want 32", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LineBytes: 24, BucketBits: 8, DataWays: 12},
		{LineBytes: 16, BucketBits: 2, DataWays: 12},
		{LineBytes: 16, BucketBits: 8, DataWays: 0},
		{LineBytes: 16, BucketBits: 8, DataWays: 13},
	}
	for _, cfg := range bad {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Errorf("config %+v accepted", cfg)
		}()
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{SigReads: 1, SigWrites: 2, DataReads: 3, LookupReads: 8, DataWrites: 4,
		RCReads: 5, RCWrites: 6, DeallocOps: 7}
	if s.Total() != 36 {
		t.Fatalf("Total = %d, want 36", s.Total())
	}
	if s.LookupTraffic() != 11 {
		t.Fatalf("LookupTraffic = %d, want 11", s.LookupTraffic())
	}
	if s.RCTraffic() != 11 {
		t.Fatalf("RCTraffic = %d, want 11", s.RCTraffic())
	}
}

func TestLookupRowLocality(t *testing.T) {
	// §3.1: "DRAM commands for performing the lookup operation access
	// the same DRAM row". A miss does sig read + sig write in one row
	// (1 activation, 1 hit); a hit does sig read + candidate read(s)
	// in one row.
	s := New(testConfig())
	c := leaf(s, []byte("row locality"))
	s.Lookup(c)
	rs := s.RowStats()
	if rs.Activations != 1 {
		t.Fatalf("miss activations = %d, want 1", rs.Activations)
	}
	if rs.RowHits < 1 {
		t.Fatalf("miss row hits = %d, want >= 1 (sig write in open row)", rs.RowHits)
	}
	s.Lookup(c) // dedup hit
	rs2 := s.RowStats()
	// The second lookup may reuse the still-open row entirely.
	if rs2.Activations > rs.Activations+1 {
		t.Fatalf("hit opened %d extra rows", rs2.Activations-rs.Activations)
	}
	if rs2.RowHits <= rs.RowHits {
		t.Fatal("hit lookup recorded no open-row accesses")
	}
}

func TestRowHitRateHighUnderLookupTraffic(t *testing.T) {
	// Whole-protocol property: because every lookup clusters its DRAM
	// commands in one row, the aggregate open-row hit rate stays high
	// even for random content.
	s := New(testConfig())
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		c := word.NewContent(2)
		c.W[0], c.W[1] = rng.Uint64(), rng.Uint64()
		s.Lookup(c)
	}
	if hr := s.RowStats().HitRate(); hr < 0.4 {
		t.Fatalf("row-buffer hit rate %.2f; lookup protocol should cluster row accesses", hr)
	}
}
