package store

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/word"
)

// populate fills the store with n distinct lines (deterministic contents,
// so two stores populated identically assign identical PLIDs) and returns
// their PLIDs.
func populate(s *Store, n int) []word.PLID {
	ps := make([]word.PLID, n)
	for i := range ps {
		ps[i], _ = s.Lookup(leaf(s, []byte(fmt.Sprintf("line %06d padd", i))))
	}
	return ps
}

// TestReadBatchChargesLikeSerialRead pins the satellite requirement:
// ReadBatch must report exactly the same DRAM-access and row-buffer
// counters as N serial Reads — the batch saves lock round trips, never
// simulated memory traffic.
func TestReadBatchChargesLikeSerialRead(t *testing.T) {
	// Small buckets so some lines land in the overflow area and the
	// batch exercises the overflow shard too.
	cfg := Config{LineBytes: 16, BucketBits: 4, DataWays: 4}
	serial, batch := New(cfg), New(cfg)
	ps := populate(serial, 200)
	pb := populate(batch, 200)
	for i := range ps {
		if ps[i] != pb[i] {
			t.Fatalf("stores diverged at line %d: %#x vs %#x", i, ps[i], pb[i])
		}
	}
	if serial.StatsSnapshot().Overflows == 0 {
		t.Fatal("test config produced no overflow lines; shrink buckets")
	}
	sb, bb := serial.StatsSnapshot(), batch.StatsSnapshot()
	srb, brb := serial.RowStats(), batch.RowStats()

	// A shuffled request order with duplicates and zero PLIDs mixed in.
	rng := rand.New(rand.NewSource(7))
	var req []word.PLID
	for i := 0; i < 1000; i++ {
		switch rng.Intn(10) {
		case 0:
			req = append(req, word.Zero)
		default:
			req = append(req, ps[rng.Intn(len(ps))])
		}
	}

	wantC := make([]word.Content, len(req))
	for i, p := range req {
		wantC[i] = serial.Read(p)
	}
	gotC := batch.ReadBatch(req)
	for i := range req {
		if gotC[i] != wantC[i] {
			t.Fatalf("content mismatch at %d (PLID %#x)", i, uint64(req[i]))
		}
	}

	ds := diffStats(sb, serial.StatsSnapshot())
	db := diffStats(bb, batch.StatsSnapshot())
	if ds != db {
		t.Fatalf("stats diverged:\nserial %+v\nbatch  %+v", ds, db)
	}
	drs := diffRows(srb, serial.RowStats())
	drb := diffRows(brb, batch.RowStats())
	if drs != drb {
		t.Fatalf("row stats diverged:\nserial %+v\nbatch  %+v", drs, drb)
	}
}

func diffStats(before, after Stats) Stats {
	return Stats{
		SigReads:    after.SigReads - before.SigReads,
		SigWrites:   after.SigWrites - before.SigWrites,
		DataReads:   after.DataReads - before.DataReads,
		LookupReads: after.LookupReads - before.LookupReads,
		DataWrites:  after.DataWrites - before.DataWrites,
		RCReads:     after.RCReads - before.RCReads,
		RCWrites:    after.RCWrites - before.RCWrites,
		DeallocOps:  after.DeallocOps - before.DeallocOps,
		Lookups:     after.Lookups - before.Lookups,
		LookupHits:  after.LookupHits - before.LookupHits,
		Allocs:      after.Allocs - before.Allocs,
		Frees:       after.Frees - before.Frees,
		FalseSig:    after.FalseSig - before.FalseSig,
		Overflows:   after.Overflows - before.Overflows,
	}
}

func diffRows(before, after RowStats) RowStats {
	return RowStats{
		Activations: after.Activations - before.Activations,
		RowHits:     after.RowHits - before.RowHits,
	}
}

func TestReadBatchZeroAndEmpty(t *testing.T) {
	s := New(testConfig())
	if out := s.ReadBatch(nil); len(out) != 0 {
		t.Fatal("empty batch returned entries")
	}
	out := s.ReadBatch([]word.PLID{word.Zero, word.Zero})
	for _, c := range out {
		if !c.IsZero() {
			t.Fatal("zero PLID must read as zero content")
		}
	}
	if s.StatsSnapshot().DataReads != 0 {
		t.Fatal("zero-PLID batch touched DRAM")
	}
}

func TestReadBatchFreedPanics(t *testing.T) {
	s := New(testConfig())
	p, _ := s.Lookup(leaf(s, []byte("short-lived line")))
	s.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("ReadBatch of a freed PLID must panic")
		}
	}()
	s.ReadBatch([]word.PLID{p})
}
