package chunker

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pool"
	"repro/internal/segment"
	"repro/internal/word"
)

// Blob is one ingested byte stream: a chunk-index segment whose leaf
// words reference the chunk sub-DAGs by PLID, so the whole blob is one
// canonical DAG — two blobs with equal content have equal index roots,
// and near-duplicate blobs share every unchanged chunk sub-DAG. The
// Blob owns one reference on the index root (ReleaseBlob drops it); the
// index lines own the chunk references, so chunks live exactly as long
// as some index (or other DAG) points at them.
//
// Index layout, 2 header words then 2 words per chunk:
//
//	w0            total blob length in bytes        (TagRaw)
//	w1            chunk count                       (TagRaw)
//	w{2+2i}       chunk i root PLID                 (TagPLID; raw 0 for an all-zero chunk)
//	w{3+2i}       chunk i length in bytes           (TagRaw)
type Blob struct {
	Index  segment.Seg
	Len    uint64 // total content bytes
	Chunks int
}

// IndexWords returns the logical word length of the index segment.
func (b Blob) IndexWords() uint64 { return 2 + 2*uint64(b.Chunks) }

// IndexBytes returns the index segment's logical size in bytes — the
// length a map binding stores so the blob round-trips through hds.
func (b Blob) IndexBytes() uint64 { return 8 * b.IndexWords() }

func (b Blob) String() string {
	return fmt.Sprintf("chunker.Blob(len=%d chunks=%d root=%#x)", b.Len, b.Chunks, uint64(b.Index.Root))
}

// ReleaseBlob drops the blob's index-root reference; the chunk sub-DAGs
// are released recursively by the reference-count machinery once nothing
// else points at them.
func ReleaseBlob(m word.Mem, b Blob) { segment.ReleaseSeg(m, b.Index) }

// RetainBlob acquires an extra index-root reference (e.g. when a blob is
// handed to another owner).
func RetainBlob(m word.Mem, b Blob) { segment.RetainSeg(m, b.Index) }

// memoEntry is one remembered chunk→PLID association. Entries hold NO
// references (the exact discipline of the segment.Builder memo): the
// remembered root is revalidated with one RetainIfContent against the
// remembered root-line content before every reuse, so a stale entry —
// the chunk's last referencing blob was deleted and its lines freed —
// fails revalidation and falls back to the authoritative build. A live
// root pins its whole sub-DAG (lines hold references on their PLID
// children), so a successful revalidation proves the entire chunk DAG
// is still resident.
type memoEntry struct {
	root    word.PLID
	content word.Content // root line content, the revalidation witness
	height  int32
}

// Default memo bounds: entries bound the table, bytes bound the key
// storage (keys are chunk contents, the exact-match key that makes a
// hit unconditionally safe — no hash-collision risk, no verify read).
const (
	DefaultMemoEntries = 1 << 13
	DefaultMemoBytes   = 32 << 20
)

// IngestStats describes one Ingestor's traffic.
type IngestStats struct {
	Blobs       uint64 // IngestBytes calls
	Chunks      uint64 // chunks cut across all blobs
	BytesIn     uint64 // bytes presented
	MemoHits    uint64 // chunks resolved by one revalidating RC touch
	MemoStale   uint64 // memo entries that failed revalidation
	MemoInserts uint64 // entries recorded
	ChunkBuilds uint64 // chunks canonicalized through Builder waves
	BytesBuilt  uint64 // bytes those builds covered
}

// HitRate returns the fraction of chunks served by the memo.
func (s IngestStats) HitRate() float64 {
	if s.Chunks == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(s.Chunks)
}

// Ingestor turns byte streams into Blobs through the bulk wave
// pipeline: chunk sub-DAGs and the chunk index build through one shared
// segment.Builder (level-order batch canonicalization), and a warm
// chunk→PLID memo resolves every previously-seen chunk with a single
// revalidating reference-count touch — re-ingesting a near-duplicate
// document runs Builder waves only for the edit region's chunks.
//
// An Ingestor is NOT safe for concurrent use (same rule as
// segment.Builder): give each goroutine its own, or serialize access
// (kvstore's blob layer holds one behind a mutex).
type Ingestor struct {
	m    word.Mem
	caps word.MemCaps
	b    *segment.Builder
	cfg  Config

	memo        map[string]memoEntry
	memoEntries int
	memoByteCap int
	memoBytes   int
	stats       IngestStats
}

// NewIngestor creates an ingestor over m with the given chunking
// geometry (zero-value Config selects the defaults). Call Close when
// done. Memoization requires m to implement word.ContentRetainer
// (core.Machine does); otherwise every chunk builds through the
// Builder, which still dedups content in the store itself.
func NewIngestor(m word.Mem, cfg Config) *Ingestor {
	norm, _, _ := cfg.norm()
	return &Ingestor{
		m: m, caps: word.Caps(m), b: segment.NewBuilder(m, 0), cfg: norm,
		memoEntries: DefaultMemoEntries, memoByteCap: DefaultMemoBytes,
	}
}

// SetMemoLimit bounds the chunk memo: at most entries associations
// holding at most byteCap key bytes. entries <= 0 disables the memo
// entirely (every chunk builds; used by the accounting-equivalence
// pins); byteCap <= 0 keeps the current byte bound.
func (g *Ingestor) SetMemoLimit(entries, byteCap int) {
	g.memoEntries = entries
	if entries <= 0 {
		g.memo = nil
		g.memoBytes = 0
	}
	if byteCap > 0 {
		g.memoByteCap = byteCap
	}
}

// Config returns the normalized chunking geometry this ingestor cuts
// with.
func (g *Ingestor) Config() Config { return g.cfg }

// Stats returns the ingest telemetry.
func (g *Ingestor) Stats() IngestStats { return g.stats }

// MemoSize returns the number of memoized chunks (tests, telemetry).
func (g *Ingestor) MemoSize() int { return len(g.memo) }

// BuilderStats exposes the shared Builder's memo telemetry.
func (g *Ingestor) BuilderStats() segment.BuilderStats { return g.b.Stats() }

// Close drops the memo (entries hold no references, so nothing is
// released) and the Builder's scratch. The Ingestor is reusable
// afterwards with a cold memo.
func (g *Ingestor) Close() {
	g.memo = nil
	g.memoBytes = 0
	g.b.Close()
}

// IngestBytes builds the canonical Blob holding data. The caller owns
// one reference on the index root (ReleaseBlob to drop). Chunks already
// known to the memo cost one revalidating RC touch each; the rest build
// through the shared Builder's waves.
func (g *Ingestor) IngestBytes(data []byte) Blob {
	var sc pool.Scratch
	defer sc.Release()
	// Upper bound on index words: every chunk is at least MinSize bytes
	// except the last, so data cuts into at most len/MinSize + 1 chunks.
	bound := 2 + 2*(len(data)/g.cfg.MinSize+1)
	iw := poolU64.GetCap(&sc, bound)
	it := poolTags.GetCap(&sc, bound)
	iw = append(iw, uint64(len(data)), 0) // header; chunk count patched below
	it = append(it, word.TagRaw, word.TagRaw)
	chunks := 0
	for off := 0; off < len(data); {
		n := g.cfg.Cut(data[off:])
		s := g.chunkSeg(data[off : off+n])
		if s.Root != word.Zero {
			iw = append(iw, uint64(s.Root))
			it = append(it, word.TagPLID)
		} else {
			iw = append(iw, 0)
			it = append(it, word.TagRaw)
		}
		iw = append(iw, uint64(n))
		it = append(it, word.TagRaw)
		chunks++
		off += n
	}
	iw[1] = uint64(chunks)
	idx := g.b.BuildWords(iw, it)
	// The index lines took their own references on every chunk root
	// during the build; drop the ingest-local ones.
	for i := 0; i < chunks; i++ {
		if it[2+2*i] == word.TagPLID {
			g.m.Release(word.PLID(iw[2+2*i]))
		}
	}
	g.stats.Blobs++
	g.stats.BytesIn += uint64(len(data))
	return Blob{Index: idx, Len: uint64(len(data)), Chunks: chunks}
}

// chunkSeg resolves one chunk to an owned sub-DAG root: a memo hit
// revalidates-and-retains the remembered root (one RC touch, no lookup
// traffic, no Builder work), a miss builds the chunk through the shared
// Builder and remembers the result. The returned segment owns one
// root reference either way.
func (g *Ingestor) chunkSeg(chunk []byte) segment.Seg {
	g.stats.Chunks++
	if g.memoEntries > 0 {
		if e, ok := g.memo[string(chunk)]; ok {
			// An all-zero chunk memoizes the architectural zero line,
			// which needs no revalidation (Zero is eternal, refcount-free).
			if e.root == word.Zero || g.caps.RetainIfContent(e.root, e.content) {
				g.stats.MemoHits++
				return segment.Seg{Root: e.root, Height: int(e.height)}
			}
			g.stats.MemoStale++
			delete(g.memo, string(chunk))
			g.memoBytes -= len(chunk)
		}
	}
	g.stats.ChunkBuilds++
	g.stats.BytesBuilt += uint64(len(chunk))
	s := g.b.BuildBytes(chunk)
	g.memoAdd(chunk, s)
	return s
}

// memoAdd records chunk -> root without taking a reference. The root
// line's content is read back as the revalidation witness — right after
// the build it is LLC-resident, so the read costs a cache probe, not
// DRAM traffic. Bounds are hard stops, not evictions: a full memo keeps
// serving hits (ref-less entries never pin memory, so staying put is
// free) and simply stops learning new chunks.
func (g *Ingestor) memoAdd(chunk []byte, s segment.Seg) {
	if g.memoEntries <= 0 || !g.caps.CanRetainContent() {
		return
	}
	if len(g.memo) >= g.memoEntries || g.memoBytes+len(chunk) > g.memoByteCap {
		return
	}
	e := memoEntry{root: s.Root, height: int32(s.Height)}
	if s.Root != word.Zero {
		e.content = g.m.ReadLine(s.Root)
	}
	if g.memo == nil {
		g.memo = make(map[string]memoEntry)
	}
	g.memo[string(chunk)] = e
	g.memoBytes += len(chunk)
	g.stats.MemoInserts++
}

// BlobFromSeg reconstructs a Blob from a stored index segment (e.g. a
// value loaded back out of an hds map) by reading the header words. It
// reports false when the header cannot describe a blob held by this
// segment (chunk count beyond the segment's capacity).
func BlobFromSeg(m word.Mem, s segment.Seg) (Blob, bool) {
	hdr := segment.ReadWordsBulk(m, s, 0, 2)
	n, chunks := hdr[0], hdr[1]
	if 2+2*chunks > s.Capacity(m.LineWords()) {
		return Blob{}, false
	}
	return Blob{Index: s, Len: n, Chunks: int(chunks)}, true
}

// ReadBlob materializes the blob's content: one gather over the index,
// then one GatherRanges wave walk across every chunk sub-DAG — lines
// shared between chunks (and between blobs resident in the same
// machine) are fetched once per wave, not once per chunk. It reports
// false when the index is not a well-formed blob (chunk lengths that do
// not sum to the header length, or a chunk root that is not a PLID
// word) — possible only for a segment that was never built by an
// Ingestor.
func ReadBlob(m word.Mem, b Blob) ([]byte, bool) {
	arity := m.LineWords()
	nw := int(b.IndexWords())
	var sc pool.Scratch
	defer sc.Release()
	idxs := poolU64.Get(&sc, nw)
	for i := range idxs {
		idxs[i] = uint64(i)
	}
	vals := poolU64.Get(&sc, nw)
	tags := poolTags.Get(&sc, nw)
	segment.GatherWordsInto(m, b.Index, idxs, vals, tags)
	if vals[0] != b.Len || vals[1] != uint64(b.Chunks) {
		return nil, false
	}
	ranges := poolRanges.GetCap(&sc, b.Chunks)
	total := uint64(0)
	for i := 0; i < b.Chunks; i++ {
		root, clen := vals[2+2*i], vals[3+2*i]
		if total+clen < total || total+clen > b.Len {
			return nil, false
		}
		if root != 0 {
			if tags[2+2*i] != word.TagPLID {
				return nil, false
			}
			words := (clen + 7) / 8
			ranges = append(ranges, segment.Range{
				Seg: segment.Seg{Root: word.PLID(root), Height: segment.HeightFor(arity, words)},
				N:   words,
			})
		}
		total += clen
	}
	if total != b.Len {
		return nil, false
	}
	out := make([]byte, b.Len)
	chunkWords := segment.GatherRanges(m, ranges)
	ri := 0
	off := uint64(0)
	for i := 0; i < b.Chunks; i++ {
		root, clen := vals[2+2*i], vals[3+2*i]
		if root != 0 {
			ws := chunkWords[ri]
			ri++
			full := clen / 8
			for j := uint64(0); j < full; j++ {
				binary.LittleEndian.PutUint64(out[off+8*j:], ws[j])
			}
			for j := full * 8; j < clen; j++ {
				out[off+j] = byte(ws[j/8] >> (8 * (j % 8)))
			}
		}
		// An all-zero chunk reads as the zeros out already holds.
		off += clen
	}
	return out, true
}
