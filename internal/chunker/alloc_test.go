package chunker

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pool"
)

// Allocation pin for the steady-state ingest hot path: once the memo
// and the Builder/package pools are warm, re-ingesting a document pays
// zero amortized heap allocations — chunk resolution is a map probe
// plus a revalidating RC touch, the index build runs on the Builder's
// pooled waves, and all ingest-local scratch is borrowed from
// internal/pool. (Same regime as the segment wave pins: no -race, not
// parallel.)
func TestAllocIngestWarm(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation pins are meaningless under -race")
	}
	m := core.NewMachine(core.TestConfig())
	g := NewIngestor(m, Config{})
	defer g.Close()
	data := mkdoc(31, 64<<10)
	ingest := func() {
		// The blob's extra index-root reference is intentionally not
		// released inside the measured window: ReleaseBlob would free
		// nothing (the first ingest keeps the DAG live) and the pin is
		// about the ingest path alone.
		g.IngestBytes(data)
	}
	for i := 0; i < 5; i++ { // warm memo, Builder scratch, package pools
		ingest()
	}
	if avg := testing.AllocsPerRun(20, ingest); avg != 0 {
		t.Errorf("steady-state warm ingest allocates %.1f times per run, want 0", avg)
	}
	if hits := g.Stats().MemoHits; hits == 0 {
		t.Fatal("warm ingest never hit the memo — the pin measured the wrong path")
	}
}

// The raw chunking loop allocates nothing at any temperature.
func TestAllocSplit(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation pins are meaningless under -race")
	}
	var cfg Config
	data := mkdoc(37, 64<<10)
	var sink int
	split := func() {
		cfg.Split(data, func(c []byte) bool {
			sink += len(c)
			return true
		})
	}
	if avg := testing.AllocsPerRun(20, split); avg != 0 {
		t.Errorf("Split allocates %.1f times per run, want 0", avg)
	}
	_ = sink
}
