package chunker

import (
	"repro/internal/pool"
	"repro/internal/segment"
	"repro/internal/word"
)

// Package-level scratch pools for the ingest and reassembly paths.
// Everything borrowed here is released before the call returns (via a
// per-call pool.Scratch); results handed to callers are plain make and
// never alias pooled storage — the same ownership discipline as the
// segment wave engines (see internal/pool and DESIGN.md "Scratch
// pooling").
var (
	poolU64    = pool.NewSlice[uint64]("chunker.u64")
	poolTags   = pool.NewSlice[word.Tag]("chunker.tag")
	poolRanges = pool.NewSlice[segment.Range]("chunker.range")
)
