// Package chunker implements content-defined chunked ingest: a Gear
// rolling-hash chunker whose boundaries are a function of local byte
// content, mapped onto segment sub-DAGs so that near-duplicate byte
// streams share lines even when their content is shifted.
//
// The fixed-arity segment tree dedups aligned lines only: inserting one
// byte into a stream re-packs every word after it, so every line past
// the edit re-canonicalizes and the paper's Table 1 dedup wins vanish
// for byte-stream workloads. Content-defined boundaries restore them —
// a chunk's extent depends only on the bytes inside a small rolling
// window, so an insertion perturbs the chunks covering the edit region
// and the stream re-synchronizes at the next content-defined cutpoint.
// Unchanged chunks re-canonicalize to the same sub-DAG roots, and the
// Ingestor's chunk→PLID memo turns that re-canonicalization into a
// single revalidating reference-count touch per chunk.
package chunker

import "math/bits"

// Config sets the chunking geometry. Boundaries use normalized
// chunking (FastCDC-style): between MinSize and AvgSize the cutpoint
// judgement uses a stricter mask, past AvgSize a looser one, which
// concentrates chunk sizes around AvgSize without losing the
// content-defined property. The zero value selects the defaults.
type Config struct {
	// MinSize is the smallest chunk emitted (except for a short final
	// chunk). Cutpoint judgement starts here, so the rolling hash never
	// declares a boundary inside the minimum.
	MinSize int
	// AvgSize is the target mean chunk size; it is rounded up to a
	// power of two to derive the cutpoint masks.
	AvgSize int
	// MaxSize bounds a chunk: a stream with no qualifying cutpoint is
	// force-cut here (the only non-content-defined boundary).
	MaxSize int
}

// Default chunking geometry: 2 KB average chunks keep a chunk's
// sub-DAG at 32-128 leaf lines (16-64 B lines), deep enough to amortize
// the index entry, small enough that an edit region re-canonicalizes
// only a few KB.
const (
	DefaultMinSize = 512
	DefaultAvgSize = 2048
	DefaultMaxSize = 8192
)

// norm fills defaults and repairs degenerate geometry so every Config
// chunks deterministically. It returns the two cutpoint masks.
func (c Config) norm() (cfg Config, maskS, maskL uint64) {
	if c.MinSize <= 0 {
		c.MinSize = DefaultMinSize
	}
	if c.AvgSize <= 0 {
		c.AvgSize = DefaultAvgSize
	}
	if c.MaxSize <= 0 {
		c.MaxSize = DefaultMaxSize
	}
	if c.AvgSize < c.MinSize {
		c.AvgSize = c.MinSize
	}
	if c.MaxSize < c.AvgSize {
		c.MaxSize = c.AvgSize
	}
	// Mask bits from the (power-of-two rounded) average: the strict mask
	// uses two more bits than the average alone would (cut probability
	// 1/4 of nominal before the normalization point), the loose mask two
	// fewer (4x nominal after it) — FastCDC's normalization level 2.
	b := bits.Len(uint(c.AvgSize - 1))
	s, l := b+2, b-2
	if l < 1 {
		l = 1
	}
	if s > 63 {
		s = 63
	}
	return c, 1<<s - 1, 1<<l - 1
}

// gearTable is the byte→random-word substitution the rolling hash
// shifts through. Seeded splitmix64 so every build of the package chunks
// identically; a byte's influence on the hash dies after 64 shifts, so
// the effective boundary window is 64 bytes.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	x := uint64(0x9e3779b97f4a7c15)
	for i := range t {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// Cut returns the length of the first chunk of data: the first
// content-defined cutpoint after MinSize, the force-cut at MaxSize, or
// len(data) when the remainder is short. Cut(data) > 0 whenever
// len(data) > 0, and depends only on the bytes within the returned
// extent — the property that makes chunk identity shift-surviving.
func (c Config) Cut(data []byte) int {
	cfg, maskS, maskL := c.norm()
	n := len(data)
	if n <= cfg.MinSize {
		return n
	}
	if n > cfg.MaxSize {
		n = cfg.MaxSize
	}
	normPoint := cfg.AvgSize
	if normPoint > n {
		normPoint = n
	}
	var h uint64
	// The hash warms up inside the minimum region (judgement-free), so
	// the first eligible position already carries a full 64-byte window.
	warm := cfg.MinSize - 64
	if warm < 0 {
		warm = 0
	}
	for i := warm; i < cfg.MinSize; i++ {
		h = h<<1 + gearTable[data[i]]
	}
	for i := cfg.MinSize; i < normPoint; i++ {
		h = h<<1 + gearTable[data[i]]
		if h&maskS == 0 {
			return i + 1
		}
	}
	for i := normPoint; i < n; i++ {
		h = h<<1 + gearTable[data[i]]
		if h&maskL == 0 {
			return i + 1
		}
	}
	return n
}

// Split calls fn for each chunk of data in order; chunks concatenate
// exactly to data. fn returning false stops the walk. Split allocates
// nothing — fn receives subslices of data.
func (c Config) Split(data []byte, fn func(chunk []byte) bool) {
	for len(data) > 0 {
		n := c.Cut(data)
		if !fn(data[:n]) {
			return
		}
		data = data[n:]
	}
}
