package chunker

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/segment"
	"repro/internal/word"
)

// mkdoc generates a deterministic text-like document: sentences drawn
// from a small vocabulary so lines repeat (the regime HICAMP dedup is
// built for) but with enough entropy that chunk boundaries are spread
// realistically.
func mkdoc(seed int64, n int) []byte {
	words := []string{
		"line", "content", "dedup", "segment", "canonical", "wave",
		"snapshot", "merge", "iterator", "refcount", "chunk", "memo",
	}
	rng := rand.New(rand.NewSource(seed))
	var b bytes.Buffer
	for b.Len() < n {
		k := 4 + rng.Intn(8)
		for i := 0; i < k; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(words[rng.Intn(len(words))])
		}
		b.WriteString(".\n")
	}
	return b.Bytes()[:n]
}

func insertAt(doc []byte, off int, ins []byte) []byte {
	out := make([]byte, 0, len(doc)+len(ins))
	out = append(out, doc[:off]...)
	out = append(out, ins...)
	return append(out, doc[off:]...)
}

// cutpoints returns the chunk end offsets of data under cfg.
func cutpoints(cfg Config, data []byte) []int {
	var cuts []int
	off := 0
	cfg.Split(data, func(c []byte) bool {
		off += len(c)
		cuts = append(cuts, off)
		return true
	})
	return cuts
}

func TestCutBounds(t *testing.T) {
	cfgs := []Config{
		{},
		{MinSize: 64, AvgSize: 256, MaxSize: 1024},
		{MinSize: 100, AvgSize: 300, MaxSize: 500},
		{MinSize: 1, AvgSize: 1, MaxSize: 1}, // degenerate, must still terminate
	}
	for ci, raw := range cfgs {
		cfg, _, _ := raw.norm()
		data := mkdoc(int64(ci+1), 96<<10)
		var reassembled []byte
		nchunks := 0
		cfg.Split(data, func(c []byte) bool {
			nchunks++
			if len(c) > cfg.MaxSize {
				t.Fatalf("cfg %d: chunk of %d bytes exceeds MaxSize %d", ci, len(c), cfg.MaxSize)
			}
			reassembled = append(reassembled, c...)
			if len(reassembled) < len(data) && len(c) < cfg.MinSize {
				t.Fatalf("cfg %d: non-final chunk of %d bytes under MinSize %d", ci, len(c), cfg.MinSize)
			}
			return true
		})
		if !bytes.Equal(reassembled, data) {
			t.Fatalf("cfg %d: chunks do not concatenate to the input", ci)
		}
		if nchunks < 2 && cfg.MaxSize < len(data) {
			t.Fatalf("cfg %d: only %d chunks for %d bytes", ci, nchunks, len(data))
		}
	}
}

// TestCutExtentLocal pins the property everything else rests on: the cut
// position depends only on the bytes inside the returned extent, so
// changing (or removing) anything after a cutpoint cannot move it.
func TestCutExtentLocal(t *testing.T) {
	var cfg Config
	data := mkdoc(7, 64<<10)
	rng := rand.New(rand.NewSource(8))
	for off := 0; off < len(data)-DefaultMaxSize; {
		n := cfg.Cut(data[off:])
		// Same prefix, arbitrary different suffix: cut must not move.
		junk := make([]byte, 1024)
		rng.Read(junk)
		alt := append(append([]byte{}, data[off:off+n]...), junk...)
		if got := cfg.Cut(alt); got != n {
			t.Fatalf("cut at %d moved from %d to %d when the suffix changed", off, n, got)
		}
		// Truncating exactly at the cut keeps it as the final chunk.
		if got := cfg.Cut(data[off : off+n]); got != n {
			t.Fatalf("cut at %d: truncated input cut %d, want %d", off, got, n)
		}
		off += n
	}
}

// TestBoundaryStability is the shift-survival property: a single
// insertion near the front perturbs only the chunks covering the edit
// window, and the boundary stream re-synchronizes — every cutpoint past
// a bounded window reappears shifted by exactly the insertion length.
func TestBoundaryStability(t *testing.T) {
	var cfg Config
	cfgN, _, _ := cfg.norm()
	doc := mkdoc(21, 256<<10)
	ins := []byte("<!-- one inserted comment -->")
	const editOff = 5000
	edited := insertAt(doc, editOff, ins)

	orig := cutpoints(cfg, doc)
	got := cutpoints(cfg, edited)

	// The window where chunking may differ: the chunk containing the
	// edit plus re-synchronization slack. 4*MaxSize is a deliberately
	// loose pin — in practice resync happens at the next cutpoint.
	window := editOff + 4*cfgN.MaxSize
	var wantTail, gotTail []int
	for _, c := range orig {
		if c > window {
			wantTail = append(wantTail, c+len(ins))
		}
	}
	for _, c := range got {
		if c > window+len(ins) {
			gotTail = append(gotTail, c)
		}
	}
	if len(wantTail) == 0 {
		t.Fatal("test document too small to exercise resynchronization")
	}
	if len(wantTail) != len(gotTail) {
		t.Fatalf("tail cutpoint count diverged: %d vs %d", len(wantTail), len(gotTail))
	}
	for i := range wantTail {
		if wantTail[i] != gotTail[i] {
			t.Fatalf("cutpoint %d: %d != %d+%d — boundaries did not resynchronize",
				i, gotTail[i], wantTail[i]-len(ins), len(ins))
		}
	}
}

func TestIngestReadBlobRoundTrip(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	g := NewIngestor(m, Config{MinSize: 64, AvgSize: 256, MaxSize: 1024})
	defer g.Close()
	sizes := []int{0, 1, 7, 8, 63, 64, 65, 256, 1024, 5000, 40000}
	for _, n := range sizes {
		data := mkdoc(int64(n)+1, n)
		b := g.IngestBytes(data)
		if b.Len != uint64(n) {
			t.Fatalf("n=%d: blob len %d", n, b.Len)
		}
		got, ok := ReadBlob(m, b)
		if !ok || !bytes.Equal(got, data) {
			t.Fatalf("n=%d: round trip failed (ok=%v, %d bytes back)", n, ok, len(got))
		}
		// Header-only reconstruction (the kvstore load path) agrees.
		b2, ok := BlobFromSeg(m, b.Index)
		if !ok || b2.Len != b.Len || b2.Chunks != b.Chunks {
			t.Fatalf("n=%d: BlobFromSeg => %+v ok=%v, want %+v", n, b2, ok, b)
		}
		ReleaseBlob(m, b)
	}
	g.Close()
	if live := m.LiveLines(); live != 0 {
		t.Fatalf("%d lines leaked after releasing all blobs", live)
	}
}

func TestIngestAllZero(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	g := NewIngestor(m, Config{})
	defer g.Close()
	data := make([]byte, 3*DefaultMaxSize+17)
	b := g.IngestBytes(data)
	got, ok := ReadBlob(m, b)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("all-zero round trip failed (ok=%v)", ok)
	}
	ReleaseBlob(m, b)
}

// TestIngestCanonical: equal content ingests to the equal index root, on
// the same machine and across independently warmed ingestors.
func TestIngestCanonical(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	data := mkdoc(3, 50<<10)
	g1 := NewIngestor(m, Config{})
	g2 := NewIngestor(m, Config{})
	defer g1.Close()
	defer g2.Close()
	b1 := g1.IngestBytes(data)
	b2 := g2.IngestBytes(data)
	b3 := g1.IngestBytes(data) // warm path must agree with its own cold path
	if b1.Index != b2.Index || b1.Index != b3.Index {
		t.Fatalf("equal content gave roots %#x / %#x / %#x", b1.Index.Root, b2.Index.Root, b3.Index.Root)
	}
	ReleaseBlob(m, b1)
	ReleaseBlob(m, b2)
	ReleaseBlob(m, b3)
}

// TestShiftedDedupFootprint is the Table-1 extension this PR exists for:
// after a 16-byte insertion, chunked ingest adds only the edit region's
// lines, while the aligned baseline re-canonicalizes everything past the
// edit. The delta footprints must differ by well over the 2x acceptance
// bar.
func TestShiftedDedupFootprint(t *testing.T) {
	doc := mkdoc(11, 256<<10)
	edited := insertAt(doc, 700, []byte("[sixteen bytes!]"))

	// Chunked: ingest both versions, count incremental unique lines.
	mc := core.NewMachine(core.TestConfig())
	g := NewIngestor(mc, Config{})
	defer g.Close()
	g.IngestBytes(doc)
	base := mc.LiveLines()
	g.IngestBytes(edited)
	chunkedDelta := mc.LiveLines() - base

	// Aligned BuildBytes baseline on a twin machine.
	ma := core.NewMachine(core.TestConfig())
	segment.BuildBytes(ma, doc)
	abase := ma.LiveLines()
	segment.BuildBytes(ma, edited)
	alignedDelta := ma.LiveLines() - abase

	if chunkedDelta*2 > alignedDelta {
		t.Fatalf("shifted ingest: chunked added %d lines, aligned %d — want >=2x win",
			chunkedDelta, alignedDelta)
	}
	t.Logf("shifted-insert footprint delta: chunked %d lines, aligned %d lines (%.1fx)",
		chunkedDelta, alignedDelta, float64(alignedDelta)/float64(chunkedDelta))
}

// TestWarmMemoReingest pins the memo's perf claim on a twin machine
// pair: re-ingesting a near-duplicate with a warm memo charges
// measurably less simulated DRAM than the same ingest on an identical
// machine with a cold memo.
func TestWarmMemoReingest(t *testing.T) {
	doc := mkdoc(13, 128<<10)
	edited := insertAt(doc, 40<<10, []byte("shifted by an inserted clause"))

	ma, mb := ampleMachine(64), ampleMachine(64)
	warm := NewIngestor(ma, Config{})
	defer warm.Close()
	warm.IngestBytes(doc)
	ma.FlushCache()

	coldPre := NewIngestor(mb, Config{})
	coldPre.IngestBytes(doc) // identical machine history, then lose the memo
	coldPre.Close()
	cold := NewIngestor(mb, Config{})
	defer cold.Close()
	mb.FlushCache()

	warmDram := dram(ma, func() { warm.IngestBytes(edited) })
	coldDram := dram(mb, func() { cold.IngestBytes(edited) })

	st := warm.Stats()
	if st.MemoHits == 0 {
		t.Fatal("warm re-ingest produced no memo hits")
	}
	if st.MemoHits+st.ChunkBuilds != st.Chunks {
		t.Fatalf("stats do not add up: %+v", st)
	}
	if warmDram >= coldDram {
		t.Fatalf("warm re-ingest charged %d DRAM accesses, cold %d — memo must be measurably cheaper",
			warmDram, coldDram)
	}
	t.Logf("near-duplicate re-ingest DRAM: warm %d, cold %d (%.2fx), memo hit rate %.0f%%",
		warmDram, coldDram, float64(coldDram)/float64(warmDram), 100*st.HitRate())
}

// TestMemoStaleRevalidation: deleting every blob that pins a chunk frees
// its lines; the ref-less memo entry must detect that via revalidation
// and rebuild rather than resurrect a dangling PLID.
func TestMemoStaleRevalidation(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	g := NewIngestor(m, Config{})
	defer g.Close()
	data := mkdoc(17, 32<<10)
	b := g.IngestBytes(data)
	ReleaseBlob(m, b)
	if live := m.LiveLines(); live != 0 {
		t.Fatalf("%d lines live after the only blob was released", live)
	}
	b2 := g.IngestBytes(data)
	st := g.Stats()
	if st.MemoStale == 0 {
		t.Fatalf("no stale memo entries detected after frees: %+v", st)
	}
	got, ok := ReadBlob(m, b2)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("rebuild after stale memo does not round-trip")
	}
	ReleaseBlob(m, b2)
}

func TestMemoDisabled(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	g := NewIngestor(m, Config{})
	defer g.Close()
	g.SetMemoLimit(0, 0)
	data := mkdoc(19, 16<<10)
	b1 := g.IngestBytes(data)
	b2 := g.IngestBytes(data)
	st := g.Stats()
	if st.MemoHits != 0 || st.MemoInserts != 0 || g.MemoSize() != 0 {
		t.Fatalf("disabled memo still active: %+v size=%d", st, g.MemoSize())
	}
	if b1.Index != b2.Index {
		t.Fatal("canonical roots diverged without the memo")
	}
	ReleaseBlob(m, b1)
	ReleaseBlob(m, b2)
}

// ampleMachine / dram: the twin-machine accounting discipline (see
// segment/write_batch_test.go) — ample LLC so capacity misses never
// perturb the comparison, flush after the measured window so deferred
// writebacks are charged.
func ampleMachine(lineBytes int) *core.Machine {
	return core.NewMachine(core.Config{
		LineBytes: lineBytes, BucketBits: 16, DataWays: 12,
		CacheLines: 1 << 15, CacheWays: 8,
	})
}

func dram(m *core.Machine, fn func()) uint64 {
	m.ResetStats()
	fn()
	m.FlushCache()
	return m.Stats().Store.Total()
}

func packLE(b []byte) []uint64 {
	ws := make([]uint64, (len(b)+7)/8)
	for i := 0; i < len(b)/8; i++ {
		ws[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	for k := len(b) / 8 * 8; k < len(b); k++ {
		ws[k/8] |= uint64(b[k]) << (8 * (k % 8))
	}
	return ws
}

// ingestSerial is the line-at-a-time reference replay of IngestBytes:
// the same chunking, each chunk built via BuildWordsSerial, the index
// likewise — the semantic and accounting baseline.
func ingestSerial(m word.Mem, cfg Config, data []byte) Blob {
	norm, _, _ := cfg.norm()
	iw := []uint64{uint64(len(data)), 0}
	it := []word.Tag{word.TagRaw, word.TagRaw}
	var roots []segment.Seg
	norm.Split(data, func(c []byte) bool {
		s := segment.BuildWordsSerial(m, packLE(c), nil)
		roots = append(roots, s)
		if s.Root != word.Zero {
			iw = append(iw, uint64(s.Root))
			it = append(it, word.TagPLID)
		} else {
			iw = append(iw, 0)
			it = append(it, word.TagRaw)
		}
		iw = append(iw, uint64(len(c)))
		it = append(it, word.TagRaw)
		return true
	})
	iw[1] = uint64(len(roots))
	idx := segment.BuildWordsSerial(m, iw, it)
	for _, s := range roots {
		segment.ReleaseSeg(m, s)
	}
	return Blob{Index: idx, Len: uint64(len(data)), Chunks: len(roots)}
}

// TestIngestAccountingPin is the twin-machine pin: chunked wave ingest
// (chunk memo disabled, so both paths do the same authoritative lookups)
// must not charge more simulated DRAM than its serial replay, and a
// third identical machine with the memo enabled must not charge more
// than the memo-disabled wave.
func TestIngestAccountingPin(t *testing.T) {
	data := mkdoc(29, 96<<10)
	ma, mb, mc := ampleMachine(64), ampleMachine(64), ampleMachine(64)

	gNoMemo := NewIngestor(ma, Config{})
	defer gNoMemo.Close()
	gNoMemo.SetMemoLimit(0, 0)
	var waveBlob Blob
	waveDram := dram(ma, func() { waveBlob = gNoMemo.IngestBytes(data) })

	var serialBlob Blob
	serialDram := dram(mb, func() { serialBlob = ingestSerial(mb, Config{}, data) })

	gMemo := NewIngestor(mc, Config{})
	defer gMemo.Close()
	memoDram := dram(mc, func() { gMemo.IngestBytes(data) })

	if waveBlob.Index != serialBlob.Index || waveBlob.Chunks != serialBlob.Chunks {
		t.Fatalf("wave %+v != serial %+v on twin machines", waveBlob, serialBlob)
	}
	if waveDram > serialDram {
		t.Fatalf("wave ingest charged %d DRAM accesses, serial replay %d — wave must not cost more",
			waveDram, serialDram)
	}
	if memoDram > waveDram {
		t.Fatalf("memo-enabled ingest charged %d DRAM accesses, memo-disabled %d — the memo must never add traffic",
			memoDram, waveDram)
	}
	t.Logf("ingest DRAM: wave %d, serial %d, wave+memo %d", waveDram, serialDram, memoDram)
}
