package chunker

import (
	"testing"

	"repro/internal/core"
)

func BenchmarkChunkCut(b *testing.B) {
	var cfg Config
	data := mkdoc(41, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		cfg.Split(data, func(c []byte) bool { sink += len(c); return true })
	}
	_ = sink
}

// Cold: every chunk canonicalizes through Builder waves.
func BenchmarkChunkedIngestCold(b *testing.B) {
	data := mkdoc(43, 256<<10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := core.NewMachine(core.TestConfig())
		g := NewIngestor(m, Config{})
		b.StartTimer()
		g.IngestBytes(data)
		b.StopTimer()
		g.Close()
		b.StartTimer()
	}
}

// Warm: the memo resolves every chunk with one revalidating RC touch.
func BenchmarkChunkedIngestWarm(b *testing.B) {
	data := mkdoc(43, 256<<10)
	m := core.NewMachine(core.TestConfig())
	g := NewIngestor(m, Config{})
	defer g.Close()
	g.IngestBytes(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.IngestBytes(data)
	}
}

func BenchmarkChunkedReadBlob(b *testing.B) {
	data := mkdoc(47, 256<<10)
	m := core.NewMachine(core.TestConfig())
	g := NewIngestor(m, Config{})
	defer g.Close()
	blob := g.IngestBytes(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ReadBlob(m, blob); !ok {
			b.Fatal("read failed")
		}
	}
}
