package chunker

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// FuzzChunker drives the whole pipeline with adversarial geometry and
// content: chunks must concatenate exactly to the input, respect the
// normalized size bounds, cut deterministically, stay extent-local
// (a boundary never depends on bytes past it), and — for inputs small
// enough to afford a machine — survive the full ingest/read round trip.
func FuzzChunker(f *testing.F) {
	f.Add([]byte(""), 0, 0, 0)
	f.Add([]byte("hello world"), 4, 16, 64)
	f.Add(mkdoc(1, 4096), 64, 256, 1024)
	f.Add(make([]byte, 3000), 100, 300, 500)
	f.Add(bytes.Repeat([]byte{0xaa, 0x55}, 2000), 1, 2, 3)
	f.Fuzz(func(t *testing.T, data []byte, minS, avgS, maxS int) {
		if minS > 1<<16 || avgS > 1<<16 || maxS > 1<<16 || len(data) > 1<<20 {
			t.Skip("geometry/input out of the interesting range")
		}
		raw := Config{MinSize: minS, AvgSize: avgS, MaxSize: maxS}
		cfg, _, _ := raw.norm()

		var cat []byte
		nchunks := 0
		raw.Split(data, func(c []byte) bool {
			nchunks++
			if len(c) == 0 {
				t.Fatal("empty chunk")
			}
			if len(c) > cfg.MaxSize {
				t.Fatalf("chunk %d bytes > MaxSize %d", len(c), cfg.MaxSize)
			}
			cat = append(cat, c...)
			if len(cat) < len(data) && len(c) < cfg.MinSize {
				t.Fatalf("non-final chunk %d bytes < MinSize %d", len(c), cfg.MinSize)
			}
			// Extent-locality: the cut must reproduce on the extent alone.
			if got := raw.Cut(c); got != len(c) {
				t.Fatalf("chunk of %d bytes re-cuts at %d", len(c), got)
			}
			return true
		})
		if !bytes.Equal(cat, data) {
			t.Fatal("chunks do not concatenate to the input")
		}

		if len(data) <= 8192 {
			m := core.NewMachine(core.TestConfig())
			g := NewIngestor(m, raw)
			b := g.IngestBytes(data)
			if b.Chunks != nchunks || b.Len != uint64(len(data)) {
				t.Fatalf("blob %+v, want %d chunks / %d bytes", b, nchunks, len(data))
			}
			got, ok := ReadBlob(m, b)
			if !ok || !bytes.Equal(got, data) {
				t.Fatalf("ingest round trip failed (ok=%v)", ok)
			}
			ReleaseBlob(m, b)
			g.Close()
			if live := m.LiveLines(); live != 0 {
				t.Fatalf("%d lines leaked", live)
			}
		}
	})
}
