// Package iterreg implements HICAMP iterator registers (paper §3.3,
// Figure 5): the architectural register that holds a segment reference
// plus the cached path of DAG lines to its current position. Sequential
// and nearby accesses reuse the cached path and load only the lines below
// the divergence point; stores buffer in the register's update overlay
// and convert to content-unique lines in one wave commit
// (segment.WriteBatch), published with CAS or merge-update on the
// virtual segment map.
package iterreg

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"repro/internal/merge"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// Stats counts iterator register activity.
type Stats struct {
	Seeks       uint64 // positioning operations
	LineLoads   uint64 // DAG lines loaded into the register
	PathReuses  uint64 // levels reused from the cached path
	Scans       uint64 // streaming Scan calls
	ScanLines   uint64 // lines the streaming scans fetched
	Commits     uint64 // publishes (and detached conversions) that succeeded
	CommitFails uint64 // publishes whose CAS/merge lost or conflicted
	Aborts      uint64
	Wave        segment.WriteStats // accumulated wave-commit counters
}

// Iterator is one iterator register. It is not safe for concurrent use —
// a register belongs to one hardware thread; spawn one per goroutine.
type Iterator struct {
	m       word.Mem
	sm      *segmap.Map // nil for detached (segment-only) iterators
	vsid    word.VSID
	entry   segmap.Entry // snapshot; root reference owned when sm != nil
	writes  []segment.Update
	writeAt map[uint64]int   // idx -> position in writes (last-wins overlay)
	sorted  []segment.Update // sortedWrites scratch, reused across overlay reads
	stack   []level
	pows    []uint64 // memoized arity powers: pows[d] = arity^d
	Stats   Stats
}

// level caches one step of the path: the expanded children of the node at
// this depth and which child the path descends into.
type level struct {
	kids  []segment.Edge
	child int
}

// NewSegmentIterator returns a detached iterator over seg. The caller
// must keep seg alive for the iterator's lifetime; commits return the new
// segment instead of publishing it.
func NewSegmentIterator(m word.Mem, seg segment.Seg) *Iterator {
	return &Iterator{m: m, entry: segmap.Entry{Seg: seg}}
}

// Open loads an iterator register with the segment named by vsid,
// snapshotting its current version (§3.3 "upon initialization ... loads
// and caches the path"). Close releases the snapshot.
func Open(m word.Mem, sm *segmap.Map, vsid word.VSID) (*Iterator, error) {
	e, err := sm.Load(vsid)
	if err != nil {
		return nil, err
	}
	return &Iterator{m: m, sm: sm, vsid: vsid, entry: e}, nil
}

// Seg returns the snapshot the iterator reads (pending writes excluded).
func (it *Iterator) Seg() segment.Seg { return it.entry.Seg }

// Entry returns the snapshotted segment-map entry.
func (it *Iterator) Entry() segmap.Entry { return it.entry }

// Size returns the snapshotted logical byte size.
func (it *Iterator) Size() uint64 { return it.entry.Size }

// Close releases the snapshot and discards any pending writes.
func (it *Iterator) Close() {
	it.discardWrites()
	if it.sm != nil {
		segment.ReleaseSeg(it.m, it.entry.Seg)
	}
	it.stack = nil
}

// Load returns the tagged word at idx, reading through pending writes.
// The write buffer overlays the snapshot, so unwritten indexes still go
// through the cached path — buffering a store does not invalidate it.
func (it *Iterator) Load(idx uint64) (uint64, word.Tag) {
	if j, ok := it.writeAt[idx]; ok {
		return it.writes[j].W, it.writes[j].T
	}
	return it.seek(idx)
}

// seek positions the cached path at idx and returns the word there.
func (it *Iterator) seek(idx uint64) (uint64, word.Tag) {
	it.Stats.Seeks++
	arity := it.m.LineWords()
	seg := it.entry.Seg
	if idx >= seg.Capacity(arity) {
		return 0, word.TagRaw
	}
	// Child index at each depth, top first; the final entry is the word
	// index within the leaf. Shallow DAGs (every real workload) decode
	// into a stack-resident buffer.
	h := seg.Height
	var idxBuf [24]int
	var idxs []int
	if h+1 <= len(idxBuf) {
		idxs = idxBuf[:h+1]
	} else {
		idxs = make([]int, h+1)
	}
	pows := it.powers(h)
	rem := idx
	for d := 0; d <= h; d++ {
		sub := pows[h-d]
		idxs[d] = int(rem / sub)
		rem %= sub
	}
	if len(it.stack) == 0 {
		root := segment.PLIDEdge(seg.Root)
		it.pushLevel(root, h)
	}
	// Reuse the longest valid prefix of the cached path: entry d+1 stays
	// valid while descent d still takes the same child.
	keep := 0
	for keep < len(it.stack)-1 && keep < h && it.stack[keep].child == idxs[keep] {
		keep++
	}
	it.Stats.PathReuses += uint64(keep)
	it.stack = it.stack[:keep+1]
	for d := keep; d < h; d++ {
		it.stack[d].child = idxs[d]
		childEdge := it.stack[d].kids[idxs[d]]
		it.pushLevel(childEdge, h-d-1)
	}
	leaf := &it.stack[h]
	leaf.child = idxs[h]
	e := leaf.kids[idxs[h]]
	return e.W, e.T
}

// pushLevel expands e one step and pushes it onto the cached path,
// reusing the kids buffer of the popped level that previously occupied
// the slot — seeks churn the lower path constantly, and reallocating an
// arity-sized slice per step dominates the register's cost.
func (it *Iterator) pushLevel(e segment.Edge, lvl int) {
	if e.T == word.TagPLID && e.W != 0 {
		it.Stats.LineLoads++
	}
	if len(it.stack) < cap(it.stack) {
		it.stack = it.stack[:len(it.stack)+1]
	} else {
		it.stack = append(it.stack, level{})
	}
	top := &it.stack[len(it.stack)-1]
	top.kids = segment.ChildrenInto(it.m, e, lvl, top.kids)
	top.child = 0
}

// NextNonZero returns the first index at or after from holding a non-zero
// word (value or tag), skipping elided zero subtrees — the §3.3 register
// increment that "moves to the next non-null element". ok is false at the
// end of the segment.
func (it *Iterator) NextNonZero(from uint64) (uint64, bool) {
	if len(it.writes) == 0 {
		return segment.NextNonZero(it.m, it.entry.Seg, from)
	}
	// Merge the snapshot's next hit with the buffered overlay: the first
	// non-zero buffered update at or after from competes with the first
	// snapshot hit the overlay does not zero out.
	over := it.sortedWrites()
	pos := sort.Search(len(over), func(i int) bool { return over[i].Idx >= from })
	oIdx, oOK := uint64(0), false
	for i := pos; i < len(over); i++ {
		if over[i].W != 0 || over[i].T != word.TagRaw {
			oIdx, oOK = over[i].Idx, true
			break
		}
	}
	n, ok := segment.NextNonZero(it.m, it.entry.Seg, from)
	for ok {
		if j, hit := it.writeAt[n]; hit && it.writes[j].W == 0 && it.writes[j].T == word.TagRaw {
			n, ok = segment.NextNonZero(it.m, it.entry.Seg, n+1)
			continue
		}
		break
	}
	switch {
	case ok && (!oOK || n < oIdx):
		return n, true
	case oOK:
		return oIdx, true
	}
	return 0, false
}

// Scan streams every non-zero tagged word of the snapshot at index >=
// from to fn in ascending index order — the same elements a
// NextNonZero/Load loop visits, without the per-element root-to-leaf
// re-descent: the frontier expands in level-order waves through the
// batch read path (segment.ScanWords). fn returning false stops the
// scan; the bounded lookahead window caps how far past the stop the
// scanner fetched. With pending writes the sorted write buffer is
// interleaved with the snapshot stream — buffered values shadow the
// snapshot's at equal indexes, zero writes suppress, and buffered
// indexes past the snapshot's last element are emitted as a tail.
func (it *Iterator) Scan(from uint64, fn func(idx uint64, w uint64, t word.Tag) bool) segment.ScanStats {
	it.Stats.Scans++
	if len(it.writes) == 0 {
		st := segment.ScanWords(it.m, it.entry.Seg, from, fn)
		it.Stats.ScanLines += st.LineReads
		return st
	}
	over := it.sortedWrites()
	pos := sort.Search(len(over), func(i int) bool { return over[i].Idx >= from })
	emitted := uint64(0)
	stopped := false
	emit := func(idx, w uint64, t word.Tag) bool {
		emitted++
		if !fn(idx, w, t) {
			stopped = true
			return false
		}
		return true
	}
	// Drains the overlay up to (exclusive) bound, skipping zero writes.
	drain := func(bound uint64) bool {
		for pos < len(over) && over[pos].Idx < bound {
			u := over[pos]
			pos++
			if u.W == 0 && u.T == word.TagRaw {
				continue
			}
			if !emit(u.Idx, u.W, u.T) {
				return false
			}
		}
		return true
	}
	st := segment.ScanWords(it.m, it.entry.Seg, from, func(idx uint64, w uint64, t word.Tag) bool {
		if !drain(idx) {
			return false
		}
		if pos < len(over) && over[pos].Idx == idx {
			u := over[pos]
			pos++
			if u.W == 0 && u.T == word.TagRaw {
				return true // overwritten to zero: suppress
			}
			return emit(idx, u.W, u.T)
		}
		return emit(idx, w, t)
	})
	if !stopped {
		drain(^uint64(0))
	}
	st.Emitted = emitted
	it.Stats.ScanLines += st.LineReads
	return st
}

// Store buffers a write at idx (§3.3: updates go to transient state).
// Writes accumulate in the register's update buffer — last write to an
// index wins — and convert to content-unique lines in one wave at
// commit (segment.WriteBatch).
func (it *Iterator) Store(idx uint64, v uint64, tag word.Tag) {
	if j, ok := it.writeAt[idx]; ok {
		it.writes[j] = segment.Update{Idx: idx, W: v, T: tag}
		return
	}
	if it.writeAt == nil {
		it.writeAt = make(map[uint64]int)
	}
	it.writeAt[idx] = len(it.writes)
	it.writes = append(it.writes, segment.Update{Idx: idx, W: v, T: tag})
}

// sortedWrites returns the buffered updates in ascending index order.
// The buffer itself stays in store order; the overlay readers need index
// order, and the buffer is deduplicated so each index appears once. The
// returned slice is the register's reused scratch — valid only until the
// next sortedWrites call, which every overlay reader respects (the
// register is single-threaded by contract).
func (it *Iterator) sortedWrites() []segment.Update {
	over := append(it.sorted[:0], it.writes...)
	slices.SortFunc(over, func(a, b segment.Update) int { return cmp.Compare(a.Idx, b.Idx) })
	it.sorted = over
	return over
}

// discardWrites drops the buffered updates without committing them.
func (it *Iterator) discardWrites() {
	if len(it.writes) == 0 {
		return
	}
	it.writes = it.writes[:0]
	clear(it.writeAt)
	it.Stats.Aborts++
}

// flush converts the buffered updates into a committed segment via one
// wave commit and clears the buffer. The caller owns the returned root.
func (it *Iterator) flush() segment.Seg {
	next, wst := segment.WriteBatch(it.m, it.entry.Seg, it.writes)
	it.Stats.Wave.Add(wst)
	it.writes = it.writes[:0]
	clear(it.writeAt)
	return next
}

// CommitSegment converts pending writes and returns the new segment
// without publishing it; the caller owns the returned root. Only valid
// on detached iterators.
func (it *Iterator) CommitSegment() segment.Seg {
	if it.sm != nil {
		panic("iterreg: CommitSegment on an attached iterator; use TryCommit")
	}
	it.Stats.Commits++
	if len(it.writes) == 0 {
		seg := it.entry.Seg
		segment.RetainSeg(it.m, seg)
		return seg
	}
	return it.flush()
}

// TryCommit converts pending writes and publishes the new root with a CAS
// against the snapshotted root (§2.2). On success the iterator's snapshot
// advances to the committed version and the result is true. On failure
// (another thread committed first) all pending writes are discarded, the
// snapshot is reloaded, and the application retries its operation.
func (it *Iterator) TryCommit(size uint64) (bool, error) {
	return it.commit(size, false)
}

// CommitMerge is TryCommit with merge-update (§3.4): on CAS conflict the
// versions are three-way merged and only true data conflicts fail. The
// segment must be flagged segmap.FlagMergeUpdate.
func (it *Iterator) CommitMerge(size uint64) (bool, error) {
	return it.commit(size, true)
}

func (it *Iterator) commit(size uint64, useMerge bool) (bool, error) {
	if it.sm == nil {
		return false, fmt.Errorf("iterreg: commit on detached iterator")
	}
	if len(it.writes) == 0 {
		return true, nil // nothing to publish
	}
	next := it.flush()
	it.stack = nil

	var ok bool
	var err error
	if useMerge {
		ok, err = merge.MCAS(it.m, it.sm, it.vsid, it.entry.Seg, next, size, nil)
	} else {
		ok = it.sm.CAS(it.vsid, it.entry.Seg, next, size)
		if !ok {
			segment.ReleaseSeg(it.m, next)
		}
	}
	// Count after the outcome is known: a contended or conflicted publish
	// is a failure, not a commit.
	if ok {
		it.Stats.Commits++
	} else {
		it.Stats.CommitFails++
	}
	// Whatever happened, resynchronize the snapshot with the published
	// version (after a merge the committed root differs from next).
	if rerr := it.Reload(); rerr != nil && err == nil {
		err = rerr
	}
	return ok, err
}

// Reload abandons the current snapshot (and pending writes) and
// re-snapshots the segment's current version.
func (it *Iterator) Reload() error {
	if it.sm == nil {
		return fmt.Errorf("iterreg: reload on detached iterator")
	}
	it.discardWrites()
	e, err := it.sm.Load(it.vsid)
	if err != nil {
		return err
	}
	segment.ReleaseSeg(it.m, it.entry.Seg)
	it.entry = e
	it.stack = nil
	return nil
}

// powers returns the memoized arity-power table covering depths [0, h]:
// powers(h)[d] = arity^d, the words one child slot covers d levels above
// the leaves. Extending (never shrinking) on demand keeps the table valid
// across Reload/commit height changes, so every seek indexes instead of
// recomputing the power per level.
func (it *Iterator) powers(h int) []uint64 {
	if len(it.pows) > h {
		return it.pows
	}
	arity := uint64(it.m.LineWords())
	if len(it.pows) == 0 {
		it.pows = append(it.pows, 1)
	}
	for len(it.pows) <= h {
		it.pows = append(it.pows, it.pows[len(it.pows)-1]*arity)
	}
	return it.pows
}
