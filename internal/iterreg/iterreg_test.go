package iterreg

import (
	"testing"

	"repro/internal/core"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

func setup() (*core.Machine, *segmap.Map) {
	m := core.NewMachine(core.TestConfig())
	return m, segmap.New(m)
}

func TestSequentialAccessReusesPath(t *testing.T) {
	m, _ := setup()
	ws := make([]uint64, 256)
	for i := range ws {
		ws[i] = uint64(i) << 33 // defeat inlining: full DAG of lines
	}
	seg := segment.BuildWords(m, ws, nil)
	it := NewSegmentIterator(m, seg)
	for i := range ws {
		if v, _ := it.Load(uint64(i)); v != ws[i] {
			t.Fatalf("load[%d] = %d, want %d", i, v, ws[i])
		}
	}
	if it.Stats.PathReuses == 0 {
		t.Fatal("sequential scan never reused the cached path")
	}
	// §3.3: sequential access through the register costs at most ~2x the
	// line count of the flat data (interior nodes), not height * leaves.
	leaves := uint64(len(ws) / m.LineWords())
	if it.Stats.LineLoads > 2*leaves+uint64(seg.Height)+1 {
		t.Fatalf("LineLoads = %d for %d leaves; path caching broken",
			it.Stats.LineLoads, leaves)
	}
}

func TestRandomAccessCorrectness(t *testing.T) {
	m, _ := setup()
	ws := make([]uint64, 512)
	for i := range ws {
		ws[i] = uint64(i * i)
	}
	seg := segment.BuildWords(m, ws, nil)
	it := NewSegmentIterator(m, seg)
	for _, i := range []uint64{511, 0, 256, 255, 3, 500, 1, 499} {
		if v, _ := it.Load(i); v != ws[i] {
			t.Fatalf("load[%d] = %d, want %d", i, v, ws[i])
		}
	}
	if v, _ := it.Load(1 << 30); v != 0 {
		t.Fatal("out-of-capacity load non-zero")
	}
}

func TestIteratorSnapshotIsolation(t *testing.T) {
	// §4.2: an iterator visits the collection exactly as it was when the
	// register was loaded, independent of concurrent updates.
	m, sm := setup()
	v := sm.Create(segmap.Entry{Seg: segment.BuildWords(m, []uint64{1, 2, 3, 4}, nil), Size: 32})
	reader, err := Open(m, sm, segmap.ReadOnlyRef(v))
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	writer, _ := Open(m, sm, v)
	writer.Store(1, 99, word.TagRaw)
	if ok, err := writer.TryCommit(32); !ok || err != nil {
		t.Fatalf("commit: %v %v", ok, err)
	}
	writer.Close()

	if got, _ := reader.Load(1); got != 2 {
		t.Fatalf("snapshot saw concurrent update: %d", got)
	}
	fresh, _ := Open(m, sm, v)
	defer fresh.Close()
	if got, _ := fresh.Load(1); got != 99 {
		t.Fatalf("new iterator missed committed update: %d", got)
	}
}

func TestReadOnlyIteratorCannotCommit(t *testing.T) {
	m, sm := setup()
	v := sm.Create(segmap.Entry{Seg: segment.BuildWords(m, []uint64{7}, nil)})
	it, _ := Open(m, sm, segmap.ReadOnlyRef(v))
	defer it.Close()
	it.Store(0, 1, word.TagRaw)
	ok, _ := it.TryCommit(8)
	if ok {
		t.Fatal("read-only reference committed")
	}
	cur, _ := sm.Load(v)
	defer segment.ReleaseSeg(m, cur.Seg)
	if got, _ := segment.ReadWord(m, cur.Seg, 0); got != 7 {
		t.Fatal("read-only commit mutated the segment")
	}
}

func TestTryCommitConflictRetry(t *testing.T) {
	m, sm := setup()
	v := sm.Create(segmap.Entry{Seg: segment.BuildWords(m, []uint64{10, 20}, nil)})
	a, _ := Open(m, sm, v)
	b, _ := Open(m, sm, v)
	defer a.Close()
	defer b.Close()

	a.Store(0, 11, word.TagRaw)
	b.Store(1, 21, word.TagRaw)
	if ok, _ := a.TryCommit(16); !ok {
		t.Fatal("first commit failed")
	}
	if ok, _ := b.TryCommit(16); ok {
		t.Fatal("stale commit succeeded without merge")
	}
	// The failed iterator reloaded; the conventional CAS retry loop:
	b.Store(1, 21, word.TagRaw)
	if ok, _ := b.TryCommit(16); !ok {
		t.Fatal("retry after reload failed")
	}
	final, _ := Open(m, sm, v)
	defer final.Close()
	if x, _ := final.Load(0); x != 11 {
		t.Fatal("first writer's update lost")
	}
	if x, _ := final.Load(1); x != 21 {
		t.Fatal("second writer's update lost")
	}
}

func TestCommitStatsCountOutcomes(t *testing.T) {
	// Commits counts successful publishes only; a lost CAS is a
	// CommitFail, not a commit. (Regression: the counter used to
	// increment before the outcome was known, so contended commits
	// inflated it.)
	m, sm := setup()
	v := sm.Create(segmap.Entry{Seg: segment.BuildWords(m, []uint64{10, 20}, nil)})
	a, _ := Open(m, sm, v)
	b, _ := Open(m, sm, v)
	defer a.Close()
	defer b.Close()

	a.Store(0, 11, word.TagRaw)
	b.Store(1, 21, word.TagRaw)
	if ok, _ := a.TryCommit(16); !ok {
		t.Fatal("first commit failed")
	}
	if ok, _ := b.TryCommit(16); ok {
		t.Fatal("stale commit succeeded without merge")
	}
	if b.Stats.Commits != 0 || b.Stats.CommitFails != 1 {
		t.Fatalf("after lost CAS: Commits=%d CommitFails=%d, want 0/1",
			b.Stats.Commits, b.Stats.CommitFails)
	}
	b.Store(1, 21, word.TagRaw)
	if ok, _ := b.TryCommit(16); !ok {
		t.Fatal("retry after reload failed")
	}
	if b.Stats.Commits != 1 || b.Stats.CommitFails != 1 {
		t.Fatalf("after retry: Commits=%d CommitFails=%d, want 1/1",
			b.Stats.Commits, b.Stats.CommitFails)
	}
	// An empty commit publishes nothing and counts nothing.
	if ok, _ := b.TryCommit(16); !ok {
		t.Fatal("empty commit should trivially succeed")
	}
	if b.Stats.Commits != 1 {
		t.Fatal("empty commit must not count as a publish")
	}
	if a.Stats.Commits != 1 || a.Stats.CommitFails != 0 {
		t.Fatalf("winner: Commits=%d CommitFails=%d, want 1/0",
			a.Stats.Commits, a.Stats.CommitFails)
	}
}

func TestCommitMergeResolvesConflict(t *testing.T) {
	m, sm := setup()
	v := sm.Create(segmap.Entry{
		Seg:   segment.BuildWords(m, []uint64{1, 0, 0, 0}, nil),
		Flags: segmap.FlagMergeUpdate,
	})
	a, _ := Open(m, sm, v)
	b, _ := Open(m, sm, v)
	defer a.Close()
	defer b.Close()
	a.Store(1, 100, word.TagRaw)
	b.Store(2, 200, word.TagRaw)
	if ok, err := a.CommitMerge(32); !ok || err != nil {
		t.Fatalf("a: %v %v", ok, err)
	}
	if ok, err := b.CommitMerge(32); !ok || err != nil {
		t.Fatalf("b (merge path): %v %v", ok, err)
	}
	final, _ := Open(m, sm, v)
	defer final.Close()
	for i, want := range []uint64{1, 100, 200, 0} {
		if got, _ := final.Load(uint64(i)); got != want {
			t.Fatalf("final[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestIteratorNextNonZero(t *testing.T) {
	m, sm := setup()
	tx := segment.NewTxn(m, segment.NewSparse(10))
	for _, i := range []uint64{3, 700, 1500} {
		tx.WriteWord(i, i, word.TagRaw)
	}
	v := sm.Create(segmap.Entry{Seg: tx.Commit()})
	it, _ := Open(m, sm, v)
	defer it.Close()
	var got []uint64
	for at, ok := it.NextNonZero(0); ok; at, ok = it.NextNonZero(at + 1) {
		got = append(got, at)
	}
	want := []uint64{3, 700, 1500}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestNextNonZeroSeesPendingWrites(t *testing.T) {
	m, sm := setup()
	v := sm.Create(segmap.Entry{Seg: segment.NewSparse(6)})
	it, _ := Open(m, sm, v)
	defer it.Close()
	it.Store(42, 1, word.TagRaw)
	at, ok := it.NextNonZero(0)
	if !ok || at != 42 {
		t.Fatalf("NextNonZero = %d,%v", at, ok)
	}
}

func TestAbortViaCloseReleasesLines(t *testing.T) {
	m, sm := setup()
	v := sm.Create(segmap.Entry{Seg: segment.BuildWords(m, []uint64{1, 2, 3, 4}, nil)})
	live := m.LiveLines()
	it, _ := Open(m, sm, v)
	it.Store(0, 999, word.TagRaw)
	it.Close() // abort
	if m.LiveLines() != live {
		t.Fatalf("abandoned writes leaked lines: %d -> %d", live, m.LiveLines())
	}
}

func TestDetachedCommitSegment(t *testing.T) {
	m, _ := setup()
	base := segment.BuildWords(m, []uint64{5, 6}, nil)
	it := NewSegmentIterator(m, base)
	it.Store(0, 50, word.TagRaw)
	got := it.CommitSegment()
	if v, _ := segment.ReadWord(m, got, 0); v != 50 {
		t.Fatal("detached commit lost write")
	}
	if v, _ := segment.ReadWord(m, base, 0); v != 5 {
		t.Fatal("detached commit mutated base")
	}
}

func TestLoadAfterStoreSeesOwnWrite(t *testing.T) {
	m, sm := setup()
	v := sm.Create(segmap.Entry{Seg: segment.BuildWords(m, []uint64{1}, nil)})
	it, _ := Open(m, sm, v)
	defer it.Close()
	it.Store(0, 2, word.TagRaw)
	if got, _ := it.Load(0); got != 2 {
		t.Fatalf("read-own-write = %d", got)
	}
}
