package iterreg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// TestSeekEquivalentToReadWord: arbitrary seek sequences through the
// register must return exactly what the stateless segment reader returns.
func TestSeekEquivalentToReadWord(t *testing.T) {
	f := func(seed int64, seeks []uint16) bool {
		m := core.NewMachine(core.Config{
			LineBytes: 16, BucketBits: 10, DataWays: 12, CacheLines: 128, CacheWays: 4,
		})
		rng := rand.New(rand.NewSource(seed))
		ws := make([]uint64, 300)
		for i := range ws {
			if rng.Intn(3) == 0 {
				ws[i] = rng.Uint64()
			}
		}
		seg := segment.BuildWords(m, ws, nil)
		it := NewSegmentIterator(m, seg)
		for _, s := range seeks {
			idx := uint64(s) % 512 // includes out-of-capacity reads
			got, _ := it.Load(idx)
			want, _ := segment.ReadWord(m, seg, idx)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteReadBackProperty: any interleaving of stores and loads through
// one iterator behaves like a flat array, before and after commit.
func TestWriteReadBackProperty(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		m := core.NewMachine(core.Config{
			LineBytes: 16, BucketBits: 10, DataWays: 12, CacheLines: 128, CacheWays: 4,
		})
		sm := segmap.New(m)
		v := sm.Create(segmap.Entry{Seg: segment.NewSparse(8)})
		it, err := Open(m, sm, v)
		if err != nil {
			return false
		}
		defer it.Close()
		rng := rand.New(rand.NewSource(seed))
		model := map[uint64]uint64{}
		for _, op := range ops {
			idx := uint64(op) % 600
			if op%3 == 0 {
				val := rng.Uint64() >> (op % 40)
				it.Store(idx, val, word.TagRaw)
				model[idx] = val
			} else {
				got, _ := it.Load(idx)
				if got != model[idx] {
					return false
				}
			}
		}
		ok, err := it.TryCommit(0)
		if !ok || err != nil {
			return false
		}
		final, err := sm.Load(v)
		if err != nil {
			return false
		}
		defer segment.ReleaseSeg(m, final.Seg)
		for idx, val := range model {
			if got, _ := segment.ReadWord(m, final.Seg, idx); got != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
