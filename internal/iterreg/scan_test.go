package iterreg

import (
	"math/rand"
	"testing"

	"repro/internal/segment"
	"repro/internal/word"
)

type scanEmit struct {
	idx uint64
	w   uint64
	t   word.Tag
}

// TestIteratorScanMatchesLoadLoop pins Iterator.Scan against the
// point-read walk: NextNonZero plus Load must see exactly the scan's
// emissions.
func TestIteratorScanMatchesLoadLoop(t *testing.T) {
	m, _ := setup()
	rng := rand.New(rand.NewSource(61))
	ws := make([]uint64, 3000)
	for i := range ws {
		if rng.Intn(3) == 0 {
			ws[i] = rng.Uint64()
		}
	}
	seg := segment.BuildWords(m, ws, nil)

	ref := NewSegmentIterator(m, seg)
	var want []scanEmit
	for idx := uint64(0); ; {
		nz, ok := ref.NextNonZero(idx)
		if !ok {
			break
		}
		w, tag := ref.Load(nz)
		want = append(want, scanEmit{nz, w, tag})
		idx = nz + 1
	}

	it := NewSegmentIterator(m, seg)
	var got []scanEmit
	st := it.Scan(0, func(idx uint64, w uint64, tag word.Tag) bool {
		got = append(got, scanEmit{idx, w, tag})
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Scan emitted %d words, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("emission %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if it.Stats.Scans != 1 || it.Stats.ScanLines == 0 {
		t.Fatalf("scan telemetry not recorded: %+v", it.Stats)
	}
	if st.Emitted != uint64(len(got)) {
		t.Fatalf("Emitted = %d, want %d", st.Emitted, len(got))
	}
}

// TestIteratorScanSeesPendingWrites pins the transaction fallback: a scan
// over an iterator with buffered stores must reflect them.
func TestIteratorScanSeesPendingWrites(t *testing.T) {
	m, _ := setup()
	seg := segment.BuildWords(m, []uint64{1, 2, 3, 4}, nil)
	it := NewSegmentIterator(m, seg)
	it.Store(2, 99, word.TagRaw)
	it.Store(10, 7, word.TagRaw)
	got := map[uint64]uint64{}
	it.Scan(0, func(idx uint64, w uint64, tag word.Tag) bool {
		got[idx] = w
		return true
	})
	if got[2] != 99 || got[10] != 7 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("scan over pending writes = %v", got)
	}
}

// TestPowersTableSurvivesHeightGrowth pins the memoized arity-power
// table: seeks keep working after the iterator's segment grows taller
// (the table extends, never shrinks).
func TestPowersTableSurvivesHeightGrowth(t *testing.T) {
	m, _ := setup()
	small := segment.BuildWords(m, []uint64{5, 6}, nil)
	it := NewSegmentIterator(m, small)
	if v, _ := it.Load(1); v != 6 {
		t.Fatalf("small load = %d", v)
	}
	if got := it.powers(3); len(got) != 4 || got[3] != uint64(m.LineWords()*m.LineWords()*m.LineWords()) {
		t.Fatalf("powers(3) = %v", got)
	}
	// The same slice extends for a deeper segment and stays consistent.
	p5 := it.powers(5)
	for d := 1; d < len(p5); d++ {
		if p5[d] != p5[d-1]*uint64(m.LineWords()) {
			t.Fatalf("powers not multiplicative at depth %d: %v", d, p5)
		}
	}
	big := make([]uint64, 4096)
	for i := range big {
		big[i] = uint64(i) + 1
	}
	bseg := segment.BuildWords(m, big, nil)
	it2 := NewSegmentIterator(m, bseg)
	for _, idx := range []uint64{0, 63, 4095} {
		if v, _ := it2.Load(idx); v != big[idx] {
			t.Fatalf("big load[%d] = %d, want %d", idx, v, big[idx])
		}
	}
}
