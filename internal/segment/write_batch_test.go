package segment

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

// randUpdates produces an update set exercising the awkward shapes:
// exact-index duplicates (later must win), zero writes over non-zero
// words, writes beyond the base segment's capacity (growth), and PLID
// writes referencing plid when it is non-zero.
func randUpdates(rng *rand.Rand, n int, span uint64, plid word.PLID) []Update {
	ups := make([]Update, n)
	for i := range ups {
		idx := uint64(rng.Intn(int(span)))
		switch rng.Intn(6) {
		case 0: // zero write (may un-write an existing word)
			ups[i] = Update{Idx: idx}
		case 1: // duplicate of an earlier index when possible
			if i > 0 {
				idx = ups[rng.Intn(i)].Idx
			}
			ups[i] = Update{Idx: idx, W: rng.Uint64()}
		case 2: // protected reference write
			if plid != word.Zero {
				ups[i] = Update{Idx: idx, W: uint64(plid), T: word.TagPLID}
			} else {
				ups[i] = Update{Idx: idx, W: rng.Uint64()}
			}
		default:
			ups[i] = Update{Idx: idx, W: rng.Uint64()}
		}
	}
	return ups
}

// applySerial is the reference semantics: buffer every update in a Txn in
// order and commit once (the path-by-path serial commit).
func applySerial(m word.Mem, base Seg, ups []Update) Seg {
	tx := NewTxn(m, base)
	for _, u := range ups {
		tx.WriteWord(u.Idx, u.W, u.T)
	}
	return tx.Commit()
}

func TestWriteBatchMatchesTxn(t *testing.T) {
	for _, m := range machines(t) {
		rng := rand.New(rand.NewSource(51))
		for round := 0; round < 30; round++ {
			base, _ := randSeg(m, rng, 200+rng.Intn(400))
			// A helper line PLID writes can reference.
			ref := BuildWords(m, []uint64{0xFEED, 0xBEEF, 1, 2, 3, 4, 5, 6, 7, 8, 9}, nil)
			span := base.Capacity(m.LineWords())
			if round%3 == 0 {
				span *= 8 // force growth re-rooting
			}
			ups := randUpdates(rng, 1+rng.Intn(64), span, ref.Root)

			want := applySerial(m, base, ups)
			got, st := WriteBatch(m, base, ups)
			if !got.Equal(want) {
				t.Fatalf("arity %d round %d: wave root %#x/h%d != serial %#x/h%d",
					m.LineWords(), round, got.Root, got.Height, want.Root, want.Height)
			}
			if st.PathsRebuilt == 0 || st.WaveLevels == 0 {
				t.Fatalf("arity %d round %d: empty stats %+v", m.LineWords(), round, st)
			}
			if st.PathsRebuilt+st.SiblingCoalesced != st.Updates {
				t.Fatalf("arity %d round %d: updates %d != paths %d + coalesced %d",
					m.LineWords(), round, st.Updates, st.PathsRebuilt, st.SiblingCoalesced)
			}
			// Reads back like the serial result at every touched index.
			for _, u := range ups {
				gw, gt := ReadWord(m, got, u.Idx)
				ww, wt := ReadWord(m, want, u.Idx)
				if gw != ww || gt != wt {
					t.Fatalf("arity %d round %d idx %d: got (%#x,%v) want (%#x,%v)",
						m.LineWords(), round, u.Idx, gw, gt, ww, wt)
				}
			}
			ReleaseSeg(m, got)
			ReleaseSeg(m, want)
			ReleaseSeg(m, ref)
			ReleaseSeg(m, base)
		}
		if live := m.LiveLines(); live != 0 {
			t.Fatalf("arity %d: %d lines leaked", m.LineWords(), live)
		}
	}
}

func TestWriteBatchEmptyAndZeroRoot(t *testing.T) {
	for _, m := range machines(t) {
		base, _ := randSeg(m, rand.New(rand.NewSource(7)), 100)
		got, st := WriteBatch(m, base, nil)
		if !got.Equal(base) || st.Updates != 0 {
			t.Fatalf("empty update set must return the base segment")
		}
		ReleaseSeg(m, got)
		ReleaseSeg(m, base)

		// Sparse zero-root segment, including growth from it.
		sparse := NewSparse(1)
		ups := []Update{{Idx: 3, W: 42}, {Idx: sparse.Capacity(m.LineWords()) * 4, W: 7}}
		want := applySerial(m, sparse, ups)
		got, _ = WriteBatch(m, sparse, ups)
		if !got.Equal(want) {
			t.Fatalf("zero-root growth: wave %+v != serial %+v", got, want)
		}
		ReleaseSeg(m, got)
		ReleaseSeg(m, want)
		if live := m.LiveLines(); live != 0 {
			t.Fatalf("arity %d: %d lines leaked", m.LineWords(), live)
		}
	}
}

// TestWriteBatchLastWins pins the duplicate rule: the batch behaves like
// sequential WriteWord calls, so the last update to an index is the one
// that lands.
func TestWriteBatchLastWins(t *testing.T) {
	for _, m := range machines(t) {
		base := NewSparse(2)
		ups := []Update{
			{Idx: 10, W: 1}, {Idx: 10, W: 2}, {Idx: 10, W: 3},
			{Idx: 11, W: 9}, {Idx: 11, W: 0}, // ends at zero
		}
		got, st := WriteBatch(m, base, ups)
		if v, _ := ReadWord(m, got, 10); v != 3 {
			t.Fatalf("idx 10 = %d, want 3", v)
		}
		if v, _ := ReadWord(m, got, 11); v != 0 {
			t.Fatalf("idx 11 = %d, want 0", v)
		}
		if st.SiblingCoalesced != 4 { // 5 updates, 1 rebuilt leaf path
			t.Fatalf("coalesced = %d, want 4 (stats %+v)", st.SiblingCoalesced, st)
		}
		ReleaseSeg(m, got)
		if live := m.LiveLines(); live != 0 {
			t.Fatalf("arity %d: %d lines leaked", m.LineWords(), live)
		}
	}
}

// ampleMachine is a machine whose LLC comfortably holds the whole working
// set of these tests, so cache capacity never perturbs the accounting
// comparison between the two commit strategies.
func ampleMachine(lineBytes int) *core.Machine {
	return core.NewMachine(core.Config{
		LineBytes: lineBytes, BucketBits: 16, DataWays: 12,
		CacheLines: 1 << 15, CacheWays: 8,
	})
}

// dram runs fn on a machine and returns the simulated-DRAM access count
// it charged (store accesses; LLC hits are free), flushing the cache so
// deferred writebacks are included.
func dram(m *core.Machine, fn func()) uint64 {
	m.ResetStats()
	fn()
	m.FlushCache()
	return m.Stats().Store.Total()
}

// TestWriteBatchAccountingPin is the twin-machine pin: two identical
// machines replay identical preload operations, then one applies an
// update set through the serial path-by-path Txn commit and the other
// through WriteBatch. The wave commit must never charge more simulated
// DRAM, and for non-overlapping paths with distinct line contents it must
// charge exactly the same — same line reads, same lookups, same RC
// traffic, only batched.
func TestWriteBatchAccountingPin(t *testing.T) {
	for _, lineBytes := range []int{16, 32, 64} {
		ma, mb := ampleMachine(lineBytes), ampleMachine(lineBytes)
		arity := lineBytes / 8

		preload := func(m *core.Machine) Seg {
			ws := make([]uint64, 4096)
			rng := rand.New(rand.NewSource(99))
			for i := range ws {
				ws[i] = rng.Uint64()
			}
			return BuildWords(m, ws, nil)
		}
		sa, sb := preload(ma), preload(mb)

		// Non-overlapping paths: one update per leaf line, distinct values,
		// so no two touched nodes share a line and no two fresh lines share
		// content — the exact-equality regime.
		var ups []Update
		rng := rand.New(rand.NewSource(100))
		for leaf := 0; leaf < 64; leaf++ {
			idx := uint64(leaf*37*arity) % 4096
			ups = append(ups, Update{Idx: idx, W: rng.Uint64() | 1})
		}
		seen := map[uint64]bool{}
		uniq := ups[:0]
		for _, u := range ups {
			if l := u.Idx / uint64(arity); !seen[l] {
				seen[l] = true
				uniq = append(uniq, u)
			}
		}
		ups = uniq

		// PLIDs are allocation-order-dependent, so roots cannot be compared
		// across machines (the property test pins same-machine PLID
		// identity); the twins compare logical content and accounting.
		sameWords := func(a, b Seg) bool {
			wa := ReadWordsBulk(ma, a, 0, a.Capacity(arity))
			wb := ReadWordsBulk(mb, b, 0, b.Capacity(arity))
			if len(wa) != len(wb) {
				return false
			}
			for i := range wa {
				if wa[i] != wb[i] {
					return false
				}
			}
			return true
		}

		var serialSeg, waveSeg Seg
		serial := dram(ma, func() { serialSeg = applySerial(ma, sa, ups) })
		wave := dram(mb, func() { waveSeg, _ = WriteBatch(mb, sb, ups) })
		if !sameWords(serialSeg, waveSeg) {
			t.Fatalf("arity %d: contents diverge", arity)
		}
		if wave != serial {
			t.Fatalf("arity %d: non-overlapping wave commit charged %d DRAM accesses, serial %d (must be equal)",
				arity, wave, serial)
		}

		// Overlapping, duplicated updates: the wave commit may dedup but
		// must never cost more.
		rng2 := rand.New(rand.NewSource(101))
		ups2 := randUpdates(rng2, 512, 4096, word.Zero)
		var serialSeg2, waveSeg2 Seg
		serial2 := dram(ma, func() { serialSeg2 = applySerial(ma, serialSeg, ups2) })
		wave2 := dram(mb, func() { waveSeg2, _ = WriteBatch(mb, waveSeg, ups2) })
		if !sameWords(serialSeg2, waveSeg2) {
			t.Fatalf("arity %d: overlap contents diverge", arity)
		}
		if wave2 > serial2 {
			t.Fatalf("arity %d: wave commit charged %d DRAM accesses, serial charged %d (wave must be <=)",
				arity, wave2, serial2)
		}

		for _, pair := range []struct {
			m *core.Machine
			s []Seg
		}{{ma, []Seg{sa, serialSeg, serialSeg2}}, {mb, []Seg{sb, waveSeg, waveSeg2}}} {
			for _, s := range pair.s {
				ReleaseSeg(pair.m, s)
			}
			if live := pair.m.LiveLines(); live != 0 {
				t.Fatalf("arity %d: %d lines leaked", arity, live)
			}
		}
	}
}
