package segment

import (
	"fmt"

	"repro/internal/word"
)

// Snapshot diffing. Content-uniqueness makes identical sub-DAGs
// detectable by a single word comparison (§2.2/§3.4): two edges with
// equal tagged words at equal levels are the same subtree, so a
// co-walk of two segments only ever descends along paths where they
// differ. Between snapshots that differ in a handful of keys the
// frontier stays proportional to the changed paths — O(changes · height)
// line reads — however large the segments are. The write side (package
// merge) has exploited this since PR 1; DiffWords is its read-path
// counterpart.

// DiffStats describes one diff co-walk.
type DiffStats struct {
	SubDAGSkips  uint64 // identical sub-DAGs pruned by PLID equality
	SkippedWords uint64 // logical words those prunes covered
	Waves        uint64 // batched fetch rounds issued
	LineReads    uint64 // lines fetched across both segments
	DiffWords    uint64 // differing indices reported to fn
}

// DiffWords co-walks segments a and b and invokes fn for every logical
// word index whose tagged word differs between them, in ascending index
// order, with the values and tags from both sides. Identical sub-DAGs —
// detected by edge equality, never by fetching — are skipped whole and
// counted in SubDAGSkips/SkippedWords. The segments may have different
// heights: the shorter one is compared as if zero-extended to the taller
// capacity. fn returning false stops the walk. Both segments must live in
// the same memory system m; lines shared across the two snapshots are
// fetched once per wave.
func DiffWords(m word.Mem, a, b Seg, fn func(idx uint64, av, bv uint64, at, bt word.Tag) bool) DiffStats {
	var st DiffStats
	arity := m.LineWords()
	caps := word.Caps(m)
	view := a.Height
	if b.Height > view {
		view = b.Height
	}
	root := diffNode{
		ea: PLIDEdge(a.Root), la: a.Height,
		eb: PLIDEdge(b.Root), lb: b.Height,
		view: view,
	}
	if root.ea == root.eb && root.la == root.lb {
		if !root.ea.IsZero() {
			st.SubDAGSkips++
			st.SkippedWords += capacity(arity, view)
		}
		return st
	}

	frontier := []diffNode{root}
	var plids []word.PLID
	at := make(map[word.PLID]int)
	var contents []word.Content
	fetched := func(e Edge) word.Content { return contents[at[word.PLID(e.W)]] }

	for len(frontier) > 0 {
		// The wave's fetch set: every PLID edge sitting exactly at the
		// view level (interior nodes to expand, or leaves to compare),
		// deduplicated across nodes and across the two sides.
		plids = plids[:0]
		clear(at)
		add := func(e Edge, l, v int) {
			if l == v && e.T == word.TagPLID && e.W != 0 {
				p := word.PLID(e.W)
				if _, ok := at[p]; !ok {
					at[p] = len(plids)
					plids = append(plids, p)
				}
			}
		}
		for _, nd := range frontier {
			add(nd.ea, nd.la, nd.view)
			add(nd.eb, nd.lb, nd.view)
		}
		if len(plids) > 0 {
			contents = caps.ReadBatch(plids)
			st.Waves++
			st.LineReads += uint64(len(plids))
		}

		var next []diffNode
		for _, nd := range frontier {
			if nd.view == 0 {
				ca := leafWords(arity, nd.ea, fetched)
				cb := leafWords(arity, nd.eb, fetched)
				for i := 0; i < arity; i++ {
					if ca.W[i] == cb.W[i] && ca.T[i] == cb.T[i] {
						continue
					}
					st.DiffWords++
					if !fn(nd.base+uint64(i), ca.W[i], cb.W[i], ca.T[i], cb.T[i]) {
						return st
					}
				}
				continue
			}
			var ka, kb [word.MaxWords]Edge
			var lva, lvb [word.MaxWords]int
			sideChildren(m, arity, nd.ea, nd.la, nd.view, &ka, &lva, fetched)
			sideChildren(m, arity, nd.eb, nd.lb, nd.view, &kb, &lvb, fetched)
			sub := capacity(arity, nd.view-1)
			for i := 0; i < arity; i++ {
				if ka[i] == kb[i] && lva[i] == lvb[i] {
					if !ka[i].IsZero() {
						st.SubDAGSkips++
						st.SkippedWords += sub
					}
					continue
				}
				next = append(next, diffNode{
					ea: ka[i], la: lva[i],
					eb: kb[i], lb: lvb[i],
					view: nd.view - 1,
					base: nd.base + uint64(i)*sub,
				})
			}
		}
		frontier = next
	}
	return st
}

// diffNode is one co-walk frontier entry: each side's edge and its own
// level, the common view level the comparison happens at (>= both side
// levels; a side below the view is implicitly zero-extended), and the
// first logical word index the node covers.
type diffNode struct {
	ea, eb Edge
	la, lb int
	view   int
	base   uint64
}

// sideChildren writes one side's children at view-1 into kids/lvls. A
// side sitting below the view occupies child 0 (its words are the low
// words of the wider capacity); its siblings are zero. Zero children are
// normalized to ZeroEdge at level 0 so the pruning equality check never
// misses an all-zero pair.
func sideChildren(m word.Mem, arity int, e Edge, l, view int, kids *[word.MaxWords]Edge, lvls *[word.MaxWords]int, fetched func(Edge) word.Content) {
	for i := 0; i < arity; i++ {
		kids[i], lvls[i] = ZeroEdge, 0
	}
	switch {
	case e.IsZero():
	case l < view:
		kids[0], lvls[0] = e, l
	case e.T == word.TagCompact:
		// Peel one compacted step per view level to stay in lockstep with
		// the other side; no fetch.
		head, w, isPLID := word.CompactDrop(e.W, arity, m.PLIDBits())
		if isPLID {
			kids[head] = PLIDEdge(word.PLID(w))
		} else {
			kids[head] = Edge{W: w, T: word.TagCompact}
		}
		lvls[head] = l - 1
	case e.T == word.TagPLID:
		c := fetched(e)
		for i := 0; i < arity; i++ {
			k := Edge{W: c.W[i], T: c.T[i]}
			if k.IsZero() {
				continue
			}
			kids[i], lvls[i] = k, l-1
		}
	default:
		panic(fmt.Sprintf("segment: unexpected edge tag %v in diff", e.T))
	}
}

// leafWords materializes one side's leaf content at view level 0.
func leafWords(arity int, e Edge, fetched func(Edge) word.Content) word.Content {
	switch {
	case e.IsZero():
		return word.NewContent(arity)
	case e.T == word.TagInline:
		c := word.NewContent(arity)
		copy(c.W[:arity], word.UnpackInline(e.W, arity))
		return c
	case e.T == word.TagPLID:
		return fetched(e)
	default:
		panic(fmt.Sprintf("segment: unexpected leaf edge tag %v in diff", e.T))
	}
}
