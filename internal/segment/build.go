package segment

import (
	"encoding/binary"

	"repro/internal/word"
)

// bulkMinLeaves is the leaf count at which BuildWords switches from the
// serial line-at-a-time loop to the batch pipeline: below it the batch
// bookkeeping costs more than the lock round trips it saves.
const bulkMinLeaves = 8

// BuildWords builds the canonical segment holding the given tagged words.
// The segment's height is the minimum covering len(ws); trailing capacity
// reads as zero. The returned segment owns one reference on its root.
// Passing nil tags treats every word as raw data.
//
// Large inputs route through a transient Builder (batched store lookups,
// per-call memoization); small ones use the serial loop. Both produce the
// same canonical root. Bulk producers that build many segments should
// hold their own Builder so the memo persists across calls.
func BuildWords(m word.Mem, ws []uint64, ts []word.Tag) Seg {
	if (len(ws)+m.LineWords()-1)/m.LineWords() >= bulkMinLeaves {
		// Transient builder: no memo. A one-shot build cannot amortize the
		// memo's per-line table inserts, and within-level duplicates are
		// deduplicated by the batch itself; the memo pays off only when a
		// Builder lives across builds.
		b := NewBuilder(m, 0)
		b.memoCap = 0
		defer b.Close()
		return b.BuildWords(ws, ts)
	}
	return BuildWordsSerial(m, ws, ts)
}

// BuildWordsSerial is the line-at-a-time reference implementation of
// BuildWords: one lookup-by-content per line, in canonical order. It is
// kept as the semantic baseline the Builder is verified (and benchmarked)
// against.
func BuildWordsSerial(m word.Mem, ws []uint64, ts []word.Tag) Seg {
	arity := m.LineWords()
	n := uint64(len(ws))
	if n == 0 {
		return Seg{Root: word.Zero, Height: 0}
	}
	height := HeightFor(arity, n)

	tagAt := func(i int) word.Tag {
		if ts == nil {
			return word.TagRaw
		}
		return ts[i]
	}

	// Level 0: leaves, filled left to right (§2.2 canonical rule).
	leaves := int((n + uint64(arity) - 1) / uint64(arity))
	edges := make([]Edge, leaves)
	lw := make([]uint64, arity)
	lt := make([]word.Tag, arity)
	for l := 0; l < leaves; l++ {
		for i := 0; i < arity; i++ {
			j := l*arity + i
			if j < len(ws) {
				lw[i], lt[i] = ws[j], tagAt(j)
			} else {
				lw[i], lt[i] = 0, word.TagRaw
			}
		}
		edges[l] = CanonLeaf(m, lw, lt)
	}

	// Interior levels.
	kids := make([]Edge, arity)
	for level := 1; level <= height; level++ {
		parents := (len(edges) + arity - 1) / arity
		next := make([]Edge, parents)
		for p := 0; p < parents; p++ {
			for i := 0; i < arity; i++ {
				if j := p*arity + i; j < len(edges) {
					kids[i] = edges[j]
				} else {
					kids[i] = ZeroEdge
				}
			}
			next[p] = CanonNode(m, kids)
			releaseAll(m, kids[:min(arity, len(edges)-p*arity)])
		}
		edges = next
	}
	return Seg{Root: materializeRoot(m, edges[0]), Height: height}
}

// BuildBytes builds the canonical segment holding the byte string b,
// packed little-endian into raw words.
func BuildBytes(m word.Mem, b []byte) Seg {
	return BuildWords(m, packWordsLE(b), nil)
}

// packWordsLE packs a byte string little-endian into 64-bit words,
// zero-padding the final partial word. Full words decode with
// binary.LittleEndian; only the tail (< 8 bytes) takes the shift loop.
func packWordsLE(b []byte) []uint64 {
	n := (len(b) + 7) / 8
	ws := make([]uint64, n)
	full := len(b) / 8
	for i := 0; i < full; i++ {
		ws[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	if full < n {
		var v uint64
		for k := full * 8; k < len(b); k++ {
			v |= uint64(b[k]) << (8 * (k - full*8))
		}
		ws[full] = v
	}
	return ws
}

// NewSparse returns an empty segment of the given height, ready for sparse
// writes through a transaction or iterator register.
func NewSparse(height int) Seg { return Seg{Root: word.Zero, Height: height} }

// materializeRoot converts an arbitrary edge into a root PLID: the segment
// map can only store PLIDs, so a compacted or inlined top edge is expanded
// into a real line. Ownership of the input edge transfers to the result.
func materializeRoot(m word.Mem, e Edge) word.PLID {
	switch e.T {
	case word.TagRaw:
		if e.W == 0 {
			return word.Zero
		}
	case word.TagPLID:
		return word.PLID(e.W)
	case word.TagInline:
		// Expand the inlined leaf back into a real leaf line.
		c := word.NewContent(m.LineWords())
		word.UnpackInlineInto(e.W, m.LineWords(), c.W[:m.LineWords()])
		return m.LookupLine(c)
	case word.TagCompact:
		// Materialize the top node of the compacted chain: a line with a
		// single non-zero entry holding the rest of the chain.
		arity := m.LineWords()
		var pbuf [word.MaxCompactPath]int
		p, path := word.DecodeCompactInto(e.W, arity, m.PLIDBits(), pbuf[:])
		var inner Edge
		if len(path) == 1 {
			inner = PLIDEdge(p) // owns the ref e owned
		} else {
			w, ok := word.EncodeCompact(p, path[1:], arity, m.PLIDBits())
			if !ok {
				panic("segment: shrinking a compact path cannot fail")
			}
			inner = Edge{W: w, T: word.TagCompact}
		}
		c := word.NewContent(arity)
		c.W[path[0]], c.T[path[0]] = inner.W, inner.T
		root := m.LookupLine(c)
		inner.Release(m) // line owns its own child ref now
		return root
	}
	panic("segment: cannot materialize edge " + e.T.String())
}

// ReleaseSeg drops the reference a segment owns on its root.
func ReleaseSeg(m word.Mem, s Seg) {
	if s.Root != word.Zero {
		m.Release(s.Root)
	}
}

// RetainSeg acquires an extra reference on the segment root (e.g. when a
// snapshot is handed to another thread).
func RetainSeg(m word.Mem, s Seg) {
	if s.Root != word.Zero {
		m.Retain(s.Root)
	}
}
