package segment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/pool"
	"repro/internal/word"
)

// Parallel sharded scans. The root's top-level children partition the
// index space into arity disjoint, contiguous shards; each worker streams
// one shard at a time with its own wave buffer (the memory system is
// concurrency-safe; the scanners share nothing), and the caller's
// goroutine merges the per-shard item streams back in index order. The
// callback therefore sees exactly the serial ScanWords emission sequence.

// scanItem is one buffered emission of a sharded scan.
type scanItem struct {
	idx uint64
	w   uint64
	t   word.Tag
}

// scanFlushItems is how many emissions a shard worker buffers before
// handing a chunk to the merger.
const scanFlushItems = 1024

// ScanWordsParallel is ScanWords with the frontier sharded on the root's
// top-level children across a bounded worker pool. workers <= 0 sizes the
// pool like the Builder's (GOMAXPROCS capped by NumCPU and
// maxDefaultWorkers). fn runs only on the calling goroutine, in ascending
// index order; returning false stops the scan, though shards already
// streaming may have fetched ahead (the per-shard window still bounds
// each one's over-fetch).
func ScanWordsParallel(m word.Mem, s Seg, from uint64, workers int, fn func(idx uint64, w uint64, t word.Tag) bool) ScanStats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if n := runtime.NumCPU(); workers > n {
			workers = n
		}
		if workers > maxDefaultWorkers {
			workers = maxDefaultWorkers
		}
	}
	arity := m.LineWords()
	var stats ScanStats
	if s.Root == word.Zero || from >= s.Capacity(arity) {
		return stats
	}
	if workers <= 1 || s.Height == 0 {
		return ScanWords(m, s, from, fn)
	}

	kids := Children(m, PLIDEdge(s.Root), s.Height)
	stats.LineReads++
	sub := capacity(arity, s.Height-1)
	type shard struct {
		node scanNode
		ch   chan *pool.Buf[scanItem]
	}
	var shards []*shard
	for i, e := range kids {
		base := uint64(i) * sub
		if e.IsZero() || base+sub <= from {
			continue
		}
		shards = append(shards, &shard{
			node: scanNode{e: e, lvl: s.Height - 1, base: base},
			ch:   make(chan *pool.Buf[scanItem], 2),
		})
	}
	if len(shards) == 0 {
		return stats
	}
	if workers > len(shards) {
		workers = len(shards)
	}

	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	var mu sync.Mutex // guards stats merging from workers
	var nextShard atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextShard.Add(1) - 1)
				if i >= len(shards) {
					return
				}
				st := scanShard(m, shards[i].node, shards[i].ch, from, stop)
				mu.Lock()
				// Emitted is counted by the merger; everything else by the
				// shard's own scanner.
				st.Emitted = 0
				stats.merge(st)
				mu.Unlock()
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}

	// Merge in shard order: shard i's indices all precede shard i+1's,
	// and each shard emits ascending, so consuming channels in order
	// reproduces the serial emission sequence. Emissions are counted in a
	// local and folded into stats only after the workers drain — workers
	// merge their shard stats into stats concurrently (under mu), and the
	// merger must not touch the shared struct while they do.
	var emitted uint64
merge:
	for _, sh := range shards {
		for items := range sh.ch {
			stopped := false
			for _, it := range items.S {
				emitted++
				if !fn(it.idx, it.w, it.t) {
					halt()
					stopped = true
					break
				}
			}
			items.Release() // chunk ownership ends with the merger
			if stopped {
				break merge
			}
		}
	}
	halt()
	wg.Wait()
	// Release any chunks still buffered in abandoned channels; the
	// workers have exited, so every channel is closed.
	for _, sh := range shards {
		for items := range sh.ch {
			items.Release()
		}
	}
	stats.Emitted = emitted
	return stats
}

// scanShard streams one shard's subtree, batching emissions into chunks
// on ch. The channel is always closed on return; a closed stop channel
// abandons the shard.
func scanShard(m word.Mem, nd scanNode, ch chan<- *pool.Buf[scanItem], from uint64, stop <-chan struct{}) ScanStats {
	defer close(ch)
	sc := newScanner(m, from, DefaultScanWindow)
	defer sc.release()
	sc.pending = append(sc.pending, nd)
	var scratch pool.Scratch
	defer scratch.Release()
	buf := poolScanItems.GetCap(&scratch, scanFlushItems)
	flush := func() bool {
		if len(buf) == 0 {
			return true
		}
		// Ownership of the chunk transfers over the channel: the merger
		// (or the abandoned-channel drain) releases it.
		out := poolScanItems.GetBuf(len(buf))
		copy(out.S, buf)
		buf = buf[:0]
		select {
		case ch <- out:
			return true
		case <-stop:
			out.Release()
			return false
		}
	}
	sc.run(func(idx uint64, w uint64, t word.Tag) bool {
		buf = append(buf, scanItem{idx: idx, w: w, t: t})
		if len(buf) >= scanFlushItems {
			return flush()
		}
		return true
	})
	flush()
	return sc.stats
}
