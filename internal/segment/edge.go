// Package segment implements HICAMP memory segments (paper §2.2): variable
// sized, logically contiguous regions represented as canonical DAGs of
// content-unique lines, with the path and data compaction of §3.2. The
// canonical representation — leaves filled left to right, zero subtrees
// elided, single-child interior nodes path-compacted, small-value leaves
// inlined, all applied deterministically — extends the content-uniqueness
// property from lines to whole segments: equal contents at equal logical
// heights always produce equal root PLIDs, so segments compare in O(1).
package segment

import (
	"fmt"

	"repro/internal/word"
)

// Seg names a segment: the root line of its DAG and its logical height.
// Height 0 means the root is a single leaf line; a segment of height h
// covers arity^(h+1) words. The zero-root segment of any height is the
// all-zero segment. The paper stores the height in the virtual segment map
// entry; package segmap does the same.
type Seg struct {
	Root   word.PLID
	Height int
}

// Equal reports whether two segments have identical content. Because the
// representation is canonical, this is a comparison of root PLIDs — the
// single-instruction segment compare of §2.2 — valid at equal heights.
func (s Seg) Equal(o Seg) bool { return s.Root == o.Root && s.Height == o.Height }

// Capacity returns the number of 64-bit words the segment can address.
func (s Seg) Capacity(arity int) uint64 { return capacity(arity, s.Height) }

func capacity(arity, height int) uint64 {
	c := uint64(arity)
	for i := 0; i < height; i++ {
		c *= uint64(arity)
	}
	return c
}

// HeightFor returns the minimal height whose capacity covers n words.
func HeightFor(arity int, n uint64) int {
	h := 0
	for capacity(arity, h) < n {
		h++
	}
	return h
}

// Edge is one parent-line entry describing a subtree: a PLID, a
// path-compacted PLID, an inlined leaf, or the zero subtree. An Edge is
// exactly one tagged word of an interior line.
type Edge struct {
	W uint64
	T word.Tag
}

// ZeroEdge is the canonical empty subtree.
var ZeroEdge = Edge{}

// IsZero reports whether the edge denotes an all-zero subtree.
func (e Edge) IsZero() bool {
	return e.W == 0 && e.T == word.TagRaw || e.T == word.TagPLID && e.W == 0
}

// PLIDEdge wraps a PLID; the zero PLID yields the canonical zero edge.
func PLIDEdge(p word.PLID) Edge {
	if p == word.Zero {
		return ZeroEdge
	}
	return Edge{W: uint64(p), T: word.TagPLID}
}

// Target returns the PLID an edge points at, if any (plain or compacted).
func (e Edge) Target(m word.Mem) (word.PLID, bool) {
	switch e.T {
	case word.TagPLID:
		return word.PLID(e.W), e.W != 0
	case word.TagCompact:
		return word.CompactPLID(e.W, m.PLIDBits()), true
	}
	return word.Zero, false
}

// Retain acquires a reference on the edge's target, if it has one.
func (e Edge) Retain(m word.Mem) {
	if p, ok := e.Target(m); ok {
		m.Retain(p)
	}
}

// Release drops the reference the edge owns on its target, if any.
func (e Edge) Release(m word.Mem) {
	if p, ok := e.Target(m); ok {
		m.Release(p)
	}
}

// CanonLeaf returns the canonical edge for a leaf of exactly arity tagged
// words: the zero edge for all-zero content, an inline edge when every
// word is raw and fits the packed field width (data compaction, Figure
// 4b), otherwise a freshly looked-up leaf line. The returned edge owns one
// reference when it carries a PLID.
func CanonLeaf(m word.Mem, ws []uint64, ts []word.Tag) Edge {
	arity := m.LineWords()
	if len(ws) != arity || len(ts) != arity {
		panic(fmt.Sprintf("segment: leaf of %d/%d words, arity %d", len(ws), len(ts), arity))
	}
	allZero, allSmallRaw := true, true
	for i := 0; i < arity; i++ {
		if ws[i] != 0 || ts[i] != word.TagRaw {
			allZero = false
		}
		if ts[i] != word.TagRaw {
			allSmallRaw = false
		}
	}
	if allZero {
		return ZeroEdge
	}
	if allSmallRaw {
		if w, ok := word.PackInline(ws, arity); ok {
			return Edge{W: w, T: word.TagInline}
		}
	}
	c := word.NewContent(arity)
	copy(c.W[:arity], ws)
	copy(c.T[:arity], ts)
	return PLIDEdge(m.LookupLine(c))
}

// CanonNode returns the canonical edge for an interior node whose children
// are the given arity edges: the zero edge when all children are zero, a
// path-compacted edge when exactly one child is non-zero and the encoding
// fits (path compaction, Figure 4a), otherwise a materialized interior
// line. The returned edge owns one reference when it carries a PLID;
// ownership of the child edges is untouched (release them after the call
// if you own them).
func CanonNode(m word.Mem, children []Edge) Edge {
	arity := m.LineWords()
	if len(children) != arity {
		panic(fmt.Sprintf("segment: node of %d children, arity %d", len(children), arity))
	}
	nz, idx := 0, -1
	for i, e := range children {
		if !e.IsZero() {
			nz++
			idx = i
		}
	}
	if nz == 0 {
		return ZeroEdge
	}
	if nz == 1 {
		child := children[idx]
		switch child.T {
		case word.TagPLID:
			if w, ok := word.EncodeCompact(word.PLID(child.W), []int{idx}, arity, m.PLIDBits()); ok {
				m.Retain(word.PLID(child.W))
				return Edge{W: w, T: word.TagCompact}
			}
		case word.TagCompact:
			p, path := word.DecodeCompact(child.W, arity, m.PLIDBits())
			if w, ok := word.EncodeCompact(p, append([]int{idx}, path...), arity, m.PLIDBits()); ok {
				m.Retain(p)
				return Edge{W: w, T: word.TagCompact}
			}
		}
	}
	c := word.NewContent(arity)
	for i, e := range children {
		c.W[i], c.T[i] = e.W, e.T
	}
	return PLIDEdge(m.LookupLine(c))
}

// releaseAll drops ownership of every edge in es.
func releaseAll(m word.Mem, es []Edge) {
	for _, e := range es {
		e.Release(m)
	}
}

// Children returns the arity child edges of the subtree edge at the given
// level: for level >= 1 the entries of the (possibly elided) interior
// node, for level 0 the leaf's tagged words as word-level edges. The
// returned edges are borrowed — they own no references.
func Children(m word.Mem, e Edge, level int) []Edge {
	return ChildrenInto(m, e, level, nil)
}

// ChildrenInto is Children writing into buf when it has the arity's
// capacity, allocating only otherwise — for per-node walkers (the
// iterator register) that expand millions of nodes through one scratch
// buffer.
func ChildrenInto(m word.Mem, e Edge, level int, buf []Edge) []Edge {
	arity := m.LineWords()
	var out []Edge
	if cap(buf) >= arity {
		out = buf[:arity]
		for i := range out {
			out[i] = Edge{}
		}
	} else {
		out = make([]Edge, arity)
	}
	switch {
	case e.IsZero():
	case e.T == word.TagInline:
		if level != 0 {
			panic("segment: inline edge above leaf level")
		}
		for i := 0; i < arity; i++ {
			out[i] = Edge{W: word.InlineAt(e.W, i, arity), T: word.TagRaw}
		}
	case e.T == word.TagCompact:
		if level == 0 {
			panic("segment: compact edge at leaf level")
		}
		head, w, isPLID := word.CompactDrop(e.W, arity, m.PLIDBits())
		if isPLID {
			out[head] = PLIDEdge(word.PLID(w))
		} else {
			out[head] = Edge{W: w, T: word.TagCompact}
		}
	case e.T == word.TagPLID:
		c := m.ReadLine(word.PLID(e.W))
		for i := 0; i < arity; i++ {
			out[i] = Edge{W: c.W[i], T: c.T[i]}
		}
	default:
		panic(fmt.Sprintf("segment: cannot expand edge %v", e.T))
	}
	return out
}

// SegFromEdge materializes an edge (whose reference the caller owns) into
// a rooted segment of the given height; ownership transfers to the result.
func SegFromEdge(m word.Mem, e Edge, height int) Seg {
	return Seg{Root: materializeRoot(m, e), Height: height}
}
