package segment

import (
	"runtime"
	"sync"

	"repro/internal/pool"
	"repro/internal/word"
)

// Builder is the bulk segment-construction pipeline: it canonicalizes a
// whole DAG level at a time instead of one line at a time. Three
// mechanisms make it faster than the serial loop without changing the
// resulting roots (the canonical form is order-independent):
//
//   - Batch lookup: every line the level needs from the store is collected
//     and issued as one word.BatchMem.LookupLineBatch, so the store takes
//     each bucket stripe lock once per level and coalesces its DRAM
//     accounting, instead of one lock round trip per line.
//   - Memoization: a content-keyed table remembers the PLID of every line
//     this Builder has already canonicalized. Repeated sub-DAGs — zero-
//     padded tails, duplicated VM pages, shared corpus fragments, repeated
//     values — revalidate with one RetainIfContent (a single reference-
//     count touch, the exact cost of an LLC content hit) and no lookup
//     traffic at all. Memo entries hold NO references: a stale entry —
//     the line was freed since it was remembered — fails revalidation and
//     falls back to the authoritative lookup, so a memoized PLID can
//     never dangle and the memo never pins memory.
//   - Workers: leaf and interior levels are canonicalized in parallel
//     chunks by a bounded worker pool; large batches are likewise sharded
//     across the pool so independent stripe groups lock concurrently.
//
// A Builder is NOT safe for concurrent use — like an iterator register it
// belongs to one goroutine; spawn one Builder per goroutine (they may
// share one memory system). Accounting semantics: a memo miss charges
// exactly what the equivalent LookupLine would (same Stats.Total()); a
// memo hit charges only the reference-count touch of its revalidation,
// never a phantom lookup.
type Builder struct {
	m       word.Mem
	caps    word.MemCaps // optional fast paths, probed once at construction
	workers int
	memoCap int
	memo    map[word.Content]word.PLID // no references held; revalidated on hit

	// Adaptive memo policy: after a warmup of memoWarmup consultations
	// (skipped because cold-start first occurrences always miss), the
	// next memoWarmup consultations form an observation window; if its
	// hit rate fell below memoMinHitPct percent, inserts are disabled —
	// on low-redundancy corpora (fresh VM images, random content) the
	// insert cost dominates the occasional hit, while lookups against
	// the already-populated table stay free upside. The decision is not
	// final: every memoRecheck further consultations a new observation
	// window opens (with inserts probationally re-enabled, so a workload
	// that turned redundant can produce hits again) and the decision is
	// re-taken, letting a long-lived server Builder track workload
	// shifts in either direction.
	memoWarmup    uint64
	memoMinHitPct uint64
	memoRecheck   uint64
	stats         BuilderStats
	windowOpen    bool
	winLookups    uint64
	winHits       uint64
	nextWindowAt  uint64

	// Scratch reused across levels and builds (one goroutine, so no
	// synchronization; resized monotonically).
	scratchC []word.Content
	scratchP []bool
	uniqs    []word.Content
	uniqAt   []int32
	firstOf  map[uint64]int32
	dups     []builderDup
	plids    []word.PLID
}

// builderDup records one within-level duplicate: the edge slot it fills
// and the unique content (by position in uniqAt) it repeats.
type builderDup struct{ edge, uniq int32 }

// BuilderStats describes one Builder's memo behaviour, including the
// adaptive-insert decision.
type BuilderStats struct {
	MemoLookups uint64 // memo consultations (one per pending content)
	MemoHits    uint64 // consultations that revalidated successfully
	MemoInserts uint64 // entries recorded
	// MemoDecided reports that the warmup window has closed and the
	// insert policy is settled; MemoInsertsOff is the current decision —
	// true when the observed hit rate fell below the threshold and
	// inserts were turned off (lookups continue against the existing
	// table).
	MemoDecided    bool
	MemoInsertsOff bool
	// MemoRedecisions counts re-observation windows that closed after
	// the first decision; MemoFlips counts the subset that reversed the
	// insert policy (in either direction).
	MemoRedecisions uint64
	MemoFlips       uint64
}

// HitRate returns the observed memo hit fraction.
func (s BuilderStats) HitRate() float64 {
	if s.MemoLookups == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(s.MemoLookups)
}

const (
	// defaultMemoCap bounds the memo table: 1<<17 entries is a few MB of
	// table, far above any one build level and comfortably holding a
	// bulk-load working set. (Entries hold no references, so the cap
	// bounds only the table itself, not line memory.)
	defaultMemoCap = 1 << 17
	// defaultMemoWarmup is how many memo consultations the adaptive
	// policy observes before deciding whether inserts pay for themselves.
	defaultMemoWarmup = 1 << 13
	// defaultMemoMinHitPct is the hit-rate percentage below which memo
	// inserts are disabled after warmup. The ROADMAP measurement put the
	// break-even near 50%; 20% keeps a margin for workloads whose
	// redundancy arrives late.
	defaultMemoMinHitPct = 20
	// defaultMemoRecheck is how many consultations pass between
	// re-observation windows once a decision exists: large enough that a
	// probation window's insert cost is noise, small enough that a
	// long-lived Builder notices a workload shift within one bulk load.
	defaultMemoRecheck = 1 << 16
	// maxDefaultWorkers caps the auto-sized pool; levels rarely have
	// enough independent work to feed more.
	maxDefaultWorkers = 8
	// minParallel is the level size below which chunking into goroutines
	// costs more than it saves.
	minParallel = 1024
	// minChunk is the smallest per-worker slice of a level.
	minChunk = 512
)

// NewBuilder creates a bulk builder over m. workers <= 0 sizes the pool
// automatically (GOMAXPROCS, capped). Memoization requires m to implement
// word.ContentRetainer (core.Machine does); otherwise the Builder still
// batches and deduplicates within each level, it just cannot remember
// lines across builds. Call Close when done.
func NewBuilder(m word.Mem, workers int) *Builder {
	if workers <= 0 {
		// GOMAXPROCS bounds runnable goroutines, NumCPU bounds real
		// parallelism; oversubscribing physical cores only adds scheduling
		// churn to what is CPU-bound work.
		workers = runtime.GOMAXPROCS(0)
		if n := runtime.NumCPU(); workers > n {
			workers = n
		}
		if workers > maxDefaultWorkers {
			workers = maxDefaultWorkers
		}
	}
	return &Builder{
		m: m, caps: word.Caps(m), workers: workers,
		memoCap:       defaultMemoCap,
		memoWarmup:    defaultMemoWarmup,
		memoMinHitPct: defaultMemoMinHitPct,
		memoRecheck:   defaultMemoRecheck,
	}
}

// Close drops the memo table and scratch buffers. Memo entries hold no
// references, so nothing is released — built segments own their DAGs and
// everything else was already reclaimed. The Builder is reusable
// afterwards (with an empty memo).
func (b *Builder) Close() {
	b.memo = nil
	b.scratchC, b.scratchP, b.uniqs, b.uniqAt, b.firstOf = nil, nil, nil, nil, nil
	b.dups, b.plids = nil, nil
}

// MemoSize returns the number of memoized lines (for tests and telemetry).
func (b *Builder) MemoSize() int { return len(b.memo) }

// Stats returns the Builder's memo telemetry, including the adaptive
// insert decision.
func (b *Builder) Stats() BuilderStats { return b.stats }

// BuildWords builds the canonical segment holding the given tagged words,
// level by level through the batch pipeline. Result and reference
// semantics are identical to the package-level BuildWords.
func (b *Builder) BuildWords(ws []uint64, ts []word.Tag) Seg {
	arity := b.m.LineWords()
	n := uint64(len(ws))
	if n == 0 {
		return Seg{Root: word.Zero, Height: 0}
	}
	height := HeightFor(arity, n)
	leaves := (len(ws) + arity - 1) / arity
	// The per-level edge buffers are wave scratch: every slot is written
	// before it is read (leafLevel/nodeLevel assign all of [0, n)), and
	// the only value that outlives the loop is the materialized root.
	var sc pool.Scratch
	defer sc.Release()
	edges := poolEdges.Get(&sc, leaves)
	b.leafLevel(ws, ts, edges)
	for level := 1; level <= height; level++ {
		parents := (len(edges) + arity - 1) / arity
		next := poolEdges.Get(&sc, parents)
		b.nodeLevel(edges, next)
		// Children are released only now: fresh parent lines took their
		// own references on them during the batch lookup, which requires
		// the builder's references to still be live.
		releaseAll(b.m, edges)
		edges = next
	}
	return Seg{Root: materializeRoot(b.m, edges[0]), Height: height}
}

// BuildBytes builds the canonical segment holding the byte string bs,
// packed little-endian, through the batch pipeline.
func (b *Builder) BuildBytes(bs []byte) Seg {
	return b.BuildWords(packWordsLE(bs), nil)
}

// CanonLeaves canonicalizes many raw-word leaf lines at once: ws is the
// flat concatenation of the leaves' words, arity per leaf (a short tail is
// zero-padded). Each returned edge owns one reference when it carries a
// PLID — the batch equivalent of one CanonLeaf call per leaf.
func (b *Builder) CanonLeaves(ws []uint64) []Edge {
	arity := b.m.LineWords()
	edges := make([]Edge, (len(ws)+arity-1)/arity)
	b.leafLevel(ws, nil, edges)
	return edges
}

// CanonNodes canonicalizes many independent interior nodes at once:
// children is the flat concatenation of the nodes' child edges, arity per
// node (a short tail reads as zero subtrees). Ownership follows CanonNode:
// child edges are borrowed (release them after the call if you own them)
// and each returned edge owns one reference when it carries a PLID.
func (b *Builder) CanonNodes(children []Edge) []Edge {
	arity := b.m.LineWords()
	parents := make([]Edge, (len(children)+arity-1)/arity)
	b.nodeLevel(children, parents)
	return parents
}

// levelScratch hands out the per-level content/pending buffers, reused
// across levels and builds. Contents are written only where pending is
// set, and resolvePending reads only those slots, so stale content from
// a previous level is harmless; pending itself is cleared here.
func (b *Builder) levelScratch(n int) ([]word.Content, []bool) {
	if cap(b.scratchC) < n {
		b.scratchC = make([]word.Content, n)
		b.scratchP = make([]bool, n)
	}
	pending := b.scratchP[:n]
	clear(pending)
	return b.scratchC[:n], pending
}

// leafLevel canonicalizes the leaf level: edges[l] covers words
// ws[l*arity : (l+1)*arity] (missing tail words read as zero raw data).
func (b *Builder) leafLevel(ws []uint64, ts []word.Tag, edges []Edge) {
	contents, pending := b.levelScratch(len(edges))
	// The closure is created only on the parallel path: small levels call
	// the range worker directly, so a steady-state small build allocates
	// nothing (see the chunker/alloc pins).
	if b.workerCount(len(edges)) <= 1 {
		b.leafRange(ws, ts, edges, contents, pending, 0, len(edges))
	} else {
		b.parallel(len(edges), func(lo, hi int) {
			b.leafRange(ws, ts, edges, contents, pending, lo, hi)
		})
	}
	b.resolvePending(contents, pending, edges)
}

// leafRange canonicalizes leaves [lo, hi) — the body leafLevel runs
// inline or fans out across workers.
func (b *Builder) leafRange(ws []uint64, ts []word.Tag, edges []Edge, contents []word.Content, pending []bool, lo, hi int) {
	arity := b.m.LineWords()
	for l := lo; l < hi; l++ {
		base := l * arity
		c := word.NewContent(arity)
		allZero, allSmallRaw := true, true
		for i := 0; i < arity; i++ {
			var w uint64
			t := word.TagRaw
			if j := base + i; j < len(ws) {
				w = ws[j]
				if ts != nil {
					t = ts[j]
				}
			}
			c.W[i], c.T[i] = w, t
			if w != 0 || t != word.TagRaw {
				allZero = false
			}
			if t != word.TagRaw {
				allSmallRaw = false
			}
		}
		if allZero {
			edges[l] = ZeroEdge
			continue
		}
		if allSmallRaw {
			if iw, ok := word.PackInline(c.W[:arity], arity); ok {
				edges[l] = Edge{W: iw, T: word.TagInline}
				continue
			}
		}
		contents[l] = c
		pending[l] = true
	}
}

// nodeLevel canonicalizes one interior level: parents[p] covers child
// edges children[p*arity : (p+1)*arity] (missing tail children read as
// zero subtrees). Child edges are borrowed.
func (b *Builder) nodeLevel(children []Edge, parents []Edge) {
	contents, pending := b.levelScratch(len(parents))
	// Same closure discipline as leafLevel: allocate the capture only
	// when the level actually fans out.
	if b.workerCount(len(parents)) <= 1 {
		b.nodeRange(children, parents, contents, pending, 0, len(parents))
	} else {
		b.parallel(len(parents), func(lo, hi int) {
			b.nodeRange(children, parents, contents, pending, lo, hi)
		})
	}
	b.resolvePending(contents, pending, parents)
}

// nodeRange canonicalizes interior nodes [lo, hi) — the body nodeLevel
// runs inline or fans out across workers.
func (b *Builder) nodeRange(children []Edge, parents []Edge, contents []word.Content, pending []bool, lo, hi int) {
	arity := b.m.LineWords()
	plidBits := b.m.PLIDBits()
	for p := lo; p < hi; p++ {
		base := p * arity
		c := word.NewContent(arity)
		nz, idx := 0, -1
		for i := 0; i < arity; i++ {
			var e Edge
			if j := base + i; j < len(children) {
				e = children[j]
			}
			c.W[i], c.T[i] = e.W, e.T
			if !e.IsZero() {
				nz++
				idx = i
			}
		}
		if nz == 0 {
			parents[p] = ZeroEdge
			continue
		}
		if nz == 1 {
			// Path compaction, mirroring CanonNode exactly. The
			// Retain runs on a worker, which is safe: the memory
			// system is concurrency-safe and the child's reference
			// (held by the caller) keeps the target alive.
			child := children[base+idx]
			switch child.T {
			case word.TagPLID:
				if w, ok := word.EncodeCompact(word.PLID(child.W), []int{idx}, arity, plidBits); ok {
					b.m.Retain(word.PLID(child.W))
					parents[p] = Edge{W: w, T: word.TagCompact}
					continue
				}
			case word.TagCompact:
				// Prepend idx to the child's path on the stack: the
				// decode lands in sbuf[1:], leaving slot 0 free.
				var sbuf [word.MaxCompactPath + 1]int
				cp, path := word.DecodeCompactInto(child.W, arity, plidBits, sbuf[1:])
				sbuf[0] = idx
				if w, ok := word.EncodeCompact(cp, sbuf[:1+len(path)], arity, plidBits); ok {
					b.m.Retain(cp)
					parents[p] = Edge{W: w, T: word.TagCompact}
					continue
				}
			}
		}
		contents[p] = c
		pending[p] = true
	}
}

// resolvePending turns every pending content into an owned PLID edge:
// memo hits revalidate-and-retain the remembered line, the remainder is
// deduplicated within the level and looked up in one batch. Each use
// consumes its lookup's reference (duplicates retain their own); the
// memo records associations without taking references.
//
// Within-level dedupe keys on the content hash: a colliding pair of
// distinct contents simply is not deduplicated (the store dedups it with
// full accounting, exactly like the serial path), so collisions cost
// nothing but the lookup they would have cost anyway.
func (b *Builder) resolvePending(contents []word.Content, pending []bool, edges []Edge) {
	nPending := 0
	for i := range pending {
		if pending[i] {
			nPending++
		}
	}
	if nPending == 0 {
		return
	}
	uniqAt := b.uniqAt[:0] // edge index of each unique's first use
	dups := b.dups[:0]
	defer func() { b.dups = dups[:0] }()
	if b.firstOf == nil {
		b.firstOf = make(map[uint64]int32, nPending)
	} else {
		clear(b.firstOf)
	}
	firstOf := b.firstOf
	for i := range pending {
		if !pending[i] {
			continue
		}
		c := contents[i]
		if b.memo != nil {
			b.stats.MemoLookups++
			b.memoDecide()
			if p, ok := b.memo[c]; ok {
				if b.caps.RetainIfContent(p, c) {
					b.stats.MemoHits++
					edges[i] = PLIDEdge(p)
					continue
				}
				// Stale: the line was freed since it was remembered.
				delete(b.memo, c)
			}
		}
		h := c.Hash()
		if j, ok := firstOf[h]; ok && contents[uniqAt[j]] == c {
			dups = append(dups, builderDup{int32(i), j})
			continue
		} else if !ok {
			firstOf[h] = int32(len(uniqAt))
		}
		uniqAt = append(uniqAt, int32(i))
	}
	b.uniqAt = uniqAt
	if len(uniqAt) == 0 {
		return // everything hit the memo, so no duplicates were recorded
	}
	if cap(b.uniqs) < len(uniqAt) {
		b.uniqs = make([]word.Content, len(uniqAt))
	}
	uniqs := b.uniqs[:len(uniqAt)]
	for j, i := range uniqAt {
		uniqs[j] = contents[i]
	}
	plids := b.lookupAll(uniqs)
	for j, i := range uniqAt {
		p := plids[j]
		b.memoAdd(uniqs[j], p)
		edges[i] = PLIDEdge(p) // consumes the lookup's reference
	}
	for _, d := range dups {
		p := word.PLID(edges[uniqAt[d.uniq]].W)
		b.m.Retain(p)
		edges[d.edge] = PLIDEdge(p)
	}
}

// memoDecide runs the adaptive policy: the first memoWarmup
// consultations are warmup (every first occurrence of a content is
// necessarily a miss, so the cold region says nothing about redundancy),
// then the *next* memoWarmup consultations are the observation window
// whose hit rate settles the insert decision. After that first decision
// a fresh observation window re-opens every memoRecheck consultations
// and the decision is re-taken — a long-lived Builder whose workload
// shifts from redundant to fresh (or back) flips the policy instead of
// being stuck with the first verdict.
func (b *Builder) memoDecide() {
	l := b.stats.MemoLookups
	if b.windowOpen {
		obs := l - b.winLookups
		if obs < b.memoWarmup {
			return
		}
		off := (b.stats.MemoHits-b.winHits)*100 < obs*b.memoMinHitPct
		if b.stats.MemoDecided {
			b.stats.MemoRedecisions++
			if off != b.stats.MemoInsertsOff {
				b.stats.MemoFlips++
			}
		}
		b.stats.MemoDecided = true
		b.stats.MemoInsertsOff = off
		b.windowOpen = false
		b.nextWindowAt = l + b.memoRecheck
		return
	}
	if !b.stats.MemoDecided {
		// First window opens once the cold-start warmup has passed.
		// memoWarmup is read here (not cached at construction) so tests
		// shrinking it after NewBuilder see the smaller window.
		if l >= b.memoWarmup {
			b.windowOpen = true
			b.winLookups, b.winHits = l, b.stats.MemoHits
		}
		return
	}
	if l >= b.nextWindowAt {
		b.windowOpen = true
		b.winLookups, b.winHits = l, b.stats.MemoHits
	}
}

// memoAdd records c -> p without taking a reference; the entry is
// revalidated (RetainIfContent) before every reuse. While the adaptive
// policy's latest observation says inserts don't pay, inserts stop — the
// table keeps serving lookups, it just stops growing on corpora that
// don't repay the insert. During an open re-observation window inserts
// run probationally even when switched off, so a workload that turned
// redundant can show hits again and flip the policy back on.
func (b *Builder) memoAdd(c word.Content, p word.PLID) {
	if !b.caps.CanRetainContent() || b.memoCap <= 0 || len(b.memo) >= b.memoCap {
		return
	}
	b.memoDecide()
	if b.stats.MemoInsertsOff && !b.windowOpen {
		return
	}
	if b.memo == nil {
		b.memo = make(map[word.Content]word.PLID)
	}
	b.memo[c] = p
	b.stats.MemoInserts++
}

// lookupAll resolves the unique contents of one level, sharding large
// batches across the worker pool: shards hold disjoint contents, so their
// stripe groups lock independently.
func (b *Builder) lookupAll(cs []word.Content) []word.PLID {
	if cap(b.plids) < len(cs) {
		b.plids = make([]word.PLID, len(cs))
	}
	out := b.plids[:len(cs)]
	w := b.workerCount(len(cs))
	if !b.caps.HasBatchLookup() || w <= 1 {
		// Serial memories take no per-batch locks, so sharding a fallback
		// loop across workers buys nothing; one LookupBatchInto call
		// covers both the native single-shard case and the serial
		// fallback, writing into the Builder's reused result buffer.
		b.caps.LookupBatchInto(cs, out)
		return out
	}
	chunk := (len(cs) + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < len(cs); lo += chunk {
		hi := min(lo+chunk, len(cs))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			b.caps.LookupBatchInto(cs[lo:hi], out[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// parallel runs fn over [0, n) in contiguous chunks on the worker pool,
// inline when the level is too small to split.
func (b *Builder) parallel(n int, fn func(lo, hi int)) {
	w := b.workerCount(n)
	if w <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// workerCount sizes the pool for a level of n independent items.
func (b *Builder) workerCount(n int) int {
	if n < minParallel || b.workers <= 1 {
		return 1
	}
	w := b.workers
	if max := n / minChunk; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}
