package segment

import (
	"repro/internal/pool"
	"repro/internal/word"
)

// Package-level scratch pools for the wave engines. Everything a wave
// borrows from these is released before the engine returns (via a
// per-call pool.Scratch, or an explicit Put in the engine's teardown
// walk); results handed to callers are always built with plain make and
// never alias pooled storage. See internal/pool for the ownership rules
// and DESIGN.md "Scratch pooling".
var (
	poolU64       = pool.NewSlice[uint64]("segment.u64")
	poolTags      = pool.NewSlice[word.Tag]("segment.tag")
	poolBytes     = pool.NewSlice[byte]("segment.byte")
	poolEdges     = pool.NewSlice[Edge]("segment.edge")
	poolBools     = pool.NewSlice[bool]("segment.bool")
	poolInts      = pool.NewSlice[int]("segment.int")
	poolReqs      = pool.NewSlice[bulkReq]("segment.bulkreq")
	poolBulkNodes = pool.NewSlice[bulkNode]("segment.bulknode")
	poolPLIDs     = pool.NewSlice[word.PLID]("segment.plid")
	poolContents  = pool.NewSlice[word.Content]("segment.content")
	poolUpdates   = pool.NewSlice[Update]("segment.update")
	poolScanItems = pool.NewSlice[scanItem]("segment.scanitem")
	poolWLevels   = pool.NewSlice[[]*wnode]("segment.wlevels", pool.WithClearOnPut())
	poolWNodes    = pool.NewSlice[*wnode]("segment.wnodes", pool.WithClearOnPut())
	poolPlidAt    = pool.NewMap[word.PLID, int]("segment.dedup.plid")
	poolIdxAt     = pool.NewMap[uint64, int]("segment.dedup.idx")
)
