package segment

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestAdaptiveMemoDisablesInsertsOnLowHitRate pins the adaptive policy:
// on a corpus with no cross-build redundancy the memo's observed hit
// rate stays near zero, so after the warmup window closes the Builder
// must stop inserting — while lookups continue against the table it
// already has.
func TestAdaptiveMemoDisablesInsertsOnLowHitRate(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	b := NewBuilder(m, 1)
	defer b.Close()
	b.memoWarmup = 256 // close the window quickly under test sizes

	rng := rand.New(rand.NewSource(11))
	distinct := func(n int) []uint64 {
		ws := make([]uint64, n)
		for i := range ws {
			ws[i] = rng.Uint64()
		}
		return ws
	}
	for b.Stats().MemoLookups < 4*b.memoWarmup {
		b.BuildWords(distinct(256), nil)
	}
	st := b.Stats()
	if !st.MemoDecided {
		t.Fatalf("warmup window did not close: %+v", st)
	}
	if !st.MemoInsertsOff {
		t.Fatalf("inserts stayed on despite hit rate %.3f: %+v", st.HitRate(), st)
	}
	insertsAtDecision := st.MemoInserts

	b.BuildWords(distinct(256), nil)
	after := b.Stats()
	if after.MemoInserts != insertsAtDecision {
		t.Fatalf("inserts continued after decision: %d -> %d", insertsAtDecision, after.MemoInserts)
	}
	if after.MemoLookups <= st.MemoLookups {
		t.Fatal("lookups stopped with inserts; they must continue")
	}
}

// TestAdaptiveMemoKeepsInsertsOnHighHitRate is the other branch: a
// redundant corpus keeps the hit rate above threshold, so inserts stay
// enabled after the decision.
func TestAdaptiveMemoKeepsInsertsOnHighHitRate(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	b := NewBuilder(m, 1)
	defer b.Close()
	b.memoWarmup = 256

	rng := rand.New(rand.NewSource(12))
	base := make([]uint64, 512)
	for i := range base {
		base[i] = rng.Uint64()
	}
	for b.Stats().MemoLookups < 4*b.memoWarmup {
		b.BuildWords(base, nil) // same content every build: pure memo hits
	}
	st := b.Stats()
	if !st.MemoDecided {
		t.Fatalf("warmup window did not close: %+v", st)
	}
	if st.MemoInsertsOff {
		t.Fatalf("inserts disabled despite hit rate %.3f: %+v", st.HitRate(), st)
	}
	if st.HitRate() < 0.5 {
		t.Fatalf("redundant corpus hit rate unexpectedly low: %.3f", st.HitRate())
	}
}

// TestAdaptiveMemoFlipsOffWhenRedundancyEnds pins periodic re-observation:
// a corpus that starts redundant (inserts stay on) and turns fresh must be
// re-observed and flip inserts off, with the re-decision counted.
func TestAdaptiveMemoFlipsOffWhenRedundancyEnds(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	b := NewBuilder(m, 1)
	defer b.Close()
	b.memoWarmup = 256
	b.memoRecheck = 512

	rng := rand.New(rand.NewSource(13))
	base := make([]uint64, 512)
	for i := range base {
		base[i] = rng.Uint64()
	}
	for b.Stats().MemoLookups < 4*b.memoWarmup {
		b.BuildWords(base, nil)
	}
	st := b.Stats()
	if !st.MemoDecided || st.MemoInsertsOff {
		t.Fatalf("redundant phase should settle with inserts on: %+v", st)
	}

	distinct := func(n int) []uint64 {
		ws := make([]uint64, n)
		for i := range ws {
			ws[i] = rng.Uint64()
		}
		return ws
	}
	for i := 0; i < 200 && b.Stats().MemoFlips == 0; i++ {
		b.BuildWords(distinct(256), nil)
	}
	st = b.Stats()
	if st.MemoFlips == 0 {
		t.Fatalf("fresh phase never flipped inserts off: %+v", st)
	}
	if !st.MemoInsertsOff {
		t.Fatalf("flip recorded but inserts still on: %+v", st)
	}
	if st.MemoRedecisions == 0 {
		t.Fatalf("flip without a recorded re-decision: %+v", st)
	}
}

// TestAdaptiveMemoFlipsBackOnWhenRedundancyReturns is the reverse
// direction: after inserts go off on a fresh corpus, re-observation
// windows insert probationally, so a corpus that turns redundant is
// detected and inserts come back on.
func TestAdaptiveMemoFlipsBackOnWhenRedundancyReturns(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	b := NewBuilder(m, 1)
	defer b.Close()
	b.memoWarmup = 256
	b.memoRecheck = 512

	rng := rand.New(rand.NewSource(14))
	distinct := func(n int) []uint64 {
		ws := make([]uint64, n)
		for i := range ws {
			ws[i] = rng.Uint64()
		}
		return ws
	}
	for b.Stats().MemoLookups < 4*b.memoWarmup {
		b.BuildWords(distinct(256), nil)
	}
	st := b.Stats()
	if !st.MemoDecided || !st.MemoInsertsOff {
		t.Fatalf("fresh phase should settle with inserts off: %+v", st)
	}

	base := make([]uint64, 512)
	for i := range base {
		base[i] = rng.Uint64()
	}
	// The first open re-observation window inserts base's lines
	// probationally; later windows then observe hits on them and flip.
	for i := 0; i < 200 && b.Stats().MemoInsertsOff; i++ {
		b.BuildWords(base, nil)
	}
	st = b.Stats()
	if st.MemoInsertsOff {
		t.Fatalf("redundant phase never flipped inserts back on: %+v", st)
	}
	if st.MemoFlips == 0 || st.MemoRedecisions == 0 {
		t.Fatalf("inserts on without a recorded flip: %+v", st)
	}
}

// TestAdaptiveMemoDefaultsUndecidedWhenSmall checks small builds never
// reach the warmup window, so the policy stays undecided and inserts on.
func TestAdaptiveMemoDefaultsUndecidedWhenSmall(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	b := NewBuilder(m, 1)
	defer b.Close()
	b.BuildBytes([]byte("one small build, far below the warmup window"))
	st := b.Stats()
	if st.MemoDecided {
		t.Fatalf("tiny build closed the warmup window: %+v", st)
	}
}
