package segment

import (
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

// Escape-regression test for the scratch-pooling ownership contract:
// every result a wave engine returns is plain heap memory the caller
// owns outright, never a view into pooled scratch. The test scribbles
// over each returned buffer, runs every engine again (recycling the same
// pools), and checks the fresh results against per-word ReadWord ground
// truth — aliasing between a result and pooled scratch would surface as
// corruption in either direction.

func TestEscapeResultsDontAliasPooledScratch(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	ws := make([]uint64, 300)
	for i := range ws {
		if i%4 != 3 {
			ws[i] = uint64(i)*0x9E3779B9 + 7
		}
	}
	seg := BuildWords(m, ws, nil)
	idxs := []uint64{0, 7, 8, 31, 64, 65, 128, 255, 299}

	expect := func(label string, got []uint64, at []uint64) {
		t.Helper()
		for j, idx := range at {
			want, _ := ReadWord(m, seg, idx)
			if got[j] != want {
				t.Fatalf("%s[%d] (idx %d) = %#x, want %#x", label, j, idx, got[j], want)
			}
		}
	}

	runAll := func(round string) ([]uint64, []word.Tag, []uint64, [][]uint64, [][]Edge) {
		vals, tags := GatherWords(m, seg, idxs)
		expect(round+" gather", vals, idxs)
		bulk := ReadWordsBulk(m, seg, 5, 40)
		at := make([]uint64, 40)
		for i := range at {
			at[i] = uint64(5 + i)
		}
		expect(round+" bulk", bulk, at)
		ranges := GatherRanges(m, []Range{
			{Seg: seg, Off: 0, N: 16},
			{Seg: seg, Off: 100, N: 32},
		})
		expect(round+" range0", ranges[0], seqIdx(0, 16))
		expect(round+" range1", ranges[1], seqIdx(100, 32))
		kids := ChildrenBulk(m, []Edge{PLIDEdge(seg.Root)}, seg.Height)
		if len(kids[0]) != m.LineWords() {
			t.Fatalf("%s: ChildrenBulk arity %d", round, len(kids[0]))
		}
		return vals, tags, bulk, ranges, kids
	}

	vals, tags, bulk, ranges, kids := runAll("first")

	// Scribble over every returned buffer. If any of them aliased pooled
	// scratch, the poison would flow into the next round's wave state.
	for i := range vals {
		vals[i] = ^uint64(0)
		tags[i] = word.TagPLID
	}
	for i := range bulk {
		bulk[i] = 0xDEADBEEF
	}
	for _, r := range ranges {
		for i := range r {
			r[i] = 0xABAD1DEA
		}
	}
	for i := range kids[0] {
		kids[0][i] = Edge{W: ^uint64(0), T: word.TagCompact}
	}

	// Interleave a scan and a write so the scanner pool and wnode pool
	// recycle between the scribble and the re-run.
	ScanWords(m, seg, 0, func(uint64, uint64, word.Tag) bool { return true })
	s2, _ := WriteBatch(m, seg, []Update{{Idx: 3, W: ws[3], T: word.TagRaw}})
	ReleaseSeg(m, s2)

	runAll("second")
}

func seqIdx(off uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = off + uint64(i)
	}
	return out
}
