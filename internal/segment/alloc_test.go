package segment

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/word"
)

// Allocation pins for the wave engines (the zero-allocation contract of
// the scratch-pooling work): after a warmup that populates the package
// pools and the machine's LLC, a steady-state wave pays zero amortized
// heap allocations. The pins run only without the race detector (its
// instrumentation allocates) and never in parallel (AllocsPerRun
// measures the whole process).

// allocSeg builds the shared test fixture: a three-level segment with a
// mix of dense and sparse regions so scans, gathers and writes all cross
// real interior lines.
func allocSeg(m word.Mem) (Seg, []uint64) {
	ws := make([]uint64, 512)
	for i := range ws {
		if i%3 != 2 { // leave some zero words so elision paths run too
			ws[i] = uint64(i)*2654435761 + 1
		}
	}
	return BuildWords(m, ws, nil), ws
}

func TestAllocScanWords(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation pins are meaningless under -race")
	}
	m := core.NewMachine(core.TestConfig())
	seg, _ := allocSeg(m)
	var sink uint64
	scan := func() {
		ScanWords(m, seg, 0, func(idx uint64, w uint64, tg word.Tag) bool {
			sink += w
			return true
		})
	}
	for i := 0; i < 5; i++ { // populate scanner pool, wave buffers, LLC
		scan()
	}
	if avg := testing.AllocsPerRun(20, scan); avg != 0 {
		t.Errorf("steady-state ScanWords allocates %.1f times per run, want 0", avg)
	}
	_ = sink
}

func TestAllocGatherWords(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation pins are meaningless under -race")
	}
	m := core.NewMachine(core.TestConfig())
	seg, _ := allocSeg(m)
	idxs := make([]uint64, 64)
	for i := range idxs {
		idxs[i] = uint64(i * 7 % 512)
	}
	vals := make([]uint64, len(idxs))
	tags := make([]word.Tag, len(idxs))
	gather := func() { GatherWordsInto(m, seg, idxs, vals, tags) }
	for i := 0; i < 5; i++ {
		gather()
	}
	if avg := testing.AllocsPerRun(20, gather); avg != 0 {
		t.Errorf("steady-state GatherWordsInto allocates %.1f times per run, want 0", avg)
	}
}

func TestAllocWriteBatch(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation pins are meaningless under -race")
	}
	m := core.NewMachine(core.TestConfig())
	seg, ws := allocSeg(m)
	// Steady state: write the words the segment already holds. The result
	// root equals the input root, so the store neither allocates nor frees
	// lines and every run exercises the full wave (descent, batch reads,
	// canonicalization, batch lookups) with stable line population.
	ups := make([]Update, 48)
	for i := range ups {
		idx := uint64(i * 11 % 512)
		ups[i] = Update{Idx: idx, W: ws[idx], T: word.TagRaw}
	}
	write := func() {
		out, _ := WriteBatch(m, seg, ups)
		ReleaseSeg(m, out)
	}
	for i := 0; i < 5; i++ {
		write()
	}
	if avg := testing.AllocsPerRun(20, write); avg != 0 {
		t.Errorf("steady-state WriteBatch allocates %.1f times per run, want 0", avg)
	}
}
