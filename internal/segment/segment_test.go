package segment

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/word"
)

func machines(t *testing.T) []*core.Machine {
	t.Helper()
	var ms []*core.Machine
	for _, ls := range []int{16, 32, 64} {
		ms = append(ms, core.NewMachine(core.Config{
			LineBytes: ls, BucketBits: 12, DataWays: 12, CacheLines: 512, CacheWays: 4,
		}))
	}
	return ms
}

func TestBuildReadRoundTrip(t *testing.T) {
	for _, m := range machines(t) {
		data := []byte("This is a long string containing another string that is short.")
		s := BuildBytes(m, data)
		got := ReadBytes(m, s, 0, uint64(len(data)))
		if !bytes.Equal(got, data) {
			t.Fatalf("arity %d: round trip mismatch:\n got %q\nwant %q", m.LineWords(), got, data)
		}
	}
}

func TestContentUniquenessExtendsToSegments(t *testing.T) {
	// §2.2: rebuilding the same content yields the same root PLID.
	for _, m := range machines(t) {
		a := BuildBytes(m, []byte("identical segment content, built twice"))
		b := BuildBytes(m, []byte("identical segment content, built twice"))
		if !a.Equal(b) {
			t.Fatalf("arity %d: equal content, roots %#x vs %#x", m.LineWords(), a.Root, b.Root)
		}
		c := BuildBytes(m, []byte("identical segment content, built once!"))
		if a.Equal(c) {
			t.Fatalf("arity %d: different content compared equal", m.LineWords())
		}
	}
}

func TestSubstringSharesLines(t *testing.T) {
	// Figure 1: a segment that is a prefix of another shares its leaves.
	m := core.NewMachine(core.TestConfig())
	long := BuildBytes(m, []byte("This is a long string containing Another string that is short. "))
	before := m.LiveLines()
	short := BuildBytes(m, []byte("This is a long string containing Another string")) // 48 B = 3 leaves
	added := m.LiveLines() - before
	mt := Measure(m, short)
	if added >= mt.Lines {
		t.Fatalf("substring allocated %d new lines for a %d-line DAG; leaves must be shared",
			added, mt.Lines)
	}
	_ = long
}

func TestZeroSegment(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	s := BuildWords(m, make([]uint64, 64), nil)
	if s.Root != word.Zero {
		t.Fatalf("all-zero content root = %#x, want zero PLID", s.Root)
	}
	if v, _ := ReadWord(m, s, 13); v != 0 {
		t.Fatal("zero segment read non-zero")
	}
	if m.LiveLines() != 0 {
		t.Fatalf("zero segment allocated %d lines", m.LiveLines())
	}
}

func TestSparseReadsBeyondCapacity(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	s := BuildWords(m, []uint64{1, 2}, nil)
	if v, _ := ReadWord(m, s, 1<<40); v != 0 {
		t.Fatal("read beyond capacity non-zero")
	}
}

func TestPathCompactionSparse(t *testing.T) {
	// A single non-zero word in a huge index space must use O(1) lines,
	// not one line per level (Figure 4a).
	m := core.NewMachine(core.TestConfig())
	tx := NewTxn(m, NewSparse(12)) // arity 2: capacity 2^13 words
	tx.WriteWord(5000, 77, word.TagRaw)
	s := tx.Commit()
	if v, _ := ReadWord(m, s, 5000); v != 77 {
		t.Fatalf("read = %d, want 77", v)
	}
	if v, _ := ReadWord(m, s, 5001); v != 0 {
		t.Fatal("neighbor of sparse word non-zero")
	}
	mt := Measure(m, s)
	if mt.Lines > 4 {
		t.Fatalf("sparse single-element segment uses %d lines; path compaction broken", mt.Lines)
	}
	if mt.CompactRefs == 0 {
		t.Fatal("no compact edges in a sparse DAG")
	}
}

func TestDataCompactionInlinesSmallValues(t *testing.T) {
	// Figure 4b: small values inline into the parent, eliding leaf lines.
	m := core.NewMachine(core.TestConfig()) // arity 2: fields are 32-bit
	ws := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	s := BuildWords(m, ws, nil)
	mt := Measure(m, s)
	if mt.InlineWords == 0 {
		t.Fatal("no inline edges for small-value leaves")
	}
	big := []uint64{1 << 40, 2 << 40, 3 << 40, 4 << 40, 5 << 40, 6 << 40, 7 << 40, 8 << 40}
	sb := BuildWords(m, big, nil)
	if Measure(m, sb).Lines <= mt.Lines {
		t.Fatal("large values should need more lines than inlined small values")
	}
	for i, w := range ws {
		if v, _ := ReadWord(m, s, uint64(i)); v != w {
			t.Fatalf("inline read [%d] = %d, want %d", i, v, w)
		}
	}
}

func TestCanonicalAcrossConstructionOrder(t *testing.T) {
	// Canonical representation: building dense vs. writing sparsely in
	// arbitrary order must converge to the same root.
	m := core.NewMachine(core.TestConfig())
	ws := make([]uint64, 32)
	ws[3], ws[17], ws[31] = 100, 200, 300
	dense := BuildWords(m, ws, nil)

	tx := NewTxn(m, NewSparse(dense.Height))
	for _, i := range []int{31, 3, 17} {
		tx.WriteWord(uint64(i), ws[i], word.TagRaw)
	}
	sparse := tx.Commit()
	if !dense.Equal(sparse) {
		t.Fatalf("dense root %#x != sparse root %#x", dense.Root, sparse.Root)
	}
}

func TestTxnReadYourWrites(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	base := BuildWords(m, []uint64{10, 20, 30, 40}, nil)
	tx := NewTxn(m, base)
	if v, _ := tx.ReadWord(1); v != 20 {
		t.Fatalf("pre-write read = %d", v)
	}
	tx.WriteWord(1, 99, word.TagRaw)
	if v, _ := tx.ReadWord(1); v != 99 {
		t.Fatal("transaction does not see its own write")
	}
	if v, _ := ReadWord(m, base, 1); v != 20 {
		t.Fatal("uncommitted write visible in original segment (snapshot broken)")
	}
	s := tx.Commit()
	if v, _ := ReadWord(m, s, 1); v != 99 {
		t.Fatal("committed write lost")
	}
	if v, _ := ReadWord(m, base, 1); v != 20 {
		t.Fatal("commit mutated the original segment")
	}
}

func TestTxnAbortReleasesEverything(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	base := BuildWords(m, []uint64{1, 2, 3, 4, 5, 6, 7, 8}, nil)
	live := m.LiveLines()
	tx := NewTxn(m, base)
	tx.WriteWord(2, 42, word.TagRaw)
	tx.Abort()
	if m.LiveLines() != live {
		t.Fatalf("abort leaked lines: %d -> %d", live, m.LiveLines())
	}
	if v, _ := ReadWord(m, base, 2); v != 3 {
		t.Fatal("abort damaged the original segment")
	}
}

func TestTxnGrowth(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	base := BuildWords(m, []uint64{1}, nil)
	tx := NewTxn(m, base)
	tx.WriteWord(1000, 7, word.TagRaw)
	s := tx.Commit()
	if s.Height <= base.Height {
		t.Fatal("segment did not grow")
	}
	if v, _ := ReadWord(m, s, 0); v != 1 {
		t.Fatal("growth lost original content")
	}
	if v, _ := ReadWord(m, s, 1000); v != 7 {
		t.Fatal("growth lost new content")
	}
}

func TestCopyOnWriteSharing(t *testing.T) {
	// §2.2 / Figure 1b: modifying one element of a large segment shares
	// all untouched subtrees with the original.
	m := core.NewMachine(core.TestConfig())
	ws := make([]uint64, 256)
	rng := rand.New(rand.NewSource(5))
	for i := range ws {
		ws[i] = rng.Uint64() // large values: no inlining, full DAG
	}
	base := BuildWords(m, ws, nil)
	baseLines := Measure(m, base).Lines
	before := m.LiveLines()
	tx := NewTxn(m, base)
	tx.WriteWord(128, 424242, word.TagRaw)
	s := tx.Commit()
	added := m.LiveLines() - before
	if added > uint64(s.Height+2) {
		t.Fatalf("single-word update allocated %d lines; want <= height+2 = %d (DAG %d lines)",
			added, s.Height+2, baseLines)
	}
}

func TestNextNonZero(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	tx := NewTxn(m, NewSparse(10))
	idxs := []uint64{0, 7, 63, 64, 500, 1999}
	for _, i := range idxs {
		tx.WriteWord(i, i+1, word.TagRaw)
	}
	s := tx.Commit()
	var got []uint64
	for at, ok := NextNonZero(m, s, 0); ok; at, ok = NextNonZero(m, s, at+1) {
		got = append(got, at)
	}
	if len(got) != len(idxs) {
		t.Fatalf("found %v, want %v", got, idxs)
	}
	for i := range idxs {
		if got[i] != idxs[i] {
			t.Fatalf("found %v, want %v", got, idxs)
		}
	}
}

func TestNextNonZeroEmpty(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	if _, ok := NextNonZero(m, NewSparse(8), 0); ok {
		t.Fatal("empty segment reported a non-zero element")
	}
}

func TestNextNonZeroSeesTaggedZeroWord(t *testing.T) {
	// A word holding the zero value with a non-raw tag (e.g. a stored
	// VSID of 0 is impossible, but a tagged word must not be skipped).
	m := core.NewMachine(core.TestConfig())
	tx := NewTxn(m, NewSparse(4))
	tx.WriteWord(9, 123, word.TagVSID)
	s := tx.Commit()
	at, ok := NextNonZero(m, s, 0)
	if !ok || at != 9 {
		t.Fatalf("NextNonZero = %d,%v want 9,true", at, ok)
	}
}

func TestBuildVsTxnPropertyRandom(t *testing.T) {
	// Property: for random sparse contents, dense build and transactional
	// writes produce identical roots, and reads return what was written.
	f := func(seed int64, raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		m := core.NewMachine(core.Config{
			LineBytes: 16, BucketBits: 10, DataWays: 12, CacheLines: 128, CacheWays: 4,
		})
		const space = 512
		ws := make([]uint64, space)
		rng := rand.New(rand.NewSource(seed))
		for _, r := range raw {
			ws[int(r)%space] = rng.Uint64() >> (r % 33)
		}
		dense := BuildWords(m, ws, nil)
		tx := NewTxn(m, NewSparse(dense.Height))
		perm := rng.Perm(space)
		for _, i := range perm {
			if ws[i] != 0 {
				tx.WriteWord(uint64(i), ws[i], word.TagRaw)
			}
		}
		sparse := tx.Commit()
		if !dense.Equal(sparse) {
			return false
		}
		for i, w := range ws {
			if v, _ := ReadWord(m, dense, uint64(i)); v != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRefCountsBalanceAfterBuildAndRelease(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	a := BuildBytes(m, []byte("segment a: some shared content between segments"))
	b := BuildBytes(m, []byte("segment b: some shared content between segments"))
	ext := map[word.PLID]uint64{}
	ext[a.Root]++
	ext[b.Root]++
	if err := m.CheckConsistency(ext); err != nil {
		t.Fatal(err)
	}
	ReleaseSeg(m, a)
	delete(ext, a.Root)
	ext[b.Root]++ // re-add in case roots collide (they should not here)
	ext[b.Root]--
	if err := m.CheckConsistency(ext); err != nil {
		t.Fatal(err)
	}
	ReleaseSeg(m, b)
	if m.LiveLines() != 0 {
		t.Fatalf("leak: %d live lines after releasing all segments", m.LiveLines())
	}
}

func TestMeasureSharedSubtreesCountedOnce(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	rep := bytes.Repeat([]byte("0123456789ABCDEF"), 32) // identical leaves
	s := BuildBytes(m, rep)
	mt := Measure(m, s)
	if mt.Lines >= 32 {
		t.Fatalf("repeating content uses %d lines; dedup should collapse identical leaves", mt.Lines)
	}
}

func TestHeightFor(t *testing.T) {
	cases := []struct {
		arity int
		n     uint64
		want  int
	}{
		{2, 1, 0}, {2, 2, 0}, {2, 3, 1}, {2, 4, 1}, {2, 5, 2},
		{8, 8, 0}, {8, 9, 1}, {8, 64, 1}, {8, 65, 2},
	}
	for _, c := range cases {
		if got := HeightFor(c.arity, c.n); got != c.want {
			t.Errorf("HeightFor(%d,%d) = %d, want %d", c.arity, c.n, got, c.want)
		}
	}
}

func TestReadBytesUnaligned(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	data := []byte("unaligned byte reads across word and line boundaries")
	s := BuildBytes(m, data)
	got := ReadBytes(m, s, 11, 20)
	if !bytes.Equal(got, data[11:31]) {
		t.Fatalf("got %q want %q", got, data[11:31])
	}
}
