package segment

import "repro/internal/word"

// Txn is a write transaction over one segment, modelling the transient
// lines of §3.3: updated nodes live in a private, non-deduplicated area
// (plain Go memory here, per-core scratch lines in the hardware) and are
// converted into permanent content-unique lines only at commit, amortizing
// the lookup-by-content cost over many writes. Abort discards everything,
// reverting to the original root.
//
// A Txn does not touch the virtual segment map; package iterreg and the
// core Machine layer commit the resulting root with CAS or merge-update.
type Txn struct {
	m      word.Mem
	orig   Seg
	root   *transNode
	height int
	writes uint64
}

// transNode is a transient (mutable, private) DAG node. Leaves store their
// words in edges (an Edge is exactly one tagged word); interior nodes
// store child edges, overridden by kids[i] when the child itself has been
// made transient. owned[i] records whether edges[i] carries a reference we
// must release (freshly canonicalized children do; edges borrowed from the
// original immutable DAG do not).
type transNode struct {
	level int
	edges []Edge
	kids  []*transNode
	owned []bool
}

func newTransNode(arity, level int) *transNode {
	return &transNode{
		level: level,
		edges: make([]Edge, arity),
		kids:  make([]*transNode, arity),
		owned: make([]bool, arity),
	}
}

// expand materializes a transient copy of the subtree edge at level.
// The produced node borrows the original DAG's lines (copy-on-write).
func expand(m word.Mem, e Edge, level int) *transNode {
	n := newTransNode(m.LineWords(), level)
	copy(n.edges, Children(m, e, level))
	return n
}

// NewTxn opens a transaction over seg. The transaction holds no extra
// references; the caller must keep seg alive until Commit or Abort.
func NewTxn(m word.Mem, seg Seg) *Txn {
	return &Txn{m: m, orig: seg, height: seg.Height}
}

// Height returns the current logical height (it grows if writes land
// beyond the original capacity).
func (t *Txn) Height() int { return t.height }

// Writes returns the number of WriteWord calls buffered so far.
func (t *Txn) Writes() uint64 { return t.writes }

func (t *Txn) ensureRoot() {
	if t.root == nil {
		t.root = expand(t.m, PLIDEdge(t.orig.Root), t.height)
	}
}

// grow raises the logical height until idx fits, re-rooting the transient
// tree the way a HICAMP array grows without reallocation (§4.1).
func (t *Txn) grow(idx uint64) {
	arity := t.m.LineWords()
	for idx >= capacity(arity, t.height) {
		t.ensureRoot()
		parent := newTransNode(arity, t.height+1)
		parent.kids[0] = t.root
		t.root = parent
		t.height++
	}
}

// WriteWord sets the tagged word at idx, growing the segment as needed.
func (t *Txn) WriteWord(idx uint64, v uint64, tag word.Tag) {
	t.grow(idx)
	t.ensureRoot()
	t.writes++
	n := t.root
	for n.level > 0 {
		arity := t.m.LineWords()
		sub := capacity(arity, n.level-1)
		child := int(idx / sub)
		idx %= sub
		if n.kids[child] == nil {
			// Expand a transient copy; it borrows the old subtree's
			// lines (copy-on-write). Any reference n.edges[child] owns
			// stays in place until commit releases it.
			n.kids[child] = expand(t.m, n.edges[child], n.level-1)
		}
		n = n.kids[child]
	}
	n.edges[int(idx)] = Edge{W: v, T: tag}
}

// ReadWord reads through the transaction, observing pending writes.
func (t *Txn) ReadWord(idx uint64) (uint64, word.Tag) {
	arity := t.m.LineWords()
	if t.root == nil {
		return ReadWord(t.m, t.orig, idx)
	}
	if idx >= capacity(arity, t.height) {
		return 0, word.TagRaw
	}
	n := t.root
	for n.level > 0 {
		sub := capacity(arity, n.level-1)
		child := int(idx / sub)
		idx %= sub
		if n.kids[child] == nil {
			return readEdge(t.m, n.edges[child], n.level-1, idx)
		}
		n = n.kids[child]
	}
	e := n.edges[int(idx)]
	return e.W, e.T
}

// Commit converts every transient node into permanent content-unique
// lines bottom-up (the §3.3 commit) and returns the new segment. The
// caller owns one reference on the returned root. The transaction must
// not be used afterwards. Commit does not publish the root anywhere; use
// segmap CAS / merge-update for that.
func (t *Txn) Commit() Seg {
	if t.root == nil {
		RetainSeg(t.m, t.orig)
		return Seg{Root: t.orig.Root, Height: t.height}
	}
	e := t.commitNode(t.root)
	root := materializeRoot(t.m, e)
	t.root = nil
	return Seg{Root: root, Height: t.height}
}

func (t *Txn) commitNode(n *transNode) Edge {
	arity := t.m.LineWords()
	for i := 0; i < arity; i++ {
		if n.kids[i] == nil {
			continue
		}
		fresh := t.commitNode(n.kids[i])
		if n.owned[i] {
			n.edges[i].Release(t.m)
		}
		n.edges[i], n.owned[i] = fresh, true
		n.kids[i] = nil
	}
	var out Edge
	if n.level == 0 {
		ws := make([]uint64, arity)
		ts := make([]word.Tag, arity)
		for i, e := range n.edges {
			ws[i], ts[i] = e.W, e.T
		}
		out = CanonLeaf(t.m, ws, ts)
	} else {
		out = CanonNode(t.m, n.edges)
	}
	// Release the references this node owned; the canonical line (or
	// compact edge) acquired its own.
	for i := 0; i < arity; i++ {
		if n.owned[i] {
			n.edges[i].Release(t.m)
			n.owned[i] = false
		}
	}
	return out
}

// Abort discards all buffered writes. The original segment is untouched.
func (t *Txn) Abort() {
	if t.root == nil {
		return
	}
	var drop func(n *transNode)
	drop = func(n *transNode) {
		for i := range n.kids {
			if n.kids[i] != nil {
				drop(n.kids[i])
			}
			if n.owned[i] {
				n.edges[i].Release(t.m)
			}
		}
	}
	drop(t.root)
	t.root = nil
}
