package segment

import (
	"testing"

	"repro/internal/pool"
	"repro/internal/word"
)

// White-box pins for the map retention bound in the pooled wave state:
// a dedup map grown past pool.KeepMapEntries by one oversized call must
// not survive into the freelist, where its O(grown capacity) clear cost
// would tax every later (typically much smaller) engine call. This was
// a live bug: one 65536-key bulk load made every subsequent single-key
// WriteBatch ~30x slower, forever, through the retained map alone.

func bigContentMap(n int) map[word.Content]int {
	m := make(map[word.Content]int, n)
	for i := 0; i < n; i++ {
		var c word.Content
		c.W[0] = uint64(i) + 1
		m[c] = i
	}
	return m
}

func TestCanonBatchResetDropsOversizedDedupMap(t *testing.T) {
	b := canonBatchPool.Get()
	b.firstAt = bigContentMap(pool.KeepMapEntries + 1)
	canonBatchPool.Put(b) // runs the pooled reset
	b2 := canonBatchPool.Get()
	defer canonBatchPool.Put(b2)
	if len(b2.firstAt) != 0 {
		t.Fatalf("reset left %d entries", len(b2.firstAt))
	}
	if b2 == b && b2.firstAt != nil {
		t.Fatal("oversized dedup map survived the pool round trip")
	}
}

func TestScannerResetDropsOversizedDedupMap(t *testing.T) {
	sc := scannerPool.Get()
	sc.at = make(map[word.PLID]int, pool.KeepMapEntries+1)
	for i := 0; i < pool.KeepMapEntries+1; i++ {
		sc.at[word.PLID(i+1)] = i
	}
	resetScanner(sc)
	if sc.at != nil {
		t.Fatal("oversized scan dedup map survived reset")
	}
	sc.at = map[word.PLID]int{1: 1}
	resetScanner(sc)
	if sc.at == nil || len(sc.at) != 0 {
		t.Fatalf("steady-state map not cleared in place: %v", sc.at)
	}
	scannerPool.Put(sc)
}
