package segment

import (
	"repro/internal/word"
)

// CanonBatch canonicalizes one DAG level's worth of nodes with a single
// batched lookup-by-content. It is the bottom-up half of every wave
// pipeline (WriteBatch, the merge rebase engine): callers submit each
// node's children through Leaf/Node — the canonical special cases (zero
// elision, inlining, path compaction) resolve immediately without memory
// accesses, everything else pends — and one Resolve call turns the
// pending contents into owned PLID edges through word.MemCaps.LookupBatch,
// deduplicating equal contents within the level (content-uniqueness makes
// the duplicate's line the same line the store would have returned).
//
// The produced edges follow the CanonLeaf/CanonNode ownership contract:
// each out edge owns one reference when it carries a PLID; ownership of
// the submitted child edges is untouched.
type CanonBatch struct {
	m     word.Mem
	caps  word.MemCaps
	arity int
	pendC []word.Content
	pendO []*Edge
}

// NewCanonBatch probes m's capabilities once and returns a reusable
// batch canonicalizer.
func NewCanonBatch(m word.Mem) *CanonBatch {
	return NewCanonBatchCaps(m, word.Caps(m))
}

// NewCanonBatchCaps is NewCanonBatch for callers that already hold the
// one-shot capability probe.
func NewCanonBatchCaps(m word.Mem, caps word.MemCaps) *CanonBatch {
	return &CanonBatch{m: m, caps: caps, arity: m.LineWords()}
}

// Leaf canonicalizes a leaf of exactly arity word-level edges into *out,
// mirroring CanonLeaf: the zero edge and the inline encoding resolve
// immediately, a real leaf line pends until Resolve.
func (b *CanonBatch) Leaf(edges []Edge, out *Edge) {
	c := word.NewContent(b.arity)
	allZero, allSmallRaw := true, true
	for i := 0; i < b.arity; i++ {
		e := edges[i]
		c.W[i], c.T[i] = e.W, e.T
		if e.W != 0 || e.T != word.TagRaw {
			allZero = false
		}
		if e.T != word.TagRaw {
			allSmallRaw = false
		}
	}
	if allZero {
		*out = ZeroEdge
		return
	}
	if allSmallRaw {
		if w, ok := word.PackInline(c.W[:b.arity], b.arity); ok {
			*out = Edge{W: w, T: word.TagInline}
			return
		}
	}
	b.pendC = append(b.pendC, c)
	b.pendO = append(b.pendO, out)
}

// Node canonicalizes an interior node of exactly arity child edges into
// *out, mirroring CanonNode: the zero edge and the path-compacted
// single-child encodings resolve immediately (retaining the compacted
// target), a real interior line pends until Resolve.
func (b *CanonBatch) Node(edges []Edge, out *Edge) {
	plidBits := b.m.PLIDBits()
	c := word.NewContent(b.arity)
	nz, idx := 0, -1
	for i := 0; i < b.arity; i++ {
		e := edges[i]
		c.W[i], c.T[i] = e.W, e.T
		if !e.IsZero() {
			nz++
			idx = i
		}
	}
	if nz == 0 {
		*out = ZeroEdge
		return
	}
	if nz == 1 {
		child := edges[idx]
		switch child.T {
		case word.TagPLID:
			if w, ok := word.EncodeCompact(word.PLID(child.W), []int{idx}, b.arity, plidBits); ok {
				b.m.Retain(word.PLID(child.W))
				*out = Edge{W: w, T: word.TagCompact}
				return
			}
		case word.TagCompact:
			p, path := word.DecodeCompact(child.W, b.arity, plidBits)
			if w, ok := word.EncodeCompact(p, append([]int{idx}, path...), b.arity, plidBits); ok {
				b.m.Retain(p)
				*out = Edge{W: w, T: word.TagCompact}
				return
			}
		}
	}
	b.pendC = append(b.pendC, c)
	b.pendO = append(b.pendO, out)
}

// Resolve turns the pending contents into owned PLID edges through one
// batched lookup and resets the batch for the next level. It reports how
// many lookups were issued (after within-level dedup).
func (b *CanonBatch) Resolve() uint64 {
	if len(b.pendC) == 0 {
		return 0
	}
	firstAt := make(map[word.Content]int, len(b.pendC))
	uniqC := b.pendC[:0] // compacts in place; position i is read before any write can reach it
	uniqO := b.pendO[:0]
	type dup struct {
		out  *Edge
		uniq int
	}
	var dups []dup
	for i, c := range b.pendC {
		if j, ok := firstAt[c]; ok {
			dups = append(dups, dup{b.pendO[i], j})
			continue
		}
		firstAt[c] = len(uniqC)
		uniqC = append(uniqC, c)
		uniqO = append(uniqO, b.pendO[i])
	}
	plids := b.caps.LookupBatch(uniqC)
	for j, out := range uniqO {
		*out = PLIDEdge(plids[j]) // consumes the lookup's reference
	}
	for _, d := range dups {
		p := plids[d.uniq]
		b.m.Retain(p)
		*d.out = PLIDEdge(p)
	}
	n := uint64(len(uniqC))
	b.pendC = b.pendC[:0]
	b.pendO = b.pendO[:0]
	return n
}
