package segment

import (
	"repro/internal/pool"
	"repro/internal/word"
)

// CanonBatch canonicalizes one DAG level's worth of nodes with a single
// batched lookup-by-content. It is the bottom-up half of every wave
// pipeline (WriteBatch, the merge rebase engine): callers submit each
// node's children through Leaf/Node — the canonical special cases (zero
// elision, inlining, path compaction) resolve immediately without memory
// accesses, everything else pends — and one Resolve call turns the
// pending contents into owned PLID edges through word.MemCaps.LookupBatch,
// deduplicating equal contents within the level (content-uniqueness makes
// the duplicate's line the same line the store would have returned).
//
// The produced edges follow the CanonLeaf/CanonNode ownership contract:
// each out edge owns one reference when it carries a PLID; ownership of
// the submitted child edges is untouched.
type CanonBatch struct {
	m     word.Mem
	caps  word.MemCaps
	arity int
	pendC []word.Content
	pendO []*Edge

	// Resolve's scratch, reused across levels (and, for pooled
	// instances, across engine calls): the within-level dedup map is
	// cleared rather than reallocated, the duplicate list and the PLID
	// result buffer keep their capacity.
	firstAt map[word.Content]int
	dups    []canonDup
	plids   []word.PLID
}

// canonDup records one deduplicated pending node: its output edge and
// the index of the identical content in the unique lookup set.
type canonDup struct {
	out  *Edge
	uniq int
}

// canonBatchPool recycles CanonBatch instances across wave-engine calls
// so a steady-state WriteBatch or Merge allocates neither the batch nor
// its dedup map. The reset drops the borrowed memory system and zeroes
// the *Edge output pointers (they point into pooled wnodes) while
// keeping every buffer's capacity and the dedup map's buckets.
var canonBatchPool = pool.NewItems[CanonBatch]("segment.canonbatch", func(b *CanonBatch) {
	b.pendO = b.pendO[:cap(b.pendO)]
	clear(b.pendO)
	b.dups = b.dups[:cap(b.dups)]
	clear(b.dups)
	b.m, b.caps, b.arity = nil, word.MemCaps{}, 0
	b.pendC = b.pendC[:0]
	b.pendO = b.pendO[:0]
	b.dups = b.dups[:0]
	b.plids = b.plids[:0]
	b.firstAt = pool.ResetMap(b.firstAt, 0)
})

// AcquireCanonBatch borrows a canonicalizer from the pool: the wave
// engines' alternative to NewCanonBatchCaps, allocation-free at steady
// state. The caller must return it with Close before its engine call
// returns, after which the instance must not be used.
func AcquireCanonBatch(m word.Mem, caps word.MemCaps) *CanonBatch {
	b := canonBatchPool.Get()
	b.m, b.caps, b.arity = m, caps, m.LineWords()
	return b
}

// Close parks a canonicalizer obtained from AcquireCanonBatch back in
// the pool. Instances from NewCanonBatch/NewCanonBatchCaps need no Close
// (they are ordinary garbage-collected values).
func (b *CanonBatch) Close() { canonBatchPool.Put(b) }

// NewCanonBatch probes m's capabilities once and returns a reusable
// batch canonicalizer.
func NewCanonBatch(m word.Mem) *CanonBatch {
	return NewCanonBatchCaps(m, word.Caps(m))
}

// NewCanonBatchCaps is NewCanonBatch for callers that already hold the
// one-shot capability probe.
func NewCanonBatchCaps(m word.Mem, caps word.MemCaps) *CanonBatch {
	return &CanonBatch{m: m, caps: caps, arity: m.LineWords()}
}

// Leaf canonicalizes a leaf of exactly arity word-level edges into *out,
// mirroring CanonLeaf: the zero edge and the inline encoding resolve
// immediately, a real leaf line pends until Resolve.
func (b *CanonBatch) Leaf(edges []Edge, out *Edge) {
	c := word.NewContent(b.arity)
	allZero, allSmallRaw := true, true
	for i := 0; i < b.arity; i++ {
		e := edges[i]
		c.W[i], c.T[i] = e.W, e.T
		if e.W != 0 || e.T != word.TagRaw {
			allZero = false
		}
		if e.T != word.TagRaw {
			allSmallRaw = false
		}
	}
	if allZero {
		*out = ZeroEdge
		return
	}
	if allSmallRaw {
		if w, ok := word.PackInline(c.W[:b.arity], b.arity); ok {
			*out = Edge{W: w, T: word.TagInline}
			return
		}
	}
	b.pendC = append(b.pendC, c)
	b.pendO = append(b.pendO, out)
}

// Node canonicalizes an interior node of exactly arity child edges into
// *out, mirroring CanonNode: the zero edge and the path-compacted
// single-child encodings resolve immediately (retaining the compacted
// target), a real interior line pends until Resolve.
func (b *CanonBatch) Node(edges []Edge, out *Edge) {
	plidBits := b.m.PLIDBits()
	c := word.NewContent(b.arity)
	nz, idx := 0, -1
	for i := 0; i < b.arity; i++ {
		e := edges[i]
		c.W[i], c.T[i] = e.W, e.T
		if !e.IsZero() {
			nz++
			idx = i
		}
	}
	if nz == 0 {
		*out = ZeroEdge
		return
	}
	if nz == 1 {
		child := edges[idx]
		switch child.T {
		case word.TagPLID:
			steps := [1]int{idx}
			if w, ok := word.EncodeCompact(word.PLID(child.W), steps[:], b.arity, plidBits); ok {
				b.m.Retain(word.PLID(child.W))
				*out = Edge{W: w, T: word.TagCompact}
				return
			}
		case word.TagCompact:
			// Prepend idx to the child's decoded path on the stack: the
			// decode lands in sbuf[1:], leaving slot 0 for the new step.
			var sbuf [word.MaxCompactPath + 1]int
			p, path := word.DecodeCompactInto(child.W, b.arity, plidBits, sbuf[1:])
			sbuf[0] = idx
			if w, ok := word.EncodeCompact(p, sbuf[:1+len(path)], b.arity, plidBits); ok {
				b.m.Retain(p)
				*out = Edge{W: w, T: word.TagCompact}
				return
			}
		}
	}
	b.pendC = append(b.pendC, c)
	b.pendO = append(b.pendO, out)
}

// Resolve turns the pending contents into owned PLID edges through one
// batched lookup and resets the batch for the next level. It reports how
// many lookups were issued (after within-level dedup).
func (b *CanonBatch) Resolve() uint64 {
	if len(b.pendC) == 0 {
		return 0
	}
	if b.firstAt == nil {
		b.firstAt = make(map[word.Content]int, len(b.pendC))
	}
	uniqC := b.pendC[:0] // compacts in place; position i is read before any write can reach it
	uniqO := b.pendO[:0]
	dups := b.dups[:0]
	for i, c := range b.pendC {
		if j, ok := b.firstAt[c]; ok {
			dups = append(dups, canonDup{b.pendO[i], j})
			continue
		}
		b.firstAt[c] = len(uniqC)
		uniqC = append(uniqC, c)
		uniqO = append(uniqO, b.pendO[i])
	}
	if cap(b.plids) < len(uniqC) {
		b.plids = make([]word.PLID, len(uniqC))
	}
	plids := b.plids[:len(uniqC)]
	b.caps.LookupBatchInto(uniqC, plids)
	for j, out := range uniqO {
		*out = PLIDEdge(plids[j]) // consumes the lookup's reference
	}
	for _, d := range dups {
		p := plids[d.uniq]
		b.m.Retain(p)
		*d.out = PLIDEdge(p)
	}
	n := uint64(len(uniqC))
	b.pendC = b.pendC[:0]
	b.pendO = b.pendO[:0]
	b.dups = dups[:0]
	// Reset the dedup map here, at the level's full size, not at pool
	// return time (by then it is empty and its grown capacity — which is
	// what clear() pays for — is invisible). An oversized level's map is
	// dropped so its clear cost cannot leak into later levels or, for
	// pooled instances, later engine calls.
	b.firstAt = pool.ResetMap(b.firstAt, 0)
	return n
}
