package segment

import (
	"fmt"

	"repro/internal/word"
)

// ReadWord returns the tagged word at index idx. Indexes at or beyond the
// segment capacity read as zero, as do elided zero subtrees.
func ReadWord(m word.Mem, s Seg, idx uint64) (uint64, word.Tag) {
	arity := m.LineWords()
	if idx >= s.Capacity(arity) {
		return 0, word.TagRaw
	}
	return readEdge(m, PLIDEdge(s.Root), s.Height, idx)
}

// readEdge resolves idx within the subtree the edge covers at the given
// level (an edge at level L covers arity^(L+1) words).
func readEdge(m word.Mem, e Edge, level int, idx uint64) (uint64, word.Tag) {
	arity := m.LineWords()
	for {
		switch {
		case e.IsZero():
			return 0, word.TagRaw
		case e.T == word.TagInline:
			if level != 0 {
				panic("segment: inline edge above leaf level")
			}
			return word.UnpackInline(e.W, arity)[idx], word.TagRaw
		case e.T == word.TagCompact:
			p, path := word.DecodeCompact(e.W, arity, m.PLIDBits())
			for _, want := range path {
				sub := capacity(arity, level-1)
				if int(idx/sub) != want {
					return 0, word.TagRaw // off the compacted spine: zero
				}
				idx %= sub
				level--
			}
			e = PLIDEdge(p)
		case e.T == word.TagPLID:
			c := m.ReadLine(word.PLID(e.W))
			if level == 0 {
				return c.W[idx], c.T[idx]
			}
			sub := capacity(arity, level-1)
			child := idx / sub
			e = Edge{W: c.W[child], T: c.T[child]}
			idx %= sub
			level--
		default:
			panic(fmt.Sprintf("segment: unexpected edge tag %v", e.T))
		}
	}
}

// NextNonZero returns the index of the first word at or after from whose
// value or tag is non-zero, exploiting the DAG to skip elided zero
// subtrees in O(height) per skipped run — the iterator-register increment
// of §3.3. ok is false when no such word exists.
func NextNonZero(m word.Mem, s Seg, from uint64) (uint64, bool) {
	arity := m.LineWords()
	if from >= s.Capacity(arity) {
		return 0, false
	}
	return nextInEdge(m, PLIDEdge(s.Root), s.Height, 0, from)
}

func nextInEdge(m word.Mem, e Edge, level int, base, from uint64) (uint64, bool) {
	arity := m.LineWords()
	cover := capacity(arity, level)
	if from >= base+cover {
		return 0, false
	}
	switch {
	case e.IsZero():
		return 0, false
	case e.T == word.TagInline:
		vals := word.UnpackInline(e.W, arity)
		start := 0
		if from > base {
			start = int(from - base)
		}
		for i := start; i < arity; i++ {
			if vals[i] != 0 {
				return base + uint64(i), true
			}
		}
		return 0, false
	case e.T == word.TagCompact:
		p, path := word.DecodeCompact(e.W, arity, m.PLIDBits())
		for _, step := range path {
			sub := capacity(arity, level-1)
			subBase := base + uint64(step)*sub
			if from >= subBase+sub {
				return 0, false // requested range is past the spine
			}
			base = subBase
			level--
		}
		return nextInEdge(m, PLIDEdge(p), level, base, from)
	case e.T == word.TagPLID:
		c := m.ReadLine(word.PLID(e.W))
		if level == 0 {
			start := 0
			if from > base {
				start = int(from - base)
			}
			for i := start; i < arity; i++ {
				if c.W[i] != 0 || c.T[i] != word.TagRaw {
					return base + uint64(i), true
				}
			}
			return 0, false
		}
		sub := capacity(arity, level-1)
		startChild := 0
		if from > base {
			startChild = int((from - base) / sub)
		}
		for i := startChild; i < arity; i++ {
			child := Edge{W: c.W[i], T: c.T[i]}
			if child.IsZero() {
				continue
			}
			if idx, ok := nextInEdge(m, child, level-1, base+uint64(i)*sub, from); ok {
				return idx, true
			}
		}
		return 0, false
	}
	panic("segment: unexpected edge tag in iteration")
}

// ReadWords reads n words starting at off (a test and tooling helper; the
// hot paths use iterator registers).
func ReadWords(m word.Mem, s Seg, off, n uint64) []uint64 {
	out := make([]uint64, n)
	for i := uint64(0); i < n; i++ {
		out[i], _ = ReadWord(m, s, off+i)
	}
	return out
}

// ReadBytes reads n bytes starting at byte offset off, striding per word:
// each covering word is read once (one DAG walk per 8 bytes, not one per
// byte) and its bytes are extracted from the register.
func ReadBytes(m word.Mem, s Seg, off, n uint64) []byte {
	out := make([]byte, n)
	var w, cur uint64
	have := false
	for i := uint64(0); i < n; i++ {
		b := off + i
		if wi := b / 8; !have || wi != cur {
			w, _ = ReadWord(m, s, wi)
			cur, have = wi, true
		}
		out[i] = byte(w >> (8 * (b % 8)))
	}
	return out
}

// Metrics describes the physical shape of a segment DAG.
type Metrics struct {
	Lines       uint64 // distinct lines reachable from the root
	InlineWords uint64 // data-compacted (inlined) leaf edges
	CompactRefs uint64 // path-compacted edges
	MaxDepth    int    // longest physical path in lines
}

// Measure walks the DAG and reports its physical shape. Shared subtrees
// are counted once, mirroring their single instantiation in memory.
func Measure(m word.Mem, s Seg) Metrics {
	var mt Metrics
	seen := make(map[word.PLID]struct{})
	var walk func(e Edge, depth int)
	walk = func(e Edge, depth int) {
		switch e.T {
		case word.TagInline:
			mt.InlineWords++
			return
		case word.TagCompact:
			mt.CompactRefs++
		case word.TagPLID:
		default:
			return
		}
		p, ok := e.Target(m)
		if !ok {
			return
		}
		if depth > mt.MaxDepth {
			mt.MaxDepth = depth
		}
		if _, dup := seen[p]; dup {
			return
		}
		seen[p] = struct{}{}
		mt.Lines++
		c := m.ReadLine(p)
		for i := 0; i < int(c.N); i++ {
			walk(Edge{W: c.W[i], T: c.T[i]}, depth+1)
		}
	}
	walk(PLIDEdge(s.Root), 1)
	return mt
}

// FootprintBytes returns the deduplicated DRAM bytes the segment occupies.
func FootprintBytes(m word.Mem, s Seg) uint64 {
	return Measure(m, s).Lines * uint64(m.LineWords()*8)
}
