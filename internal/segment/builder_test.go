package segment

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/word"
)

// randWords produces a word slice with zero runs and repeated blocks, the
// shapes that exercise zero elision, inlining, compaction and the memo.
func randWords(rng *rand.Rand, n int) []uint64 {
	ws := make([]uint64, n)
	i := 0
	for i < n {
		run := 1 + rng.Intn(16)
		if run > n-i {
			run = n - i
		}
		switch rng.Intn(4) {
		case 0: // zero run
			i += run
		case 1: // small values (inline-packable leaves)
			for j := 0; j < run; j++ {
				ws[i+j] = uint64(rng.Intn(200))
			}
			i += run
		case 2: // repeat of an earlier block (memo / dedup fodder)
			if i > run {
				copy(ws[i:i+run], ws[i-run:i])
			} else {
				ws[i] = rng.Uint64()
			}
			i += run
		default: // full-width random
			for j := 0; j < run; j++ {
				ws[i+j] = rng.Uint64()
			}
			i += run
		}
	}
	return ws
}

func TestBuilderMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, m := range machines(t) {
		arity := m.LineWords()
		sizes := []int{1, arity, arity + 1, 63, 257, 4096}
		for _, n := range sizes {
			ws := randWords(rng, n)
			want := BuildWordsSerial(m, ws, nil)
			b := NewBuilder(m, 4)
			got := b.BuildWords(ws, nil)
			if !got.Equal(want) {
				t.Fatalf("arity %d n=%d: bulk root %#x/h%d != serial %#x/h%d",
					arity, n, got.Root, got.Height, want.Root, want.Height)
			}
			// Rebuild through the now-warm memo: still the same root.
			again := b.BuildWords(ws, nil)
			if !again.Equal(want) {
				t.Fatalf("arity %d n=%d: memoized rebuild root %#x != %#x",
					arity, n, again.Root, want.Root)
			}
			ReleaseSeg(m, want)
			ReleaseSeg(m, got)
			ReleaseSeg(m, again)
			b.Close()
			if live := m.LiveLines(); live != 0 {
				t.Fatalf("arity %d n=%d: %d lines leaked after release+Close", arity, n, live)
			}
		}
	}
}

func TestBuilderSparseMatchesSerial(t *testing.T) {
	// Mostly-zero inputs drive the zero-elision and path-compaction arms.
	for _, m := range machines(t) {
		ws := make([]uint64, 5000)
		ws[0] = 7
		ws[1234] = 0xdeadbeef
		ws[4999] = 1
		want := BuildWordsSerial(m, ws, nil)
		b := NewBuilder(m, 0)
		got := b.BuildWords(ws, nil)
		if !got.Equal(want) {
			t.Fatalf("arity %d: sparse bulk root %#x != serial %#x", m.LineWords(), got.Root, want.Root)
		}
		ReleaseSeg(m, want)
		ReleaseSeg(m, got)
		b.Close()
		if live := m.LiveLines(); live != 0 {
			t.Fatalf("arity %d: %d lines leaked", m.LineWords(), live)
		}
	}
}

func TestBuilderBuildBytesMatchesPackage(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	data := make([]byte, 1023)
	rng := rand.New(rand.NewSource(7))
	rng.Read(data)
	want := BuildBytes(m, data)
	b := NewBuilder(m, 0)
	got := b.BuildBytes(data)
	if !got.Equal(want) {
		t.Fatalf("BuildBytes roots differ: %#x vs %#x", got.Root, want.Root)
	}
	ReleaseSeg(m, want)
	ReleaseSeg(m, got)
	b.Close()
}

func TestPackWordsLE(t *testing.T) {
	// The binary.LittleEndian fast path must agree with the byte-shift
	// definition on every alignment, including the empty string.
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 33; n++ {
		bs := make([]byte, n)
		rng.Read(bs)
		got := packWordsLE(bs)
		want := make([]uint64, (n+7)/8)
		for i := range bs {
			want[i/8] |= uint64(bs[i]) << (8 * (i % 8))
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d words, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d word %d: %#x want %#x", n, i, got[i], want[i])
			}
		}
	}
}

func TestBuilderMemoHitsSkipLookups(t *testing.T) {
	// A memo hit must not charge phantom DRAM lookups: rebuilding content
	// the memo already holds performs zero lookup-by-content operations.
	m := core.NewMachine(core.TestConfig())
	rng := rand.New(rand.NewSource(9))
	ws := make([]uint64, 2048)
	for i := range ws {
		ws[i] = rng.Uint64() // full-width so every leaf needs a real line
	}
	b := NewBuilder(m, 1)
	first := b.BuildWords(ws, nil)
	before := m.Stats().Store
	second := b.BuildWords(ws, nil)
	after := m.Stats().Store
	if d := after.Lookups - before.Lookups; d != 0 {
		t.Fatalf("memoized rebuild reached DRAM with %d lookups", d)
	}
	if d := after.LookupTraffic() - before.LookupTraffic(); d != 0 {
		t.Fatalf("memoized rebuild charged %d lookup-traffic accesses", d)
	}
	if !first.Equal(second) {
		t.Fatalf("memoized rebuild changed root: %#x vs %#x", second.Root, first.Root)
	}
	ReleaseSeg(m, first)
	ReleaseSeg(m, second)
	b.Close()
	if live := m.LiveLines(); live != 0 {
		t.Fatalf("%d lines leaked", live)
	}
}

func TestBatchLookupChargesLikeSerialLookup(t *testing.T) {
	// At the store (no LLC in the way), the same fresh contents cost the
	// same Stats.Total() whether looked up one at a time or in one batch:
	// batching coalesces lock round trips, not simulated DRAM accesses.
	// (Machine-level totals can differ between orders because LLC eviction
	// timing shifts; the store's accounting must not.)
	mkContents := func(s *store.Store) []word.Content {
		rng := rand.New(rand.NewSource(11))
		cs := make([]word.Content, 600)
		for i := range cs {
			c := word.NewContent(s.LineWords())
			for j := 0; j < s.LineWords(); j++ {
				c.W[j] = rng.Uint64()
			}
			cs[i] = c
		}
		return cs
	}
	cfg := store.Config{LineBytes: 32, BucketBits: 8, DataWays: 12}

	sSerial := store.New(cfg)
	for _, c := range mkContents(sSerial) {
		sSerial.Lookup(c)
	}
	serial := sSerial.StatsSnapshot()

	sBulk := store.New(cfg)
	sBulk.LookupBatch(mkContents(sBulk))
	bulk := sBulk.StatsSnapshot()

	if bulk.Total() != serial.Total() {
		t.Fatalf("batch DRAM total %d != serial %d for identical fresh contents\nserial: %+v\nbulk:   %+v",
			bulk.Total(), serial.Total(), serial, bulk)
	}
	if bulk.Allocs != serial.Allocs || bulk.Lookups != serial.Lookups {
		t.Fatalf("batch allocs/lookups %d/%d != serial %d/%d",
			bulk.Allocs, bulk.Lookups, serial.Allocs, serial.Lookups)
	}
}

func TestBuilderMemoHoldsNoRefs(t *testing.T) {
	// The memo records content→PLID associations without references:
	// releasing the only segment frees every line even while the memo
	// still remembers them, and the now-stale entries must fail
	// revalidation and fall back to real lookups on the next build.
	m := core.NewMachine(core.TestConfig())
	b := NewBuilder(m, 0)
	payload := []byte("content remembered by the memo but owned only by the segment")
	seg := b.BuildBytes(payload)
	if b.MemoSize() == 0 {
		t.Fatalf("expected memo entries after a build")
	}
	ReleaseSeg(m, seg)
	if live := m.LiveLines(); live != 0 {
		t.Fatalf("memo pinned %d lines after segment release", live)
	}
	again := b.BuildBytes(payload)
	want := BuildWordsSerial(m, packWordsLE(payload), nil)
	if !again.Equal(want) {
		t.Fatalf("rebuild through a stale memo produced root %#x, want %#x",
			again.Root, want.Root)
	}
	ReleaseSeg(m, again)
	ReleaseSeg(m, want)
	b.Close()
	if live := m.LiveLines(); live != 0 {
		t.Fatalf("%d lines leaked after Close", live)
	}
}

// --- materializeRoot edge-tag coverage -----------------------------------

func TestMaterializeRootZero(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	before := m.LiveLines()
	if p := materializeRoot(m, ZeroEdge); p != word.Zero {
		t.Fatalf("zero edge materialized to %#x", p)
	}
	if m.LiveLines() != before {
		t.Fatalf("zero materialization allocated lines")
	}
}

func TestMaterializeRootPLID(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	c := word.NewContent(m.LineWords())
	c.W[0] = 0xfeedface00000001 // too wide to inline
	p := m.LookupLine(c)
	before := m.LiveLines()
	root := materializeRoot(m, PLIDEdge(p))
	if root != p {
		t.Fatalf("PLID edge materialized to %#x, want %#x", root, p)
	}
	if m.LiveLines() != before {
		t.Fatalf("PLID materialization allocated lines")
	}
	m.Release(root)
	if live := m.LiveLines(); live != 0 {
		t.Fatalf("%d lines leaked", live)
	}
}

func TestMaterializeRootInline(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	arity := m.LineWords()
	vals := make([]uint64, arity)
	for i := range vals {
		vals[i] = uint64(i + 1)
	}
	w, ok := word.PackInline(vals, arity)
	if !ok {
		t.Fatalf("small values must pack inline")
	}
	before := m.LiveLines()
	root := materializeRoot(m, Edge{W: w, T: word.TagInline})
	if root == word.Zero {
		t.Fatalf("inline edge materialized to zero")
	}
	got := m.ReadLine(root)
	for i := range vals {
		if got.W[i] != vals[i] || got.T[i] != word.TagRaw {
			t.Fatalf("word %d: got %#x/%v want %#x/raw", i, got.W[i], got.T[i], vals[i])
		}
	}
	if m.LiveLines() != before+1 {
		t.Fatalf("inline materialization allocated %d lines, want 1", m.LiveLines()-before)
	}
	m.Release(root)
	if m.LiveLines() != before {
		t.Fatalf("inline root release leaked lines")
	}
}

func TestMaterializeRootCompactSingleStep(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	arity := m.LineWords()
	leafWs := make([]uint64, arity)
	leafTs := make([]word.Tag, arity)
	leafWs[0] = 0xabcdef0123456789 // forces a real leaf line
	leaf := CanonLeaf(m, leafWs, leafTs)
	if leaf.T != word.TagPLID {
		t.Fatalf("leaf edge tag %v, want plid", leaf.T)
	}

	kids := make([]Edge, arity)
	kids[arity-1] = leaf
	e := CanonNode(m, kids) // single child: compacts
	leaf.Release(m)
	if e.T != word.TagCompact {
		t.Fatalf("single-child node tag %v, want compact", e.T)
	}

	root := materializeRoot(m, e)
	c := m.ReadLine(root)
	if c.T[arity-1] != word.TagPLID || c.W[arity-1] != uint64(leaf.W) {
		t.Fatalf("materialized root word %d = %#x/%v, want leaf PLID %#x",
			arity-1, c.W[arity-1], c.T[arity-1], leaf.W)
	}
	m.Release(root)
	if live := m.LiveLines(); live != 0 {
		t.Fatalf("%d lines leaked", live)
	}
}

func TestMaterializeRootCompactMultiStep(t *testing.T) {
	// A two-deep single-child chain compacts into one edge with a two-step
	// path; materializing it must expand only the top node, leaving the
	// rest of the chain as a compact word inside the new root line.
	m := core.NewMachine(core.TestConfig())
	arity := m.LineWords()
	leafWs := make([]uint64, arity)
	leafTs := make([]word.Tag, arity)
	leafWs[0] = 0x123456789abcdef0
	leaf := CanonLeaf(m, leafWs, leafTs)

	kids := make([]Edge, arity)
	kids[1] = leaf
	mid := CanonNode(m, kids)
	leaf.Release(m)

	kids = make([]Edge, arity)
	kids[0] = mid
	top := CanonNode(m, kids)
	mid.Release(m)
	if top.T != word.TagCompact {
		t.Fatalf("chained node tag %v, want compact", top.T)
	}
	_, path := word.DecodeCompact(top.W, arity, m.PLIDBits())
	if len(path) != 2 || path[0] != 0 || path[1] != 1 {
		t.Fatalf("compact path %v, want [0 1]", path)
	}

	root := materializeRoot(m, top)
	c := m.ReadLine(root)
	if c.T[0] != word.TagCompact {
		t.Fatalf("root word 0 tag %v, want compact (rest of chain)", c.T[0])
	}
	p, rest := word.DecodeCompact(c.W[0], arity, m.PLIDBits())
	if len(rest) != 1 || rest[0] != 1 {
		t.Fatalf("inner compact path %v, want [1]", rest)
	}
	got := m.ReadLine(p)
	if got.W[0] != leafWs[0] {
		t.Fatalf("chain does not reach the leaf: %#x", got.W[0])
	}
	m.Release(root)
	if live := m.LiveLines(); live != 0 {
		t.Fatalf("%d lines leaked", live)
	}
}

// --- concurrency ----------------------------------------------------------

func TestBuildersConcurrentIdenticalRoots(t *testing.T) {
	// Many Builders over one shared machine, all building the same inputs
	// concurrently, must agree on every root and leak nothing. Run with
	// -race: this is the store/LLC/builder interleaving stress.
	m := core.NewMachine(core.Config{
		LineBytes: 32, BucketBits: 12, DataWays: 12, CacheLines: 512, CacheWays: 4,
	})
	rng := rand.New(rand.NewSource(100))
	inputs := make([][]uint64, 4)
	for i := range inputs {
		inputs[i] = randWords(rng, 2000+i*333)
	}

	const goroutines = 8
	roots := make([][]Seg, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := NewBuilder(m, 2)
			defer b.Close()
			segs := make([]Seg, len(inputs))
			for i, ws := range inputs {
				segs[i] = b.BuildWords(ws, nil)
			}
			roots[g] = segs
		}(g)
	}
	wg.Wait()

	for i := range inputs {
		want := roots[0][i]
		for g := 1; g < goroutines; g++ {
			if !roots[g][i].Equal(want) {
				t.Fatalf("goroutine %d input %d: root %#x != %#x", g, i, roots[g][i].Root, want.Root)
			}
		}
	}
	for g := range roots {
		for _, s := range roots[g] {
			ReleaseSeg(m, s)
		}
	}
	if live := m.LiveLines(); live != 0 {
		t.Fatalf("%d lines leaked after concurrent builds", live)
	}
}

func TestBuilderWithoutBatchMem(t *testing.T) {
	// A Mem that lacks LookupLineBatch must still work via the fallback.
	m := core.NewMachine(core.TestConfig())
	plain := plainMem{m}
	b := NewBuilder(plain, 2)
	if b.caps.HasBatchLookup() {
		t.Fatalf("plainMem should not probe as batch-lookup capable")
	}
	ws := randWords(rand.New(rand.NewSource(5)), 1500)
	want := BuildWordsSerial(m, ws, nil)
	got := b.BuildWords(ws, nil)
	if !got.Equal(want) {
		t.Fatalf("fallback root %#x != serial %#x", got.Root, want.Root)
	}
	ReleaseSeg(m, want)
	ReleaseSeg(m, got)
	b.Close()
}

// plainMem hides the Machine's batch method so only word.Mem remains.
type plainMem struct{ m *core.Machine }

func (p plainMem) LookupLine(c word.Content) word.PLID { return p.m.LookupLine(c) }
func (p plainMem) ReadLine(q word.PLID) word.Content   { return p.m.ReadLine(q) }
func (p plainMem) Retain(q word.PLID)                  { p.m.Retain(q) }
func (p plainMem) Release(q word.PLID)                 { p.m.Release(q) }
func (p plainMem) LineWords() int                      { return p.m.LineWords() }
func (p plainMem) PLIDBits() int                       { return p.m.PLIDBits() }
