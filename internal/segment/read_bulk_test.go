package segment

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

// randSeg builds a segment of n pseudo-random words with zero runs mixed
// in, so the DAG exercises zero elision, inlining and path compaction.
func randSeg(m word.Mem, rng *rand.Rand, n int) (Seg, []uint64) {
	ws := make([]uint64, n)
	for i := range ws {
		switch rng.Intn(4) {
		case 0: // zero run
			for j := 0; j < 1+rng.Intn(8) && i < n; j++ {
				i++
			}
			i--
		case 1: // repeated block, feeds dedup
			ws[i] = 0xABCD
		default:
			ws[i] = rng.Uint64()
		}
	}
	return BuildWords(m, ws, nil), ws
}

func TestGatherWordsMatchesReadWord(t *testing.T) {
	for _, m := range machines(t) {
		rng := rand.New(rand.NewSource(42))
		s, _ := randSeg(m, rng, 700)
		idxs := make([]uint64, 0, 300)
		for i := 0; i < 300; i++ {
			// Scattered, duplicated, and out-of-capacity indexes.
			idxs = append(idxs, uint64(rng.Intn(900)))
		}
		vals, tags := GatherWords(m, s, idxs)
		for i, idx := range idxs {
			w, tg := ReadWord(m, s, idx)
			if vals[i] != w || tags[i] != tg {
				t.Fatalf("arity %d: idx %d: got (%#x,%v), want (%#x,%v)",
					m.LineWords(), idx, vals[i], tags[i], w, tg)
			}
		}
	}
}

func TestReadWordsBulkMatchesSerial(t *testing.T) {
	for _, m := range machines(t) {
		rng := rand.New(rand.NewSource(43))
		s, _ := randSeg(m, rng, 500)
		for _, win := range [][2]uint64{{0, 500}, {17, 100}, {490, 40}, {0, 0}} {
			got := ReadWordsBulk(m, s, win[0], win[1])
			want := ReadWords(m, s, win[0], win[1])
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("arity %d: off=%d n=%d: word %d differs", m.LineWords(), win[0], win[1], i)
				}
			}
		}
	}
}

func TestReadBytesBulkMatchesSerial(t *testing.T) {
	for _, m := range machines(t) {
		data := make([]byte, 3000)
		rng := rand.New(rand.NewSource(44))
		rng.Read(data)
		s := BuildBytes(m, data)
		for _, win := range [][2]uint64{{0, 3000}, {3, 41}, {2990, 10}, {7, 0}} {
			got := ReadBytesBulk(m, s, win[0], win[1])
			want := ReadBytes(m, s, win[0], win[1])
			if !bytes.Equal(got, want) {
				t.Fatalf("arity %d: off=%d n=%d: bulk bytes differ", m.LineWords(), win[0], win[1])
			}
		}
	}
}

func TestGatherRangesMatchesSerial(t *testing.T) {
	for _, m := range machines(t) {
		rng := rand.New(rand.NewSource(45))
		var rs []Range
		var want [][]uint64
		for i := 0; i < 8; i++ {
			s, _ := randSeg(m, rng, 50+rng.Intn(400))
			off := uint64(rng.Intn(30))
			n := uint64(rng.Intn(80))
			rs = append(rs, Range{Seg: s, Off: off, N: n})
			want = append(want, ReadWords(m, s, off, n))
		}
		// A zero-root range and an empty range among real ones.
		rs = append(rs, Range{Seg: Seg{}, N: 5}, Range{Seg: rs[0].Seg, Off: 1, N: 0})
		want = append(want, make([]uint64, 5), []uint64{})
		got := GatherRanges(m, rs)
		for i := range rs {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("arity %d: range %d: len %d, want %d", m.LineWords(), i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("arity %d: range %d word %d differs", m.LineWords(), i, j)
				}
			}
		}
	}
}

func TestChildrenBulkMatchesSerial(t *testing.T) {
	for _, m := range machines(t) {
		rng := rand.New(rand.NewSource(46))
		s, _ := randSeg(m, rng, 600)
		es := []Edge{PLIDEdge(s.Root), PLIDEdge(s.Root), ZeroEdge}
		level := s.Height
		for level > 0 && len(es) > 0 {
			got := ChildrenBulk(m, es, level)
			var next []Edge
			for i, e := range es {
				want := Children(m, e, level)
				for j := range want {
					if got[i][j] != want[j] {
						t.Fatalf("arity %d: level %d: edge %d child %d differs", m.LineWords(), level, i, j)
					}
				}
				next = append(next, want...)
			}
			es, level = next, level-1
		}
	}
}

// countingMem wraps a Mem and counts ReadLine calls, the unit of DAG-walk
// cost a read path pays.
type countingMem struct {
	word.Mem
	reads int
}

func (c *countingMem) ReadLine(p word.PLID) word.Content {
	c.reads++
	return c.Mem.ReadLine(p)
}

// TestReadBytesStridesPerWord pins the satellite fix: ReadBytes must
// re-walk the DAG once per covering *word* (like reading ceil(n/8) words
// serially), not once per byte as it did before.
func TestReadBytesStridesPerWord(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	data := make([]byte, 4096)
	rand.New(rand.NewSource(47)).Read(data)
	s := BuildBytes(m, data)

	cm := &countingMem{Mem: m}
	got := ReadBytes(cm, s, 0, uint64(len(data)))
	if !bytes.Equal(got, data) {
		t.Fatal("ReadBytes round trip failed")
	}
	perByte := cm.reads

	cm.reads = 0
	ReadWords(cm, s, 0, uint64(len(data)/8))
	perWord := cm.reads

	if perByte != perWord {
		t.Fatalf("ReadBytes walked %d lines, serial per-word read walks %d", perByte, perWord)
	}
	// And far fewer than the old one-walk-per-byte cost.
	if perByte*2 > perWord*8 {
		t.Fatalf("ReadBytes cost %d not clearly below per-byte cost %d", perByte, perWord*8)
	}
}

// TestGatherFetchesSharedLinesOncePerWave checks the dedup that justifies
// the bulk path: materializing a segment whose leaves are all identical
// content must read each distinct line once, not once per request.
func TestGatherFetchesSharedLinesOncePerWave(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	arity := uint64(m.LineWords())
	n := 64 * arity
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = 0xFEED // every leaf line is the same content
	}
	s := BuildWords(m, ws, nil)

	cm := &countingMem{Mem: m}
	got := ReadWordsBulk(cm, s, 0, n)
	for i, w := range got {
		if w != 0xFEED {
			t.Fatalf("word %d = %#x", i, w)
		}
	}
	distinct := int(Measure(m, s).Lines)
	// Every line the bulk walk reads is distinct within its wave, so the
	// total is at most one read per distinct line per level it appears on
	// — far below the n/arity leaf visits a serial walk pays.
	if cm.reads > distinct+s.Height {
		t.Fatalf("bulk read %d lines; DAG has %d distinct", cm.reads, distinct)
	}
}
