package segment

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// TestFigure1Scenario reproduces the paper's Figure 1 end to end: two
// string segments where the second is a substring of the first (sharing
// all its lines), then extended with "append to string" (sharing all the
// original lines, adding only new leaves and parents).
func TestFigure1Scenario(t *testing.T) {
	m := core.NewMachine(core.TestConfig())

	first := []byte("This is a long string containing Another string that is short. ")
	second := first[:48] // "This is a long string containing Another string"

	sFirst := BuildBytes(m, first)
	linesAfterFirst := m.LiveLines()

	// Figure 1a: the substring shares every one of its leaf lines.
	sSecond := BuildBytes(m, second)
	addedBySecond := m.LiveLines() - linesAfterFirst
	secondLines := Measure(m, sSecond).Lines
	if addedBySecond >= secondLines/2 {
		t.Fatalf("substring allocated %d of its %d lines; Figure 1a sharing broken",
			addedBySecond, secondLines)
	}

	// Figure 1b: extending the second string with new content shares all
	// existing lines and adds only the new leaves plus parent spine.
	extended := append(append([]byte{}, second...), []byte("append to string")...)
	before := m.LiveLines()
	sExt := BuildBytes(m, extended)
	addedByExt := m.LiveLines() - before
	newLeaves := uint64((len("append to string") + 15) / 16)
	budget := newLeaves + uint64(sExt.Height) + 2
	if addedByExt > budget {
		t.Fatalf("extension allocated %d lines, want <= %d (new content + spine)",
			addedByExt, budget)
	}
	if got := ReadBytes(m, sExt, 0, uint64(len(extended))); !bytes.Equal(got, extended) {
		t.Fatalf("extended content corrupted: %q", got)
	}

	// The original is untouched (immutability).
	if got := ReadBytes(m, sFirst, 0, uint64(len(first))); !bytes.Equal(got, first) {
		t.Fatal("original segment changed by extension")
	}

	// And releasing the extension reclaims only its private lines.
	ReleaseSeg(m, sExt)
	if m.LiveLines() != before {
		t.Fatalf("release after extension: %d lines vs %d before", m.LiveLines(), before)
	}
	ReleaseSeg(m, sFirst)
	ReleaseSeg(m, sSecond)
	if m.LiveLines() != 0 {
		t.Fatalf("%d lines leaked", m.LiveLines())
	}
}
