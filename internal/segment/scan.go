package segment

import (
	"fmt"

	"repro/internal/pool"
	"repro/internal/word"
)

// Streaming scans. A full traversal through the serial iterator costs one
// root-to-leaf descent per element: NextNonZero re-walks the DAG for every
// index it returns, and even the path-caching iterator register loads the
// divergent suffix of the path per seek. The scanner here expands the DAG
// frontier in level-order waves instead, like the bulk materializer in
// read_bulk.go: every line a wave needs is collected, deduplicated, and
// fetched through one word.BatchReadMem.ReadLineBatch, so a line shared by
// many parents is read once per wave regardless of fan-in.
//
// Early-stop callbacks make an unbounded frontier wasteful: a consumer
// that stops after ten elements must not pay for materializing the whole
// segment. The scanner therefore expands a bounded lookahead window at a
// time — at most ~window logical words of frontier per chunk — so the
// over-fetch past a stop is capped by the window, not the segment size.

// ScanStats describes the fetch behaviour of one streaming scan.
type ScanStats struct {
	Chunks    uint64 // lookahead windows expanded
	Waves     uint64 // batched fetch rounds issued
	LineReads uint64 // lines fetched (each distinct line once per wave)
	Emitted   uint64 // callback invocations
}

func (s *ScanStats) merge(o ScanStats) {
	s.Chunks += o.Chunks
	s.Waves += o.Waves
	s.LineReads += o.LineReads
	s.Emitted += o.Emitted
}

// DefaultScanWindow is the lookahead bound of ScanWords/ScanBytes in
// logical words: one chunk of frontier covers at most this many words
// (window-sized runs of a dense segment, far more of a sparse one, since
// elided zero subtrees cost nothing to "cover").
const DefaultScanWindow = 4096

// ScanWords streams every non-zero tagged word of s at index >= from to
// fn in ascending index order — the same elements, in the same order, as
// a NextNonZero/ReadWord loop — expanding the frontier in level-order
// waves with per-wave PLID dedup. fn returning false stops the scan; the
// lookahead window bounds how far past the stop the scanner fetched.
func ScanWords(m word.Mem, s Seg, from uint64, fn func(idx uint64, w uint64, t word.Tag) bool) ScanStats {
	return ScanWordsWindow(m, s, from, DefaultScanWindow, fn)
}

// ScanWordsWindow is ScanWords with an explicit lookahead window in
// logical words (clamped below to two lines' worth).
func ScanWordsWindow(m word.Mem, s Seg, from uint64, window int, fn func(idx uint64, w uint64, t word.Tag) bool) ScanStats {
	sc := newScanner(m, from, window)
	defer sc.release()
	if s.Root != word.Zero && from < s.Capacity(sc.arity) {
		sc.pending = append(sc.pending, scanNode{e: PLIDEdge(s.Root), lvl: s.Height})
	}
	sc.run(fn)
	return sc.stats
}

// scanNode is one frontier entry: an edge, the level it sits at, and the
// first logical word index it covers. Once resolved to leaf content, c
// holds the materialized words and done is set.
type scanNode struct {
	e    Edge
	lvl  int
	base uint64
	c    word.Content
	done bool
}

// scanner drains a frontier of scanNodes in window-bounded chunks.
// Scanners are pooled: every member buffer grows to its scan's
// high-water mark once and is retained across borrows, so a
// steady-state scan allocates nothing. newScanner borrows one,
// release returns it.
type scanner struct {
	m        word.Mem
	caps     word.MemCaps // optional fast paths, probed once
	arity    int
	from     uint64
	window   uint64
	pending  []scanNode     // unexpanded frontier, ascending disjoint bases
	chunk    []scanNode     // scratch for the chunk being expanded
	wave     [2][]scanNode  // ping-pong next-wave buffers for expand
	plids    []word.PLID    // current wave's deduplicated fetch set
	contents []word.Content // fetch results, parallel to plids
	at       map[word.PLID]int
	stats    ScanStats
}

// resetScanner restores a scanner to pooled-dormant state: slices keep
// their grown capacity, the dedup map keeps its buckets, and references
// into the caller's world (the Mem) are dropped.
func resetScanner(sc *scanner) {
	sc.m = nil
	sc.caps = word.MemCaps{}
	sc.pending = sc.pending[:0]
	sc.chunk = sc.chunk[:0]
	sc.wave[0] = sc.wave[0][:0]
	sc.wave[1] = sc.wave[1][:0]
	sc.plids = sc.plids[:0]
	sc.contents = sc.contents[:0]
	sc.at = pool.ResetMap(sc.at, 0)
	sc.stats = ScanStats{}
}

var scannerPool = pool.NewItems[scanner]("segment.scanner", resetScanner)

func newScanner(m word.Mem, from uint64, window int) *scanner {
	arity := m.LineWords()
	if window < 2*arity {
		window = 2 * arity
	}
	sc := scannerPool.Get()
	sc.m = m
	sc.caps = word.Caps(m)
	sc.arity = arity
	sc.from = from
	sc.window = uint64(window)
	if sc.at == nil {
		sc.at = make(map[word.PLID]int)
	}
	return sc
}

func (sc *scanner) release() { scannerPool.Put(sc) }

// cover returns how many logical words a node at lvl spans.
func (sc *scanner) cover(lvl int) uint64 { return capacity(sc.arity, lvl) }

func (sc *scanner) run(fn func(idx uint64, w uint64, t word.Tag) bool) {
	for len(sc.pending) > 0 {
		chunk := sc.takeChunk()
		if len(chunk) == 0 {
			continue
		}
		sc.stats.Chunks++
		if !sc.expand(chunk, fn) {
			return
		}
	}
}

// takeChunk splits oversized head subtrees until the head fits the
// window, then takes as many pending nodes as the window covers (always
// at least one).
func (sc *scanner) takeChunk() []scanNode {
	for len(sc.pending) > 0 {
		nd := sc.pending[0]
		if nd.lvl == 0 || sc.cover(nd.lvl) <= sc.window {
			break
		}
		sc.splitHead()
	}
	budget := sc.window
	n := 0
	for n < len(sc.pending) {
		c := sc.cover(sc.pending[n].lvl)
		if n > 0 && c > budget {
			break
		}
		n++
		if c >= budget {
			break
		}
		budget -= c
	}
	sc.chunk = append(sc.chunk[:0], sc.pending[:n]...)
	sc.pending = sc.pending[:copy(sc.pending, sc.pending[n:])]
	return sc.chunk
}

// splitHead expands the frontier's first node one level in place. Splits
// read one line at a time — the same O(height) descent cost a serial seek
// pays once per chunk start, not per element.
func (sc *scanner) splitHead() {
	nd := sc.pending[0]
	switch {
	case nd.e.T == word.TagCompact:
		// Path compaction peels without a fetch; the off-spine siblings
		// are zero subtrees.
		var pbuf [word.MaxCompactPath]int
		p, path := word.DecodeCompactInto(nd.e.W, sc.arity, sc.m.PLIDBits(), pbuf[:])
		for _, step := range path {
			nd.base += uint64(step) * capacity(sc.arity, nd.lvl-1)
			nd.lvl--
		}
		nd.e = PLIDEdge(p)
		if nd.base+sc.cover(nd.lvl) <= sc.from {
			sc.pending = sc.pending[1:]
			return
		}
		sc.pending[0] = nd
	case nd.e.T == word.TagPLID:
		c := sc.m.ReadLine(word.PLID(nd.e.W))
		sc.stats.LineReads++
		sub := capacity(sc.arity, nd.lvl-1)
		var kids [word.MaxWords]scanNode
		nk := 0
		for i := 0; i < sc.arity; i++ {
			e := Edge{W: c.W[i], T: c.T[i]}
			base := nd.base + uint64(i)*sub
			if e.IsZero() || base+sub <= sc.from {
				continue
			}
			kids[nk] = scanNode{e: e, lvl: nd.lvl - 1, base: base}
			nk++
		}
		// Replace the head with its kids, staging through the chunk
		// buffer (dead between takeChunk calls) and swapping, so the
		// prepend reuses pooled capacity instead of allocating.
		staged := append(sc.chunk[:0], kids[:nk]...)
		staged = append(staged, sc.pending[1:]...)
		sc.pending, sc.chunk = staged, sc.pending[:0]
	default:
		// Zero or already-resolved heads cover nothing left to split.
		sc.pending = sc.pending[1:]
	}
}

// expand lowers every chunk node to materialized leaf content through
// per-wave batched reads, then emits the covered non-zero words in index
// order. Returns false when fn stopped the scan.
func (sc *scanner) expand(nodes []scanNode, fn func(idx uint64, w uint64, t word.Tag) bool) bool {
	flip := 0
	for {
		// Resolve everything that needs no memory access — zero subtrees,
		// compacted paths, inlined leaves — leaving only PLID nodes to
		// fetch. The filter writes over the visited prefix of nodes.
		alive := nodes[:0]
		for _, nd := range nodes {
			if nd.done {
				alive = append(alive, nd)
				continue
			}
			for nd.e.T == word.TagCompact {
				var pbuf [word.MaxCompactPath]int
				p, path := word.DecodeCompactInto(nd.e.W, sc.arity, sc.m.PLIDBits(), pbuf[:])
				for _, step := range path {
					nd.base += uint64(step) * capacity(sc.arity, nd.lvl-1)
					nd.lvl--
				}
				nd.e = PLIDEdge(p)
			}
			switch {
			case nd.e.IsZero():
				continue
			case nd.e.T == word.TagInline:
				if nd.lvl != 0 {
					panic("segment: inline edge above leaf level")
				}
				c := word.NewContent(sc.arity)
				word.UnpackInlineInto(nd.e.W, sc.arity, c.W[:sc.arity])
				nd.c, nd.done = c, true
			case nd.e.T != word.TagPLID:
				panic(fmt.Sprintf("segment: unexpected edge tag %v", nd.e.T))
			}
			if nd.base+sc.cover(nd.lvl) <= sc.from {
				continue
			}
			alive = append(alive, nd)
		}
		nodes = alive

		// The wave's fetch set: each distinct PLID exactly once.
		sc.plids = sc.plids[:0]
		clear(sc.at)
		for _, nd := range nodes {
			if nd.done {
				continue
			}
			p := word.PLID(nd.e.W)
			if _, ok := sc.at[p]; !ok {
				sc.at[p] = len(sc.plids)
				sc.plids = append(sc.plids, p)
			}
		}
		if len(sc.plids) == 0 {
			break
		}
		if cap(sc.contents) < len(sc.plids) {
			sc.contents = make([]word.Content, len(sc.plids))
		}
		contents := sc.contents[:len(sc.plids)]
		sc.caps.ReadBatchInto(sc.plids, contents)
		sc.stats.Waves++
		sc.stats.LineReads += uint64(len(sc.plids))

		// Expand into the next wave: leaves keep their content, interior
		// nodes fan out in child order (which preserves ascending bases).
		// The two wave buffers ping-pong: the buffer a wave reads from is
		// dead once the next wave is built, so the wave after that reuses
		// it in place.
		next := sc.wave[flip][:0]
		for _, nd := range nodes {
			if nd.done {
				next = append(next, nd)
				continue
			}
			c := contents[sc.at[word.PLID(nd.e.W)]]
			if nd.lvl == 0 {
				nd.c, nd.done = c, true
				next = append(next, nd)
				continue
			}
			sub := capacity(sc.arity, nd.lvl-1)
			for i := 0; i < sc.arity; i++ {
				e := Edge{W: c.W[i], T: c.T[i]}
				if e.IsZero() {
					continue
				}
				base := nd.base + uint64(i)*sub
				if base+sub <= sc.from {
					continue
				}
				next = append(next, scanNode{e: e, lvl: nd.lvl - 1, base: base})
			}
		}
		sc.wave[flip] = next // retain growth for later waves and borrows
		flip ^= 1
		nodes = next
	}

	for _, nd := range nodes {
		for i := 0; i < sc.arity; i++ {
			w, t := nd.c.W[i], nd.c.T[i]
			if w == 0 && t == word.TagRaw {
				continue
			}
			idx := nd.base + uint64(i)
			if idx < sc.from {
				continue
			}
			sc.stats.Emitted++
			if !fn(idx, w, t) {
				return false
			}
		}
	}
	return true
}

// ScanBytes streams n bytes of s starting at byte offset off to fn in
// window-sized chunks, each materialized through the level-order bulk
// reader — the streaming counterpart of ReadBytesBulk for consumers that
// may stop early. fn receives the starting byte offset of each chunk.
// The chunk is borrowed pooled scratch, valid only for the duration of
// the callback (like bufio.Scanner's token): consumers that keep bytes
// past the callback must copy them. Emitted counts bytes delivered;
// line accounting is charged to the machine as usual.
func ScanBytes(m word.Mem, s Seg, off, n uint64, fn func(off uint64, chunk []byte) bool) ScanStats {
	var st ScanStats
	const windowBytes = DefaultScanWindow * 8
	var sc pool.Scratch
	defer sc.Release()
	// One chunk buffer and one word buffer serve every window: the word
	// span of a window is at most windowBytes/8 + 1 lines' worth of
	// straddle.
	bufAll := poolBytes.Get(&sc, windowBytes)
	wsAll := poolU64.Get(&sc, DefaultScanWindow+1)
	for n > 0 {
		take := n
		if take > windowBytes {
			take = windowBytes
		}
		w0 := off / 8
		ws := wsAll[:(off+take+7)/8-w0]
		ReadWordsBulkInto(m, s, w0, ws)
		buf := bufAll[:take]
		for i := uint64(0); i < take; i++ {
			b := off + i
			buf[i] = byte(ws[b/8-w0] >> (8 * (b % 8)))
		}
		st.Chunks++
		st.Emitted += take
		if !fn(off, buf) {
			break
		}
		off += take
		n -= take
	}
	return st
}
