package segment

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

type emit struct {
	idx uint64
	w   uint64
	t   word.Tag
}

// serialEmits walks s the pre-scan way: one NextNonZero descent plus one
// ReadWord per element.
func serialEmits(m word.Mem, s Seg, from uint64) []emit {
	var out []emit
	for idx := from; ; {
		nz, ok := NextNonZero(m, s, idx)
		if !ok {
			return out
		}
		w, t := ReadWord(m, s, nz)
		out = append(out, emit{nz, w, t})
		idx = nz + 1
	}
}

func scanEmits(m word.Mem, s Seg, from uint64, window int) ([]emit, ScanStats) {
	var out []emit
	st := ScanWordsWindow(m, s, from, window, func(idx uint64, w uint64, t word.Tag) bool {
		out = append(out, emit{idx, w, t})
		return true
	})
	return out, st
}

func sameEmits(t *testing.T, label string, got, want []emit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: emitted %d words, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: emission %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestScanWordsMatchesSerialWalk(t *testing.T) {
	for _, m := range machines(t) {
		rng := rand.New(rand.NewSource(401))
		for _, n := range []int{1, 7, 300, 2000} {
			s, _ := randSeg(m, rng, n)
			cap := s.Capacity(m.LineWords())
			froms := []uint64{0, 1, uint64(n) / 3, uint64(n) - 1, cap - 1, cap, cap + 5}
			for _, from := range froms {
				want := serialEmits(m, s, from)
				for _, window := range []int{1, 16, 257, DefaultScanWindow} {
					got, _ := scanEmits(m, s, from, window)
					sameEmits(t, "scan", got, want)
				}
			}
		}
	}
}

func TestScanWordsStats(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	rng := rand.New(rand.NewSource(402))
	s, _ := randSeg(m, rng, 3000)
	got, st := scanEmits(m, s, 0, 256)
	if st.Emitted != uint64(len(got)) {
		t.Fatalf("Emitted = %d, want %d", st.Emitted, len(got))
	}
	if st.Chunks == 0 || st.Waves == 0 || st.LineReads == 0 {
		t.Fatalf("scan stats not populated: %+v", st)
	}
}

// TestScanWordsAccountingMatchesSerial pins the accounting-equivalence
// claim: with an LLC ample enough that nothing is evicted mid-walk, the
// wave scan and the serial iterator loop both miss every distinct line of
// a shared-subtree segment exactly once, so they charge the simulated
// memory system identically. (The scan's advantage appears under cache
// pressure, where the serial walk re-misses shared lines; that is the
// benchmark's job, not this pin's.) Two machines are built through the
// same deterministic sequence so cache and store state match exactly.
func TestScanWordsAccountingMatchesSerial(t *testing.T) {
	cfg := core.Config{LineBytes: 16, BucketBits: 12, DataWays: 12, CacheLines: 16384, CacheWays: 16}
	build := func() (*core.Machine, Seg) {
		m := core.NewMachine(cfg)
		// Shared subtrees: one 64-word tile repeated, so interior and leaf
		// lines have high fan-in.
		rng := rand.New(rand.NewSource(403))
		tile := make([]uint64, 64)
		for i := range tile {
			tile[i] = rng.Uint64()
		}
		ws := make([]uint64, 0, 4096)
		for len(ws) < 4096 {
			ws = append(ws, tile...)
		}
		return m, BuildWords(m, ws, nil)
	}

	m1, s1 := build()
	m1.FlushCache()
	m1.ResetStats()
	serial := serialEmits(m1, s1, 0)
	serialDelta := m1.Stats().Store.Total()

	m2, s2 := build()
	if s2.Root != s1.Root {
		t.Fatalf("deterministic builds diverged: %v vs %v", s1.Root, s2.Root)
	}
	m2.FlushCache()
	m2.ResetStats()
	scan, _ := scanEmits(m2, s2, 0, DefaultScanWindow)
	scanDelta := m2.Stats().Store.Total()

	sameEmits(t, "accounting walk", scan, serial)
	if scanDelta != serialDelta {
		t.Fatalf("DRAM delta: scan %d, serial walk %d — must be identical under an ample LLC",
			scanDelta, serialDelta)
	}
}

// TestScanEarlyStopBoundedByWindow pins the lookahead contract: a consumer
// that stops after the first element pays at most one window of fetches,
// not the whole segment.
func TestScanEarlyStopBoundedByWindow(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	rng := rand.New(rand.NewSource(404))
	ws := make([]uint64, 65536)
	for i := range ws {
		ws[i] = rng.Uint64()
	}
	s := BuildWords(m, ws, nil)

	cm := &countingMem{Mem: m}
	ScanWordsWindow(cm, s, 0, DefaultScanWindow, func(uint64, uint64, word.Tag) bool { return true })
	fullReads := cm.reads

	const window = 64
	cm.reads = 0
	st := ScanWordsWindow(cm, s, 0, window, func(uint64, uint64, word.Tag) bool { return false })
	if st.Emitted != 1 {
		t.Fatalf("Emitted = %d after immediate stop, want 1", st.Emitted)
	}
	// Splitting the head costs O(height) serial reads; expanding one
	// window of dense words costs about 2*window/arity lines.
	bound := s.Height + 2*window/m.LineWords() + 4
	if cm.reads > bound {
		t.Fatalf("early stop read %d lines, want <= %d", cm.reads, bound)
	}
	if cm.reads*16 > fullReads {
		t.Fatalf("early stop read %d lines vs %d for the full scan — window did not bound over-fetch",
			cm.reads, fullReads)
	}
}

func TestScanBytesMatchesReadBytes(t *testing.T) {
	for _, m := range machines(t) {
		data := make([]byte, 9001)
		rand.New(rand.NewSource(405)).Read(data)
		s := BuildBytes(m, data)
		for _, off := range []uint64{0, 1, 13, 8000} {
			want := ReadBytes(m, s, off, uint64(len(data))-off)
			var got []byte
			st := ScanBytes(m, s, off, uint64(len(data))-off, func(o uint64, chunk []byte) bool {
				if o != off+uint64(len(got)) {
					t.Fatalf("chunk offset %d, want %d", o, off+uint64(len(got)))
				}
				got = append(got, chunk...)
				return true
			})
			if string(got) != string(want) {
				t.Fatalf("arity %d off %d: ScanBytes mismatch", m.LineWords(), off)
			}
			if st.Emitted != uint64(len(want)) {
				t.Fatalf("Emitted = %d, want %d", st.Emitted, len(want))
			}
		}
		// Early stop: one chunk only.
		calls := 0
		ScanBytes(m, s, 0, uint64(len(data)), func(uint64, []byte) bool {
			calls++
			return false
		})
		if calls != 1 {
			t.Fatalf("early-stopped ScanBytes made %d calls, want 1", calls)
		}
	}
}

// diffEmit records one reported difference.
type diffEmit struct {
	idx    uint64
	av, bv uint64
	at, bt word.Tag
}

func diffEmits(m word.Mem, a, b Seg) ([]diffEmit, DiffStats) {
	var out []diffEmit
	st := DiffWords(m, a, b, func(idx uint64, av, bv uint64, at, bt word.Tag) bool {
		out = append(out, diffEmit{idx, av, bv, at, bt})
		return true
	})
	return out, st
}

// bruteDiff compares the two segments word by word through ReadWord.
func bruteDiff(m word.Mem, a, b Seg) []diffEmit {
	arity := m.LineWords()
	capA, capB := a.Capacity(arity), b.Capacity(arity)
	n := capA
	if capB > n {
		n = capB
	}
	var out []diffEmit
	for idx := uint64(0); idx < n; idx++ {
		av, at := ReadWord(m, a, idx)
		bv, bt := ReadWord(m, b, idx)
		if av != bv || at != bt {
			out = append(out, diffEmit{idx, av, bv, at, bt})
		}
	}
	return out
}

func TestDiffWordsMatchesBruteForce(t *testing.T) {
	for _, m := range machines(t) {
		rng := rand.New(rand.NewSource(406))
		base := make([]uint64, 2048)
		for i := range base {
			if rng.Intn(3) == 0 {
				base[i] = rng.Uint64()
			}
		}
		a := BuildWords(m, base, nil)

		// A handful of scattered mutations, including zeroing.
		mut := append([]uint64(nil), base...)
		for i := 0; i < 9; i++ {
			mut[rng.Intn(len(mut))] = rng.Uint64()
		}
		mut[100] = 0
		b := BuildWords(m, mut, nil)

		got, st := diffEmits(m, a, b)
		want := bruteDiff(m, a, b)
		if len(got) != len(want) {
			t.Fatalf("arity %d: %d diffs, want %d", m.LineWords(), len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("arity %d: diff %d = %+v, want %+v", m.LineWords(), i, got[i], want[i])
			}
		}
		if st.DiffWords != uint64(len(want)) {
			t.Fatalf("DiffWords counter = %d, want %d", st.DiffWords, len(want))
		}
		if st.SubDAGSkips == 0 {
			t.Fatalf("expected PLID-equality skips on a near-identical pair, got %+v", st)
		}
	}
}

func TestDiffWordsDifferentHeights(t *testing.T) {
	for _, m := range machines(t) {
		rng := rand.New(rand.NewSource(407))
		short := make([]uint64, 100)
		for i := range short {
			short[i] = rng.Uint64()
		}
		long := append([]uint64(nil), short...)
		for len(long) < 1000 {
			long = append(long, rng.Uint64())
		}
		a := BuildWords(m, short, nil)
		b := BuildWords(m, long, nil)
		got, _ := diffEmits(m, a, b)
		want := bruteDiff(m, a, b)
		if len(got) != len(want) {
			t.Fatalf("arity %d: %d diffs, want %d", m.LineWords(), len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("arity %d: diff %d = %+v, want %+v", m.LineWords(), i, got[i], want[i])
			}
		}
	}
}

// TestDiffWordsIdenticalZeroReads pins the O(1) identity check of
// §2.2/§3.4: diffing a segment against itself performs zero line reads.
func TestDiffWordsIdenticalZeroReads(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	rng := rand.New(rand.NewSource(408))
	s, _ := randSeg(m, rng, 5000)

	cm := &countingMem{Mem: m}
	got, st := diffEmits(cm, s, s)
	if len(got) != 0 {
		t.Fatalf("self-diff reported %d differences", len(got))
	}
	if cm.reads != 0 {
		t.Fatalf("self-diff read %d lines, want 0", cm.reads)
	}
	if st.LineReads != 0 || st.SubDAGSkips != 1 {
		t.Fatalf("self-diff stats = %+v, want 1 root skip and 0 reads", st)
	}
	if st.SkippedWords != s.Capacity(m.LineWords()) {
		t.Fatalf("SkippedWords = %d, want the full capacity %d", st.SkippedWords, s.Capacity(m.LineWords()))
	}
}

// TestDiffWordsReadsProportionalToChanges pins the delta-cost claim: a
// few changed words in a large segment cost line reads proportional to
// the changed root-to-leaf paths, not the segment size.
func TestDiffWordsReadsProportionalToChanges(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	rng := rand.New(rand.NewSource(409))
	base := make([]uint64, 32768)
	for i := range base {
		base[i] = rng.Uint64()
	}
	a := BuildWords(m, base, nil)
	mut := append([]uint64(nil), base...)
	const changes = 3
	for i := 0; i < changes; i++ {
		mut[rng.Intn(len(mut))]++
	}
	b := BuildWords(m, mut, nil)

	cm := &countingMem{Mem: m}
	got, st := diffEmits(cm, a, b)
	if len(got) != changes {
		t.Fatalf("reported %d diffs, want %d", len(got), changes)
	}
	// Each changed path costs at most height+1 lines per side; everything
	// else must be pruned by PLID equality.
	bound := 2 * changes * (a.Height + 1) * m.LineWords()
	if cm.reads > bound {
		t.Fatalf("diff read %d lines for %d changes (height %d), want <= %d",
			cm.reads, changes, a.Height, bound)
	}
	if st.SubDAGSkips == 0 || st.SkippedWords == 0 {
		t.Fatalf("no sub-DAG skips recorded: %+v", st)
	}
}

func TestDiffWordsEarlyStop(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	rng := rand.New(rand.NewSource(410))
	base := make([]uint64, 4096)
	for i := range base {
		base[i] = rng.Uint64()
	}
	a := BuildWords(m, base, nil)
	mut := append([]uint64(nil), base...)
	for i := 0; i < 50; i++ {
		mut[i*80]++
	}
	b := BuildWords(m, mut, nil)
	calls := 0
	st := DiffWords(m, a, b, func(uint64, uint64, uint64, word.Tag, word.Tag) bool {
		calls++
		return false
	})
	if calls != 1 || st.DiffWords != 1 {
		t.Fatalf("early-stopped diff made %d calls (counter %d), want 1", calls, st.DiffWords)
	}
}

func TestScanWordsParallelMatchesSerial(t *testing.T) {
	for _, m := range machines(t) {
		rng := rand.New(rand.NewSource(411))
		for _, n := range []int{5, 300, 5000} {
			s, _ := randSeg(m, rng, n)
			for _, from := range []uint64{0, uint64(n) / 2} {
				want := serialEmits(m, s, from)
				for _, workers := range []int{0, 1, 3, 16} {
					var got []emit
					st := ScanWordsParallel(m, s, from, workers, func(idx uint64, w uint64, t word.Tag) bool {
						got = append(got, emit{idx, w, t})
						return true
					})
					sameEmits(t, "parallel scan", got, want)
					if st.Emitted != uint64(len(want)) {
						t.Fatalf("parallel Emitted = %d, want %d", st.Emitted, len(want))
					}
				}
			}
		}
	}
}

func TestScanWordsParallelEarlyStop(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	rng := rand.New(rand.NewSource(412))
	s, _ := randSeg(m, rng, 20000)
	want := serialEmits(m, s, 0)
	const stopAfter = 7
	var got []emit
	ScanWordsParallel(m, s, 0, 4, func(idx uint64, w uint64, t word.Tag) bool {
		got = append(got, emit{idx, w, t})
		return len(got) < stopAfter
	})
	if len(got) != stopAfter {
		t.Fatalf("stopped scan emitted %d, want %d", len(got), stopAfter)
	}
	sameEmits(t, "stopped prefix", got, want[:stopAfter])
}

func TestScanWordsZeroSegment(t *testing.T) {
	m := core.NewMachine(core.TestConfig())
	s := NewSparse(3)
	if got, _ := scanEmits(m, s, 0, 64); len(got) != 0 {
		t.Fatalf("zero segment emitted %d words", len(got))
	}
	st := ScanWordsParallel(m, s, 0, 4, func(uint64, uint64, word.Tag) bool { return true })
	if st.Emitted != 0 {
		t.Fatalf("zero segment parallel scan emitted %d", st.Emitted)
	}
	if ds := DiffWords(m, s, s, nil); ds.SubDAGSkips != 0 || ds.LineReads != 0 {
		t.Fatalf("zero self-diff stats = %+v", ds)
	}
}
