package segment

import (
	"fmt"

	"repro/internal/pool"
	"repro/internal/word"
)

// Level-order bulk reads. The serial read path (ReadWord, Children)
// resolves one index at a time, re-walking the DAG from the root and
// paying one machine ReadLine — one LLC probe, one potential stripe lock
// round trip — per line per visit. The materializer here walks the DAG
// breadth-first instead: all the lines one level ("wave") needs are
// collected first, deduplicated, and fetched through one
// word.BatchReadMem.ReadLineBatch, so every distinct line is read exactly
// once per wave however many requested indices (or sibling segments)
// share it. Content-uniqueness is what makes the dedup sound: two edges
// with equal words *are* the same line, so a single fetch serves every
// parent that references it — the same accesses a serial walk would have
// resolved as LLC content hits, minus the per-visit probe traffic.

// bulkReq is one outstanding word request within a subtree: out is the
// slot in the flat result arrays, idx the word index relative to the
// subtree the enclosing node covers.
type bulkReq struct {
	out uint64
	idx uint64
}

// bulkNode is one wave entry: an edge, the level it sits at, and the
// requests that resolve inside it. Nodes within a wave may sit at
// different levels (path compaction peels several levels at once; mixed
// segment heights in GatherRanges start at different levels).
type bulkNode struct {
	e    Edge
	lvl  int
	reqs []bulkReq
}

// gather drains the wave worklist, writing resolved words into vals and
// (when non-nil) their tags into tags. Unresolved requests — zero
// subtrees, off-spine compacted indexes — leave their slots at the zero
// value, which is exactly what the serial read returns for them.
func gather(m word.Mem, nodes []bulkNode, vals []uint64, tags []word.Tag) {
	arity := m.LineWords()
	caps := word.Caps(m)
	// Everything below is borrowed scratch: requests are only ever
	// partitioned (never duplicated), so one wave's request total bounds
	// every later wave's. Two request arenas and two node buffers
	// ping-pong between "current wave" and "next wave" roles — wave k's
	// buffers are dead once wave k+1 is built, so wave k+2 reuses them.
	total := 0
	for _, nd := range nodes {
		total += len(nd.reqs)
	}
	if total == 0 {
		return
	}
	var sc pool.Scratch
	defer sc.Release()
	at := poolPlidAt.Get(&sc)
	plids := poolPLIDs.GetCap(&sc, total)
	contentsBuf := poolContents.Get(&sc, total)
	nodeBufs := [2][]bulkNode{poolBulkNodes.Get(&sc, total), poolBulkNodes.Get(&sc, total)}
	arenas := [2][]bulkReq{poolReqs.Get(&sc, total), poolReqs.Get(&sc, total)}
	flip := 0
	for len(nodes) > 0 {
		// Resolve every edge that needs no memory access — zero subtrees,
		// inlined leaves, compacted paths — leaving only PLID nodes to
		// fetch. The filter writes over the visited prefix of nodes.
		fetch := nodes[:0]
		for _, nd := range nodes {
			switch {
			case nd.e.IsZero():
				// All requests read as zero; the outputs already are.
			case nd.e.T == word.TagInline:
				if nd.lvl != 0 {
					panic("segment: inline edge above leaf level")
				}
				var ws [word.MaxWords]uint64
				word.UnpackInlineInto(nd.e.W, arity, ws[:arity])
				for _, r := range nd.reqs {
					vals[r.out] = ws[r.idx]
				}
			case nd.e.T == word.TagCompact:
				var pbuf [word.MaxCompactPath]int
				p, path := word.DecodeCompactInto(nd.e.W, arity, m.PLIDBits(), pbuf[:])
				lvl, rs := nd.lvl, nd.reqs
				for _, step := range path {
					sub := capacity(arity, lvl-1)
					kept := rs[:0]
					for _, r := range rs {
						if int(r.idx/sub) == step {
							r.idx %= sub
							kept = append(kept, r)
						}
						// Off the compacted spine: reads as zero.
					}
					rs = kept
					lvl--
				}
				if len(rs) > 0 {
					fetch = append(fetch, bulkNode{e: PLIDEdge(p), lvl: lvl, reqs: rs})
				}
			case nd.e.T == word.TagPLID:
				fetch = append(fetch, nd)
			default:
				panic(fmt.Sprintf("segment: unexpected edge tag %v", nd.e.T))
			}
		}
		if len(fetch) == 0 {
			return
		}
		// The wave's fetch set: each distinct PLID exactly once.
		plids = plids[:0]
		clear(at)
		for _, nd := range fetch {
			p := word.PLID(nd.e.W)
			if _, ok := at[p]; !ok {
				at[p] = len(plids)
				plids = append(plids, p)
			}
		}
		contents := contentsBuf[:len(plids)]
		caps.ReadBatchInto(plids, contents)
		// Expand into the next wave: leaf nodes resolve their requests,
		// interior nodes partition requests over their children.
		next := nodeBufs[flip][:0]
		arena := arenas[flip]
		arenaUsed := 0
		flip ^= 1
		for _, nd := range fetch {
			c := contents[at[word.PLID(nd.e.W)]]
			if nd.lvl == 0 {
				for _, r := range nd.reqs {
					vals[r.out] = c.W[r.idx]
					if tags != nil {
						tags[r.out] = c.T[r.idx]
					}
				}
				continue
			}
			// Counting partition of the requests over the children: one
			// arena carve per node, sliced per child.
			sub := capacity(arity, nd.lvl-1)
			var cnt [word.MaxWords + 1]int32
			for _, r := range nd.reqs {
				cnt[r.idx/sub+1]++
			}
			for ch := 0; ch < arity; ch++ {
				cnt[ch+1] += cnt[ch]
			}
			buf := arena[arenaUsed : arenaUsed+len(nd.reqs)]
			arenaUsed += len(nd.reqs)
			pos := cnt
			for _, r := range nd.reqs {
				ch := r.idx / sub
				buf[pos[ch]] = bulkReq{out: r.out, idx: r.idx % sub}
				pos[ch]++
			}
			for ch := 0; ch < arity; ch++ {
				if cnt[ch] == cnt[ch+1] {
					continue
				}
				e := Edge{W: c.W[ch], T: c.T[ch]}
				if e.IsZero() {
					continue
				}
				next = append(next, bulkNode{e: e, lvl: nd.lvl - 1, reqs: buf[cnt[ch]:cnt[ch+1]]})
			}
		}
		nodes = next
	}
}

// GatherWords reads the tagged word at every index in idxs — positional
// results, out-of-capacity indexes reading as zero raw words, exactly
// like one ReadWord per index — through the level-order materializer:
// DAG levels shared between the requested indexes (the root path, shared
// interior nodes, deduplicated subtrees) are fetched once per wave
// instead of once per index.
func GatherWords(m word.Mem, s Seg, idxs []uint64) ([]uint64, []word.Tag) {
	vals := make([]uint64, len(idxs))
	tags := make([]word.Tag, len(idxs))
	GatherWordsInto(m, s, idxs, vals, tags)
	return vals, tags
}

// GatherWordsInto is GatherWords writing into caller-supplied result
// buffers of length len(idxs) (tags may be nil to skip tag capture) —
// the allocation-free gather: all wave scratch is pooled, so a
// steady-state call allocates nothing.
func GatherWordsInto(m word.Mem, s Seg, idxs []uint64, vals []uint64, tags []word.Tag) {
	if len(vals) != len(idxs) || (tags != nil && len(tags) != len(idxs)) {
		panic("segment: GatherWordsInto buffer length mismatch")
	}
	clear(vals)
	clear(tags)
	if s.Root == word.Zero || len(idxs) == 0 {
		return
	}
	capRoot := s.Capacity(m.LineWords())
	var sc pool.Scratch
	defer sc.Release()
	reqs := poolReqs.GetCap(&sc, len(idxs))
	for i, idx := range idxs {
		if idx < capRoot {
			reqs = append(reqs, bulkReq{out: uint64(i), idx: idx})
		}
	}
	if len(reqs) > 0 {
		root := poolBulkNodes.Get(&sc, 1)
		root[0] = bulkNode{e: PLIDEdge(s.Root), lvl: s.Height, reqs: reqs}
		gather(m, root, vals, tags)
	}
}

// ReadWordsBulk reads n words starting at off, the bulk counterpart of
// ReadWords: one wave walk reading each distinct line once.
func ReadWordsBulk(m word.Mem, s Seg, off, n uint64) []uint64 {
	vals := make([]uint64, n)
	ReadWordsBulkInto(m, s, off, vals)
	return vals
}

// ReadWordsBulkInto is ReadWordsBulk reading len(vals) words into the
// caller's buffer — the allocation-free bulk read backing ScanBytes
// chunking and ReadBytesBulk.
func ReadWordsBulkInto(m word.Mem, s Seg, off uint64, vals []uint64) {
	clear(vals)
	n := uint64(len(vals))
	if s.Root == word.Zero || n == 0 {
		return
	}
	capRoot := s.Capacity(m.LineWords())
	var sc pool.Scratch
	defer sc.Release()
	reqs := poolReqs.GetCap(&sc, int(n))
	for i := uint64(0); i < n; i++ {
		if off+i < capRoot {
			reqs = append(reqs, bulkReq{out: i, idx: off + i})
		}
	}
	if len(reqs) > 0 {
		root := poolBulkNodes.Get(&sc, 1)
		root[0] = bulkNode{e: PLIDEdge(s.Root), lvl: s.Height, reqs: reqs}
		gather(m, root, vals, nil)
	}
}

// ReadBytesBulk reads n bytes starting at byte offset off, the bulk
// counterpart of ReadBytes.
func ReadBytesBulk(m word.Mem, s Seg, off, n uint64) []byte {
	out := make([]byte, n)
	if n == 0 {
		return out
	}
	w0 := off / 8
	var sc pool.Scratch
	defer sc.Release()
	ws := poolU64.Get(&sc, int((off+n+7)/8-w0))
	ReadWordsBulkInto(m, s, w0, ws)
	for i := uint64(0); i < n; i++ {
		b := off + i
		out[i] = byte(ws[b/8-w0] >> (8 * (b % 8)))
	}
	return out
}

// Range is one word range of one segment for GatherRanges.
type Range struct {
	Seg Seg
	Off uint64 // first word
	N   uint64 // word count
}

// GatherRanges materializes word ranges from many segments in one
// level-order walk: lines shared *across* segments — deduplicated string
// fragments, common value pages — are fetched once per wave, not once
// per segment. Result i holds range i's words (indexes past the
// segment's capacity read as zero). All ranges must come from the same
// memory system m.
func GatherRanges(m word.Mem, rs []Range) [][]uint64 {
	total := uint64(0)
	for _, r := range rs {
		total += r.N
	}
	flat := make([]uint64, total)
	out := make([][]uint64, len(rs))
	var sc pool.Scratch
	defer sc.Release()
	nodes := poolBulkNodes.GetCap(&sc, len(rs))
	// One request arena carved per range instead of one allocation each.
	arena := poolReqs.Get(&sc, int(total))
	used := 0
	arity := m.LineWords()
	base := uint64(0)
	for i, r := range rs {
		out[i] = flat[base : base+r.N : base+r.N]
		if r.Seg.Root != word.Zero && r.N > 0 {
			capRoot := r.Seg.Capacity(arity)
			reqs := arena[used:used]
			for j := uint64(0); j < r.N; j++ {
				if r.Off+j < capRoot {
					reqs = append(reqs, bulkReq{out: base + j, idx: r.Off + j})
				}
			}
			used += len(reqs)
			if len(reqs) > 0 {
				nodes = append(nodes, bulkNode{e: PLIDEdge(r.Seg.Root), lvl: r.Seg.Height, reqs: reqs})
			}
		}
		base += r.N
	}
	if len(nodes) > 0 {
		gather(m, nodes, flat, nil)
	}
	return out
}

// ChildrenBulk returns the child edges of every edge in es at the given
// level, semantically len(es) Children calls but with every distinct
// line fetched once through the batch read path. The returned edges are
// borrowed — they own no references.
func ChildrenBulk(m word.Mem, es []Edge, level int) [][]Edge {
	arity := m.LineWords()
	out := make([][]Edge, len(es))
	var sc pool.Scratch
	defer sc.Release()
	plids := poolPLIDs.GetCap(&sc, len(es))
	at := poolPlidAt.Get(&sc)
	for i, e := range es {
		if e.T == word.TagPLID && e.W != 0 {
			p := word.PLID(e.W)
			if _, ok := at[p]; !ok {
				at[p] = len(plids)
				plids = append(plids, p)
			}
			continue
		}
		// Zero, inline and compact edges expand without memory accesses.
		out[i] = Children(m, e, level)
	}
	if len(plids) == 0 {
		return out
	}
	contents := poolContents.Get(&sc, len(plids))
	word.Caps(m).ReadBatchInto(plids, contents)
	for i, e := range es {
		if e.T != word.TagPLID || e.W == 0 {
			continue
		}
		c := contents[at[word.PLID(e.W)]]
		kids := make([]Edge, arity)
		for j := 0; j < arity; j++ {
			kids[j] = Edge{W: c.W[j], T: c.T[j]}
		}
		out[i] = kids
	}
	return out
}
