package segment

import (
	"cmp"
	"slices"

	"repro/internal/pool"
	"repro/internal/word"
)

// Wave-ordered bulk writes. A Txn commits one root-to-leaf path walk per
// transient node, depth-first; k independent Set-style updates therefore
// cost k path rebuilds even when they land in sibling slots of the same
// lines. WriteBatch applies a whole update set against one root in two
// level-order sweeps instead: a top-down descent that expands only the
// touched sub-DAG (every distinct line fetched once per level through the
// batch read path) and a bottom-up canonicalization that resolves each
// level's fresh lines in a single batch lookup. Untouched sub-DAGs pass
// through by PLID — zero reads, zero reference-count traffic — which is
// the write-side half of the paper's claim that segment updates cost
// O(changed paths), not O(size) (§3.3–3.4).
//
// The result is bit-identical to buffering the same writes in a Txn and
// committing: same canonical rules (zero elision, inlining, path
// compaction), same growth re-rooting, same reference-count ownership —
// so the root PLID, and with an ample LLC the simulated-DRAM accounting,
// match the serial path-by-path commit exactly when no two updates share
// line content (and come out strictly cheaper when they do).

// Update is one word write for WriteBatch: set the tagged word at Idx.
// Later updates to the same index win, like sequential WriteWord calls.
type Update struct {
	Idx uint64
	W   uint64
	T   word.Tag
}

// WriteStats describes one WriteBatch wave commit.
type WriteStats struct {
	Updates          uint64 // updates submitted (before last-wins collapse)
	WaveLevels       uint64 // DAG levels canonicalized, one batch pass each
	SiblingCoalesced uint64 // updates beyond the first landing in an already-touched leaf (exact-index duplicates included)
	PathsRebuilt     uint64 // distinct leaf lines (root-to-leaf paths) rebuilt
	PassThrough      uint64 // untouched non-zero child edges passed through by PLID
	LineReads        uint64 // distinct lines fetched during the descent
	Lookups          uint64 // lookup-by-content operations issued at canonicalization
}

// Add accumulates o into s.
func (s *WriteStats) Add(o WriteStats) {
	s.Updates += o.Updates
	s.WaveLevels += o.WaveLevels
	s.SiblingCoalesced += o.SiblingCoalesced
	s.PathsRebuilt += o.PathsRebuilt
	s.PassThrough += o.PassThrough
	s.LineReads += o.LineReads
	s.Lookups += o.Lookups
}

// wnode is one touched node of the write wave: the original subtree edge
// it replaces, its expanded child edges (borrowed from the immutable DAG,
// overlaid by owned fresh edges as lower levels canonicalize), and the
// updates that land inside it (indices relative to the subtree base).
// Growth spine nodes are synthetic — they replace no edge and arrive with
// their child edges prefilled.
type wnode struct {
	level int
	e     Edge // original edge; meaningful only when !pre
	pre   bool // edges prefilled (growth spine); skip expansion
	edges []Edge
	owned []bool // edges[i] is a fresh canonicalized child we must release
	ups   []Update
	slots []int // child slots rebuilt below, parallel to kids
	kids  []*wnode
	out   Edge // canonical replacement edge (owns its PLID reference)
}

// wnodePool recycles wave nodes across WriteBatch calls, keeping the
// edges/owned/slots/kids capacities a node accumulated. The reset drops
// the *wnode links and the borrowed ups subslice so a parked node
// retains nothing from the wave it served.
var wnodePool = pool.NewItems[wnode]("segment.wnode", func(n *wnode) {
	clear(n.kids)
	*n = wnode{
		edges: n.edges[:0],
		owned: n.owned[:0],
		slots: n.slots[:0],
		kids:  n.kids[:0],
	}
})

// getWnode borrows a wave node with its child-edge arrays sized and
// zeroed for arity children.
func getWnode(level, arity int) *wnode {
	n := wnodePool.Get()
	n.level = level
	if cap(n.edges) < arity {
		n.edges = make([]Edge, arity)
		n.owned = make([]bool, arity)
	} else {
		n.edges = n.edges[:arity]
		n.owned = n.owned[:arity]
		clear(n.edges)
		clear(n.owned)
	}
	return n
}

// WriteBatch applies ups to s as one wave-ordered bulk commit and returns
// the new segment; the caller owns one reference on its root and keeps
// ownership of s (exactly the Txn.Commit contract). The segment grows to
// fit out-of-capacity indices the way Txn.grow re-roots. An empty update
// set retains and returns s unchanged.
func WriteBatch(m word.Mem, s Seg, ups []Update) (Seg, WriteStats) {
	var st WriteStats
	st.Updates = uint64(len(ups))
	if len(ups) == 0 {
		RetainSeg(m, s)
		return s, st
	}
	arity := m.LineWords()
	caps := word.Caps(m)
	var sc pool.Scratch
	defer sc.Release()

	// Last-wins collapse to one update per index, then index order.
	at := poolIdxAt.Get(&sc)
	uniq := poolUpdates.GetCap(&sc, len(ups))
	for _, u := range ups {
		if j, ok := at[u.Idx]; ok {
			uniq[j] = u
		} else {
			at[u.Idx] = len(uniq)
			uniq = append(uniq, u)
		}
	}
	slices.SortFunc(uniq, func(a, b Update) int { return cmp.Compare(a.Idx, b.Idx) })
	// Exact-index duplicates coalesced by the collapse above; the leaf
	// overlay adds the sibling-sharing remainder, so the invariant
	// PathsRebuilt + SiblingCoalesced == Updates always holds.
	st.SiblingCoalesced = uint64(len(ups) - len(uniq))

	// Grow the logical height until every index fits (Txn.grow).
	height := s.Height
	for uniq[len(uniq)-1].Idx >= capacity(arity, height) {
		height++
	}

	// A level can hold at most one node per distinct updated index, plus
	// one synthetic growth-spine node — so every level's node buffer (and
	// the per-level fetch buffers below) is sized once, up front.
	maxNodes := len(uniq) + 1
	levels := poolWLevels.Get(&sc, height+1)
	for i := range levels {
		levels[i] = poolWNodes.GetCap(&sc, maxNodes)
	}
	add := func(n *wnode) { levels[n.level] = append(levels[n.level], n) }

	var root *wnode
	if height == s.Height {
		root = getWnode(height, arity)
		root.e, root.ups = PLIDEdge(s.Root), uniq
		add(root)
	} else {
		// Growth re-rooting: a spine of synthetic nodes whose child 0
		// carries the zero-extended original segment, mirroring the
		// transient parents Txn.grow stacks above the old root.
		root = getWnode(height, arity)
		root.pre, root.ups = true, uniq
		add(root)
		cur := root
		for lvl := height - 1; lvl > s.Height; lvl-- {
			kid := getWnode(lvl, arity)
			kid.pre = true
			cur.slots = append(cur.slots, 0)
			cur.kids = append(cur.kids, kid)
			add(kid)
			cur = kid
		}
		cur.edges[0] = PLIDEdge(s.Root)
	}

	// Top-down descent: expand each level's touched nodes (one deduped
	// batch read per level), then partition their updates over children.
	plids := poolPLIDs.GetCap(&sc, maxNodes)
	contentsBuf := poolContents.Get(&sc, maxNodes)
	readAt := poolPlidAt.Get(&sc)
	for lvl := height; lvl >= 0; lvl-- {
		nodes := levels[lvl]
		if len(nodes) == 0 {
			continue
		}
		// Collect the level's fetch set: each distinct line once.
		plids = plids[:0]
		clear(readAt)
		for _, n := range nodes {
			if !n.pre && n.e.T == word.TagPLID && n.e.W != 0 {
				p := word.PLID(n.e.W)
				if _, ok := readAt[p]; !ok {
					readAt[p] = len(plids)
					plids = append(plids, p)
				}
			}
		}
		var contents []word.Content
		if len(plids) > 0 {
			contents = contentsBuf[:len(plids)]
			caps.ReadBatchInto(plids, contents)
			st.LineReads += uint64(len(plids))
		}
		for _, n := range nodes {
			if !n.pre {
				switch {
				case n.e.IsZero():
				case n.e.T == word.TagPLID:
					c := contents[readAt[word.PLID(n.e.W)]]
					for i := 0; i < arity; i++ {
						n.edges[i] = Edge{W: c.W[i], T: c.T[i]}
					}
				default:
					// Inline and compact edges expand without memory
					// accesses, exactly as in the serial walk.
					n.edges = ChildrenInto(m, n.e, n.level, n.edges)
				}
			}
			if lvl == 0 {
				// Leaf overlay: the updates are the new tagged words.
				for _, u := range n.ups {
					n.edges[int(u.Idx)] = Edge{W: u.W, T: u.T}
				}
				st.PathsRebuilt++
				st.SiblingCoalesced += uint64(len(n.ups)) - 1
				continue
			}
			// Partition the node's updates over its children; contiguous
			// runs share a child because updates are in index order.
			sub := capacity(arity, lvl-1)
			for lo := 0; lo < len(n.ups); {
				slot := int(n.ups[lo].Idx / sub)
				hi := lo
				for hi < len(n.ups) && int(n.ups[hi].Idx/sub) == slot {
					hi++
				}
				childUps := n.ups[lo:hi]
				for i := range childUps {
					childUps[i].Idx -= uint64(slot) * sub
				}
				if kid := n.kidAt(slot); kid != nil {
					kid.ups = childUps // pre-linked growth spine child
				} else {
					kid := getWnode(lvl-1, arity)
					kid.e, kid.ups = n.edges[slot], childUps
					n.slots = append(n.slots, slot)
					n.kids = append(n.kids, kid)
					add(kid)
				}
				lo = hi
			}
			for i := 0; i < arity; i++ {
				if n.kidAt(i) == nil && !n.edges[i].IsZero() {
					st.PassThrough++
				}
			}
		}
	}

	// Bottom-up canonicalization: one batched lookup pass per level.
	// Fresh child references release only after their parent level
	// resolves — the parent lines take their own references during the
	// lookup, which needs the children still live (Builder rule).
	cb := AcquireCanonBatch(m, caps)
	for lvl := 0; lvl <= height; lvl++ {
		nodes := levels[lvl]
		if len(nodes) == 0 {
			continue
		}
		st.WaveLevels++
		for _, n := range nodes {
			for i, slot := range n.slots {
				n.edges[slot] = n.kids[i].out
				n.owned[slot] = true
			}
			if lvl == 0 {
				cb.Leaf(n.edges, &n.out)
			} else {
				cb.Node(n.edges, &n.out)
			}
		}
		st.Lookups += cb.Resolve()
		for _, n := range nodes {
			for i := range n.edges {
				if n.owned[i] {
					n.edges[i].Release(m)
					n.owned[i] = false
				}
			}
		}
	}
	cb.Close()
	result := Seg{Root: materializeRoot(m, root.out), Height: height}
	// Park the wave: every node returns to the pool before the level
	// buffers go back to theirs.
	for _, nodes := range levels {
		for _, n := range nodes {
			wnodePool.Put(n)
		}
	}
	return result, st
}

// kidAt returns the rebuilt child at slot, if any.
func (n *wnode) kidAt(slot int) *wnode {
	for i, s := range n.slots {
		if s == slot {
			return n.kids[i]
		}
	}
	return nil
}
