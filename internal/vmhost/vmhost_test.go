package vmhost

import "testing"

func TestHicampAlwaysBeatsPageSharing(t *testing.T) {
	// Figures 9-10 shape: HICAMP line dedup consumes no more than ideal
	// page sharing at every point (line dedup subsumes page dedup).
	for _, c := range Classes() {
		for _, p := range ScaleVMs(c, 6) {
			if p.Hicamp > p.PageShared {
				t.Fatalf("%s at %d VMs: HICAMP %d > page sharing %d",
					c.Name, p.N, p.Hicamp, p.PageShared)
			}
			if p.PageShared > p.Allocated {
				t.Fatalf("%s: page sharing exceeds allocation", c.Name)
			}
		}
	}
}

func TestGapWidensWithVMCount(t *testing.T) {
	// Adding same-class VMs adds mostly shared content: both compaction
	// factors must grow with N, with HICAMP growing at least as fast.
	c, _ := ClassByName("database")
	pts := ScaleVMs(c, 10)
	first, last := pts[0], pts[len(pts)-1]
	if last.CompactionHicamp() <= first.CompactionHicamp() {
		t.Fatalf("HICAMP compaction flat: %.2f -> %.2f",
			first.CompactionHicamp(), last.CompactionHicamp())
	}
	if last.CompactionHicamp() <= last.CompactionPageShare() {
		t.Fatalf("at 10 VMs HICAMP %.2fx <= page sharing %.2fx",
			last.CompactionHicamp(), last.CompactionPageShare())
	}
}

func TestVMCompactionRangesMatchPaper(t *testing.T) {
	// Paper: at 10 VMs HICAMP compacts 1.86x-10.87x, ideal page sharing
	// 1.44x-5.21x. Assert each class lands inside a tolerant envelope.
	for _, c := range Classes() {
		pts := ScaleVMs(c, 10)
		last := pts[len(pts)-1]
		hc, pc := last.CompactionHicamp(), last.CompactionPageShare()
		if hc < 1.5 || hc > 14 {
			t.Errorf("%s: HICAMP compaction %.2fx outside [1.5, 14]", c.Name, hc)
		}
		if pc < 1.2 || pc > 7 {
			t.Errorf("%s: page-share compaction %.2fx outside [1.2, 7]", c.Name, pc)
		}
	}
}

func TestStandbyCompactsMost(t *testing.T) {
	// An idle VM is mostly OS + zero pages: the best case in Figure 9.
	var standby, database float64
	for _, c := range Classes() {
		pts := ScaleVMs(c, 10)
		f := pts[len(pts)-1].CompactionHicamp()
		switch c.Name {
		case "standby":
			standby = f
		case "database":
			database = f
		}
	}
	if standby <= database {
		t.Fatalf("standby %.2fx <= database %.2fx", standby, database)
	}
}

func TestTilesMatchPaperShape(t *testing.T) {
	// Figure 10: tiles compact >3.55x under HICAMP but only ~1.8x under
	// ideal page sharing.
	pts := ScaleTiles(10)
	last := pts[len(pts)-1]
	if hc := last.CompactionHicamp(); hc < 2.5 {
		t.Fatalf("tile HICAMP compaction %.2fx, want > 2.5", hc)
	}
	if pc := last.CompactionPageShare(); pc < 1.3 || pc > 3.5 {
		t.Fatalf("tile page-share compaction %.2fx, want ~1.8", pc)
	}
	if last.CompactionHicamp() < 1.5*last.CompactionPageShare() {
		t.Fatalf("HICAMP %.2fx not well above page sharing %.2fx",
			last.CompactionHicamp(), last.CompactionPageShare())
	}
}

func TestMonotoneAllocation(t *testing.T) {
	pts := ScaleTiles(5)
	for i := 1; i < len(pts); i++ {
		if pts[i].Allocated <= pts[i-1].Allocated ||
			pts[i].Hicamp < pts[i-1].Hicamp ||
			pts[i].PageShared < pts[i-1].PageShared {
			t.Fatalf("non-monotone consumption at tile %d", pts[i].N)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := ScaleTiles(3)
	b := ScaleTiles(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tile scaling not deterministic")
		}
	}
}

func TestDeltaPagesDefeatPageSharingOnly(t *testing.T) {
	// A class of pure deltified pages: page sharing saves nothing across
	// instances (every page differs) while HICAMP shares most lines.
	c := Class{Name: "deltaonly", Pages: 64, Delta: 1.0, OS: 1, DeltaLines: 4}
	mt := NewMeter()
	mt.AddVM(c, 0)
	mt.AddVM(c, 1)
	if got := mt.PageSharedBytes(); got != mt.AllocatedBytes() {
		t.Fatalf("page sharing shared deltified pages: %d of %d", got, mt.AllocatedBytes())
	}
	if float64(mt.HicampBytes()) > 0.7*float64(mt.AllocatedBytes()) {
		t.Fatalf("HICAMP shared only %d of %d deltified bytes",
			mt.AllocatedBytes()-mt.HicampBytes(), mt.AllocatedBytes())
	}
}

func TestClassByName(t *testing.T) {
	if _, ok := ClassByName("database"); !ok {
		t.Fatal("database class missing")
	}
	if _, ok := ClassByName("nope"); ok {
		t.Fatal("unknown class found")
	}
}
