package vmhost

import (
	"math/rand"
	"testing"
)

func TestPageDeltaIdenticalImages(t *testing.T) {
	m := ingestMachine()
	h := NewHost(m)
	defer h.Close()
	c, _ := ClassByName("file")
	a := h.Ingest(c, 0)
	b := h.Ingest(c, 0)
	rep := PageDelta(m, a, b)
	if len(rep.Pages) != 0 || rep.WordsDiffer != 0 {
		t.Fatalf("identical images reported delta: %+v", rep)
	}
	// Identical roots: the whole comparison is one PLID check, zero reads.
	if rep.Diff.LineReads != 0 {
		t.Fatalf("identical images read %d lines", rep.Diff.LineReads)
	}
}

func TestPageDeltaReportsModifiedPages(t *testing.T) {
	m := ingestMachine()
	h := NewHost(m)
	defer h.Close()

	const pages = 64
	image := make([]byte, pages*PageBytes)
	rand.New(rand.NewSource(51)).Read(image)
	a := h.IngestImage(image)

	mod := append([]byte(nil), image...)
	wantPages := []int{3, 17, 40}
	for _, p := range wantPages {
		mod[p*PageBytes+100]++
	}
	b := h.IngestImage(mod)

	rep := PageDelta(m, a, b)
	if len(rep.Pages) != len(wantPages) {
		t.Fatalf("delta pages = %v, want %v", rep.Pages, wantPages)
	}
	for i, p := range wantPages {
		if rep.Pages[i] != p {
			t.Fatalf("delta pages = %v, want %v", rep.Pages, wantPages)
		}
	}
	if rep.WordsDiffer != uint64(len(wantPages)) {
		t.Fatalf("WordsDiffer = %d, want %d (one byte per page)", rep.WordsDiffer, len(wantPages))
	}
	if rep.Diff.SubDAGSkips == 0 {
		t.Fatalf("no sub-DAG skips across near-identical images: %+v", rep.Diff)
	}
	// The walk must stay proportional to the modified paths.
	total := m.LiveLines()
	if rep.Diff.LineReads > total/4 {
		t.Fatalf("delta read %d lines of %d live — not proportional to changes", rep.Diff.LineReads, total)
	}
}
