package vmhost

import (
	"repro/internal/segment"
	"repro/internal/word"
)

// Host ingests synthesized VM images into a real deduplicating memory
// system, complementing the hash-counting Meter: where the Meter predicts
// the line population, the Host actually builds each VM image as one
// segment, so dedup happens in the store and the footprint includes the
// DAG's interior nodes. One bulk builder is shared across all ingested
// VMs — its memo makes the heavy cross-VM redundancy (OS pages, app
// pages, delta ancestors) resolve without store lookup traffic.
type Host struct {
	m   word.Mem
	b   *segment.Builder
	vms []segment.Seg
}

// NewHost creates an ingest host over m. For footprints comparable with
// the Meter, m should use 64-byte lines (the Figure 9/10 configuration).
func NewHost(m word.Mem) *Host {
	return &Host{m: m, b: segment.NewBuilder(m, 0)}
}

// Ingest synthesizes one VM image and builds it as a segment through the
// bulk pipeline. The Host keeps the segment alive (the VM is "running")
// until Close; the returned segment is valid for that lifetime. Identical
// images — same class, same instance — land on identical roots.
func (h *Host) Ingest(c Class, instance int) segment.Seg {
	image := make([]byte, 0, c.Pages*PageBytes)
	SynthesizeVM(c, instance, func(page []byte) {
		image = append(image, page...)
	})
	return h.IngestImage(image)
}

// IngestImage builds an already-materialized VM image (any byte string —
// a migration stream, a checkpoint file) as a segment through the bulk
// pipeline, with the same lifetime rules as Ingest.
func (h *Host) IngestImage(image []byte) segment.Seg {
	seg := h.b.BuildBytes(image)
	h.vms = append(h.vms, seg)
	return seg
}

// VMs returns the ingested images, in order.
func (h *Host) VMs() []segment.Seg { return h.vms }

// Close powers off every VM: all image segments and the builder's memo
// references are released.
func (h *Host) Close() {
	for _, s := range h.vms {
		segment.ReleaseSeg(h.m, s)
	}
	h.vms = nil
	h.b.Close()
}
