package vmhost

import (
	"math/rand"
	"testing"
)

// Patching pages in place must land on the same canonical segment as
// ingesting the patched image from scratch (content uniqueness on one
// machine: same bytes, same root), and the wave commit must pass the
// untouched page sub-DAGs through without rebuilding them.
func TestPatchVMMatchesReingest(t *testing.T) {
	m := ingestMachine()
	h := NewHost(m)
	defer h.Close()

	const pages = 64
	image := make([]byte, pages*PageBytes)
	rand.New(rand.NewSource(91)).Read(image)
	orig := h.IngestImage(image) // stays live: the "before" version
	_ = h.IngestImage(image)     // vms[1]: the VM being patched

	patchPages := []int{5, 20, 21, 63}
	var patches []PagePatch
	want := append([]byte(nil), image...)
	rng := rand.New(rand.NewSource(92))
	for _, p := range patchPages {
		data := make([]byte, PageBytes)
		rng.Read(data)
		copy(want[p*PageBytes:], data)
		patches = append(patches, PagePatch{Page: p, Data: data})
	}

	patched, st := h.PatchVM(1, patches)
	expect := h.IngestImage(want)
	if !patched.Equal(expect) {
		t.Fatalf("patched root %#x/h%d != re-ingested %#x/h%d",
			patched.Root, patched.Height, expect.Root, expect.Height)
	}
	if st.PassThrough == 0 {
		t.Fatalf("no sub-DAG pass-throughs on a 4-of-64-page patch: %+v", st)
	}
	if st.Updates != uint64(len(patchPages)*pageWords) {
		t.Fatalf("updates = %d, want %d", st.Updates, len(patchPages)*pageWords)
	}

	// The delta between the before image and the patched VM is exactly
	// the patched page set.
	rep := PageDelta(m, orig, patched)
	if len(rep.Pages) != len(patchPages) {
		t.Fatalf("delta pages = %v, want %v", rep.Pages, patchPages)
	}
	for i, p := range patchPages {
		if rep.Pages[i] != p {
			t.Fatalf("delta pages = %v, want %v", rep.Pages, patchPages)
		}
	}
}

// A zero-padded short patch clears the rest of its page.
func TestPatchVMShortDataZeroPads(t *testing.T) {
	m := ingestMachine()
	h := NewHost(m)
	defer h.Close()

	image := make([]byte, 8*PageBytes)
	rand.New(rand.NewSource(93)).Read(image)
	h.IngestImage(image)

	patched, _ := h.PatchVM(0, []PagePatch{{Page: 2, Data: []byte("short")}})
	want := append([]byte(nil), image...)
	for i := range want[2*PageBytes : 3*PageBytes] {
		want[2*PageBytes+i] = 0
	}
	copy(want[2*PageBytes:], "short")
	expect := h.IngestImage(want)
	if !patched.Equal(expect) {
		t.Fatalf("zero-padded patch root %#x != expected %#x", patched.Root, expect.Root)
	}
}
