package vmhost

import (
	"fmt"

	"repro/internal/segment"
)

// PagePatch replaces one page of an ingested VM image. Data shorter than
// PageBytes is zero-padded to the page boundary.
type PagePatch struct {
	Page int
	Data []byte
}

// PatchVM applies page-granularity writes to ingested VM i in one wave
// commit — the dirty-page application side of live migration or
// incremental checkpoint restore, the inverse of PageDelta. All patched
// pages' words form a single segment.WriteBatch update set: sibling
// pages canonicalize level by level through batched lookups, and every
// untouched sub-DAG passes through by PLID without a read. The host's
// entry is replaced (the old image version is released) and the new
// segment plus the wave counters are returned.
func (h *Host) PatchVM(i int, patches []PagePatch) (segment.Seg, segment.WriteStats) {
	if i < 0 || i >= len(h.vms) {
		panic(fmt.Sprintf("vmhost: PatchVM index %d out of range (%d VMs)", i, len(h.vms)))
	}
	ups := make([]segment.Update, 0, len(patches)*pageWords)
	for _, p := range patches {
		base := uint64(p.Page) * pageWords
		for w := 0; w < pageWords; w++ {
			var v uint64
			for b := 0; b < 8; b++ {
				if off := w*8 + b; off < len(p.Data) {
					v |= uint64(p.Data[off]) << (8 * b)
				}
			}
			ups = append(ups, segment.Update{Idx: base + uint64(w), W: v})
		}
	}
	next, st := segment.WriteBatch(h.m, h.vms[i], ups)
	segment.ReleaseSeg(h.m, h.vms[i])
	h.vms[i] = next
	return next, st
}
