package vmhost

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/segment"
)

func ingestMachine() *core.Machine {
	return core.NewMachine(core.Config{
		LineBytes: 64, BucketBits: 16, DataWays: 12, CacheLines: 2048, CacheWays: 8,
	})
}

func TestIngestIdenticalVMsShareEverything(t *testing.T) {
	m := ingestMachine()
	h := NewHost(m)
	c, _ := ClassByName("file")

	a := h.Ingest(c, 0)
	lines := m.LiveLines()
	b := h.Ingest(c, 0) // same class, same instance: identical image
	if !a.Equal(b) {
		t.Fatalf("identical VM images got roots %#x vs %#x", a.Root, b.Root)
	}
	if added := m.LiveLines() - lines; added != 0 {
		t.Fatalf("re-ingesting an identical VM allocated %d new lines", added)
	}
	h.Close()
	if live := m.LiveLines(); live != 0 {
		t.Fatalf("%d lines leaked after Close", live)
	}
}

func TestIngestSameClassSharesMostLines(t *testing.T) {
	// A second instance of the same class shares OS, app and delta-ancestor
	// content: it must allocate well under half of what the first did.
	m := ingestMachine()
	h := NewHost(m)
	defer h.Close()
	c, _ := ClassByName("web")

	h.Ingest(c, 0)
	first := m.LiveLines()
	h.Ingest(c, 1)
	added := m.LiveLines() - first
	if added*2 >= first {
		t.Fatalf("second instance allocated %d of %d lines; cross-VM sharing missing", added, first)
	}
}

func TestIngestMatchesSynthesis(t *testing.T) {
	// The segment must hold exactly the synthesized image bytes.
	m := ingestMachine()
	h := NewHost(m)
	defer h.Close()
	c, _ := ClassByName("standby")

	var want []byte
	SynthesizeVM(c, 3, func(page []byte) { want = append(want, page...) })
	seg := h.Ingest(c, 3)
	got := segment.ReadBytes(m, seg, 0, uint64(len(want)))
	if !bytes.Equal(got, want) {
		t.Fatalf("ingested image does not match synthesis (%d vs %d bytes)", len(got), len(want))
	}
}
