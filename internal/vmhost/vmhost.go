// Package vmhost reproduces the virtual-machine hosting study of §5.3
// (Figures 9 and 10): the memory consumed by scaled-out VMmark-style
// workloads under (a) plain allocation, (b) an *ideal* page-sharing
// hypervisor that instantly shares every identical 4 KB page, and (c)
// HICAMP's 64-byte line deduplication.
//
// VM memory images are synthesized (the paper used VMware snapshots; see
// DESIGN.md) with the structure that drives the comparison: OS pages
// identical across VMs running the same OS, application pages identical
// across VMs of the same workload, *deltified* pages that differ from a
// shared ancestor in a few lines (the case page sharing loses and line
// dedup wins), zero pages, partially-zero pages, and unique pages.
// Page and line populations are counted with streaming 64-bit hashes;
// images are never held in memory.
package vmhost

import (
	"fmt"
	"math/rand"
)

// PageBytes is the page size; LineBytes the HICAMP line size of Figures
// 9-10 ("Hicamp 64B").
const (
	PageBytes = 4096
	LineBytes = 64
)

// Class describes one VMmark workload type's memory composition.
type Class struct {
	Name  string
	Pages int // pages per VM at the model scale
	// Fractions of the VM's pages (remainder is unique per VM):
	OSShare  float64 // identical across all VMs with the same OS
	AppShare float64 // identical across VMs of this class
	Delta    float64 // shared ancestor, few lines modified per VM
	Zero     float64 // all-zero (free/ballooned) pages
	PartZero float64 // unique pages that are mostly zero padding
	OS       int     // OS identity (VMmark mixes 32/64-bit OSes)

	DeltaLines int // lines modified per deltified page
}

// Classes returns the six VMmark tile workloads. Page counts are the
// paper's per-VM allocations scaled by 1/1024 (a 2 GB database server
// becomes 2 MB of modelled image); compaction ratios are scale-free.
// Compositions are calibrated so the measured compaction factors land in
// the paper's reported ranges (HICAMP 1.86x-10.87x, ideal page sharing
// 1.44x-5.21x, standby most compressible).
func Classes() []Class {
	return []Class{
		{Name: "database", Pages: 512, OSShare: 0.22, AppShare: 0.10, Delta: 0.16,
			Zero: 0.06, PartZero: 0.08, OS: 1, DeltaLines: 4},
		{Name: "java", Pages: 256, OSShare: 0.25, AppShare: 0.14, Delta: 0.22,
			Zero: 0.10, PartZero: 0.10, OS: 2, DeltaLines: 5},
		{Name: "mail", Pages: 256, OSShare: 0.28, AppShare: 0.12, Delta: 0.20,
			Zero: 0.12, PartZero: 0.10, OS: 1, DeltaLines: 4},
		{Name: "web", Pages: 128, OSShare: 0.30, AppShare: 0.16, Delta: 0.22,
			Zero: 0.12, PartZero: 0.12, OS: 3, DeltaLines: 6},
		{Name: "file", Pages: 64, OSShare: 0.30, AppShare: 0.12, Delta: 0.18,
			Zero: 0.16, PartZero: 0.14, OS: 2, DeltaLines: 4},
		{Name: "standby", Pages: 64, OSShare: 0.32, AppShare: 0.12, Delta: 0.22,
			Zero: 0.24, PartZero: 0.07, OS: 1, DeltaLines: 2},
	}
}

// ClassByName finds a workload class.
func ClassByName(name string) (Class, bool) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, true
		}
	}
	return Class{}, false
}

// Meter accumulates allocated/page-shared/line-deduped byte counts over
// any number of VM images.
type Meter struct {
	allocated uint64
	pages     map[uint64]struct{}
	lines     map[uint64]struct{}
	zeroSeen  bool
}

// NewMeter creates an empty meter.
func NewMeter() *Meter {
	return &Meter{pages: make(map[uint64]struct{}), lines: make(map[uint64]struct{})}
}

// AllocatedBytes is the plain allocation total.
func (mt *Meter) AllocatedBytes() uint64 { return mt.allocated }

// PageSharedBytes is the ideal page-sharing consumption: one copy per
// distinct page content (zero pages collapse to one too).
func (mt *Meter) PageSharedBytes() uint64 { return uint64(len(mt.pages)) * PageBytes }

// HicampBytes is the line-dedup consumption: one copy per distinct
// 64-byte line, zero lines free (the architectural zero line).
func (mt *Meter) HicampBytes() uint64 { return uint64(len(mt.lines)) * LineBytes }

// addPage hashes one page and its lines into the populations.
func (mt *Meter) addPage(page []byte) {
	mt.allocated += PageBytes
	mt.pages[hashBytes(page)] = struct{}{}
	for off := 0; off < len(page); off += LineBytes {
		line := page[off : off+LineBytes]
		if isZero(line) {
			continue // the zero line is free in HICAMP
		}
		mt.lines[hashBytes(line)] = struct{}{}
	}
}

// AddVM synthesizes one VM image of the given class and instance number
// and feeds it to the meter. Instances of the same class share OS and
// application pages; each instance's delta and unique pages differ.
func (mt *Meter) AddVM(c Class, instance int) {
	SynthesizeVM(c, instance, mt.addPage)
}

// SynthesizeVM generates the pages of one VM image in order, calling emit
// for each. The page buffer is reused between calls — emit must consume
// (hash, copy, append) before returning. Both the streaming Meter and the
// store-backed Host ingest consume the same synthesis through this hook.
func SynthesizeVM(c Class, instance int, emit func(page []byte)) {
	page := make([]byte, PageBytes)
	nOS := int(float64(c.Pages) * c.OSShare)
	nApp := int(float64(c.Pages) * c.AppShare)
	nDelta := int(float64(c.Pages) * c.Delta)
	nZero := int(float64(c.Pages) * c.Zero)
	nPart := int(float64(c.Pages) * c.PartZero)
	nUnique := c.Pages - nOS - nApp - nDelta - nZero - nPart
	if nUnique < 0 {
		panic(fmt.Sprintf("vmhost: class %s fractions exceed 1", c.Name))
	}

	for i := 0; i < nOS; i++ {
		fillSeeded(page, seedFor("os", c.OS, 0, i), 0)
		emit(page)
	}
	for i := 0; i < nApp; i++ {
		fillSeeded(page, seedFor("app:"+c.Name, 0, 0, i), 0)
		emit(page)
	}
	for i := 0; i < nDelta; i++ {
		// Shared ancestor content, then per-instance line modifications.
		fillSeeded(page, seedFor("delta:"+c.Name, 0, 0, i), 0)
		rng := rand.New(rand.NewSource(seedFor("deltamod:"+c.Name, 0, instance, i)))
		for k := 0; k < c.DeltaLines; k++ {
			off := rng.Intn(PageBytes/LineBytes) * LineBytes
			rng.Read(page[off : off+LineBytes])
		}
		emit(page)
	}
	for i := 0; i < nZero; i++ {
		for b := range page {
			page[b] = 0
		}
		emit(page)
	}
	for i := 0; i < nPart; i++ {
		// Unique header lines, zero tail: buffers and stacks.
		for b := range page {
			page[b] = 0
		}
		fillSeeded(page[:4*LineBytes], seedFor("part:"+c.Name, 0, instance, i), 0)
		emit(page)
	}
	for i := 0; i < nUnique; i++ {
		fillSeeded(page, seedFor("uniq:"+c.Name, 0, instance, i), 0)
		emit(page)
	}
}

// Point is one x position of Figure 9 or 10.
type Point struct {
	N          int // VMs (Fig 9) or tiles (Fig 10)
	Allocated  uint64
	PageShared uint64
	Hicamp     uint64
}

// CompactionPageShare and CompactionHicamp are allocated/consumed.
func (p Point) CompactionPageShare() float64 {
	return float64(p.Allocated) / float64(p.PageShared)
}
func (p Point) CompactionHicamp() float64 {
	return float64(p.Allocated) / float64(p.Hicamp)
}

// ScaleVMs reproduces one Figure 9 panel: n = 1..maxVMs instances of one
// workload class on a host.
func ScaleVMs(c Class, maxVMs int) []Point {
	mt := NewMeter()
	out := make([]Point, 0, maxVMs)
	for n := 1; n <= maxVMs; n++ {
		mt.AddVM(c, n-1)
		out = append(out, Point{
			N: n, Allocated: mt.AllocatedBytes(),
			PageShared: mt.PageSharedBytes(), Hicamp: mt.HicampBytes(),
		})
	}
	return out
}

// ScaleTiles reproduces Figure 10: n = 1..maxTiles whole VMmark tiles
// (one VM of each of the six classes per tile).
func ScaleTiles(maxTiles int) []Point {
	mt := NewMeter()
	classes := Classes()
	out := make([]Point, 0, maxTiles)
	for n := 1; n <= maxTiles; n++ {
		for _, c := range classes {
			mt.AddVM(c, n-1)
		}
		out = append(out, Point{
			N: n, Allocated: mt.AllocatedBytes(),
			PageShared: mt.PageSharedBytes(), Hicamp: mt.HicampBytes(),
		})
	}
	return out
}

// fillSeeded fills b with deterministic pseudo-random content. A salt of
// 0 keeps pages with the same seed identical.
func fillSeeded(b []byte, seed int64, salt int64) {
	rng := rand.New(rand.NewSource(seed ^ salt))
	// Mix of binary content and repeated structure: real OS pages carry
	// some internal line-level redundancy.
	rng.Read(b)
	if len(b) >= 8*LineBytes && seed%3 == 0 {
		// Repeat one line a few times within the page (page tables,
		// slab headers and the like).
		src := b[:LineBytes]
		for k := 2; k < 5; k++ {
			copy(b[k*LineBytes:(k+1)*LineBytes], src)
		}
	}
}

func seedFor(kind string, os, instance, idx int) int64 {
	h := hashBytes([]byte(kind))
	h = h*1099511628211 + uint64(os+1)
	h = h*1099511628211 + uint64(instance+1)
	h = h*1099511628211 + uint64(idx+1)
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

func hashBytes(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func isZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
