package vmhost

import (
	"repro/internal/segment"
	"repro/internal/word"
)

// Page-delta reports. Two ingested VM images — a VM before and after a
// checkpoint, or two instances of one class — are canonical segments, so
// "which pages differ" is a segment.DiffWords co-walk: runs of identical
// pages are whole identical sub-DAGs and are skipped by a single PLID
// comparison, making the report cost proportional to the modified pages
// (the deltified-page population of §5.3), not the image size. This is
// the incremental-checkpoint/live-migration dirty-page question answered
// structurally, without dirty bits.

// PageDeltaReport lists the pages differing between two VM images.
type PageDeltaReport struct {
	Pages       []int // indices of pages with at least one differing word
	WordsDiffer uint64
	Diff        segment.DiffStats
}

// pageWords is how many 64-bit words one page covers.
const pageWords = PageBytes / 8

// PageDelta diffs two ingested VM images and reports the differing
// pages in ascending order. Both segments must live in m.
func PageDelta(m word.Mem, a, b segment.Seg) PageDeltaReport {
	var rep PageDeltaReport
	rep.Diff = segment.DiffWords(m, a, b, func(idx uint64, av, bv uint64, at, bt word.Tag) bool {
		rep.WordsDiffer++
		page := int(idx / pageWords)
		if n := len(rep.Pages); n == 0 || rep.Pages[n-1] != page {
			rep.Pages = append(rep.Pages, page)
		}
		return true
	})
	return rep
}
