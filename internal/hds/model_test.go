package hds

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestMapModelEquivalence drives the HICAMP map with random operation
// sequences and checks it against a plain Go map after every step — a
// model-based test of the full stack (map -> iterator register -> txn ->
// segment -> machine -> store).
func TestMapModelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := heap()
		m := NewMap(h)
		model := map[string]string{}
		keyspace := make([]string, 24)
		for i := range keyspace {
			keyspace[i] = fmt.Sprintf("key-%c-%d", 'a'+i%5, i)
		}
		for op := 0; op < 300; op++ {
			k := keyspace[rng.Intn(len(keyspace))]
			ks := NewString(h, []byte(k))
			switch rng.Intn(10) {
			case 0, 1: // delete
				if err := m.Delete(ks); err != nil {
					t.Fatalf("seed %d op %d: delete: %v", seed, op, err)
				}
				delete(model, k)
			case 2, 3, 4: // set
				v := fmt.Sprintf("value-%d-%d", seed, op)
				if rng.Intn(4) == 0 {
					v = "" // empty values must work
				}
				if err := m.Set(ks, NewString(h, []byte(v))); err != nil {
					t.Fatalf("seed %d op %d: set: %v", seed, op, err)
				}
				model[k] = v
			default: // get
				got, ok := m.Get(ks)
				want, wantOK := model[k]
				if ok != wantOK {
					t.Fatalf("seed %d op %d: presence of %q = %v, want %v", seed, op, k, ok, wantOK)
				}
				if ok {
					if string(got.Bytes(h)) != want {
						t.Fatalf("seed %d op %d: %q = %q, want %q", seed, op, k, got.Bytes(h), want)
					}
					got.Release(h)
				}
			}
			ks.Release(h)
		}
		if got, want := m.Len(), uint64(len(model)); got != want {
			t.Fatalf("seed %d: Len = %d, model has %d", seed, got, want)
		}
		// Final sweep: every model binding readable, nothing extra.
		for k, want := range model {
			ks := NewString(h, []byte(k))
			got, ok := m.Get(ks)
			if !ok || string(got.Bytes(h)) != want {
				t.Fatalf("seed %d: final %q = %q,%v want %q", seed, k, got.Bytes(h), ok, want)
			}
			got.Release(h)
			ks.Release(h)
		}
	}
}

// TestOrderedModelEquivalence does the same for the ordered collection,
// additionally checking iteration order against the sorted model.
func TestOrderedModelEquivalence(t *testing.T) {
	for seed := int64(10); seed < 13; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := heap()
		o := NewOrdered(h)
		model := map[uint64]string{}
		for op := 0; op < 200; op++ {
			k := uint64(rng.Intn(500)) * 97 // sparse keys
			switch rng.Intn(4) {
			case 0:
				o.Delete(k)
				delete(model, k)
			default:
				v := fmt.Sprintf("v%d", op)
				o.Put(k, NewString(h, []byte(v)))
				model[k] = v
			}
		}
		var visited []uint64
		o.Range(0, func(k uint64, val String) bool {
			visited = append(visited, k)
			if want := model[k]; string(val.Bytes(h)) != want {
				t.Fatalf("seed %d: [%d] = %q want %q", seed, k, val.Bytes(h), want)
			}
			return true
		})
		if len(visited) != len(model) {
			t.Fatalf("seed %d: visited %d, model %d", seed, len(visited), len(model))
		}
		for i := 1; i < len(visited); i++ {
			if visited[i-1] >= visited[i] {
				t.Fatalf("seed %d: out of order at %d", seed, i)
			}
		}
	}
}
