package hds

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/merge"
	"repro/internal/segment"
)

// setString is a test helper: bind key -> value through the per-key path.
func setString(t *testing.T, h *Heap, mp *Map, key, val string) {
	t.Helper()
	k, v := NewString(h, []byte(key)), NewString(h, []byte(val))
	if err := mp.Set(k, v); err != nil {
		t.Fatalf("Set(%q): %v", key, err)
	}
	k.Release(h)
	v.Release(h)
}

func getString(t *testing.T, h *Heap, mp *Map, key string) (string, bool) {
	t.Helper()
	k := NewString(h, []byte(key))
	defer k.Release(h)
	v, ok := mp.Get(k)
	if !ok {
		return "", false
	}
	defer v.Release(h)
	return string(v.Bytes(h)), true
}

// CompareApply against the current snapshot publishes like Apply.
func TestCompareApplyFreshSnapshot(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	setString(t, h, mp, "a", "one")

	seg, size, err := mp.SnapshotEntry()
	if err != nil {
		t.Fatal(err)
	}
	defer segment.ReleaseSeg(h.M, seg)
	if err := mp.CompareApply(seg, size, []Pair{{Key: []byte("a"), Value: []byte("two")}}, ApplyOptions{}); err != nil {
		t.Fatalf("CompareApply: %v", err)
	}
	if got, _ := getString(t, h, mp, "a"); got != "two" {
		t.Fatalf("a = %q, want two", got)
	}
}

// The CAS->merge mapping the network front end relies on: a publish
// whose snapshot went stale to *disjoint* concurrent writes rebases
// through the three-way merge and succeeds; both updates survive.
func TestCompareApplyStaleDisjointRebases(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	setString(t, h, mp, "mine", "v0")
	setString(t, h, mp, "theirs", "v0")

	seg, size, err := mp.SnapshotEntry()
	if err != nil {
		t.Fatal(err)
	}
	defer segment.ReleaseSeg(h.M, seg)

	// Interleaved commit to a different key makes the snapshot stale.
	setString(t, h, mp, "theirs", "v1")

	if err := mp.CompareApply(seg, size, []Pair{{Key: []byte("mine"), Value: []byte("v1")}}, ApplyOptions{}); err != nil {
		t.Fatalf("stale disjoint CompareApply should rebase, got %v", err)
	}
	if got, _ := getString(t, h, mp, "mine"); got != "v1" {
		t.Fatalf("mine = %q, want v1", got)
	}
	if got, _ := getString(t, h, mp, "theirs"); got != "v1" {
		t.Fatalf("theirs = %q, want v1 (interleaved write lost in rebase)", got)
	}
}

// A concurrent write to the *same* key is a true conflict: merge-update
// must refuse to silently drop either value.
func TestCompareApplySameKeyConflicts(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	setString(t, h, mp, "k", "v0")

	seg, size, err := mp.SnapshotEntry()
	if err != nil {
		t.Fatal(err)
	}
	defer segment.ReleaseSeg(h.M, seg)

	setString(t, h, mp, "k", "their-v1")

	err = mp.CompareApply(seg, size, []Pair{{Key: []byte("k"), Value: []byte("my-v1")}}, ApplyOptions{})
	if !errors.Is(err, merge.ErrConflict) {
		t.Fatalf("same-key CompareApply = %v, want merge.ErrConflict", err)
	}
	if got, _ := getString(t, h, mp, "k"); got != "their-v1" {
		t.Fatalf("k = %q, want their-v1 (conflicting publish must not land)", got)
	}
}

// NoMerge is the strict compare-and-swap: any interleaved commit — even
// to an unrelated key — fails the publish with ErrStale.
func TestCompareApplyNoMergeStale(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	setString(t, h, mp, "a", "v0")
	seg, size, err := mp.SnapshotEntry()
	if err != nil {
		t.Fatal(err)
	}
	defer segment.ReleaseSeg(h.M, seg)
	setString(t, h, mp, "b", "v0")

	err = mp.CompareApply(seg, size, []Pair{{Key: []byte("a"), Value: []byte("v1")}}, ApplyOptions{NoMerge: true})
	if !errors.Is(err, ErrStale) {
		t.Fatalf("NoMerge stale CompareApply = %v, want ErrStale", err)
	}
	if got, _ := getString(t, h, mp, "a"); got != "v0" {
		t.Fatalf("a = %q, want v0", got)
	}
}

// Delete pairs ride the same wave commit as bindings: one Apply batch
// can set and unbind in a single published version, and tombstones for
// absent keys are no-ops that do not grow the map.
func TestApplyDeleteTombstones(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	if err := mp.Apply([]Pair{
		{Key: []byte("keep"), Value: []byte("k")},
		{Key: []byte("drop"), Value: []byte("d")},
	}, ApplyOptions{}); err != nil {
		t.Fatal(err)
	}

	if err := mp.Apply([]Pair{
		{Key: []byte("drop"), Delete: true},
		{Key: []byte("new"), Value: []byte("n")},
		{Key: []byte("absent"), Delete: true},
	}, ApplyOptions{}); err != nil {
		t.Fatal(err)
	}

	if _, ok := getString(t, h, mp, "drop"); ok {
		t.Fatal("drop still bound after tombstone")
	}
	if got, _ := getString(t, h, mp, "new"); got != "n" {
		t.Fatalf("new = %q, want n", got)
	}
	if got, _ := getString(t, h, mp, "keep"); got != "k" {
		t.Fatalf("keep = %q, want k", got)
	}
	if n := mp.Len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
}

// Within one batch the later entry for a slot wins, including across the
// set/delete boundary in both directions — the overlay's last-wins rule.
func TestApplyDeleteLastWins(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	if err := mp.Apply([]Pair{
		{Key: []byte("a"), Value: []byte("a1")},
		{Key: []byte("a"), Delete: true},
		{Key: []byte("b"), Delete: true}, // absent, then bound below
		{Key: []byte("b"), Value: []byte("b1")},
	}, ApplyOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := getString(t, h, mp, "a"); ok {
		t.Fatal("a bound; trailing tombstone should win")
	}
	if got, _ := getString(t, h, mp, "b"); got != "b1" {
		t.Fatalf("b = %q, want b1", got)
	}

	// The corner the capacity skip must not break: a set that grows the
	// map beyond the snapshot's capacity, then a tombstone for the same
	// new key in the same batch — the tombstone still wins.
	mp2 := NewMap(h)
	if err := mp2.Apply([]Pair{
		{Key: []byte("grow"), Value: []byte("g1")},
		{Key: []byte("grow"), Delete: true},
	}, ApplyOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := getString(t, h, mp2, "grow"); ok {
		t.Fatal("grow bound; same-batch tombstone after growth should win")
	}
}

// Tombstone-only batches over absent keys publish nothing: the map's
// version (root) must not move.
func TestApplyDeleteAbsentIsNoOp(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	setString(t, h, mp, "x", "v")
	before, err := mp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer segment.ReleaseSeg(h.M, before)

	pairs := make([]Pair, 8)
	for i := range pairs {
		pairs[i] = Pair{Key: []byte(fmt.Sprintf("missing-%d", i)), Delete: true}
	}
	if err := mp.Apply(pairs, ApplyOptions{}); err != nil {
		t.Fatal(err)
	}
	after, err := mp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer segment.ReleaseSeg(h.M, after)
	if !before.Equal(after) {
		t.Fatalf("absent-key tombstones moved the root: %v -> %v", before, after)
	}
}

// GetManyAt against a pinned snapshot must keep answering from that
// version while the live map moves on, and its values must outlive the
// snapshot's release.
func TestGetManyAtPinnedSnapshot(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	setString(t, h, mp, "k1", "old1")
	setString(t, h, mp, "k2", "old2")

	seg, err := mp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	setString(t, h, mp, "k1", "new1")
	k1, k2 := NewString(h, []byte("k1")), NewString(h, []byte("k2"))
	defer k1.Release(h)
	defer k2.Release(h)

	vals, found := mp.GetManyAt(seg, []String{k1, k2})
	for i, ok := range found {
		if !ok {
			t.Fatalf("key %d missing under snapshot", i)
		}
	}
	segment.ReleaseSeg(h.M, seg) // values retained: must survive this
	if got := string(vals[0].Bytes(h)); got != "old1" {
		t.Fatalf("snapshot read k1 = %q, want old1", got)
	}
	if got := string(vals[1].Bytes(h)); got != "old2" {
		t.Fatalf("snapshot read k2 = %q, want old2", got)
	}
	for i := range vals {
		vals[i].Release(h)
	}
	if got, _ := getString(t, h, mp, "k1"); got != "new1" {
		t.Fatalf("live read k1 = %q, want new1", got)
	}
}
