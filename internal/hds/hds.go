// Package hds provides the HICAMP programming model of paper §4: software
// data structures — strings, arrays, maps, counters and queues — mapped
// onto segments, iterator registers and merge-update. Every object is a
// segment named by a VSID; object references are VSIDs; updates commit
// with CAS or merge-update, so every structure here is concurrency-safe
// by construction with snapshot-isolated readers.
package hds

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/iterreg"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// Heap bundles the machine and its virtual segment map: the "object
// space" applications allocate from.
type Heap struct {
	M  *core.Machine
	SM *segmap.Map
}

// NewHeap builds a heap over a fresh machine.
func NewHeap(cfg core.Config) *Heap {
	m := core.NewMachine(cfg)
	return &Heap{M: m, SM: segmap.New(m)}
}

// String is an immutable byte string stored as a segment. Because the
// representation is canonical, equal strings always have equal roots:
// comparison is O(1) ("two web pages compared in a single compare
// instruction", §2.2), and a string's root PLID is a unique key for its
// content — the property the Map type indexes on.
type String struct {
	Seg segment.Seg
	Len uint64
}

// NewString builds (or re-finds, thanks to deduplication) the string b.
// The caller owns one reference, dropped with Release.
func NewString(h *Heap, b []byte) String {
	return String{Seg: segment.BuildBytes(h.M, b), Len: uint64(len(b))}
}

// Bytes materializes the string's content.
func (s String) Bytes(h *Heap) []byte {
	return segment.ReadBytes(h.M, s.Seg, 0, s.Len)
}

// Equal is the O(1) content comparison.
func (s String) Equal(o String) bool { return s.Len == o.Len && s.Seg.Equal(o.Seg) }

// Key returns the content-unique key for the string (its root PLID).
func (s String) Key() word.PLID { return s.Seg.Root }

// Retain and Release manage the string's root reference.
func (s String) Retain(h *Heap)  { segment.RetainSeg(h.M, s.Seg) }
func (s String) Release(h *Heap) { segment.ReleaseSeg(h.M, s.Seg) }

// Array is a dynamically growable array of tagged words backed by one
// segment-map entry (§4.1: it extends without reallocation or copy, and
// out-of-range writes cannot corrupt neighbouring objects).
type Array struct {
	h    *Heap
	vsid word.VSID
}

// NewArray allocates an empty array.
func NewArray(h *Heap) *Array {
	v := h.SM.Create(segmap.Entry{Seg: segment.NewSparse(0)})
	return &Array{h: h, vsid: v}
}

// VSID returns the array's object identity.
func (a *Array) VSID() word.VSID { return a.vsid }

// Len returns the logical element count (highest committed Set + 1).
func (a *Array) Len() uint64 {
	e, err := a.h.SM.Load(a.vsid)
	if err != nil {
		return 0
	}
	defer segment.ReleaseSeg(a.h.M, e.Seg)
	return e.Size
}

// At reads element i of the current version.
func (a *Array) At(i uint64) uint64 {
	e, err := a.h.SM.Load(a.vsid)
	if err != nil {
		return 0
	}
	defer segment.ReleaseSeg(a.h.M, e.Seg)
	v, _ := segment.ReadWord(a.h.M, e.Seg, i)
	return v
}

// Set writes element i atomically (bounded CAS retry loop).
func (a *Array) Set(i, v uint64) error {
	return retryCAS(func() (bool, error) {
		it, err := iterreg.Open(a.h.M, a.h.SM, a.vsid)
		if err != nil {
			return false, err
		}
		it.Store(i, v, word.TagRaw)
		size := it.Size()
		if i+1 > size {
			size = i + 1
		}
		ok, err := it.TryCommit(size)
		it.Close()
		return ok, err
	})
}

// Append adds v at the end, returning its index.
func (a *Array) Append(v uint64) (uint64, error) {
	var idx uint64
	err := retryCAS(func() (bool, error) {
		it, err := iterreg.Open(a.h.M, a.h.SM, a.vsid)
		if err != nil {
			return false, err
		}
		i := it.Size()
		it.Store(i, v, word.TagRaw)
		ok, err := it.TryCommit(i + 1)
		it.Close()
		if ok {
			idx = i
		}
		return ok, err
	})
	return idx, err
}

// Snapshot returns a stable point-in-time view; callers release it.
func (a *Array) Snapshot() (segment.Seg, uint64, error) {
	e, err := a.h.SM.Load(a.vsid)
	if err != nil {
		return segment.Seg{}, 0, err
	}
	return e.Seg, e.Size, nil
}

// Release drops the array object.
func (a *Array) Release() error { return a.h.SM.Delete(a.vsid) }

func (a *Array) String() string { return fmt.Sprintf("hds.Array(vsid=%d)", a.vsid) }
