package hds

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestOrderedPutGetDelete(t *testing.T) {
	h := heap()
	o := NewOrdered(h)
	if _, ok := o.Get(42); ok {
		t.Fatal("empty collection returned a value")
	}
	o.Put(42, NewString(h, []byte("answer")))
	v, ok := o.Get(42)
	if !ok || string(v.Bytes(h)) != "answer" {
		t.Fatalf("get = %q, %v", v.Bytes(h), ok)
	}
	v.Release(h)
	o.Delete(42)
	if _, ok := o.Get(42); ok {
		t.Fatal("deleted key still present")
	}
}

func TestOrderedIterationInKeyOrder(t *testing.T) {
	h := heap()
	o := NewOrdered(h)
	keys := []uint64{9000, 3, 77, 100000, 512, 1}
	for _, k := range keys {
		o.Put(k, NewString(h, []byte(fmt.Sprintf("v%d", k))))
	}
	var got []uint64
	o.Range(0, func(k uint64, val String) bool {
		got = append(got, k)
		if want := fmt.Sprintf("v%d", k); string(val.Bytes(h)) != want {
			t.Fatalf("value at %d = %q", k, val.Bytes(h))
		}
		return true
	})
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(got) != len(sorted) {
		t.Fatalf("visited %v", got)
	}
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("order %v, want %v", got, sorted)
		}
	}
}

func TestOrderedRangeFromAndEarlyStop(t *testing.T) {
	h := heap()
	o := NewOrdered(h)
	for _, k := range []uint64{10, 20, 30, 40} {
		o.Put(k, NewString(h, []byte("x")))
	}
	var got []uint64
	o.Range(15, func(k uint64, _ String) bool {
		got = append(got, k)
		return k < 30
	})
	if len(got) != 2 || got[0] != 20 || got[1] != 30 {
		t.Fatalf("got %v, want [20 30]", got)
	}
	if k, ok := o.First(21); !ok || k != 30 {
		t.Fatalf("First(21) = %d,%v", k, ok)
	}
}

func TestOrderedSnapshotIterationUnderWrites(t *testing.T) {
	// §4.2: iteration visits the collection exactly as it was when the
	// register was loaded, independent of concurrent updates.
	h := heap()
	o := NewOrdered(h)
	for k := uint64(0); k < 50; k++ {
		o.Put(k*10, NewString(h, []byte("original")))
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent writer churning the collection
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.Intn(50)) * 10
			o.Put(k, NewString(h, []byte("mutated!")))
		}
	}()
	for round := 0; round < 5; round++ {
		count := 0
		var vals []string
		o.Range(0, func(k uint64, v String) bool {
			count++
			vals = append(vals, string(v.Bytes(h)))
			return true
		})
		if count != 50 {
			t.Fatalf("snapshot saw %d elements, want 50", count)
		}
		// Values within one snapshot are whatever was committed at load
		// time — but each must be intact (never a torn mix).
		for _, v := range vals {
			if v != "original" && v != "mutated!" {
				t.Fatalf("torn value %q", v)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestOrderedConcurrentDisjointPuts(t *testing.T) {
	h := heap()
	o := NewOrdered(h)
	var wg sync.WaitGroup
	const workers, each = 6, 25
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				k := uint64(g*1000 + i)
				if err := o.Put(k, NewString(h, []byte(fmt.Sprintf("w%d", g)))); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	count := 0
	o.Range(0, func(uint64, String) bool { count++; return true })
	if count != workers*each {
		t.Fatalf("lost inserts: %d of %d visible", count, workers*each)
	}
}

func TestOrderedSparseKeysAreCheap(t *testing.T) {
	// A timestamp-keyed collection has a huge sparse index space; path
	// compaction must keep the footprint proportional to the population.
	h := heap()
	o := NewOrdered(h)
	before := h.M.LiveLines()
	o.Put(1<<40, NewString(h, []byte("far future")))
	added := h.M.LiveLines() - before
	if added > 30 {
		t.Fatalf("one element at key 2^40 allocated %d lines", added)
	}
}
