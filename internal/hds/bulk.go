package hds

import (
	"repro/internal/iterreg"
	"repro/internal/merge"
	"repro/internal/segment"
	"repro/internal/word"
)

// Pair is one key/value binding for bulk map loading.
type Pair struct {
	Key, Value []byte
}

// Item is one numeric-key binding for bulk ordered loading.
type Item struct {
	Key   uint64
	Value []byte
}

// NewStrings builds many strings through one segment.Builder, so repeated
// strings and shared prefixes hit the builder's memo instead of issuing
// per-line store lookups. The caller owns one reference per string.
func NewStrings(h *Heap, bss [][]byte) []String {
	b := segment.NewBuilder(h.M, 0)
	defer b.Close()
	out := make([]String, len(bss))
	for i, bs := range bss {
		out[i] = String{Seg: b.BuildBytes(bs), Len: uint64(len(bs))}
	}
	return out
}

// SetMany binds every pair, replacing previous bindings, in one committed
// update: all key and value strings are built through a shared bulk
// builder (one batch-lookup pipeline, memoized across pairs), then every
// slot is written under a single iterator transaction with one merge
// commit — instead of one open/commit round trip per key. Later duplicates
// of a key win, matching sequential Set calls.
func (mp *Map) SetMany(pairs []Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	keys := make([]String, len(pairs))
	vals := make([]String, len(pairs))
	{
		b := segment.NewBuilder(mp.h.M, 0)
		for i, p := range pairs {
			keys[i] = String{Seg: b.BuildBytes(p.Key), Len: uint64(len(p.Key))}
			vals[i] = String{Seg: b.BuildBytes(p.Value), Len: uint64(len(p.Value))}
		}
		b.Close()
	}
	err := retryCAS(func() (bool, error) {
		it, err := iterreg.Open(mp.h.M, mp.h.SM, mp.vsid)
		if err != nil {
			return false, err
		}
		for i := range pairs {
			key, value := keys[i], vals[i]
			slot := slotFor(key)
			if value.Seg.Root != word.Zero {
				it.Store(slot+slotValue, uint64(value.Seg.Root), word.TagPLID)
			} else {
				it.Store(slot+slotValue, 0, word.TagRaw)
			}
			it.Store(slot+slotValLen, value.Len+1, word.TagRaw)
			if key.Seg.Root != word.Zero {
				it.Store(slot+slotKey, uint64(key.Seg.Root), word.TagPLID)
			}
			it.Store(slot+slotKeyLen, key.Len, word.TagRaw)
		}
		ok, err := it.CommitMerge(it.Size())
		it.Close()
		if err == merge.ErrConflict {
			return false, nil
		}
		return ok, err
	})
	// The committed map DAG holds its own references; drop the builder's.
	for i := range pairs {
		keys[i].Release(mp.h)
		vals[i].Release(mp.h)
	}
	return err
}

// FromPairs allocates a map holding the given bindings, bulk-loaded in
// one commit.
func FromPairs(h *Heap, pairs []Pair) (*Map, error) {
	mp := NewMap(h)
	if err := mp.SetMany(pairs); err != nil {
		mp.Release()
		return nil, err
	}
	return mp, nil
}

// PutMany binds every item in one committed update, the bulk counterpart
// of Put: values are built through a shared bulk builder and all slots
// commit in a single merge. Later duplicates of a key win.
func (o *Ordered) PutMany(items []Item) error {
	if len(items) == 0 {
		return nil
	}
	vals := make([]String, len(items))
	{
		b := segment.NewBuilder(o.h.M, 0)
		for i, item := range items {
			vals[i] = String{Seg: b.BuildBytes(item.Value), Len: uint64(len(item.Value))}
		}
		b.Close()
	}
	err := retryCAS(func() (bool, error) {
		it, err := iterreg.Open(o.h.M, o.h.SM, o.vsid)
		if err != nil {
			return false, err
		}
		for i, item := range items {
			value := vals[i]
			if value.Seg.Root != word.Zero {
				it.Store(2*item.Key, uint64(value.Seg.Root), word.TagPLID)
			} else {
				it.Store(2*item.Key, 0, word.TagRaw)
			}
			it.Store(2*item.Key+1, value.Len+1, word.TagRaw)
		}
		ok, err := it.CommitMerge(it.Size())
		it.Close()
		if err == merge.ErrConflict {
			return false, nil
		}
		return ok, err
	})
	for i := range vals {
		vals[i].Release(o.h)
	}
	return err
}
