package hds

import (
	"repro/internal/iterreg"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// Pair is one key/value binding for bulk map loading.
type Pair struct {
	Key, Value []byte
}

// Item is one numeric-key binding for bulk ordered loading.
type Item struct {
	Key   uint64
	Value []byte
}

// NewStrings builds many strings through one segment.Builder, so repeated
// strings and shared prefixes hit the builder's memo instead of issuing
// per-line store lookups. The caller owns one reference per string.
func NewStrings(h *Heap, bss [][]byte) []String {
	b := segment.NewBuilder(h.M, 0)
	defer b.Close()
	out := make([]String, len(bss))
	for i, bs := range bss {
		out[i] = String{Seg: b.BuildBytes(bs), Len: uint64(len(bs))}
	}
	return out
}

// GetMany returns the values bound to the given keys in one consistent
// snapshot — the read-side counterpart of SetMany and the shape of a
// memcached multi-get. All slot words are resolved through one
// level-order gather (segment.GatherWords), so the map DAG's root path
// and the interior nodes shared between slots are fetched once per wave
// instead of once per key. Results are positional; each found value is
// retained for the caller (release with Release).
func (mp *Map) GetMany(keys []String) ([]String, []bool) {
	vals := make([]String, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, found
	}
	snap, err := iterreg.Open(mp.h.M, mp.h.SM, segmap.ReadOnlyRef(mp.vsid))
	if err != nil {
		return vals, found
	}
	defer snap.Close()
	idxs := make([]uint64, 2*len(keys))
	for i, k := range keys {
		slot := slotFor(k)
		idxs[2*i] = slot + slotValue
		idxs[2*i+1] = slot + slotValLen
	}
	ws, ts := segment.GatherWords(mp.h.M, snap.Seg(), idxs)
	for i := range keys {
		lenPlus := ws[2*i+1]
		if lenPlus == 0 {
			continue
		}
		n := lenPlus - 1
		v := ws[2*i]
		if v != 0 && ts[2*i] != word.TagPLID {
			continue // corrupt slot; impossible by construction
		}
		val := String{Seg: segment.Seg{Root: word.PLID(v), Height: heightForBytes(mp.h, n)}, Len: n}
		val.Retain(mp.h) // under the snapshot, which pins the value
		vals[i], found[i] = val, true
	}
	return vals, found
}

// BytesMany materializes many strings through one level-order bulk read:
// lines shared across strings — deduplicated fragments, repeated values —
// are fetched once per wave instead of once per string. Results are
// positional.
func BytesMany(h *Heap, ss []String) [][]byte {
	rs := make([]segment.Range, len(ss))
	for i, s := range ss {
		rs[i] = segment.Range{Seg: s.Seg, N: (s.Len + 7) / 8}
	}
	words := segment.GatherRanges(h.M, rs)
	out := make([][]byte, len(ss))
	for i, s := range ss {
		b := make([]byte, s.Len)
		for j := uint64(0); j < s.Len; j++ {
			b[j] = byte(words[i][j/8] >> (8 * (j % 8)))
		}
		out[i] = b
	}
	return out
}

// SetMany binds every pair, replacing previous bindings, in one committed
// update. Compatibility shim: it is exactly Apply with the default
// options (later duplicates win, merge-update publish).
func (mp *Map) SetMany(pairs []Pair) error {
	return mp.Apply(pairs, ApplyOptions{})
}

// FromPairs allocates a map holding the given bindings, bulk-loaded in
// one commit. Compatibility shim over NewMap + Apply with the default
// options.
func FromPairs(h *Heap, pairs []Pair) (*Map, error) {
	mp := NewMap(h)
	if err := mp.Apply(pairs, ApplyOptions{}); err != nil {
		mp.Release()
		return nil, err
	}
	return mp, nil
}

// PutMany binds every item in one committed update, the bulk counterpart
// of Put. Compatibility shim: it is exactly Apply with the default
// options (later duplicates win, merge-update publish).
func (o *Ordered) PutMany(items []Item) error {
	return o.Apply(items, ApplyOptions{})
}
