package hds

import (
	"repro/internal/iterreg"
	"repro/internal/pool"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// Pair is one key/value binding for bulk map loading. A Pair with Delete
// set is a tombstone: Apply unbinds the key in the same wave commit that
// binds its siblings, so a mixed set/delete batch still publishes as one
// version.
type Pair struct {
	Key, Value []byte
	Delete     bool
}

// Item is one numeric-key binding for bulk ordered loading.
type Item struct {
	Key   uint64
	Value []byte
}

// NewStrings builds many strings through one segment.Builder, so repeated
// strings and shared prefixes hit the builder's memo instead of issuing
// per-line store lookups. The caller owns one reference per string.
func NewStrings(h *Heap, bss [][]byte) []String {
	b := segment.NewBuilder(h.M, 0)
	defer b.Close()
	out := make([]String, len(bss))
	for i, bs := range bss {
		out[i] = String{Seg: b.BuildBytes(bs), Len: uint64(len(bs))}
	}
	return out
}

// GetMany returns the values bound to the given keys in one consistent
// snapshot — the read-side counterpart of Apply and the shape of a
// memcached multi-get. All slot words are resolved through one
// level-order gather (segment.GatherWords), so the map DAG's root path
// and the interior nodes shared between slots are fetched once per wave
// instead of once per key. Results are positional; each found value is
// retained for the caller (release with Release).
func (mp *Map) GetMany(keys []String) ([]String, []bool) {
	if len(keys) == 0 {
		return nil, nil
	}
	snap, err := iterreg.Open(mp.h.M, mp.h.SM, segmap.ReadOnlyRef(mp.vsid))
	if err != nil {
		return make([]String, len(keys)), make([]bool, len(keys))
	}
	defer snap.Close()
	return mp.GetManyAt(snap.Seg(), keys)
}

// GetManyAt is GetMany against a caller-pinned snapshot seg (from
// Snapshot or SnapshotEntry) — the network front end's gets/mget path,
// where one pinned root must serve both the gather and a later
// CompareApply against the same version. Results are positional; found
// values are retained for the caller (the snapshot must still be pinned
// at call time, but the values outlive its release).
func (mp *Map) GetManyAt(seg segment.Seg, keys []String) ([]String, []bool) {
	return mp.GetManyAtInto(seg, keys, make([]String, 0, len(keys)), make([]bool, 0, len(keys)))
}

// BytesMany materializes many strings through one level-order bulk read:
// lines shared across strings — deduplicated fragments, repeated values —
// are fetched once per wave instead of once per string. Results are
// positional.
func BytesMany(h *Heap, ss []String) [][]byte {
	rs := make([]segment.Range, len(ss))
	for i, s := range ss {
		rs[i] = segment.Range{Seg: s.Seg, N: (s.Len + 7) / 8}
	}
	words := segment.GatherRanges(h.M, rs)
	out := make([][]byte, len(ss))
	for i, s := range ss {
		b := make([]byte, s.Len)
		for j := uint64(0); j < s.Len; j++ {
			b[j] = byte(words[i][j/8] >> (8 * (j % 8)))
		}
		out[i] = b
	}
	return out
}

// poolRanges, poolIdxs and poolTags back the Into-variants' per-call
// gather scratch.
var (
	poolRanges = pool.NewSlice[segment.Range]("hds.ranges")
	poolIdxs   = pool.NewSlice[uint64]("hds.idxs")
	poolTags   = pool.NewSlice[word.Tag]("hds.tags")
)

// NewStringsInto is NewStrings appending into out, which is reused
// across calls (the caller keeps ownership of one reference per string,
// exactly as NewStrings).
func NewStringsInto(h *Heap, bss [][]byte, out []String) []String {
	b := segment.NewBuilder(h.M, 0)
	defer b.Close()
	out = out[:0]
	for _, bs := range bss {
		out = append(out, String{Seg: b.BuildBytes(bs), Len: uint64(len(bs))})
	}
	return out
}

// GetManyAtInto is GetManyAt appending into caller-retained result
// slices with every gather buffer pooled — the aggregation loop's
// steady-state-zero-allocation read. Found values are retained exactly
// as in GetManyAt.
func (mp *Map) GetManyAtInto(seg segment.Seg, keys []String, vals []String, found []bool) ([]String, []bool) {
	vals, found = vals[:0], found[:0]
	if len(keys) == 0 {
		return vals, found
	}
	var sc pool.Scratch
	defer sc.Release()
	idxs := poolIdxs.Get(&sc, 2*len(keys))
	for i, k := range keys {
		slot := slotFor(k)
		idxs[2*i] = slot + slotValue
		idxs[2*i+1] = slot + slotValLen
	}
	ws := poolIdxs.Get(&sc, len(idxs))
	ts := poolTags.Get(&sc, len(idxs))
	segment.GatherWordsInto(mp.h.M, seg, idxs, ws, ts)
	for i := range keys {
		lenPlus := ws[2*i+1]
		if lenPlus == 0 || (ws[2*i] != 0 && ts[2*i] != word.TagPLID) {
			vals, found = append(vals, String{}), append(found, false)
			continue
		}
		n := lenPlus - 1
		val := String{Seg: segment.Seg{Root: word.PLID(ws[2*i]), Height: heightForBytes(mp.h, n)}, Len: n}
		val.Retain(mp.h) // under the snapshot, which pins the value
		vals, found = append(vals, val), append(found, true)
	}
	return vals, found
}

// BytesManyInto is BytesMany materializing into caller storage: every
// value is carved out of flat (grown once if needed) and the positional
// subslices are appended into out — so a steady-state caller that keeps
// both slices across calls pays zero per-value allocations. The returned
// flat slice must be retained by the caller for reuse; the out entries
// alias it and stay valid until the next call that overwrites flat.
func BytesManyInto(h *Heap, ss []String, flat []byte, out [][]byte) ([][]byte, []byte) {
	var sc pool.Scratch
	defer sc.Release()
	rs := poolRanges.Get(&sc, len(ss))
	total := uint64(0)
	for i, s := range ss {
		rs[i] = segment.Range{Seg: s.Seg, N: (s.Len + 7) / 8}
		total += s.Len
	}
	words := segment.GatherRanges(h.M, rs)
	flat = flat[:0]
	if uint64(cap(flat)) < total {
		flat = make([]byte, 0, total)
	}
	out = out[:0]
	for i, s := range ss {
		start := len(flat)
		for j := uint64(0); j < s.Len; j++ {
			flat = append(flat, byte(words[i][j/8]>>(8*(j%8))))
		}
		out = append(out, flat[start:len(flat):len(flat)])
	}
	return out, flat
}

// Bulk mutation is Apply (apply.go) with the default options; the old
// SetMany/FromPairs/PutMany shims that merely forwarded there are gone
// (shimguard_test.go at the repo root keeps call sites from returning).
