package hds

import (
	"repro/internal/iterreg"
	"repro/internal/merge"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// Pair is one key/value binding for bulk map loading.
type Pair struct {
	Key, Value []byte
}

// Item is one numeric-key binding for bulk ordered loading.
type Item struct {
	Key   uint64
	Value []byte
}

// NewStrings builds many strings through one segment.Builder, so repeated
// strings and shared prefixes hit the builder's memo instead of issuing
// per-line store lookups. The caller owns one reference per string.
func NewStrings(h *Heap, bss [][]byte) []String {
	b := segment.NewBuilder(h.M, 0)
	defer b.Close()
	out := make([]String, len(bss))
	for i, bs := range bss {
		out[i] = String{Seg: b.BuildBytes(bs), Len: uint64(len(bs))}
	}
	return out
}

// GetMany returns the values bound to the given keys in one consistent
// snapshot — the read-side counterpart of SetMany and the shape of a
// memcached multi-get. All slot words are resolved through one
// level-order gather (segment.GatherWords), so the map DAG's root path
// and the interior nodes shared between slots are fetched once per wave
// instead of once per key. Results are positional; each found value is
// retained for the caller (release with Release).
func (mp *Map) GetMany(keys []String) ([]String, []bool) {
	vals := make([]String, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return vals, found
	}
	snap, err := iterreg.Open(mp.h.M, mp.h.SM, segmap.ReadOnlyRef(mp.vsid))
	if err != nil {
		return vals, found
	}
	defer snap.Close()
	idxs := make([]uint64, 2*len(keys))
	for i, k := range keys {
		slot := slotFor(k)
		idxs[2*i] = slot + slotValue
		idxs[2*i+1] = slot + slotValLen
	}
	ws, ts := segment.GatherWords(mp.h.M, snap.Seg(), idxs)
	for i := range keys {
		lenPlus := ws[2*i+1]
		if lenPlus == 0 {
			continue
		}
		n := lenPlus - 1
		v := ws[2*i]
		if v != 0 && ts[2*i] != word.TagPLID {
			continue // corrupt slot; impossible by construction
		}
		val := String{Seg: segment.Seg{Root: word.PLID(v), Height: heightForBytes(mp.h, n)}, Len: n}
		val.Retain(mp.h) // under the snapshot, which pins the value
		vals[i], found[i] = val, true
	}
	return vals, found
}

// BytesMany materializes many strings through one level-order bulk read:
// lines shared across strings — deduplicated fragments, repeated values —
// are fetched once per wave instead of once per string. Results are
// positional.
func BytesMany(h *Heap, ss []String) [][]byte {
	rs := make([]segment.Range, len(ss))
	for i, s := range ss {
		rs[i] = segment.Range{Seg: s.Seg, N: (s.Len + 7) / 8}
	}
	words := segment.GatherRanges(h.M, rs)
	out := make([][]byte, len(ss))
	for i, s := range ss {
		b := make([]byte, s.Len)
		for j := uint64(0); j < s.Len; j++ {
			b[j] = byte(words[i][j/8] >> (8 * (j % 8)))
		}
		out[i] = b
	}
	return out
}

// SetMany binds every pair, replacing previous bindings, in one committed
// update: all key and value strings are built through a shared bulk
// builder (one batch-lookup pipeline, memoized across pairs), then every
// slot is written under a single iterator transaction with one merge
// commit — instead of one open/commit round trip per key. Later duplicates
// of a key win, matching sequential Set calls.
func (mp *Map) SetMany(pairs []Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	keys := make([]String, len(pairs))
	vals := make([]String, len(pairs))
	{
		b := segment.NewBuilder(mp.h.M, 0)
		for i, p := range pairs {
			keys[i] = String{Seg: b.BuildBytes(p.Key), Len: uint64(len(p.Key))}
			vals[i] = String{Seg: b.BuildBytes(p.Value), Len: uint64(len(p.Value))}
		}
		b.Close()
	}
	err := retryCAS(func() (bool, error) {
		it, err := iterreg.Open(mp.h.M, mp.h.SM, mp.vsid)
		if err != nil {
			return false, err
		}
		for i := range pairs {
			key, value := keys[i], vals[i]
			slot := slotFor(key)
			if value.Seg.Root != word.Zero {
				it.Store(slot+slotValue, uint64(value.Seg.Root), word.TagPLID)
			} else {
				it.Store(slot+slotValue, 0, word.TagRaw)
			}
			it.Store(slot+slotValLen, value.Len+1, word.TagRaw)
			if key.Seg.Root != word.Zero {
				it.Store(slot+slotKey, uint64(key.Seg.Root), word.TagPLID)
			}
			it.Store(slot+slotKeyLen, key.Len, word.TagRaw)
		}
		ok, err := it.CommitMerge(it.Size())
		it.Close()
		if err == merge.ErrConflict {
			return false, nil
		}
		return ok, err
	})
	// The committed map DAG holds its own references; drop the builder's.
	for i := range pairs {
		keys[i].Release(mp.h)
		vals[i].Release(mp.h)
	}
	return err
}

// FromPairs allocates a map holding the given bindings, bulk-loaded in
// one commit.
func FromPairs(h *Heap, pairs []Pair) (*Map, error) {
	mp := NewMap(h)
	if err := mp.SetMany(pairs); err != nil {
		mp.Release()
		return nil, err
	}
	return mp, nil
}

// PutMany binds every item in one committed update, the bulk counterpart
// of Put: values are built through a shared bulk builder and all slots
// commit in a single merge. Later duplicates of a key win.
func (o *Ordered) PutMany(items []Item) error {
	if len(items) == 0 {
		return nil
	}
	vals := make([]String, len(items))
	{
		b := segment.NewBuilder(o.h.M, 0)
		for i, item := range items {
			vals[i] = String{Seg: b.BuildBytes(item.Value), Len: uint64(len(item.Value))}
		}
		b.Close()
	}
	err := retryCAS(func() (bool, error) {
		it, err := iterreg.Open(o.h.M, o.h.SM, o.vsid)
		if err != nil {
			return false, err
		}
		for i, item := range items {
			value := vals[i]
			if value.Seg.Root != word.Zero {
				it.Store(2*item.Key, uint64(value.Seg.Root), word.TagPLID)
			} else {
				it.Store(2*item.Key, 0, word.TagRaw)
			}
			it.Store(2*item.Key+1, value.Len+1, word.TagRaw)
		}
		ok, err := it.CommitMerge(it.Size())
		it.Close()
		if err == merge.ErrConflict {
			return false, nil
		}
		return ok, err
	})
	for i := range vals {
		vals[i].Release(o.h)
	}
	return err
}
