package hds

import (
	"fmt"
	"testing"
)

// Bulk load must land on the same canonical segment as sequential sets:
// same bindings → same map DAG root, regardless of how it was built.
func TestApplyMatchesSequentialSet(t *testing.T) {
	h := heap()
	pairs := make([]Pair, 50)
	for i := range pairs {
		pairs[i] = Pair{
			Key:   []byte(fmt.Sprintf("user:%04d", i)),
			Value: []byte(fmt.Sprintf("profile-data-for-user-%d with some shared suffix content", i)),
		}
	}

	seq := NewMap(h)
	for _, p := range pairs {
		k, v := NewString(h, p.Key), NewString(h, p.Value)
		if err := seq.Set(k, v); err != nil {
			t.Fatalf("Set: %v", err)
		}
		k.Release(h)
		v.Release(h)
	}

	bulk := NewMap(h)
	if err := bulk.Apply(pairs, ApplyOptions{}); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	seqSeg, err := h.SM.Load(seq.VSID())
	if err != nil {
		t.Fatalf("load seq: %v", err)
	}
	bulkSeg, err := h.SM.Load(bulk.VSID())
	if err != nil {
		t.Fatalf("load bulk: %v", err)
	}
	if !seqSeg.Seg.Equal(bulkSeg.Seg) {
		t.Fatalf("bulk map root %#x/h%d != sequential %#x/h%d",
			bulkSeg.Seg.Root, bulkSeg.Seg.Height, seqSeg.Seg.Root, seqSeg.Seg.Height)
	}
	h.M.Release(seqSeg.Seg.Root)
	h.M.Release(bulkSeg.Seg.Root)

	for _, p := range pairs {
		k := NewString(h, p.Key)
		got, ok := bulk.Get(k)
		if !ok {
			t.Fatalf("bulk map missing key %q", p.Key)
		}
		if string(got.Bytes(h)) != string(p.Value) {
			t.Fatalf("key %q: got %q want %q", p.Key, got.Bytes(h), p.Value)
		}
		got.Release(h)
		k.Release(h)
	}
}

func TestApplyDuplicateKeysLastWins(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	err := mp.Apply([]Pair{
		{Key: []byte("k"), Value: []byte("first")},
		{Key: []byte("k"), Value: []byte("second")},
	}, ApplyOptions{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	k := NewString(h, []byte("k"))
	got, ok := mp.Get(k)
	if !ok || string(got.Bytes(h)) != "second" {
		t.Fatalf("duplicate key: got %q ok=%v, want %q", got.Bytes(h), ok, "second")
	}
	got.Release(h)
	k.Release(h)
	if n := mp.Len(); n != 1 {
		t.Fatalf("map len %d, want 1", n)
	}
}

func TestOrderedApplyMatchesSequentialPut(t *testing.T) {
	h := heap()
	items := make([]Item, 40)
	for i := range items {
		items[i] = Item{
			Key:   uint64(i * 17),
			Value: []byte(fmt.Sprintf("event payload %d", i)),
		}
	}

	seq := NewOrdered(h)
	for _, it := range items {
		v := NewString(h, it.Value)
		if err := seq.Put(it.Key, v); err != nil {
			t.Fatalf("Put: %v", err)
		}
		v.Release(h)
	}

	bulk := NewOrdered(h)
	if err := bulk.Apply(items, ApplyOptions{}); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	seqSeg, _ := h.SM.Load(seq.VSID())
	bulkSeg, _ := h.SM.Load(bulk.VSID())
	if !seqSeg.Seg.Equal(bulkSeg.Seg) {
		t.Fatalf("bulk ordered root %#x != sequential %#x", bulkSeg.Seg.Root, seqSeg.Seg.Root)
	}
	h.M.Release(seqSeg.Seg.Root)
	h.M.Release(bulkSeg.Seg.Root)

	var walked int
	err := bulk.Range(0, func(key uint64, val String) bool {
		want := items[walked]
		if key != want.Key || string(val.Bytes(h)) != string(want.Value) {
			t.Fatalf("walk %d: got %d/%q want %d/%q", walked, key, val.Bytes(h), want.Key, want.Value)
		}
		walked++
		return true
	})
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	if walked != len(items) {
		t.Fatalf("walked %d elements, want %d", walked, len(items))
	}
}
