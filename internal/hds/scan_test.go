package hds

import (
	"fmt"
	"testing"

	"repro/internal/segment"
)

// fillMap inserts n deterministic bindings and returns the expected
// contents.
func fillMap(t *testing.T, h *Heap, mp *Map, n int) map[string]string {
	t.Helper()
	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := fmt.Sprintf("value-%04d-%s", i, string(make([]byte, i%40)))
		ks := NewString(h, []byte(k))
		vs := NewString(h, []byte(v))
		if err := mp.Set(ks, vs); err != nil {
			t.Fatal(err)
		}
		ks.Release(h)
		vs.Release(h)
		want[k] = v
	}
	return want
}

type pair struct{ k, v string }

func forEachPairs(t *testing.T, h *Heap, mp *Map) []pair {
	t.Helper()
	var out []pair
	if err := mp.ForEach(func(key, val String) bool {
		out = append(out, pair{string(key.Bytes(h)), string(val.Bytes(h))})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMapForEachMatchesGet(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	want := fillMap(t, h, mp, 150)
	got := forEachPairs(t, h, mp)
	if len(got) != len(want) {
		t.Fatalf("ForEach yielded %d bindings, want %d", len(got), len(want))
	}
	for _, p := range got {
		if want[p.k] != p.v {
			t.Fatalf("ForEach: key %q -> %q, want %q", p.k, p.v, want[p.k])
		}
		delete(want, p.k)
	}
	if len(want) != 0 {
		t.Fatalf("ForEach missed %d bindings", len(want))
	}
}

// TestMapScanVariantsAgree pins that BytesScan and ForEachParallel emit
// exactly ForEach's sequence — same pairs, same ascending slot order.
func TestMapScanVariantsAgree(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	fillMap(t, h, mp, 300)
	want := forEachPairs(t, h, mp)

	var viaBytes []pair
	if err := mp.BytesScan(func(key, val []byte) bool {
		viaBytes = append(viaBytes, pair{string(key), string(val)})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(viaBytes) != fmt.Sprint(want) {
		t.Fatalf("BytesScan order/content diverges from ForEach (%d vs %d pairs)", len(viaBytes), len(want))
	}

	for _, workers := range []int{0, 1, 4} {
		var viaPar []pair
		if err := mp.ForEachParallel(workers, func(key, val String) bool {
			viaPar = append(viaPar, pair{string(key.Bytes(h)), string(val.Bytes(h))})
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(viaPar) != fmt.Sprint(want) {
			t.Fatalf("ForEachParallel(%d) diverges from ForEach (%d vs %d pairs)", workers, len(viaPar), len(want))
		}
	}
}

func TestMapScanEarlyStop(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	fillMap(t, h, mp, 200)
	for name, run := range map[string]func(stop int) int{
		"ForEach": func(stop int) int {
			calls := 0
			mp.ForEach(func(key, val String) bool { calls++; return calls < stop })
			return calls
		},
		"BytesScan": func(stop int) int {
			calls := 0
			mp.BytesScan(func(key, val []byte) bool { calls++; return calls < stop })
			return calls
		},
		"ForEachParallel": func(stop int) int {
			calls := 0
			mp.ForEachParallel(4, func(key, val String) bool { calls++; return calls < stop })
			return calls
		},
	} {
		if got := run(5); got != 5 {
			t.Fatalf("%s: early stop made %d calls, want 5", name, got)
		}
	}
}

func TestMapDiffReportsExactlyTheChanges(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	fillMap(t, h, mp, 120)
	old, err := mp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer segment.ReleaseSeg(h.M, old)

	set := func(k, v string) {
		ks, vs := NewString(h, []byte(k)), NewString(h, []byte(v))
		if err := mp.Set(ks, vs); err != nil {
			t.Fatal(err)
		}
		ks.Release(h)
		vs.Release(h)
	}
	del := func(k string) {
		ks := NewString(h, []byte(k))
		if err := mp.Delete(ks); err != nil {
			t.Fatal(err)
		}
		ks.Release(h)
	}
	wantAdded := map[string]string{}
	for i := 0; i < 10; i++ {
		k, v := fmt.Sprintf("new-%d", i), fmt.Sprintf("new-value-%d", i)
		set(k, v)
		wantAdded[k] = v
	}
	wantChanged := map[string]string{}
	for i := 0; i < 5; i++ {
		k, v := fmt.Sprintf("key-%04d", i*7), fmt.Sprintf("rewritten-%d", i)
		set(k, v)
		wantChanged[k] = v
	}
	wantDeleted := map[string]bool{}
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("key-%04d", 100+i)
		del(k)
		wantDeleted[k] = true
	}

	st, err := mp.Diff(old, func(d MapDelta) bool {
		k := string(d.Key.Bytes(h))
		switch {
		case wantAdded[k] != "":
			if d.HasBefore || !d.HasAfter || string(d.After.Bytes(h)) != wantAdded[k] {
				t.Fatalf("added key %q: bad delta %+v", k, d)
			}
			delete(wantAdded, k)
		case wantChanged[k] != "":
			if !d.HasBefore || !d.HasAfter || string(d.After.Bytes(h)) != wantChanged[k] {
				t.Fatalf("changed key %q: bad delta", k)
			}
			delete(wantChanged, k)
		case wantDeleted[k]:
			if !d.HasBefore || d.HasAfter {
				t.Fatalf("deleted key %q: bad delta %+v", k, d)
			}
			delete(wantDeleted, k)
		default:
			t.Fatalf("diff reported unchanged key %q", k)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(wantAdded)+len(wantChanged)+len(wantDeleted) != 0 {
		t.Fatalf("diff missed changes: added %v changed %v deleted %v", wantAdded, wantChanged, wantDeleted)
	}
	if st.SubDAGSkips == 0 {
		t.Fatalf("no sub-DAG skips across near-identical snapshots: %+v", st)
	}
}

func TestDiffSnapshotsIdentical(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	fillMap(t, h, mp, 64)
	snap, err := mp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer segment.ReleaseSeg(h.M, snap)
	st := DiffSnapshots(h, snap, snap, func(d MapDelta) bool {
		t.Fatalf("identical snapshots produced a delta")
		return false
	})
	if st.LineReads != 0 {
		t.Fatalf("identical snapshots read %d lines, want 0", st.LineReads)
	}
}

// TestOrderedRangeMatchesGet pins the streamed Range rewrite against the
// point-read path: same elements, same order, same values.
func TestOrderedRangeMatchesGet(t *testing.T) {
	h := heap()
	o := NewOrdered(h)
	keys := []uint64{0, 1, 5, 63, 64, 1000, 4096, 70000}
	for _, k := range keys {
		v := NewString(h, []byte(fmt.Sprintf("at-%d", k)))
		if err := o.Put(k, v); err != nil {
			t.Fatal(err)
		}
		v.Release(h)
	}
	var got []uint64
	err := o.Range(0, func(key uint64, val String) bool {
		got = append(got, key)
		want, ok := o.Get(key)
		if !ok {
			t.Fatalf("Range key %d missing from Get", key)
		}
		if string(val.Bytes(h)) != string(want.Bytes(h)) {
			t.Fatalf("Range key %d value mismatch", key)
		}
		want.Release(h)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(keys) {
		t.Fatalf("Range keys = %v, want %v", got, keys)
	}
}
