package hds

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"
)

// Bounded CAS retry. The paper's updates are optimistic: build the new
// DAG, then publish it with one CAS on the segment-map root (§2.2),
// retrying on conflict. An unbounded spin is fine in hardware — the CAS
// is one memory operation — but in this software model each retry
// re-executes the whole build, so a pathologically hot segment could
// livelock a writer while burning the machine's lookup bandwidth. Every
// update loop in this package therefore runs under retryCAS: a bounded
// attempt budget with exponential backoff, surfacing ErrContention when
// the budget is exhausted so the caller can back off at its own level
// (shard, queue, or report failure).

// ErrContention is returned when an update gives up after exhausting its
// CAS retry budget. Check with errors.Is.
var ErrContention = errors.New("hds: update abandoned after repeated CAS conflicts")

const (
	// maxCASAttempts bounds one logical update. 64 attempts with the
	// backoff below spans ~30 ms of contention — far beyond anything the
	// §5.1.1 experiments produce — before declaring livelock.
	maxCASAttempts = 64
	// spinAttempts lose only their scheduler slot: the common 2-3 way
	// races of short critical sections resolve within a Gosched.
	spinAttempts = 4
	backoffBase  = time.Microsecond
	backoffCap   = time.Millisecond
)

// casRetries counts CAS attempts that lost their race and went around
// the retry loop — the software-visible cost of optimistic concurrency.
var casRetries atomic.Uint64

// CASRetries returns the process-wide count of retried (lost) update
// attempts across all hds collections.
func CASRetries() uint64 { return casRetries.Load() }

// retryCAS runs op until it reports done, returns an error, or the
// attempt budget is exhausted. op reports (done, err): an error aborts
// immediately (ownership of any references stays inside op); !done means
// the publish lost its race and the operation should be re-executed
// against the new version.
func retryCAS(op func() (done bool, err error)) error {
	for attempt := 0; attempt < maxCASAttempts; attempt++ {
		done, err := op()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		casRetries.Add(1)
		backoff(attempt)
	}
	return fmt.Errorf("%w (%d attempts)", ErrContention, maxCASAttempts)
}

// backoff yields for the first spinAttempts, then sleeps exponentially:
// 1us, 2us, 4us, ... capped at 1ms. Randomization is unnecessary — the
// goroutine scheduler's jitter already de-synchronizes contenders.
func backoff(attempt int) {
	if attempt < spinAttempts {
		runtime.Gosched()
		return
	}
	d := backoffBase << uint(attempt-spinAttempts)
	if d > backoffCap {
		d = backoffCap
	}
	time.Sleep(d)
}
