package hds

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestGetManyMatchesSequentialGet(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	pairs := make([]Pair, 64)
	for i := range pairs {
		pairs[i] = Pair{
			Key:   []byte(fmt.Sprintf("key-%03d", i)),
			Value: bytes.Repeat([]byte(fmt.Sprintf("<val %03d>", i)), 1+i%7),
		}
	}
	if err := mp.Apply(pairs, ApplyOptions{}); err != nil {
		t.Fatal(err)
	}

	// Present keys, absent keys, and duplicates in one batch.
	var keys []String
	var wantVal [][]byte
	var wantOK []bool
	for i := 0; i < 100; i++ {
		switch {
		case i%5 == 4:
			keys = append(keys, NewString(h, []byte(fmt.Sprintf("missing-%03d", i))))
			wantVal, wantOK = append(wantVal, nil), append(wantOK, false)
		default:
			p := pairs[(i*13)%len(pairs)]
			keys = append(keys, NewString(h, p.Key))
			wantVal, wantOK = append(wantVal, p.Value), append(wantOK, true)
		}
	}
	vals, found := mp.GetMany(keys)
	bss := BytesMany(h, vals)
	for i := range keys {
		if found[i] != wantOK[i] {
			t.Fatalf("key %d: found = %v, want %v", i, found[i], wantOK[i])
		}
		if !found[i] {
			continue
		}
		one, ok := mp.Get(keys[i])
		if !ok || !vals[i].Equal(one) {
			t.Fatalf("key %d: GetMany disagrees with Get", i)
		}
		if !bytes.Equal(bss[i], wantVal[i]) {
			t.Fatalf("key %d: bytes = %q, want %q", i, bss[i], wantVal[i])
		}
		one.Release(h)
		vals[i].Release(h)
	}
	for i := range keys {
		keys[i].Release(h)
	}
}

func TestGetManyEmptyAndEmptyValue(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	if vals, found := mp.GetMany(nil); len(vals) != 0 || len(found) != 0 {
		t.Fatal("empty batch returned entries")
	}
	k := NewString(h, []byte("key-of-empty"))
	defer k.Release(h)
	if err := mp.Set(k, NewString(h, nil)); err != nil {
		t.Fatal(err)
	}
	vals, found := mp.GetMany([]String{k})
	if !found[0] || vals[0].Len != 0 {
		t.Fatalf("empty value: found=%v len=%d", found[0], vals[0].Len)
	}
	if bss := BytesMany(h, vals); len(bss[0]) != 0 {
		t.Fatal("empty value materialized non-empty")
	}
}

// TestConcurrentGetManyApply is the -race stress satellite: readers
// streaming multi-gets while a writer rebinds the same keys in bulk.
// Every returned value must be a committed version — either the preload
// value or some writer generation — never a torn mix.
func TestConcurrentGetManyApply(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	const nKeys = 32
	keysB := make([][]byte, nKeys)
	valueOf := func(gen int, k int) []byte {
		return []byte(fmt.Sprintf("gen %04d of key %03d, padded for a few lines", gen, k))
	}
	pairs := make([]Pair, nKeys)
	for i := range pairs {
		keysB[i] = []byte(fmt.Sprintf("stress-key-%03d", i))
		pairs[i] = Pair{Key: keysB[i], Value: valueOf(0, i)}
	}
	if err := mp.Apply(pairs, ApplyOptions{}); err != nil {
		t.Fatal(err)
	}

	const gens = 30
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: whole-map rebinds, one generation per commit
		defer wg.Done()
		for g := 1; g <= gens; g++ {
			ps := make([]Pair, nKeys)
			for i := range ps {
				ps[i] = Pair{Key: keysB[i], Value: valueOf(g, i)}
			}
			if err := mp.Apply(ps, ApplyOptions{}); err != nil {
				t.Errorf("Apply: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 60; iter++ {
				ks := make([]String, 8)
				idx := make([]int, 8)
				for i := range ks {
					idx[i] = rng.Intn(nKeys)
					ks[i] = NewString(h, keysB[idx[i]])
				}
				vals, found := mp.GetMany(ks)
				bss := BytesMany(h, vals)
				for i := range ks {
					if !found[i] {
						t.Errorf("key %d vanished", idx[i])
						continue
					}
					ok := false
					for g := 0; g <= gens && !ok; g++ {
						ok = bytes.Equal(bss[i], valueOf(g, idx[i]))
					}
					if !ok {
						t.Errorf("key %d: torn value %q", idx[i], bss[i])
					}
					vals[i].Release(h)
				}
				for i := range ks {
					ks[i].Release(h)
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()
}
