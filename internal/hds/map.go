package hds

import (
	"repro/internal/iterreg"
	"repro/internal/merge"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// Map is the paper's key-value map (§4.1, §4.4): a sparse array indexed
// by the content-unique root PLID of the key string. Deduplication
// guarantees each possible key content one index, so lookup needs no
// hashing, probing or key comparison — the index *is* the key identity.
// Each entry occupies four words: the value string's root PLID (a real
// protected reference: the map DAG itself keeps the value alive), the
// value's byte length, the key string's root PLID, and the key's byte
// length. Pinning the key is load-bearing: the slot index is the key's
// root PLID, so the key's lines must stay allocated while the binding
// exists or the PLID could be reused by unrelated content.
//
// The map segment is flagged merge-update, so concurrent inserts and
// deletes of different keys commit without application retries (§4.3).
type Map struct {
	h    *Heap
	vsid word.VSID
}

// NewMap allocates an empty map.
func NewMap(h *Heap) *Map {
	v := h.SM.Create(segmap.Entry{
		Seg:   segment.NewSparse(0),
		Flags: segmap.FlagMergeUpdate,
	})
	return &Map{h: h, vsid: v}
}

// OpenMap adopts an existing map object by its VSID — the durable
// restart path: recovery rebuilds the segment map at exact VSIDs, the
// persistence layer re-binds labels to them, and OpenMap wraps the
// entry without creating anything. The caller is responsible for v
// naming a live map entry.
func OpenMap(h *Heap, v word.VSID) *Map { return &Map{h: h, vsid: v} }

// VSID returns the map's object identity.
func (mp *Map) VSID() word.VSID { return mp.vsid }

// ReadOnlyVSID returns the capability to hand to untrusted readers.
func (mp *Map) ReadOnlyVSID() word.VSID { return segmap.ReadOnlyRef(mp.vsid) }

// Slot layout: four words per possible key.
const (
	slotValue  = 0 // value root PLID (TagPLID), zero for empty values
	slotValLen = 1 // value byte length + 1 (0 = key absent)
	slotKey    = 2 // key root PLID (TagPLID), pins the key string
	slotKeyLen = 3
	slotWords  = 4
)

// slotFor maps a key to its slot base index.
func slotFor(key String) uint64 { return uint64(key.Key()) * slotWords }

// Get returns the value for key in the map's current version. The
// returned string is pinned by the snapshot that found it only while
// that snapshot lives, so Get retains the value root for the caller;
// release it with Release.
func (mp *Map) Get(key String) (String, bool) {
	snap, err := iterreg.Open(mp.h.M, mp.h.SM, segmap.ReadOnlyRef(mp.vsid))
	if err != nil {
		return String{}, false
	}
	defer snap.Close()
	return getFrom(mp.h, snap, key)
}

// Has reports whether key is bound in the map's current version. Unlike
// Get it hands the caller nothing to release: the probe loads only the
// slot's length word, so existence checks on hot paths (e.g. a cas
// pre-check) cost no reference traffic on the value's lines.
func (mp *Map) Has(key String) bool {
	snap, err := iterreg.Open(mp.h.M, mp.h.SM, segmap.ReadOnlyRef(mp.vsid))
	if err != nil {
		return false
	}
	defer snap.Close()
	lenPlus, _ := snap.Load(slotFor(key) + slotValLen)
	return lenPlus != 0
}

// GetFrom reads through an already-open iterator (snapshot), the §4.4
// client-thread pattern: reload once per request, then access directly.
func GetFrom(h *Heap, it *iterreg.Iterator, key String) (String, bool) {
	return getFrom(h, it, key)
}

func getFrom(h *Heap, it *iterreg.Iterator, key String) (String, bool) {
	slot := slotFor(key)
	lenPlus, _ := it.Load(slot + slotValLen)
	if lenPlus == 0 {
		return String{}, false
	}
	n := lenPlus - 1
	v, tag := it.Load(slot + slotValue)
	if v != 0 && tag != word.TagPLID {
		return String{}, false // corrupt slot; impossible by construction
	}
	val := String{Seg: segment.Seg{Root: word.PLID(v), Height: heightForBytes(h, n)}, Len: n}
	val.Retain(h)
	return val, true
}

func heightForBytes(h *Heap, n uint64) int {
	words := (n + 7) / 8
	if words == 0 {
		words = 1
	}
	return segment.HeightFor(h.M.LineWords(), words)
}

// Set binds key to value, replacing any previous binding. Merge-update
// absorbs concurrent updates to other keys; only a same-key race causes
// an internal retry. The caller keeps ownership of key and value strings
// (the map DAG takes its own references).
func (mp *Map) Set(key, value String) error {
	return retryCAS(func() (bool, error) {
		it, err := iterreg.Open(mp.h.M, mp.h.SM, mp.vsid)
		if err != nil {
			return false, err
		}
		slot := slotFor(key)
		if value.Seg.Root != word.Zero {
			it.Store(slot+slotValue, uint64(value.Seg.Root), word.TagPLID)
		} else {
			it.Store(slot+slotValue, 0, word.TagRaw) // empty/all-zero value
		}
		it.Store(slot+slotValLen, value.Len+1, word.TagRaw)
		if key.Seg.Root != word.Zero {
			it.Store(slot+slotKey, uint64(key.Seg.Root), word.TagPLID)
		}
		it.Store(slot+slotKeyLen, key.Len, word.TagRaw)
		ok, err := it.CommitMerge(it.Size())
		it.Close()
		if err == merge.ErrConflict {
			return false, nil // same-slot race: re-execute (paper §3.4 "rare")
		}
		return ok, err
	})
}

// Delete removes key's binding. Deleting an absent key is a no-op.
func (mp *Map) Delete(key String) error {
	return retryCAS(func() (bool, error) {
		it, err := iterreg.Open(mp.h.M, mp.h.SM, mp.vsid)
		if err != nil {
			return false, err
		}
		slot := slotFor(key)
		if present, _ := it.Load(slot + slotValLen); present == 0 {
			it.Close()
			return true, nil
		}
		for i := uint64(0); i < slotWords; i++ {
			it.Store(slot+i, 0, word.TagRaw)
		}
		ok, err := it.CommitMerge(it.Size())
		it.Close()
		if err == merge.ErrConflict {
			return false, nil
		}
		return ok, err
	})
}

// Len counts bound keys in the current version (a full scan; maps that
// need O(1) size pair with a Counter).
func (mp *Map) Len() uint64 {
	it, err := iterreg.Open(mp.h.M, mp.h.SM, segmap.ReadOnlyRef(mp.vsid))
	if err != nil {
		return 0
	}
	defer it.Close()
	var n uint64
	for at, ok := it.NextNonZero(0); ok; at, ok = it.NextNonZero(at - at%slotWords + slotWords) {
		// The length+1 word is the presence marker; a slot's first
		// non-zero word may be the value root or, for empty values,
		// the marker itself.
		if at%slotWords == slotValue || at%slotWords == slotValLen {
			n++
		}
	}
	return n
}

// Release drops the map object (values are reclaimed recursively by the
// hardware reference-count machinery).
func (mp *Map) Release() error { return mp.h.SM.Delete(mp.vsid) }

// Counter is a segment of 64-bit counters updated with merge-update, so
// concurrent increments never retry and never lose updates (§3.4, §4.3).
type Counter struct {
	h    *Heap
	vsid word.VSID
}

// NewCounter allocates a counter array.
func NewCounter(h *Heap) *Counter {
	v := h.SM.Create(segmap.Entry{
		Seg:   segment.NewSparse(0),
		Flags: segmap.FlagMergeUpdate,
	})
	return &Counter{h: h, vsid: v}
}

// Add atomically adds delta to counter i and reports the updated value as
// of this thread's commit (later merges may add more).
func (c *Counter) Add(i uint64, delta uint64) (uint64, error) {
	it, err := iterreg.Open(c.h.M, c.h.SM, c.vsid)
	if err != nil {
		return 0, err
	}
	cur, _ := it.Load(i)
	it.Store(i, cur+delta, word.TagRaw)
	_, err = it.CommitMerge(it.Size())
	it.Close()
	return cur + delta, err
}

// Value reads counter i.
func (c *Counter) Value(i uint64) uint64 {
	e, err := c.h.SM.Load(c.vsid)
	if err != nil {
		return 0
	}
	defer segment.ReleaseSeg(c.h.M, e.Seg)
	v, _ := segment.ReadWord(c.h.M, e.Seg, i)
	return v
}

// Release drops the counter object.
func (c *Counter) Release() error { return c.h.SM.Delete(c.vsid) }

// Queue is a multi-producer multi-consumer queue of strings (§4.3):
// head and tail counters plus a data region in one merge-update segment.
// Concurrent enqueues race on the same slot, fail the PLID merge rule and
// retry against the advanced tail; enqueues and dequeues of different
// slots merge cleanly.
type Queue struct {
	h    *Heap
	vsid word.VSID
}

const (
	qHead = 0
	qTail = 1
	qBase = 2 // first data slot (two words per element: root, length)
)

// NewQueue allocates an empty queue.
func NewQueue(h *Heap) *Queue {
	v := h.SM.Create(segmap.Entry{
		Seg:   segment.NewSparse(0),
		Flags: segmap.FlagMergeUpdate,
	})
	return &Queue{h: h, vsid: v}
}

// Enqueue appends s. The queue takes its own reference on the string.
func (q *Queue) Enqueue(s String) error {
	return retryCAS(func() (bool, error) {
		it, err := iterreg.Open(q.h.M, q.h.SM, q.vsid)
		if err != nil {
			return false, err
		}
		tail, _ := it.Load(qTail)
		if s.Seg.Root != word.Zero {
			it.Store(qBase+2*tail, uint64(s.Seg.Root), word.TagPLID)
		}
		it.Store(qBase+2*tail+1, s.Len+1, word.TagRaw)
		it.Store(qTail, tail+1, word.TagRaw)
		ok, err := it.CommitMerge(0)
		it.Close()
		if err == merge.ErrConflict {
			return false, nil // lost the slot race; retry at the new tail
		}
		return ok, err
	})
}

// Dequeue removes and returns the oldest element; ok is false when the
// queue is empty. The caller receives ownership of the string reference.
//
// Dequeue publishes with plain CAS rather than merge-update: two
// dequeuers of the same slot write *identical* changes (slot zeroed,
// head+1), which a three-way merge would accept — returning one item
// twice. CAS serializes them; the loser retries against the new head.
func (q *Queue) Dequeue() (String, bool, error) {
	var got String
	var nonEmpty bool
	err := retryCAS(func() (bool, error) {
		it, err := iterreg.Open(q.h.M, q.h.SM, q.vsid)
		if err != nil {
			return false, err
		}
		head, _ := it.Load(qHead)
		tail, _ := it.Load(qTail)
		if head == tail {
			it.Close()
			return true, nil // empty: done, nonEmpty stays false
		}
		root, _ := it.Load(qBase + 2*head)
		lenPlus, _ := it.Load(qBase + 2*head + 1)
		if lenPlus == 0 {
			it.Close()
			return true, nil
		}
		n := lenPlus - 1
		out := String{Seg: segment.Seg{Root: word.PLID(root), Height: heightForBytes(q.h, n)}, Len: n}
		out.Retain(q.h) // caller's reference, before the slot is cleared
		it.Store(qBase+2*head, 0, word.TagRaw)
		it.Store(qBase+2*head+1, 0, word.TagRaw)
		it.Store(qHead, head+1, word.TagRaw)
		ok, err := it.TryCommit(0)
		it.Close()
		if err != nil || !ok {
			out.Release(q.h)
			return false, err
		}
		got, nonEmpty = out, true
		return true, nil
	})
	if err != nil {
		return String{}, false, err
	}
	return got, nonEmpty, nil
}

// Len returns the current element count.
func (q *Queue) Len() uint64 {
	e, err := q.h.SM.Load(q.vsid)
	if err != nil {
		return 0
	}
	defer segment.ReleaseSeg(q.h.M, e.Seg)
	head, _ := segment.ReadWord(q.h.M, e.Seg, qHead)
	tail, _ := segment.ReadWord(q.h.M, e.Seg, qTail)
	return tail - head
}

// Release drops the queue object.
func (q *Queue) Release() error { return q.h.SM.Delete(q.vsid) }
