package hds

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/iterreg"
	"repro/internal/segment"
)

func heap() *Heap { return NewHeap(core.TestConfig()) }

func TestStringRoundTripAndEquality(t *testing.T) {
	h := heap()
	a := NewString(h, []byte("the quick brown fox"))
	b := NewString(h, []byte("the quick brown fox"))
	c := NewString(h, []byte("the quick brown cat"))
	if string(a.Bytes(h)) != "the quick brown fox" {
		t.Fatalf("bytes = %q", a.Bytes(h))
	}
	if !a.Equal(b) {
		t.Fatal("equal strings compare unequal")
	}
	if a.Key() != b.Key() {
		t.Fatal("equal strings have different keys (dedup broken)")
	}
	if a.Equal(c) {
		t.Fatal("different strings compare equal")
	}
}

func TestStringPrefixNotEqual(t *testing.T) {
	h := heap()
	a := NewString(h, []byte("prefix"))
	b := NewString(h, []byte("prefix plus more"))
	if a.Equal(b) {
		t.Fatal("prefix equals longer string")
	}
}

func TestArrayBasics(t *testing.T) {
	h := heap()
	a := NewArray(h)
	for i := uint64(0); i < 20; i++ {
		if _, err := a.Append(i * 10); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() != 20 {
		t.Fatalf("len = %d", a.Len())
	}
	if a.At(7) != 70 {
		t.Fatalf("At(7) = %d", a.At(7))
	}
	if err := a.Set(1000, 42); err != nil {
		t.Fatal(err)
	}
	if a.At(1000) != 42 || a.Len() != 1001 {
		t.Fatal("sparse set/growth broken")
	}
	if a.At(500) != 0 {
		t.Fatal("hole not zero")
	}
}

func TestArraySnapshotStability(t *testing.T) {
	h := heap()
	a := NewArray(h)
	a.Append(1)
	seg, size, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a.Append(2)
	if size != 1 {
		t.Fatalf("snapshot size = %d", size)
	}
	it := iterreg.NewSegmentIterator(h.M, seg)
	if v, _ := it.Load(1); v != 0 {
		t.Fatal("snapshot sees later append")
	}
	segment.ReleaseSeg(h.M, seg)
}

func TestMapGetSetDelete(t *testing.T) {
	h := heap()
	m := NewMap(h)
	k := NewString(h, []byte("user:42"))
	v := NewString(h, []byte(`{"name":"Ada","karma":9001}`))
	if _, ok := m.Get(k); ok {
		t.Fatal("empty map returned a value")
	}
	if err := m.Set(k, v); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Get(k)
	if !ok {
		t.Fatal("set key not found")
	}
	if string(got.Bytes(h)) != `{"name":"Ada","karma":9001}` {
		t.Fatalf("value = %q", got.Bytes(h))
	}
	got.Release(h)
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	if err := m.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(k); ok {
		t.Fatal("deleted key still present")
	}
	if m.Len() != 0 {
		t.Fatalf("len after delete = %d", m.Len())
	}
}

func TestMapOverwrite(t *testing.T) {
	h := heap()
	m := NewMap(h)
	k := NewString(h, []byte("key"))
	m.Set(k, NewString(h, []byte("old value")))
	m.Set(k, NewString(h, []byte("new value")))
	got, ok := m.Get(k)
	if !ok || string(got.Bytes(h)) != "new value" {
		t.Fatalf("got %q, %v", got.Bytes(h), ok)
	}
	got.Release(h)
}

func TestMapManyKeys(t *testing.T) {
	h := heap()
	m := NewMap(h)
	const n = 200
	for i := 0; i < n; i++ {
		k := NewString(h, []byte(fmt.Sprintf("key-%04d", i)))
		v := NewString(h, []byte(fmt.Sprintf("value payload number %d", i)))
		if err := m.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Len(); got != n {
		t.Fatalf("len = %d, want %d", got, n)
	}
	for i := 0; i < n; i += 17 {
		k := NewString(h, []byte(fmt.Sprintf("key-%04d", i)))
		v, ok := m.Get(k)
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		if want := fmt.Sprintf("value payload number %d", i); string(v.Bytes(h)) != want {
			t.Fatalf("value[%d] = %q", i, v.Bytes(h))
		}
		v.Release(h)
	}
}

func TestMapConcurrentDisjointSets(t *testing.T) {
	// §4.3/§4.4: concurrent inserts of different keys proceed with
	// merge-update, no lost updates.
	h := heap()
	m := NewMap(h)
	const workers, each = 8, 30
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				k := NewString(h, []byte(fmt.Sprintf("w%d-key%d", g, i)))
				v := NewString(h, []byte(fmt.Sprintf("w%d-val%d", g, i)))
				if err := m.Set(k, v); err != nil {
					t.Errorf("set: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := m.Len(); got != workers*each {
		t.Fatalf("len = %d, want %d (lost updates)", got, workers*each)
	}
}

func TestMapSnapshotReaderUnaffectedByWrites(t *testing.T) {
	h := heap()
	m := NewMap(h)
	k := NewString(h, []byte("config"))
	m.Set(k, NewString(h, []byte("v1")))
	snap, err := iterreg.Open(h.M, h.SM, m.ReadOnlyVSID())
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	m.Set(k, NewString(h, []byte("v2")))
	got, ok := GetFrom(h, snap, k)
	if !ok || string(got.Bytes(h)) != "v1" {
		t.Fatalf("snapshot read %q, %v; want v1", got.Bytes(h), ok)
	}
	got.Release(h)
}

func TestCounterConcurrentAdds(t *testing.T) {
	h := heap()
	c := NewCounter(h)
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := c.Add(3, 1); err != nil {
					t.Errorf("add: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(3); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := c.Value(0); got != 0 {
		t.Fatalf("untouched counter = %d", got)
	}
}

func TestQueueFIFO(t *testing.T) {
	h := heap()
	q := NewQueue(h)
	for i := 0; i < 10; i++ {
		if err := q.Enqueue(NewString(h, []byte(fmt.Sprintf("item-%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 10 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < 10; i++ {
		s, ok, err := q.Dequeue()
		if err != nil || !ok {
			t.Fatalf("dequeue %d: %v %v", i, ok, err)
		}
		if want := fmt.Sprintf("item-%d", i); string(s.Bytes(h)) != want {
			t.Fatalf("dequeued %q, want %q", s.Bytes(h), want)
		}
		s.Release(h)
	}
	if _, ok, _ := q.Dequeue(); ok {
		t.Fatal("empty queue dequeued something")
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	h := heap()
	q := NewQueue(h)
	const producers, items = 4, 20
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < items; i++ {
				if err := q.Enqueue(NewString(h, []byte(fmt.Sprintf("p%d-%d", p, i)))); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	seen := make(map[string]bool)
	var mu sync.Mutex
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s, ok, err := q.Dequeue()
				if err != nil {
					t.Errorf("dequeue: %v", err)
					return
				}
				if !ok {
					return
				}
				mu.Lock()
				key := string(s.Bytes(h))
				if seen[key] {
					t.Errorf("item %q dequeued twice", key)
				}
				seen[key] = true
				mu.Unlock()
				s.Release(h)
			}
		}()
	}
	wg.Wait()
	if len(seen) != producers*items {
		t.Fatalf("dequeued %d distinct items, want %d", len(seen), producers*items)
	}
}

func TestMapValueLifetimeAcrossDelete(t *testing.T) {
	// A value fetched before a delete must stay readable (snapshot +
	// explicit retain) after the map drops it.
	h := heap()
	m := NewMap(h)
	k := NewString(h, []byte("ephemeral"))
	m.Set(k, NewString(h, []byte("long enough value to span multiple lines of memory")))
	v, ok := m.Get(k)
	if !ok {
		t.Fatal("missing")
	}
	m.Delete(k)
	if string(v.Bytes(h)) != "long enough value to span multiple lines of memory" {
		t.Fatal("value corrupted after delete")
	}
	v.Release(h)
}

func TestHeapObjectsReleaseCleanly(t *testing.T) {
	h := heap()
	m := NewMap(h)
	k := NewString(h, []byte("k"))
	v := NewString(h, []byte("v"))
	m.Set(k, v)
	k.Release(h)
	v.Release(h)
	if err := m.Release(); err != nil {
		t.Fatal(err)
	}
	q := NewQueue(h)
	s := NewString(h, []byte("queued"))
	q.Enqueue(s)
	s.Release(h)
	if err := q.Release(); err != nil {
		t.Fatal(err)
	}
	if live := h.M.LiveLines(); live != 0 {
		t.Fatalf("%d lines leaked after releasing all objects", live)
	}
}
