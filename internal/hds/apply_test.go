package hds

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/segment"
)

func TestApplyErrorOnDup(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	pairs := []Pair{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
		{Key: []byte("a"), Value: []byte("3")},
	}
	if err := mp.Apply(pairs, ApplyOptions{ErrorOnDup: true}); err != ErrDuplicateKey {
		t.Fatalf("Apply with dup = %v, want ErrDuplicateKey", err)
	}
	if n := mp.Len(); n != 0 {
		t.Fatalf("rejected batch mutated the map: %d entries", n)
	}
	if err := mp.Apply(pairs[:2], ApplyOptions{ErrorOnDup: true}); err != nil {
		t.Fatalf("Apply without dup: %v", err)
	}
	if n := mp.Len(); n != 2 {
		t.Fatalf("map len %d, want 2", n)
	}

	o := NewOrdered(h)
	items := []Item{{Key: 1, Value: []byte("x")}, {Key: 1, Value: []byte("y")}}
	if err := o.Apply(items, ApplyOptions{ErrorOnDup: true}); err != ErrDuplicateKey {
		t.Fatalf("Ordered.Apply with dup = %v, want ErrDuplicateKey", err)
	}
	if err := o.Apply(items[:1], ApplyOptions{ErrorOnDup: true}); err != nil {
		t.Fatalf("Ordered.Apply without dup: %v", err)
	}
}

// TestConcurrentApplyMergeStress drives concurrent Apply batches on one
// map (disjoint key ranges, values large enough to keep growing the
// segment) so merge-first conflict resolution and height-aligned rebases
// run under real interleavings; run with -race -cpu=1,4 in CI. Every
// batch must land without application-visible retry errors.
func TestConcurrentApplyMergeStress(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	const workers, batches, perBatch = 4, 12, 6
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				pairs := make([]Pair, perBatch)
				for k := range pairs {
					pairs[k] = Pair{
						Key:   []byte(fmt.Sprintf("w%d-b%d-k%d", g, b, k)),
						Value: []byte(fmt.Sprintf("value-%d-%d-%d", g, b, k)),
					}
				}
				if err := mp.Apply(pairs, ApplyOptions{}); err != nil {
					t.Errorf("worker %d batch %d: %v", g, b, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < workers; g++ {
		for b := 0; b < batches; b++ {
			for k := 0; k < perBatch; k++ {
				key := NewString(h, []byte(fmt.Sprintf("w%d-b%d-k%d", g, b, k)))
				v, ok := mp.Get(key)
				want := fmt.Sprintf("value-%d-%d-%d", g, b, k)
				if !ok || string(v.Bytes(h)) != want {
					t.Fatalf("key w%d-b%d-k%d: ok=%v got %q want %q",
						g, b, k, ok, v.Bytes(h), want)
				}
				v.Release(h)
				key.Release(h)
			}
		}
	}
	if n := mp.Len(); n != workers*batches*perBatch {
		t.Fatalf("map len %d, want %d", n, workers*batches*perBatch)
	}
}

// Apply must surface the wave-commit counters: one batch of k fresh keys
// rebuilds k*2 value/length word paths plus key words, in one wave.
func TestApplyReportsWaveStats(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	pairs := make([]Pair, 32)
	for i := range pairs {
		pairs[i] = Pair{
			Key:   []byte(fmt.Sprintf("stat:%03d", i)),
			Value: []byte(fmt.Sprintf("payload %d", i)),
		}
	}
	var st segment.WriteStats
	if err := mp.Apply(pairs, ApplyOptions{Stats: &st}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if st.Updates != uint64(len(pairs)*4) {
		t.Fatalf("Updates = %d, want %d (4 slot words per pair)", st.Updates, len(pairs)*4)
	}
	if st.WaveLevels == 0 || st.PathsRebuilt == 0 {
		t.Fatalf("empty wave counters: %+v", st)
	}
}

func TestApplyNoMerge(t *testing.T) {
	h := heap()
	mp := NewMap(h)
	pairs := []Pair{{Key: []byte("k1"), Value: []byte("v1")}, {Key: []byte("k2"), Value: []byte("v2")}}
	if err := mp.Apply(pairs, ApplyOptions{NoMerge: true}); err != nil {
		t.Fatalf("Apply NoMerge: %v", err)
	}
	k := NewString(h, []byte("k2"))
	got, ok := mp.Get(k)
	if !ok || string(got.Bytes(h)) != "v2" {
		t.Fatalf("NoMerge batch lost a binding")
	}
	got.Release(h)
	k.Release(h)
}

// TestConcurrentApplyScan races bulk Apply batches against Get and
// snapshot scans on one shared map (run under -race -cpu=1,4 in CI):
// writers contend on a shared key range so merge conflicts and retries
// fire, readers must always observe consistent snapshots.
func TestConcurrentApplyScan(t *testing.T) {
	h := heap()
	mp := NewMap(h)

	const writers, rounds, span = 3, 8, 16
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				pairs := make([]Pair, span)
				for i := range pairs {
					// Half the keys are shared across writers (forced
					// same-slot conflicts), half are private.
					if i%2 == 0 {
						pairs[i] = Pair{
							Key:   []byte(fmt.Sprintf("shared:%02d", i)),
							Value: []byte(fmt.Sprintf("writer %d round %d item %d", g, round, i)),
						}
					} else {
						pairs[i] = Pair{
							Key:   []byte(fmt.Sprintf("w%d:%02d", g, i)),
							Value: []byte(fmt.Sprintf("private %d round %d", i, round)),
						}
					}
				}
				if err := mp.Apply(pairs, ApplyOptions{}); err != nil {
					t.Errorf("writer %d round %d: %v", g, round, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 2*rounds; round++ {
				k := NewString(h, []byte(fmt.Sprintf("shared:%02d", (round*2)%span)))
				if v, ok := mp.Get(k); ok {
					if len(v.Bytes(h)) == 0 {
						t.Error("present key with empty value")
					}
					v.Release(h)
				}
				k.Release(h)
				if err := mp.ForEach(func(key, val String) bool { return true }); err != nil {
					t.Errorf("ForEach: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every private key must hold its writer's final-round value; shared
	// keys hold some writer's final-round value (merge keeps last commit).
	for g := 0; g < writers; g++ {
		for i := 1; i < span; i += 2 {
			k := NewString(h, []byte(fmt.Sprintf("w%d:%02d", g, i)))
			v, ok := mp.Get(k)
			if !ok {
				t.Fatalf("private key w%d:%02d missing", g, i)
			}
			if want := fmt.Sprintf("private %d round %d", i, rounds-1); string(v.Bytes(h)) != want {
				t.Fatalf("w%d:%02d = %q, want %q", g, i, v.Bytes(h), want)
			}
			v.Release(h)
			k.Release(h)
		}
	}
}
