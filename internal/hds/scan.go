package hds

import (
	"repro/internal/iterreg"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// Streaming map walks. A whole-map traversal through Get-style point
// reads re-descends the DAG once per slot word; the walks here take one
// snapshot and stream it with the segment scanner (level-order waves,
// per-wave line dedup), reassembling 4-word slots from the emission
// stream. Diffing rides DiffWords: between two map snapshots only the
// slots on changed paths are ever fetched, so computing "what changed"
// costs O(changed keys), not O(map size).

// slotEmitter accumulates ascending scan emissions into map slots and
// flushes each completed, present slot to fn.
type slotEmitter struct {
	h    *Heap
	fn   func(key, val String) bool
	cur  uint64
	ws   [slotWords]uint64
	have bool
}

// word feeds one scan emission; returns false when fn stopped the walk.
func (se *slotEmitter) word(idx uint64, w uint64) bool {
	slot := idx / slotWords
	if se.have && slot != se.cur {
		if !se.flush() {
			return false
		}
	}
	se.cur, se.have = slot, true
	se.ws[idx%slotWords] = w
	return true
}

// flush emits the pending slot if it holds a binding. The strings are
// NOT retained: the walk's open snapshot pins them for the duration of
// fn, and skipping the per-binding RC bumps keeps a full-store scan free
// of refcount DRAM traffic the serial walk never paid. fn retains them
// to keep them past its return.
func (se *slotEmitter) flush() bool {
	if !se.have {
		return true
	}
	ws := se.ws
	se.ws = [slotWords]uint64{}
	se.have = false
	lenPlus := ws[slotValLen]
	if lenPlus == 0 {
		return true
	}
	n := lenPlus - 1
	key := String{Seg: segment.Seg{Root: word.PLID(ws[slotKey]), Height: heightForBytes(se.h, ws[slotKeyLen])}, Len: ws[slotKeyLen]}
	val := String{Seg: segment.Seg{Root: word.PLID(ws[slotValue]), Height: heightForBytes(se.h, n)}, Len: n}
	return se.fn(key, val)
}

// ForEach calls fn for every binding of a snapshot taken at the start of
// the walk, in ascending slot (key-PLID) order, through one streamed
// scan. fn's string references are pinned by the walk's snapshot and
// valid only until the walk ends — retain them to keep them longer;
// returning false stops the walk.
func (mp *Map) ForEach(fn func(key, val String) bool) error {
	it, err := iterreg.Open(mp.h.M, mp.h.SM, segmap.ReadOnlyRef(mp.vsid))
	if err != nil {
		return err
	}
	defer it.Close()
	se := &slotEmitter{h: mp.h, fn: fn}
	stopped := false
	it.Scan(0, func(idx uint64, w uint64, t word.Tag) bool {
		if !se.word(idx, w) {
			stopped = true
			return false
		}
		return true
	})
	if !stopped {
		se.flush()
	}
	return nil
}

// ForEachParallel is ForEach with the scan sharded across a bounded
// worker pool (segment.ScanWordsParallel); fn still runs only on the
// calling goroutine, in the same ascending order as ForEach. workers <= 0
// sizes the pool automatically.
func (mp *Map) ForEachParallel(workers int, fn func(key, val String) bool) error {
	e, err := mp.h.SM.Load(segmap.ReadOnlyRef(mp.vsid))
	if err != nil {
		return err
	}
	defer segment.ReleaseSeg(mp.h.M, e.Seg)
	se := &slotEmitter{h: mp.h, fn: fn}
	stopped := false
	segment.ScanWordsParallel(mp.h.M, e.Seg, 0, workers, func(idx uint64, w uint64, t word.Tag) bool {
		if !se.word(idx, w) {
			stopped = true
			return false
		}
		return true
	})
	if !stopped {
		se.flush()
	}
	return nil
}

// bytesScanBatch is how many bindings BytesScan materializes per bulk
// gather; larger batches dedup more shared value lines per wave (the
// gather's per-wave PLID dedup only sees sharing within one batch), at
// the cost of latency to the first callback.
const bytesScanBatch = 4096

// BytesScan streams every binding of one snapshot as materialized bytes:
// the slot walk runs through the scanner and the key/value contents of
// each batch resolve through one shared level-order gather, so value
// lines deduplicated across entries are fetched once per wave. fn owns
// the byte slices; returning false stops the walk.
func (mp *Map) BytesScan(fn func(key, val []byte) bool) error {
	it, err := iterreg.Open(mp.h.M, mp.h.SM, segmap.ReadOnlyRef(mp.vsid))
	if err != nil {
		return err
	}
	defer it.Close()
	// Strings collected per batch are pinned by the open snapshot, so the
	// deferred materialization needs no extra references.
	batch := make([]String, 0, 2*bytesScanBatch)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		bs := BytesMany(mp.h, batch)
		for i := 0; i < len(bs); i += 2 {
			if !fn(bs[i], bs[i+1]) {
				return false
			}
		}
		batch = batch[:0]
		return true
	}
	se := &slotEmitter{h: mp.h, fn: func(key, val String) bool {
		batch = append(batch, key, val)
		if len(batch) >= 2*bytesScanBatch {
			return flush()
		}
		return true
	}}
	stopped := false
	it.Scan(0, func(idx uint64, w uint64, t word.Tag) bool {
		if !se.word(idx, w) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return nil
	}
	if !se.flush() {
		return nil
	}
	flush()
	return nil
}

// Snapshot returns a stable point-in-time view of the map segment for
// later diffing; the caller owns the returned root (release it with
// segment.ReleaseSeg when done).
func (mp *Map) Snapshot() (segment.Seg, error) {
	e, err := mp.h.SM.Load(segmap.ReadOnlyRef(mp.vsid))
	if err != nil {
		return segment.Seg{}, err
	}
	return e.Seg, nil
}

// SnapshotEntry is Snapshot plus the version's registered logical size —
// the pair CompareApply needs to publish against the pinned version. The
// caller owns the returned root.
func (mp *Map) SnapshotEntry() (segment.Seg, uint64, error) {
	e, err := mp.h.SM.Load(segmap.ReadOnlyRef(mp.vsid))
	if err != nil {
		return segment.Seg{}, 0, err
	}
	return e.Seg, e.Size, nil
}

// MapDelta describes one changed binding between two map snapshots.
type MapDelta struct {
	Key       String // from the after side when present there, else before
	Before    String // valid when HasBefore
	After     String // valid when HasAfter
	HasBefore bool
	HasAfter  bool
}

// DiffSnapshots invokes fn for every key whose binding differs between
// map snapshots a (before) and b (after), in ascending slot order.
// Identical sub-DAGs are skipped by PLID equality (segment.DiffWords), so
// the walk reads lines proportional to the changed paths, not the map
// size. The delta's strings are pinned by the snapshots — they stay valid
// while the caller holds a and b; retain them to keep them longer. fn
// returning false stops the delta emission (the word-level diff itself
// has already completed).
func DiffSnapshots(h *Heap, a, b segment.Seg, fn func(d MapDelta) bool) segment.DiffStats {
	var slots []uint64
	st := segment.DiffWords(h.M, a, b, func(idx uint64, av, bv uint64, at, bt word.Tag) bool {
		slot := idx - idx%slotWords
		if len(slots) == 0 || slots[len(slots)-1] != slot {
			slots = append(slots, slot)
		}
		return true
	})
	if len(slots) == 0 {
		return st
	}
	// Materialize the changed slots from both sides in two gathers —
	// memory stays proportional to the changes.
	idxs := make([]uint64, 0, len(slots)*slotWords)
	for _, s := range slots {
		for i := uint64(0); i < slotWords; i++ {
			idxs = append(idxs, s+i)
		}
	}
	aw, _ := segment.GatherWords(h.M, a, idxs)
	bw, _ := segment.GatherWords(h.M, b, idxs)
	side := func(ws []uint64, o int) (String, String, bool) {
		lp := ws[o+slotValLen]
		if lp == 0 {
			return String{}, String{}, false
		}
		key := String{Seg: segment.Seg{Root: word.PLID(ws[o+slotKey]), Height: heightForBytes(h, ws[o+slotKeyLen])}, Len: ws[o+slotKeyLen]}
		val := String{Seg: segment.Seg{Root: word.PLID(ws[o+slotValue]), Height: heightForBytes(h, lp-1)}, Len: lp - 1}
		return key, val, true
	}
	for i := range slots {
		o := i * slotWords
		var d MapDelta
		var ka, kb String
		ka, d.Before, d.HasBefore = side(aw, o)
		kb, d.After, d.HasAfter = side(bw, o)
		if !d.HasBefore && !d.HasAfter {
			continue // changed words but no binding on either side
		}
		if d.HasAfter {
			d.Key = kb
		} else {
			d.Key = ka
		}
		if !fn(d) {
			break
		}
	}
	return st
}

// Diff invokes fn for every key whose binding differs between old (a
// prior Snapshot) and the map's current version — see DiffSnapshots.
func (mp *Map) Diff(old segment.Seg, fn func(d MapDelta) bool) (segment.DiffStats, error) {
	cur, err := mp.Snapshot()
	if err != nil {
		return segment.DiffStats{}, err
	}
	defer segment.ReleaseSeg(mp.h.M, cur)
	return DiffSnapshots(mp.h, old, cur, fn), nil
}
