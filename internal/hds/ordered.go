package hds

import (
	"repro/internal/iterreg"
	"repro/internal/merge"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// Ordered is the §4.1 ordered collection: values indexed by a 64-bit
// numeric key (the paper's example is a timestamp), stored as a sparse
// segment with the value reference at index = key. A conventional system
// needs a red-black tree with rebalancing and locking; here ordering is
// the address space itself, lookup is a DAG descent, in-order iteration
// is the iterator register's next-non-zero walk, and concurrent inserts
// merge. Each element uses two words: value root PLID and value length.
type Ordered struct {
	h    *Heap
	vsid word.VSID
}

// NewOrdered allocates an empty ordered collection.
func NewOrdered(h *Heap) *Ordered {
	v := h.SM.Create(segmap.Entry{
		Seg:   segment.NewSparse(0),
		Flags: segmap.FlagMergeUpdate,
	})
	return &Ordered{h: h, vsid: v}
}

// VSID returns the collection's object identity.
func (o *Ordered) VSID() word.VSID { return o.vsid }

// Put binds key to value (replacing any previous binding). Concurrent
// puts at different keys merge without retry.
func (o *Ordered) Put(key uint64, value String) error {
	return retryCAS(func() (bool, error) {
		it, err := iterreg.Open(o.h.M, o.h.SM, o.vsid)
		if err != nil {
			return false, err
		}
		if value.Seg.Root != word.Zero {
			it.Store(2*key, uint64(value.Seg.Root), word.TagPLID)
		} else {
			it.Store(2*key, 0, word.TagRaw)
		}
		it.Store(2*key+1, value.Len+1, word.TagRaw)
		ok, err := it.CommitMerge(it.Size())
		it.Close()
		if err == merge.ErrConflict {
			return false, nil
		}
		return ok, err
	})
}

// Delete removes key's binding.
func (o *Ordered) Delete(key uint64) error {
	return retryCAS(func() (bool, error) {
		it, err := iterreg.Open(o.h.M, o.h.SM, o.vsid)
		if err != nil {
			return false, err
		}
		if present, _ := it.Load(2*key + 1); present == 0 {
			it.Close()
			return true, nil
		}
		it.Store(2*key, 0, word.TagRaw)
		it.Store(2*key+1, 0, word.TagRaw)
		ok, err := it.CommitMerge(it.Size())
		it.Close()
		if err == merge.ErrConflict {
			return false, nil
		}
		return ok, err
	})
}

// Get returns the value at key; the caller receives a retained reference.
func (o *Ordered) Get(key uint64) (String, bool) {
	it, err := iterreg.Open(o.h.M, o.h.SM, segmap.ReadOnlyRef(o.vsid))
	if err != nil {
		return String{}, false
	}
	defer it.Close()
	return o.loadAt(it, key)
}

func (o *Ordered) loadAt(it *iterreg.Iterator, key uint64) (String, bool) {
	lenPlus, _ := it.Load(2*key + 1)
	if lenPlus == 0 {
		return String{}, false
	}
	n := lenPlus - 1
	v, _ := it.Load(2 * key)
	val := String{Seg: segment.Seg{Root: word.PLID(v), Height: heightForBytes(o.h, n)}, Len: n}
	val.Retain(o.h)
	return val, true
}

// Range calls fn in ascending key order for every element of a snapshot
// taken at the start of the walk, starting at from. fn's string reference
// is released after it returns unless fn retains it; returning false
// stops the walk. This is the §2.2 long-running read-only transaction:
// concurrent puts never disturb the iteration.
//
// The walk streams through the iterator's Scan (level-order waves with
// per-wave line dedup) instead of one NextNonZero descent per element:
// the length word at index 2*key+1 is the presence marker, and the value
// root — when the scan emitted one for the same key — arrives one
// emission earlier, so a two-word state machine reassembles each element
// without any point reads.
func (o *Ordered) Range(from uint64, fn func(key uint64, val String) bool) error {
	it, err := iterreg.Open(o.h.M, o.h.SM, segmap.ReadOnlyRef(o.vsid))
	if err != nil {
		return err
	}
	defer it.Close()
	var rootKey, rootW uint64
	haveRoot := false
	it.Scan(2*from, func(idx uint64, w uint64, t word.Tag) bool {
		key := idx / 2
		if idx%2 == 0 {
			rootKey, rootW, haveRoot = key, w, true
			return true
		}
		// Odd index: the length+1 presence marker; the value root is zero
		// unless the preceding emission carried it.
		n := w - 1
		var root uint64
		if haveRoot && rootKey == key {
			root = rootW
		}
		val := String{Seg: segment.Seg{Root: word.PLID(root), Height: heightForBytes(o.h, n)}, Len: n}
		val.Retain(o.h)
		cont := fn(key, val)
		val.Release(o.h)
		return cont
	})
	return nil
}

// First returns the smallest key at or above from.
func (o *Ordered) First(from uint64) (uint64, bool) {
	it, err := iterreg.Open(o.h.M, o.h.SM, segmap.ReadOnlyRef(o.vsid))
	if err != nil {
		return 0, false
	}
	defer it.Close()
	idx, ok := it.NextNonZero(2 * from)
	if !ok {
		return 0, false
	}
	return idx / 2, true
}

// Release drops the collection.
func (o *Ordered) Release() error { return o.h.SM.Delete(o.vsid) }
