package hds

import (
	"errors"

	"repro/internal/iterreg"
	"repro/internal/merge"
	"repro/internal/segment"
	"repro/internal/word"
)

// ErrDuplicateKey reports that a batch bound the same key more than once
// under ApplyOptions.ErrorOnDup.
var ErrDuplicateKey = errors.New("hds: duplicate key in batch")

// ApplyOptions configures one bulk mutation. The zero value is the
// SetMany/PutMany behavior: later duplicates win and the commit publishes
// with merge-update, so concurrent batches touching disjoint keys never
// retry.
type ApplyOptions struct {
	// ErrorOnDup rejects the whole batch with ErrDuplicateKey when two
	// entries bind the same key (same slot), instead of letting the later
	// one win.
	ErrorOnDup bool

	// NoMerge publishes with a plain CAS instead of merge-update: any
	// concurrent commit — even to unrelated keys — forces this batch to
	// rebuild and retry. Use it when the batch's writes must not be
	// interleaved with a concurrent version via three-way merge.
	NoMerge bool

	// Stats, when non-nil, accumulates the wave-commit counters of every
	// attempt (including retries), exposing how many sibling updates
	// coalesced and how many DAG levels one commit swept.
	Stats *segment.WriteStats
}

// Apply binds every pair in one committed update — the single bulk
// mutation entry point SetMany and FromPairs wrap. All key and value
// strings are built through one shared bulk builder (one batch-lookup
// pipeline, memoized across pairs), every slot is buffered in one
// iterator register, and the whole batch canonicalizes in a single
// bottom-up wave commit (segment.WriteBatch) published according to
// opts.
func (mp *Map) Apply(pairs []Pair, opts ApplyOptions) error {
	if len(pairs) == 0 {
		return nil
	}
	keys := make([]String, len(pairs))
	vals := make([]String, len(pairs))
	{
		b := segment.NewBuilder(mp.h.M, 0)
		for i, p := range pairs {
			keys[i] = String{Seg: b.BuildBytes(p.Key), Len: uint64(len(p.Key))}
			vals[i] = String{Seg: b.BuildBytes(p.Value), Len: uint64(len(p.Value))}
		}
		b.Close()
	}
	// The committed map DAG holds its own references; drop the builder's.
	release := func() {
		for i := range pairs {
			keys[i].Release(mp.h)
			vals[i].Release(mp.h)
		}
	}
	if opts.ErrorOnDup {
		seen := make(map[uint64]struct{}, len(pairs))
		for i := range keys {
			s := slotFor(keys[i])
			if _, dup := seen[s]; dup {
				release()
				return ErrDuplicateKey
			}
			seen[s] = struct{}{}
		}
	}
	err := retryCAS(func() (bool, error) {
		it, err := iterreg.Open(mp.h.M, mp.h.SM, mp.vsid)
		if err != nil {
			return false, err
		}
		for i := range pairs {
			key, value := keys[i], vals[i]
			slot := slotFor(key)
			if value.Seg.Root != word.Zero {
				it.Store(slot+slotValue, uint64(value.Seg.Root), word.TagPLID)
			} else {
				it.Store(slot+slotValue, 0, word.TagRaw)
			}
			it.Store(slot+slotValLen, value.Len+1, word.TagRaw)
			if key.Seg.Root != word.Zero {
				it.Store(slot+slotKey, uint64(key.Seg.Root), word.TagPLID)
			}
			it.Store(slot+slotKeyLen, key.Len, word.TagRaw)
		}
		ok, err := commitApply(it, opts)
		it.Close()
		if err == merge.ErrConflict {
			return false, nil
		}
		return ok, err
	})
	release()
	return err
}

// Apply binds every item in one committed update — the bulk mutation
// entry point PutMany wraps, with the same options as Map.Apply.
func (o *Ordered) Apply(items []Item, opts ApplyOptions) error {
	if len(items) == 0 {
		return nil
	}
	if opts.ErrorOnDup {
		seen := make(map[uint64]struct{}, len(items))
		for _, item := range items {
			if _, dup := seen[item.Key]; dup {
				return ErrDuplicateKey
			}
			seen[item.Key] = struct{}{}
		}
	}
	vals := make([]String, len(items))
	{
		b := segment.NewBuilder(o.h.M, 0)
		for i, item := range items {
			vals[i] = String{Seg: b.BuildBytes(item.Value), Len: uint64(len(item.Value))}
		}
		b.Close()
	}
	err := retryCAS(func() (bool, error) {
		it, err := iterreg.Open(o.h.M, o.h.SM, o.vsid)
		if err != nil {
			return false, err
		}
		for i, item := range items {
			value := vals[i]
			if value.Seg.Root != word.Zero {
				it.Store(2*item.Key, uint64(value.Seg.Root), word.TagPLID)
			} else {
				it.Store(2*item.Key, 0, word.TagRaw)
			}
			it.Store(2*item.Key+1, value.Len+1, word.TagRaw)
		}
		ok, err := commitApply(it, opts)
		it.Close()
		if err == merge.ErrConflict {
			return false, nil
		}
		return ok, err
	})
	for i := range vals {
		vals[i].Release(o.h)
	}
	return err
}

// commitApply publishes one buffered batch according to opts and feeds
// the attempt's wave counters into opts.Stats.
func commitApply(it *iterreg.Iterator, opts ApplyOptions) (bool, error) {
	var ok bool
	var err error
	if opts.NoMerge {
		ok, err = it.TryCommit(it.Size())
	} else {
		ok, err = it.CommitMerge(it.Size())
	}
	if opts.Stats != nil {
		opts.Stats.Add(it.Stats.Wave)
	}
	return ok, err
}
