package hds

import (
	"errors"

	"repro/internal/iterreg"
	"repro/internal/merge"
	"repro/internal/segment"
	"repro/internal/word"
)

// ErrDuplicateKey reports that a batch bound the same key more than once
// under ApplyOptions.ErrorOnDup.
var ErrDuplicateKey = errors.New("hds: duplicate key in batch")

// ErrStale reports that a CompareApply with NoMerge lost to an
// interleaved commit: the pinned snapshot is no longer the current
// version and the batch was not published.
var ErrStale = errors.New("hds: snapshot is stale")

// ApplyOptions configures one bulk mutation. The zero value is the
// default behavior: later duplicates win and the commit publishes with
// merge-update, so concurrent batches touching disjoint keys never
// retry.
type ApplyOptions struct {
	// ErrorOnDup rejects the whole batch with ErrDuplicateKey when two
	// entries bind the same key (same slot), instead of letting the later
	// one win.
	ErrorOnDup bool

	// NoMerge publishes with a plain CAS instead of merge-update: any
	// concurrent commit — even to unrelated keys — forces this batch to
	// rebuild and retry. Use it when the batch's writes must not be
	// interleaved with a concurrent version via three-way merge.
	NoMerge bool

	// Stats, when non-nil, accumulates the wave-commit counters of every
	// attempt (including retries), exposing how many sibling updates
	// coalesced and how many DAG levels one commit swept.
	Stats *segment.WriteStats
}

// Apply binds every pair in one committed update — the single bulk
// mutation entry point. All key and value
// strings are built through one shared bulk builder (one batch-lookup
// pipeline, memoized across pairs), every slot is buffered in one
// iterator register, and the whole batch canonicalizes in a single
// bottom-up wave commit (segment.WriteBatch) published according to
// opts.
func (mp *Map) Apply(pairs []Pair, opts ApplyOptions) error {
	if len(pairs) == 0 {
		return nil
	}
	keys, vals, release := mp.buildPairs(pairs)
	if opts.ErrorOnDup {
		seen := make(map[uint64]struct{}, len(pairs))
		for i := range keys {
			s := slotFor(keys[i])
			if _, dup := seen[s]; dup {
				release()
				return ErrDuplicateKey
			}
			seen[s] = struct{}{}
		}
	}
	err := retryCAS(func() (bool, error) {
		it, err := iterreg.Open(mp.h.M, mp.h.SM, mp.vsid)
		if err != nil {
			return false, err
		}
		mp.storePairs(it, pairs, keys, vals)
		ok, err := commitApply(it, opts)
		it.Close()
		if err == merge.ErrConflict {
			return false, nil
		}
		return ok, err
	})
	release()
	return err
}

// buildPairs constructs every pair's key and value string through one
// shared bulk builder (tombstones build only the key) and returns the
// release closure dropping the builder's references once the committed
// map DAG holds its own.
func (mp *Map) buildPairs(pairs []Pair) (keys, vals []String, release func()) {
	keys = make([]String, len(pairs))
	vals = make([]String, len(pairs))
	b := segment.NewBuilder(mp.h.M, 0)
	for i, p := range pairs {
		keys[i] = String{Seg: b.BuildBytes(p.Key), Len: uint64(len(p.Key))}
		if !p.Delete {
			vals[i] = String{Seg: b.BuildBytes(p.Value), Len: uint64(len(p.Value))}
		}
	}
	b.Close()
	return keys, vals, func() {
		for i := range pairs {
			keys[i].Release(mp.h)
			if !pairs[i].Delete {
				vals[i].Release(mp.h)
			}
		}
	}
}

// storePairs buffers every pair's slot words into the iterator register.
// A tombstone zeroes its slot; unbinding a key that is absent in the
// snapshot AND untouched earlier in the batch is skipped outright, so a
// batch of misses stays a no-op commit instead of growing the map DAG
// with zero spines.
func (mp *Map) storePairs(it *iterreg.Iterator, pairs []Pair, keys, vals []String) {
	arity := mp.h.M.LineWords()
	capacity := it.Seg().Capacity(arity)
	var touched map[uint64]struct{}
	for i := range pairs {
		key := keys[i]
		slot := slotFor(key)
		if pairs[i].Delete {
			if slot+slotWords > capacity {
				if _, ok := touched[slot]; !ok {
					continue // absent: deleting nothing
				}
			}
			for w := uint64(0); w < slotWords; w++ {
				it.Store(slot+w, 0, word.TagRaw)
			}
			continue
		}
		if slot+slotWords > capacity {
			// Track slots written beyond the snapshot's capacity so a later
			// tombstone for the same key still wins over this binding.
			if touched == nil {
				touched = make(map[uint64]struct{})
			}
			touched[slot] = struct{}{}
		}
		value := vals[i]
		if value.Seg.Root != word.Zero {
			it.Store(slot+slotValue, uint64(value.Seg.Root), word.TagPLID)
		} else {
			it.Store(slot+slotValue, 0, word.TagRaw)
		}
		it.Store(slot+slotValLen, value.Len+1, word.TagRaw)
		if key.Seg.Root != word.Zero {
			it.Store(slot+slotKey, uint64(key.Seg.Root), word.TagPLID)
		}
		it.Store(slot+slotKeyLen, key.Len, word.TagRaw)
	}
}

// CompareApply binds every pair in one wave commit built against orig —
// a snapshot the caller pinned earlier (SnapshotEntry) — and publishes
// it conditionally: the memcached-style compare-and-swap, mapped onto
// merge-update instead of failure. By default a stale orig does not fail
// the publish; the batch is rebased through the three-way merge
// (merge.MCAS), so commits that interleaved since the snapshot survive
// unless they touched one of this batch's slots — only that true
// conflict returns merge.ErrConflict. With opts.NoMerge the publish is
// one plain CAS against orig and any interleaved commit fails it with
// ErrStale.
//
// The caller keeps its reference on orig (release it when the pinned
// snapshot is no longer needed).
func (mp *Map) CompareApply(orig segment.Seg, size uint64, pairs []Pair, opts ApplyOptions) error {
	if len(pairs) == 0 {
		return nil
	}
	keys, vals, release := mp.buildPairs(pairs)
	defer release()
	if opts.ErrorOnDup {
		seen := make(map[uint64]struct{}, len(pairs))
		for i := range keys {
			s := slotFor(keys[i])
			if _, dup := seen[s]; dup {
				return ErrDuplicateKey
			}
			seen[s] = struct{}{}
		}
	}
	// A detached register buffers the slot stores against the pinned
	// snapshot (last write to a slot wins, as in Apply) and converts them
	// in one wave commit; ownership of the resulting root passes to the
	// publish below.
	it := iterreg.NewSegmentIterator(mp.h.M, orig)
	mp.storePairs(it, pairs, keys, vals)
	next := it.CommitSegment()
	if opts.Stats != nil {
		opts.Stats.Add(it.Stats.Wave)
	}
	if opts.NoMerge {
		if !mp.h.SM.CAS(mp.vsid, orig, next, size) {
			segment.ReleaseSeg(mp.h.M, next)
			return ErrStale
		}
		return nil
	}
	_, err := merge.MCAS(mp.h.M, mp.h.SM, mp.vsid, orig, next, size, nil)
	return err
}

// Apply binds every item in one committed update — the bulk mutation
// entry point, with the same options as Map.Apply.
func (o *Ordered) Apply(items []Item, opts ApplyOptions) error {
	if len(items) == 0 {
		return nil
	}
	if opts.ErrorOnDup {
		seen := make(map[uint64]struct{}, len(items))
		for _, item := range items {
			if _, dup := seen[item.Key]; dup {
				return ErrDuplicateKey
			}
			seen[item.Key] = struct{}{}
		}
	}
	vals := make([]String, len(items))
	{
		b := segment.NewBuilder(o.h.M, 0)
		for i, item := range items {
			vals[i] = String{Seg: b.BuildBytes(item.Value), Len: uint64(len(item.Value))}
		}
		b.Close()
	}
	err := retryCAS(func() (bool, error) {
		it, err := iterreg.Open(o.h.M, o.h.SM, o.vsid)
		if err != nil {
			return false, err
		}
		for i, item := range items {
			value := vals[i]
			if value.Seg.Root != word.Zero {
				it.Store(2*item.Key, uint64(value.Seg.Root), word.TagPLID)
			} else {
				it.Store(2*item.Key, 0, word.TagRaw)
			}
			it.Store(2*item.Key+1, value.Len+1, word.TagRaw)
		}
		ok, err := commitApply(it, opts)
		it.Close()
		if err == merge.ErrConflict {
			return false, nil
		}
		return ok, err
	})
	for i := range vals {
		vals[i].Release(o.h)
	}
	return err
}

// commitApply publishes one buffered batch according to opts and feeds
// the attempt's wave counters into opts.Stats.
func commitApply(it *iterreg.Iterator, opts ApplyOptions) (bool, error) {
	var ok bool
	var err error
	if opts.NoMerge {
		ok, err = it.TryCommit(it.Size())
	} else {
		ok, err = it.CommitMerge(it.Size())
	}
	if opts.Stats != nil {
		opts.Stats.Add(it.Stats.Wave)
	}
	return ok, err
}
