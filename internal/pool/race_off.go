//go:build !race

package pool

// RaceEnabled reports whether the binary was built with the race
// detector. Allocation-pinning tests consult it: the race runtime
// instruments allocations and defeats AllocsPerRun's accounting, so
// the pins only assert in non-race builds.
const RaceEnabled = false
