// Package pool provides bucketed scratch allocators for the wave
// engines: power-of-2 size bins in the bytepool style, per-bin
// hit/miss/oversize/returned stats, and a per-call Scratch handle that
// releases every borrowed buffer when the engine returns.
//
// Ownership rules (the escape discipline the engines follow):
//
//   - Scratch-acquired buffers are borrowed for the duration of one
//     engine call; Scratch.Release reclaims all of them at once, so a
//     borrowed buffer must never be stored in a result the caller keeps.
//     Results are always built with plain make.
//   - GetBuf hands out an owned *Buf whose Release the caller schedules
//     explicitly — the ownership-transfer path for buffers that cross
//     goroutines (parallel scan chunk handoff).
//   - Requests above the largest bin fall through to plain make: they
//     are counted in Stats.Oversize but never retained, so a pathological
//     request size cannot pin memory in a freelist.
//   - Dormant buffers keep their contents (the next Get returns stale
//     data; callers overwrite or use GetZeroed). Pools whose element
//     type holds pointers opt into WithClearOnPut so dormant buffers do
//     not pin dead objects against the GC.
//
// Freelists are per-bin mutex-guarded stacks, not sync.Pool: the GC
// never drops a dormant buffer, so steady-state hit rates — and the
// testing.AllocsPerRun pins built on them — are deterministic.
package pool

import (
	"math/bits"
	"sort"
	"sync"
)

const (
	minBinShift = 6 // smallest bin holds 64 elements
	numBins     = 11
	minBinSize  = 1 << minBinShift
	maxBinSize  = 1 << (minBinShift + numBins - 1) // 65536 elements

	// defaultKeepElems bounds each bin's dormant retention in elements
	// (not buffers): a bin keeps at most keepElems/binSize buffers, and
	// always at least one. Small bins keep many cheap buffers, the top
	// bin keeps one.
	defaultKeepElems = 1 << 16
)

// Stats is the aggregate counter set of one pool. Hits and Misses count
// binned acquisitions served from / missing the freelist, Oversize
// counts requests above the largest bin (plain make, never pooled), and
// Returned counts releases (including oversize buffers, which are
// counted and dropped).
type Stats struct {
	Hits     uint64
	Misses   uint64
	Oversize uint64
	Returned uint64
}

// BinStats is one bin's counter set.
type BinStats struct {
	Size     int // bin capacity in elements
	Hits     uint64
	Misses   uint64
	Returned uint64
}

// PoolStats is a point-in-time snapshot of one named pool.
type PoolStats struct {
	Name string
	Stats
	Bins []BinStats // per-bin rows (slice pools only), ascending Size
}

// snapshotter is implemented by every pool kind for the registry.
type snapshotter interface{ Snapshot() PoolStats }

var registry struct {
	mu    sync.Mutex
	pools []snapshotter
}

func register(p snapshotter) {
	registry.mu.Lock()
	registry.pools = append(registry.pools, p)
	registry.mu.Unlock()
}

// Snapshot returns the stats of every registered pool, sorted by name.
// Pools register at construction; package-level pool variables in the
// engine packages are therefore all visible here.
func Snapshot() []PoolStats {
	registry.mu.Lock()
	ps := make([]snapshotter, len(registry.pools))
	copy(ps, registry.pools)
	registry.mu.Unlock()
	out := make([]PoolStats, len(ps))
	for i, p := range ps {
		out[i] = p.Snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// released is the intrusive link Scratch tracks borrowed buffers with.
// Implementations (Buf, MapBuf) are pooled alongside their payload, so
// tracking a borrow never allocates: storing a pointer in an interface
// does not box.
type released interface {
	// reclaim returns the buffer to its pool and hands back the next
	// link in the scratch list.
	reclaim() released
}

// Scratch tracks the buffers one engine call borrows. The zero value is
// ready to use; Release returns every tracked buffer to its pool. A
// Scratch must not be shared across goroutines — parallel stages hand
// ownership with GetBuf / Buf.Release instead.
type Scratch struct {
	head released
}

// Release returns every buffer acquired through this Scratch to its
// pool, in reverse acquisition order.
func (sc *Scratch) Release() {
	for r := sc.head; r != nil; {
		r = r.reclaim()
	}
	sc.head = nil
}

// config carries construction options shared by the pool kinds.
type config struct {
	clearOnPut bool
	keepElems  int
}

// Option configures a pool at construction.
type Option func(*config)

// WithClearOnPut clears returned buffers before they go dormant. Use for
// element types holding pointers, so freelisted buffers do not keep dead
// objects reachable.
func WithClearOnPut() Option {
	return func(c *config) { c.clearOnPut = true }
}

// WithKeepElems bounds each bin's dormant retention to n elements
// (at least one buffer per bin is always kept).
func WithKeepElems(n int) Option {
	return func(c *config) { c.keepElems = n }
}

// binIndex maps a request size to its bin, or -1 for oversize.
func binIndex(n int) int {
	if n <= minBinSize {
		return 0
	}
	if n > maxBinSize {
		return -1
	}
	return bits.Len(uint(n-1)) - minBinShift
}

func binSize(i int) int { return 1 << (minBinShift + i) }

// Buf is one pooled slice with its freelist identity. S is the borrowed
// storage, sliced to the requested length. Engines that transfer
// ownership across goroutines pass the *Buf and the receiver calls
// Release; Scratch-tracked buffers are released by Scratch.Release and
// must not be released manually.
type Buf[T any] struct {
	S    []T
	pool *SlicePool[T]
	bin  int8 // -1: oversize, never pooled
	next released
}

func (b *Buf[T]) reclaim() released {
	n := b.next
	b.next = nil
	b.Release()
	return n
}

// Release returns the buffer to its pool. Oversize buffers are counted
// and dropped.
func (b *Buf[T]) Release() { b.pool.put(b) }

// SlicePool hands out []T scratch in power-of-2 bins.
type SlicePool[T any] struct {
	name string
	cfg  config
	bins [numBins]sliceBin[T]
	over struct {
		mu                 sync.Mutex
		acquired, returned uint64
	}
}

type sliceBin[T any] struct {
	mu                     sync.Mutex
	free                   []*Buf[T]
	hits, misses, returned uint64
}

// NewSlice constructs and registers a slice pool.
func NewSlice[T any](name string, opts ...Option) *SlicePool[T] {
	p := &SlicePool[T]{name: name, cfg: config{keepElems: defaultKeepElems}}
	for _, o := range opts {
		o(&p.cfg)
	}
	register(p)
	return p
}

// GetBuf acquires an owned buffer of length n; the caller (or whoever
// ownership is handed to) must call Release. Contents are stale.
func (p *SlicePool[T]) GetBuf(n int) *Buf[T] {
	bi := binIndex(n)
	if bi < 0 {
		p.over.mu.Lock()
		p.over.acquired++
		p.over.mu.Unlock()
		return &Buf[T]{S: make([]T, n), pool: p, bin: -1}
	}
	bn := &p.bins[bi]
	bn.mu.Lock()
	var b *Buf[T]
	if k := len(bn.free); k > 0 {
		b = bn.free[k-1]
		bn.free[k-1] = nil
		bn.free = bn.free[:k-1]
		bn.hits++
	} else {
		bn.misses++
	}
	bn.mu.Unlock()
	if b == nil {
		b = &Buf[T]{S: make([]T, binSize(bi)), pool: p, bin: int8(bi)}
	}
	b.S = b.S[:n]
	return b
}

// Get borrows a length-n slice through sc. Contents are stale; callers
// overwrite every element or use GetZeroed.
func (p *SlicePool[T]) Get(sc *Scratch, n int) []T {
	b := p.GetBuf(n)
	b.next = sc.head
	sc.head = b
	return b.S
}

// GetZeroed borrows a length-n slice through sc with every element set
// to the zero value.
func (p *SlicePool[T]) GetZeroed(sc *Scratch, n int) []T {
	s := p.Get(sc, n)
	clear(s)
	return s
}

// GetCap borrows an empty slice with capacity at least c (rounded up to
// the bin size) through sc, for append-style filling. Appending past the
// requested capacity reallocates out of the pool's sight — the engine
// keeps correctness but loses the reuse, so callers size c as a bound.
func (p *SlicePool[T]) GetCap(sc *Scratch, c int) []T {
	b := p.GetBuf(c)
	b.next = sc.head
	sc.head = b
	return b.S[:0]
}

func (p *SlicePool[T]) put(b *Buf[T]) {
	if b.bin < 0 {
		p.over.mu.Lock()
		p.over.returned++
		p.over.mu.Unlock()
		b.S = nil // drop oversize storage; the wrapper dies with it
		return
	}
	b.S = b.S[:cap(b.S)]
	if p.cfg.clearOnPut {
		clear(b.S)
	}
	bn := &p.bins[b.bin]
	keep := p.cfg.keepElems / cap(b.S)
	if keep < 1 {
		keep = 1
	}
	bn.mu.Lock()
	bn.returned++
	if len(bn.free) < keep {
		bn.free = append(bn.free, b)
	}
	bn.mu.Unlock()
}

// Stats returns the pool's aggregate counters.
func (p *SlicePool[T]) Stats() Stats {
	return p.Snapshot().Stats
}

// Snapshot implements the registry interface.
func (p *SlicePool[T]) Snapshot() PoolStats {
	ps := PoolStats{Name: p.name, Bins: make([]BinStats, 0, numBins)}
	for i := range p.bins {
		bn := &p.bins[i]
		bn.mu.Lock()
		bs := BinStats{Size: binSize(i), Hits: bn.hits, Misses: bn.misses, Returned: bn.returned}
		bn.mu.Unlock()
		ps.Bins = append(ps.Bins, bs)
		ps.Hits += bs.Hits
		ps.Misses += bs.Misses
		ps.Returned += bs.Returned
	}
	p.over.mu.Lock()
	ps.Oversize = p.over.acquired
	ps.Returned += p.over.returned
	p.over.mu.Unlock()
	return ps
}

// MapBuf is one pooled map with its scratch link.
type MapBuf[K comparable, V any] struct {
	M    map[K]V
	pool *MapPool[K, V]
	next released
}

func (b *MapBuf[K, V]) reclaim() released {
	n := b.next
	b.next = nil
	b.Release()
	return n
}

// Release clears the map — Go's clear keeps the bucket array, so the
// next Get reuses the grown capacity instead of re-growing from empty —
// and returns it to the pool.
func (b *MapBuf[K, V]) Release() { b.pool.put(b) }

// KeepMapEntries bounds the entry count past which a dormant map is
// dropped instead of cleared. clear() on a Go map costs time
// proportional to the map's grown bucket capacity — not its entry count
// — and that capacity never shrinks, so a single oversized wave would
// otherwise tax every later borrower with the historical peak's clear
// cost forever. Dropping past the bound is the map analogue of the
// slice bins' Oversize rule: pathological sizes are served but never
// retained. The bound sits above every steady-state wave the
// allocation pins exercise, so dropping never perturbs them.
const KeepMapEntries = 1 << 10

// ResetMap returns m emptied for reuse: cleared in place when small,
// replaced by a fresh map when its entry count exceeds keep (entry
// count at reset time is the capacity proxy — the engines reset their
// maps at the fullest point of the wave that grew them). keep <= 0
// selects KeepMapEntries. A nil m stays nil, for callers that
// lazily size the map on first use.
func ResetMap[K comparable, V any](m map[K]V, keep int) map[K]V {
	if keep <= 0 {
		keep = KeepMapEntries
	}
	if len(m) > keep {
		return nil
	}
	clear(m)
	return m
}

// MapPool hands out cleared maps. Maps are cleared, not reallocated,
// while they stay at steady-state size — a wave-dedup map grows to its
// working-set size once and every later borrow starts from that
// capacity with zero rehashing — but a map grown past KeepMapEntries is
// dropped on put so its O(capacity) clear cost cannot outlive the one
// oversized call that paid for it.
type MapPool[K comparable, V any] struct {
	name                   string
	keep                   int
	mu                     sync.Mutex
	free                   []*MapBuf[K, V]
	hits, misses, returned uint64
}

// NewMap constructs and registers a map pool.
func NewMap[K comparable, V any](name string) *MapPool[K, V] {
	p := &MapPool[K, V]{name: name, keep: 64}
	register(p)
	return p
}

// GetBuf acquires an owned, empty map buffer; the owner must Release it.
func (p *MapPool[K, V]) GetBuf() *MapBuf[K, V] {
	p.mu.Lock()
	var b *MapBuf[K, V]
	if k := len(p.free); k > 0 {
		b = p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		p.hits++
	} else {
		p.misses++
	}
	p.mu.Unlock()
	if b == nil {
		b = &MapBuf[K, V]{M: make(map[K]V), pool: p}
	}
	return b
}

// Get borrows an empty map through sc.
func (p *MapPool[K, V]) Get(sc *Scratch) map[K]V {
	b := p.GetBuf()
	b.next = sc.head
	sc.head = b
	return b.M
}

func (p *MapPool[K, V]) put(b *MapBuf[K, V]) {
	if b.M = ResetMap(b.M, KeepMapEntries); b.M == nil {
		b.M = make(map[K]V)
	}
	p.mu.Lock()
	p.returned++
	if len(p.free) < p.keep {
		p.free = append(p.free, b)
	}
	p.mu.Unlock()
}

// Stats returns the pool's counters.
func (p *MapPool[K, V]) Stats() Stats { return p.Snapshot().Stats }

// Snapshot implements the registry interface.
func (p *MapPool[K, V]) Snapshot() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Name: p.name, Stats: Stats{Hits: p.hits, Misses: p.misses, Returned: p.returned}}
}

// ItemPool hands out reusable node structs (wave-tree nodes, scanner
// frames). Engines Get nodes during a call and Put them back in their
// teardown walk; reset restores a node to its pristine state while
// keeping grown member capacity.
type ItemPool[T any] struct {
	name                   string
	reset                  func(*T)
	keep                   int
	mu                     sync.Mutex
	free                   []*T
	hits, misses, returned uint64
}

// NewItems constructs and registers an item pool. reset (may be nil) is
// applied when an item is returned.
func NewItems[T any](name string, reset func(*T)) *ItemPool[T] {
	p := &ItemPool[T]{name: name, reset: reset, keep: 1 << 16}
	register(p)
	return p
}

// Get acquires an item: reused (post-reset state) or freshly zero.
func (p *ItemPool[T]) Get() *T {
	p.mu.Lock()
	var v *T
	if k := len(p.free); k > 0 {
		v = p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		p.hits++
	} else {
		p.misses++
	}
	p.mu.Unlock()
	if v == nil {
		v = new(T)
	}
	return v
}

// Put resets the item and returns it to the pool.
func (p *ItemPool[T]) Put(v *T) {
	if p.reset != nil {
		p.reset(v)
	}
	p.mu.Lock()
	p.returned++
	if len(p.free) < p.keep {
		p.free = append(p.free, v)
	}
	p.mu.Unlock()
}

// Stats returns the pool's counters.
func (p *ItemPool[T]) Stats() Stats { return p.Snapshot().Stats }

// Snapshot implements the registry interface.
func (p *ItemPool[T]) Snapshot() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Name: p.name, Stats: Stats{Hits: p.hits, Misses: p.misses, Returned: p.returned}}
}
