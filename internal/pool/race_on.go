//go:build race

package pool

// RaceEnabled reports whether the binary was built with the race
// detector. See race_off.go.
const RaceEnabled = true
