package pool

import (
	"reflect"
	"sync"
	"testing"
)

// TestSliceStatsPinned drives a fixed Get/Release sequence and pins the
// resulting Stats struct exactly, in the bytepool exemplar's style:
// the counters are deterministic because freelists are mutex stacks the
// GC never drains.
func TestSliceStatsPinned(t *testing.T) {
	p := NewSlice[uint64]("test.u64")

	var sc Scratch
	a := p.Get(&sc, 10)   // miss (bin 64)
	b := p.Get(&sc, 100)  // miss (bin 128)
	c := p.Get(&sc, 4096) // miss (bin 4096)
	if len(a) != 10 || len(b) != 100 || len(c) != 4096 {
		t.Fatalf("lengths: %d %d %d", len(a), len(b), len(c))
	}
	if cap(a) != minBinSize || cap(b) != 128 || cap(c) != 4096 {
		t.Fatalf("bin caps: %d %d %d", cap(a), cap(b), cap(c))
	}
	sc.Release()

	want := Stats{Hits: 0, Misses: 3, Oversize: 0, Returned: 3}
	if got := p.Stats(); got != want {
		t.Fatalf("after first round: got %+v want %+v", got, want)
	}

	// Same shapes again: all hits.
	var sc2 Scratch
	_ = p.Get(&sc2, 17)   // hit (bin 64)
	_ = p.Get(&sc2, 128)  // hit (bin 128)
	_ = p.Get(&sc2, 2049) // hit (bin 4096)
	sc2.Release()

	want = Stats{Hits: 3, Misses: 3, Oversize: 0, Returned: 6}
	if got := p.Stats(); got != want {
		t.Fatalf("after second round: got %+v want %+v", got, want)
	}

	// Per-bin rows: bin 64 and 128 each saw one miss, one hit, two puts.
	snap := p.Snapshot()
	if snap.Name != "test.u64" {
		t.Fatalf("name %q", snap.Name)
	}
	for _, bin := range snap.Bins {
		switch bin.Size {
		case 64, 128, 4096:
			if bin.Hits != 1 || bin.Misses != 1 || bin.Returned != 2 {
				t.Fatalf("bin %d: %+v", bin.Size, bin)
			}
		default:
			if bin.Hits != 0 || bin.Misses != 0 || bin.Returned != 0 {
				t.Fatalf("untouched bin %d: %+v", bin.Size, bin)
			}
		}
	}
}

// TestOversizeFallsThrough pins that requests above the largest bin are
// plain allocations: counted in Oversize, never retained by a freelist.
func TestOversizeFallsThrough(t *testing.T) {
	p := NewSlice[byte]("test.oversize")
	var sc Scratch
	s := p.Get(&sc, maxBinSize+1)
	if len(s) != maxBinSize+1 {
		t.Fatalf("len %d", len(s))
	}
	sc.Release()

	want := Stats{Hits: 0, Misses: 0, Oversize: 1, Returned: 1}
	if got := p.Stats(); got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}

	// Again: still no pooling — a second oversize is a second Oversize,
	// and no bin recorded traffic.
	var sc2 Scratch
	_ = p.Get(&sc2, maxBinSize+1)
	sc2.Release()
	want = Stats{Hits: 0, Misses: 0, Oversize: 2, Returned: 2}
	if got := p.Stats(); got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
	for _, bin := range p.Snapshot().Bins {
		if bin.Hits+bin.Misses+bin.Returned != 0 {
			t.Fatalf("oversize leaked into bin %d: %+v", bin.Size, bin)
		}
	}
}

// TestZeroLengthAcquire pins that zero-length borrows work and land in
// the smallest bin.
func TestZeroLengthAcquire(t *testing.T) {
	p := NewSlice[int]("test.zerolen")
	var sc Scratch
	s := p.Get(&sc, 0)
	if len(s) != 0 {
		t.Fatalf("len %d", len(s))
	}
	s = append(s, 1, 2, 3) // capacity comes from the bin
	if cap(s) != minBinSize {
		t.Fatalf("cap %d, want bin size %d", cap(s), minBinSize)
	}
	sc.Release()
	want := Stats{Misses: 1, Returned: 1}
	if got := p.Stats(); got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

// TestGetZeroedAndStaleGet pins the contents contract: Get returns stale
// contents after reuse, GetZeroed returns zeroes.
func TestGetZeroedAndStaleGet(t *testing.T) {
	p := NewSlice[uint64]("test.stale")
	var sc Scratch
	s := p.Get(&sc, 8)
	for i := range s {
		s[i] = 0xdead
	}
	sc.Release()

	var sc2 Scratch
	s2 := p.Get(&sc2, 8)
	if s2[0] != 0xdead {
		t.Fatalf("expected stale contents, got %#x", s2[0])
	}
	sc2.Release()

	var sc3 Scratch
	s3 := p.GetZeroed(&sc3, 8)
	for i, v := range s3 {
		if v != 0 {
			t.Fatalf("GetZeroed[%d] = %#x", i, v)
		}
	}
	sc3.Release()
}

// TestClearOnPut pins that pointerful pools scrub buffers when they go
// dormant.
func TestClearOnPut(t *testing.T) {
	p := NewSlice[*int]("test.ptrclear", WithClearOnPut())
	var sc Scratch
	x := 7
	s := p.Get(&sc, 4)
	s[0] = &x
	sc.Release()

	var sc2 Scratch
	s2 := p.Get(&sc2, 4)
	if s2[0] != nil {
		t.Fatal("dormant buffer kept a pointer alive")
	}
	sc2.Release()
}

// TestMapClearedNotReallocated pins the map-pool contract: a returned
// map comes back empty but keeps its grown bucket capacity (the second
// borrow's inserts do not count as a fresh map's growth — we can only
// observe emptiness plus hit accounting, so pin those).
func TestMapClearedNotReallocated(t *testing.T) {
	p := NewMap[uint64, int]("test.map")
	var sc Scratch
	m := p.Get(&sc)
	for i := uint64(0); i < 100; i++ {
		m[i] = int(i)
	}
	sc.Release()

	var sc2 Scratch
	m2 := p.Get(&sc2)
	if len(m2) != 0 {
		t.Fatalf("reused map has %d entries", len(m2))
	}
	sc2.Release()

	want := Stats{Hits: 1, Misses: 1, Returned: 2}
	if got := p.Stats(); got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

// TestResetMapDropsOversized pins the map retention bound: a map at or
// under the keep bound is cleared in place (same buckets, no rehash on
// the next fill), one past it is dropped — clear() costs O(grown
// capacity), not O(entries), so an oversized map kept in a pool would
// tax every later borrower with the historical peak's clear cost.
func TestResetMapDropsOversized(t *testing.T) {
	small := map[uint64]int{1: 1, 2: 2}
	if got := ResetMap(small, 4); got == nil || len(got) != 0 {
		t.Fatalf("small map not cleared in place: %v", got)
	}
	big := map[uint64]int{}
	for i := uint64(0); i < 8; i++ {
		big[i] = int(i)
	}
	if got := ResetMap(big, 4); got != nil {
		t.Fatalf("oversized map retained: %v", got)
	}
	if got := ResetMap[uint64, int](nil, 4); got != nil {
		t.Fatal("nil map must stay nil")
	}
}

// TestMapPoolDropsOversized pins the same bound end to end: releasing a
// map grown past KeepMapEntries hands the next borrower a fresh map,
// while a steady-state-sized map keeps its identity across the round
// trip.
func TestMapPoolDropsOversized(t *testing.T) {
	p := NewMap[uint64, int]("test.map.drop")
	var sc Scratch
	m := p.Get(&sc)
	id := reflect.ValueOf(m).Pointer()
	for i := uint64(0); i < KeepMapEntries+1; i++ {
		m[i] = int(i)
	}
	sc.Release()

	var sc2 Scratch
	m2 := p.Get(&sc2)
	if reflect.ValueOf(m2).Pointer() == id {
		t.Fatal("map grown past KeepMapEntries survived the pool round trip")
	}
	if len(m2) != 0 {
		t.Fatalf("fresh map has %d entries", len(m2))
	}
	for i := uint64(0); i < 10; i++ {
		m2[i] = int(i)
	}
	id2 := reflect.ValueOf(m2).Pointer()
	sc2.Release()

	var sc3 Scratch
	m3 := p.Get(&sc3)
	if reflect.ValueOf(m3).Pointer() != id2 {
		t.Fatal("steady-state map was dropped instead of cleared")
	}
	sc3.Release()
}

// TestItemPoolResets pins the item pool: reset runs on Put, capacity of
// member slices survives the round trip.
func TestItemPoolResets(t *testing.T) {
	type node struct {
		vals []int
		live bool
	}
	p := NewItems[node]("test.item", func(n *node) {
		n.vals = n.vals[:0]
		n.live = false
	})
	n := p.Get()
	n.vals = append(n.vals, 1, 2, 3)
	n.live = true
	grown := cap(n.vals)
	p.Put(n)

	n2 := p.Get()
	if n2.live || len(n2.vals) != 0 {
		t.Fatalf("reset did not run: %+v", n2)
	}
	if cap(n2.vals) != grown {
		t.Fatalf("member capacity lost: %d vs %d", cap(n2.vals), grown)
	}
	p.Put(n2)
	want := Stats{Hits: 1, Misses: 1, Returned: 2}
	if got := p.Stats(); got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

// TestScratchReleasesAll pins that one Scratch can track buffers from
// several pools of different kinds and returns all of them.
func TestScratchReleasesAll(t *testing.T) {
	ps := NewSlice[uint64]("test.multi.u64")
	pb := NewSlice[byte]("test.multi.byte")
	pm := NewMap[int, int]("test.multi.map")
	var sc Scratch
	_ = ps.Get(&sc, 5)
	_ = pb.GetCap(&sc, 300)
	_ = pm.Get(&sc)
	_ = ps.Get(&sc, 5000)
	sc.Release()

	if got := ps.Stats().Returned; got != 2 {
		t.Fatalf("u64 returned %d", got)
	}
	if got := pb.Stats().Returned; got != 1 {
		t.Fatalf("byte returned %d", got)
	}
	if got := pm.Stats().Returned; got != 1 {
		t.Fatalf("map returned %d", got)
	}
	// Double release is a no-op.
	sc.Release()
	if got := ps.Stats().Returned; got != 2 {
		t.Fatalf("double release changed counters: %d", got)
	}
}

// TestOwnedBufHandoff pins the cross-goroutine ownership path: GetBuf on
// one goroutine, Release on another.
func TestOwnedBufHandoff(t *testing.T) {
	p := NewSlice[int]("test.handoff")
	ch := make(chan *Buf[int], 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			b := p.GetBuf(256)
			for j := range b.S {
				b.S[j] = i
			}
			ch <- b
		}
		close(ch)
	}()
	sum := 0
	for b := range ch {
		sum += b.S[0]
		b.Release()
	}
	wg.Wait()
	if sum != 0+1+2+3 {
		t.Fatalf("sum %d", sum)
	}
	st := p.Stats()
	if st.Returned != 4 || st.Hits+st.Misses != 4 {
		t.Fatalf("stats %+v", st)
	}
}

// TestConcurrentStress hammers one pool from many goroutines; run it
// under -race -cpu=1,4 (CI does) to pin the freelists race-clean.
func TestConcurrentStress(t *testing.T) {
	ps := NewSlice[uint64]("test.stress.u64")
	pm := NewMap[uint64, int]("test.stress.map")
	const goroutines = 10
	const rounds = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var sc Scratch
				s := ps.Get(&sc, (g+1)*37%3000)
				for i := range s {
					s[i] = uint64(g)
				}
				m := pm.Get(&sc)
				m[uint64(r)] = g
				b := ps.GetBuf(64)
				b.S[0] = uint64(r)
				b.Release()
				sc.Release()
			}
		}(g)
	}
	wg.Wait()
	st := ps.Stats()
	if st.Hits+st.Misses != goroutines*rounds*2 {
		t.Fatalf("acquire count: %+v", st)
	}
	if st.Returned != goroutines*rounds*2 {
		t.Fatalf("returned count: %+v", st)
	}
	if got := pm.Stats().Returned; got != goroutines*rounds {
		t.Fatalf("map returned %d", got)
	}
}

// TestRegistrySnapshot pins that constructed pools appear in the global
// snapshot, sorted by name.
func TestRegistrySnapshot(t *testing.T) {
	_ = NewSlice[int]("test.zz.reg")
	_ = NewMap[int, int]("test.aa.reg")
	snap := Snapshot()
	var sawA, sawZ bool
	for i, ps := range snap {
		if i > 0 && snap[i-1].Name > ps.Name {
			t.Fatalf("snapshot unsorted at %d: %q > %q", i, snap[i-1].Name, ps.Name)
		}
		sawA = sawA || ps.Name == "test.aa.reg"
		sawZ = sawZ || ps.Name == "test.zz.reg"
	}
	if !sawA || !sawZ {
		t.Fatal("registered pools missing from snapshot")
	}
}

// TestBinIndex pins the bin boundary arithmetic.
func TestBinIndex(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{4096, 6}, {65536, numBins - 1}, {65537, -1}, {1 << 20, -1},
	}
	for _, c := range cases {
		if got := binIndex(c.n); got != c.want {
			t.Fatalf("binIndex(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
