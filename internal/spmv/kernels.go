package spmv

import (
	"math/rand"

	"repro/internal/cachesim"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/segment"
)

// TrafficResult compares off-chip accesses for one matrix (Figure 7).
type TrafficResult struct {
	Name       string
	Category   string
	CSRBytes   uint64 // conventional working-set size (the x axis)
	ConvDRAM   uint64
	HicampDRAM uint64
}

// Ratio returns HICAMP accesses over conventional accesses (< 1 is a
// HICAMP win; Figure 7 plots its log2).
func (r TrafficResult) Ratio() float64 {
	if r.ConvDRAM == 0 {
		return 1
	}
	return float64(r.HicampDRAM) / float64(r.ConvDRAM)
}

// SpMVConv runs y = A*x on the conventional model, emitting the CSR (or
// symmetric-CSR, for symmetric matrices [Lee et al.]) reference stream
// into a hierarchy with the given configuration, and returns its DRAM
// access count. The kernel is run twice and the second (warm) pass
// measured, matching the steady-state inner-loop behaviour SpMV studies
// report.
func SpMVConv(hier cachesim.HierConfig, m *Matrix) uint64 {
	sp := conv.NewSpaceWith(hier)
	useSym := m.Sym
	nnz := m.NNZ()
	stored := nnz
	if useSym {
		diag, off := symSplit(m)
		stored = diag + off/2
	}
	rowPtr := sp.Alloc(uint64(4*(m.Rows+1)), 64)
	colIdx := sp.Alloc(uint64(4*stored), 64)
	vals := sp.Alloc(uint64(8*stored), 64)
	xv := sp.Alloc(uint64(8*m.Cols), 64)
	yv := sp.Alloc(uint64(8*m.Rows), 64)

	pass := func() {
		k := 0 // stored-entry cursor
		for r := 0; r < m.Rows; r++ {
			sp.Load(rowPtr+uint64(4*r), 8) // row_ptr[r], row_ptr[r+1]
			if useSym {
				sp.Load(yv+uint64(8*r), 8) // y[r] accumuland
			}
			for e := m.RowPtr[r]; e < m.RowPtr[r+1]; e++ {
				c := int(m.ColIdx[e])
				if useSym && c < r {
					continue // lower triangle not stored
				}
				sp.Load(colIdx+uint64(4*k), 4)
				sp.Load(vals+uint64(8*k), 8)
				sp.Load(xv+uint64(8*c), 8)
				k++
				if useSym && c > r {
					// Transpose contribution: y[c] += v * x[r].
					sp.Load(xv+uint64(8*r), 8)
					sp.Load(yv+uint64(8*c), 8)
					sp.Store(yv+uint64(8*c), 8)
				}
			}
			sp.Store(yv+uint64(8*r), 8)
		}
	}
	pass()
	sp.Flush()
	warmBase := sp.Stats().DRAMAccesses()
	pass()
	sp.Flush()
	return sp.Stats().DRAMAccesses() - warmBase
}

func symSplit(m *Matrix) (diag, off int) {
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if int(m.ColIdx[k]) == r {
				diag++
			} else {
				off++
			}
		}
	}
	return
}

// SpMVHicamp runs y = A*x over the QTS tree on a HICAMP machine and
// returns its DRAM access count for the warm pass, including the
// transient-region writes for the result vector (y lives in the
// non-deduplicated per-core area; one line write per line of y).
func SpMVHicamp(cfg core.Config, m *Matrix) (uint64, []float64) {
	mach := core.NewMachine(cfg)
	q := BuildQTS(mach, m)
	x := testVector(m.Cols)
	xseg := BuildXSegment(mach, x)

	q.MulVec(mach, xseg, m.Cols) // cold pass: warm the LLC
	mach.FlushCache()
	mach.ResetStats()
	y := q.MulVec(mach, xseg, m.Cols)
	mach.FlushCache()
	dram := mach.Stats().Store.Total()
	dram += uint64((8*m.Rows + cfg.LineBytes - 1) / cfg.LineBytes) // y writeback
	q.Release(mach)
	segment.ReleaseSeg(mach, xseg)
	return dram, y
}

// SpMVHicampGather is SpMVHicamp with the breadth-first MulVecGather
// kernel: same tree, same accounting window, but vector and tree lines
// resolve through the bulk read pipeline.
func SpMVHicampGather(cfg core.Config, m *Matrix) (uint64, []float64) {
	mach := core.NewMachine(cfg)
	q := BuildQTS(mach, m)
	x := testVector(m.Cols)
	xseg := BuildXSegment(mach, x)

	q.MulVecGather(mach, xseg, m.Cols) // cold pass: warm the LLC
	mach.FlushCache()
	mach.ResetStats()
	y := q.MulVecGather(mach, xseg, m.Cols)
	mach.FlushCache()
	dram := mach.Stats().Store.Total()
	dram += uint64((8*m.Rows + cfg.LineBytes - 1) / cfg.LineBytes) // y writeback
	q.Release(mach)
	segment.ReleaseSeg(mach, xseg)
	return dram, y
}

// MeasureTraffic produces one Figure 7 point at the paper's cache sizes
// (4 MB L2 both sides). The paper restricts Figure 7 to matrices larger
// than the L2; use MeasureTrafficWith to scale the caches down when the
// suite is scaled down, preserving the matrix >> cache regime.
func MeasureTraffic(lineBytes int, m *Matrix) TrafficResult {
	return MeasureTrafficWith(cachesim.PaperHierConfig(lineBytes), core.DefaultConfig(lineBytes), m)
}

// MeasureTrafficWith produces one Figure 7 point with explicit cache
// configurations for the two architectures.
func MeasureTrafficWith(hier cachesim.HierConfig, cfg core.Config, m *Matrix) TrafficResult {
	hic, _ := SpMVHicamp(cfg, m)
	return TrafficResult{
		Name:       m.Name,
		Category:   m.Category,
		CSRBytes:   m.BaselineBytes(),
		ConvDRAM:   SpMVConv(hier, m),
		HicampDRAM: hic,
	}
}

// FootprintResult compares storage for one matrix (Figure 8 / Table 2).
type FootprintResult struct {
	Name        string
	Category    string
	Sym         bool
	CSRBytes    uint64 // CSR or symmetric CSR, whichever applies
	QTSBytes    uint64
	NZDBytes    uint64
	HicampBytes uint64 // best of QTS and NZD, the paper's method
}

// SizeRatio returns HICAMP bytes per conventional byte (Table 2's
// "savings" column: 0.627 means 62.7 bytes per 100).
func (r FootprintResult) SizeRatio() float64 {
	if r.CSRBytes == 0 {
		return 1
	}
	return float64(r.HicampBytes) / float64(r.CSRBytes)
}

// MeasureFootprint builds both HICAMP formats for the matrix in a fresh
// machine and reports deduplicated sizes against the CSR baseline.
func MeasureFootprint(lineBytes int, m *Matrix) FootprintResult {
	// Footprints need no cache model; a bare machine is faster.
	cfg := core.Config{LineBytes: lineBytes, BucketBits: 20, DataWays: 12}
	mach := core.NewMachine(cfg)
	q := BuildQTS(mach, m)
	qb := q.FootprintBytes(mach)
	z := BuildNZD(mach, m)
	zb := z.FootprintBytes(mach)
	res := FootprintResult{
		Name:     m.Name,
		Category: m.Category,
		Sym:      m.Sym,
		CSRBytes: m.BaselineBytes(),
		QTSBytes: qb,
		NZDBytes: zb,
	}
	res.HicampBytes = qb
	if zb < qb {
		res.HicampBytes = zb
	}
	q.Release(mach)
	z.Release(mach)
	return res
}

// testVector builds the deterministic x vector used by both kernels.
func testVector(n int) []float64 {
	rng := rand.New(rand.NewSource(12345))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	return x
}
