package spmv

import (
	"math"

	"repro/internal/iterreg"
	"repro/internal/segment"
	"repro/internal/word"
)

// NZD is the non-zero-dense format of §5.2: for matrices whose *pattern*
// repeats but whose values do not, the pattern is stored as a quad-tree
// of occupancy bitmasks (exploiting pattern self-similarity and zero
// blocks) while the values fill a separate, nearly dense segment in
// traversal order. Recursion stops at 8x8 blocks, whose 64 cells pack
// into one Morton-coded mask word.
type NZD struct {
	Pattern word.PLID   // owned: root of the pattern quad-tree
	Values  segment.Seg // owned: dense float64-bits value segment
	Dim     int
	Rows    int
	Cols    int
	NVals   int
}

const nzdBlock = 8 // leaf block edge length (64 cells = 1 mask word)

// BuildNZD constructs the pattern tree and value segment.
func BuildNZD(m word.Mem, mat *Matrix) *NZD {
	dim := mat.Dim()
	if dim < nzdBlock {
		dim = nzdBlock
	}
	ts := make([]Triplet, 0, mat.NNZ())
	for r := 0; r < mat.Rows; r++ {
		for k := mat.RowPtr[r]; k < mat.RowPtr[r+1]; k++ {
			ts = append(ts, Triplet{r, int(mat.ColIdx[k]), mat.Vals[k]})
		}
	}
	var vals []uint64
	root := buildPattern(m, ts, dim, &vals)
	return &NZD{
		Pattern: segment.SegFromEdge(m, root, 0).Root,
		Values:  segment.BuildWords(m, vals, nil),
		Dim:     dim,
		Rows:    mat.Rows,
		Cols:    mat.Cols,
		NVals:   len(vals),
	}
}

// Release drops both segments.
func (z *NZD) Release(m word.Mem) {
	if z.Pattern != word.Zero {
		m.Release(z.Pattern)
	}
	segment.ReleaseSeg(m, z.Values)
}

// FootprintBytes returns the deduplicated bytes of pattern plus values.
func (z *NZD) FootprintBytes(m word.Mem) uint64 {
	return segment.FootprintBytes(m, segment.Seg{Root: z.Pattern}) +
		segment.FootprintBytes(m, z.Values)
}

// buildPattern builds the pattern edge for a quadrant (local coords),
// appending the quadrant's values to vals in traversal order: quadrants
// visited 11, 12, 21, 22; leaf cells in Morton bit order. The multiply
// consumes values in exactly this order.
func buildPattern(m word.Mem, ts []Triplet, size int, vals *[]uint64) segment.Edge {
	if len(ts) == 0 {
		return segment.ZeroEdge
	}
	if size == nzdBlock {
		var mask uint64
		var cell [64]uint64
		for _, t := range ts {
			b := mortonBit(t.R, t.C)
			mask |= 1 << b
			cell[b] = math.Float64bits(t.V)
		}
		for b := 0; b < 64; b++ {
			if mask&(1<<b) != 0 {
				*vals = append(*vals, cell[b])
			}
		}
		return maskLeaf(m, mask)
	}
	h := size / 2
	var g11, g12, g21, g22 []Triplet
	for _, t := range ts {
		switch {
		case t.R < h && t.C < h:
			g11 = append(g11, t)
		case t.R < h:
			g12 = append(g12, Triplet{t.R, t.C - h, t.V})
		case t.C < h:
			g21 = append(g21, Triplet{t.R - h, t.C, t.V})
		default:
			g22 = append(g22, Triplet{t.R - h, t.C - h, t.V})
		}
	}
	e11 := buildPattern(m, g11, h, vals)
	e12 := buildPattern(m, g12, h, vals)
	e21 := buildPattern(m, g21, h, vals)
	e22 := buildPattern(m, g22, h, vals)
	return patternNode(m, e11, e12, e21, e22)
}

func patternNode(m word.Mem, e11, e12, e21, e22 segment.Edge) segment.Edge {
	arity := m.LineWords()
	if arity >= 4 {
		kids := make([]segment.Edge, arity)
		kids[0], kids[1], kids[2], kids[3] = e11, e12, e21, e22
		out := segment.CanonNode(m, kids)
		releaseEdges(m, e11, e12, e21, e22)
		return out
	}
	left := segment.CanonNode(m, []segment.Edge{e11, e12})
	right := segment.CanonNode(m, []segment.Edge{e21, e22})
	out := segment.CanonNode(m, []segment.Edge{left, right})
	releaseEdges(m, e11, e12, e21, e22, left, right)
	return out
}

// maskLeaf stores one 64-bit occupancy word as a leaf edge.
func maskLeaf(m word.Mem, mask uint64) segment.Edge {
	arity := m.LineWords()
	ws := make([]uint64, arity)
	ts := make([]word.Tag, arity)
	ws[0] = mask
	return segment.CanonLeaf(m, ws, ts)
}

// mortonBit interleaves the low 3 bits of i (rows) and j (cols) into the
// Morton bit index of a cell within an 8x8 block.
func mortonBit(i, j int) int {
	b := 0
	for k := 0; k < 3; k++ {
		b |= ((j >> k) & 1) << (2 * k)
		b |= ((i >> k) & 1) << (2*k + 1)
	}
	return b
}

// mortonCell inverts mortonBit.
func mortonCell(b int) (i, j int) {
	for k := 0; k < 3; k++ {
		j |= ((b >> (2 * k)) & 1) << k
		i |= ((b >> (2*k + 1)) & 1) << k
	}
	return
}

// MulVec computes y = A*x, traversing the pattern tree and consuming the
// value segment sequentially through an iterator register.
func (z *NZD) MulVec(m word.Mem, xseg segment.Seg, xlen int) []float64 {
	y := make([]float64, z.Rows)
	x := newXReader(m, xseg, xlen)
	vit := iterreg.NewSegmentIterator(m, z.Values)
	cursor := uint64(0)
	z.mulPat(m, segment.PLIDEdge(z.Pattern), 0, 0, z.Dim, x, y, vit, &cursor)
	return y
}

// nzdVisit is one quadrant visit in the breadth-first multiply.
type nzdVisit struct {
	e      segment.Edge
	r0, c0 int
}

// MulVecBulk computes y = A*x like MulVec, but expands the pattern tree
// in level-order waves through ChildrenBulk — every distinct pattern
// line fetched once per wave however many quadrants share it, which is
// where pattern self-similarity concentrates the accesses — and
// materializes the dense vector and the whole value segment through two
// up-front bulk reads instead of per-value iterator seeks. Every pattern
// leaf sits at the same depth and the wave preserves the 11,12,21,22
// child order, so the leaf wave is exactly MulVec's depth-first leaf
// order: values are consumed by popcount prefix order and the
// accumulation sequence — hence the floating-point result — is
// bit-identical to MulVec's.
func (z *NZD) MulVecBulk(m word.Mem, xseg segment.Seg, xlen int) []float64 {
	y := make([]float64, z.Rows)
	if z.Pattern == word.Zero {
		return y
	}
	xw := segment.ReadWordsBulk(m, xseg, 0, uint64(xlen))
	vals := segment.ReadWordsBulk(m, z.Values, 0, uint64(z.NVals))
	arity := m.LineWords()
	wave := []nzdVisit{{e: segment.PLIDEdge(z.Pattern)}}
	for size := z.Dim; size > nzdBlock && len(wave) > 0; size /= 2 {
		h := size / 2
		edges := make([]segment.Edge, len(wave))
		for i, v := range wave {
			edges[i] = v.e
		}
		var quads [][]segment.Edge // e11, e12, e21, e22 per visit
		if arity >= 4 {
			quads = segment.ChildrenBulk(m, edges, 1)
		} else {
			top := segment.ChildrenBulk(m, edges, 2)
			halves := make([]segment.Edge, 2*len(wave))
			for i, kids := range top {
				halves[2*i], halves[2*i+1] = kids[0], kids[1]
			}
			sub := segment.ChildrenBulk(m, halves, 1)
			quads = make([][]segment.Edge, len(wave))
			for i := range wave {
				l, r := sub[2*i], sub[2*i+1]
				quads[i] = []segment.Edge{l[0], l[1], r[0], r[1]}
			}
		}
		next := make([]nzdVisit, 0, 2*len(wave))
		for i, v := range wave {
			add := func(e segment.Edge, r0, c0 int) {
				if !e.IsZero() {
					next = append(next, nzdVisit{e: e, r0: r0, c0: c0})
				}
			}
			add(quads[i][0], v.r0, v.c0)
			add(quads[i][1], v.r0, v.c0+h)
			add(quads[i][2], v.r0+h, v.c0)
			add(quads[i][3], v.r0+h, v.c0+h)
		}
		wave = next
	}
	// Leaf wave: one bulk fetch of the surviving mask words.
	edges := make([]segment.Edge, len(wave))
	for i, v := range wave {
		edges[i] = v.e
	}
	ws := segment.ChildrenBulk(m, edges, 0)
	cursor := 0
	for bi, v := range wave {
		mask := ws[bi][0].W
		for b := 0; b < 64; b++ {
			if mask&(1<<b) == 0 {
				continue
			}
			bits := vals[cursor]
			cursor++
			i, j := mortonCell(b)
			rr := v.r0 + i
			if rr < len(y) {
				var xv float64
				if c := v.c0 + j; c < xlen {
					xv = math.Float64frombits(xw[c])
				}
				y[rr] += math.Float64frombits(bits) * xv
			}
		}
	}
	return y
}

func (z *NZD) mulPat(m word.Mem, e segment.Edge, r0, c0, size int, x *xReader, y []float64, vit *iterreg.Iterator, cursor *uint64) {
	if e.IsZero() {
		return
	}
	if size == nzdBlock {
		ws := segment.Children(m, e, 0)
		mask := ws[0].W
		for b := 0; b < 64; b++ {
			if mask&(1<<b) == 0 {
				continue
			}
			bits, _ := vit.Load(*cursor)
			*cursor++
			i, j := mortonCell(b)
			rr := r0 + i
			if rr < len(y) {
				y[rr] += math.Float64frombits(bits) * x.at(c0+j)
			}
		}
		return
	}
	var e11, e12, e21, e22 segment.Edge
	if m.LineWords() >= 4 {
		kids := segment.Children(m, e, 1)
		e11, e12, e21, e22 = kids[0], kids[1], kids[2], kids[3]
	} else {
		kids := segment.Children(m, e, 2)
		l := segment.Children(m, kids[0], 1)
		r := segment.Children(m, kids[1], 1)
		e11, e12, e21, e22 = l[0], l[1], r[0], r[1]
	}
	h := size / 2
	z.mulPat(m, e11, r0, c0, h, x, y, vit, cursor)
	z.mulPat(m, e12, r0, c0+h, h, x, y, vit, cursor)
	z.mulPat(m, e21, r0+h, c0, h, x, y, vit, cursor)
	z.mulPat(m, e22, r0+h, c0+h, h, x, y, vit, cursor)
}
