package spmv

import (
	"testing"
)

// The batch BuildQTS must land on the identical root PLID as the original
// recursive construction, at every line width and matrix shape — the
// canonical form does not depend on construction order.
func TestBuildQTSMatchesRecursive(t *testing.T) {
	for _, lb := range []int{16, 32, 64} {
		for _, m := range []*Matrix{
			FEM2D(6), FEM3D(3), LP(4, 3, 8, 2), Banded(20, 3, false, 3),
			Circuit(24, 3, 4), Pattern(3, 8, 5), Random(20, 0.1, 6),
			NewMatrix("tiny", "test", 2, 2, []Triplet{{0, 1, 2.5}}),
			NewMatrix("empty", "test", 4, 4, nil),
		} {
			mach := testMachine(lb)
			want := buildQTSRecursive(mach, m)
			got := BuildQTS(mach, m)
			if got.Root != want.Root || got.Dim != want.Dim {
				t.Fatalf("lb=%d %s: bulk root %#x/dim%d != recursive %#x/dim%d",
					lb, m.Name, got.Root, got.Dim, want.Root, want.Dim)
			}
			want.Release(mach)
			got.Release(mach)
			if mach.LiveLines() != 0 {
				t.Fatalf("lb=%d %s: %d lines leaked", lb, m.Name, mach.LiveLines())
			}
		}
	}
}
