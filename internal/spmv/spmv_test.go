package spmv

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/segment"
)

func testMachine(lineBytes int) *core.Machine {
	return core.NewMachine(core.Config{
		LineBytes: lineBytes, BucketBits: 14, DataWays: 12, CacheLines: 2048, CacheWays: 8,
	})
}

func TestNewMatrixCSR(t *testing.T) {
	m := NewMatrix("t", "test", 3, 3, []Triplet{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {2, 0, 4}, {2, 2, 5},
	})
	if m.NNZ() != 5 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	if m.At(0, 2) != 2 || m.At(2, 0) != 4 || m.At(1, 0) != 0 {
		t.Fatal("At() wrong")
	}
	if m.Sym {
		t.Fatal("asymmetric matrix reported symmetric")
	}
}

func TestDuplicateTripletsSum(t *testing.T) {
	m := NewMatrix("t", "test", 2, 2, []Triplet{{0, 0, 1}, {0, 0, 2.5}})
	if m.At(0, 0) != 3.5 || m.NNZ() != 1 {
		t.Fatal("duplicates not summed")
	}
}

func TestSymmetryDetection(t *testing.T) {
	if !FEM2D(4).Sym {
		t.Fatal("FEM2D not symmetric")
	}
	if !FEM3D(3).Sym {
		t.Fatal("FEM3D not symmetric")
	}
	if !Banded(32, 3, true, 1).Sym {
		t.Fatal("symmetric banded not symmetric")
	}
	if LP(4, 3, 8, 1).Sym {
		t.Fatal("LP reported symmetric")
	}
}

func TestCSRBytesFormula(t *testing.T) {
	m := FEM2D(8) // n=64
	want := uint64(12*m.NNZ() + 4*(m.Rows+1))
	if got := m.CSRBytes(); got != want {
		t.Fatalf("CSRBytes = %d, want %d", got, want)
	}
	if m.SymCSRBytes() >= m.CSRBytes() {
		t.Fatal("symmetric CSR not smaller")
	}
}

func TestQTSMulVecMatchesReference(t *testing.T) {
	for _, lb := range []int{16, 32, 64} {
		for _, m := range []*Matrix{
			FEM2D(6), FEM3D(3), LP(4, 3, 8, 2), Banded(20, 3, false, 3),
			Circuit(24, 3, 4), Pattern(3, 8, 5), Random(20, 0.1, 6),
		} {
			mach := testMachine(lb)
			q := BuildQTS(mach, m)
			x := testVector(m.Cols)
			xseg := BuildXSegment(mach, x)
			got := q.MulVec(mach, xseg, m.Cols)
			want := m.MulVec(x)
			if !VecEqual(got, want) {
				t.Fatalf("lb=%d %s: QTS MulVec mismatch", lb, m.Name)
			}
			q.Release(mach)
			segment.ReleaseSeg(mach, xseg)
			if mach.LiveLines() != 0 {
				t.Fatalf("lb=%d %s: %d lines leaked", lb, m.Name, mach.LiveLines())
			}
		}
	}
}

func TestNZDMulVecMatchesReference(t *testing.T) {
	for _, lb := range []int{16, 64} {
		for _, m := range []*Matrix{
			FEM2D(6), LP(4, 3, 8, 2), Circuit(24, 3, 4), Random(20, 0.1, 6),
			Pattern(3, 8, 5),
		} {
			mach := testMachine(lb)
			z := BuildNZD(mach, m)
			x := testVector(m.Cols)
			xseg := BuildXSegment(mach, x)
			got := z.MulVec(mach, xseg, m.Cols)
			want := m.MulVec(x)
			if !VecEqual(got, want) {
				t.Fatalf("lb=%d %s: NZD MulVec mismatch", lb, m.Name)
			}
			z.Release(mach)
			segment.ReleaseSeg(mach, xseg)
		}
	}
}

func TestMortonRoundTrip(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			b := mortonBit(i, j)
			if b < 0 || b > 63 || seen[b] {
				t.Fatalf("morton(%d,%d) = %d invalid/duplicate", i, j, b)
			}
			seen[b] = true
			gi, gj := mortonCell(b)
			if gi != i || gj != j {
				t.Fatalf("morton round trip (%d,%d) -> %d -> (%d,%d)", i, j, b, gi, gj)
			}
		}
	}
}

func TestSymmetricSharingInQTS(t *testing.T) {
	// The QTS trick: a symmetric matrix's A12 and A21^T are identical
	// content, so the symmetric version must use fewer lines than a
	// perturbed non-symmetric version of the same matrix.
	mach := testMachine(16)
	sym := Banded(64, 4, true, 7)
	qs := BuildQTS(mach, sym)
	symLines := segment.Measure(mach, segment.Seg{Root: qs.Root}).Lines

	var ts []Triplet
	for r := 0; r < sym.Rows; r++ {
		for k := sym.RowPtr[r]; k < sym.RowPtr[r+1]; k++ {
			v := sym.Vals[k]
			if int(sym.ColIdx[k]) > r {
				v += float64(r%7) + 0.5 // break symmetry, keep pattern
			}
			ts = append(ts, Triplet{r, int(sym.ColIdx[k]), v})
		}
	}
	asym := NewMatrix("asym", "banded", sym.Rows, sym.Cols, ts)
	qa := BuildQTS(mach, asym)
	asymLines := segment.Measure(mach, segment.Seg{Root: qa.Root}).Lines
	if symLines >= asymLines {
		t.Fatalf("symmetric %d lines >= asymmetric %d: transpose sharing broken",
			symLines, asymLines)
	}
}

func TestZeroQuadrantElision(t *testing.T) {
	// A matrix with a single entry must use O(log dim) lines.
	mach := testMachine(16)
	m := NewMatrix("one", "test", 256, 256, []Triplet{{200, 13, 3.5}})
	q := BuildQTS(mach, m)
	lines := segment.Measure(mach, segment.Seg{Root: q.Root}).Lines
	if lines > 20 {
		t.Fatalf("single-entry 256x256 matrix uses %d lines", lines)
	}
}

func TestFootprintSymBeatsCSRLessThanLP(t *testing.T) {
	// Table 2 shape: HICAMP compacts; LP (repeated blocks, measured
	// against full CSR) compacts more than symmetric matrices (measured
	// against already-halved symmetric CSR).
	fem := MeasureFootprint(16, FEM2D(24))
	lp := MeasureFootprint(16, LP(10, 6, 16, 3))
	if fem.SizeRatio() >= 1.1 {
		t.Fatalf("FEM ratio %.2f, want < 1.1", fem.SizeRatio())
	}
	if lp.SizeRatio() >= 1.0 {
		t.Fatalf("LP ratio %.2f, want < 1.0", lp.SizeRatio())
	}
}

func TestPatternMatrixCompactsHard(t *testing.T) {
	r := MeasureFootprint(16, Pattern(8, 16, 9))
	if r.SizeRatio() > 0.8 {
		t.Fatalf("tiled pattern ratio %.2f; duplicate tiles must dedup", r.SizeRatio())
	}
}

func TestNZDWinsOnPatternSymmetryWithRandomValues(t *testing.T) {
	// NZD exists for matrices with repeating pattern but non-repeating
	// values: its pattern tree + dense values should beat QTS there.
	mach := testMachine(16)
	base := Banded(128, 2, true, 11)
	var ts []Triplet
	i := 0
	for r := 0; r < base.Rows; r++ {
		for k := base.RowPtr[r]; k < base.RowPtr[r+1]; k++ {
			i++
			ts = append(ts, Triplet{r, int(base.ColIdx[k]), float64(i)*1.618 + 0.1})
		}
	}
	m := NewMatrix("bandrand", "banded", base.Rows, base.Cols, ts)
	q := BuildQTS(mach, m)
	z := BuildNZD(mach, m)
	if z.FootprintBytes(mach) >= q.FootprintBytes(mach) {
		t.Fatalf("NZD %d >= QTS %d for pattern-only similarity",
			z.FootprintBytes(mach), q.FootprintBytes(mach))
	}
}

func TestSuiteComposition(t *testing.T) {
	ms := Suite(1, 99)
	if len(ms) != 100 {
		t.Fatalf("suite has %d matrices, want 100", len(ms))
	}
	cats := map[string]int{}
	var syms int
	for _, m := range ms {
		cats[m.Category]++
		if m.Sym {
			syms++
		}
		if m.NNZ() == 0 {
			t.Fatalf("%s has no entries", m.Name)
		}
	}
	if cats["FEM"] != 29 || cats["LP"] != 15 {
		t.Fatalf("category counts: %v (want 29 FEM / 15 LP as in Table 2)", cats)
	}
	if syms < 20 {
		t.Fatalf("only %d symmetric matrices", syms)
	}
}

func TestSpMVConvTrafficScalesWithNNZ(t *testing.T) {
	hier := cachesim.PaperHierConfig(16)
	small := SpMVConv(hier, FEM2D(16))
	big := SpMVConv(hier, FEM2D(48))
	if big <= small {
		t.Fatalf("conventional traffic did not grow with matrix: %d vs %d", small, big)
	}
}

func TestMeasureTrafficProducesComparableNumbers(t *testing.T) {
	m := FEM2D(32) // 1024x1024, ~5k nnz
	r := MeasureTraffic(16, m)
	if r.ConvDRAM == 0 || r.HicampDRAM == 0 {
		t.Fatalf("degenerate traffic: %+v", r)
	}
	// Warm-pass working sets fitting in 4 MB caches keep both small; the
	// sanity bound is that neither side explodes past 4x the other on a
	// self-similar FEM problem.
	if r.Ratio() > 4 {
		t.Fatalf("HICAMP/conv ratio %.2f too high for FEM", r.Ratio())
	}
}
