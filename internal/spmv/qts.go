package spmv

import (
	"math"
	"sort"

	"repro/internal/segment"
	"repro/internal/word"
)

// QTS is the symmetric quad-tree format of §5.2: the matrix is split into
// four quadrants with A11 and A22 stored in the left subtree and A12 and
// A21-transposed in the right subtree. Storing A21 transposed means a
// symmetric matrix's two off-diagonal quadrants are the *same content*,
// so deduplication collapses them into one sub-DAG; repeated blocks and
// zero quadrants collapse the same way at every level. Recursion stops at
// 2x2 value blocks stored row-major as float64 bit patterns.
type QTS struct {
	Root word.PLID // owned reference
	Dim  int       // padded power-of-two dimension
	Rows int
	Cols int
}

// BuildQTS constructs the quad-tree in the machine's deduplicated memory
// through the bulk pipeline: nonzeros are first partitioned (no memory
// traffic) into their 2x2 leaf blocks keyed by quadrant path, then the
// tree is canonicalized bottom-up one whole level at a time with batched
// lookups, instead of one recursive CanonNode per block. The resulting
// root is identical to the recursive construction — the canonical form is
// order-independent.
func BuildQTS(m word.Mem, mat *Matrix) *QTS {
	dim := mat.Dim()
	b := segment.NewBuilder(m, 0)
	defer b.Close()

	// Partition: each nonzero descends to its leaf block, accumulating a
	// base-4 quadrant path (2 bits per level, slots matching quadNode:
	// 0=A11, 1=A22, 2=A12, 3=A21 transposed). Entering A21 transposes the
	// local coordinates — the QTS sharing trick, applied arithmetically.
	keys := make([]uint64, 0, 64)
	blocks := make(map[uint64]*[4]uint64)
	addNZ := func(r, c int, v float64) {
		var key uint64
		for size := dim; size > 2; size /= 2 {
			h := size / 2
			switch {
			case r < h && c < h:
				key = key*4 + 0
			case r >= h && c >= h:
				key, r, c = key*4+1, r-h, c-h
			case r < h:
				key, c = key*4+2, c-h
			default:
				key, r, c = key*4+3, c, r-h // transpose into A21^T
			}
		}
		blk := blocks[key]
		if blk == nil {
			blk = new([4]uint64)
			blocks[key] = blk
			keys = append(keys, key)
		}
		blk[r*2+c] = math.Float64bits(v)
	}
	for r := 0; r < mat.Rows; r++ {
		for k := mat.RowPtr[r]; k < mat.RowPtr[r+1]; k++ {
			addNZ(r, int(mat.ColIdx[k]), mat.Vals[k])
		}
	}
	if len(keys) == 0 {
		return &QTS{Root: word.Zero, Dim: dim, Rows: mat.Rows, Cols: mat.Cols}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Leaf level: every populated 2x2 block canonicalized in one batch.
	edges := leafBlocks(m, b, keys, blocks)

	// Interior levels, bottom-up: group nodes by parent path (key >> 2),
	// slot them by the dropped digit, canonicalize the whole level at once.
	levels := 0
	for size := dim; size > 2; size /= 2 {
		levels++
	}
	for l := 0; l < levels; l++ {
		parentKeys := make([]uint64, 0, len(keys))
		children := make(map[uint64]*[4]segment.Edge)
		for i, k := range keys {
			pk := k >> 2
			grp := children[pk]
			if grp == nil {
				grp = new([4]segment.Edge)
				children[pk] = grp
				parentKeys = append(parentKeys, pk)
			}
			grp[k&3] = edges[i]
		}
		parents := quadNodes(m, b, parentKeys, children)
		releaseEdges(m, edges...)
		keys, edges = parentKeys, parents
	}
	return &QTS{
		Root: segment.SegFromEdge(m, edges[0], 0).Root,
		Dim:  dim,
		Rows: mat.Rows,
		Cols: mat.Cols,
	}
}

// leafBlocks canonicalizes every populated 2x2 block in one batch,
// returning one owned edge per key (in key order).
func leafBlocks(m word.Mem, b *segment.Builder, keys []uint64, blocks map[uint64]*[4]uint64) []segment.Edge {
	arity := m.LineWords()
	if arity >= 4 {
		ws := make([]uint64, len(keys)*arity)
		for i, k := range keys {
			copy(ws[i*arity:], blocks[k][:])
		}
		return b.CanonLeaves(ws)
	}
	// 2-word lines: each block is two value lines under one node.
	ws := make([]uint64, len(keys)*4)
	for i, k := range keys {
		copy(ws[i*4:], blocks[k][:])
	}
	rows := b.CanonLeaves(ws) // top, bot per block
	out := b.CanonNodes(rows)
	releaseEdges(m, rows...)
	return out
}

// quadNodes combines each parent's four quadrant edges into one node edge
// per parent, the batch equivalent of quadNode (same [ [A11,A22],
// [A12,A21^T] ] layout). Child edges are borrowed.
func quadNodes(m word.Mem, b *segment.Builder, parentKeys []uint64, children map[uint64]*[4]segment.Edge) []segment.Edge {
	arity := m.LineWords()
	if arity >= 4 {
		flat := make([]segment.Edge, len(parentKeys)*arity)
		for i, pk := range parentKeys {
			copy(flat[i*arity:], children[pk][:])
		}
		return b.CanonNodes(flat)
	}
	// 2-word lines: left = [A11, A22], right = [A12, A21^T], top = [left, right].
	lr := make([]segment.Edge, len(parentKeys)*4)
	for i, pk := range parentKeys {
		copy(lr[i*4:], children[pk][:])
	}
	halves := b.CanonNodes(lr) // left, right per parent
	out := b.CanonNodes(halves)
	releaseEdges(m, halves...)
	return out
}

// buildQTSRecursive is the original one-node-at-a-time construction, kept
// as the reference BuildQTS is verified against.
func buildQTSRecursive(m word.Mem, mat *Matrix) *QTS {
	dim := mat.Dim()
	ts := make([]Triplet, 0, mat.NNZ())
	for r := 0; r < mat.Rows; r++ {
		for k := mat.RowPtr[r]; k < mat.RowPtr[r+1]; k++ {
			ts = append(ts, Triplet{r, int(mat.ColIdx[k]), mat.Vals[k]})
		}
	}
	e := buildQuad(m, ts, dim)
	return &QTS{
		Root: segment.SegFromEdge(m, e, 0).Root,
		Dim:  dim,
		Rows: mat.Rows,
		Cols: mat.Cols,
	}
}

// Release drops the tree's root reference.
func (q *QTS) Release(m word.Mem) {
	if q.Root != word.Zero {
		m.Release(q.Root)
	}
}

// FootprintBytes returns the deduplicated line bytes of the tree.
func (q *QTS) FootprintBytes(m word.Mem) uint64 {
	return segment.FootprintBytes(m, segment.Seg{Root: q.Root})
}

// buildQuad builds the edge for a quadrant holding entries in local
// coordinates [0,size)x[0,size).
func buildQuad(m word.Mem, ts []Triplet, size int) segment.Edge {
	if len(ts) == 0 {
		return segment.ZeroEdge
	}
	if size == 2 {
		return leaf2x2(m, ts)
	}
	h := size / 2
	var g11, g12, g21, g22 []Triplet
	for _, t := range ts {
		switch {
		case t.R < h && t.C < h:
			g11 = append(g11, t)
		case t.R < h:
			g12 = append(g12, Triplet{t.R, t.C - h, t.V})
		case t.C < h:
			g21 = append(g21, Triplet{t.R - h, t.C, t.V})
		default:
			g22 = append(g22, Triplet{t.R - h, t.C - h, t.V})
		}
	}
	// Transpose A21 in place: the QTS sharing trick.
	for i := range g21 {
		g21[i].R, g21[i].C = g21[i].C, g21[i].R
	}
	e11 := buildQuad(m, g11, h)
	e22 := buildQuad(m, g22, h)
	e12 := buildQuad(m, g12, h)
	e21t := buildQuad(m, g21, h)
	return quadNode(m, e11, e22, e12, e21t)
}

// quadNode combines the four quadrant edges into one node edge, laid out
// [ [A11, A22], [A12, A21^T] ] (Figure-agnostic: for line widths >= 4
// words the four edges share a single line).
func quadNode(m word.Mem, e11, e22, e12, e21t segment.Edge) segment.Edge {
	arity := m.LineWords()
	if arity >= 4 {
		kids := make([]segment.Edge, arity)
		kids[0], kids[1], kids[2], kids[3] = e11, e22, e12, e21t
		out := segment.CanonNode(m, kids)
		releaseEdges(m, e11, e22, e12, e21t)
		return out
	}
	left := segment.CanonNode(m, []segment.Edge{e11, e22})
	right := segment.CanonNode(m, []segment.Edge{e12, e21t})
	out := segment.CanonNode(m, []segment.Edge{left, right})
	releaseEdges(m, e11, e22, e12, e21t, left, right)
	return out
}

func releaseEdges(m word.Mem, es ...segment.Edge) {
	for _, e := range es {
		e.Release(m)
	}
}

// leaf2x2 stores a 2x2 value block row-major. With 2-word lines the block
// is two value lines under one node; with wider lines it is one leaf.
func leaf2x2(m word.Mem, ts []Triplet) segment.Edge {
	var v [4]uint64
	for _, t := range ts {
		v[t.R*2+t.C] = math.Float64bits(t.V)
	}
	arity := m.LineWords()
	tags := make([]word.Tag, arity)
	if arity >= 4 {
		ws := make([]uint64, arity)
		copy(ws, v[:])
		return segment.CanonLeaf(m, ws, tags)
	}
	top := segment.CanonLeaf(m, v[:2], tags)
	bot := segment.CanonLeaf(m, v[2:], tags)
	out := segment.CanonNode(m, []segment.Edge{top, bot})
	releaseEdges(m, top, bot)
	return out
}

// MulVec computes y = A*x reading the tree through the machine (every
// line access goes through the HICAMP cache). x is read from a segment so
// vector traffic is charged too; y accumulates in the per-core transient
// region (see SpMVHicamp for its write accounting).
func (q *QTS) MulVec(m word.Mem, xseg segment.Seg, xlen int) []float64 {
	y := make([]float64, q.Rows)
	xcache := newXReader(m, xseg, xlen)
	q.mul(m, segment.PLIDEdge(q.Root), 0, 0, q.Dim, false, xcache, y)
	return y
}

// mul adds the contribution of the stored block e whose actual position
// is (r0, c0, size); trans marks that e stores the transpose.
func (q *QTS) mul(m word.Mem, e segment.Edge, r0, c0, size int, trans bool, x *xReader, y []float64) {
	if e.IsZero() {
		return
	}
	if size == 2 {
		q.mulLeaf(m, e, r0, c0, trans, x, y)
		return
	}
	var e11, e22, e12, e21t segment.Edge
	if m.LineWords() >= 4 {
		kids := segment.Children(m, e, 1)
		e11, e22, e12, e21t = kids[0], kids[1], kids[2], kids[3]
	} else {
		kids := segment.Children(m, e, 2)
		l := segment.Children(m, kids[0], 1)
		r := segment.Children(m, kids[1], 1)
		e11, e22, e12, e21t = l[0], l[1], r[0], r[1]
	}
	h := size / 2
	q.mul(m, e11, r0, c0, h, trans, x, y)
	q.mul(m, e22, r0+h, c0+h, h, trans, x, y)
	if !trans {
		q.mul(m, e12, r0, c0+h, h, false, x, y)
		q.mul(m, e21t, r0+h, c0, h, true, x, y)
	} else {
		q.mul(m, e12, r0+h, c0, h, true, x, y)
		q.mul(m, e21t, r0, c0+h, h, false, x, y)
	}
}

func (q *QTS) mulLeaf(m word.Mem, e segment.Edge, r0, c0 int, trans bool, x *xReader, y []float64) {
	var vals [4]uint64
	if m.LineWords() >= 4 {
		ws := segment.Children(m, e, 0)
		for i := 0; i < 4; i++ {
			vals[i] = ws[i].W
		}
	} else {
		rows := segment.Children(m, e, 1)
		copyPair := func(dst []uint64, e segment.Edge) {
			ws := segment.Children(m, e, 0)
			dst[0], dst[1] = ws[0].W, ws[1].W
		}
		copyPair(vals[:2], rows[0])
		copyPair(vals[2:], rows[1])
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			bits := vals[i*2+j]
			if bits == 0 {
				continue
			}
			v := math.Float64frombits(bits)
			rr, cc := r0+i, c0+j
			if trans {
				rr, cc = r0+j, c0+i
			}
			if rr < len(y) {
				y[rr] += v * x.at(cc)
			}
		}
	}
}

// gatherVisit is one quadrant visit in the breadth-first multiply: the
// stored edge, its actual position, and whether it stores the transpose.
type gatherVisit struct {
	e      segment.Edge
	r0, c0 int
	trans  bool
}

// MulVecGather computes y = A*x like MulVec, but breadth-first through
// the bulk read pipeline: the dense vector materializes once up front
// via ReadWordsBulk (instead of MulVec's per-value-line re-walk of the x
// segment), and each tree level expands through one ChildrenBulk wave —
// every distinct line fetched once however many quadrant visits share
// it, which is exactly where QTS sharing (repeated blocks, the symmetric
// A12/A21^T collapse) concentrates the accesses. Accumulation order is
// level-order rather than MulVec's depth-first order, so the two agree
// only up to floating-point rounding.
func (q *QTS) MulVecGather(m word.Mem, xseg segment.Seg, xlen int) []float64 {
	y := make([]float64, q.Rows)
	xw := segment.ReadWordsBulk(m, xseg, 0, uint64(xlen))
	if q.Root == word.Zero {
		return y
	}
	arity := m.LineWords()
	wave := []gatherVisit{{e: segment.PLIDEdge(q.Root)}}
	for size := q.Dim; size > 2 && len(wave) > 0; size /= 2 {
		h := size / 2
		edges := make([]segment.Edge, len(wave))
		for i, v := range wave {
			edges[i] = v.e
		}
		var quads [][]segment.Edge // e11, e22, e12, e21t per visit
		if arity >= 4 {
			quads = segment.ChildrenBulk(m, edges, 1)
		} else {
			top := segment.ChildrenBulk(m, edges, 2)
			halves := make([]segment.Edge, 2*len(wave))
			for i, kids := range top {
				halves[2*i], halves[2*i+1] = kids[0], kids[1]
			}
			sub := segment.ChildrenBulk(m, halves, 1)
			quads = make([][]segment.Edge, len(wave))
			for i := range wave {
				l, r := sub[2*i], sub[2*i+1]
				quads[i] = []segment.Edge{l[0], l[1], r[0], r[1]}
			}
		}
		next := make([]gatherVisit, 0, 2*len(wave))
		for i, v := range wave {
			add := func(e segment.Edge, r0, c0 int, trans bool) {
				if !e.IsZero() {
					next = append(next, gatherVisit{e: e, r0: r0, c0: c0, trans: trans})
				}
			}
			add(quads[i][0], v.r0, v.c0, v.trans)
			add(quads[i][1], v.r0+h, v.c0+h, v.trans)
			if !v.trans {
				add(quads[i][2], v.r0, v.c0+h, false)
				add(quads[i][3], v.r0+h, v.c0, true)
			} else {
				add(quads[i][2], v.r0+h, v.c0, true)
				add(quads[i][3], v.r0, v.c0+h, false)
			}
		}
		wave = next
	}
	// Leaf wave: every surviving 2x2 block materializes through one more
	// bulk level (two for 2-word lines), then accumulates.
	edges := make([]segment.Edge, len(wave))
	for i, v := range wave {
		edges[i] = v.e
	}
	blocks := make([][4]uint64, len(wave))
	if arity >= 4 {
		ws := segment.ChildrenBulk(m, edges, 0)
		for i := range wave {
			for j := 0; j < 4; j++ {
				blocks[i][j] = ws[i][j].W
			}
		}
	} else {
		rows := segment.ChildrenBulk(m, edges, 1)
		flat := make([]segment.Edge, 2*len(wave))
		for i, r := range rows {
			flat[2*i], flat[2*i+1] = r[0], r[1]
		}
		ws := segment.ChildrenBulk(m, flat, 0)
		for i := range wave {
			blocks[i][0], blocks[i][1] = ws[2*i][0].W, ws[2*i][1].W
			blocks[i][2], blocks[i][3] = ws[2*i+1][0].W, ws[2*i+1][1].W
		}
	}
	for bi, v := range wave {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				bits := blocks[bi][i*2+j]
				if bits == 0 {
					continue
				}
				val := math.Float64frombits(bits)
				rr, cc := v.r0+i, v.c0+j
				if v.trans {
					rr, cc = v.r0+j, v.c0+i
				}
				if rr < len(y) && cc < xlen {
					y[rr] += val * math.Float64frombits(xw[cc])
				}
			}
		}
	}
	return y
}

// xReader reads the dense vector x from a segment with a tiny software
// cache of the last line, standing in for the iterator register the
// hardware would dedicate to the vector.
type xReader struct {
	m     word.Mem
	seg   segment.Seg
	n     int
	base  uint64
	words []uint64
	ok    bool
}

func newXReader(m word.Mem, seg segment.Seg, n int) *xReader {
	return &xReader{m: m, seg: seg, n: n}
}

func (x *xReader) at(i int) float64 {
	if i >= x.n {
		return 0
	}
	idx := uint64(i)
	arity := uint64(x.m.LineWords())
	base := idx / arity * arity
	if !x.ok || base != x.base {
		x.words = segment.ReadWords(x.m, x.seg, base, arity)
		x.base, x.ok = base, true
	}
	return math.Float64frombits(x.words[idx-base])
}

// BuildXSegment stores a dense vector as a segment of float64 bits.
func BuildXSegment(m word.Mem, x []float64) segment.Seg {
	ws := make([]uint64, len(x))
	for i, v := range x {
		ws[i] = math.Float64bits(v)
	}
	return segment.BuildWords(m, ws, nil)
}
