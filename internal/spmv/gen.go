package spmv

import (
	"fmt"
	"math/rand"
)

// Generators for the synthetic matrix suite standing in for the
// University of Florida collection (see DESIGN.md). Each generator
// produces the structural property its real-world class exhibits:
// stencils give banded symmetric self-similar structure, LP matrices
// give repeated rectangular blocks, circuit matrices give power-law
// degrees, pattern matrices give tiled identical sub-blocks.

// FEM2D builds the 5-point Laplacian stencil on a k x k grid with a
// small set of material regions: symmetric and self-similar within each
// region (repeated stencil rows), but not degenerate — real FEM problems
// mix a handful of material coefficients, which is what keeps their
// HICAMP compaction strong yet bounded.
func FEM2D(k int) *Matrix {
	n := k * k
	var ts []Triplet
	at := func(i, j int) int { return i*k + j }
	// Quantized material coefficient per quadrant-ish region.
	mat := func(i, j int) float64 {
		region := (i*3/k)*3 + j*3/k // 3x3 patchwork of materials
		return 1.0 + 0.5*float64(region%4)
	}
	edge := func(i1, j1, i2, j2 int) float64 {
		// Harmonic-mean-like symmetric edge weight.
		return -(mat(i1, j1) + mat(i2, j2)) / 2
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			r := at(i, j)
			var diag float64
			add := func(i2, j2 int) {
				w := edge(i, j, i2, j2)
				ts = append(ts, Triplet{r, at(i2, j2), w})
				diag -= w
			}
			if i > 0 {
				add(i-1, j)
			}
			if i < k-1 {
				add(i+1, j)
			}
			if j > 0 {
				add(i, j-1)
			}
			if j < k-1 {
				add(i, j+1)
			}
			ts = append(ts, Triplet{r, r, diag + 1})
		}
	}
	return NewMatrix(fmt.Sprintf("fem2d_k%d", k), "FEM", n, n, ts)
}

// FEM3D builds the 7-point Laplacian on a k^3 grid with two material
// layers (see FEM2D for the rationale).
func FEM3D(k int) *Matrix {
	n := k * k * k
	var ts []Triplet
	at := func(i, j, l int) int { return (i*k+j)*k + l }
	mat := func(i int) float64 { return 1.0 + float64(i*2/k) } // two layers
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			for l := 0; l < k; l++ {
				r := at(i, j, l)
				var diag float64
				add := func(i2, j2, l2 int) {
					w := -(mat(i) + mat(i2)) / 2
					ts = append(ts, Triplet{r, at(i2, j2, l2), w})
					diag -= w
				}
				if i > 0 {
					add(i-1, j, l)
				}
				if i < k-1 {
					add(i+1, j, l)
				}
				if j > 0 {
					add(i, j-1, l)
				}
				if j < k-1 {
					add(i, j+1, l)
				}
				if l > 0 {
					add(i, j, l-1)
				}
				if l < k-1 {
					add(i, j, l+1)
				}
				ts = append(ts, Triplet{r, r, diag + 1})
			}
		}
	}
	return NewMatrix(fmt.Sprintf("fem3d_k%d", k), "FEM", n, n, ts)
}

// LP builds a linear-programming constraint matrix: blockRows x blockCols
// copies of a small dense-ish block with coupling columns — the repeated
// structure of staircase LPs. Non-symmetric and rectangular-ish (padded
// square here to keep the quadtree simple).
func LP(blockRows, blockCols, blockSize int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	// One shared block pattern: every block repeats it exactly — the
	// self-similarity HICAMP exploits even without symmetry.
	type cell struct{ i, j int }
	var pattern []cell
	var pvals []float64
	for i := 0; i < blockSize; i++ {
		for j := 0; j < blockSize; j++ {
			if i == j || rng.Intn(4) == 0 {
				pattern = append(pattern, cell{i, j})
				pvals = append(pvals, float64(1+rng.Intn(3)))
			}
		}
	}
	rows := blockRows * blockSize
	cols := blockCols * blockSize
	n := rows
	if cols > n {
		n = cols
	}
	var ts []Triplet
	for br := 0; br < blockRows; br++ {
		bc := br % blockCols // staircase placement
		for k, c := range pattern {
			ts = append(ts, Triplet{br*blockSize + c.i, bc*blockSize + c.j, pvals[k]})
		}
		// Coupling column linking consecutive block rows.
		if br > 0 {
			ts = append(ts, Triplet{br * blockSize, ((br - 1) % blockCols) * blockSize, 1})
		}
	}
	return NewMatrix(fmt.Sprintf("lp_%dx%d_b%d_s%d", blockRows, blockCols, blockSize, seed),
		"LP", n, n, ts)
}

// Banded builds a banded matrix of the given half-bandwidth. Symmetric
// when sym is set; values repeat along diagonals (Toeplitz-like).
func Banded(n, halfBand int, sym bool, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	diagVals := make([]float64, halfBand+1)
	for d := range diagVals {
		diagVals[d] = float64(1+rng.Intn(9)) / 2
	}
	var ts []Triplet
	for r := 0; r < n; r++ {
		for d := 0; d <= halfBand; d++ {
			c := r + d
			if c >= n {
				break
			}
			v := diagVals[d]
			ts = append(ts, Triplet{r, c, v})
			if d > 0 {
				if sym {
					ts = append(ts, Triplet{c, r, v})
				} else if rng.Intn(3) > 0 {
					ts = append(ts, Triplet{c, r, v + 1})
				}
			}
		}
	}
	kind := "banded"
	return NewMatrix(fmt.Sprintf("%s_n%d_w%d_sym%v_s%d", kind, n, halfBand, sym, seed),
		kind, n, n, ts)
}

// Circuit builds a power-law-degree symmetric matrix, the structure of
// circuit and social-network problems: a few dense hub rows, many sparse
// rows, irregular values.
func Circuit(n int, avgDeg int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	var ts []Triplet
	for r := 0; r < n; r++ {
		ts = append(ts, Triplet{r, r, float64(avgDeg)})
	}
	edges := n * avgDeg / 2
	z := rand.NewZipf(rng, 1.3, 1, uint64(n-1))
	for e := 0; e < edges; e++ {
		a := int(z.Uint64())
		b := rng.Intn(n)
		if a == b {
			continue
		}
		v := -1.0
		ts = append(ts, Triplet{a, b, v}, Triplet{b, a, v})
	}
	return NewMatrix(fmt.Sprintf("circuit_n%d_d%d_s%d", n, avgDeg, seed), "circuit", n, n, ts)
}

// Pattern builds a tiled matrix: an identical dense tile stamped on a
// coarse diagonal-ish grid. Extreme self-similarity: the paper's
// "repeating patterns of non-zero values".
func Pattern(tiles, tileSize int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	tile := make([]float64, tileSize*tileSize)
	for i := range tile {
		if rng.Intn(3) == 0 {
			tile[i] = float64(rng.Intn(5) + 1)
		}
	}
	n := tiles * tileSize
	var ts []Triplet
	for t := 0; t < tiles; t++ {
		r0, c0 := t*tileSize, t*tileSize
		for i := 0; i < tileSize; i++ {
			for j := 0; j < tileSize; j++ {
				if v := tile[i*tileSize+j]; v != 0 {
					ts = append(ts, Triplet{r0 + i, c0 + j, v})
				}
			}
		}
		// Every tile also appears at a fixed off-diagonal position,
		// duplicating whole sub-matrices.
		if t+2 < tiles {
			r0, c0 = t*tileSize, (t+2)*tileSize
			for i := 0; i < tileSize; i++ {
				for j := 0; j < tileSize; j++ {
					if v := tile[i*tileSize+j]; v != 0 {
						ts = append(ts, Triplet{r0 + i, c0 + j, v})
					}
				}
			}
		}
	}
	return NewMatrix(fmt.Sprintf("pattern_t%d_b%d_s%d", tiles, tileSize, seed), "pattern", n, n, ts)
}

// Random builds an unstructured random matrix: the worst case for
// structural dedup (only zero-block elision helps).
func Random(n int, density float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	var ts []Triplet
	target := int(float64(n) * float64(n) * density)
	for e := 0; e < target; e++ {
		ts = append(ts, Triplet{rng.Intn(n), rng.Intn(n), rng.Float64()*4 - 2})
	}
	for r := 0; r < n; r++ {
		ts = append(ts, Triplet{r, r, 1})
	}
	return NewMatrix(fmt.Sprintf("random_n%d_s%d", n, seed), "random", n, n, ts)
}

// Suite generates the 100-matrix evaluation suite across the categories
// of Table 2. Scale multiplies the base dimensions (1 = test-sized;
// the benchmark harness uses larger scales).
func Suite(scale int, seed int64) []*Matrix {
	if scale < 1 {
		scale = 1
	}
	var ms []*Matrix
	// 29 FEM problems (the paper's FEM count).
	for i := 0; i < 20; i++ {
		ms = append(ms, FEM2D(8*scale+2*i))
	}
	for i := 0; i < 9; i++ {
		ms = append(ms, FEM3D(4*scale+i))
	}
	// 15 LPs.
	for i := 0; i < 15; i++ {
		ms = append(ms, LP(6+i, 4+i/2, 8*scale, seed+int64(i)))
	}
	// Banded: 10 symmetric, 10 non-symmetric.
	for i := 0; i < 10; i++ {
		ms = append(ms, Banded(64*scale+16*i, 2+i%5, true, seed+100+int64(i)))
	}
	for i := 0; i < 10; i++ {
		ms = append(ms, Banded(64*scale+16*i, 2+i%5, false, seed+200+int64(i)))
	}
	// 16 circuit matrices.
	for i := 0; i < 16; i++ {
		ms = append(ms, Circuit(96*scale+24*i, 4+i%4, seed+300+int64(i)))
	}
	// 12 pattern-tiled.
	for i := 0; i < 12; i++ {
		ms = append(ms, Pattern(4+i%6, 8*scale, seed+400+int64(i)))
	}
	// 8 random.
	for i := 0; i < 8; i++ {
		ms = append(ms, Random(64*scale+16*i, 0.02, seed+500+int64(i)))
	}
	return ms
}
