package spmv

import (
	"math"
	"testing"

	"repro/internal/segment"
)

// TestNZDMulVecBulkBitIdentical pins the wave-order claim: every pattern
// leaf sits at uniform depth and the bulk expansion preserves quadrant
// order, so MulVecBulk consumes values in exactly MulVec's sequence and
// the floating-point results are bit-identical, not merely close.
func TestNZDMulVecBulkBitIdentical(t *testing.T) {
	for _, lb := range []int{16, 32, 64} {
		for _, m := range []*Matrix{
			FEM2D(6), LP(4, 3, 8, 2), Circuit(24, 3, 4), Random(20, 0.1, 6),
			Pattern(3, 8, 5), Banded(20, 3, false, 3),
		} {
			mach := testMachine(lb)
			z := BuildNZD(mach, m)
			x := testVector(m.Cols)
			xseg := BuildXSegment(mach, x)
			want := z.MulVec(mach, xseg, m.Cols)
			got := z.MulVecBulk(mach, xseg, m.Cols)
			if len(got) != len(want) {
				t.Fatalf("lb=%d %s: len %d vs %d", lb, m.Name, len(got), len(want))
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("lb=%d %s: y[%d] = %v (bulk) vs %v (serial) — not bit-identical",
						lb, m.Name, i, got[i], want[i])
				}
			}
			z.Release(mach)
			segment.ReleaseSeg(mach, xseg)
		}
	}
}

// TestNZDMulVecBulkEmptyMatrix covers the zero-pattern edge.
func TestNZDMulVecBulkEmptyMatrix(t *testing.T) {
	mach := testMachine(16)
	m := NewMatrix("t", "empty", 4, 4, nil)
	z := BuildNZD(mach, m)
	x := testVector(4)
	xseg := BuildXSegment(mach, x)
	y := z.MulVecBulk(mach, xseg, 4)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("empty matrix produced y[%d] = %v", i, v)
		}
	}
	z.Release(mach)
	segment.ReleaseSeg(mach, xseg)
}
