package spmv

import (
	"testing"

	"repro/internal/segment"
)

func TestQTSMulVecGatherMatchesReference(t *testing.T) {
	for _, lb := range []int{16, 32, 64} {
		for _, m := range []*Matrix{
			FEM2D(6), FEM3D(3), LP(4, 3, 8, 2), Banded(20, 3, false, 3),
			Circuit(24, 3, 4), Pattern(3, 8, 5), Random(20, 0.1, 6),
		} {
			mach := testMachine(lb)
			q := BuildQTS(mach, m)
			x := testVector(m.Cols)
			xseg := BuildXSegment(mach, x)
			got := q.MulVecGather(mach, xseg, m.Cols)
			// Accumulation order differs from the depth-first kernel, so
			// compare against the dense reference with tolerance.
			want := m.MulVec(x)
			if !VecEqual(got, want) {
				t.Fatalf("lb=%d %s: MulVecGather mismatch", lb, m.Name)
			}
			q.Release(mach)
			segment.ReleaseSeg(mach, xseg)
			if mach.LiveLines() != 0 {
				t.Fatalf("lb=%d %s: %d lines leaked", lb, m.Name, mach.LiveLines())
			}
		}
	}
}

func TestSpMVHicampGatherNoMoreDRAMThanSerial(t *testing.T) {
	m := FEM2D(6)
	cfg := testMachine(16).Config()
	serial, ys := SpMVHicamp(cfg, m)
	gather, yg := SpMVHicampGather(cfg, m)
	if !VecEqual(ys, yg) {
		t.Fatal("kernels disagree on y")
	}
	if gather > serial {
		t.Fatalf("gather kernel used more DRAM: %d > %d", gather, serial)
	}
}
