// Package spmv implements the sparse-matrix study of paper §5.2: HICAMP
// matrix formats (the symmetric quad-tree QTS and the non-zero-dense NZD)
// against conventional CSR and symmetric CSR, with both footprint
// accounting (Figure 8, Table 2) and SpMV off-chip traffic (Figure 7).
//
// The ground-truth representation is CSR; HICAMP formats are built from
// it into a real machine's deduplicated memory, and kernels on both
// architectures run against simulated cache hierarchies.
package spmv

import (
	"fmt"
	"math"
	"sort"
)

// Matrix is a sparse matrix in CSR form with evaluation metadata.
type Matrix struct {
	Name     string
	Category string // FEM, LP, circuit, banded, pattern, random
	Rows     int
	Cols     int
	RowPtr   []int32
	ColIdx   []int32
	Vals     []float64
	Sym      bool // numerically symmetric (checked by NewMatrix)
}

// Triplet is one (row, col, value) entry.
type Triplet struct {
	R, C int
	V    float64
}

// NewMatrix builds a CSR matrix from triplets (duplicates summed) and
// determines numeric symmetry.
func NewMatrix(name, category string, rows, cols int, ts []Triplet) *Matrix {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].R != ts[j].R {
			return ts[i].R < ts[j].R
		}
		return ts[i].C < ts[j].C
	})
	m := &Matrix{Name: name, Category: category, Rows: rows, Cols: cols}
	m.RowPtr = make([]int32, rows+1)
	for i := 0; i < len(ts); {
		j := i
		v := 0.0
		for j < len(ts) && ts[j].R == ts[i].R && ts[j].C == ts[i].C {
			v += ts[j].V
			j++
		}
		if v != 0 {
			if ts[i].R < 0 || ts[i].R >= rows || ts[i].C < 0 || ts[i].C >= cols {
				panic(fmt.Sprintf("spmv: entry (%d,%d) outside %dx%d", ts[i].R, ts[i].C, rows, cols))
			}
			m.ColIdx = append(m.ColIdx, int32(ts[i].C))
			m.Vals = append(m.Vals, v)
			m.RowPtr[ts[i].R+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	m.Sym = m.checkSymmetric()
	return m
}

// NNZ returns the number of stored non-zeros.
func (m *Matrix) NNZ() int { return len(m.Vals) }

// At returns the value at (r, c) by binary search within the row.
func (m *Matrix) At(r, c int) float64 {
	lo, hi := int(m.RowPtr[r]), int(m.RowPtr[r+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(m.ColIdx[mid]) < c:
			lo = mid + 1
		case int(m.ColIdx[mid]) > c:
			hi = mid
		default:
			return m.Vals[mid]
		}
	}
	return 0
}

func (m *Matrix) checkSymmetric() bool {
	if m.Rows != m.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			c := int(m.ColIdx[k])
			if c <= r {
				continue
			}
			if m.At(c, r) != m.Vals[k] {
				return false
			}
		}
	}
	return true
}

// MulVec computes y = A*x in plain Go: the correctness reference.
func (m *Matrix) MulVec(x []float64) []float64 {
	y := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var acc float64
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			acc += m.Vals[k] * x[int(m.ColIdx[k])]
		}
		y[r] = acc
	}
	return y
}

// CSRBytes returns the conventional storage footprint: 8-byte values and
// 4-byte indices, the paper's 8*(1.5*nnz + 0.5*m) formula.
func (m *Matrix) CSRBytes() uint64 {
	return uint64(8*m.NNZ() + 4*m.NNZ() + 4*(m.Rows+1))
}

// SymCSRBytes returns the symmetric-CSR footprint (§5.2.2): only the
// diagonal plus one triangle is stored.
func (m *Matrix) SymCSRBytes() uint64 {
	if !m.Sym {
		return m.CSRBytes()
	}
	diag, off := 0, 0
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if int(m.ColIdx[k]) == r {
				diag++
			} else {
				off++
			}
		}
	}
	stored := diag + off/2
	return uint64(8*stored + 4*stored + 4*(m.Rows+1))
}

// BaselineBytes returns the conventional footprint the paper compares
// against: symmetric CSR when the matrix is symmetric, CSR otherwise.
func (m *Matrix) BaselineBytes() uint64 {
	if m.Sym {
		return m.SymCSRBytes()
	}
	return m.CSRBytes()
}

// Dim returns the padded power-of-two dimension the quadtree formats use.
func (m *Matrix) Dim() int {
	n := m.Rows
	if m.Cols > n {
		n = m.Cols
	}
	d := 2
	for d < n {
		d <<= 1
	}
	return d
}

// VecEqual compares vectors within floating-point tolerance.
func VecEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		diff := math.Abs(a[i] - b[i])
		scale := math.Abs(a[i]) + math.Abs(b[i]) + 1
		if diff > 1e-9*scale {
			return false
		}
	}
	return true
}
