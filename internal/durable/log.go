package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The append-only line log: segmented files of CRC-framed records,
// group-committed by a single flusher goroutine.
//
// Writers never block on I/O: a journal append encodes its frame into
// the active buffer under the log mutex (held for the memcpy only) and
// returns; the flusher swaps in the spare buffer, writes and fsyncs the
// batch, then advances the durable LSN and wakes Sync waiters. The flush
// window bounds how long an append can sit unflushed — mirroring the
// netfront aggregation shape: one fsync absorbs every record that
// arrived during the window, which is what makes group commit beat
// per-write fsync by an order of magnitude at high concurrency.
//
// Segment files are named wal-<seq>.log with a fixed header carrying the
// LSN of their first record; recovery orders segments by that and a
// checkpoint truncates every segment whose records all predate it.

const (
	walMagic   uint64 = 0x314C4157504D4348 // "HCMPWAL1" little-endian
	walVersion uint32 = 1
	// walHeaderLen is magic + version + reserved + seq + startLSN.
	walHeaderLen = 8 + 4 + 4 + 8 + 8
)

// logWriter is the group-committed segmented log. One per DB.
type logWriter struct {
	dir      string
	window   time.Duration
	segBytes int64

	mu   sync.Mutex
	cond *sync.Cond
	// buf holds encoded-but-unflushed frames; spare is the double
	// buffer the flusher swaps in so appends proceed during a flush.
	buf, spare  []byte
	recsPending uint64
	nextLSN     uint64 // next LSN to assign
	durableLSN  uint64 // highest LSN known stable
	err         error  // sticky first I/O error
	closed      bool

	// Checkpoint-requested roll: records below rollLSN (the first
	// rollBoundary buffered bytes) finish the current segment; the rest
	// open the next one. rolledLSN acknowledges completion.
	rollPending  bool
	rollLSN      uint64
	rollBoundary int
	rolledLSN    uint64

	// discard, set by allocation-pin tests, drops appended frames at
	// encode time so the measured steady-state path is the encode alone.
	discard bool

	// File state below is touched only by the flusher (and by open/close
	// at quiescence).
	f       *os.File
	seq     uint64
	written int64

	done chan struct{}

	// stats, all atomic
	stAppends  atomic.Uint64
	stLogBytes atomic.Uint64
	stFsyncs   atomic.Uint64
	stFlushes  atomic.Uint64 // group commits (write+fsync batches)
	stFlushRec atomic.Uint64 // records covered by those batches
	stMaxBatch atomic.Uint64
	stRolls    atomic.Uint64
}

func walName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }

// parseWALName extracts the sequence number from a wal file name.
func parseWALName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	return seq, err == nil
}

// newLogWriter opens a fresh segment at (seq, startLSN) and starts the
// flusher. startLSN is the next LSN to assign; everything below it is
// already durable (recovery replayed it).
func newLogWriter(dir string, window time.Duration, segBytes int64, seq, startLSN uint64) (*logWriter, error) {
	lw := &logWriter{
		dir:        dir,
		window:     window,
		segBytes:   segBytes,
		nextLSN:    startLSN,
		durableLSN: startLSN - 1,
		rolledLSN:  startLSN - 1,
		seq:        seq,
		done:       make(chan struct{}),
	}
	lw.cond = sync.NewCond(&lw.mu)
	if err := lw.openSegment(seq, startLSN); err != nil {
		return nil, err
	}
	go lw.run()
	return lw, nil
}

// openSegment creates wal-<seq>.log with its header and makes it the
// active segment. Called by the flusher (rolls) and by newLogWriter.
func (lw *logWriter) openSegment(seq, startLSN uint64) error {
	faultPoint()
	path := filepath.Join(lw.dir, walName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr []byte
	hdr = appendU64(hdr, walMagic)
	hdr = appendU32(hdr, walVersion)
	hdr = appendU32(hdr, 0)
	hdr = appendU64(hdr, seq)
	hdr = appendU64(hdr, startLSN)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	faultPoint()
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(lw.dir); err != nil {
		f.Close()
		return err
	}
	faultPoint()
	if lw.f != nil {
		lw.f.Close()
	}
	lw.f = f
	lw.seq = seq
	lw.written = int64(walHeaderLen)
	lw.stRolls.Add(1)
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	return err
}

// append encodes one frame under the mutex and wakes the flusher. enc
// runs with the lock held and must only append to the buffer.
// The exported journal methods specialize this shape without a closure
// so the hot path stays allocation-free; see db.go.

// reserve assigns the next LSN. Caller holds lw.mu.
func (lw *logWriter) reserve() uint64 {
	lsn := lw.nextLSN
	lw.nextLSN++
	lw.recsPending++
	lw.stAppends.Add(1)
	return lsn
}

// noteAppended finishes an append: in discard mode the encoded frame is
// dropped and counted durable; otherwise the flusher is prodded.
// Caller holds lw.mu.
func (lw *logWriter) noteAppended() {
	if lw.discard {
		lw.buf = lw.buf[:0]
		lw.recsPending = 0
		lw.durableLSN = lw.nextLSN - 1
		return
	}
	lw.cond.Broadcast()
}

// Sync blocks until every record appended before the call is stable.
func (lw *logWriter) Sync() error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	target := lw.nextLSN - 1
	lw.cond.Broadcast()
	for lw.durableLSN < target && lw.err == nil && !lw.closed {
		lw.cond.Wait()
	}
	return lw.err
}

// rollNow seals the current segment at the current LSN frontier and
// opens the next one, returning the first LSN of the new segment. On
// return every record below that LSN is durable in sealed segments —
// the checkpoint's anchor point.
func (lw *logWriter) rollNow() (uint64, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	start := lw.nextLSN
	lw.rollPending = true
	lw.rollLSN = start
	lw.rollBoundary = len(lw.buf)
	lw.cond.Broadcast()
	for lw.rolledLSN < start && lw.err == nil && !lw.closed {
		lw.cond.Wait()
	}
	if lw.err != nil {
		return 0, lw.err
	}
	if lw.closed && lw.rolledLSN < start {
		return 0, fmt.Errorf("durable: log closed during roll")
	}
	return start, nil
}

// run is the flusher goroutine.
func (lw *logWriter) run() {
	defer close(lw.done)
	for {
		lw.mu.Lock()
		for len(lw.buf) == 0 && !lw.rollPending && !lw.closed {
			lw.cond.Wait()
		}
		if len(lw.buf) == 0 && !lw.rollPending && lw.closed {
			lw.mu.Unlock()
			return
		}
		lw.mu.Unlock()
		if lw.window > 0 {
			// The bounded flush window: let concurrent appends pile into
			// the buffer so one fsync commits them all.
			time.Sleep(lw.window)
		}
		lw.flushOnce()
		lw.mu.Lock()
		finished := lw.closed && len(lw.buf) == 0 && !lw.rollPending
		lw.mu.Unlock()
		if finished {
			return
		}
	}
}

// flushOnce swaps out the pending batch, writes and fsyncs it (splitting
// around a requested roll boundary), then publishes the new durable LSN.
func (lw *logWriter) flushOnce() {
	lw.mu.Lock()
	batch := lw.buf
	lw.buf = lw.spare[:0]
	lw.spare = batch
	recs := lw.recsPending
	lw.recsPending = 0
	end := lw.nextLSN - 1
	roll := lw.rollPending
	boundary := lw.rollBoundary
	rollLSN := lw.rollLSN
	lw.rollPending = false
	lw.rollBoundary = 0
	lw.mu.Unlock()

	var err error
	if roll {
		err = lw.writeBatch(batch[:boundary], 0)
		if err == nil {
			err = lw.openSegment(lw.seq+1, rollLSN)
		}
		if err == nil {
			err = lw.writeBatch(batch[boundary:], recs)
		}
	} else {
		err = lw.writeBatch(batch, recs)
		if err == nil && lw.written > lw.segBytes {
			err = lw.openSegment(lw.seq+1, end+1)
		}
	}

	lw.mu.Lock()
	if err != nil {
		if lw.err == nil {
			lw.err = err
		}
	} else {
		lw.durableLSN = end
		if roll {
			lw.rolledLSN = rollLSN
		}
	}
	lw.cond.Broadcast()
	lw.mu.Unlock()
}

// writeBatch writes one batch to the active segment and fsyncs it. A
// batch of zero bytes still fsyncs nothing and returns nil.
func (lw *logWriter) writeBatch(b []byte, recs uint64) error {
	if len(b) == 0 {
		return nil
	}
	faultPoint()
	if _, err := lw.f.Write(b); err != nil {
		return err
	}
	faultPoint()
	if err := lw.f.Sync(); err != nil {
		return err
	}
	faultPoint()
	lw.written += int64(len(b))
	lw.stLogBytes.Add(uint64(len(b)))
	lw.stFsyncs.Add(1)
	lw.stFlushes.Add(1)
	lw.stFlushRec.Add(recs)
	for {
		cur := lw.stMaxBatch.Load()
		if recs <= cur || lw.stMaxBatch.CompareAndSwap(cur, recs) {
			break
		}
	}
	return nil
}

// Close flushes everything pending and stops the flusher.
func (lw *logWriter) Close() error {
	lw.mu.Lock()
	if lw.closed {
		lw.mu.Unlock()
		return lw.err
	}
	lw.closed = true
	lw.cond.Broadcast()
	lw.mu.Unlock()
	<-lw.done
	lw.mu.Lock()
	err := lw.err
	lw.mu.Unlock()
	if lw.f != nil {
		if cerr := lw.f.Close(); err == nil {
			err = cerr
		}
		lw.f = nil
	}
	return err
}

// walSegment describes one on-disk log segment.
type walSegment struct {
	path     string
	seq      uint64
	startLSN uint64
}

// listSegments parses the headers of every wal file in dir, sorted by
// sequence number, validating that start LSNs are monotone.
func listSegments(dir string) ([]walSegment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, e := range ents {
		seq, ok := parseWALName(e.Name())
		if !ok {
			continue
		}
		path := filepath.Join(dir, e.Name())
		hdr := make([]byte, walHeaderLen)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		n, _ := f.Read(hdr)
		f.Close()
		if n < walHeaderLen || getU64(hdr) != walMagic || getU32(hdr[8:]) != walVersion {
			return nil, fmt.Errorf("durable: %s: bad segment header", path)
		}
		if got := getU64(hdr[16:]); got != seq {
			return nil, fmt.Errorf("durable: %s: header seq %d", path, got)
		}
		segs = append(segs, walSegment{path: path, seq: seq, startLSN: getU64(hdr[24:])})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i := 1; i < len(segs); i++ {
		if segs[i].startLSN < segs[i-1].startLSN {
			return nil, fmt.Errorf("durable: segment %d starts at lsn %d before segment %d's %d",
				segs[i].seq, segs[i].startLSN, segs[i-1].seq, segs[i-1].startLSN)
		}
	}
	return segs, nil
}
