package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hds"
	"repro/internal/segmap"
	"repro/internal/word"
)

// testOpts keeps unit tests fast: no aggregation window, tiny segments
// so rolls and truncation actually happen.
func testOpts(dir string) Options {
	return Options{Dir: dir, FlushWindow: 1, SegmentBytes: 4 << 10}
}

// openHeap builds a fresh heap and attaches a DB to it.
func openHeap(t *testing.T, opts Options) (*hds.Heap, *DB) {
	t.Helper()
	h := hds.NewHeap(core.TestConfig())
	db, err := Open(opts, h.M, h.SM)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return h, db
}

// externalRefs derives the CheckConsistency external-reference map from
// the segment map roots — after recovery these are the only references
// not explained by the line DAG itself.
func externalRefs(sm *segmap.Map) map[word.PLID]uint64 {
	ext := make(map[word.PLID]uint64)
	for _, de := range sm.Dump() {
		if de.E.Seg.Root != word.Zero {
			ext[de.E.Seg.Root]++
		}
	}
	return ext
}

func checkMachine(t *testing.T, h *hds.Heap, where string) {
	t.Helper()
	if err := h.M.CheckConsistency(externalRefs(h.SM)); err != nil {
		t.Fatalf("%s: CheckConsistency: %v", where, err)
	}
}

// set writes one pair and releases the builder references.
func set(t *testing.T, h *hds.Heap, mp *hds.Map, k, v string) {
	t.Helper()
	ks := hds.NewString(h, []byte(k))
	vs := hds.NewString(h, []byte(v))
	if err := mp.Set(ks, vs); err != nil {
		t.Fatalf("Set(%q): %v", k, err)
	}
	ks.Release(h)
	vs.Release(h)
}

func del(t *testing.T, h *hds.Heap, mp *hds.Map, k string) {
	t.Helper()
	ks := hds.NewString(h, []byte(k))
	if err := mp.Delete(ks); err != nil {
		t.Fatalf("Delete(%q): %v", k, err)
	}
	ks.Release(h)
}

// get reads one key, releasing every transient reference.
func get(t *testing.T, h *hds.Heap, mp *hds.Map, k string) (string, bool) {
	t.Helper()
	ks := hds.NewString(h, []byte(k))
	defer ks.Release(h)
	vs, ok := mp.Get(ks)
	if !ok {
		return "", false
	}
	b := vs.Bytes(h)
	vs.Release(h)
	return string(b), true
}

// TestDurableRoundTrip is the basic write → close → reopen path: every
// synced key readable byte-for-byte through a fresh machine, derived
// refcounts passing the store's own audit.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h, db := openHeap(t, testOpts(dir))
	mp := hds.NewMap(h)
	if err := db.Bind("kv:test", mp.VSID()); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	want := make(map[string]string)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := fmt.Sprintf("value-%03d-%s", i, string(bytes.Repeat([]byte{'a' + byte(i%26)}, i)))
		set(t, h, mp, k, v)
		want[k] = v
	}
	// Overwrites and deletes must survive too.
	for i := 0; i < 64; i += 3 {
		k := fmt.Sprintf("key-%03d", i)
		if i%2 == 0 {
			set(t, h, mp, k, "rewritten-"+k)
			want[k] = "rewritten-" + k
		} else {
			del(t, h, mp, k)
			delete(want, k)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	h2, db2 := openHeap(t, testOpts(dir))
	defer db2.Close()
	checkMachine(t, h2, "after reopen")
	st := db2.Stats()
	if st.RecoveredLines == 0 || st.ReplayedRecords == 0 {
		t.Fatalf("recovery stats empty: %+v", st)
	}
	v, ok := db2.Binding("kv:test")
	if !ok {
		t.Fatalf("binding lost across restart")
	}
	mp2 := hds.OpenMap(h2, v)
	for k, wantV := range want {
		got, ok := get(t, h2, mp2, k)
		if !ok || got != wantV {
			t.Fatalf("key %q: got (%q, %v), want %q", k, got, ok, wantV)
		}
	}
	for i := 3; i < 64; i += 6 {
		k := fmt.Sprintf("key-%03d", i)
		if _, ok := get(t, h2, mp2, k); ok {
			t.Fatalf("deleted key %q visible after recovery", k)
		}
	}
}

// TestDurableBindings: rebinding overwrites, and both survive a restart.
func TestDurableBindings(t *testing.T) {
	dir := t.TempDir()
	h, db := openHeap(t, testOpts(dir))
	a, b := hds.NewMap(h), hds.NewMap(h)
	if err := db.Bind("root", a.VSID()); err != nil {
		t.Fatal(err)
	}
	if err := db.Bind("root", b.VSID()); err != nil {
		t.Fatal(err)
	}
	if err := db.Bind("other", a.VSID()); err != nil {
		t.Fatal(err)
	}
	db.Close()

	h2, db2 := openHeap(t, testOpts(dir))
	defer db2.Close()
	_ = h2
	if v, ok := db2.Binding("root"); !ok || v != b.VSID() {
		t.Fatalf("root = (%#x, %v), want %#x", uint64(v), ok, uint64(b.VSID()))
	}
	if v, ok := db2.Binding("other"); !ok || v != a.VSID() {
		t.Fatalf("other = (%#x, %v), want %#x", uint64(v), ok, uint64(a.VSID()))
	}
}

// TestDurableTornTail: garbage appended past the last durable frame (a
// torn write at crash) must not lose or corrupt acked state.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	h, db := openHeap(t, testOpts(dir))
	mp := hds.NewMap(h)
	db.Bind("kv:test", mp.VSID())
	set(t, h, mp, "alpha", "one")
	set(t, h, mp, "beta", "two")
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1].path
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible-length prefix followed by garbage: parseFrame must
	// reject it on CRC and recovery must stop there.
	f.Write([]byte{40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3})
	f.Close()

	h2, db2 := openHeap(t, testOpts(dir))
	defer db2.Close()
	checkMachine(t, h2, "after torn tail")
	v, _ := db2.Binding("kv:test")
	mp2 := hds.OpenMap(h2, v)
	for k, want := range map[string]string{"alpha": "one", "beta": "two"} {
		if got, ok := get(t, h2, mp2, k); !ok || got != want {
			t.Fatalf("key %q: got (%q, %v), want %q", k, got, ok, want)
		}
	}
}

// TestDurableCheckpointTruncatesLog: after a checkpoint, sealed segments
// behind the anchor are gone, the checkpoint file exists, and recovery
// from checkpoint + tail reproduces the state.
func TestDurableCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.SegmentBytes = 1 << 10 // force many rolls
	h, db := openHeap(t, opts)
	mp := hds.NewMap(h)
	db.Bind("kv:test", mp.VSID())
	for i := 0; i < 200; i++ {
		set(t, h, mp, fmt.Sprintf("k%03d", i), fmt.Sprintf("v%03d", i))
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	segsBefore, _ := listSegments(dir)
	if len(segsBefore) < 3 {
		t.Fatalf("expected several segments before checkpoint, got %d", len(segsBefore))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	segsAfter, _ := listSegments(dir)
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("checkpoint did not truncate: %d -> %d segments", len(segsBefore), len(segsAfter))
	}
	if st := db.Stats(); st.Checkpoints != 1 || st.CheckpointLines == 0 {
		t.Fatalf("checkpoint stats: %+v", st)
	}

	// Post-checkpoint writes land in the tail and must replay on top.
	set(t, h, mp, "k000", "rewritten")
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	h2, db2 := openHeap(t, opts)
	defer db2.Close()
	checkMachine(t, h2, "after checkpointed reopen")
	v, _ := db2.Binding("kv:test")
	mp2 := hds.OpenMap(h2, v)
	if got, ok := get(t, h2, mp2, "k000"); !ok || got != "rewritten" {
		t.Fatalf("k000 = (%q, %v), want tail write", got, ok)
	}
	if got, ok := get(t, h2, mp2, "k199"); !ok || got != "v199" {
		t.Fatalf("k199 = (%q, %v), want checkpointed write", got, ok)
	}
}

// TestDurableGeometryMismatch: the PLID space is positional, so a
// machine with different geometry must be refused, not corrupted.
func TestDurableGeometryMismatch(t *testing.T) {
	dir := t.TempDir()
	h, db := openHeap(t, testOpts(dir))
	mp := hds.NewMap(h)
	set(t, h, mp, "a", "b")
	db.Sync()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	cfg := core.TestConfig()
	cfg.BucketBits = cfg.BucketBits + 1
	m := core.NewMachine(cfg)
	sm := segmap.New(m)
	if _, err := Open(testOpts(dir), m, sm); err == nil {
		t.Fatalf("Open accepted a mismatched geometry")
	}
}

// TestRecoveryIdempotent: recovery is read-only on disk, so recovering
// the same directory twice — the crash-during-recovery scenario — must
// produce byte-identical state.
func TestRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	h, db := openHeap(t, testOpts(dir))
	mp := hds.NewMap(h)
	db.Bind("kv:test", mp.VSID())
	for i := 0; i < 100; i++ {
		set(t, h, mp, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	db.Sync()
	db.Checkpoint()
	for i := 0; i < 50; i++ {
		set(t, h, mp, fmt.Sprintf("k%d", i), fmt.Sprintf("w%d", i))
	}
	db.Sync()
	db.Close()

	recoverOnce := func() (map[word.PLID]word.Content, []segmap.DumpEntry, map[string]word.VSID) {
		m := core.NewMachine(core.TestConfig())
		sm := segmap.New(m)
		rec, err := recoverState(dir, m, sm)
		if err != nil {
			t.Fatalf("recoverState: %v", err)
		}
		lines := make(map[word.PLID]word.Content)
		m.ForEachLiveLine(func(p word.PLID, c word.Content, _ uint64) bool {
			lines[p] = c
			return true
		})
		return lines, sm.Dump(), rec.bindings
	}
	l1, r1, b1 := recoverOnce()
	l2, r2, b2 := recoverOnce()
	if !reflect.DeepEqual(l1, l2) {
		t.Fatalf("line sets differ between recoveries: %d vs %d", len(l1), len(l2))
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("segment maps differ between recoveries")
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Fatalf("bindings differ between recoveries")
	}
	if len(l1) == 0 || len(r1) == 0 {
		t.Fatalf("recovered nothing: %d lines, %d roots", len(l1), len(r1))
	}
}

// TestDurableFrameRoundTrip exercises the record codec for every kind.
func TestDurableFrameRoundTrip(t *testing.T) {
	var c word.Content
	c.N = 3
	c.T[0], c.W[0] = word.TagRaw, 0x1122334455667788
	c.T[1], c.W[1] = word.TagPLID, 42
	c.T[2], c.W[2] = word.TagCompact, 0xdeadbeef

	var buf []byte
	buf = appendAllocFrame(buf, 1, word.PLID(7), c)
	buf = appendFreeFrame(buf, 2, word.PLID(7))
	buf = appendPublishFrame(buf, 3, word.VSID(9), word.PLID(7), 4, 1, 123)
	buf = appendDeleteFrame(buf, 4, word.VSID(9))
	buf = appendBindFrame(buf, 5, "kv:root", word.VSID(9))

	wantKinds := []uint8{recAlloc, recFree, recPublish, recDelete, recBind}
	p := buf
	for i, k := range wantKinds {
		f, n, intact, err := parseFrame(p)
		if err != nil || !intact {
			t.Fatalf("frame %d: err=%v intact=%v", i, err, intact)
		}
		if f.kind != k || f.lsn != uint64(i+1) {
			t.Fatalf("frame %d: kind=%d lsn=%d", i, f.kind, f.lsn)
		}
		switch k {
		case recAlloc:
			if f.plid != 7 || f.content != c {
				t.Fatalf("alloc frame mismatch: %+v", f)
			}
		case recPublish:
			if f.vsid != 9 || f.root != 7 || f.height != 4 || f.flags != 1 || f.size != 123 {
				t.Fatalf("publish frame mismatch: %+v", f)
			}
		case recBind:
			if f.label != "kv:root" || f.vsid != 9 {
				t.Fatalf("bind frame mismatch: %+v", f)
			}
		}
		p = p[n:]
	}
	if len(p) != 0 {
		t.Fatalf("%d trailing bytes", len(p))
	}

	// Torn head: every strict prefix of the last frame parses as
	// not-intact, never as an error or a bogus frame.
	p = buf
	off := 0
	for i := 0; i < len(wantKinds)-1; i++ {
		_, n, _, _ := parseFrame(p)
		p = p[n:]
		off += n
	}
	for cut := off + 1; cut < len(buf); cut++ {
		_, _, intact, err := parseFrame(buf[off:cut])
		if err != nil {
			t.Fatalf("cut %d: spurious error %v", cut, err)
		}
		if intact {
			t.Fatalf("cut %d: truncated frame parsed as intact", cut)
		}
	}
	// A corrupted byte inside a full frame must fail the CRC.
	bad := append([]byte(nil), buf[off:]...)
	bad[len(bad)-1] ^= 0xff
	if _, _, intact, _ := parseFrame(bad); intact {
		t.Fatalf("corrupted frame parsed as intact")
	}
}

// TestDurableCleanDirIsEmpty: opening an empty directory recovers
// nothing and works.
func TestDurableCleanDirIsEmpty(t *testing.T) {
	dir := t.TempDir()
	h, db := openHeap(t, testOpts(dir))
	defer db.Close()
	st := db.Stats()
	if st.RecoveredLines != 0 || st.RecoveredRoots != 0 || st.ReplayedRecords != 0 {
		t.Fatalf("fresh dir recovered state: %+v", st)
	}
	if !h.M.DurableEnabled() {
		t.Fatalf("machine does not report durability")
	}
	if err := h.M.SyncDurable(); err != nil {
		t.Fatalf("SyncDurable: %v", err)
	}
}

// TestDurableCrashedCheckpointIgnored: a .tmp checkpoint (crash before
// rename) must be ignored and cleaned by the next checkpoint.
func TestDurableCrashedCheckpointIgnored(t *testing.T) {
	dir := t.TempDir()
	h, db := openHeap(t, testOpts(dir))
	mp := hds.NewMap(h)
	db.Bind("kv:test", mp.VSID())
	set(t, h, mp, "a", "b")
	db.Sync()
	db.Close()

	tmp := filepath.Join(dir, ckptName(99)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	h2, db2 := openHeap(t, testOpts(dir))
	defer db2.Close()
	v, _ := db2.Binding("kv:test")
	mp2 := hds.OpenMap(h2, v)
	if got, ok := get(t, h2, mp2, "a"); !ok || got != "b" {
		t.Fatalf("a = (%q, %v)", got, ok)
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale .tmp survived a checkpoint: %v", err)
	}
}

// TestDurableBackgroundCheckpoints: the CheckpointEvery loop runs and
// the DB stays consistent underneath it.
func TestDurableBackgroundCheckpoints(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts(dir)
	opts.CheckpointEvery = 5 * time.Millisecond
	h, db := openHeap(t, opts)
	mp := hds.NewMap(h)
	db.Bind("kv:test", mp.VSID())
	deadline := time.Now().Add(200 * time.Millisecond)
	i := 0
	for time.Now().Before(deadline) {
		set(t, h, mp, fmt.Sprintf("k%d", i%32), fmt.Sprintf("v%d", i))
		i++
		if db.Stats().Checkpoints >= 2 && i > 64 {
			break
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Checkpoints == 0 {
		t.Skip("no background checkpoint completed in the window (slow host)")
	}
	db.Close()
	h2, db2 := openHeap(t, testOpts(dir))
	defer db2.Close()
	checkMachine(t, h2, "after background checkpoints")
}
