package durable

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// Recovery: rebuild the machine and segment map from the newest
// checkpoint plus the log tail. The whole pass is read-only on disk —
// nothing is written until the recovered log writer opens its first
// fresh segment — so a crash during recovery changes nothing and the
// next recovery replays identically (idempotency, pinned by test).
//
// Reference counts are not replayed from the log: lines are immutable
// and content-addressed, so every count is derivable — and the derived
// answer is the only correct one, because transient references held by
// operations in flight at crash time must not survive the restart. For
// each line reachable from a published root, the recovered count is its
// DAG in-degree (PLID- and compact-tagged words in reachable lines
// naming it) plus one per segment-map entry holding it as root — exactly
// the invariant store.CheckConsistency verifies. Logged-but-unreachable
// lines (in-flight garbage whose publish never happened) are dropped,
// which also reclaims their slots.
//
// PLIDs are positional — hds map slots are indexed by key-root PLIDs —
// so recovery reinstalls every line at its exact original PLID via
// store.InstallLine and refuses a machine whose geometry differs from
// the one that produced the data.

// recovered carries what Open needs to resume after a replay.
type recovered struct {
	nextLSN  uint64
	nextSeq  uint64
	gen      uint64
	bindings map[string]word.VSID
	lines    uint64 // live lines installed
	roots    uint64 // segment-map entries restored
	replayed uint64 // log records applied
}

// recoverState replays dir into m and sm (both must be empty).
func recoverState(dir string, m *core.Machine, sm *segmap.Map) (*recovered, error) {
	ck, err := latestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	geo := machineGeometry(m)
	lines := make(map[word.PLID]word.Content)
	roots := make(map[word.VSID]segmap.Entry)
	bindings := make(map[string]word.VSID)
	var startLSN uint64 = 1
	var gen uint64
	if ck != nil {
		if ck.geo != geo {
			return nil, fmt.Errorf("durable: checkpoint geometry %+v, machine %+v — the PLID space is positional, reopen with the original configuration", ck.geo, geo)
		}
		lines, roots, bindings = ck.lines, ck.roots, ck.bindings
		startLSN = ck.startLSN
		gen = ck.gen
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	rec := &recovered{
		nextLSN:  startLSN,
		nextSeq:  1,
		gen:      gen,
		bindings: bindings,
	}
	prevLSN := uint64(0)
	for si, seg := range segs {
		rec.nextSeq = seg.seq + 1
		b, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, err
		}
		if len(b) < walHeaderLen {
			// A segment created by a roll that crashed before its header
			// fsync completed; only valid as the final segment.
			if si != len(segs)-1 {
				return nil, fmt.Errorf("durable: truncated header in non-final segment %s", seg.path)
			}
			break
		}
		p := b[walHeaderLen:]
		first := true
		torn := false
		for len(p) > 0 {
			f, n, intact, err := parseFrame(p)
			if err != nil {
				return nil, err
			}
			if !intact {
				// Torn tail: only the final segment may end mid-frame — an
				// earlier segment was fully fsynced before its successor was
				// created, so a torn frame there is real corruption.
				if si != len(segs)-1 {
					return nil, fmt.Errorf("durable: torn frame in non-final segment %s", seg.path)
				}
				torn = true
				break
			}
			if first {
				if f.lsn != seg.startLSN {
					return nil, fmt.Errorf("durable: segment %s starts at lsn %d, header says %d", seg.path, f.lsn, seg.startLSN)
				}
				first = false
			}
			if prevLSN != 0 && f.lsn != prevLSN+1 {
				return nil, fmt.Errorf("durable: lsn gap %d -> %d in %s", prevLSN, f.lsn, seg.path)
			}
			prevLSN = f.lsn
			p = p[n:]
			if f.lsn < startLSN {
				continue // covered by the checkpoint
			}
			rec.replayed++
			switch f.kind {
			case recAlloc:
				lines[f.plid] = f.content // last-wins: slots are recycled
			case recFree:
				delete(lines, f.plid)
			case recPublish:
				roots[f.vsid] = segmap.Entry{
					Seg:   segment.Seg{Root: f.root, Height: int(f.height)},
					Flags: segmap.Flags(f.flags),
					Size:  f.size,
				}
			case recDelete:
				delete(roots, f.vsid)
			case recBind:
				bindings[f.label] = f.vsid
			}
		}
		if prevLSN >= rec.nextLSN {
			rec.nextLSN = prevLSN + 1
		}
		if torn {
			break
		}
	}

	if err := installState(m, sm, lines, roots, rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// installState rebuilds the store (exact PLIDs, derived counts) and the
// segment map from the replayed logical state.
func installState(m *core.Machine, sm *segmap.Map, lines map[word.PLID]word.Content, roots map[word.VSID]segmap.Entry, rec *recovered) error {
	plidBits := m.PLIDBits()
	indeg := make(map[word.PLID]uint64, len(lines))
	external := make(map[word.PLID]uint64, len(roots))
	reach := make(map[word.PLID]struct{}, len(lines))
	var stack []word.PLID
	for v, e := range roots {
		if e.Seg.Root == word.Zero {
			continue
		}
		if _, live := lines[e.Seg.Root]; !live {
			return fmt.Errorf("durable: root %#x of VSID %#x missing from the recovered line set", uint64(e.Seg.Root), uint64(v))
		}
		external[e.Seg.Root]++
		stack = append(stack, e.Seg.Root)
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, seen := reach[p]; seen {
			continue
		}
		reach[p] = struct{}{}
		c, live := lines[p]
		if !live {
			return fmt.Errorf("durable: reachable line %#x missing from the recovered line set", uint64(p))
		}
		for i := 0; i < int(c.N); i++ {
			var child word.PLID
			switch c.T[i] {
			case word.TagPLID:
				child = word.PLID(c.W[i])
			case word.TagCompact:
				child = word.CompactPLID(c.W[i], plidBits)
			default:
				continue
			}
			if child == word.Zero {
				continue
			}
			indeg[child]++
			if _, seen := reach[child]; !seen {
				stack = append(stack, child)
			}
		}
	}
	for p := range reach {
		rc := indeg[p] + external[p]
		if err := m.InstallLine(p, lines[p], rc); err != nil {
			return err
		}
	}
	m.FinishRestore()
	entries := make([]segmap.DumpEntry, 0, len(roots))
	for v, e := range roots {
		entries = append(entries, segmap.DumpEntry{V: v, E: e})
	}
	if err := sm.Restore(entries); err != nil {
		return err
	}
	rec.lines = uint64(len(reach))
	rec.roots = uint64(len(roots))
	return nil
}

func machineGeometry(m *core.Machine) geometry {
	cfg := m.Config()
	return geometry{
		lineBytes:  uint32(cfg.LineBytes),
		bucketBits: uint32(cfg.BucketBits),
		dataWays:   uint32(cfg.DataWays),
		plidBits:   uint32(m.PLIDBits()),
	}
}
