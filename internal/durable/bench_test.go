package durable

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hds"
	"repro/internal/segmap"
	"repro/internal/word"
)

// benchDB opens a DB over a fresh heap for benchmarking.
func benchDB(b *testing.B, opts Options) (*hds.Heap, *DB) {
	b.Helper()
	h := hds.NewHeap(core.TestConfig())
	db, err := Open(opts, h.M, h.SM)
	if err != nil {
		b.Fatal(err)
	}
	return h, db
}

// BenchmarkDurableGroupCommit measures the headline group-commit claim:
// concurrent writers each appending one publish record and waiting for
// durability, with the bounded flush window letting one fsync absorb the
// whole window's records. Compare against BenchmarkDurablePerWriteFsync.
func BenchmarkDurableGroupCommit(b *testing.B) {
	for _, par := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("writers=%d", par), func(b *testing.B) {
			_, db := benchDB(b, Options{Dir: b.TempDir(), FlushWindow: 500 * time.Microsecond})
			defer db.Close()
			e := segmap.Entry{Size: 64}
			b.SetParallelism(par)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					db.JournalPublish(word.VSID(3), e)
					if err := db.Sync(); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			st := db.Stats()
			if st.Appends > 0 {
				b.ReportMetric(float64(st.Fsyncs)/float64(st.Appends), "fsyncs/op")
				b.ReportMetric(float64(st.MaxGroupSize), "max-group")
			}
		})
	}
}

// BenchmarkDurablePerWriteFsync is the baseline the group commit is
// judged against: one writer, zero aggregation window — every committed
// record pays its own fsync, the classic write-ahead-log lower bound.
func BenchmarkDurablePerWriteFsync(b *testing.B) {
	_, db := benchDB(b, Options{Dir: b.TempDir(), FlushWindow: 1})
	defer db.Close()
	e := segmap.Entry{Size: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.JournalPublish(word.VSID(3), e)
		if err := db.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := db.Stats()
	if st.Appends > 0 {
		b.ReportMetric(float64(st.Fsyncs)/float64(st.Appends), "fsyncs/op")
	}
}

// BenchmarkDurableIngest measures the end-to-end overhead durability
// adds to the map write path (journal encode per line commit + publish,
// sync per batch).
func BenchmarkDurableIngest(b *testing.B) {
	h, db := benchDB(b, Options{Dir: b.TempDir(), FlushWindow: 500 * time.Microsecond})
	defer db.Close()
	mp := hds.NewMap(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ks := hds.NewString(h, []byte(fmt.Sprintf("key-%04d", i%512)))
		vs := hds.NewString(h, []byte(fmt.Sprintf("value-%d-%d", i, i*7)))
		if err := mp.Set(ks, vs); err != nil {
			b.Fatal(err)
		}
		ks.Release(h)
		vs.Release(h)
		if err := db.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryCold measures a cold restart: checkpoint + log tail
// into a fresh machine, the metric behind the checkpoint-interval
// tradeoff in BENCH_PR10.json. The replay is read-only, so one on-disk
// state serves every iteration.
func BenchmarkRecoveryCold(b *testing.B) {
	for _, keys := range []int{256, 2048} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			dir := b.TempDir()
			h, db := benchDB(b, Options{Dir: dir, FlushWindow: 1})
			mp := hds.NewMap(h)
			db.Bind("kv:bench", mp.VSID())
			for i := 0; i < keys; i++ {
				ks := hds.NewString(h, []byte(fmt.Sprintf("key-%06d", i)))
				vs := hds.NewString(h, []byte(fmt.Sprintf("value-%06d-%d", i, i*13)))
				if err := mp.Set(ks, vs); err != nil {
					b.Fatal(err)
				}
				ks.Release(h)
				vs.Release(h)
			}
			if err := db.Sync(); err != nil {
				b.Fatal(err)
			}
			// Half the state behind a checkpoint, half in the log tail —
			// the steady-state shape between checkpoint intervals.
			if err := db.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < keys/2; i++ {
				ks := hds.NewString(h, []byte(fmt.Sprintf("key-%06d", i)))
				vs := hds.NewString(h, []byte(fmt.Sprintf("tail-%06d", i)))
				if err := mp.Set(ks, vs); err != nil {
					b.Fatal(err)
				}
				ks.Release(h)
				vs.Release(h)
			}
			db.Sync()
			db.Close()
			lines := h.M.LiveLines()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := core.NewMachine(core.TestConfig())
				sm := segmap.New(m)
				if _, err := recoverState(dir, m, sm); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(lines), "lines")
		})
	}
}
