package durable

import (
	"fmt"
	"hash/crc32"

	"repro/internal/word"
)

// Log record framing. Every mutation the in-memory stack publishes is
// one CRC-framed frame in the append-only log:
//
//	[len u32][crc u32][lsn u64][kind u8][payload]
//
// len counts the bytes after the crc field (lsn + kind + payload); crc
// is IEEE CRC-32 over those same bytes. All integers are little-endian.
// A reader stops at the first frame whose length or CRC does not check
// out — the torn tail. That is not just tolerance but a correctness
// rule: writes behind an incomplete fsync may persist out of order, so
// an intact frame after a torn one must be dropped too (it was never
// acknowledged — had its fsync completed, every earlier write would be
// durable as well).
//
// Record kinds mirror the three mutation sources plus label bindings:
//
//	recAlloc   plid u64, n u8, n × (tag u8, word u64)   — line commit
//	recFree    plid u64                                 — terminal RC delta
//	recPublish vsid u64, root u64, height u32, flags u8, size u64
//	recDelete  vsid u64
//	recBind    vsid u64, len u16, label bytes
const (
	recAlloc byte = iota + 1
	recFree
	recPublish
	recDelete
	recBind
)

// frameOverhead is the fixed byte cost before the payload.
const frameOverhead = 4 + 4 + 8 + 1

// maxFrameLen bounds a frame's post-crc length; anything larger in a
// length field is corruption, not a record.
const maxFrameLen = 1 << 20

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func getU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func getU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// beginFrame reserves the len+crc header and appends lsn+kind, returning
// the buffer and the header offset for endFrame.
func beginFrame(buf []byte, lsn uint64, kind byte) ([]byte, int) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = appendU64(buf, lsn)
	buf = append(buf, kind)
	return buf, start
}

// endFrame back-fills the length and CRC of the frame begun at start.
func endFrame(buf []byte, start int) []byte {
	body := buf[start+8:]
	n := uint32(len(body))
	buf[start] = byte(n)
	buf[start+1] = byte(n >> 8)
	buf[start+2] = byte(n >> 16)
	buf[start+3] = byte(n >> 24)
	c := crc32.ChecksumIEEE(body)
	buf[start+4] = byte(c)
	buf[start+5] = byte(c >> 8)
	buf[start+6] = byte(c >> 16)
	buf[start+7] = byte(c >> 24)
	return buf
}

func appendAllocFrame(buf []byte, lsn uint64, p word.PLID, c word.Content) []byte {
	buf, start := beginFrame(buf, lsn, recAlloc)
	buf = appendU64(buf, uint64(p))
	buf = append(buf, c.N)
	for i := 0; i < int(c.N); i++ {
		buf = append(buf, byte(c.T[i]))
		buf = appendU64(buf, c.W[i])
	}
	return endFrame(buf, start)
}

func appendFreeFrame(buf []byte, lsn uint64, p word.PLID) []byte {
	buf, start := beginFrame(buf, lsn, recFree)
	buf = appendU64(buf, uint64(p))
	return endFrame(buf, start)
}

func appendPublishFrame(buf []byte, lsn uint64, v word.VSID, root word.PLID, height uint32, flags uint8, size uint64) []byte {
	buf, start := beginFrame(buf, lsn, recPublish)
	buf = appendU64(buf, uint64(v))
	buf = appendU64(buf, uint64(root))
	buf = appendU32(buf, height)
	buf = append(buf, flags)
	buf = appendU64(buf, size)
	return endFrame(buf, start)
}

func appendDeleteFrame(buf []byte, lsn uint64, v word.VSID) []byte {
	buf, start := beginFrame(buf, lsn, recDelete)
	buf = appendU64(buf, uint64(v))
	return endFrame(buf, start)
}

func appendBindFrame(buf []byte, lsn uint64, label string, v word.VSID) []byte {
	buf, start := beginFrame(buf, lsn, recBind)
	buf = appendU64(buf, uint64(v))
	buf = appendU16(buf, uint16(len(label)))
	buf = append(buf, label...)
	return endFrame(buf, start)
}

// frame is one decoded log record.
type frame struct {
	lsn  uint64
	kind byte
	// recAlloc
	plid    word.PLID
	content word.Content
	// recPublish / recDelete / recBind
	vsid   word.VSID
	root   word.PLID
	height uint32
	flags  uint8
	size   uint64
	label  string
}

// parseFrame decodes the frame at the head of b. It returns the decoded
// frame and the bytes consumed; ok=false marks a torn or corrupt head
// (the caller stops there). A structurally valid frame with a malformed
// payload returns an error: its CRC checked out, so the bytes were
// durable and the log is genuinely corrupt.
func parseFrame(b []byte) (f frame, n int, ok bool, err error) {
	if len(b) < 8 {
		return frame{}, 0, false, nil
	}
	ln := getU32(b)
	crc := getU32(b[4:])
	if ln < 9 || ln > maxFrameLen || len(b) < 8+int(ln) {
		return frame{}, 0, false, nil
	}
	body := b[8 : 8+ln]
	if crc32.ChecksumIEEE(body) != crc {
		return frame{}, 0, false, nil
	}
	f.lsn = getU64(body)
	f.kind = body[8]
	p := body[9:]
	bad := func() (frame, int, bool, error) {
		return frame{}, 0, false, fmt.Errorf("durable: malformed %d-byte record kind %d at lsn %d", ln, f.kind, f.lsn)
	}
	switch f.kind {
	case recAlloc:
		if len(p) < 9 {
			return bad()
		}
		f.plid = word.PLID(getU64(p))
		nW := int(p[8])
		p = p[9:]
		if nW > word.MaxWords || len(p) != nW*9 {
			return bad()
		}
		f.content.N = uint8(nW)
		for i := 0; i < nW; i++ {
			f.content.T[i] = word.Tag(p[0])
			f.content.W[i] = getU64(p[1:])
			p = p[9:]
		}
	case recFree:
		if len(p) != 8 {
			return bad()
		}
		f.plid = word.PLID(getU64(p))
	case recPublish:
		if len(p) != 8+8+4+1+8 {
			return bad()
		}
		f.vsid = word.VSID(getU64(p))
		f.root = word.PLID(getU64(p[8:]))
		f.height = getU32(p[16:])
		f.flags = p[20]
		f.size = getU64(p[21:])
	case recDelete:
		if len(p) != 8 {
			return bad()
		}
		f.vsid = word.VSID(getU64(p))
	case recBind:
		if len(p) < 10 {
			return bad()
		}
		f.vsid = word.VSID(getU64(p))
		l := int(getU16(p[8:]))
		if len(p) != 10+l {
			return bad()
		}
		f.label = string(p[10:])
	default:
		return bad()
	}
	return f, 8 + int(ln), true, nil
}
