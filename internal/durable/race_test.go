package durable

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/hds"
)

// TestDurableConcurrentWritersFlusherReaders drives the full concurrent
// shape under the race detector: several map writers gating on Sync, the
// group-commit flusher, snapshot readers, and the background checkpoint
// loop, all against one DB. The reopened state must hold every writer's
// final values.
func TestDurableConcurrentWritersFlusherReaders(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Dir:             dir,
		FlushWindow:     200 * time.Microsecond,
		SegmentBytes:    32 << 10,
		CheckpointEvery: 2 * time.Millisecond,
	}
	h, db := openHeap(t, opts)
	mp := hds.NewMap(h)
	if err := db.Bind("kv:test", mp.VSID()); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const rounds = 40
	const keysPer = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ks := hds.NewString(h, []byte(fmt.Sprintf("w%d-k%d", w, r%keysPer)))
				vs := hds.NewString(h, []byte(fmt.Sprintf("w%d-r%d", w, r)))
				err := mp.Set(ks, vs)
				ks.Release(h)
				vs.Release(h)
				if err != nil {
					t.Errorf("writer %d: Set: %v", w, err)
					return
				}
				if err := db.Sync(); err != nil {
					t.Errorf("writer %d: Sync: %v", w, err)
					return
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for rd := 0; rd < 2; rd++ {
		rwg.Add(1)
		go func(rd int) {
			defer rwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ks := hds.NewString(h, []byte(fmt.Sprintf("w%d-k%d", i%writers, i%keysPer)))
				if v, ok := mp.Get(ks); ok {
					_ = v.Bytes(h)
					v.Release(h)
				}
				ks.Release(h)
			}
		}(rd)
	}

	wg.Wait()
	close(stop)
	rwg.Wait()
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	h2, db2 := openHeap(t, Options{Dir: dir, FlushWindow: 1})
	defer db2.Close()
	checkMachine(t, h2, "after concurrent run")
	v, ok := db2.Binding("kv:test")
	if !ok {
		t.Fatal("binding lost")
	}
	mp2 := hds.OpenMap(h2, v)
	for w := 0; w < writers; w++ {
		for k := 0; k < keysPer; k++ {
			// The last round touching key k is r = rounds-keysPer+k.
			want := fmt.Sprintf("w%d-r%d", w, rounds-keysPer+k)
			got, ok := get(t, h2, mp2, fmt.Sprintf("w%d-k%d", w, k))
			if !ok || got != want {
				t.Fatalf("w%d-k%d = (%q, %v), want %q", w, k, got, ok, want)
			}
		}
	}
}
