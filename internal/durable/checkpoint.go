package durable

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// Checkpoints. A checkpoint is one self-contained file —
// checkpoint-<gen>.ckpt — holding the store geometry, the label
// bindings, the segment map roots, and a manifest of every live line's
// content, anchored at a log position (startLSN): recovery loads the
// newest checkpoint and replays only the log tail at or after its
// anchor. Once a checkpoint lands, every log segment whose records all
// predate the anchor is dead weight and is truncated, along with older
// checkpoint generations.
//
// The snapshot is fuzzy: the log is rolled first (fixing startLSN),
// then the segment map and the store are iterated stripe by stripe
// under shared locks while traffic continues. Consistency argument: a
// journal append happens inside the critical section of the mutation it
// records and LSNs are assigned under the log mutex, so any mutation
// whose LSN is below startLSN completed its append before the roll —
// which means its critical section began before the roll and is
// therefore fully visible to an iteration that acquires the same lock
// afterwards. Mutations the iteration missed all have LSN >= startLSN
// and replay idempotently on top (alloc and publish are last-wins; free
// and delete remove).
//
// The file is written to a temp name, fsynced, renamed into place, and
// the directory fsynced — a crashed checkpoint leaves only a .tmp file
// that recovery ignores. Truncation runs strictly after the rename.
//
// Layout (little-endian):
//
//	magic u64, gen u64, startLSN u64
//	lineBytes u32, bucketBits u32, dataWays u32, plidBits u32
//	nBind u32 × { vsid u64, len u16, label }
//	nRoots u32 × { vsid u64, root u64, height u32, flags u8, size u64 }
//	lines: { 1 u8, plid u64, n u8, n × (tag u8, word u64) }…, 0 u8
//	crc u32 (IEEE over everything above), endMagic u32
const (
	ckptMagic    uint64 = 0x31504B43504D4348 // "HCMPCKP1"
	ckptEndMagic uint32 = 0x4B504331
)

func ckptName(gen uint64) string { return fmt.Sprintf("checkpoint-%016d.ckpt", gen) }

func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	gen, err := strconv.ParseUint(name[11:len(name)-5], 10, 64)
	return gen, err == nil
}

// crcWriter wraps a bufio.Writer, accumulating the running CRC.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	err error
}

func (cw *crcWriter) write(b []byte) {
	if cw.err != nil {
		return
	}
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, b)
	_, cw.err = cw.w.Write(b)
}

func (cw *crcWriter) u8(v uint8)   { cw.write([]byte{v}) }
func (cw *crcWriter) u16(v uint16) { cw.write(appendU16(nil, v)) }
func (cw *crcWriter) u32(v uint32) { cw.write(appendU32(nil, v)) }
func (cw *crcWriter) u64(v uint64) { cw.write(appendU64(nil, v)) }

// geometry pins the store shape a checkpoint (and its PLID space) was
// produced under; recovery refuses a mismatched machine.
type geometry struct {
	lineBytes  uint32
	bucketBits uint32
	dataWays   uint32
	plidBits   uint32
}

// writeCheckpoint dumps bindings + roots + the live-line manifest
// anchored at startLSN into checkpoint-<gen>.ckpt (atomically).
func (d *DB) writeCheckpoint(gen, startLSN uint64) (lines uint64, err error) {
	tmp := filepath.Join(d.dir, ckptName(gen)+".tmp")
	faultPoint()
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	cw := &crcWriter{w: bufio.NewWriterSize(f, 1<<20)}
	cw.u64(ckptMagic)
	cw.u64(gen)
	cw.u64(startLSN)
	cw.u32(d.geo.lineBytes)
	cw.u32(d.geo.bucketBits)
	cw.u32(d.geo.dataWays)
	cw.u32(d.geo.plidBits)

	d.mu.Lock()
	labels := make([]string, 0, len(d.bindings))
	for l := range d.bindings {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	binds := make([]word.VSID, len(labels))
	for i, l := range labels {
		binds[i] = d.bindings[l]
	}
	d.mu.Unlock()
	cw.u32(uint32(len(labels)))
	for i, l := range labels {
		cw.u64(uint64(binds[i]))
		cw.u16(uint16(len(l)))
		cw.write([]byte(l))
	}

	roots := d.sm.Dump()
	cw.u32(uint32(len(roots)))
	for _, de := range roots {
		cw.u64(uint64(de.V))
		cw.u64(uint64(de.E.Seg.Root))
		cw.u32(uint32(de.E.Seg.Height))
		cw.u8(uint8(de.E.Flags))
		cw.u64(de.E.Size)
	}

	faultPoint()
	var rec []byte
	d.m.ForEachLiveLine(func(p word.PLID, c word.Content, _ uint64) bool {
		lines++
		rec = rec[:0]
		rec = append(rec, 1)
		rec = appendU64(rec, uint64(p))
		rec = append(rec, c.N)
		for i := 0; i < int(c.N); i++ {
			rec = append(rec, byte(c.T[i]))
			rec = appendU64(rec, c.W[i])
		}
		cw.write(rec)
		return cw.err == nil
	})
	cw.u8(0)
	crc := cw.crc
	cw.u32(crc)
	cw.u32(ckptEndMagic)
	if cw.err != nil {
		return 0, cw.err
	}
	if err := cw.w.Flush(); err != nil {
		return 0, err
	}
	faultPoint()
	if err := f.Sync(); err != nil {
		return 0, err
	}
	if err := f.Close(); err != nil {
		f = nil
		return 0, err
	}
	f = nil
	faultPoint()
	if err := os.Rename(tmp, filepath.Join(d.dir, ckptName(gen))); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	faultPoint()
	if err := syncDir(d.dir); err != nil {
		return 0, err
	}
	return lines, nil
}

// checkpoint is a parsed checkpoint file.
type checkpoint struct {
	gen      uint64
	startLSN uint64
	geo      geometry
	bindings map[string]word.VSID
	roots    map[word.VSID]segmap.Entry
	lines    map[word.PLID]word.Content
}

// loadCheckpoint parses and validates one checkpoint file.
func loadCheckpoint(path string) (*checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	bad := func(why string) (*checkpoint, error) {
		return nil, fmt.Errorf("durable: checkpoint %s: %s", path, why)
	}
	if len(b) < 8+8+8+16+4+1+8 {
		return bad("truncated")
	}
	body, trailer := b[:len(b)-8], b[len(b)-8:]
	if getU32(trailer[4:]) != ckptEndMagic {
		return bad("missing end marker")
	}
	if crc32.ChecksumIEEE(body) != getU32(trailer) {
		return bad("CRC mismatch")
	}
	if getU64(body) != ckptMagic {
		return bad("bad magic")
	}
	ck := &checkpoint{
		gen:      getU64(body[8:]),
		startLSN: getU64(body[16:]),
		geo: geometry{
			lineBytes:  getU32(body[24:]),
			bucketBits: getU32(body[28:]),
			dataWays:   getU32(body[32:]),
			plidBits:   getU32(body[36:]),
		},
		bindings: make(map[string]word.VSID),
		roots:    make(map[word.VSID]segmap.Entry),
		lines:    make(map[word.PLID]word.Content),
	}
	p := body[40:]
	need := func(n int) bool {
		return len(p) >= n
	}
	if !need(4) {
		return bad("truncated bindings")
	}
	nBind := int(getU32(p))
	p = p[4:]
	for i := 0; i < nBind; i++ {
		if !need(10) {
			return bad("truncated binding")
		}
		v := word.VSID(getU64(p))
		l := int(getU16(p[8:]))
		p = p[10:]
		if !need(l) {
			return bad("truncated binding label")
		}
		ck.bindings[string(p[:l])] = v
		p = p[l:]
	}
	if !need(4) {
		return bad("truncated roots")
	}
	nRoots := int(getU32(p))
	p = p[4:]
	for i := 0; i < nRoots; i++ {
		if !need(29) {
			return bad("truncated root entry")
		}
		v := word.VSID(getU64(p))
		e := segmap.Entry{
			Seg:   segment.Seg{Root: word.PLID(getU64(p[8:])), Height: int(getU32(p[16:]))},
			Flags: segmap.Flags(p[20]),
			Size:  getU64(p[21:]),
		}
		ck.roots[v] = e
		p = p[29:]
	}
	for {
		if !need(1) {
			return bad("truncated manifest")
		}
		marker := p[0]
		p = p[1:]
		if marker == 0 {
			break
		}
		if marker != 1 || !need(9) {
			return bad("malformed manifest record")
		}
		plid := word.PLID(getU64(p))
		n := int(p[8])
		p = p[9:]
		if n > word.MaxWords || !need(n*9) {
			return bad("malformed manifest content")
		}
		var c word.Content
		c.N = uint8(n)
		for i := 0; i < n; i++ {
			c.T[i] = word.Tag(p[0])
			c.W[i] = getU64(p[1:])
			p = p[9:]
		}
		ck.lines[plid] = c
	}
	if len(p) != 0 {
		return bad("trailing bytes")
	}
	return ck, nil
}

// latestCheckpoint finds the newest valid checkpoint in dir (nil if
// none). Invalid or torn checkpoint files are skipped — only a rename
// makes a checkpoint real, so a bad one is a crashed write, not data
// loss — but an older valid generation behind it is still used.
func latestCheckpoint(dir string) (*checkpoint, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range ents {
		if gen, ok := parseCkptName(e.Name()); ok {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, gen := range gens {
		ck, err := loadCheckpoint(filepath.Join(dir, ckptName(gen)))
		if err == nil {
			return ck, nil
		}
	}
	return nil, nil
}

// truncateObsolete removes log segments whose records all predate
// startLSN and checkpoint generations older than gen. Failures are
// ignored: truncation is an optimization and a half-finished pass just
// leaves extra files for the next checkpoint.
func truncateObsolete(dir string, gen, startLSN uint64) {
	segs, err := listSegments(dir)
	if err != nil {
		return
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].startLSN <= startLSN {
			faultPoint()
			os.Remove(segs[i].path)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if g, ok := parseCkptName(e.Name()); ok && g < gen {
			faultPoint()
			os.Remove(filepath.Join(dir, e.Name()))
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
