package durable

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hds"
	"repro/internal/pool"
	"repro/internal/segmap"
	"repro/internal/word"
)

// Allocation pin for the journal append path: at steady state a line
// commit or root publish costs one frame encode into the reused log
// buffer under the mutex — zero heap allocations — so attaching
// durability does not un-pin the wave engines' allocation-free hot
// paths. Measured in discard mode so the flusher's I/O (which runs on
// its own goroutine anyway) is out of the picture. (Same regime as the
// segment wave pins: no -race, not parallel.)
func TestAllocDurableAppend(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation pins are meaningless under -race")
	}
	dir := t.TempDir()
	h := hds.NewHeap(core.TestConfig())
	db, err := Open(Options{Dir: dir, FlushWindow: 1}, h.M, h.SM)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.setDiscard(true)

	var c word.Content
	c.N = 2
	c.T[0], c.W[0] = word.TagRaw, 0x1111
	c.T[1], c.W[1] = word.TagPLID, 0x2222
	e := segmap.Entry{Size: 64}

	if n := testing.AllocsPerRun(200, func() {
		db.JournalAlloc(word.PLID(5), c)
	}); n != 0 {
		t.Fatalf("JournalAlloc allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		db.JournalFree(word.PLID(5))
	}); n != 0 {
		t.Fatalf("JournalFree allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		db.JournalPublish(word.VSID(3), e)
	}); n != 0 {
		t.Fatalf("JournalPublish allocates %.1f per op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		db.JournalDelete(word.VSID(3))
	}); n != 0 {
		t.Fatalf("JournalDelete allocates %.1f per op", n)
	}
}
