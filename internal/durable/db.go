// Package durable is the crash-consistent persistence tier under the
// HICAMP memory stack: an append-only line log (group-committed,
// CRC-framed), periodic checkpoints of the segment-map roots plus a
// live-line manifest, and recovery that rebuilds the store, reference
// counts, and segment map from checkpoint + log tail.
//
// Content addressing makes the log genuinely append-only: a line, once
// written, is never rewritten, so the only events are line allocation,
// terminal reclamation, root publishes, deletes, and label bindings.
// Writers never block on I/O — journal appends are a buffer copy under
// a mutex, and a single flusher fsyncs bounded windows of records
// (group commit) while readers proceed untouched. See DESIGN.md
// "Durability" for the formats and the crash-consistency argument.
package durable

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/segmap"
	"repro/internal/word"
)

// Options configures a DB.
type Options struct {
	// Dir is the data directory (created if absent).
	Dir string
	// FlushWindow bounds how long an append may sit unflushed. Larger
	// windows aggregate more records per fsync (higher throughput,
	// higher worst-case commit latency). 0 flushes as soon as the
	// flusher can run — one fsync per Sync for a lone writer, still
	// group-committed under concurrency. Default 2ms.
	FlushWindow time.Duration
	// SegmentBytes rolls the log to a new segment file past this size.
	// Default 64 MiB.
	SegmentBytes int64
	// CheckpointEvery, when positive, runs background checkpoints at
	// this interval. Checkpoints can always be taken manually.
	CheckpointEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.FlushWindow == 0 {
		o.FlushWindow = 2 * time.Millisecond
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 64 << 20
	}
	return o
}

// DurableStats is the persistence telemetry surfaced through
// HicampServer.DurableStats and hicampbench -exp durability.
type DurableStats struct {
	Appends         uint64        // records appended to the log
	LogBytes        uint64        // bytes written to log segments
	Fsyncs          uint64        // log fsyncs issued
	GroupCommits    uint64        // write+fsync batches (group commits)
	GroupedRecords  uint64        // records covered by those batches
	MaxGroupSize    uint64        // largest single group commit, records
	LogSegments     uint64        // segments opened over the DB's life
	DurableLSN      uint64        // highest LSN known stable
	AppendedLSN     uint64        // highest LSN assigned
	Checkpoints     uint64        // checkpoints completed
	CheckpointLast  time.Duration // duration of the most recent one
	CheckpointLines uint64        // manifest lines in the most recent one
	RecoveryTime    time.Duration // time spent in recovery at Open
	RecoveredLines  uint64        // live lines reinstalled at Open
	RecoveredRoots  uint64        // segment-map entries restored at Open
	ReplayedRecords uint64        // log records applied at Open
}

// DB is the write-ahead persistence layer attached beneath one machine +
// segment map pair. It implements store.Journal, segmap.Journal and
// core.Durability; Open wires all three.
type DB struct {
	dir string
	m   *core.Machine
	sm  *segmap.Map
	geo geometry
	lw  *logWriter

	mu       sync.Mutex // guards bindings
	bindings map[string]word.VSID

	ckptMu sync.Mutex // serializes checkpoints
	gen    uint64     // current checkpoint generation (under ckptMu)

	stCheckpoints   atomic.Uint64
	stCkptLast      atomic.Int64 // nanoseconds
	stCkptLines     atomic.Uint64
	recoveryTime    time.Duration
	recoveredLines  uint64
	recoveredRoots  uint64
	replayedRecords uint64

	stopCkpt chan struct{}
	ckptDone chan struct{}
	closed   atomic.Bool
}

// Open recovers dir into m and sm (which must be freshly constructed
// and empty), attaches the journals, and starts the group-commit
// flusher. On return the machine serves the recovered state and every
// new mutation is logged; callers gate write acknowledgements on Sync
// (or word.MemCaps.SyncDurable).
func Open(opts Options, m *core.Machine, sm *segmap.Map) (*DB, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("durable: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	t0 := time.Now()
	rec, err := recoverState(opts.Dir, m, sm)
	if err != nil {
		return nil, err
	}
	lw, err := newLogWriter(opts.Dir, opts.FlushWindow, opts.SegmentBytes, rec.nextSeq, rec.nextLSN)
	if err != nil {
		return nil, err
	}
	d := &DB{
		dir:             opts.Dir,
		m:               m,
		sm:              sm,
		geo:             machineGeometry(m),
		lw:              lw,
		bindings:        rec.bindings,
		gen:             rec.gen,
		recoveryTime:    time.Since(t0),
		recoveredLines:  rec.lines,
		recoveredRoots:  rec.roots,
		replayedRecords: rec.replayed,
	}
	m.SetLineJournal(d)
	sm.SetJournal(d)
	m.SetDurability(d)
	if opts.CheckpointEvery > 0 {
		d.stopCkpt = make(chan struct{})
		d.ckptDone = make(chan struct{})
		go d.checkpointLoop(opts.CheckpointEvery)
	}
	return d, nil
}

// JournalAlloc implements store.Journal: called under the line's lock,
// it encodes one alloc frame into the log buffer and returns. The
// encode is allocation-free at steady state (the buffer is reused by
// the double-buffer swap), which keeps the hot write path pinned.
func (d *DB) JournalAlloc(p word.PLID, c word.Content) {
	lw := d.lw
	lw.mu.Lock()
	lsn := lw.reserve()
	lw.buf = appendAllocFrame(lw.buf, lsn, p, c)
	lw.noteAppended()
	lw.mu.Unlock()
}

// JournalFree implements store.Journal.
func (d *DB) JournalFree(p word.PLID) {
	lw := d.lw
	lw.mu.Lock()
	lsn := lw.reserve()
	lw.buf = appendFreeFrame(lw.buf, lsn, p)
	lw.noteAppended()
	lw.mu.Unlock()
}

// JournalPublish implements segmap.Journal: called under the segment
// map's mutex, so the log records publishes in the order readers could
// observe them.
func (d *DB) JournalPublish(v word.VSID, e segmap.Entry) {
	lw := d.lw
	lw.mu.Lock()
	lsn := lw.reserve()
	lw.buf = appendPublishFrame(lw.buf, lsn, v, e.Seg.Root, uint32(e.Seg.Height), uint8(e.Flags), e.Size)
	lw.noteAppended()
	lw.mu.Unlock()
}

// JournalDelete implements segmap.Journal.
func (d *DB) JournalDelete(v word.VSID) {
	lw := d.lw
	lw.mu.Lock()
	lsn := lw.reserve()
	lw.buf = appendDeleteFrame(lw.buf, lsn, v)
	lw.noteAppended()
	lw.mu.Unlock()
}

// Bind durably associates a label with a VSID, so a restarted process
// can find its root maps again (VSIDs, like PLIDs, are positional).
// Rebinding a label overwrites it.
func (d *DB) Bind(label string, v word.VSID) error {
	if len(label) > 1<<16-1 {
		return fmt.Errorf("durable: label longer than 64KiB")
	}
	d.mu.Lock()
	d.bindings[label] = v
	d.mu.Unlock()
	lw := d.lw
	lw.mu.Lock()
	lsn := lw.reserve()
	lw.buf = appendBindFrame(lw.buf, lsn, label, v)
	lw.noteAppended()
	lw.mu.Unlock()
	return lw.Sync()
}

// Binding returns the VSID bound to label, if any.
func (d *DB) Binding(label string) (word.VSID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.bindings[label]
	return v, ok
}

// Sync implements core.Durability: it blocks until every mutation
// issued before the call is stable.
func (d *DB) Sync() error { return d.lw.Sync() }

// Enabled implements core.Durability.
func (d *DB) Enabled() bool { return !d.closed.Load() }

// Checkpoint writes a new checkpoint generation and truncates obsolete
// log segments and old generations. Safe to run concurrently with
// traffic (the snapshot is fuzzy; see checkpoint.go).
func (d *DB) Checkpoint() error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	t0 := time.Now()
	startLSN, err := d.lw.rollNow()
	if err != nil {
		return err
	}
	gen := d.gen + 1
	lines, err := d.writeCheckpoint(gen, startLSN)
	if err != nil {
		return err
	}
	d.gen = gen
	truncateObsolete(d.dir, gen, startLSN)
	d.stCheckpoints.Add(1)
	d.stCkptLast.Store(int64(time.Since(t0)))
	d.stCkptLines.Store(lines)
	return nil
}

func (d *DB) checkpointLoop(every time.Duration) {
	defer close(d.ckptDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.Checkpoint() // errors surface through the next Sync
		case <-d.stopCkpt:
			return
		}
	}
}

// Stats returns a snapshot of the persistence telemetry.
func (d *DB) Stats() DurableStats {
	lw := d.lw
	lw.mu.Lock()
	durable := lw.durableLSN
	appended := lw.nextLSN - 1
	lw.mu.Unlock()
	return DurableStats{
		Appends:         lw.stAppends.Load(),
		LogBytes:        lw.stLogBytes.Load(),
		Fsyncs:          lw.stFsyncs.Load(),
		GroupCommits:    lw.stFlushes.Load(),
		GroupedRecords:  lw.stFlushRec.Load(),
		MaxGroupSize:    lw.stMaxBatch.Load(),
		LogSegments:     lw.stRolls.Load(),
		DurableLSN:      durable,
		AppendedLSN:     appended,
		Checkpoints:     d.stCheckpoints.Load(),
		CheckpointLast:  time.Duration(d.stCkptLast.Load()),
		CheckpointLines: d.stCkptLines.Load(),
		RecoveryTime:    d.recoveryTime,
		RecoveredLines:  d.recoveredLines,
		RecoveredRoots:  d.recoveredRoots,
		ReplayedRecords: d.replayedRecords,
	}
}

// Close flushes the log, detaches the journals and stops background
// work. The machine keeps serving (now non-durably); a clean shutdown
// typically checkpoints first so the next Open recovers instantly.
func (d *DB) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	if d.stopCkpt != nil {
		close(d.stopCkpt)
		<-d.ckptDone
	}
	d.m.SetLineJournal(nil)
	d.sm.SetJournal(nil)
	d.m.SetDurability(nil)
	return d.lw.Close()
}

// setDiscard is the allocation-pin test hook: appended frames are
// dropped at encode time so the measured path is the encode alone.
func (d *DB) setDiscard(on bool) {
	d.lw.mu.Lock()
	d.lw.discard = on
	d.lw.mu.Unlock()
}
