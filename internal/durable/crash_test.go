package durable

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hds"
)

// Crash-injection harness. The sweep re-execs this test binary as a
// child running TestHelperCrashWorkload with DURABLE_FAULT_KILL=N: the
// child dies hard (os.Exit, no cleanup) at the Nth crash-relevant I/O
// step. The parent then recovers the directory in-process and checks the
// three durability invariants:
//
//	(a) acked state readable byte-for-byte — the recovered map equals
//	    the deterministic workload's model after s ops for some single
//	    s >= the highest acknowledged op,
//	(b) no unacked publish visible — that same s <= the highest op the
//	    child had started (and per-key nothing newer than what was
//	    attempted can appear),
//	(c) recovered refcounts equal an independent live-walk —
//	    store.CheckConsistency with the segment-map roots as the only
//	    external references.
//
// The kill range is calibrated by one counting run (DURABLE_FAULT_COUNT)
// that reports how many fault points a full workload crosses.

const (
	crashOps     = 120
	crashKeys    = 7
	crashLabel   = "crash:kv"
	crashEnvDir  = "DURABLE_CRASH_DIR"
	crashEnvMode = "DURABLE_CRASH_CHILD"
)

// crashOp is the shared deterministic workload: op seq (1-based) either
// binds or deletes one of crashKeys keys.
func crashOp(seq int) (key, val string, del bool) {
	key = fmt.Sprintf("key-%02d", seq%crashKeys)
	if seq%11 == 0 {
		return key, "", true
	}
	val = strings.Repeat(fmt.Sprintf("v%04d.", seq), 1+seq%5)
	return key, val, false
}

// crashModel is the expected map contents after the first s ops.
func crashModel(s int) map[string]string {
	m := make(map[string]string)
	for seq := 1; seq <= s; seq++ {
		k, v, del := crashOp(seq)
		if del {
			delete(m, k)
		} else {
			m[k] = v
		}
	}
	return m
}

// TestHelperCrashWorkload is the child process body; it only runs when
// re-execed by the sweep with the env mode set.
func TestHelperCrashWorkload(t *testing.T) {
	if os.Getenv(crashEnvMode) != "workload" {
		t.Skip("helper process body")
	}
	dir := os.Getenv(crashEnvDir)
	h := hds.NewHeap(core.TestConfig())
	db, err := Open(Options{Dir: dir, FlushWindow: 1, SegmentBytes: 8 << 10}, h.M, h.SM)
	if err != nil {
		t.Fatalf("child Open: %v", err)
	}
	mp := hds.NewMap(h)
	if err := db.Bind(crashLabel, mp.VSID()); err != nil {
		t.Fatalf("child Bind: %v", err)
	}
	for seq := 1; seq <= crashOps; seq++ {
		k, v, dl := crashOp(seq)
		fmt.Printf("TRY %d\n", seq)
		ks := hds.NewString(h, []byte(k))
		if dl {
			if err := mp.Delete(ks); err != nil {
				t.Fatalf("child Delete: %v", err)
			}
		} else {
			vs := hds.NewString(h, []byte(v))
			if err := mp.Set(ks, vs); err != nil {
				t.Fatalf("child Set: %v", err)
			}
			vs.Release(h)
		}
		ks.Release(h)
		if err := db.Sync(); err != nil {
			t.Fatalf("child Sync: %v", err)
		}
		fmt.Printf("ACK %d\n", seq)
		if seq%20 == 0 {
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("child Checkpoint: %v", err)
			}
		}
	}
	db.Close()
	fmt.Printf("POINTS %d\n", FaultPointsCrossed())
}

// TestHelperReopen is the child body for crash-during-recovery: it
// opens an existing directory (replaying it) and exits.
func TestHelperReopen(t *testing.T) {
	if os.Getenv(crashEnvMode) != "reopen" {
		t.Skip("helper process body")
	}
	dir := os.Getenv(crashEnvDir)
	h := hds.NewHeap(core.TestConfig())
	db, err := Open(Options{Dir: dir, FlushWindow: 1}, h.M, h.SM)
	if err != nil {
		t.Fatalf("reopen child: %v", err)
	}
	db.Close()
}

// runCrashChild re-execs the test binary. extraEnv arms the fault
// registry; returns stdout and the exit code.
func runCrashChild(t *testing.T, test, dir string, mode string, extraEnv ...string) ([]byte, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^"+test+"$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		crashEnvMode+"="+mode,
		crashEnvDir+"="+dir,
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	out, err := cmd.Output()
	if err == nil {
		return out, 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return append(out, ee.Stderr...), ee.ExitCode()
	}
	t.Fatalf("child %s: %v", test, err)
	return nil, -1
}

// parseChildLog extracts the highest TRY and ACK sequence numbers.
func parseChildLog(t *testing.T, out []byte) (tried, acked int) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) != 2 {
			continue
		}
		n, err := strconv.Atoi(f[1])
		if err != nil {
			continue
		}
		switch f[0] {
		case "TRY":
			if n > tried {
				tried = n
			}
		case "ACK":
			if n > acked {
				acked = n
			}
		}
	}
	return tried, acked
}

// verifyCrashDir recovers dir in-process and checks the invariants
// against the child's TRY/ACK trace.
func verifyCrashDir(t *testing.T, dir string, tried, acked int, kill int64) {
	t.Helper()
	h := hds.NewHeap(core.TestConfig())
	db, err := Open(Options{Dir: dir, FlushWindow: 1}, h.M, h.SM)
	if err != nil {
		t.Fatalf("kill=%d: recovery failed: %v", kill, err)
	}
	defer db.Close()

	// (c) refcounts: derived counts must equal the store's own
	// independent audit with roots as the only external refs.
	if err := h.M.CheckConsistency(externalRefs(h.SM)); err != nil {
		t.Fatalf("kill=%d: consistency after recovery: %v", kill, err)
	}

	v, ok := db.Binding(crashLabel)
	if !ok {
		if acked > 0 {
			t.Fatalf("kill=%d: binding lost after %d acked ops", kill, acked)
		}
		return
	}
	mp := hds.OpenMap(h, v)
	got := make(map[string]string)
	for i := 0; i < crashKeys; i++ {
		k := fmt.Sprintf("key-%02d", i)
		if val, ok := get(t, h, mp, k); ok {
			got[k] = val
		}
	}
	// (a)+(b): the recovered version must be the model after exactly s
	// ops for some acked <= s <= tried. The child is a single writer, so
	// tried <= acked+1 and there are at most two candidates.
	for s := acked; s <= tried; s++ {
		if mapsEqual(got, crashModel(s)) {
			return
		}
	}
	t.Fatalf("kill=%d: recovered state matches no prefix in [%d,%d]: got %v",
		kill, acked, tried, got)
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestDurableCrashSweep is the main harness: calibrate, then kill the
// workload at random fault points and verify every recovery.
func TestDurableCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep spawns ~50 child processes")
	}
	// Calibration: count the fault points a clean run crosses.
	calDir := t.TempDir()
	out, code := runCrashChild(t, "TestHelperCrashWorkload", calDir, "workload", "DURABLE_FAULT_COUNT=1")
	if code != 0 {
		t.Fatalf("calibration child exited %d:\n%s", code, out)
	}
	points := int64(0)
	for _, line := range strings.Split(string(out), "\n") {
		if n, ok := strings.CutPrefix(line, "POINTS "); ok {
			p, err := strconv.ParseInt(strings.TrimSpace(n), 10, 64)
			if err != nil {
				t.Fatalf("bad POINTS line %q", line)
			}
			points = p
		}
	}
	if points < 100 {
		t.Fatalf("calibration crossed only %d fault points — registry detached?", points)
	}
	t.Logf("calibrated: %d fault points per clean run", points)

	const sweep = 50
	rng := rand.New(rand.NewSource(0x44425231))
	for i := 0; i < sweep; i++ {
		kill := 1 + rng.Int63n(points)
		dir := t.TempDir()
		out, code := runCrashChild(t, "TestHelperCrashWorkload", dir, "workload",
			fmt.Sprintf("DURABLE_FAULT_KILL=%d", kill))
		if code != FaultExitCode && code != 0 {
			t.Fatalf("kill=%d: child exited %d (want %d or clean):\n%s", kill, code, FaultExitCode, out)
		}
		tried, acked := parseChildLog(t, out)
		verifyCrashDir(t, dir, tried, acked, kill)
	}
}

// TestDurableCrashDuringRecovery: kill a process while it is reopening
// an existing directory — recovery is read-only until the fresh log
// segment opens, so a second recovery must see everything.
func TestDurableCrashDuringRecovery(t *testing.T) {
	dir := t.TempDir()
	// Build real state: a clean full workload run (checkpoint + tail).
	out, code := runCrashChild(t, "TestHelperCrashWorkload", dir, "workload")
	if code != 0 {
		t.Fatalf("workload child exited %d:\n%s", code, out)
	}

	// The reopen child's first fault points are openSegment's (recovery
	// itself writes nothing); kill at each of the first few.
	for kill := int64(1); kill <= 3; kill++ {
		out, code := runCrashChild(t, "TestHelperReopen", dir, "reopen",
			fmt.Sprintf("DURABLE_FAULT_KILL=%d", kill))
		if code != FaultExitCode && code != 0 {
			t.Fatalf("reopen kill=%d: exited %d:\n%s", kill, code, out)
		}
	}

	// After repeated interrupted recoveries the full workload state must
	// still be there.
	verifyCrashDir(t, dir, crashOps, crashOps, -1)
}
