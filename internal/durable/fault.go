package durable

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
)

// Fault-point registry for the crash-injection harness. Every I/O step
// that matters for crash consistency — log writes, fsyncs, segment
// rolls, checkpoint writes, renames, truncation deletes — crosses a
// fault point. A test re-execs the binary as a child process with
// DURABLE_FAULT_KILL=N in the environment; the child exits hard (no
// deferred cleanup, mimicking a crash) at the Nth point crossed. With
// DURABLE_FAULT_COUNT set instead, points are only counted, so the
// harness can calibrate the sweep range by running the workload once to
// completion and reading FaultPointsCrossed.
//
// The registry is process-global and armed once at init from the
// environment: fault points sit on hot paths (group-commit flushes) and
// must cost one predictable branch when disarmed.

// FaultExitCode is the child's exit code at an injected crash,
// distinguishable from ordinary test failures.
const FaultExitCode = 86

var (
	faultArmed    atomic.Bool
	faultCounting atomic.Bool
	faultRemain   atomic.Int64
	faultCrossed  atomic.Int64
)

func init() {
	if v := os.Getenv("DURABLE_FAULT_KILL"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "durable: bad DURABLE_FAULT_KILL %q\n", v)
			os.Exit(2)
		}
		faultRemain.Store(n)
		faultArmed.Store(true)
	}
	if os.Getenv("DURABLE_FAULT_COUNT") != "" {
		faultCounting.Store(true)
	}
}

// FaultPointsCrossed reports how many fault points this process has
// crossed while DURABLE_FAULT_COUNT is set.
func FaultPointsCrossed() int64 { return faultCrossed.Load() }

// faultPoint is crossed at every crash-relevant I/O step.
func faultPoint() {
	if faultCounting.Load() {
		faultCrossed.Add(1)
		return
	}
	if !faultArmed.Load() {
		return
	}
	if faultRemain.Add(-1) == 0 {
		os.Exit(FaultExitCode)
	}
}
