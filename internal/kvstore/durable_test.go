package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
)

// TestDurableServerRestart round-trips a server through its data
// directory: string keys on the root map, tenant keys on their own
// VSIDs, chunked blobs, and deletes all survive a close/reopen, and the
// restarted server keeps accepting writes on the re-adopted maps.
func TestDurableServerRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *HicampServer {
		s, err := NewHicampServerOpts(core.TestConfig(), ServerOptions{DataDir: dir, FlushWindow: 1})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := open()
	if !s.Durable() {
		t.Fatal("server with DataDir is not durable")
	}
	var wb Batch
	for i := 0; i < 24; i++ {
		wb = wb.Set([]byte(fmt.Sprintf("dk-%02d", i)), []byte(fmt.Sprintf("dv-%02d", i)))
	}
	wb = wb.Set([]byte("acme/k"), []byte("tenant-acme")).
		Set([]byte("beta/k"), []byte("tenant-beta")).
		Del([]byte("dk-03"))
	if err := s.Write(wb); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete([]byte("dk-05")); err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("blob payload, chunked and deduplicated. "), 600)
	if err := s.BlobPut([]byte("img"), blob); err != nil {
		t.Fatal(err)
	}
	if err := s.BlobPut([]byte("acme/img"), blob); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A post-checkpoint tail, replayed from the log on reopen.
	if err := s.Set([]byte("tail-key"), []byte("tail-value")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := open()
	defer r.Close()
	ds := r.DurableStats()
	if ds.RecoveredLines == 0 || ds.RecoveredRoots == 0 {
		t.Fatalf("recovery stats empty: %+v", ds)
	}
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("dk-%02d", i)
		v, ok := r.Get([]byte(key))
		if i == 3 || i == 5 {
			if ok {
				t.Fatalf("deleted key %s resurrected as %q", key, v)
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("dv-%02d", i) {
			t.Fatalf("Get(%s) = %q,%v after restart", key, v, ok)
		}
	}
	for key, want := range map[string]string{
		"acme/k": "tenant-acme", "beta/k": "tenant-beta", "tail-key": "tail-value",
	} {
		if v, ok := r.Get([]byte(key)); !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q,%v after restart, want %q", key, v, ok, want)
		}
	}
	for _, key := range []string{"img", "acme/img"} {
		if v, ok := r.BlobGet([]byte(key)); !ok || !bytes.Equal(v, blob) {
			t.Fatalf("BlobGet(%s) after restart: found=%v len=%d want %d", key, ok, len(v), len(blob))
		}
	}
	// Tenant isolation survives: re-adopted maps, not root fallbacks.
	if r.NamespaceFor([]byte("acme/k")) == r.Map() {
		t.Fatal("tenant map fell back to root after restart")
	}
	// The re-adopted maps still take writes that persist further.
	if err := r.Set([]byte("acme/k2"), []byte("second-life")); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := open()
	defer r2.Close()
	if v, ok := r2.Get([]byte("acme/k2")); !ok || string(v) != "second-life" {
		t.Fatalf("second-generation write lost: %q,%v", v, ok)
	}
	if v, ok := r2.Get([]byte("tail-key")); !ok || string(v) != "tail-value" {
		t.Fatalf("tail-key lost in second restart: %q,%v", v, ok)
	}
}

// TestMemoryServerDurableSurface pins the memory-only server's durable
// surface: not durable, zero stats, and Sync/Checkpoint/Close no-ops.
func TestMemoryServerDurableSurface(t *testing.T) {
	s := NewHicampServer(core.TestConfig())
	if s.Durable() {
		t.Fatal("memory-only server claims durability")
	}
	if ds := s.DurableStats(); ds.Appends != 0 || ds.RecoveredLines != 0 {
		t.Fatalf("memory-only DurableStats = %+v", ds)
	}
	if err := s.AckDurable(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}
