package kvstore

import (
	"bytes"
	"fmt"
	"testing"
)

// TestDeprecatedBatchWrappers keeps the one-PR compatibility shims
// honest: each must behave exactly like the Batch verb it forwards to.
// This file and compat.go are the only call sites the repo-root shim
// guard admits.
func TestDeprecatedBatchWrappers(t *testing.T) {
	s := NewHicampServer(testCfg())
	keys := make([]string, 12)
	vals := make([][]byte, 12)
	for i := range keys {
		keys[i] = fmt.Sprintf("compat-%02d", i)
		vals[i] = []byte(fmt.Sprintf("val-%02d", i))
	}
	if err := s.SetMany(keys, vals); err != nil {
		t.Fatal(err)
	}
	req := [][]byte{[]byte(keys[2]), []byte("compat-missing"), []byte(keys[9])}
	got, found := s.GetMany(req)
	wantFound := []bool{true, false, true}
	for i := range req {
		if found[i] != wantFound[i] {
			t.Fatalf("GetMany found[%d] = %v, want %v", i, found[i], wantFound[i])
		}
		if found[i] && !bytes.Equal(got[i], []byte("val-"+string(req[i][7:]))) {
			t.Fatalf("GetMany[%d] = %q", i, got[i])
		}
	}
	if out, ok := s.GetMany(nil); out != nil || ok != nil {
		t.Fatal("empty GetMany must return nil slices")
	}
	if err := s.DeleteMany([][]byte{[]byte(keys[2]), []byte(keys[3])}); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		_, ok := s.Get([]byte(k))
		if want := i != 2 && i != 3; ok != want {
			t.Fatalf("after DeleteMany, Get(%s) = %v, want %v", k, ok, want)
		}
	}
}
