package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

func testCfg() core.Config {
	return core.Config{LineBytes: 16, BucketBits: 14, DataWays: 12, CacheLines: 4096, CacheWays: 16}
}

func TestHicampGetSetDelete(t *testing.T) {
	s := NewHicampServer(testCfg())
	if _, ok := s.Get([]byte("missing")); ok {
		t.Fatal("empty store returned a value")
	}
	if err := s.Set([]byte("k1"), []byte("value number one")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get([]byte("k1"))
	if !ok || string(v) != "value number one" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	if err := s.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get([]byte("k1")); ok {
		t.Fatal("deleted key still readable")
	}
}

func TestHicampOverwriteAndDedup(t *testing.T) {
	s := NewHicampServer(testCfg())
	s.Set([]byte("a"), []byte("shared value body stored once thanks to dedup"))
	linesAfterFirst := s.Heap.M.LiveLines()
	s.Set([]byte("b"), []byte("shared value body stored once thanks to dedup"))
	added := s.Heap.M.LiveLines() - linesAfterFirst
	// Second identical value: only key lines + map path lines are new.
	if added > linesAfterFirst/2 {
		t.Fatalf("identical value re-stored %d new lines (had %d)", added, linesAfterFirst)
	}
	va, _ := s.Get([]byte("a"))
	vb, _ := s.Get([]byte("b"))
	if !bytes.Equal(va, vb) {
		t.Fatal("values differ")
	}
}

func TestHicampConcurrentClients(t *testing.T) {
	// §5.1: client threads access the map directly; snapshot isolation
	// keeps readers interference-free while writers merge-update.
	s := NewHicampServer(testCfg())
	for i := 0; i < 20; i++ {
		s.Set([]byte(fmt.Sprintf("seed-%d", i)), []byte(fmt.Sprintf("seed value %d", i)))
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reader, err := s.OpenReader()
			if err != nil {
				t.Error(err)
				return
			}
			defer reader.Close()
			for i := 0; i < 40; i++ {
				if g%2 == 0 {
					key := fmt.Sprintf("seed-%d", i%20)
					if v, ok := s.GetVia(reader, []byte(key)); ok {
						if want := fmt.Sprintf("seed value %d", i%20); string(v) != want {
							t.Errorf("get %s = %q", key, v)
							return
						}
					}
				} else {
					if err := s.Set([]byte(fmt.Sprintf("w%d-%d", g, i)), []byte("new")); err != nil {
						t.Errorf("set: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Heap.M.CheckConsistency(nil); err == nil {
		// The map itself holds refs; CheckConsistency(nil) must fail.
		// (We only assert it does not panic; full balance is covered in
		// the hds tests.)
		t.Log("consistency check unexpectedly clean (map holds refs)")
	}
}

func TestConvServerTrafficShape(t *testing.T) {
	s := NewConvServer(16, 1024)
	for i := 0; i < 200; i++ {
		s.Set(fmt.Sprintf("key-%03d", i), 1000)
	}
	s.Space.Flush()
	base := s.Space.Stats()
	if base.DRAMWrites == 0 || base.DRAMReads == 0 {
		t.Fatalf("preload produced no DRAM traffic: %+v", base)
	}
	// A get of a cached-hot item should cost little extra DRAM.
	for i := 0; i < 50; i++ {
		if !s.Get("key-000") {
			t.Fatal("hot key missing")
		}
	}
	warm := s.Space.Stats()
	perGet := float64(warm.DRAMReads-base.DRAMReads) / 50
	// 1000-byte value at 16-byte lines is ~63 lines; the first get pulls
	// them, later gets hit cache. Average must be well under 2 passes.
	if perGet > 150 {
		t.Fatalf("hot get costs %.0f DRAM reads; caching broken", perGet)
	}
	if !s.Delete("key-000") {
		t.Fatal("delete failed")
	}
	if s.Get("key-000") {
		t.Fatal("deleted key still present")
	}
}

func TestConvSlabReuse(t *testing.T) {
	s := NewConvServer(16, 64)
	s.Set("a", 500)
	it := s.items["a"]
	s.Delete("a")
	s.Set("b", 500) // same size class: must reuse the freed slab chunk
	if s.items["b"].addr != it.addr {
		t.Fatalf("slab chunk not reused: %#x vs %#x", s.items["b"].addr, it.addr)
	}
}

func TestSizeClassLadder(t *testing.T) {
	if sizeClass(50) != 96 {
		t.Fatalf("sizeClass(50) = %d", sizeClass(50))
	}
	if c := sizeClass(97); c != 120 {
		t.Fatalf("sizeClass(97) = %d", c)
	}
	if sizeClass(96) != 96 {
		t.Fatal("exact class size must not round up")
	}
}

func TestRunFig6SmallShape(t *testing.T) {
	// Scaled-down Figure 6: the shape criterion is that HICAMP's total
	// off-chip accesses are comparable to or lower than conventional
	// (paper: "comparable or smaller"), with all five categories present.
	w := NewWorkload(150, 300, 1200, 77)
	res, err := RunFig6(16, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvTotal() == 0 || res.HicampTotal() == 0 {
		t.Fatalf("degenerate totals: %+v", res)
	}
	if res.HicampTotal() > 2*res.ConvTotal() {
		t.Fatalf("HICAMP %d vs conventional %d: more than 2x worse, shape broken",
			res.HicampTotal(), res.ConvTotal())
	}
	if res.HicRC == 0 {
		t.Fatalf("missing RC category: %+v", res)
	}
}

func TestHicampCategoriesUnderCachePressure(t *testing.T) {
	// With an LLC much smaller than the dataset, all five Figure 6
	// categories must be visible: demand reads, writebacks, lookup
	// traffic, de-allocations and RC traffic.
	w := NewWorkload(120, 240, 1500, 31)
	cfg := core.Config{LineBytes: 16, BucketBits: 16, DataWays: 12, CacheLines: 512, CacheWays: 8}
	st, srv, err := RunHicamp(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if st.DataReads == 0 {
		t.Fatal("no demand reads under cache pressure")
	}
	if st.DataWrites == 0 {
		t.Fatal("no writebacks under cache pressure")
	}
	if st.LookupTraffic() == 0 {
		t.Fatal("no lookup traffic")
	}
	if st.RCTraffic() == 0 {
		t.Fatal("no RC traffic")
	}
	if st.DeallocOps == 0 {
		t.Fatal("no de-allocations (map updates must free old paths)")
	}
	_ = srv
}

func TestCompactionRatioOrdering(t *testing.T) {
	// Table 1 shape: text compacts, scripts compact more per byte of
	// boilerplate, high-entropy binaries do not compact.
	html := datagen.HTMLCorpus("wiki", 40, 4096, 5)
	img := datagen.BinaryCorpus("img", 40, 3000, 6)
	rHTML := CompactionRatio(16, html)
	rImg := CompactionRatio(16, img)
	if rHTML < 1.3 {
		t.Fatalf("HTML compaction %.2f < 1.3", rHTML)
	}
	if rImg > 1.1 {
		t.Fatalf("image compaction %.2f > 1.1 (entropy should defeat dedup)", rImg)
	}
	// Smaller lines compact no worse than bigger lines on text.
	r64 := CompactionRatio(64, html)
	if rHTML < r64*0.9 {
		t.Fatalf("16B compaction %.2f should be >= 64B compaction %.2f", rHTML, r64)
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := NewWorkload(20, 50, 512, 3)
	b := NewWorkload(20, 50, 512, 3)
	if !bytes.Equal(a.Corpus.Items[7], b.Corpus.Items[7]) {
		t.Fatal("corpus not deterministic")
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatal("trace not deterministic")
		}
	}
}
