package kvstore

// Deprecated batch entry points, kept for one PR as thin wrappers over
// the unified Batch surface (batch.go). They predate it and disagreed
// on key typing and result shape; new callers use Write and Read. The
// repo-root shim guard (shimguard_test.go) keeps call sites from
// reappearing outside this file.

// SetMany stores many key-value pairs in one wave commit per namespace.
//
// Deprecated: build a Batch and call Write.
func (s *HicampServer) SetMany(keys []string, values [][]byte) error {
	b := make(Batch, len(keys))
	for i := range keys {
		b[i] = KV{Key: []byte(keys[i]), Value: values[i]}
	}
	return s.Write(b)
}

// GetMany serves a positional multi-key GET.
//
// Deprecated: build a Batch and call Read.
func (s *HicampServer) GetMany(keys [][]byte) ([][]byte, []bool) {
	if len(keys) == 0 {
		return nil, nil
	}
	b := make(Batch, len(keys))
	for i := range keys {
		b[i] = KV{Key: keys[i]}
	}
	s.Read(b)
	out := make([][]byte, len(keys))
	found := make([]bool, len(keys))
	for i := range b {
		out[i], found[i] = b[i].Value, b[i].Found
	}
	return out, found
}

// DeleteMany unbinds every key in one wave commit per namespace.
//
// Deprecated: build a Batch of tombstones (Batch.Del) and call Write.
func (s *HicampServer) DeleteMany(keys [][]byte) error {
	b := make(Batch, len(keys))
	for i := range keys {
		b[i] = KV{Key: keys[i], Delete: true}
	}
	return s.Write(b)
}
