package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
)

func TestHicampReadMatchesGet(t *testing.T) {
	srv := NewHicampServer(core.TestConfig())
	var wb Batch
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("mk-%03d", i)
		wb = wb.Set([]byte(keys[i]), bytes.Repeat([]byte(fmt.Sprintf("value %03d ", i)), 1+i%5))
	}
	if err := srv.Write(wb); err != nil {
		t.Fatal(err)
	}
	rb := Batch{}.
		Get([]byte(keys[3])).
		Get([]byte("absent")).
		Get([]byte(keys[17])).
		Get([]byte(keys[3])). // duplicate in one batch
		Get([]byte(keys[39]))
	srv.Read(rb)
	for i := range rb {
		want, wantOK := srv.Get(rb[i].Key)
		if rb[i].Found != wantOK {
			t.Fatalf("key %q: found=%v, want %v", rb[i].Key, rb[i].Found, wantOK)
		}
		if !bytes.Equal(rb[i].Value, want) {
			t.Fatalf("key %q: value %q, want %q", rb[i].Key, rb[i].Value, want)
		}
	}
	if rb[1].Found {
		t.Fatal("absent key reported found")
	}
}

// TestRunHicampMultiGetMatchesSerialResults checks the batched driver
// serves the same trace with the same end state and strictly no more
// DRAM accesses than the serial driver.
func TestRunHicampMultiGetMatchesSerialResults(t *testing.T) {
	w := NewWorkload(60, 400, 256, 7)
	cfg := core.TestConfig()
	serial, srvS, err := RunHicamp(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	batched, srvB, err := RunHicampMultiGet(cfg, w, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range w.Corpus.Keys {
		a, okA := srvS.Get([]byte(key))
		b, okB := srvB.Get([]byte(key))
		if okA != okB || !bytes.Equal(a, b) {
			t.Fatalf("key %d: end states differ", i)
		}
	}
	if batched.Total() > serial.Total() {
		t.Fatalf("multi-get driver used more DRAM: %d > %d", batched.Total(), serial.Total())
	}
}
