package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
)

func TestHicampGetManyMatchesGet(t *testing.T) {
	srv := NewHicampServer(core.TestConfig())
	keys := make([]string, 40)
	vals := make([][]byte, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("mk-%03d", i)
		vals[i] = bytes.Repeat([]byte(fmt.Sprintf("value %03d ", i)), 1+i%5)
	}
	if err := srv.SetMany(keys, vals); err != nil {
		t.Fatal(err)
	}
	req := [][]byte{
		[]byte(keys[3]), []byte("absent"), []byte(keys[17]),
		[]byte(keys[3]), // duplicate in one batch
		[]byte(keys[39]),
	}
	got, found := srv.GetMany(req)
	for i, k := range req {
		want, wantOK := srv.Get(k)
		if found[i] != wantOK {
			t.Fatalf("key %q: found=%v, want %v", k, found[i], wantOK)
		}
		if !bytes.Equal(got[i], want) {
			t.Fatalf("key %q: value %q, want %q", k, got[i], want)
		}
	}
	if found[1] {
		t.Fatal("absent key reported found")
	}
}

// TestRunHicampMultiGetMatchesSerialResults checks the batched driver
// serves the same trace with the same end state and strictly no more
// DRAM accesses than the serial driver.
func TestRunHicampMultiGetMatchesSerialResults(t *testing.T) {
	w := NewWorkload(60, 400, 256, 7)
	cfg := core.TestConfig()
	serial, srvS, err := RunHicamp(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	batched, srvB, err := RunHicampMultiGet(cfg, w, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range w.Corpus.Keys {
		a, okA := srvS.Get([]byte(key))
		b, okB := srvB.Get([]byte(key))
		if okA != okB || !bytes.Equal(a, b) {
			t.Fatalf("key %d: end states differ", i)
		}
	}
	if batched.Total() > serial.Total() {
		t.Fatalf("multi-get driver used more DRAM: %d > %d", batched.Total(), serial.Total())
	}
}
