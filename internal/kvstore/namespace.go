package kvstore

import (
	"bytes"
	"sort"
	"sync"

	"repro/internal/hds"
	"repro/internal/segmap"
	"repro/internal/word"
)

// Sharded VSID namespaces: multi-tenant isolation by key prefix.
//
// A key of the form "tenant/rest" routes to the tenant's own hds.Map —
// its own VSID in the virtual segment map — while bare keys stay on the
// server's root map. Because a VSID is the unit of atomic publish, this
// gives each tenant an independent commit/conflict domain: one tenant's
// write bursts never force another tenant's merge-rebases, snapshot
// pins (mget, gets tokens) are per-tenant, and the per-VSID conflict
// telemetry from segmap.Snapshot breaks down contention by tenant for
// free. Lines still dedup across tenants — content-addressing is global
// to the heap — so isolation costs no footprint.

// NamespaceSep splits the tenant prefix from the rest of the key.
const NamespaceSep = '/'

// DefaultMaxNamespaces bounds how many tenant maps a server creates on
// demand; keys for tenants beyond the bound fall back to the root map
// (still correct, just not isolated) instead of letting an adversarial
// key stream allocate unbounded VSIDs.
const DefaultMaxNamespaces = 64

// SplitNamespace returns the tenant prefix of key, or "" for bare keys.
// The full key (prefix included) is what gets stored, so a dump or scan
// needs no re-prefixing.
func SplitNamespace(key []byte) string {
	if i := bytes.IndexByte(key, NamespaceSep); i > 0 {
		return string(key[:i])
	}
	return ""
}

// namespaces is the server's tenant-map registry.
type namespaces struct {
	mu  sync.RWMutex
	m   map[string]*hds.Map
	max int
}

// Namespace returns the map serving the named tenant, creating it on
// demand; "" names the root map. Beyond the bound, unknown tenants share
// the root map.
func (s *HicampServer) Namespace(name string) *hds.Map {
	if name == "" {
		return s.kvp
	}
	s.ns.mu.RLock()
	mp := s.ns.m[name]
	s.ns.mu.RUnlock()
	if mp != nil {
		return mp
	}
	s.ns.mu.Lock()
	defer s.ns.mu.Unlock()
	if mp := s.ns.m[name]; mp != nil {
		return mp
	}
	max := s.ns.max
	if max == 0 {
		max = DefaultMaxNamespaces
	}
	if len(s.ns.m) >= max {
		return s.kvp
	}
	if s.ns.m == nil {
		s.ns.m = make(map[string]*hds.Map)
	}
	mp = s.openOrBind(labelNS + name)
	s.ns.m[name] = mp
	return mp
}

// NamespaceFor routes a key to its tenant's map (root map for bare keys).
func (s *HicampServer) NamespaceFor(key []byte) *hds.Map {
	return s.Namespace(SplitNamespace(key))
}

// SetMaxNamespaces adjusts the tenant-map bound (0 restores the default).
// Call before serving traffic; already-created tenants are unaffected.
func (s *HicampServer) SetMaxNamespaces(n int) {
	s.ns.mu.Lock()
	s.ns.max = n
	s.ns.mu.Unlock()
}

// allMaps lists every live map — root first, then tenants in name
// order — for full-store walks (Scan, Keys).
func (s *HicampServer) allMaps() []*hds.Map {
	s.ns.mu.RLock()
	names := make([]string, 0, len(s.ns.m))
	for name := range s.ns.m {
		names = append(names, name)
	}
	s.ns.mu.RUnlock()
	sort.Strings(names)
	out := make([]*hds.Map, 0, len(names)+1)
	out = append(out, s.kvp)
	for _, name := range names {
		out = append(out, s.Namespace(name))
	}
	return out
}

// NamespaceInfo is one tenant's identity and conflict telemetry.
type NamespaceInfo struct {
	Name  string
	VSID  word.VSID
	Stats segmap.VSIDStats
}

// NamespaceStats lists every namespace (root first as "", then tenants
// in name order) joined with its per-VSID commit/conflict counters —
// the per-tenant contention breakdown the stats command surfaces.
func (s *HicampServer) NamespaceStats() []NamespaceInfo {
	snap := s.Heap.SM.Snapshot()
	s.ns.mu.RLock()
	out := make([]NamespaceInfo, 0, len(s.ns.m)+1)
	out = append(out, NamespaceInfo{Name: "", VSID: s.kvp.VSID(), Stats: snap.PerVSID[s.kvp.VSID()]})
	for name, mp := range s.ns.m {
		out = append(out, NamespaceInfo{Name: name, VSID: mp.VSID(), Stats: snap.PerVSID[mp.VSID()]})
	}
	s.ns.mu.RUnlock()
	sort.Slice(out[1:], func(i, j int) bool { return out[1+i].Name < out[1+j].Name })
	return out
}

// Batch operations route through groupBatch (batch.go), which
// partitions a positional Batch by tenant against either map registry.
