package kvstore

import (
	"sort"
	"sync"

	"repro/internal/chunker"
	"repro/internal/hds"
)

// Blob layer: content-defined chunked values.
//
// The string map stores a value as one aligned segment, so dedup works
// only between values whose shared content lands on the same line
// offsets — a one-byte insertion re-canonicalizes everything after it.
// Blobs instead ingest through internal/chunker: the value is cut at
// content-defined boundaries, each chunk is its own sub-DAG, and the
// map binds the chunk-index segment. Near-duplicate values then share
// every unchanged chunk (across keys, namespaces and tenants — lines
// are global), and re-ingesting an edited value resolves unchanged
// chunks from the warm chunk→PLID memo with one reference-count touch
// each.
//
// Blobs live in their own per-namespace maps (own VSIDs), so blob keys
// never collide with string keys and each tenant keeps an independent
// commit/conflict domain, mirroring namespace.go. The index segment is
// bound as an ordinary map value (the index IS a string of words), so
// snapshot isolation, cas and merge-update all apply unchanged.

// blobMaps is the per-tenant blob-map registry plus the server's shared
// ingestor. One Ingestor serves all namespaces — chunks dedup globally,
// so a shared memo is strictly warmer than per-tenant ones — guarded by
// a mutex because neither the Ingestor nor its Builder is
// goroutine-safe.
type blobMaps struct {
	mu   sync.RWMutex
	root *hds.Map
	m    map[string]*hds.Map

	ingMu sync.Mutex
	ing   *chunker.Ingestor
}

// blobNamespace returns the blob map serving the named tenant, creating
// it on demand; "" names the root blob map. The tenant bound is shared
// with the string-map registry: beyond it, unknown tenants fall back to
// the root blob map.
func (s *HicampServer) blobNamespace(name string) *hds.Map {
	b := &s.blobs
	b.mu.RLock()
	mp := b.root
	if name != "" {
		mp = b.m[name]
	}
	b.mu.RUnlock()
	if mp != nil {
		return mp
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.root == nil {
		b.root = s.openOrBind(labelBlob)
	}
	if name == "" {
		return b.root
	}
	if mp := b.m[name]; mp != nil {
		return mp
	}
	max := s.ns.max
	if max == 0 {
		max = DefaultMaxNamespaces
	}
	if len(b.m) >= max {
		return b.root
	}
	if b.m == nil {
		b.m = make(map[string]*hds.Map)
	}
	mp = s.openOrBind(labelBlob + name)
	b.m[name] = mp
	return mp
}

// ingestor hands out the shared chunked-ingest pipeline; callers hold
// ingMu across use.
func (s *HicampServer) ingestor() *chunker.Ingestor {
	if s.blobs.ing == nil {
		s.blobs.ing = chunker.NewIngestor(s.Heap.M, chunker.Config{})
	}
	return s.blobs.ing
}

// BlobPut stores value under key as a chunked blob. Re-putting a
// near-duplicate of any previously ingested value (same key or not)
// hits the warm chunk memo for every unchanged chunk.
func (s *HicampServer) BlobPut(key, value []byte) error {
	s.blobs.ingMu.Lock()
	blob := s.ingestor().IngestBytes(value)
	s.blobs.ingMu.Unlock()
	v := hds.String{Seg: blob.Index, Len: blob.IndexBytes()}
	k := hds.NewString(s.Heap, key)
	err := s.blobNamespace(SplitNamespace(key)).Set(k, v)
	// The map's DAG owns the index (and through it every chunk); drop
	// the request-local references.
	k.Release(s.Heap)
	chunker.ReleaseBlob(s.Heap.M, blob)
	return s.ackWrite(err)
}

// BlobGet reassembles the blob stored under key: one snapshot map
// lookup, then one cross-chunk gather wave (lines shared between chunks
// are fetched once per wave, not once per chunk).
func (s *HicampServer) BlobGet(key []byte) ([]byte, bool) {
	k := hds.NewString(s.Heap, key)
	defer k.Release(s.Heap)
	v, ok := s.blobNamespace(SplitNamespace(key)).Get(k)
	if !ok {
		return nil, false
	}
	defer v.Release(s.Heap)
	blob, ok := chunker.BlobFromSeg(s.Heap.M, v.Seg)
	if !ok {
		return nil, false
	}
	return chunker.ReadBlob(s.Heap.M, blob)
}

// BlobStat returns the stored blob's shape (content length, chunk
// count) without materializing its bytes — the index header is two
// words, so this touches O(log) lines.
func (s *HicampServer) BlobStat(key []byte) (chunker.Blob, bool) {
	k := hds.NewString(s.Heap, key)
	defer k.Release(s.Heap)
	v, ok := s.blobNamespace(SplitNamespace(key)).Get(k)
	if !ok {
		return chunker.Blob{}, false
	}
	defer v.Release(s.Heap)
	return chunker.BlobFromSeg(s.Heap.M, v.Seg)
}

// BlobDelete unbinds key's blob. Chunk sub-DAGs referenced by no other
// index are reclaimed by the reference-count machinery; the ingest
// memo needs no invalidation (its ref-less entries detect the free via
// revalidation and rebuild).
func (s *HicampServer) BlobDelete(key []byte) error {
	k := hds.NewString(s.Heap, key)
	defer k.Release(s.Heap)
	return s.ackWrite(s.blobNamespace(SplitNamespace(key)).Delete(k))
}

// BlobIngestStats returns the shared ingestor's memo/build telemetry.
func (s *HicampServer) BlobIngestStats() chunker.IngestStats {
	s.blobs.ingMu.Lock()
	defer s.blobs.ingMu.Unlock()
	if s.blobs.ing == nil {
		return chunker.IngestStats{}
	}
	return s.blobs.ing.Stats()
}

// BlobNamespaces lists the tenants holding blob maps, in name order
// (telemetry; mirrors NamespaceStats' shape).
func (s *HicampServer) BlobNamespaces() []string {
	s.blobs.mu.RLock()
	out := make([]string, 0, len(s.blobs.m))
	for name := range s.blobs.m {
		out = append(out, name)
	}
	s.blobs.mu.RUnlock()
	sort.Strings(out)
	return out
}
