package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// blobDoc generates a text-like value with realistic entropy: repeated
// markup mixed with varying ids, so the rolling hash finds content-
// defined cutpoints. (Near-periodic content would force-cut every chunk
// at MaxSize and chunk identity would not survive shifts — the known
// CDC degenerate case, not what this layer is measured on.)
func blobDoc(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"chunked", "value", "content", "defined", "dedup", "shifted", "tenant", "index"}
	var b bytes.Buffer
	for b.Len() < n {
		fmt.Fprintf(&b, "<li id=%x>%s %s %s</li>\n", rng.Uint32(),
			words[rng.Intn(len(words))], words[rng.Intn(len(words))], words[rng.Intn(len(words))])
	}
	return b.Bytes()[:n]
}

func TestBlobRoundTrip(t *testing.T) {
	s := NewHicampServer(core.TestConfig())
	for _, n := range []int{0, 1, 100, 5000, 100000} {
		key := []byte{'b', byte(n), byte(n >> 8), byte(n >> 16)}
		data := blobDoc(int64(n)+1, n)
		if err := s.BlobPut(key, data); err != nil {
			t.Fatalf("n=%d: put: %v", n, err)
		}
		got, ok := s.BlobGet(key)
		if !ok || !bytes.Equal(got, data) {
			t.Fatalf("n=%d: get round trip failed (ok=%v, %d bytes)", n, ok, len(got))
		}
		st, ok := s.BlobStat(key)
		if !ok || st.Len != uint64(n) {
			t.Fatalf("n=%d: stat %+v ok=%v", n, st, ok)
		}
	}
	if _, ok := s.BlobGet([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
}

func TestBlobOverwriteAndDelete(t *testing.T) {
	s := NewHicampServer(core.TestConfig())
	key := []byte("doc")
	v1, v2 := blobDoc(1, 40000), blobDoc(2, 30000)
	if err := s.BlobPut(key, v1); err != nil {
		t.Fatal(err)
	}
	if err := s.BlobPut(key, v2); err != nil {
		t.Fatal(err)
	}
	got, ok := s.BlobGet(key)
	if !ok || !bytes.Equal(got, v2) {
		t.Fatal("overwrite did not take")
	}
	if err := s.BlobDelete(key); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.BlobGet(key); ok {
		t.Fatal("deleted key still found")
	}
	// Delete is idempotent.
	if err := s.BlobDelete(key); err != nil {
		t.Fatal(err)
	}
	// Re-put after delete: the ingest memo's entries for freed chunks
	// must revalidate-fail and rebuild, not resurrect dangling PLIDs.
	if err := s.BlobPut(key, v1); err != nil {
		t.Fatal(err)
	}
	got, ok = s.BlobGet(key)
	if !ok || !bytes.Equal(got, v1) {
		t.Fatal("re-put after delete does not round-trip")
	}
}

// Blob keys and string keys live in different maps: the same key can
// carry both a Set value and a BlobPut value without collision.
func TestBlobStringKeysDisjoint(t *testing.T) {
	s := NewHicampServer(core.TestConfig())
	key := []byte("shared-key")
	if err := s.Set(key, []byte("string value")); err != nil {
		t.Fatal(err)
	}
	if err := s.BlobPut(key, blobDoc(3, 20000)); err != nil {
		t.Fatal(err)
	}
	sv, ok := s.Get(key)
	if !ok || string(sv) != "string value" {
		t.Fatal("string value clobbered by blob put")
	}
	if err := s.BlobDelete(key); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("blob delete removed the string binding")
	}
}

func TestBlobNamespaces(t *testing.T) {
	s := NewHicampServer(core.TestConfig())
	a, b := blobDoc(4, 15000), blobDoc(5, 15000)
	if err := s.BlobPut([]byte("tenantA/doc"), a); err != nil {
		t.Fatal(err)
	}
	if err := s.BlobPut([]byte("tenantB/doc"), b); err != nil {
		t.Fatal(err)
	}
	if err := s.BlobPut([]byte("doc"), a); err != nil { // root map
		t.Fatal(err)
	}
	for _, tc := range []struct {
		key  string
		want []byte
	}{{"tenantA/doc", a}, {"tenantB/doc", b}, {"doc", a}} {
		got, ok := s.BlobGet([]byte(tc.key))
		if !ok || !bytes.Equal(got, tc.want) {
			t.Fatalf("%s: wrong value back (ok=%v)", tc.key, ok)
		}
	}
	if got := s.BlobNamespaces(); len(got) != 2 || got[0] != "tenantA" || got[1] != "tenantB" {
		t.Fatalf("BlobNamespaces = %v", got)
	}
	// Tenant deletes are isolated.
	if err := s.BlobDelete([]byte("tenantA/doc")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.BlobGet([]byte("tenantA/doc")); ok {
		t.Fatal("tenantA/doc survived delete")
	}
	if _, ok := s.BlobGet([]byte("tenantB/doc")); !ok {
		t.Fatal("tenantB/doc lost to tenantA delete")
	}
}

// TestBlobNearDuplicateMemo pins the layer's perf purpose: putting a
// shifted near-duplicate under another key rides the warm chunk memo
// instead of rebuilding the whole value.
func TestBlobNearDuplicateMemo(t *testing.T) {
	s := NewHicampServer(core.TestConfig())
	doc := blobDoc(6, 200000)
	edited := append(append(append([]byte{}, doc[:900]...), []byte("inserted clause ")...), doc[900:]...)
	if err := s.BlobPut([]byte("orig"), doc); err != nil {
		t.Fatal(err)
	}
	pre := s.BlobIngestStats()
	if err := s.BlobPut([]byte("edited"), edited); err != nil {
		t.Fatal(err)
	}
	st := s.BlobIngestStats()
	hits, builds := st.MemoHits-pre.MemoHits, st.ChunkBuilds-pre.ChunkBuilds
	if hits == 0 || builds*4 > hits {
		t.Fatalf("near-duplicate put: %d memo hits, %d rebuilds — expected hit-dominated", hits, builds)
	}
	got, ok := s.BlobGet([]byte("edited"))
	if !ok || !bytes.Equal(got, edited) {
		t.Fatal("edited blob does not round-trip")
	}
	t.Logf("near-duplicate put: %d memo hits, %d chunk rebuilds", hits, builds)
}

func TestBlobConcurrentPut(t *testing.T) {
	s := NewHicampServer(core.TestConfig())
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 20 && err == nil; i++ {
				key := []byte{byte('a' + g), byte(i)}
				err = s.BlobPut(key, blobDoc(int64(g*100+i), 8000))
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for g := 0; g < 8; g++ {
		for i := 0; i < 20; i++ {
			key := []byte{byte('a' + g), byte(i)}
			got, ok := s.BlobGet(key)
			if !ok || !bytes.Equal(got, blobDoc(int64(g*100+i), 8000)) {
				t.Fatalf("goroutine %d blob %d corrupt (ok=%v)", g, i, ok)
			}
		}
	}
}
