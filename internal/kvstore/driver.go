package kvstore

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/store"
)

// mutateItem returns the item's bytes at the given version: a set command
// stores a value that differs from the resident one in a small region
// (the common memcached pattern — a counter, timestamp or fragment
// changes while most of the page stays identical). HICAMP's copy-on-write
// shares the unchanged lines; the conventional server rewrites the item.
func mutateItem(item []byte, version int) []byte {
	if version == 0 {
		return item
	}
	out := make([]byte, len(item))
	copy(out, item)
	stamp := fmt.Sprintf("<!-- ver=%08d -->", version)
	at := len(out) / 2
	if at+len(stamp) > len(out) {
		at = 0
	}
	copy(out[at:], stamp)
	return out
}

// Fig6Result is one line-size column of Figure 6: off-chip DRAM accesses
// for the conventional and HICAMP memcached processing the same trace.
type Fig6Result struct {
	LineBytes int
	Requests  int

	// Conventional architecture (reads = miss fills, writes = dirty
	// writebacks), the left bar of each pair.
	ConvReads  uint64
	ConvWrites uint64

	// HICAMP, split into the stacked categories of the figure.
	HicReads   uint64 // demand reads (cache miss fills)
	HicWrites  uint64 // writebacks of newly created lines
	HicLookups uint64 // signature + candidate reads for content lookup
	HicDealloc uint64 // line de-allocation operations
	HicRC      uint64 // reference-count line traffic
}

// ConvTotal and HicampTotal return the bar heights.
func (r Fig6Result) ConvTotal() uint64 { return r.ConvReads + r.ConvWrites }
func (r Fig6Result) HicampTotal() uint64 {
	return r.HicReads + r.HicWrites + r.HicLookups + r.HicDealloc + r.HicRC
}

// Workload bundles a corpus with a request trace.
type Workload struct {
	Corpus *datagen.Corpus
	Trace  []datagen.Request
}

// NewWorkload generates the §5.1.2 setup scaled by items/requests: items
// preloaded, then requests at the paper's 10:1 get:set ratio with
// power-law popularity and sizes.
func NewWorkload(items, requests, meanSize int, seed int64) Workload {
	return Workload{
		Corpus: datagen.HTMLCorpus("memcached", items, meanSize, seed),
		Trace:  datagen.RequestTrace(items, requests, 10, seed+100),
	}
}

// corpusBatch builds the preload batch binding every corpus key.
func corpusBatch(c *datagen.Corpus) Batch {
	b := make(Batch, len(c.Keys))
	for i := range c.Keys {
		b[i] = KV{Key: []byte(c.Keys[i]), Value: c.Items[i]}
	}
	return b
}

// RunHicamp preloads the corpus, then measures the trace on the HICAMP
// server, returning the store counters accumulated during the measured
// window (preload traffic excluded, end-of-run cache flush included).
func RunHicamp(cfg core.Config, w Workload) (store.Stats, *HicampServer, error) {
	srv := NewHicampServer(cfg)
	if err := srv.Write(corpusBatch(w.Corpus)); err != nil {
		return store.Stats{}, nil, fmt.Errorf("preload: %w", err)
	}
	// Drain preload writebacks before opening the measurement window so
	// the trace is charged only for its own traffic.
	srv.Heap.M.FlushCache()
	srv.Heap.M.ResetStats()
	reader, err := srv.OpenReader()
	if err != nil {
		return store.Stats{}, nil, err
	}
	defer reader.Close()
	versions := make(map[int]int)
	for _, req := range w.Trace {
		key := []byte(w.Corpus.Keys[req.Key])
		if req.Get {
			srv.GetVia(reader, key)
		} else {
			versions[req.Key]++
			val := mutateItem(w.Corpus.Items[req.Key], versions[req.Key])
			if err := srv.Set(key, val); err != nil {
				return store.Stats{}, nil, err
			}
		}
	}
	srv.Heap.M.FlushCache()
	return srv.Stats().Store, srv, nil
}

// RunHicampMultiGet replays the trace like RunHicamp but coalesces runs
// of consecutive GETs into batched Read calls of up to batch keys — the
// memcached `get k1 k2 ...` request form — so the measured window
// exercises the bulk read pipeline. Sets still run one at a time, in
// trace order relative to the batches they interrupt.
func RunHicampMultiGet(cfg core.Config, w Workload, batch int) (store.Stats, *HicampServer, error) {
	if batch < 1 {
		batch = 1
	}
	srv := NewHicampServer(cfg)
	if err := srv.Write(corpusBatch(w.Corpus)); err != nil {
		return store.Stats{}, nil, fmt.Errorf("preload: %w", err)
	}
	srv.Heap.M.FlushCache()
	srv.Heap.M.ResetStats()
	versions := make(map[int]int)
	pending := make(Batch, 0, batch)
	flush := func() {
		if len(pending) > 0 {
			srv.Read(pending)
			pending = pending[:0]
		}
	}
	for _, req := range w.Trace {
		key := []byte(w.Corpus.Keys[req.Key])
		if req.Get {
			pending = pending.Get(key)
			if len(pending) == batch {
				flush()
			}
			continue
		}
		flush()
		versions[req.Key]++
		val := mutateItem(w.Corpus.Items[req.Key], versions[req.Key])
		if err := srv.Set(key, val); err != nil {
			return store.Stats{}, nil, err
		}
	}
	flush()
	srv.Heap.M.FlushCache()
	return srv.Stats().Store, srv, nil
}

// RunFig6 produces one Figure 6 column pair.
func RunFig6(lineBytes int, w Workload) (Fig6Result, error) {
	res := Fig6Result{LineBytes: lineBytes, Requests: len(w.Trace)}

	// Conventional side.
	conv := NewConvServer(lineBytes, len(w.Corpus.Keys))
	for i, key := range w.Corpus.Keys {
		conv.Set(key, len(w.Corpus.Items[i]))
	}
	conv.Space.Flush()
	baseline := conv.Space.Stats()
	for _, req := range w.Trace {
		key := w.Corpus.Keys[req.Key]
		if req.Get {
			conv.Get(key)
		} else {
			conv.Set(key, len(w.Corpus.Items[req.Key]))
		}
	}
	conv.Space.Flush()
	cs := conv.Space.Stats()
	res.ConvReads = cs.DRAMReads - baseline.DRAMReads
	res.ConvWrites = cs.DRAMWrites - baseline.DRAMWrites

	// HICAMP side.
	cfg := core.DefaultConfig(lineBytes)
	hs, _, err := RunHicamp(cfg, w)
	if err != nil {
		return res, err
	}
	res.HicReads = hs.DataReads
	res.HicWrites = hs.DataWrites
	res.HicLookups = hs.LookupTraffic()
	res.HicDealloc = hs.DeallocOps
	res.HicRC = hs.RCTraffic()
	return res, nil
}

// CompactionRatio measures Table 1's metric for a corpus at a line size:
// conventional bytes (item sizes) divided by deduplicated HICAMP line
// bytes, using the streaming unique-line counter.
func CompactionRatio(lineBytes int, c *datagen.Corpus) float64 {
	unique := store.UniqueLineCount(lineBytes, c.Items...)
	hicampBytes := float64(unique * uint64(lineBytes))
	if hicampBytes == 0 {
		return 0
	}
	return float64(c.TotalBytes()) / hicampBytes
}
