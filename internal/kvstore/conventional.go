package kvstore

import (
	"repro/internal/conv"
)

// ConvServer models stock memcached on the conventional architecture at
// the memory-reference level. Each command emits the reference stream of
// the real implementation's steps — socket copies in and out of kernel
// buffers, hash computation over the key, hash-table probe and chain
// walk, item header and key compare, slab allocation, LRU bookkeeping —
// into the baseline L1/L2 hierarchy. The paper obtained this stream by
// tracing memcached under VMware and replaying it through DineroIV; the
// model reproduces the same per-operation access pattern (see DESIGN.md).
type ConvServer struct {
	Space *conv.Space

	htBase   uint64 // hash table: buckets * 8-byte chain heads
	htMask   uint64
	lruBase  uint64 // global LRU list head/tail pointers
	connBase uint64 // per-connection state + socket buffers

	slabNext uint64           // bump allocator inside slab region
	items    map[string]*item // model bookkeeping (not traced)
	free     map[int][]uint64 // size-class free lists, like slabs
}

type item struct {
	addr   uint64
	keyLen int
	valLen int
	next   uint64 // chain successor address (0 = end)
}

const (
	itemHeaderBytes = 48 // next, prev, h_next, exptime, nbytes, refcount, flags
	reqHeaderBytes  = 40 // command, key length, opaque, cas fields
	connStateBytes  = 256
	sockBufBytes    = 64 << 10
)

// NewConvServer sizes the model like the paper's runs: nBuckets should be
// on the order of the item count (memcached grows the table to keep
// chains short).
func NewConvServer(lineBytes int, nBuckets int) *ConvServer {
	// Round buckets up to a power of two.
	b := 1
	for b < nBuckets {
		b <<= 1
	}
	sp := conv.NewSpace(lineBytes)
	s := &ConvServer{
		Space:  sp,
		htMask: uint64(b - 1),
		items:  make(map[string]*item),
		free:   make(map[int][]uint64),
	}
	s.htBase = sp.Alloc(uint64(b)*8, 4096)
	s.lruBase = sp.Alloc(64, 64)
	s.connBase = sp.Alloc(connStateBytes+2*sockBufBytes, 4096)
	s.slabNext = sp.Alloc(0, 1<<20) // slab region grows from here
	return s
}

func (s *ConvServer) rxBuf() uint64 { return s.connBase + connStateBytes }
func (s *ConvServer) txBuf() uint64 { return s.connBase + connStateBytes + sockBufBytes }

// hashOf gives the model's bucket for a key (any deterministic spread).
func hashOf(key string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// sizeClass rounds an item to its slab class, memcached's 1.25x ladder.
func sizeClass(n int) int {
	c := 96
	for c < n {
		c = c * 5 / 4
	}
	return c
}

// readRequest models the socket receive path: the client's bytes land in
// the kernel socket buffer and are copied to user space, then parsed.
func (s *ConvServer) readRequest(payload int) {
	userBuf := s.connBase // reuse connection scratch as user buffer
	s.Space.Copy(userBuf, s.rxBuf(), reqHeaderBytes+payload)
	s.Space.Load(s.connBase, 16) // connection state machine fields
	s.Space.Store(s.connBase, 8)
}

// writeResponse models the send path: user-space response copied into the
// kernel socket buffer.
func (s *ConvServer) writeResponse(payload int) {
	s.Space.Copy(s.txBuf(), s.connBase, reqHeaderBytes+payload)
	s.Space.Store(s.connBase, 8)
}

// probe walks the hash chain for key, emitting the table load, per-item
// header loads and the key compare on the final candidate. It returns the
// found item (model state) or nil.
func (s *ConvServer) probe(key string) *item {
	bucket := hashOf(key) & s.htMask
	// Hash the key: every key byte is read from the user buffer.
	s.Space.ReadRange(s.connBase+reqHeaderBytes, len(key))
	s.Space.Load(s.htBase+bucket*8, 8)
	it := s.items[key]
	// Chain walk: header of each predecessor in the chain. The model
	// approximates the expected chain position with one extra header
	// visit per resident item hashing to the bucket beyond the first.
	if it != nil {
		s.Space.ReadRange(it.addr, itemHeaderBytes)
		s.Space.ReadRange(it.addr+itemHeaderBytes, it.keyLen) // key compare
	} else {
		// Miss: memcached still loads the first chain header if any.
		s.Space.Load(s.htBase+bucket*8, 8)
	}
	return it
}

// Get models one get command.
func (s *ConvServer) Get(key string) bool {
	s.readRequest(len(key))
	it := s.probe(key)
	if it == nil {
		s.writeResponse(0)
		return false
	}
	// Reference count, LRU unlink/relink: header writes + global list.
	s.Space.Store(it.addr, 24)
	s.Space.Load(s.lruBase, 16)
	s.Space.Store(s.lruBase, 16)
	// Value is copied into the response buffer (user -> kernel follows).
	s.Space.Copy(s.connBase+reqHeaderBytes, it.addr+itemHeaderBytes+uint64(it.keyLen), it.valLen)
	s.writeResponse(it.valLen)
	return true
}

// Set models one set command.
func (s *ConvServer) Set(key string, valLen int) {
	s.readRequest(len(key) + valLen)
	old := s.probe(key)
	if old != nil {
		s.unlink(old, key)
	}
	it := s.alloc(key, valLen)
	// Fill header, copy key and value from the user buffer into the item.
	s.Space.WriteRange(it.addr, itemHeaderBytes)
	s.Space.Copy(it.addr+itemHeaderBytes, s.connBase+reqHeaderBytes, len(key)+valLen)
	// Link into hash chain and LRU.
	bucket := hashOf(key) & s.htMask
	s.Space.Load(s.htBase+bucket*8, 8)
	s.Space.Store(s.htBase+bucket*8, 8)
	s.Space.Store(it.addr+8, 8) // h_next pointer
	s.Space.Load(s.lruBase, 16)
	s.Space.Store(s.lruBase, 16)
	s.items[key] = it
	s.writeResponse(0)
}

// Delete models one delete command.
func (s *ConvServer) Delete(key string) bool {
	s.readRequest(len(key))
	it := s.probe(key)
	if it == nil {
		s.writeResponse(0)
		return false
	}
	s.unlink(it, key)
	s.writeResponse(0)
	return true
}

func (s *ConvServer) alloc(key string, valLen int) *item {
	need := itemHeaderBytes + len(key) + valLen
	class := sizeClass(need)
	var addr uint64
	if fl := s.free[class]; len(fl) > 0 {
		addr = fl[len(fl)-1]
		s.free[class] = fl[:len(fl)-1]
		s.Space.Load(addr, 8) // pop free-list link
	} else {
		addr = s.Space.Alloc(uint64(class), 64)
		s.slabNext = addr + uint64(class)
	}
	return &item{addr: addr, keyLen: len(key), valLen: valLen}
}

func (s *ConvServer) unlink(it *item, key string) {
	bucket := hashOf(key) & s.htMask
	s.Space.Load(s.htBase+bucket*8, 8)
	s.Space.Store(s.htBase+bucket*8, 8)
	s.Space.Load(s.lruBase, 16)
	s.Space.Store(s.lruBase, 16)
	s.Space.Store(it.addr, 8) // free-list link write
	class := sizeClass(itemHeaderBytes + it.keyLen + it.valLen)
	s.free[class] = append(s.free[class], it.addr)
	delete(s.items, key)
}

// FootprintBytes returns the bytes the conventional layout occupies:
// table, connection buffers and all slab-resident items (live and freed —
// slabs are never returned to the OS).
func (s *ConvServer) FootprintBytes() uint64 { return s.Space.Brk() }
