package kvstore

import (
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/hds"
	"repro/internal/segmap"
	"repro/internal/word"
)

// Durable server wiring. A server opened with a data directory sits on
// a write-ahead persistence layer (internal/durable): every line
// allocation and root publish is journaled, map identities are durable
// label bindings, and a write acknowledgement waits for its group
// commit (word.MemCaps.SyncDurable — a no-op on memory-only servers,
// probed once at construction, never re-asserted per call site).
//
// Labels name the server's maps across restarts: the root string map is
// "kv:root", tenant string maps are "ns:<tenant>", the root blob map is
// "blob:" and tenant blob maps "blob:<tenant>". Namespace creation
// consults the binding first, so a restarted server re-adopts a
// tenant's map the first time any key routes to it.
const (
	labelRoot = "kv:root"
	labelNS   = "ns:"
	labelBlob = "blob:"
)

// ServerOptions selects persistence for a HicampServer. The zero value
// (no DataDir) is a memory-only server, identical to NewHicampServer.
type ServerOptions struct {
	// DataDir, when set, opens (or recovers) a durable store in this
	// directory.
	DataDir string
	// FlushWindow bounds how long an acknowledged write can wait for its
	// group commit; see durable.Options.FlushWindow. 0 means the durable
	// layer's default.
	FlushWindow time.Duration
	// SegmentBytes rolls log segments past this size (0 = default).
	SegmentBytes int64
	// CheckpointEvery runs background checkpoints at this interval; 0
	// disables them (checkpoints then happen only via Checkpoint).
	CheckpointEvery time.Duration
}

// NewHicampServerOpts creates a server, durable when opts.DataDir is
// set: the directory's checkpoint and log tail are recovered into the
// fresh machine, the root map is re-adopted from its label binding, and
// from then on every write is journaled and acknowledged only once its
// log records are stable.
func NewHicampServerOpts(cfg core.Config, opts ServerOptions) (*HicampServer, error) {
	if opts.DataDir == "" {
		return NewHicampServer(cfg), nil
	}
	m := core.NewMachine(cfg)
	sm := segmap.New(m)
	db, err := durable.Open(durable.Options{
		Dir:             opts.DataDir,
		FlushWindow:     opts.FlushWindow,
		SegmentBytes:    opts.SegmentBytes,
		CheckpointEvery: opts.CheckpointEvery,
	}, m, sm)
	if err != nil {
		return nil, err
	}
	s := &HicampServer{Heap: &hds.Heap{M: m, SM: sm}, db: db}
	s.caps = word.Caps(m)
	s.kvp = s.openOrBind(labelRoot)
	return s, nil
}

// openOrBind adopts the map durably bound to label, or creates the map
// and binds it. On a memory-only server it is plain map creation.
func (s *HicampServer) openOrBind(label string) *hds.Map {
	if s.db != nil {
		if v, ok := s.db.Binding(label); ok {
			return hds.OpenMap(s.Heap, v)
		}
	}
	mp := hds.NewMap(s.Heap)
	if s.db != nil {
		// Bind fails only on a closed DB; a map on a closed server is
		// unreachable anyway.
		_ = s.db.Bind(label, mp.VSID())
	}
	return mp
}

// AckDurable blocks until every mutation issued before the call is
// stable — the write-acknowledgement gate. Memory-only servers return
// nil immediately (the simulation semantics: a commit is durable the
// moment it publishes). Batch callers that commit through the maps
// directly (the network front end's write windows) call this once per
// window instead of once per key.
func (s *HicampServer) AckDurable() error { return s.caps.SyncDurable() }

// ackWrite gates one mutation's acknowledgement on durability.
func (s *HicampServer) ackWrite(err error) error {
	if err != nil {
		return err
	}
	return s.caps.SyncDurable()
}

// Durable reports whether the server persists writes.
func (s *HicampServer) Durable() bool { return s.db != nil && s.db.Enabled() }

// DurableStats returns the persistence telemetry (zero on a
// memory-only server): log/group-commit/checkpoint counters and the
// recovery cost of the last Open.
func (s *HicampServer) DurableStats() durable.DurableStats {
	if s.db == nil {
		return durable.DurableStats{}
	}
	return s.db.Stats()
}

// Checkpoint writes a durable checkpoint now (snapshot of the segment
// map roots plus the live-line manifest) and truncates obsolete log
// segments. A no-op on a memory-only server.
func (s *HicampServer) Checkpoint() error {
	if s.db == nil {
		return nil
	}
	return s.db.Checkpoint()
}

// Close flushes and detaches the persistence layer. The in-memory
// server remains usable, but writes are no longer durable.
func (s *HicampServer) Close() error {
	if s.db == nil {
		return nil
	}
	return s.db.Close()
}
