package kvstore

import (
	"repro/internal/chunker"
	"repro/internal/hds"
)

// The unified batch surface. The server's bulk entry points used to
// disagree on key typing and result shape (SetMany took []string +
// [][]byte, GetMany [][]byte returning parallel slices, DeleteMany
// [][]byte); every batched verb now speaks one vocabulary: a Batch of
// KV operations, routed per tenant namespace with positional results
// written back in place. The string-map verbs (Write, Read) and the
// blob verbs (BlobWrite, BlobRead) share the same grouping, so a batch
// mixing tenants still costs one wave (or one gather) per namespace.
// The old entry points survive one PR as deprecated wrappers in
// compat.go.

// KV is one key's operation — and, for reads, its result — in a Batch.
type KV struct {
	// Key routes the operation: a "tenant/" prefix selects the tenant's
	// namespace, bare keys the root map.
	Key []byte
	// Value is the payload to store (Write, BlobWrite) or the result
	// slot filled in place (Read, BlobRead; nil when not found).
	Value []byte
	// Delete marks a tombstone in a write batch: the key is unbound in
	// the same published version that binds its siblings.
	Delete bool
	// Found reports, after a read batch, whether Key was bound.
	Found bool
}

// Batch is a positional sequence of KV operations. Order is preserved:
// results land at the same index as their key, whatever namespace each
// key routed to.
type Batch []KV

// Set appends a binding and returns the extended batch.
func (b Batch) Set(key, value []byte) Batch {
	return append(b, KV{Key: key, Value: value})
}

// Del appends a tombstone and returns the extended batch.
func (b Batch) Del(key []byte) Batch {
	return append(b, KV{Key: key, Delete: true})
}

// Get appends a read of key and returns the extended batch.
func (b Batch) Get(key []byte) Batch {
	return append(b, KV{Key: key})
}

// batchGroup is one namespace's slice of a positional batch. pos maps
// group positions back to batch indices; nil when kvs aliases the whole
// batch in order (the common single-tenant case).
type batchGroup struct {
	mp  *hds.Map
	kvs []KV
	pos []int
}

// groupBatch partitions a batch by tenant namespace, resolving each
// tenant through mapFor — the string-map registry for Write/Read, the
// blob-map registry for BlobWrite/BlobRead. The uniform case (all keys
// one namespace) returns a single group aliasing b with no copying.
func groupBatch(b Batch, mapFor func(ns string) *hds.Map) []batchGroup {
	first := SplitNamespace(b[0].Key)
	uniform := true
	for i := 1; i < len(b); i++ {
		if SplitNamespace(b[i].Key) != first {
			uniform = false
			break
		}
	}
	if uniform {
		return []batchGroup{{mp: mapFor(first), kvs: b}}
	}
	order := make([]string, 0, 4)
	groups := make(map[string]*batchGroup, 4)
	for i, kv := range b {
		ns := SplitNamespace(kv.Key)
		g := groups[ns]
		if g == nil {
			g = &batchGroup{mp: mapFor(ns)}
			groups[ns] = g
			order = append(order, ns)
		}
		g.kvs = append(g.kvs, kv)
		g.pos = append(g.pos, i)
	}
	out := make([]batchGroup, 0, len(order))
	for _, ns := range order {
		out = append(out, *groups[ns])
	}
	return out
}

// Write applies a batch of sets and tombstones: one wave commit per
// namespace, each publishing the group's bindings and unbindings as a
// single version (all strings built through one shared bulk builder,
// every touched slot committed in one WriteBatch wave). Later
// duplicates of a key win, mirroring sequential order.
func (s *HicampServer) Write(b Batch) error {
	if len(b) == 0 {
		return nil
	}
	for _, g := range groupBatch(b, s.Namespace) {
		pairs := make([]hds.Pair, len(g.kvs))
		for i, kv := range g.kvs {
			pairs[i] = hds.Pair{Key: kv.Key, Value: kv.Value, Delete: kv.Delete}
		}
		if err := g.mp.Apply(pairs, hds.ApplyOptions{}); err != nil {
			return err
		}
	}
	return s.AckDurable()
}

// Read resolves a batch of keys in place — the memcached multi-get.
// Per namespace it costs one snapshot, one level-order slot gather and
// one bulk materialization, so map interiors shared between slots and
// lines shared between values are fetched once per wave instead of once
// per key. b[i].Value and b[i].Found carry the results positionally;
// Value is nil when the key is unbound.
func (s *HicampServer) Read(b Batch) {
	if len(b) == 0 {
		return
	}
	for _, g := range groupBatch(b, s.Namespace) {
		keys := make([][]byte, len(g.kvs))
		for i, kv := range g.kvs {
			keys[i] = kv.Key
		}
		ks := hds.NewStrings(s.Heap, keys)
		vals, oks := g.mp.GetMany(ks)
		for i := range ks {
			ks[i].Release(s.Heap)
		}
		bss := hds.BytesMany(s.Heap, vals)
		for i, ok := range oks {
			j := i
			if g.pos != nil {
				j = g.pos[i]
			}
			if !ok {
				b[j].Value, b[j].Found = nil, false
				continue
			}
			b[j].Value, b[j].Found = bss[i], true
			vals[i].Release(s.Heap)
		}
	}
}

// BlobWrite applies a batch of blob puts and tombstones through the
// same namespace grouping as Write, against the per-tenant blob maps.
// Values ingest through the shared content-defined chunker (unchanged
// chunks of near-duplicate values resolve from the warm memo) and each
// namespace's bindings publish through its own blob map.
func (s *HicampServer) BlobWrite(b Batch) error {
	if len(b) == 0 {
		return nil
	}
	for _, g := range groupBatch(b, s.blobNamespace) {
		for _, kv := range g.kvs {
			k := hds.NewString(s.Heap, kv.Key)
			var err error
			if kv.Delete {
				err = g.mp.Delete(k)
			} else {
				s.blobs.ingMu.Lock()
				blob := s.ingestor().IngestBytes(kv.Value)
				s.blobs.ingMu.Unlock()
				v := hds.String{Seg: blob.Index, Len: blob.IndexBytes()}
				err = g.mp.Set(k, v)
				chunker.ReleaseBlob(s.Heap.M, blob)
			}
			k.Release(s.Heap)
			if err != nil {
				return err
			}
		}
	}
	return s.AckDurable()
}

// BlobRead resolves a batch of blob keys in place: per namespace one
// snapshot gather finds every index segment, then each found blob
// reassembles through one cross-chunk gather wave.
func (s *HicampServer) BlobRead(b Batch) {
	if len(b) == 0 {
		return
	}
	for _, g := range groupBatch(b, s.blobNamespace) {
		keys := make([][]byte, len(g.kvs))
		for i, kv := range g.kvs {
			keys[i] = kv.Key
		}
		ks := hds.NewStrings(s.Heap, keys)
		vals, oks := g.mp.GetMany(ks)
		for i := range ks {
			ks[i].Release(s.Heap)
		}
		for i, ok := range oks {
			j := i
			if g.pos != nil {
				j = g.pos[i]
			}
			b[j].Value, b[j].Found = nil, false
			if !ok {
				continue
			}
			if blob, ok := chunker.BlobFromSeg(s.Heap.M, vals[i].Seg); ok {
				if data, ok := chunker.ReadBlob(s.Heap.M, blob); ok {
					b[j].Value, b[j].Found = data, true
				}
			}
			vals[i].Release(s.Heap)
		}
	}
}
