package kvstore

import (
	"repro/internal/hds"
	"repro/internal/segment"
)

// Incremental replication. A replica (or an incremental-stats collector)
// that must learn "what changed since I last looked" conventionally
// re-reads the whole store or consumes a mutation log. Snapshot diffing
// makes the question structural: the Replicator pins the last shipped map
// snapshot, and each Delta call co-walks it against the current version
// with segment.DiffWords — identical sub-DAGs, which is almost the whole
// map between close versions, are skipped by a single PLID comparison, so
// the delta costs line reads proportional to the changed paths.

// DeltaEntry is one changed binding in a replication delta.
type DeltaEntry struct {
	Key     []byte
	Value   []byte // nil when Deleted
	Deleted bool
}

// DeltaReport summarizes one Delta round.
type DeltaReport struct {
	Changed int // bindings shipped (updates + deletes)
	Diff    segment.DiffStats
}

// Replicator tracks a HicampServer's map across versions and ships
// incremental deltas. Not safe for concurrent use.
type Replicator struct {
	srv  *HicampServer
	last segment.Seg // pinned snapshot the previous Delta shipped
}

// NewReplicator snapshots the store's current version as the replica's
// starting point (the initial full sync is the caller's business — Scan
// serves it). Close releases the pinned snapshot.
func NewReplicator(srv *HicampServer) (*Replicator, error) {
	snap, err := srv.kvp.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Replicator{srv: srv, last: snap}, nil
}

// Delta invokes fn for every binding that changed since the previous
// Delta (or NewReplicator), in ascending key-PLID order, then advances
// the pinned snapshot to the version it just diffed against. Deletes
// arrive with Deleted set and a nil Value. fn returning false still
// advances the snapshot (the diff walk itself has completed); unshipped
// entries are simply dropped, as a real replicator would re-sync.
func (r *Replicator) Delta(fn func(e DeltaEntry) bool) (DeltaReport, error) {
	cur, err := r.srv.kvp.Snapshot()
	if err != nil {
		return DeltaReport{}, err
	}
	var rep DeltaReport
	h := r.srv.Heap
	// Collect the changed bindings first (memory proportional to the
	// changes), then materialize keys and surviving values through one
	// bulk gather.
	var strs []hds.String
	var deltas []hds.MapDelta
	rep.Diff = hds.DiffSnapshots(h, r.last, cur, func(d hds.MapDelta) bool {
		deltas = append(deltas, d)
		strs = append(strs, d.Key)
		if d.HasAfter {
			strs = append(strs, d.After)
		}
		return true
	})
	bs := hds.BytesMany(h, strs)
	at := 0
	for _, d := range deltas {
		e := DeltaEntry{Key: bs[at]}
		at++
		if d.HasAfter {
			e.Value = bs[at]
			at++
		} else {
			e.Deleted = true
		}
		rep.Changed++
		if !fn(e) {
			break
		}
	}
	segment.ReleaseSeg(h.M, r.last)
	r.last = cur
	return rep, nil
}

// Close releases the pinned snapshot.
func (r *Replicator) Close() {
	segment.ReleaseSeg(r.srv.Heap.M, r.last)
	r.last = segment.Seg{}
}
