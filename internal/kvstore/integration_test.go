package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagen"
)

// TestServerModelEquivalence replays a long random command stream against
// the HICAMP server and a plain Go map, verifying every get byte-for-byte
// — the end-to-end correctness check behind the Figure 6 traffic numbers.
func TestServerModelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		srv := NewHicampServer(testCfg())
		model := map[string][]byte{}
		corpus := datagen.HTMLCorpus("model", 30, 800, seed)
		reader, err := srv.OpenReader()
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 400; op++ {
			k := fmt.Sprintf("k%02d", rng.Intn(40))
			switch rng.Intn(10) {
			case 0: // delete
				srv.Delete([]byte(k))
				delete(model, k)
			case 1, 2, 3: // set (occasionally a duplicate body)
				val := corpus.Items[rng.Intn(len(corpus.Items))]
				if rng.Intn(5) == 0 {
					val = []byte{} // empty value
				}
				if err := srv.Set([]byte(k), val); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
				model[k] = val
			default: // get, alternating both read paths
				var got []byte
				var ok bool
				if op%2 == 0 {
					got, ok = srv.Get([]byte(k))
				} else {
					got, ok = srv.GetVia(reader, []byte(k))
				}
				want, wantOK := model[k]
				if ok != wantOK {
					t.Fatalf("seed %d op %d: presence %v want %v", seed, op, ok, wantOK)
				}
				if ok && !bytes.Equal(got, want) {
					t.Fatalf("seed %d op %d: value mismatch (%d vs %d bytes)",
						seed, op, len(got), len(want))
				}
			}
		}
		reader.Close()
		if got, want := srv.Map().Len(), uint64(len(model)); got != want {
			t.Fatalf("seed %d: map len %d, model %d", seed, got, want)
		}
	}
}

// TestDedupAcrossKeysBoundsFootprint stores the same large value under
// many keys: the footprint must grow by key/metadata cost only — the
// §5.1.3 "eliminates duplication of data between processes" property.
func TestDedupAcrossKeysBoundsFootprint(t *testing.T) {
	srv := NewHicampServer(testCfg())
	val := bytes.Repeat([]byte("shared page content 64 bytes long, aligned to line size....... "), 64) // 4 KB
	srv.Set([]byte("key-000"), val)
	oneCopy := srv.Heap.M.FootprintBytes()
	for i := 1; i < 50; i++ {
		srv.Set([]byte(fmt.Sprintf("key-%03d", i)), val)
	}
	total := srv.Heap.M.FootprintBytes()
	perExtraKey := float64(total-oneCopy) / 49
	if perExtraKey > float64(oneCopy)/4 {
		t.Fatalf("each duplicate key costs %.0f bytes (first copy %d): dedup not shared",
			perExtraKey, oneCopy)
	}
}

// TestConvAndHicampSeeSameWorkload guards the comparison's fairness: the
// driver must issue identical request streams to both architectures.
func TestConvAndHicampSeeSameWorkload(t *testing.T) {
	w := NewWorkload(50, 100, 600, 5)
	gets, sets := 0, 0
	for _, r := range w.Trace {
		if r.Get {
			gets++
		} else {
			sets++
		}
	}
	if gets+sets != 100 {
		t.Fatal("trace length wrong")
	}
	// Both runners consume w.Trace directly; this asserts the workload
	// object is immutable across runs.
	r1, err := RunFig6(16, w)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunFig6(16, w)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("same workload, different results:\n%+v\n%+v", r1, r2)
	}
}
