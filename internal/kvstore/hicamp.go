// Package kvstore implements the paper's running application study (§4.4,
// §5.1): memcached. The HICAMP implementation is the paper's design — the
// key-value map is a sparse segment indexed by the content-unique root
// PLID of the key string, read under snapshot isolation and updated with
// merge-update. The conventional implementation is an operation-level
// model of stock memcached (hash table + slab allocator + socket IPC)
// that emits its memory reference stream into the baseline cache
// hierarchy. Both sides process identical request traces; their off-chip
// access counts reproduce Figure 6.
package kvstore

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/hds"
	"repro/internal/iterreg"
	"repro/internal/pool"
	"repro/internal/segmap"
	"repro/internal/word"
)

// HicampServer is memcached on HICAMP (§4.4). Keys with a "tenant/"
// prefix route to per-tenant maps on their own VSIDs (see namespace.go);
// bare keys live on the root map.
type HicampServer struct {
	Heap  *hds.Heap
	kvp   *hds.Map
	ns    namespaces
	blobs blobMaps

	// caps is the machine's capability probe, taken once at construction
	// (capsguard). Its durable arm gates write acknowledgements; on a
	// memory-only server SyncDurable is an immediate nil.
	caps word.MemCaps
	// db is the write-ahead persistence layer, nil on memory-only
	// servers; see durable.go.
	db *durable.DB
}

// NewHicampServer creates a memory-only server over a fresh machine.
// NewHicampServerOpts adds persistence.
func NewHicampServer(cfg core.Config) *HicampServer {
	h := hds.NewHeap(cfg)
	return &HicampServer{Heap: h, kvp: hds.NewMap(h), caps: word.Caps(h.M)}
}

// Set stores a key-value pair. Building the value into content-unique
// lines is the set path's dominant memory cost, exactly as the paper's
// §5.1.1 analysis assumes; the map update itself touches log(N) lines.
func (s *HicampServer) Set(key, value []byte) error {
	k := hds.NewString(s.Heap, key)
	v := hds.NewString(s.Heap, value)
	err := s.NamespaceFor(key).Set(k, v)
	// The map's DAG now owns the value (and the key is findable by
	// content); drop the request-local references.
	k.Release(s.Heap)
	v.Release(s.Heap)
	return s.ackWrite(err)
}

// Get returns the value for key. The read runs against a private
// snapshot: no locking, no interference from concurrent sets (§4.4).
func (s *HicampServer) Get(key []byte) ([]byte, bool) {
	k := hds.NewString(s.Heap, key)
	defer k.Release(s.Heap)
	v, ok := s.NamespaceFor(key).Get(k)
	if !ok {
		return nil, false
	}
	out := v.Bytes(s.Heap) // stream the value out (to the NIC, in life)
	v.Release(s.Heap)
	return out, true
}

// GetVia is Get through a caller-owned read-only iterator, the §4.4
// client-thread pattern: the register is reloaded once per request and
// the map is accessed directly, with zero IPC. The register is bound to
// the root map; tenant-prefixed keys read through Get instead.
func (s *HicampServer) GetVia(it *iterreg.Iterator, key []byte) ([]byte, bool) {
	if err := it.Reload(); err != nil {
		return nil, false
	}
	k := hds.NewString(s.Heap, key)
	defer k.Release(s.Heap)
	v, ok := hds.GetFrom(s.Heap, it, k)
	if !ok {
		return nil, false
	}
	out := v.Bytes(s.Heap)
	v.Release(s.Heap)
	return out, true
}

// Delete removes a key.
func (s *HicampServer) Delete(key []byte) error {
	k := hds.NewString(s.Heap, key)
	defer k.Release(s.Heap)
	return s.ackWrite(s.NamespaceFor(key).Delete(k))
}

// OpenReader returns a read-only iterator register bound to the map, for
// GetVia. Close it when the connection ends.
func (s *HicampServer) OpenReader() (*iterreg.Iterator, error) {
	return iterreg.Open(s.Heap.M, s.Heap.SM, s.kvp.ReadOnlyVSID())
}

// Scan streams every key-value pair in the store, materialized as bytes,
// from one snapshot per namespace taken as each walk starts — a
// full-store dump (the memcached `lru_crawler metadump`/cachedump shape)
// served by one streamed walk per map instead of one map descent per
// key. The root map streams first, then tenants in name order, each in
// ascending key-PLID order; fn returning false stops the scan.
func (s *HicampServer) Scan(fn func(key, value []byte) bool) error {
	stopped := false
	for _, mp := range s.allMaps() {
		if err := mp.BytesScan(func(key, value []byte) bool {
			if !fn(key, value) {
				stopped = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// ScanParallel is Scan with the map walk sharded across a bounded worker
// pool; fn still runs on the calling goroutine in the same order.
// workers <= 0 sizes the pool automatically.
func (s *HicampServer) ScanParallel(workers int, fn func(key, value []byte) bool) error {
	var batch []hds.String
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		bs := hds.BytesMany(s.Heap, batch)
		for i := range batch {
			batch[i].Release(s.Heap)
		}
		batch = batch[:0]
		for i := 0; i < len(bs); i += 2 {
			if !fn(bs[i], bs[i+1]) {
				return false
			}
		}
		return true
	}
	for _, mp := range s.allMaps() {
		stopped := false
		err := mp.ForEachParallel(workers, func(key, val hds.String) bool {
			// Retain past the callback: materialization is deferred to the
			// batch gather below.
			key.Retain(s.Heap)
			val.Retain(s.Heap)
			batch = append(batch, key, val)
			if len(batch) >= 256 {
				if !flush() {
					stopped = true
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped || !flush() {
			return nil
		}
	}
	return nil
}

// Keys returns every key in the store — root map first, then tenants in
// name order, each from one snapshot in ascending key-PLID order — via
// one streamed walk per map plus one bulk materialization.
func (s *HicampServer) Keys() ([][]byte, error) {
	var keys []hds.String
	for _, mp := range s.allMaps() {
		err := mp.ForEach(func(key, val hds.String) bool {
			key.Retain(s.Heap)
			keys = append(keys, key)
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	out := hds.BytesMany(s.Heap, keys)
	for i := range keys {
		keys[i].Release(s.Heap)
	}
	return out, nil
}

// Map exposes the underlying key-value map.
func (s *HicampServer) Map() *hds.Map { return s.kvp }

// Stats returns the machine's memory-system counters.
func (s *HicampServer) Stats() core.Stats { return s.Heap.M.Stats() }

// MapStats returns the segment map's conflict telemetry: per-VSID
// commit/conflict/denial/abort counters plus the aggregate totals.
func (s *HicampServer) MapStats() segmap.Snapshot { return s.Heap.SM.Snapshot() }

// PoolStats returns the scratch-pool telemetry of every registered
// bucketed pool (wave-engine scratch, store batch buffers, dedup maps):
// per-pool and per-bin hit/miss/oversize/return counters. The registry
// is process-global — pools are package-level — so the numbers cover
// all machines in the process, not just this server's.
func (s *HicampServer) PoolStats() []pool.PoolStats { return pool.Snapshot() }

func (s *HicampServer) String() string {
	return fmt.Sprintf("kvstore.HicampServer(lines=%d)", s.Heap.M.LiveLines())
}
