package kvstore

import (
	"fmt"
	"sort"
	"testing"
)

func TestBatchDeleteWavePath(t *testing.T) {
	s := NewHicampServer(testCfg())
	var wb Batch
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("dm-key-%d", i)
		wb = wb.Set([]byte(keys[i]), []byte(fmt.Sprintf("dm-val-%d", i)))
	}
	if err := s.Write(wb); err != nil {
		t.Fatal(err)
	}

	// One batch mixing present keys and absent keys: present ones unbind,
	// absent ones are no-ops.
	db := Batch{}.Del([]byte("dm-key-1")).Del([]byte("dm-key-3")).Del([]byte("never-set"))
	if err := s.Write(db); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		_, ok := s.Get([]byte(keys[i]))
		want := i != 1 && i != 3
		if ok != want {
			t.Fatalf("after batch delete, Get(%s) = %v, want %v", keys[i], ok, want)
		}
	}
	if err := s.Write(nil); err != nil {
		t.Fatalf("empty Write: %v", err)
	}
}

func TestNamespaceRoutingAndIsolation(t *testing.T) {
	s := NewHicampServer(testCfg())

	// Same suffix under two tenants and bare: three independent bindings.
	if err := s.Set([]byte("acme/k"), []byte("va")); err != nil {
		t.Fatal(err)
	}
	if err := s.Set([]byte("beta/k"), []byte("vb")); err != nil {
		t.Fatal(err)
	}
	if err := s.Set([]byte("k"), []byte("vr")); err != nil {
		t.Fatal(err)
	}

	for key, want := range map[string]string{"acme/k": "va", "beta/k": "vb", "k": "vr"} {
		got, ok := s.Get([]byte(key))
		if !ok || string(got) != want {
			t.Fatalf("Get(%s) = %q,%v want %q", key, got, ok, want)
		}
	}

	// Tenants are distinct maps on distinct VSIDs; bare keys are the root.
	acme, beta := s.Namespace("acme"), s.Namespace("beta")
	if acme == beta || acme == s.Map() || beta == s.Map() {
		t.Fatal("tenant maps must be distinct from each other and the root")
	}
	if acme.VSID() == beta.VSID() {
		t.Fatal("tenant maps share a VSID")
	}
	if s.NamespaceFor([]byte("acme/k")) != acme {
		t.Fatal("NamespaceFor did not route to the tenant map")
	}
	if s.NamespaceFor([]byte("k")) != s.Map() {
		t.Fatal("bare key did not route to the root map")
	}
	// A leading separator is not a tenant prefix.
	if s.NamespaceFor([]byte("/odd")) != s.Map() {
		t.Fatal("leading-separator key did not route to the root map")
	}

	// Deleting a tenant's key leaves the other tenants' bindings alone.
	if err := s.Delete([]byte("acme/k")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get([]byte("acme/k")); ok {
		t.Fatal("acme/k survived delete")
	}
	if _, ok := s.Get([]byte("beta/k")); !ok {
		t.Fatal("beta/k lost to acme delete")
	}
	if _, ok := s.Get([]byte("k")); !ok {
		t.Fatal("bare k lost to acme delete")
	}
}

func TestNamespaceBatchesSpanTenants(t *testing.T) {
	s := NewHicampServer(testCfg())
	keys := []string{"acme/a", "k0", "beta/b", "acme/c", "k1"}
	var wb Batch
	for i := range keys {
		wb = wb.Set([]byte(keys[i]), []byte("v-"+keys[i]))
	}
	if err := s.Write(wb); err != nil {
		t.Fatal(err)
	}

	// Positional multi-get across three namespaces, with a miss mixed in.
	rb := Batch{}.
		Get([]byte("beta/b")).
		Get([]byte("k1")).
		Get([]byte("acme/missing")).
		Get([]byte("acme/a"))
	s.Read(rb)
	wantFound := []bool{true, true, false, true}
	for i := range rb {
		if rb[i].Found != wantFound[i] {
			t.Fatalf("found[%d] = %v, want %v", i, rb[i].Found, wantFound[i])
		}
		if rb[i].Found && string(rb[i].Value) != "v-"+string(rb[i].Key) {
			t.Fatalf("Read[%d] = %q, want %q", i, rb[i].Value, "v-"+string(rb[i].Key))
		}
	}

	// Cross-tenant delete batch.
	if err := s.Write(Batch{}.Del([]byte("acme/a")).Del([]byte("k0"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get([]byte("acme/a")); ok {
		t.Fatal("acme/a survived the cross-tenant delete batch")
	}
	if _, ok := s.Get([]byte("k0")); ok {
		t.Fatal("k0 survived the cross-tenant delete batch")
	}
	if _, ok := s.Get([]byte("acme/c")); !ok {
		t.Fatal("acme/c lost")
	}

	// Full-store walks cover every namespace.
	want := []string{"acme/c", "beta/b", "k1"}
	keysOut, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, k := range keysOut {
		names = append(names, string(k))
	}
	sort.Strings(names)
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("Keys = %v, want %v", names, want)
	}
	var scanned []string
	if err := s.Scan(func(k, v []byte) bool {
		scanned = append(scanned, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(scanned)
	if fmt.Sprint(scanned) != fmt.Sprint(want) {
		t.Fatalf("Scan = %v, want %v", scanned, want)
	}
}

func TestNamespaceBoundFallsBackToRoot(t *testing.T) {
	s := NewHicampServer(testCfg())
	s.SetMaxNamespaces(2)
	a := s.Namespace("t1")
	b := s.Namespace("t2")
	over := s.Namespace("t3") // beyond the bound: shares the root map
	if a == s.Map() || b == s.Map() {
		t.Fatal("in-bound tenants must get their own maps")
	}
	if over != s.Map() {
		t.Fatal("over-bound tenant must fall back to the root map")
	}
	// Still correct through the fallback: full key stored, so no aliasing.
	if err := s.Set([]byte("t3/k"), []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get([]byte("t3/k")); !ok || string(got) != "v3" {
		t.Fatalf("fallback Get = %q,%v", got, ok)
	}

	// Telemetry lists root plus the two real tenants, name-ordered.
	infos := s.NamespaceStats()
	if len(infos) != 3 {
		t.Fatalf("NamespaceStats len = %d, want 3", len(infos))
	}
	if infos[0].Name != "" || infos[1].Name != "t1" || infos[2].Name != "t2" {
		t.Fatalf("NamespaceStats order = %q,%q,%q", infos[0].Name, infos[1].Name, infos[2].Name)
	}
	if infos[1].VSID == infos[2].VSID || infos[1].VSID == infos[0].VSID {
		t.Fatal("NamespaceStats VSIDs must be distinct")
	}
}
