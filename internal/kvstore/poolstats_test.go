package kvstore

import (
	"fmt"
	"testing"

	"repro/internal/pool"
)

// Pins the server's PoolStats surface. Two invariants, both exact
// because internal/pool's freelists never drain with the GC:
//
//   - Accounting balances: at quiescence every borrow has been
//     released, so Hits+Misses+Oversize == Returned per pool. An
//     engine that leaks a borrowed buffer breaks this immediately.
//   - Traffic registers: server operations drive the wave engines, so
//     the aggregate acquisition count must move across a Set/Get/Scan
//     burst. A pool surface wired to dead counters breaks this.
func TestHicampServerPoolStats(t *testing.T) {
	s := NewHicampServer(testCfg())
	before := acquisitions(s.PoolStats())

	for i := 0; i < 32; i++ {
		k := []byte(fmt.Sprintf("poolstats-key-%d", i))
		v := []byte(fmt.Sprintf("poolstats-value-%d-0123456789abcdef", i))
		if err := s.Set(k, v); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(k); !ok || string(got) != string(v) {
			t.Fatalf("get %q = %q, %v", k, got, ok)
		}
	}
	n := 0
	if err := s.Scan(func(key, value []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 32 {
		t.Fatalf("scan saw %d pairs, want 32", n)
	}

	after := s.PoolStats()
	if len(after) == 0 {
		t.Fatal("PoolStats returned no registered pools")
	}
	for i := 1; i < len(after); i++ {
		if after[i-1].Name >= after[i].Name {
			t.Errorf("snapshot unsorted: %q before %q", after[i-1].Name, after[i].Name)
		}
	}
	for _, ps := range after {
		if got, want := ps.Hits+ps.Misses+ps.Oversize, ps.Returned; got != want {
			t.Errorf("pool %s: hits+misses+oversize = %d but returned = %d — a borrow leaked",
				ps.Name, got, want)
		}
	}
	if acquisitions(after) <= before {
		t.Error("server traffic moved no pool counter; the engines are not using the pools")
	}
}

func acquisitions(snap []pool.PoolStats) uint64 {
	var total uint64
	for _, ps := range snap {
		total += ps.Hits + ps.Misses + ps.Oversize
	}
	return total
}
