package kvstore

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
)

func fillServer(t *testing.T, s *HicampServer, n int) map[string]string {
	t.Helper()
	want := make(map[string]string, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("scan-key-%04d", i)
		v := fmt.Sprintf("scan-value-%04d-%s", i, string(bytes.Repeat([]byte{'x'}, i%50)))
		if err := s.Set([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	return want
}

func TestServerScanMatchesGet(t *testing.T) {
	s := NewHicampServer(testCfg())
	want := fillServer(t, s, 200)
	got := map[string]string{}
	var order []string
	if err := s.Scan(func(key, value []byte) bool {
		got[string(key)] = string(value)
		order = append(order, string(key))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("Scan yielded %d pairs, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Scan: key %q -> %q, want %q", k, got[k], v)
		}
	}

	// ScanParallel must emit the exact same sequence.
	var parOrder []string
	if err := s.ScanParallel(4, func(key, value []byte) bool {
		parOrder = append(parOrder, string(key))
		if got[string(key)] != string(value) {
			t.Fatalf("ScanParallel: key %q value mismatch", key)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(parOrder) != fmt.Sprint(order) {
		t.Fatal("ScanParallel order diverges from Scan")
	}

	// Keys must list the same keys in the same order.
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	var keyStrs []string
	for _, k := range keys {
		keyStrs = append(keyStrs, string(k))
	}
	if fmt.Sprint(keyStrs) != fmt.Sprint(order) {
		t.Fatal("Keys diverges from Scan order")
	}
}

func TestServerScanEarlyStop(t *testing.T) {
	s := NewHicampServer(testCfg())
	fillServer(t, s, 100)
	calls := 0
	if err := s.Scan(func(key, value []byte) bool {
		calls++
		return calls < 7
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Fatalf("early-stopped Scan made %d calls, want 7", calls)
	}
}

func TestReplicatorShipsIncrementalDeltas(t *testing.T) {
	s := NewHicampServer(testCfg())
	fillServer(t, s, 150)
	r, err := NewReplicator(s)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Round 1: no changes yet.
	rep, err := r.Delta(func(e DeltaEntry) bool {
		t.Fatalf("unchanged store shipped %q", e.Key)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed != 0 || rep.Diff.LineReads != 0 {
		t.Fatalf("no-op delta: %+v", rep)
	}

	// Round 2: a few updates, one insert, one delete.
	s.Set([]byte("scan-key-0003"), []byte("rewritten"))
	s.Set([]byte("brand-new"), []byte("fresh"))
	s.Delete([]byte("scan-key-0100"))
	wantTouched := map[string]bool{"scan-key-0003": true, "brand-new": true, "scan-key-0100": true}

	got := map[string]DeltaEntry{}
	rep, err = r.Delta(func(e DeltaEntry) bool {
		got[string(e.Key)] = DeltaEntry{Key: append([]byte(nil), e.Key...), Value: append([]byte(nil), e.Value...), Deleted: e.Deleted}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed != len(wantTouched) || len(got) != len(wantTouched) {
		t.Fatalf("delta shipped %d entries (%v), want %d", rep.Changed, keysOf(got), len(wantTouched))
	}
	if e := got["scan-key-0003"]; e.Deleted || string(e.Value) != "rewritten" {
		t.Fatalf("update entry wrong: %+v", e)
	}
	if e := got["brand-new"]; e.Deleted || string(e.Value) != "fresh" {
		t.Fatalf("insert entry wrong: %+v", e)
	}
	if e := got["scan-key-0100"]; !e.Deleted || e.Value != nil && len(e.Value) != 0 {
		t.Fatalf("delete entry wrong: %+v", e)
	}
	if rep.Diff.SubDAGSkips == 0 {
		t.Fatalf("delta walk recorded no sub-DAG skips: %+v", rep.Diff)
	}

	// Round 3: the snapshot advanced, so a repeat delta is empty.
	rep, err = r.Delta(func(e DeltaEntry) bool {
		t.Fatalf("already-shipped change re-shipped: %q", e.Key)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed != 0 {
		t.Fatalf("repeat delta shipped %d entries", rep.Changed)
	}
}

func keysOf(m map[string]DeltaEntry) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
