// Package merge implements HICAMP merge-update (paper §3.4): when a CAS
// on a merge-update segment fails because another thread committed first,
// the system three-way merges the thread's version with the new current
// version instead of aborting back to the application.
//
// The merge walks the original, modified and current DAGs together. The
// content-uniqueness of segments makes the identical-sub-DAG check a PLID
// comparison, so unchanged regions are skipped without reading them — the
// property that gives merge-update its O(changed paths) cost. At the word
// level:
//
//   - a raw data word merges by delta: cur + (mod − orig), which for the
//     common cases degenerates to "take the changed side" and for counter
//     segments produces the sum of concurrent increments;
//   - a PLID or VSID word must match the original or the modified value
//     on the current side (two threads must not store distinct new
//     references into the same field), otherwise the merge fails.
package merge

import (
	"errors"

	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// ErrConflict reports a true data conflict that merge-update cannot
// resolve; the application must re-execute its operation.
var ErrConflict = errors.New("merge: conflicting concurrent updates")

// Stats counts merge activity for the §5.1.1 experiments.
type Stats struct {
	Merges      uint64 // three-way merges attempted
	Failures    uint64 // merges that hit ErrConflict
	NodesWalked uint64 // DAG nodes expanded (skipped sub-DAGs excluded)
	SubDAGSkips uint64 // identical sub-DAGs skipped by PLID equality
}

// Merge three-way merges segments of equal height: orig is the common
// ancestor, mod the calling thread's version, cur the version committed
// meanwhile. On success the caller owns one reference on the result root.
// Stats, when non-nil, accumulates walk counters.
func Merge(m word.Mem, orig, mod, cur segment.Seg, st *Stats) (segment.Seg, error) {
	if orig.Height != mod.Height || orig.Height != cur.Height {
		// Height changes restructure the DAG; treat as a real conflict.
		return segment.Seg{}, ErrConflict
	}
	if st != nil {
		st.Merges++
	}
	e, err := mergeEdge(m,
		segment.PLIDEdge(orig.Root),
		segment.PLIDEdge(mod.Root),
		segment.PLIDEdge(cur.Root),
		orig.Height, st)
	if err != nil {
		if st != nil {
			st.Failures++
		}
		return segment.Seg{}, err
	}
	return segment.SegFromEdge(m, e, orig.Height), nil
}

// mergeEdge returns an owned edge merging the three subtrees at level.
func mergeEdge(m word.Mem, orig, mod, cur segment.Edge, level int, st *Stats) (segment.Edge, error) {
	// Identical sub-DAG skipping by content-unique edge comparison.
	if mod == orig {
		if st != nil {
			st.SubDAGSkips++
		}
		cur.Retain(m)
		return cur, nil
	}
	if cur == orig || cur == mod {
		if st != nil {
			st.SubDAGSkips++
		}
		mod.Retain(m)
		return mod, nil
	}
	if st != nil {
		st.NodesWalked++
	}
	if level == 0 {
		return mergeLeaf(m, orig, mod, cur)
	}
	co := segment.Children(m, orig, level)
	cm := segment.Children(m, mod, level)
	cc := segment.Children(m, cur, level)
	arity := m.LineWords()
	merged := make([]segment.Edge, arity)
	for i := 0; i < arity; i++ {
		e, err := mergeEdge(m, co[i], cm[i], cc[i], level-1, st)
		if err != nil {
			for j := 0; j < i; j++ {
				merged[j].Release(m)
			}
			return segment.Edge{}, err
		}
		merged[i] = e
	}
	out := segment.CanonNode(m, merged)
	for _, e := range merged {
		e.Release(m)
	}
	return out, nil
}

func mergeLeaf(m word.Mem, orig, mod, cur segment.Edge) (segment.Edge, error) {
	arity := m.LineWords()
	wo := segment.Children(m, orig, 0)
	wm := segment.Children(m, mod, 0)
	wc := segment.Children(m, cur, 0)
	ws := make([]uint64, arity)
	ts := make([]word.Tag, arity)
	for i := 0; i < arity; i++ {
		o, md, cu := wo[i], wm[i], wc[i]
		switch {
		case md == o:
			ws[i], ts[i] = cu.W, cu.T
		case cu == o || cu == md:
			ws[i], ts[i] = md.W, md.T
		case o.T == word.TagRaw && md.T == word.TagRaw && cu.T == word.TagRaw:
			// Concurrent raw-data updates merge by delta (§3.4): the
			// difference the thread applied, re-applied to the current
			// value. For counters this sums concurrent increments.
			ws[i], ts[i] = cu.W+(md.W-o.W), word.TagRaw
		default:
			// Two threads stored distinct references (or changed a
			// word's type) in the same field: a true conflict.
			return segment.Edge{}, ErrConflict
		}
	}
	return segment.CanonLeaf(m, ws, ts), nil
}

// MCAS publishes next over old at vsid with merge-update retry, following
// the paper's mCAS pseudo-code: on CAS failure the thread's changes are
// merged with the interleaving committer's and the CAS retried, failing
// only on a true data conflict. Ownership of the caller's reference on
// next transfers on success and is released on failure; the caller's
// reference on old is never consumed. The entry must carry
// segmap.FlagMergeUpdate.
func MCAS(m word.Mem, sm *segmap.Map, vsid word.VSID, old, next segment.Seg, size uint64, st *Stats) (bool, error) {
	flags, err := sm.Flags(vsid)
	if err != nil {
		segment.ReleaseSeg(m, next)
		return false, err
	}
	if flags&segmap.FlagMergeUpdate == 0 {
		segment.ReleaseSeg(m, next)
		return false, errors.New("merge: segment not flagged for merge-update")
	}
	return mcas(m, sm, vsid, old, next, size, st)
}

func mcas(m word.Mem, sm *segmap.Map, vsid word.VSID, old, next segment.Seg, size uint64, st *Stats) (bool, error) {
	// The caller's reference on old is never consumed. next is owned by
	// this function: transferred to the map on success, released on
	// failure. anc is the merge ancestor — the caller's old at first,
	// then each observed current version (whose Load reference we own).
	anc, ancOwned := old, false
	done := func(err error) (bool, error) {
		segment.ReleaseSeg(m, next)
		if ancOwned {
			segment.ReleaseSeg(m, anc)
		}
		return false, err
	}
	for {
		if sm.CAS(vsid, anc, next, size) {
			if ancOwned {
				segment.ReleaseSeg(m, anc)
			}
			return true, nil
		}
		e, err := sm.Load(vsid) // cur in the paper's pseudo-code
		if err != nil {
			return done(err)
		}
		merged, err := Merge(m, anc, next, e.Seg, st)
		if err != nil {
			segment.ReleaseSeg(m, e.Seg)
			return done(err)
		}
		segment.ReleaseSeg(m, next)
		if ancOwned {
			segment.ReleaseSeg(m, anc)
		}
		anc, ancOwned = e.Seg, true
		next = merged
	}
}
