// Package merge implements HICAMP merge-update (paper §3.4): when a CAS
// on a merge-update segment fails because another thread committed first,
// the system three-way merges the thread's version with the new current
// version instead of aborting back to the application.
//
// The merge is a wave-structured rebase engine. It co-walks the original,
// modified and current DAGs in level-order waves: each wave's distinct
// lines — across all three versions — are fetched through one batched
// read (word.MemCaps.ReadBatch), and the merged levels canonicalize
// bottom-up with one batched lookup per level (segment.CanonBatch), the
// same wave discipline as segment.WriteBatch. The content-uniqueness of
// segments makes the identical-sub-DAG check a PLID comparison, so
// unchanged regions are skipped per wave without reading them — the
// property that gives merge-update its O(changed paths) cost. At the word
// level:
//
//   - a raw data word merges by delta: cur + (mod − orig), which for the
//     common cases degenerates to "take the changed side" and for counter
//     segments produces the sum of concurrent increments. One caveat the
//     paper's rule shares: two IDENTICAL concurrent deltas are
//     indistinguishable from an already-merged state under content-unique
//     versions (cur == mod takes mod, it cannot know a second increment
//     happened), so exact counters need content-distinct increments;
//   - a PLID or VSID word must match the original or the modified value
//     on the current side (two threads must not store distinct new
//     references into the same field), otherwise the merge fails.
//
// Height-mismatched inputs are not conflicts: a version that grew (a
// store beyond the old capacity re-roots the DAG through zero-padded
// parents) merges against shorter versions by logically re-rooting the
// shorter DAGs the same way, so grow-then-commit under contention
// rebases instead of aborting. ErrConflict is reserved for true data
// conflicts. Conflict detection runs during the read-only descent, before
// any line is allocated, so an aborted merge allocates nothing.
package merge

import (
	"errors"

	"repro/internal/pool"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// ErrConflict reports a true data conflict that merge-update cannot
// resolve; the application must re-execute its operation.
var ErrConflict = errors.New("merge: conflicting concurrent updates")

// Stats counts merge activity for the §5.1.1 experiments.
type Stats struct {
	Merges        uint64 // three-way merges attempted
	Failures      uint64 // merges that hit ErrConflict
	NodesWalked   uint64 // DAG nodes expanded (skipped sub-DAGs excluded)
	SubDAGSkips   uint64 // identical sub-DAGs skipped by PLID equality
	WaveLevels    uint64 // DAG levels canonicalized, one batch pass each
	LineReads     uint64 // distinct lines fetched during the co-walk
	Lookups       uint64 // lookup-by-content operations at canonicalization
	HeightAligned uint64 // merges whose inputs needed zero-padded re-rooting
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Merges += o.Merges
	s.Failures += o.Failures
	s.NodesWalked += o.NodesWalked
	s.SubDAGSkips += o.SubDAGSkips
	s.WaveLevels += o.WaveLevels
	s.LineReads += o.LineReads
	s.Lookups += o.Lookups
	s.HeightAligned += o.HeightAligned
}

// side is one version's view of a subtree position during the co-walk:
// the canonical edge plus the number of zero-padded parent levels still
// owed above it (height re-rooting, paper §3.3 growth applied logically).
// A side with deficit d at walk level L holds a real subtree of level
// L-d sitting in the leftmost position. Zero edges normalize to deficit
// 0 so padded and real zero subtrees compare equal.
type side struct {
	e segment.Edge
	d int
}

func mkSide(e segment.Edge, d int) side {
	if e.IsZero() {
		return side{segment.ZeroEdge, 0}
	}
	return side{e, d}
}

// mnode is one expanded node of the merge wave: the three versions'
// views of one subtree position, the merged child edges (borrowed from
// the live input DAGs, overlaid by owned fresh edges as lower levels
// canonicalize), and the child positions that required their own merge.
// pad nodes carry no triple: they materialize a skipped-but-shorter
// side's zero-padded re-rooting at canonicalization time.
type mnode struct {
	level          int
	orig, mod, cur side
	pad            bool // out = padEdge(padE, padD); no expansion
	padE           segment.Edge
	padD           int
	edges          []segment.Edge
	owned          []bool
	slots          []int
	kids           []*mnode
	out            segment.Edge // canonical merged edge (owns its PLID reference)
}

// Merge three-way merges segments: orig is the common ancestor, mod the
// calling thread's version, cur the version committed meanwhile. Heights
// may differ (a version that grew merges against the others through
// zero-padded re-rooting); the result's height is the maximum of the
// three. On success the caller owns one reference on the result root.
// Stats, when non-nil, accumulates walk counters.
func Merge(m word.Mem, orig, mod, cur segment.Seg, st *Stats) (segment.Seg, error) {
	height := max(orig.Height, max(mod.Height, cur.Height))
	if st != nil {
		st.Merges++
		if orig.Height != mod.Height || orig.Height != cur.Height {
			st.HeightAligned++
		}
	}
	so := mkSide(segment.PLIDEdge(orig.Root), height-orig.Height)
	sm := mkSide(segment.PLIDEdge(mod.Root), height-mod.Height)
	sc := mkSide(segment.PLIDEdge(cur.Root), height-cur.Height)

	// Root-level sub-DAG skipping: whole-version equality.
	if sm == so {
		if st != nil {
			st.SubDAGSkips++
		}
		return padSeg(m, sc, height), nil
	}
	if sc == so || sc == sm {
		if st != nil {
			st.SubDAGSkips++
		}
		return padSeg(m, sm, height), nil
	}

	out, err := coWalk(m, so, sm, sc, height, st)
	if err != nil {
		if st != nil {
			st.Failures++
		}
		return segment.Seg{}, err
	}
	return segment.SegFromEdge(m, out, height), nil
}

// merger is the reusable state of one wave merge: the per-level node
// lists and every descent-side scratch buffer, all retaining their
// capacity between merges so a steady-state merge allocates nothing.
type merger struct {
	levels     [][]*mnode
	plids      []word.PLID
	contents   []word.Content
	readAt     map[word.PLID]int
	eo, em, ec []segment.Edge
}

// mergerPool recycles merge walk state; resetMerger drops the parked
// *mnode pointers (the nodes themselves return to mnodePool in coWalk's
// teardown) while keeping every buffer's capacity and the dedup map's
// buckets.
var mergerPool = pool.NewItems[merger]("merge.merger", resetMerger)

func resetMerger(w *merger) {
	for i := range w.levels {
		lv := w.levels[i][:cap(w.levels[i])]
		clear(lv)
		w.levels[i] = lv[:0]
	}
	w.plids = w.plids[:0]
	w.contents = w.contents[:0]
	// The descent's last wave is its widest (levels grow toward the
	// leaves), so readAt is at peak entry count here: drop it past the
	// keep bound rather than pinning its O(capacity) clear cost on
	// every later borrower.
	w.readAt = pool.ResetMap(w.readAt, 0)
	w.eo, w.em, w.ec = w.eo[:0], w.em[:0], w.ec[:0]
}

// mnodePool recycles merge wave nodes; the reset drops the *mnode links
// and zeroes the triple while keeping the per-node slice capacities.
var mnodePool = pool.NewItems[mnode]("merge.mnode", func(n *mnode) {
	clear(n.kids)
	*n = mnode{
		edges: n.edges[:0],
		owned: n.owned[:0],
		slots: n.slots[:0],
		kids:  n.kids[:0],
	}
})

// getMnode borrows a wave node with its child arrays sized and zeroed
// for arity children.
func getMnode(level, arity int) *mnode {
	n := mnodePool.Get()
	n.level = level
	if cap(n.edges) < arity {
		n.edges = make([]segment.Edge, arity)
		n.owned = make([]bool, arity)
	} else {
		n.edges = n.edges[:arity]
		n.owned = n.owned[:arity]
		clear(n.edges)
		clear(n.owned)
	}
	return n
}

// coWalk runs the two wave sweeps over the merge tree rooted at the
// (vo, vm, vc) triple: the top-down batched descent (which also applies
// the §3.4 word-merge rules at the leaves, detecting true conflicts
// before anything is allocated) and the bottom-up batched
// canonicalization. On success the returned edge is the owned merged
// root. All wave state is borrowed from the package pools and parked
// again before returning, error or not.
func coWalk(m word.Mem, vo, vm, vc side, height int, st *Stats) (segment.Edge, error) {
	arity := m.LineWords()
	caps := word.Caps(m)
	w := mergerPool.Get()
	defer mergerPool.Put(w)
	for len(w.levels) < height+1 {
		w.levels = append(w.levels, nil)
	}
	levels := w.levels[:height+1]
	// Park every wave node before the merger itself goes back (defers run
	// last-in first-out); the caller sees only the copied-out root edge.
	defer func() {
		for _, nodes := range levels {
			for _, n := range nodes {
				mnodePool.Put(n)
			}
		}
	}()
	if w.readAt == nil {
		w.readAt = make(map[word.PLID]int)
	}
	if cap(w.eo) < arity {
		w.eo = make([]segment.Edge, arity)
		w.em = make([]segment.Edge, arity)
		w.ec = make([]segment.Edge, arity)
	}
	root := getMnode(height, arity)
	root.orig, root.mod, root.cur = vo, vm, vc
	levels[height] = append(levels[height], root)

	// Top-down descent: one deduped batch read per level across all
	// three versions, then per-node triple expansion and child skipping.
	plids := w.plids
	defer func() { w.plids = plids[:0] }()
	readAt := w.readAt
	eo, em, ec := w.eo[:arity], w.em[:arity], w.ec[:arity]
	for lvl := height; lvl >= 0; lvl-- {
		nodes := levels[lvl]
		if len(nodes) == 0 {
			continue
		}
		plids = plids[:0]
		clear(readAt)
		collect := func(s side) {
			if s.d == 0 && s.e.T == word.TagPLID && s.e.W != 0 {
				p := word.PLID(s.e.W)
				if _, ok := readAt[p]; !ok {
					readAt[p] = len(plids)
					plids = append(plids, p)
				}
			}
		}
		for _, n := range nodes {
			if n.pad {
				continue
			}
			collect(n.orig)
			collect(n.mod)
			collect(n.cur)
		}
		var contents []word.Content
		if len(plids) > 0 {
			if cap(w.contents) < len(plids) {
				w.contents = make([]word.Content, len(plids))
			}
			contents = w.contents[:len(plids)]
			caps.ReadBatchInto(plids, contents)
			if st != nil {
				st.LineReads += uint64(len(plids))
			}
		}
		for _, n := range nodes {
			if n.pad {
				continue
			}
			if st != nil {
				st.NodesWalked++
			}
			expandSide(m, n.orig, lvl, contents, readAt, eo)
			expandSide(m, n.mod, lvl, contents, readAt, em)
			expandSide(m, n.cur, lvl, contents, readAt, ec)
			if lvl == 0 {
				// Leaf word merge (§3.4). Pure logic: a conflict aborts
				// the whole merge before any line is allocated.
				for i := 0; i < arity; i++ {
					me, err := mergeWord(eo[i], em[i], ec[i])
					if err != nil {
						return segment.Edge{}, err
					}
					n.edges[i] = me
				}
				continue
			}
			dO, dM, dC := childDeficit(n.orig), childDeficit(n.mod), childDeficit(n.cur)
			for i := 0; i < arity; i++ {
				co := mkSide(eo[i], deficitAt(dO, i))
				cm := mkSide(em[i], deficitAt(dM, i))
				cc := mkSide(ec[i], deficitAt(dC, i))
				// Per-child sub-DAG skipping by content-unique comparison.
				var skip side
				switch {
				case cm == co:
					skip = cc
				case cc == co || cc == cm:
					skip = cm
				default:
					kid := getMnode(lvl-1, arity)
					kid.orig, kid.mod, kid.cur = co, cm, cc
					n.slots = append(n.slots, i)
					n.kids = append(n.kids, kid)
					levels[lvl-1] = append(levels[lvl-1], kid)
					continue
				}
				if st != nil && !(co.e.IsZero() && cm.e.IsZero() && cc.e.IsZero()) {
					st.SubDAGSkips++
				}
				if skip.d == 0 {
					// Borrowed pass-through: the winning version's subtree
					// slots in by PLID, zero reads, zero RC traffic.
					n.edges[i] = skip.e
					continue
				}
				// The winning side is shorter here: its zero-padded
				// re-rooting materializes at canonicalization time (so an
				// aborted merge still allocates nothing).
				kid := getMnode(lvl-1, arity)
				kid.pad, kid.padE, kid.padD = true, skip.e, skip.d
				n.slots = append(n.slots, i)
				n.kids = append(n.kids, kid)
				levels[lvl-1] = append(levels[lvl-1], kid)
			}
		}
	}

	// Bottom-up canonicalization: one batched lookup pass per level.
	// Fresh child references release only after their parent level
	// resolves (the parent lines take their own references during the
	// lookup, which needs the children still live).
	cb := segment.AcquireCanonBatch(m, caps)
	defer cb.Close()
	for lvl := 0; lvl <= height; lvl++ {
		nodes := levels[lvl]
		if len(nodes) == 0 {
			continue
		}
		if st != nil {
			st.WaveLevels++
		}
		for _, n := range nodes {
			if n.pad {
				n.out = padEdge(m, n.padE, n.padD)
				continue
			}
			for i, slot := range n.slots {
				n.edges[slot] = n.kids[i].out
				n.owned[slot] = true
			}
			if lvl == 0 {
				cb.Leaf(n.edges, &n.out)
			} else {
				cb.Node(n.edges, &n.out)
			}
		}
		if st != nil {
			st.Lookups += cb.Resolve()
		} else {
			cb.Resolve()
		}
		for _, n := range nodes {
			if n.pad { // pad nodes hold no fresh children
				continue
			}
			for i := range n.edges {
				if n.owned[i] {
					n.edges[i].Release(m)
					n.owned[i] = false
				}
			}
		}
	}
	return root.out, nil
}

// expandSide fills buf with the arity child edges of s at the walk
// level: a deficit side expands synthetically (its real subtree is the
// leftmost child of an implicit zero-padded parent), everything else
// expands through the batch-read contents or the access-free local forms
// (zero, inline, compact).
func expandSide(m word.Mem, s side, lvl int, contents []word.Content, readAt map[word.PLID]int, buf []segment.Edge) {
	for i := range buf {
		buf[i] = segment.Edge{}
	}
	switch {
	case s.d > 0:
		buf[0] = s.e
	case s.e.IsZero():
	case s.e.T == word.TagPLID:
		c := contents[readAt[word.PLID(s.e.W)]]
		for i := range buf {
			buf[i] = segment.Edge{W: c.W[i], T: c.T[i]}
		}
	default:
		segment.ChildrenInto(m, s.e, lvl, buf)
	}
}

// childDeficit returns the deficit the leftmost child of s inherits: a
// padded side passes its real edge down with one less level owed.
func childDeficit(s side) int {
	if s.d > 0 {
		return s.d - 1
	}
	return 0
}

// deficitAt places the inherited deficit: only the leftmost child of a
// padded side carries one (the other slots are true zero subtrees).
func deficitAt(d, slot int) int {
	if slot == 0 {
		return d
	}
	return 0
}

// mergeWord applies the §3.4 word-level merge rule to one (orig, mod,
// cur) word triple.
func mergeWord(o, md, cu segment.Edge) (segment.Edge, error) {
	switch {
	case md == o:
		return cu, nil
	case cu == o || cu == md:
		return md, nil
	case o.T == word.TagRaw && md.T == word.TagRaw && cu.T == word.TagRaw:
		// Concurrent raw-data updates merge by delta (§3.4): the
		// difference the thread applied, re-applied to the current
		// value. For counters this sums concurrent increments.
		return segment.Edge{W: cu.W + (md.W - o.W), T: word.TagRaw}, nil
	default:
		// Two threads stored distinct references (or changed a word's
		// type) in the same field: a true conflict.
		return segment.Edge{}, ErrConflict
	}
}

// padEdge returns an owned edge of d levels above e's own level holding
// e's subtree in the leftmost position — the zero-padded re-rooting a
// grown segment's transient parents perform, applied to an already
// canonical edge. d == 0 just retains e.
func padEdge(m word.Mem, e segment.Edge, d int) segment.Edge {
	e.Retain(m)
	if d == 0 || e.IsZero() {
		return e
	}
	var kbuf [word.MaxWords]segment.Edge
	kids := kbuf[:m.LineWords()]
	for i := 0; i < d; i++ {
		for j := range kids {
			kids[j] = segment.Edge{}
		}
		kids[0] = e
		next := segment.CanonNode(m, kids)
		e.Release(m)
		e = next
	}
	return e
}

// padSeg re-roots s to the target height through zero-padded parents,
// returning an owned segment; at zero deficit it just retains s.
func padSeg(m word.Mem, s side, height int) segment.Seg {
	return segment.SegFromEdge(m, padEdge(m, s.e, s.d), height)
}

// MergeSerial is the per-node recursive reference implementation of the
// three-way merge, kept as the semantic and accounting baseline the wave
// engine is verified (and benchmarked) against. It requires equal
// heights; align shorter inputs with zero-padded re-rooting first (Merge
// does this itself).
func MergeSerial(m word.Mem, orig, mod, cur segment.Seg, st *Stats) (segment.Seg, error) {
	if orig.Height != mod.Height || orig.Height != cur.Height {
		return segment.Seg{}, ErrConflict
	}
	if st != nil {
		st.Merges++
	}
	e, err := mergeEdge(m,
		segment.PLIDEdge(orig.Root),
		segment.PLIDEdge(mod.Root),
		segment.PLIDEdge(cur.Root),
		orig.Height, st)
	if err != nil {
		if st != nil {
			st.Failures++
		}
		return segment.Seg{}, err
	}
	return segment.SegFromEdge(m, e, orig.Height), nil
}

// mergeEdge returns an owned edge merging the three subtrees at level.
func mergeEdge(m word.Mem, orig, mod, cur segment.Edge, level int, st *Stats) (segment.Edge, error) {
	// Identical sub-DAG skipping by content-unique edge comparison.
	if mod == orig {
		if st != nil {
			st.SubDAGSkips++
		}
		cur.Retain(m)
		return cur, nil
	}
	if cur == orig || cur == mod {
		if st != nil {
			st.SubDAGSkips++
		}
		mod.Retain(m)
		return mod, nil
	}
	if st != nil {
		st.NodesWalked++
	}
	if level == 0 {
		return mergeLeaf(m, orig, mod, cur)
	}
	co := segment.Children(m, orig, level)
	cm := segment.Children(m, mod, level)
	cc := segment.Children(m, cur, level)
	arity := m.LineWords()
	merged := make([]segment.Edge, arity)
	for i := 0; i < arity; i++ {
		e, err := mergeEdge(m, co[i], cm[i], cc[i], level-1, st)
		if err != nil {
			for j := 0; j < i; j++ {
				merged[j].Release(m)
			}
			return segment.Edge{}, err
		}
		merged[i] = e
	}
	out := segment.CanonNode(m, merged)
	for _, e := range merged {
		e.Release(m)
	}
	return out, nil
}

func mergeLeaf(m word.Mem, orig, mod, cur segment.Edge) (segment.Edge, error) {
	arity := m.LineWords()
	wo := segment.Children(m, orig, 0)
	wm := segment.Children(m, mod, 0)
	wc := segment.Children(m, cur, 0)
	ws := make([]uint64, arity)
	ts := make([]word.Tag, arity)
	for i := 0; i < arity; i++ {
		e, err := mergeWord(wo[i], wm[i], wc[i])
		if err != nil {
			return segment.Edge{}, err
		}
		ws[i], ts[i] = e.W, e.T
	}
	return segment.CanonLeaf(m, ws, ts), nil
}

// MCAS publishes next over old at vsid with merge-update retry, following
// the paper's mCAS pseudo-code: on CAS failure the thread's changes are
// merged with the interleaving committer's and the CAS retried, failing
// only on a true data conflict. Ownership of the caller's reference on
// next transfers on success and is released on failure; the caller's
// reference on old is never consumed. The entry must carry
// segmap.FlagMergeUpdate.
//
// size is the logical size the caller's own version registers; when the
// publish rebases over an interleaved committer, the registered size is
// the maximum of the caller's and every merged-in version's — a merged
// grown segment never shrinks the registered size.
func MCAS(m word.Mem, sm *segmap.Map, vsid word.VSID, old, next segment.Seg, size uint64, st *Stats) (bool, error) {
	flags, err := sm.Flags(vsid)
	if err != nil {
		segment.ReleaseSeg(m, next)
		return false, err
	}
	if flags&segmap.FlagMergeUpdate == 0 {
		segment.ReleaseSeg(m, next)
		return false, errors.New("merge: segment not flagged for merge-update")
	}
	return mcas(m, sm, vsid, old, next, size, st)
}

func mcas(m word.Mem, sm *segmap.Map, vsid word.VSID, old, next segment.Seg, size uint64, st *Stats) (bool, error) {
	// The caller's reference on old is never consumed. next is owned by
	// this function: transferred to the map on success, released on
	// failure. anc is the merge ancestor — the caller's old at first,
	// then each observed current version (whose Load reference we own).
	anc, ancOwned := old, false
	done := func(err error) (bool, error) {
		segment.ReleaseSeg(m, next)
		if ancOwned {
			segment.ReleaseSeg(m, anc)
		}
		return false, err
	}
	for {
		if sm.CAS(vsid, anc, next, size) {
			if ancOwned {
				segment.ReleaseSeg(m, anc)
			}
			return true, nil
		}
		e, err := sm.Load(vsid) // cur in the paper's pseudo-code
		if err != nil {
			return done(err)
		}
		if e.Size > size {
			size = e.Size // the interleaved commit registered a larger size
		}
		merged, err := Merge(m, anc, next, e.Seg, st)
		if err != nil {
			segment.ReleaseSeg(m, e.Seg)
			return done(err)
		}
		segment.ReleaseSeg(m, next)
		if ancOwned {
			segment.ReleaseSeg(m, anc)
		}
		anc, ancOwned = e.Seg, true
		next = merged
	}
}
