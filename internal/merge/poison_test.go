package merge

import (
	"testing"

	"repro/internal/pool"
	"repro/internal/word"
)

// White-box pin for the merger's map retention bound, mirroring the
// segment package's poison tests: the descent's read-dedup map is at
// its widest when the walk ends, and an oversized one must be dropped
// by the pooled reset rather than pinning its O(grown capacity) clear
// cost on every later merge.
func TestMergerResetDropsOversizedReadMap(t *testing.T) {
	w := mergerPool.Get()
	w.readAt = make(map[word.PLID]int, pool.KeepMapEntries+1)
	for i := 0; i < pool.KeepMapEntries+1; i++ {
		w.readAt[word.PLID(i+1)] = i
	}
	resetMerger(w)
	if w.readAt != nil {
		t.Fatal("oversized read-dedup map survived reset")
	}
	w.readAt = map[word.PLID]int{1: 1}
	resetMerger(w)
	if w.readAt == nil || len(w.readAt) != 0 {
		t.Fatalf("steady-state map not cleared in place: %v", w.readAt)
	}
	mergerPool.Put(w)
}
