package merge

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// refMerge is the §3.4 word-merge rule applied to flat arrays: the
// reference model for the DAG implementation.
func refMerge(orig, mod, cur []uint64) ([]uint64, bool) {
	out := make([]uint64, len(orig))
	for i := range orig {
		switch {
		case mod[i] == orig[i]:
			out[i] = cur[i]
		case cur[i] == orig[i] || cur[i] == mod[i]:
			out[i] = mod[i]
		default:
			out[i] = cur[i] + (mod[i] - orig[i]) // raw-word delta rule
		}
	}
	return out, true
}

// TestMergeMatchesReferenceModel generates random base arrays and random
// update pairs and checks the DAG merge against the flat-array model.
func TestMergeMatchesReferenceModel(t *testing.T) {
	const space = 256
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, _ := setup()

		base := make([]uint64, space)
		for i := 0; i < 40; i++ {
			base[rng.Intn(space)] = uint64(rng.Intn(1000))
		}
		apply := func(src []uint64, n int) []uint64 {
			out := append([]uint64(nil), src...)
			for i := 0; i < n; i++ {
				out[rng.Intn(space)] = uint64(rng.Intn(1000))
			}
			return out
		}
		modA := apply(base, 1+rng.Intn(8))
		curA := apply(base, 1+rng.Intn(8))

		build := func(ws []uint64) segment.Seg {
			s := segment.BuildWords(m, ws, nil)
			if s.Height != segment.HeightFor(m.LineWords(), space) {
				// Force equal heights by building at full capacity.
				tx := segment.NewTxn(m, segment.NewSparse(segment.HeightFor(m.LineWords(), space)))
				for i, w := range ws {
					if w != 0 {
						tx.WriteWord(uint64(i), w, word.TagRaw)
					}
				}
				segment.ReleaseSeg(m, s)
				return tx.Commit()
			}
			return s
		}
		orig := build(base)
		mod := build(modA)
		cur := build(curA)

		got, err := Merge(m, orig, mod, cur, nil)
		if err != nil {
			t.Fatalf("seed %d: raw-word merges cannot conflict: %v", seed, err)
		}
		want, _ := refMerge(base, modA, curA)
		for i := range want {
			if v, _ := segment.ReadWord(m, got, uint64(i)); v != want[i] {
				t.Fatalf("seed %d: merged[%d] = %d, want %d", seed, i, v, want[i])
			}
		}
		// Canonicality: merging must produce the same root as building
		// the merged content directly.
		direct := build(want)
		if !got.Equal(direct) {
			t.Fatalf("seed %d: merge result not canonical (%#x vs %#x)",
				seed, got.Root, direct.Root)
		}
	}
}

// TestMergeReplayEquivalence is the rebase-correctness property: on
// disjoint update sets, Merge(orig, mod, cur) is PLID-equal to replaying
// both update sets serially on orig — merging IS the rebase, including
// when one side grew the segment. Content-uniqueness makes the
// comparison a single root check.
func TestMergeReplayEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, _ := setup()

		base := buildAt(m, 6, map[uint64]uint64{0: 1})
		cap6 := base.Capacity(m.LineWords())
		// Disjoint index pools; seeds ≥ 5 let mod overflow capacity so
		// the merge must height-align.
		space := cap6
		if seed >= 5 {
			space = cap6 * uint64(m.LineWords())
		}
		pick := func(parity uint64) []segment.Update {
			n := 1 + rng.Intn(12)
			ups := make([]segment.Update, 0, n)
			for i := 0; i < n; i++ {
				idx := rng.Uint64() % space
				idx -= idx % 2
				idx += parity
				ups = append(ups, segment.Update{Idx: idx, W: rng.Uint64()%1000 + 1, T: word.TagRaw})
			}
			return ups
		}
		modUps, curUps := pick(0), pick(1) // even vs odd indices: disjoint

		mod, _ := segment.WriteBatch(m, base, modUps)
		cur, _ := segment.WriteBatch(m, base, curUps)
		merged, err := Merge(m, base, mod, cur, nil)
		if err != nil {
			t.Fatalf("seed %d: disjoint merge conflicted: %v", seed, err)
		}
		replayed, _ := segment.WriteBatch(m, base, append(append([]segment.Update(nil), curUps...), modUps...))
		if !merged.Equal(replayed) {
			t.Fatalf("seed %d: merge %#x/%d != serial replay %#x/%d",
				seed, merged.Root, merged.Height, replayed.Root, replayed.Height)
		}
	}
}

// TestMCASConcurrentGrowthStress drives concurrent MCAS publishers whose
// disjoint writes keep growing the segment, so height-aligned rebases
// happen under real interleavings (run with -race -cpu=1,4 in CI).
func TestMCASConcurrentGrowthStress(t *testing.T) {
	m, sm := setup()
	base := buildAt(m, 2, map[uint64]uint64{0: 1})
	v := sm.Create(segmap.Entry{Seg: base, Flags: segmap.FlagMergeUpdate})
	const workers, writes = 4, 20
	done := make(chan struct{}, workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < writes; i++ {
				// Stride the indices upward so successive writes force
				// capacity growth at different times per worker.
				idx := uint64(1+g) << (uint64(i) % 14) * 16
				idx += uint64(g) // disjoint across workers
				e, err := sm.Load(v)
				if err != nil {
					t.Error(err)
					return
				}
				next, _ := segment.WriteBatch(m, e.Seg,
					[]segment.Update{{Idx: idx, W: uint64(g*1000 + i + 1), T: word.TagRaw}})
				ok, err := MCAS(m, sm, v, e.Seg, next, (idx+1)*8, nil)
				segment.ReleaseSeg(m, e.Seg)
				if err != nil || !ok {
					t.Errorf("worker %d write %d: ok=%v err=%v", g, i, ok, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < workers; g++ {
		<-done
	}
	final, _ := sm.Load(v)
	defer segment.ReleaseSeg(m, final.Seg)
	for g := 0; g < workers; g++ {
		for i := 0; i < writes; i++ {
			idx := uint64(1+g)<<(uint64(i)%14)*16 + uint64(g)
			want := uint64(g*1000 + i + 1)
			// Same worker may hit the same index twice (stride cycles);
			// the last write wins.
			for j := i + 1; j < writes; j++ {
				if uint64(1+g)<<(uint64(j)%14)*16+uint64(g) == idx {
					want = uint64(g*1000 + j + 1)
				}
			}
			if got, _ := segment.ReadWord(m, final.Seg, idx); got != want {
				t.Fatalf("worker %d write [%d] = %d, want %d", g, idx, got, want)
			}
		}
	}
}

// TestMCASRegistersMergedSize pins the size semantics of merge-update
// publication: when an MCAS rebases over an interleaved commit that
// registered a larger logical size (a grown map), the retried CAS
// registers the maximum — the merged segment never reports smaller than
// any merged-in version.
func TestMCASRegistersMergedSize(t *testing.T) {
	m, sm := setup()
	base := buildAt(m, 4, map[uint64]uint64{0: 1})
	v := sm.Create(segmap.Entry{Seg: base, Size: 8, Flags: segmap.FlagMergeUpdate})

	old, _ := sm.Load(v)
	// Interleaver commits a grown version registering a larger size.
	grown := modify(m, old.Seg, map[uint64]uint64{500: 5})
	if !sm.CAS(v, old.Seg, grown, 501*8) {
		t.Fatal("setup CAS failed")
	}
	// Our thread, still holding the stale old, publishes a small disjoint
	// update with its own (small) size; MCAS must rebase and keep the
	// interleaver's larger registered size.
	next := modify(m, old.Seg, map[uint64]uint64{1: 2})
	ok, err := MCAS(m, sm, v, old.Seg, next, 2*8, nil)
	segment.ReleaseSeg(m, old.Seg)
	if err != nil || !ok {
		t.Fatalf("mcas: ok=%v err=%v", ok, err)
	}
	final, _ := sm.Load(v)
	defer segment.ReleaseSeg(m, final.Seg)
	if final.Size != 501*8 {
		t.Fatalf("registered size = %d, want %d (merged grown map must not shrink)", final.Size, 501*8)
	}
	if got, _ := segment.ReadWord(m, final.Seg, 500); got != 5 {
		t.Fatal("interleaved grown write lost")
	}
	if got, _ := segment.ReadWord(m, final.Seg, 1); got != 2 {
		t.Fatal("rebased write lost")
	}
}

// TestMCASLinearizesRandomWorkload hammers one merge-update segment with
// random per-worker writes to disjoint regions and verifies every write
// lands, whatever the interleaving.
func TestMCASLinearizesRandomWorkload(t *testing.T) {
	m, sm := setup()
	base := buildAt(m, 12, map[uint64]uint64{0: 1})
	v := sm.Create(segmap.Entry{Seg: base, Flags: segmap.FlagMergeUpdate})
	type rec struct{ idx, val uint64 }
	results := make(chan []rec, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			var mine []rec
			for i := 0; i < 30; i++ {
				idx := uint64(g*4096 + rng.Intn(4000) + 1)
				val := rng.Uint64()%1000 + 1
				for {
					e, err := sm.Load(v)
					if err != nil {
						t.Error(err)
						return
					}
					tx := segment.NewTxn(m, e.Seg)
					tx.WriteWord(idx, val, word.TagRaw)
					next := tx.Commit()
					ok, err := MCAS(m, sm, v, e.Seg, next, 0, nil)
					segment.ReleaseSeg(m, e.Seg)
					if err != nil && !errors.Is(err, ErrConflict) {
						t.Error(err)
						return
					}
					if ok {
						break
					}
				}
				mine = append(mine, rec{idx, val})
			}
			results <- mine
		}(g)
	}
	final := map[uint64]uint64{}
	for g := 0; g < 4; g++ {
		for _, r := range <-results {
			final[r.idx] = r.val // later writes by same worker win
		}
	}
	e, _ := sm.Load(v)
	defer segment.ReleaseSeg(m, e.Seg)
	for idx, val := range final {
		if got, _ := segment.ReadWord(m, e.Seg, idx); got != val {
			t.Fatalf("write [%d]=%d lost (got %d)", idx, val, got)
		}
	}
}
