package merge

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

// refMerge is the §3.4 word-merge rule applied to flat arrays: the
// reference model for the DAG implementation.
func refMerge(orig, mod, cur []uint64) ([]uint64, bool) {
	out := make([]uint64, len(orig))
	for i := range orig {
		switch {
		case mod[i] == orig[i]:
			out[i] = cur[i]
		case cur[i] == orig[i] || cur[i] == mod[i]:
			out[i] = mod[i]
		default:
			out[i] = cur[i] + (mod[i] - orig[i]) // raw-word delta rule
		}
	}
	return out, true
}

// TestMergeMatchesReferenceModel generates random base arrays and random
// update pairs and checks the DAG merge against the flat-array model.
func TestMergeMatchesReferenceModel(t *testing.T) {
	const space = 256
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, _ := setup()

		base := make([]uint64, space)
		for i := 0; i < 40; i++ {
			base[rng.Intn(space)] = uint64(rng.Intn(1000))
		}
		apply := func(src []uint64, n int) []uint64 {
			out := append([]uint64(nil), src...)
			for i := 0; i < n; i++ {
				out[rng.Intn(space)] = uint64(rng.Intn(1000))
			}
			return out
		}
		modA := apply(base, 1+rng.Intn(8))
		curA := apply(base, 1+rng.Intn(8))

		build := func(ws []uint64) segment.Seg {
			s := segment.BuildWords(m, ws, nil)
			if s.Height != segment.HeightFor(m.LineWords(), space) {
				// Force equal heights by building at full capacity.
				tx := segment.NewTxn(m, segment.NewSparse(segment.HeightFor(m.LineWords(), space)))
				for i, w := range ws {
					if w != 0 {
						tx.WriteWord(uint64(i), w, word.TagRaw)
					}
				}
				segment.ReleaseSeg(m, s)
				return tx.Commit()
			}
			return s
		}
		orig := build(base)
		mod := build(modA)
		cur := build(curA)

		got, err := Merge(m, orig, mod, cur, nil)
		if err != nil {
			t.Fatalf("seed %d: raw-word merges cannot conflict: %v", seed, err)
		}
		want, _ := refMerge(base, modA, curA)
		for i := range want {
			if v, _ := segment.ReadWord(m, got, uint64(i)); v != want[i] {
				t.Fatalf("seed %d: merged[%d] = %d, want %d", seed, i, v, want[i])
			}
		}
		// Canonicality: merging must produce the same root as building
		// the merged content directly.
		direct := build(want)
		if !got.Equal(direct) {
			t.Fatalf("seed %d: merge result not canonical (%#x vs %#x)",
				seed, got.Root, direct.Root)
		}
	}
}

// TestMCASLinearizesRandomWorkload hammers one merge-update segment with
// random per-worker writes to disjoint regions and verifies every write
// lands, whatever the interleaving.
func TestMCASLinearizesRandomWorkload(t *testing.T) {
	m, sm := setup()
	base := buildAt(m, 12, map[uint64]uint64{0: 1})
	v := sm.Create(segmap.Entry{Seg: base, Flags: segmap.FlagMergeUpdate})
	type rec struct{ idx, val uint64 }
	results := make(chan []rec, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g)))
			var mine []rec
			for i := 0; i < 30; i++ {
				idx := uint64(g*4096 + rng.Intn(4000) + 1)
				val := rng.Uint64()%1000 + 1
				for {
					e, err := sm.Load(v)
					if err != nil {
						t.Error(err)
						return
					}
					tx := segment.NewTxn(m, e.Seg)
					tx.WriteWord(idx, val, word.TagRaw)
					next := tx.Commit()
					ok, err := MCAS(m, sm, v, e.Seg, next, 0, nil)
					segment.ReleaseSeg(m, e.Seg)
					if err != nil && !errors.Is(err, ErrConflict) {
						t.Error(err)
						return
					}
					if ok {
						break
					}
				}
				mine = append(mine, rec{idx, val})
			}
			results <- mine
		}(g)
	}
	final := map[uint64]uint64{}
	for g := 0; g < 4; g++ {
		for _, r := range <-results {
			final[r.idx] = r.val // later writes by same worker win
		}
	}
	e, _ := sm.Load(v)
	defer segment.ReleaseSeg(m, e.Seg)
	for idx, val := range final {
		if got, _ := segment.ReadWord(m, e.Seg, idx); got != val {
			t.Fatalf("write [%d]=%d lost (got %d)", idx, val, got)
		}
	}
}
