package merge

import (
	"testing"

	"repro/internal/pool"
	"repro/internal/segment"
)

// Allocation pin for the wave merge engine, mirroring the segment
// package's TestAlloc* pins: re-merging the same live triple is the
// steady state (the merged lines already exist content-uniquely, so the
// store's population is stable across runs) and must pay zero amortized
// heap allocations once the pools and the LLC are warm.

func TestAllocMerge(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation pins are meaningless under -race")
	}
	m, _ := setup()
	orig := buildAt(m, 6, map[uint64]uint64{3: 9, 70: 5, 900: 2, 2000: 4})
	mod := modify(m, orig, map[uint64]uint64{70: 50, 100: 7})
	cur := modify(m, orig, map[uint64]uint64{900: 60, 1500: 8})
	// Keep one merged result alive so re-merges revalidate against live
	// lines instead of re-allocating freed ones in the store.
	warm, err := Merge(m, orig, mod, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer segment.ReleaseSeg(m, warm)
	doMerge := func() {
		out, err := Merge(m, orig, mod, cur, nil)
		if err != nil {
			t.Fatal(err)
		}
		segment.ReleaseSeg(m, out)
	}
	for i := 0; i < 5; i++ {
		doMerge()
	}
	if avg := testing.AllocsPerRun(20, doMerge); avg != 0 {
		t.Errorf("steady-state Merge allocates %.1f times per run, want 0", avg)
	}
	if g, _ := segment.ReadWord(m, warm, 70); g != 50 {
		t.Fatalf("merged[70] = %d, want 50", g)
	}
}
