package merge

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/segment"
	"repro/internal/word"
)

// Simulated-DRAM accounting pins for the merge rebase engine, following
// the WriteBatch twin-machine discipline: identical machines replay
// identical preloads (PLIDs are allocation-order-dependent, so only
// machines with identical histories are comparable), the LLC is ample so
// neither path is charged for capacity misses, and the cache is flushed
// after the measured operation so deferred writebacks are included.

func ampleMachine(lineBytes int) *core.Machine {
	return core.NewMachine(core.Config{
		LineBytes: lineBytes, BucketBits: 16, DataWays: 12,
		CacheLines: 1 << 15, CacheWays: 8,
	})
}

func dram(m *core.Machine, fn func()) uint64 {
	m.ResetStats()
	fn()
	m.FlushCache()
	return m.Stats().Store.Total()
}

// mergeTriple builds, on one machine, an orig of n random words plus mod
// and cur versions carrying k disjoint single-word updates each. The
// updates land on adjacent words of the same k leaf lines (mod the even
// word, cur the odd), so the merge cannot resolve by sub-DAG skipping
// near the root: it must co-walk all k root-to-leaf paths and word-merge
// the k leaves — the worst case for a fixed number of changed paths.
func mergeTriple(m *core.Machine, n, k int, seed int64) (orig, mod, cur segment.Seg) {
	rng := rand.New(rand.NewSource(seed))
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = rng.Uint64() % 1000
	}
	orig = segment.BuildWords(m, ws, nil)
	ups := func(off int) []segment.Update {
		out := make([]segment.Update, k)
		for i := range out {
			out[i] = segment.Update{
				Idx: uint64((n/k)*i + off),
				W:   rng.Uint64()%1000 + 2000,
				T:   word.TagRaw,
			}
		}
		return out
	}
	mod, _ = segment.WriteBatch(m, orig, ups(0))
	cur, _ = segment.WriteBatch(m, orig, ups(1))
	// Flush so the preload's deferred writebacks are not charged to the
	// measured merge window (dram flushes after the measured op).
	m.FlushCache()
	return orig, mod, cur
}

// TestMergeAccountingPin is the twin-machine pin that the wave rebase
// never charges more simulated DRAM than the recursive reference walker
// on the same input: same line reads (deduped per level rather than per
// node), same lookups, same reference-count traffic.
func TestMergeAccountingPin(t *testing.T) {
	const lineBytes, n, k = 64, 8192, 24
	ma, mb := ampleMachine(lineBytes), ampleMachine(lineBytes)
	oa, da, ca := mergeTriple(ma, n, k, 1)
	ob, db, cb := mergeTriple(mb, n, k, 1)

	var wave, serial segment.Seg
	var err error
	waveDram := dram(ma, func() {
		wave, err = Merge(ma, oa, da, ca, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	serialDram := dram(mb, func() {
		serial, err = MergeSerial(mb, ob, db, cb, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !wave.Equal(serial) {
		t.Fatalf("wave %#x != serial %#x on twin machines", wave.Root, serial.Root)
	}
	if waveDram > serialDram {
		t.Fatalf("wave merge charged %d DRAM accesses, serial %d — wave must not cost more",
			waveDram, serialDram)
	}
	t.Logf("merge DRAM: wave %d, serial %d", waveDram, serialDram)
}

// TestMergeDRAMFlatAcrossSize pins the §2.4/§3.4 claim the contention
// benchmark measures: merged-commit DRAM cost is proportional to the
// changed paths, not the segment size. The same k-update merge on a 16×
// larger segment must cost well under 16× the DRAM (the walk only
// descends changed paths; untouched sub-DAGs pass by PLID comparison).
func TestMergeDRAMFlatAcrossSize(t *testing.T) {
	const lineBytes, k = 64, 16
	measure := func(n int) uint64 {
		m := ampleMachine(lineBytes)
		orig, mod, cur := mergeTriple(m, n, k, 7)
		var err error
		d := dram(m, func() {
			_, err = Merge(m, orig, mod, cur, nil)
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	small := measure(4096)
	big := measure(16 * 4096)
	if big*2 >= small*16 {
		t.Fatalf("merge DRAM grew with segment size: %d @4096 words vs %d @65536 words",
			small, big)
	}
	t.Logf("merge DRAM: %d @4096 words, %d @65536 words (16× size)", small, big)
}
