package merge

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/segmap"
	"repro/internal/segment"
	"repro/internal/word"
)

func setup() (*core.Machine, *segmap.Map) {
	m := core.NewMachine(core.TestConfig())
	return m, segmap.New(m)
}

func buildAt(m *core.Machine, height int, kv map[uint64]uint64) segment.Seg {
	tx := segment.NewTxn(m, segment.NewSparse(height))
	for k, v := range kv {
		tx.WriteWord(k, v, word.TagRaw)
	}
	return tx.Commit()
}

func modify(m *core.Machine, base segment.Seg, kv map[uint64]uint64) segment.Seg {
	tx := segment.NewTxn(m, base)
	for k, v := range kv {
		tx.WriteWord(k, v, word.TagRaw)
	}
	return tx.Commit()
}

func TestMergeDisjointWrites(t *testing.T) {
	// §3.4: two non-conflicting entries added concurrently both land.
	m, _ := setup()
	orig := buildAt(m, 8, map[uint64]uint64{10: 1, 200: 2})
	mod := modify(m, orig, map[uint64]uint64{50: 77})  // this thread
	cur := modify(m, orig, map[uint64]uint64{400: 88}) // interleaver
	var st Stats
	got, err := Merge(m, orig, mod, cur, &st)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{10: 1, 200: 2, 50: 77, 400: 88}
	for k, v := range want {
		if g, _ := segment.ReadWord(m, got, k); g != v {
			t.Fatalf("merged[%d] = %d, want %d", k, g, v)
		}
	}
	if st.SubDAGSkips == 0 {
		t.Fatal("identical sub-DAGs not skipped by PLID comparison")
	}
}

func TestMergeInsertAndDelete(t *testing.T) {
	// Concurrent insert (zero -> value) and delete (value -> zero) on
	// different entries resolve without conflict (§4.3).
	m, _ := setup()
	orig := buildAt(m, 8, map[uint64]uint64{100: 5})
	mod := modify(m, orig, map[uint64]uint64{100: 0}) // delete
	cur := modify(m, orig, map[uint64]uint64{101: 9}) // insert
	got, err := Merge(m, orig, mod, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := segment.ReadWord(m, got, 100); v != 0 {
		t.Fatal("delete lost in merge")
	}
	if v, _ := segment.ReadWord(m, got, 101); v != 9 {
		t.Fatal("insert lost in merge")
	}
}

func TestMergeCounterDeltas(t *testing.T) {
	// §3.4: counter segments merge by summing concurrent increments.
	m, _ := setup()
	orig := buildAt(m, 4, map[uint64]uint64{3: 100})
	mod := modify(m, orig, map[uint64]uint64{3: 107}) // +7
	cur := modify(m, orig, map[uint64]uint64{3: 104}) // +4
	got, err := Merge(m, orig, mod, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := segment.ReadWord(m, got, 3); v != 111 {
		t.Fatalf("merged counter = %d, want 111", v)
	}
}

func TestMergeSameValueBothSides(t *testing.T) {
	m, _ := setup()
	orig := buildAt(m, 4, map[uint64]uint64{1: 1})
	mod := modify(m, orig, map[uint64]uint64{2: 42})
	cur := modify(m, orig, map[uint64]uint64{2: 42})
	got, err := Merge(m, orig, mod, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := segment.ReadWord(m, got, 2); v != 42 {
		t.Fatalf("merged = %d, want 42", v)
	}
	if !got.Equal(cur) {
		t.Fatal("identical updates must merge to the identical segment")
	}
}

func TestMergePLIDConflictFails(t *testing.T) {
	// Two threads storing distinct references into the same field is a
	// true conflict (§3.4).
	m, _ := setup()
	pa := m.LookupLine(word.ContentFromBytes(m.LineWords(), []byte("target A")))
	pb := m.LookupLine(word.ContentFromBytes(m.LineWords(), []byte("target B")))
	orig := buildAt(m, 4, map[uint64]uint64{7: 1})
	mkRef := func(p word.PLID) segment.Seg {
		tx := segment.NewTxn(m, orig)
		tx.WriteWord(9, uint64(p), word.TagPLID)
		return tx.Commit()
	}
	mod, cur := mkRef(pa), mkRef(pb)
	if _, err := Merge(m, orig, mod, cur, nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
}

func TestMergeVSIDSameRefBothSides(t *testing.T) {
	m, _ := setup()
	orig := buildAt(m, 4, map[uint64]uint64{1: 1})
	mk := func(extra uint64) segment.Seg {
		tx := segment.NewTxn(m, orig)
		tx.WriteWord(5, 123, word.TagVSID)
		if extra != 0 {
			tx.WriteWord(6, extra, word.TagRaw)
		}
		return tx.Commit()
	}
	mod, cur := mk(0), mk(99)
	got, err := Merge(m, orig, mod, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, tag := segment.ReadWord(m, got, 5); v != 123 || tag != word.TagVSID {
		t.Fatalf("VSID word = %d/%v", v, tag)
	}
	if v, _ := segment.ReadWord(m, got, 6); v != 99 {
		t.Fatal("cur-side write lost")
	}
}

func TestMergeHeightMismatchRebases(t *testing.T) {
	// A version that grew (taller DAG) merges against shorter versions by
	// zero-padded re-rooting instead of conflicting; disjoint writes all
	// land and the result takes the maximum height.
	m, _ := setup()
	orig := buildAt(m, 3, map[uint64]uint64{1: 1, 7: 7})
	mod := modify(m, orig, map[uint64]uint64{1 << 12: 42}) // grows past capacity
	cur := modify(m, orig, map[uint64]uint64{2: 9})        // stays short
	if mod.Height <= orig.Height {
		t.Fatalf("test setup: mod did not grow (height %d)", mod.Height)
	}
	var st Stats
	got, err := Merge(m, orig, mod, cur, &st)
	if err != nil {
		t.Fatalf("height-mismatched disjoint merge conflicted: %v", err)
	}
	if got.Height != mod.Height {
		t.Fatalf("merged height = %d, want %d", got.Height, mod.Height)
	}
	if st.HeightAligned != 1 {
		t.Fatalf("HeightAligned = %d, want 1", st.HeightAligned)
	}
	for k, v := range map[uint64]uint64{1: 1, 7: 7, 1 << 12: 42, 2: 9} {
		if g, _ := segment.ReadWord(m, got, k); g != v {
			t.Fatalf("merged[%d] = %d, want %d", k, g, v)
		}
	}
	// The rebased result must be canonical: PLID-equal to writing the
	// same content directly.
	direct := modify(m, mod, map[uint64]uint64{2: 9})
	if !got.Equal(direct) {
		t.Fatalf("rebased merge not canonical (%#x/%d vs %#x/%d)",
			got.Root, got.Height, direct.Root, direct.Height)
	}
}

func TestMergeHeightMismatchAllShapes(t *testing.T) {
	// Any of the three versions may be the tall one; every shape rebases.
	m, _ := setup()
	short := buildAt(m, 3, map[uint64]uint64{1: 1})
	tall := modify(m, short, map[uint64]uint64{1 << 12: 5})
	cases := []struct {
		name             string
		orig, mod, cur   segment.Seg
		wantIdx, wantVal uint64
	}{
		{"mod grew", short, tall, modify(m, short, map[uint64]uint64{2: 2}), 1 << 12, 5},
		{"cur grew", short, modify(m, short, map[uint64]uint64{2: 2}), tall, 1 << 12, 5},
		{"orig tallest (both truncated views identical)", tall, short, short, 1, 1},
	}
	for _, tc := range cases {
		got, err := Merge(m, tc.orig, tc.mod, tc.cur, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if v, _ := segment.ReadWord(m, got, tc.wantIdx); v != tc.wantVal {
			t.Fatalf("%s: merged[%d] = %d, want %d", tc.name, tc.wantIdx, v, tc.wantVal)
		}
	}
}

func TestMergeTrueConflictAcrossHeights(t *testing.T) {
	// Height alignment does not mask true conflicts: distinct references
	// stored into the same field still fail, even when one side grew.
	m, _ := setup()
	pa := m.LookupLine(word.ContentFromBytes(m.LineWords(), []byte("target A")))
	pb := m.LookupLine(word.ContentFromBytes(m.LineWords(), []byte("target B")))
	orig := buildAt(m, 3, map[uint64]uint64{1: 1})
	mkRef := func(p word.PLID, grow bool) segment.Seg {
		tx := segment.NewTxn(m, orig)
		tx.WriteWord(9, uint64(p), word.TagPLID)
		if grow {
			tx.WriteWord(1<<12, 3, word.TagRaw)
		}
		return tx.Commit()
	}
	mod, cur := mkRef(pa, true), mkRef(pb, false)
	if _, err := Merge(m, orig, mod, cur, nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
}

func TestMergeMatchesSerial(t *testing.T) {
	// The wave engine and the recursive reference walker are PLID-equal
	// on every equal-height input.
	m, _ := setup()
	orig := buildAt(m, 8, map[uint64]uint64{3: 3, 900: 9, 5000: 5})
	mod := modify(m, orig, map[uint64]uint64{3: 30, 77: 7})
	cur := modify(m, orig, map[uint64]uint64{900: 90, 5001: 51})
	var wst, sst Stats
	wave, err := Merge(m, orig, mod, cur, &wst)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := MergeSerial(m, orig, mod, cur, &sst)
	if err != nil {
		t.Fatal(err)
	}
	if !wave.Equal(serial) {
		t.Fatalf("wave %#x/%d != serial %#x/%d",
			wave.Root, wave.Height, serial.Root, serial.Height)
	}
	if wst.WaveLevels == 0 || wst.LineReads == 0 {
		t.Fatalf("wave stats not populated: %+v", wst)
	}
}

func TestMCASResolvesContention(t *testing.T) {
	// The paper's mCAS: concurrent disjoint updates all land without
	// application-level retry.
	m, sm := setup()
	base := buildAt(m, 10, map[uint64]uint64{0: 1})
	v := sm.Create(segmap.Entry{Seg: base, Flags: segmap.FlagMergeUpdate})

	const workers, updates = 8, 25
	var wg sync.WaitGroup
	var st Stats
	var mu sync.Mutex
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < updates; i++ {
				old, err := sm.Load(v)
				if err != nil {
					t.Error(err)
					return
				}
				idx := uint64(1 + g*updates + i) // disjoint per worker
				tx := segment.NewTxn(m, old.Seg)
				tx.WriteWord(idx, uint64(g+1), word.TagRaw)
				next := tx.Commit()
				var local Stats
				ok, err := MCAS(m, sm, v, old.Seg, next, 0, &local)
				segment.ReleaseSeg(m, old.Seg)
				if err != nil || !ok {
					t.Errorf("worker %d update %d: ok=%v err=%v", g, i, ok, err)
					return
				}
				mu.Lock()
				st.Merges += local.Merges
				st.Failures += local.Failures
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	final, _ := sm.Load(v)
	defer segment.ReleaseSeg(m, final.Seg)
	for g := 0; g < workers; g++ {
		for i := 0; i < updates; i++ {
			idx := uint64(1 + g*updates + i)
			if val, _ := segment.ReadWord(m, final.Seg, idx); val != uint64(g+1) {
				t.Fatalf("update [%d] lost: %d", idx, val)
			}
		}
	}
	if st.Failures != 0 {
		t.Fatalf("%d merge failures for disjoint updates", st.Failures)
	}
}

func TestMCASCounterSegment(t *testing.T) {
	// §4.3: concurrent counter increments resolve to the sum via the
	// raw-word delta rule. Each worker adds a distinct amount (64^g):
	// content-unique versions make two IDENTICAL concurrent deltas
	// indistinguishable from an already-merged state (cur == mod absorbs
	// instead of summing — the paper's rule shares this), so exactness
	// requires concurrent increments to differ in content, which
	// worker-distinct amounts guarantee.
	m, sm := setup()
	base := buildAt(m, 6, map[uint64]uint64{0: 0})
	v := sm.Create(segmap.Entry{Seg: base, Flags: segmap.FlagMergeUpdate})
	const workers, incs = 6, 40
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			amount := uint64(1) << (6 * g)
			for i := 0; i < incs; i++ {
				old, _ := sm.Load(v)
				cur, _ := segment.ReadWord(m, old.Seg, 0)
				tx := segment.NewTxn(m, old.Seg)
				tx.WriteWord(0, cur+amount, word.TagRaw)
				next := tx.Commit()
				if ok, err := MCAS(m, sm, v, old.Seg, next, 0, nil); !ok || err != nil {
					t.Errorf("mcas: %v %v", ok, err)
				}
				segment.ReleaseSeg(m, old.Seg)
			}
		}(g)
	}
	wg.Wait()
	final, _ := sm.Load(v)
	defer segment.ReleaseSeg(m, final.Seg)
	var want uint64
	for g := 0; g < workers; g++ {
		want += uint64(incs) << (6 * g)
	}
	if got, _ := segment.ReadWord(m, final.Seg, 0); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestMCASRequiresFlag(t *testing.T) {
	m, sm := setup()
	base := buildAt(m, 4, map[uint64]uint64{0: 1})
	v := sm.Create(segmap.Entry{Seg: base}) // no merge-update flag
	old, _ := sm.Load(v)
	next := modify(m, old.Seg, map[uint64]uint64{1: 2})
	if ok, err := MCAS(m, sm, v, old.Seg, next, 0, nil); ok || err == nil {
		t.Fatal("MCAS on unflagged segment succeeded")
	}
	segment.ReleaseSeg(m, old.Seg)
}

func TestMergeLeavesNoLeaks(t *testing.T) {
	m, sm := setup()
	base := buildAt(m, 8, map[uint64]uint64{5: 50})
	v := sm.Create(segmap.Entry{Seg: base, Flags: segmap.FlagMergeUpdate})
	for i := 0; i < 20; i++ {
		old, _ := sm.Load(v)
		next := modify(m, old.Seg, map[uint64]uint64{uint64(i): uint64(i + 1)})
		if ok, _ := MCAS(m, sm, v, old.Seg, next, 0, nil); !ok {
			t.Fatal("mcas failed")
		}
		segment.ReleaseSeg(m, old.Seg)
	}
	final, _ := sm.Load(v)
	ext := map[word.PLID]uint64{final.Seg.Root: 2} // map's ref + our load
	if err := m.CheckConsistency(ext); err != nil {
		t.Fatal(err)
	}
	segment.ReleaseSeg(m, final.Seg)
}
