package core

import (
	"sync"
	"testing"

	"repro/internal/word"
)

func leaf(m *Machine, s string) word.Content {
	return word.ContentFromBytes(m.LineWords(), []byte(s))
}

func TestMachineLookupDedup(t *testing.T) {
	m := NewMachine(TestConfig())
	c := leaf(m, "machine dedup")
	p1 := m.LookupLine(c)
	p2 := m.LookupLine(c)
	if p1 != p2 {
		t.Fatalf("PLIDs differ: %#x vs %#x", p1, p2)
	}
	if rc := m.RefCount(p1); rc != 2 {
		t.Fatalf("rc = %d, want 2", rc)
	}
}

func TestMachineZeroContent(t *testing.T) {
	m := NewMachine(TestConfig())
	if p := m.LookupLine(word.NewContent(m.LineWords())); p != word.Zero {
		t.Fatalf("zero content PLID = %#x", p)
	}
	if c := m.ReadLine(word.Zero); !c.IsZero() {
		t.Fatal("zero line read non-zero")
	}
	st := m.Stats()
	if st.Store.Total() != 0 {
		t.Fatal("zero-line ops touched DRAM")
	}
}

func TestCachedLookupAvoidsDRAM(t *testing.T) {
	m := NewMachine(TestConfig())
	c := leaf(m, "stay cached")
	m.LookupLine(c)
	before := m.Stats().Store
	p := m.LookupLine(c) // must hit in LLC by content
	after := m.Stats().Store
	if after.Lookups != before.Lookups {
		t.Fatal("cached lookup reached DRAM")
	}
	if after.SigReads != before.SigReads {
		t.Fatal("cached lookup read a signature line")
	}
	if m.RefCount(p) != 2 {
		t.Fatal("cached lookup did not bump the reference count")
	}
}

func TestCachedReadAvoidsDRAM(t *testing.T) {
	m := NewMachine(TestConfig())
	c := leaf(m, "read twice")
	p := m.LookupLine(c)
	m.ReadLine(p)
	before := m.Stats().Store.DataReads
	m.ReadLine(p)
	if got := m.Stats().Store.DataReads; got != before {
		t.Fatalf("cached read caused %d DRAM reads", got-before)
	}
}

func TestUncachedMachine(t *testing.T) {
	cfg := TestConfig()
	cfg.CacheLines = 0
	m := NewMachine(cfg)
	c := leaf(m, "no cache")
	p := m.LookupLine(c)
	if got := m.ReadLine(p); got != c {
		t.Fatal("read mismatch")
	}
	st := m.Stats()
	if st.Store.DataReads == 0 {
		t.Fatal("uncached read did not reach DRAM")
	}
}

func TestDeallocBeforeEvictionSkipsDRAMWrite(t *testing.T) {
	// §3.1/§3.3: a line created and freed while still cached must never
	// be written to DRAM.
	m := NewMachine(TestConfig())
	c := leaf(m, "ephemeral line")
	p := m.LookupLine(c)
	m.Release(p)
	m.FlushCache()
	if w := m.Stats().Store.DataWrites; w != 0 {
		t.Fatalf("ephemeral line written to DRAM %d times", w)
	}
	if m.LiveLines() != 0 {
		t.Fatal("line not freed")
	}
}

func TestEvictionWritesBackOnce(t *testing.T) {
	cfg := TestConfig()
	cfg.CacheLines = 8
	cfg.CacheWays = 2 // 4 sets: tiny, guarantees evictions
	m := NewMachine(cfg)
	var held []word.PLID
	for i := 0; i < 200; i++ {
		held = append(held, m.LookupLine(leaf(m, string(rune('a'+i%26))+string(rune('0'+i/26)))))
	}
	m.FlushCache()
	st := m.Stats().Store
	if st.DataWrites == 0 {
		t.Fatal("no writebacks despite tiny cache")
	}
	if st.DataWrites > st.Allocs {
		t.Fatalf("DataWrites %d > Allocs %d: immutable lines wrote back twice",
			st.DataWrites, st.Allocs)
	}
	_ = held
}

func TestRCTrafficAccounted(t *testing.T) {
	cfg := TestConfig()
	cfg.CacheLines = 8
	cfg.CacheWays = 2
	m := NewMachine(cfg)
	for i := 0; i < 100; i++ {
		m.LookupLine(leaf(m, string(rune('A'+i%26))+string(rune('0'+i/26))))
	}
	m.FlushCache()
	st := m.Stats().Store
	// Allocations initialize counts with no-fetch cache writes (§3.1), so
	// only writebacks appear so far.
	if st.RCWrites == 0 {
		t.Fatalf("RC writebacks not modeled: %+v", st)
	}
	if st.RCReads != 0 {
		t.Fatalf("allocation RC inits fetched from DRAM: reads=%d", st.RCReads)
	}
	// Re-looking up existing content increments counts whose RC lines
	// have been evicted: those are read-modify-write fills.
	for i := 0; i < 100; i++ {
		m.LookupLine(leaf(m, string(rune('A'+i%26))+string(rune('0'+i/26))))
	}
	if got := m.Stats().Store.RCReads; got == 0 {
		t.Fatal("dedup-hit RC increments never read the RC line")
	}
}

func TestReleaseInvalidatesCache(t *testing.T) {
	m := NewMachine(TestConfig())
	c := leaf(m, "free then realloc")
	p := m.LookupLine(c)
	m.Release(p)
	// Looking the content up again must allocate fresh (the store slot
	// is reused, but the stale cache entry must not resurrect the line).
	p2 := m.LookupLine(c)
	if m.RefCount(p2) != 1 {
		t.Fatalf("rc after realloc = %d, want 1", m.RefCount(p2))
	}
	if err := m.CheckConsistency(map[word.PLID]uint64{p2: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestMachineStatsSnapshot(t *testing.T) {
	m := NewMachine(TestConfig())
	m.LookupLine(leaf(m, "ops"))
	st := m.Stats()
	if st.LookupOps != 1 {
		t.Fatalf("LookupOps = %d", st.LookupOps)
	}
	m.ResetStats()
	if got := m.Stats(); got.LookupOps != 0 || got.Store.Total() != 0 {
		t.Fatal("ResetStats left residue")
	}
}

func TestConcurrentMachineAccess(t *testing.T) {
	m := NewMachine(TestConfig())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := leaf(m, "shared content") // same content from all goroutines
				p := m.LookupLine(c)
				m.ReadLine(p)
				m.Release(p)
			}
			_ = g
		}(g)
	}
	wg.Wait()
	if m.LiveLines() != 0 {
		t.Fatalf("live lines = %d after balanced retain/release", m.LiveLines())
	}
	if err := m.CheckConsistency(nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadCacheGeometryPanics(t *testing.T) {
	cfg := TestConfig()
	cfg.CacheLines = 24 // 24/4 = 6 sets, not a power of two
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	NewMachine(cfg)
}

func TestDefaultConfigGeometry(t *testing.T) {
	for _, ls := range []int{16, 32, 64} {
		cfg := DefaultConfig(ls)
		m := NewMachine(cfg)
		if m.LineWords() != ls/8 {
			t.Fatalf("line words = %d for %d-byte lines", m.LineWords(), ls)
		}
	}
}
