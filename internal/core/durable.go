package core

import (
	"repro/internal/store"
	"repro/internal/word"
)

// Durability wiring. The machine itself stays persistence-agnostic: the
// write-ahead layer (internal/durable) attaches a line journal to the
// store and observes segment-map publishes directly; the machine only
// exposes the restore surface and forwards word.DurableMem so the
// programming-model layers can discover whether writes need a durability
// acknowledgement without importing internal/durable.

// Durability is the attachment point for a write-ahead layer. Sync
// blocks until every mutation issued before the call is stable; Enabled
// reports whether Sync actually waits on anything.
type Durability interface {
	Sync() error
	Enabled() bool
}

// SetDurability attaches (or, with nil, detaches) the persistence layer.
// Attach before the machine serves traffic.
func (m *Machine) SetDurability(d Durability) { m.durability = d }

// DurableEnabled implements word.DurableMem.
func (m *Machine) DurableEnabled() bool {
	return m.durability != nil && m.durability.Enabled()
}

// SyncDurable implements word.DurableMem.
func (m *Machine) SyncDurable() error {
	if m.durability == nil {
		return nil
	}
	return m.durability.Sync()
}

// SetLineJournal attaches the store's line liveness journal.
func (m *Machine) SetLineJournal(j store.Journal) { m.store.SetJournal(j) }

// ForEachLiveLine iterates live lines for checkpointing; see
// store.ForEachLive for the fuzzy-snapshot contract.
func (m *Machine) ForEachLiveLine(fn func(p word.PLID, c word.Content, rc uint64) bool) {
	m.store.ForEachLive(fn)
}

// InstallLine places content at an exact PLID with an exact reference
// count — the recovery path; see store.InstallLine. No cache fill and no
// DRAM accounting: restore is not simulated memory activity.
func (m *Machine) InstallLine(p word.PLID, c word.Content, rc uint64) error {
	return m.store.InstallLine(p, c, rc)
}

// FinishRestore completes a sequence of InstallLine calls.
func (m *Machine) FinishRestore() { m.store.FinishRestore() }

var _ word.DurableMem = (*Machine)(nil)
