package core

import (
	"math/rand"
	"testing"

	"repro/internal/word"
)

// TestCanonicalAcrossConfigs: content uniqueness must hold within any
// machine configuration — same content, same PLID — and machines with
// different geometries must still agree on dedup behaviour (the PLIDs
// differ, the sharing does not).
func TestCanonicalAcrossConfigs(t *testing.T) {
	configs := []Config{
		{LineBytes: 16, BucketBits: 8, DataWays: 4, CacheLines: 64, CacheWays: 4},
		{LineBytes: 16, BucketBits: 14, DataWays: 12, CacheLines: 4096, CacheWays: 16},
		{LineBytes: 16, BucketBits: 10, DataWays: 12}, // uncached
	}
	rng := rand.New(rand.NewSource(21))
	contents := make([]word.Content, 200)
	for i := range contents {
		c := word.NewContent(2)
		c.W[0] = rng.Uint64() % 50 // small space forces duplicates
		c.W[1] = rng.Uint64() % 3
		contents[i] = c
	}
	for _, cfg := range configs {
		m := NewMachine(cfg)
		seen := map[word.Content]word.PLID{}
		for _, c := range contents {
			if c.IsZero() {
				continue
			}
			p := m.LookupLine(c)
			if prev, ok := seen[c]; ok {
				if p != prev {
					t.Fatalf("cfg %+v: content got two PLIDs (%#x, %#x)", cfg, prev, p)
				}
				m.Release(p) // keep exactly one reference per content
			} else {
				seen[c] = p
			}
		}
		if m.LiveLines() != uint64(len(seen)) {
			t.Fatalf("cfg %+v: live %d, distinct %d", cfg, m.LiveLines(), len(seen))
		}
		ext := map[word.PLID]uint64{}
		for _, p := range seen {
			ext[p]++
		}
		if err := m.CheckConsistency(ext); err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
	}
}

// TestBucketPressureKeepsDedup: with very few buckets the overflow area
// takes over; dedup and reference counting must be unaffected.
func TestBucketPressureKeepsDedup(t *testing.T) {
	m := NewMachine(Config{LineBytes: 16, BucketBits: 4, DataWays: 1, CacheLines: 16, CacheWays: 2})
	rng := rand.New(rand.NewSource(4))
	var plids []word.PLID
	contents := make([]word.Content, 300)
	for i := range contents {
		c := word.NewContent(2)
		c.W[0], c.W[1] = rng.Uint64(), rng.Uint64()
		contents[i] = c
		plids = append(plids, m.LookupLine(c))
	}
	// Re-lookup everything: must dedup to the same PLIDs despite the
	// store being nearly all overflow.
	for i, c := range contents {
		p := m.LookupLine(c)
		if p != plids[i] {
			t.Fatalf("content %d changed PLID under bucket pressure", i)
		}
		m.Release(p)
	}
	for _, p := range plids {
		m.Release(p)
	}
	if m.LiveLines() != 0 {
		t.Fatalf("%d lines leaked through the overflow path", m.LiveLines())
	}
}

// TestOverflowPLIDsUnique is the regression test for an overflow PLID
// encoding collision (flag OR slot aliased slot 0 and slot 2^(B+4)):
// hundreds of allocations spilling past the buckets must all receive
// distinct PLIDs.
func TestOverflowPLIDsUnique(t *testing.T) {
	m := NewMachine(Config{LineBytes: 16, BucketBits: 4, DataWays: 1, CacheLines: 16, CacheWays: 2})
	rng := rand.New(rand.NewSource(4))
	seen := map[word.PLID]int{}
	for i := 0; i < 600; i++ {
		c := word.NewContent(2)
		c.W[0], c.W[1] = rng.Uint64(), rng.Uint64()
		p := m.LookupLine(c)
		if j, dup := seen[p]; dup {
			t.Fatalf("contents %d and %d share PLID %#x", j, i, p)
		}
		seen[p] = i
	}
}
