// Package core composes the HICAMP memory system: the deduplicating line
// store (package store) fronted by the HICAMP last-level cache (package
// cachesim), the virtual segment map, iterator registers and merge-update.
// Machine implements word.Mem and is the single entry point applications
// use; the programming-model layer (package hds) builds collections on top.
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cachesim"
	"repro/internal/pool"
	"repro/internal/store"
	"repro/internal/word"
)

// Pooled scratch for the batched LLC paths: miss runs and fetch buffers
// are borrowed per call so steady-state batched lookups and reads
// allocate nothing.
var (
	poolIdx      = pool.NewSlice[int]("core.idx")
	poolPLIDs    = pool.NewSlice[word.PLID]("core.plid")
	poolContents = pool.NewSlice[word.Content]("core.content")
	poolBools    = pool.NewSlice[bool]("core.bool")
	poolSets     = pool.NewMap[int, struct{}]("core.pendingsets")
)

// Config sizes a Machine.
type Config struct {
	// LineBytes is the memory line size: 16, 32 or 64.
	LineBytes int
	// BucketBits sets the number of DRAM hash buckets (1 << BucketBits).
	BucketBits int
	// DataWays is the number of data lines per bucket.
	DataWays int
	// CacheLines is the LLC capacity in lines; 0 disables the cache and
	// sends every operation to DRAM.
	CacheLines int
	// CacheWays is the LLC associativity (paper baseline: 16).
	CacheWays int
}

// DefaultConfig returns the paper's evaluation parameters at the given
// line size: a 4 MB 16-way LLC over a deduplicated DRAM of 2^20 lines.
func DefaultConfig(lineBytes int) Config {
	return Config{
		LineBytes:  lineBytes,
		BucketBits: 20,
		DataWays:   12,
		CacheLines: (4 << 20) / lineBytes,
		CacheWays:  16,
	}
}

// TestConfig returns a small configuration for unit tests.
func TestConfig() Config {
	return Config{LineBytes: 16, BucketBits: 10, DataWays: 12, CacheLines: 256, CacheWays: 4}
}

// Stats aggregates the memory-system counters of one Machine.
type Stats struct {
	Store store.Stats
	Cache cachesim.Stats
	// LookupOps and ReadOps count architectural operations issued to the
	// machine (before cache filtering).
	LookupOps uint64
	ReadOps   uint64
}

// DRAMAccesses returns the total off-chip accesses — the Figure 6 metric.
func (s Stats) DRAMAccesses() uint64 { return s.Store.Total() }

// Machine is the HICAMP memory system. All methods are safe for concurrent
// use. There is no machine-wide lock: the store stripes its hash buckets,
// the LLC stripes its sets, and the machine composes them without ever
// holding a lock of one layer while entering the other, so operations on
// unrelated lines proceed in parallel and throughput scales with cores.
// The memory-traffic counters stay exact because every layer charges its
// own accesses through sharded atomic counters.
type Machine struct {
	cfg       Config
	store     *store.Store
	llc       *cachesim.Cache
	setMask   uint64
	lookupOps atomic.Uint64
	readOps   atomic.Uint64

	// durability, when non-nil, is the attached write-ahead layer (see
	// durable.go). Set before the machine serves traffic.
	durability Durability
}

// NewMachine builds a Machine. It panics on invalid configuration.
func NewMachine(cfg Config) *Machine {
	m := &Machine{
		cfg: cfg,
		store: store.New(store.Config{
			LineBytes:  cfg.LineBytes,
			BucketBits: cfg.BucketBits,
			DataWays:   cfg.DataWays,
		}),
	}
	if cfg.CacheLines > 0 {
		if cfg.CacheWays <= 0 {
			panic("core: CacheWays must be positive when the cache is enabled")
		}
		sets := cfg.CacheLines / cfg.CacheWays
		if sets <= 0 || sets&(sets-1) != 0 {
			panic(fmt.Sprintf("core: cache geometry %d lines / %d ways yields %d sets",
				cfg.CacheLines, cfg.CacheWays, sets))
		}
		if sets > 1<<cfg.BucketBits {
			panic("core: cache sets exceed DRAM buckets; hash-bit indexing would break")
		}
		m.llc = cachesim.New(sets, cfg.CacheWays)
		m.setMask = uint64(sets - 1)
	}
	m.store.OnRCTouch = m.rcTouch
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// LineWords returns the line width in 64-bit words (the DAG arity).
func (m *Machine) LineWords() int { return m.cfg.LineBytes / 8 }

// PLIDBits returns the PLID width in bits, bounding path compaction.
func (m *Machine) PLIDBits() int { return m.store.PLIDBits() }

// LiveLines returns the number of allocated lines.
func (m *Machine) LiveLines() uint64 { return m.store.LiveLines() }

// FootprintBytes returns DRAM bytes held by live lines.
func (m *Machine) FootprintBytes() uint64 { return m.store.FootprintBytes() }

// Stats returns a snapshot of all counters.
func (m *Machine) Stats() Stats {
	s := Stats{
		Store:     m.store.StatsSnapshot(),
		LookupOps: m.lookupOps.Load(),
		ReadOps:   m.readOps.Load(),
	}
	if m.llc != nil {
		s.Cache = m.llc.StatsSnapshot()
	}
	return s
}

// ResetStats zeroes all counters (cache and store contents are kept).
func (m *Machine) ResetStats() {
	m.lookupOps.Store(0)
	m.readOps.Store(0)
	m.store.ResetStats()
	if m.llc != nil {
		m.llc.ResetStats()
	}
}

// FlushCache writes back all dirty cached lines, charging the deferred
// DRAM writes. Call at the end of a measurement window.
func (m *Machine) FlushCache() {
	if m.llc == nil {
		return
	}
	m.llc.FlushDirty(func(e cachesim.Entry) {
		switch e.Key.Kind {
		case cachesim.KindData:
			m.store.Writeback(word.PLID(e.Key.ID))
		case cachesim.KindRC:
			m.store.RCLineWrite()
		}
	})
}

// LookupLine implements word.Mem: lookup-by-content through the LLC.
func (m *Machine) LookupLine(c word.Content) word.PLID {
	m.lookupOps.Add(1)
	if c.IsZero() {
		return word.Zero
	}
	if m.llc != nil {
		set := int(c.Hash() & m.setMask)
		if e, ok := m.llc.ProbeContent(set, c); ok {
			p := word.PLID(e.Key.ID)
			// A cached hit still bumps the count — but only if the line is
			// still live with this content. A concurrent release may have
			// freed it (the invalidation races the probe), in which case
			// the authoritative DRAM lookup below settles it.
			if m.store.RetainIfContent(p, c) {
				return p
			}
		}
	}
	p, existed := m.store.Lookup(c)
	// A fresh allocation stays dirty in the cache and reaches DRAM only
	// on eviction (§3.1); an existing line is clean by construction — it
	// can only have left the cache through a writeback.
	m.fillData(p, c, !existed)
	return p
}

// LookupLineBatch implements word.BatchMem: batched lookup-by-content
// through the LLC. The LLC still observes every line individually — zero
// contents resolve to Zero without touching the cache, and each remaining
// content gets its own ProbeContent (per-line hit/miss accounting, exactly
// as LookupLine charges it). Only the residue that missed the cache is
// forwarded to the store's batch lookup, which takes each bucket stripe
// lock once per batch and coalesces the DRAM accounting; the resolved
// lines are then filled into the LLC one by one (fresh allocations dirty,
// dedup hits clean), again with per-line eviction handling.
func (m *Machine) LookupLineBatch(cs []word.Content) []word.PLID {
	out := make([]word.PLID, len(cs))
	m.LookupLineBatchInto(cs, out)
	return out
}

// LookupLineBatchInto implements word.BatchIntoMem: LookupLineBatch
// writing into a caller-supplied buffer of length len(cs). All internal
// miss-residue scratch is pooled, so a steady-state batched lookup —
// every content already resident, hitting the LLC or the store's dedup
// path — allocates nothing.
func (m *Machine) LookupLineBatchInto(cs []word.Content, out []word.PLID) {
	if len(out) != len(cs) {
		panic("core: LookupLineBatchInto buffer length mismatch")
	}
	clear(out)
	if len(cs) == 0 {
		return
	}
	m.lookupOps.Add(uint64(len(cs)))
	var sc pool.Scratch
	defer sc.Release()
	// Acquired at batch size: misses are the common case on fresh
	// content, and growing a []Content by doubling would copy the
	// 144-byte elements repeatedly.
	missIdx := poolIdx.GetCap(&sc, len(cs))
	missCs := poolContents.GetCap(&sc, len(cs))
	for i := range cs {
		c := cs[i]
		if c.IsZero() {
			continue // out[i] stays word.Zero
		}
		if m.llc != nil {
			set := int(c.Hash() & m.setMask)
			if e, ok := m.llc.ProbeContent(set, c); ok {
				p := word.PLID(e.Key.ID)
				if m.store.RetainIfContent(p, c) {
					out[i] = p
					continue
				}
			}
		}
		missIdx = append(missIdx, i)
		missCs = append(missCs, c)
	}
	if len(missCs) == 0 {
		return
	}
	plids := poolPLIDs.Get(&sc, len(missCs))
	existed := poolBools.Get(&sc, len(missCs))
	m.store.LookupBatchInto(missCs, plids, existed)
	for j, i := range missIdx {
		out[i] = plids[j]
		m.fillData(plids[j], missCs[j], !existed[j])
	}
}

// ReadLine implements word.Mem: read-by-PLID through the LLC. The caller
// must hold a reference on p (architecturally guaranteed: PLIDs are a
// protected type and naming one implies a live reference).
func (m *Machine) ReadLine(p word.PLID) word.Content {
	m.readOps.Add(1)
	if p == word.Zero {
		return word.NewContent(m.LineWords())
	}
	if m.llc != nil {
		set := m.dataSet(p)
		if e, ok := m.llc.Probe(set, cachesim.Key{Kind: cachesim.KindData, ID: uint64(p)}, false); ok {
			return e.Content
		}
	}
	c := m.store.Read(p)
	m.fillData(p, c, false)
	return c
}

// ReadLineBatch implements word.BatchReadMem: batched read-by-PLID
// through the LLC, with accounting pinned identical to len(ps) serial
// ReadLine calls. The LLC still observes every line individually — each
// element gets its own Probe, charging the same per-line hit/miss the
// serial path charges — and only the residue that missed is forwarded to
// the store's batch read, which takes each bucket stripe's reader lock
// once per run and coalesces the DRAM accounting; the fetched lines are
// then filled into the LLC in input order (clean: an addressable line has
// been written back by construction).
//
// Exactness under aliasing: a pending fill could change the outcome of a
// later probe that maps to the same cache set (a duplicate PLID that the
// serial path would have hit, or a resident line the serial path's fill
// would have evicted first). Whenever an element's set already has a fill
// pending, the pending run is flushed — fetched and filled — before that
// element probes, so every probe observes exactly the cache state the
// serial interleaving would have shown it.
func (m *Machine) ReadLineBatch(ps []word.PLID) []word.Content {
	out := make([]word.Content, len(ps))
	m.ReadLineBatchInto(ps, out)
	return out
}

// readFlush fetches the pending miss run through the store's batch read
// and fills each line into the LLC. fetched is scratch of at least
// len(miss) capacity; it returns with the runs emptied.
func (m *Machine) readFlush(out []word.Content, missIdx []int, miss []word.PLID, fetched []word.Content, pendingSets map[int]struct{}) ([]int, []word.PLID) {
	if len(miss) == 0 {
		return missIdx, miss
	}
	cs := fetched[:len(miss)]
	m.store.ReadBatchInto(miss, cs)
	for j, i := range missIdx {
		out[i] = cs[j]
		m.fillData(miss[j], cs[j], false)
	}
	clear(pendingSets)
	return missIdx[:0], miss[:0]
}

// ReadLineBatchInto implements word.BatchIntoMem: ReadLineBatch writing
// into a caller-supplied buffer of length len(ps). The miss runs, fetch
// buffer and pending-set map are pooled, so a steady-state wave read
// allocates nothing.
func (m *Machine) ReadLineBatchInto(ps []word.PLID, out []word.Content) {
	if len(out) != len(ps) {
		panic("core: ReadLineBatchInto buffer length mismatch")
	}
	if len(ps) == 0 {
		return
	}
	m.readOps.Add(uint64(len(ps)))
	if m.llc == nil {
		m.store.ReadBatchInto(ps, out)
		return
	}
	var sc pool.Scratch
	defer sc.Release()
	missIdx := poolIdx.GetCap(&sc, len(ps))
	miss := poolPLIDs.GetCap(&sc, len(ps))
	fetched := poolContents.Get(&sc, len(ps))
	pendingSets := poolSets.Get(&sc)
	for i, p := range ps {
		if p == word.Zero {
			out[i] = word.NewContent(m.LineWords())
			continue
		}
		set := m.dataSet(p)
		if _, pending := pendingSets[set]; pending {
			missIdx, miss = m.readFlush(out, missIdx, miss, fetched, pendingSets)
		}
		if e, ok := m.llc.Probe(set, cachesim.Key{Kind: cachesim.KindData, ID: uint64(p)}, false); ok {
			out[i] = e.Content
			continue
		}
		missIdx = append(missIdx, i)
		miss = append(miss, p)
		pendingSets[set] = struct{}{}
	}
	m.readFlush(out, missIdx, miss, fetched, pendingSets)
}

// Retain implements word.Mem.
func (m *Machine) Retain(p word.PLID) {
	m.store.Retain(p)
}

// RetainIfContent implements word.ContentRetainer: it acquires a
// reference on p only if the line is still live with content c. This is
// the same primitive the LLC content-hit path uses, with the same
// accounting (one RC touch), so a caller-side content memo (for example
// segment.Builder's) charges exactly what an LLC content hit would.
func (m *Machine) RetainIfContent(p word.PLID, c word.Content) bool {
	return m.store.RetainIfContent(p, c)
}

// RetainDeferred bumps p's reference count immediately but hands the
// reference-count traffic accounting back as a closure. The segment map
// uses it to keep cache-simulator traffic out of its critical section:
// the count bump must be atomic with reading the published root, the
// accounting of the RC-line access need not be.
func (m *Machine) RetainDeferred(p word.PLID) func() {
	m.store.RetainQuiet(p)
	return func() { m.rcTouch(p, false) }
}

// Release implements word.Mem. Freed lines are invalidated in the cache;
// a line that never left the cache is dropped without ever touching DRAM.
func (m *Machine) Release(p word.PLID) {
	freed := m.store.Release(p)
	if m.llc == nil {
		return
	}
	for _, f := range freed {
		// The line's content is gone, so its cache set is recovered from
		// the content hash recorded at free time (overflow lines have no
		// bucket in their PLID).
		set := int(f.H & m.setMask)
		if b, ok := m.store.BucketOf(f.P); ok {
			set = int(b & m.setMask)
		}
		m.llc.Invalidate(set, cachesim.Key{Kind: cachesim.KindData, ID: uint64(f.P)})
	}
}

// RefCount exposes a line's reference count for tests and invariants.
func (m *Machine) RefCount(p word.PLID) uint64 {
	return m.store.RefCount(p)
}

// CheckConsistency delegates to the store's invariant checker. Call it at
// quiescence: in-flight operations hold transient references.
func (m *Machine) CheckConsistency(external map[word.PLID]uint64) error {
	return m.store.CheckConsistency(external)
}

// dataSet maps a PLID to its LLC set. Bucket-resident lines use their
// bucket's low bits (the Figure 3 hash-bit indexing); overflow lines use
// their content hash, which the simulator can recover from the store.
func (m *Machine) dataSet(p word.PLID) int {
	if b, ok := m.store.BucketOf(p); ok {
		return int(b & m.setMask)
	}
	c, ok := m.store.Peek(p)
	if !ok {
		return 0
	}
	return int(c.Hash() & m.setMask)
}

func (m *Machine) fillData(p word.PLID, c word.Content, dirty bool) {
	if m.llc == nil {
		if dirty {
			m.store.Writeback(p)
		}
		return
	}
	set := m.dataSet(p)
	victim, evicted := m.llc.Insert(set, cachesim.Entry{
		Key:     cachesim.Key{Kind: cachesim.KindData, ID: uint64(p)},
		Content: c,
		Dirty:   dirty,
	})
	m.handleEviction(victim, evicted)
}

// rcTouch models one reference-count mutation: the RC line for the PLID's
// bucket is accessed through the cache and dirtied. A miss costs one DRAM
// RC-line read — except for the count initialization of a fresh
// allocation, which is written into the cache without a fetch (§3.1).
// Dirty eviction later costs one RC-line write. The store invokes this
// callback with none of its locks held, so the eviction path may write
// back into the store.
func (m *Machine) rcTouch(p word.PLID, init bool) {
	if m.llc == nil {
		if !init {
			m.store.RCLineRead()
		}
		m.store.RCLineWrite()
		return
	}
	var id uint64
	if b, ok := m.store.BucketOf(p); ok {
		id = b
	} else {
		id = 1<<40 | uint64(p)>>4 // overflow RC rows
	}
	key := cachesim.Key{Kind: cachesim.KindRC, ID: id}
	set := int(id & m.setMask)
	if _, ok := m.llc.Probe(set, key, true); ok {
		return
	}
	if !init {
		m.store.RCLineRead()
	}
	victim, evicted := m.llc.Insert(set, cachesim.Entry{Key: key, Dirty: true})
	m.handleEviction(victim, evicted)
}

func (m *Machine) handleEviction(victim cachesim.Entry, evicted bool) {
	if !evicted || !victim.Dirty {
		return
	}
	switch victim.Key.Kind {
	case cachesim.KindData:
		m.store.Writeback(word.PLID(victim.Key.ID))
	case cachesim.KindRC:
		m.store.RCLineWrite()
	}
}

var _ word.Mem = (*Machine)(nil)
var _ word.BatchMem = (*Machine)(nil)
var _ word.BatchReadMem = (*Machine)(nil)
var _ word.BulkMem = (*Machine)(nil)
