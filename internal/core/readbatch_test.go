package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/word"
)

// TestReadLineBatchChargesLikeSerialReads pins the machine-level
// accounting equivalence: ReadLineBatch must report exactly the same
// LLC probe/hit/miss/eviction counters and the same store DRAM counters
// as issuing the same PLIDs through serial ReadLine calls — including
// when the batch holds duplicates and when fills evict lines a later
// request probes.
func TestReadLineBatchChargesLikeSerialReads(t *testing.T) {
	// A deliberately tiny LLC so a few hundred lines force evictions and
	// set collisions inside single batches.
	cfg := Config{LineBytes: 16, BucketBits: 10, DataWays: 12, CacheLines: 64, CacheWays: 2}
	serial, batch := NewMachine(cfg), NewMachine(cfg)

	const n = 300
	ps := make([]word.PLID, n)
	for i := range ps {
		c := leaf(serial, fmt.Sprintf("line %06d", i))
		ps[i] = serial.LookupLine(c)
		if pb := batch.LookupLine(c); pb != ps[i] {
			t.Fatalf("machines diverged at line %d", i)
		}
	}
	// Warm both caches identically, then open the measurement window.
	for _, m := range []*Machine{serial, batch} {
		for i := 0; i < n/3; i++ {
			m.ReadLine(ps[i])
		}
		m.ResetStats()
	}

	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 20; round++ {
		req := make([]word.PLID, 0, 128)
		for len(req) < 128 {
			switch rng.Intn(12) {
			case 0:
				req = append(req, word.Zero)
			case 1:
				// Duplicate of an earlier request in the same batch.
				if len(req) > 0 {
					req = append(req, req[rng.Intn(len(req))])
					continue
				}
				fallthrough
			default:
				req = append(req, ps[rng.Intn(n)])
			}
		}
		want := make([]word.Content, len(req))
		for i, p := range req {
			want[i] = serial.ReadLine(p)
		}
		got := batch.ReadLineBatch(req)
		for i := range req {
			if got[i] != want[i] {
				t.Fatalf("round %d: content mismatch at %d (PLID %#x)", round, i, uint64(req[i]))
			}
		}
		ss, bs := serial.Stats(), batch.Stats()
		if ss != bs {
			t.Fatalf("round %d: stats diverged:\nserial %+v\nbatch  %+v", round, ss, bs)
		}
	}
	cs := batch.Stats().Cache
	if cs.Hits == 0 || cs.Misses == 0 {
		t.Fatalf("workload did not exercise both hit and miss paths: %+v", cs)
	}
}

// TestReadLineBatchUncached covers the llc-less machine: the batch goes
// straight to the store's grouped read path.
func TestReadLineBatchUncached(t *testing.T) {
	cfg := Config{LineBytes: 16, BucketBits: 10, DataWays: 12}
	m := NewMachine(cfg)
	c := leaf(m, "uncached batch line")
	p := m.LookupLine(c)
	m.ResetStats()
	out := m.ReadLineBatch([]word.PLID{p, word.Zero, p})
	if out[0] != c || !out[1].IsZero() || out[2] != c {
		t.Fatal("uncached batch returned wrong contents")
	}
	st := m.Stats()
	if st.Store.DataReads != 2 {
		t.Fatalf("DataReads = %d, want 2", st.Store.DataReads)
	}
	if st.ReadOps != 3 {
		t.Fatalf("ReadOps = %d, want 3", st.ReadOps)
	}
}
