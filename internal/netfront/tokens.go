package netfront

import (
	"container/list"
	"sync"

	"repro/internal/hds"
	"repro/internal/segment"
	"repro/internal/word"
)

// CAS tokens. A memcached cas token names the version of a value a
// client read with gets; the client's later cas succeeds only against
// that version. HICAMP's natural version name is the map snapshot root
// the gets window was served from, so the token registry is a bounded
// table of pinned snapshots: every gets/mget window registers its pinned
// (map, root, size) under a 64-bit token and the token rides every
// VALUE line of the window (one pin serves the whole window, however
// many connections it aggregated). A later cas resolves its token back
// to the pinned root and publishes through Map.CompareApply — the
// merge-rebase CAS — against exactly the version the client saw.
//
// The table is bounded and deduplicated: registering a (map, root) that
// already has a live pin reuses that pin's token and refreshes its LRU
// position instead of consuming a new slot, so sustained read traffic
// against an unchanged version holds ONE entry — the table only churns
// as fast as *distinct* snapshot roots are published. A client's
// gets→cas round trip therefore loses its pin only if MaxTokens distinct
// versions were registered in between (a write-heavy storm), not merely
// MaxTokens read requests. That residual failure mode is answered
// conservatively: a cas whose token was evicted is indistinguishable
// from a stale one and gets EXISTS, exactly like a memcached cas that
// lost the item. Deployments expecting heavy write churn between gets
// and cas should raise Options.MaxTokens (each pin holds one snapshot
// reference, i.e. the cost is deferred line reclamation, not copies).

// tokenPin is one registered snapshot. The registry owns one reference
// on seg until eviction.
type tokenPin struct {
	tok  uint64
	mp   *hds.Map
	seg  segment.Seg
	size uint64
}

// rootKey identifies a pinned snapshot version for dedup: same map, same
// root PLID (and height, so the reused pin's segment is bit-identical)
// ⇒ same content ⇒ same version.
type rootKey struct {
	mp     *hds.Map
	root   word.PLID
	height int
}

type tokenRegistry struct {
	h      *hds.Heap
	mu     sync.Mutex
	m      map[uint64]*list.Element // token → element holding tokenPin
	byRoot map[rootKey]uint64       // live pin per snapshot version
	lru    *list.List               // front = coldest, back = hottest
	next   uint64                   // token counter; 0 is never issued
	cap    int
}

func newTokenRegistry(h *hds.Heap, cap int) *tokenRegistry {
	if cap <= 0 {
		cap = 4096
	}
	return &tokenRegistry{
		h:      h,
		m:      make(map[uint64]*list.Element, cap),
		byRoot: make(map[rootKey]uint64, cap),
		lru:    list.New(),
		cap:    cap,
	}
}

// Register takes ownership of the caller's reference on seg and returns
// a token naming the (mp, seg) snapshot. If that snapshot is already
// pinned, its live token is reused (the caller's duplicate reference is
// released) and the pin moves to the hot end of the LRU; otherwise a
// fresh pin is created and, past the cap, the coldest pin is evicted.
func (r *tokenRegistry) Register(mp *hds.Map, seg segment.Seg, size uint64) uint64 {
	rk := rootKey{mp: mp, root: seg.Root, height: seg.Height}
	r.mu.Lock()
	if tok, ok := r.byRoot[rk]; ok {
		el := r.m[tok]
		r.lru.MoveToBack(el)
		r.mu.Unlock()
		segment.ReleaseSeg(r.h.M, seg) // the pin already holds one
		return tok
	}
	r.next++
	tok := r.next
	r.m[tok] = r.lru.PushBack(tokenPin{tok: tok, mp: mp, seg: seg, size: size})
	r.byRoot[rk] = tok
	var evict tokenPin
	evicted := false
	if r.lru.Len() > r.cap {
		front := r.lru.Front()
		evict = front.Value.(tokenPin)
		r.lru.Remove(front)
		delete(r.m, evict.tok)
		delete(r.byRoot, rootKey{mp: evict.mp, root: evict.seg.Root, height: evict.seg.Height})
		evicted = true
	}
	r.mu.Unlock()
	if evicted {
		segment.ReleaseSeg(r.h.M, evict.seg)
	}
	return tok
}

// Acquire resolves tok to its pin with an extra reference on the
// snapshot for the caller (release with segment.ReleaseSeg), so a
// concurrent eviction cannot pull the root out from under a cas in
// flight.
func (r *tokenRegistry) Acquire(tok uint64) (tokenPin, bool) {
	r.mu.Lock()
	el, ok := r.m[tok]
	if !ok {
		r.mu.Unlock()
		return tokenPin{}, false
	}
	p := el.Value.(tokenPin)
	segment.RetainSeg(r.h.M, p.seg)
	r.mu.Unlock()
	return p, true
}

// Close releases every pinned snapshot.
func (r *tokenRegistry) Close() {
	r.mu.Lock()
	pins := make([]tokenPin, 0, len(r.m))
	for el := r.lru.Front(); el != nil; el = el.Next() {
		pins = append(pins, el.Value.(tokenPin))
	}
	r.m, r.byRoot = map[uint64]*list.Element{}, map[rootKey]uint64{}
	r.lru.Init()
	r.mu.Unlock()
	for _, p := range pins {
		segment.ReleaseSeg(r.h.M, p.seg)
	}
}
