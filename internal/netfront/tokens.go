package netfront

import (
	"sync"

	"repro/internal/hds"
	"repro/internal/segment"
)

// CAS tokens. A memcached cas token names the version of a value a
// client read with gets; the client's later cas succeeds only against
// that version. HICAMP's natural version name is the map snapshot root
// the gets window was served from, so the token registry is a bounded
// table of pinned snapshots: every gets/mget window registers its pinned
// (map, root, size) under a fresh 64-bit token and the token rides every
// VALUE line of the window (one pin serves the whole window, however
// many connections it aggregated). A later cas resolves its token back
// to the pinned root and publishes through Map.CompareApply — the
// merge-rebase CAS — against exactly the version the client saw.
//
// The table is bounded: registering past the cap evicts the oldest pin
// (its snapshot reference is released). A cas whose token was evicted is
// indistinguishable from a stale one and is answered conservatively
// (EXISTS), exactly like a memcached cas that lost the item.

// tokenPin is one registered snapshot. The registry owns one reference
// on seg until eviction.
type tokenPin struct {
	tok  uint64
	mp   *hds.Map
	seg  segment.Seg
	size uint64
}

type tokenRegistry struct {
	h    *hds.Heap
	mu   sync.Mutex
	m    map[uint64]tokenPin
	fifo []uint64 // registration order, for eviction
	next uint64   // token counter; 0 is never issued
	cap  int
}

func newTokenRegistry(h *hds.Heap, cap int) *tokenRegistry {
	if cap <= 0 {
		cap = 4096
	}
	return &tokenRegistry{h: h, m: make(map[uint64]tokenPin, cap), cap: cap}
}

// Register takes ownership of the caller's reference on seg and returns
// its token. The oldest pin is evicted past the cap.
func (r *tokenRegistry) Register(mp *hds.Map, seg segment.Seg, size uint64) uint64 {
	r.mu.Lock()
	r.next++
	tok := r.next
	r.m[tok] = tokenPin{tok: tok, mp: mp, seg: seg, size: size}
	r.fifo = append(r.fifo, tok)
	var evict tokenPin
	evicted := false
	if len(r.m) > r.cap {
		old := r.fifo[0]
		r.fifo = r.fifo[1:]
		evict, evicted = r.m[old], true
		delete(r.m, old)
	}
	r.mu.Unlock()
	if evicted {
		segment.ReleaseSeg(r.h.M, evict.seg)
	}
	return tok
}

// Acquire resolves tok to its pin with an extra reference on the
// snapshot for the caller (release with segment.ReleaseSeg), so a
// concurrent eviction cannot pull the root out from under a cas in
// flight.
func (r *tokenRegistry) Acquire(tok uint64) (tokenPin, bool) {
	r.mu.Lock()
	p, ok := r.m[tok]
	if ok {
		segment.RetainSeg(r.h.M, p.seg)
	}
	r.mu.Unlock()
	return p, ok
}

// Close releases every pinned snapshot.
func (r *tokenRegistry) Close() {
	r.mu.Lock()
	pins := make([]tokenPin, 0, len(r.m))
	for _, p := range r.m {
		pins = append(pins, p)
	}
	r.m, r.fifo = map[uint64]tokenPin{}, nil
	r.mu.Unlock()
	for _, p := range pins {
		segment.ReleaseSeg(r.h.M, p.seg)
	}
}
