package netfront

import (
	"fmt"
	"testing"

	"repro/internal/kvstore"
)

// The protocol layer proper — parse and response formatting — is
// zero-allocation in steady state: commands reuse one Command, responses
// append into caller storage.
func TestParseCommandZeroAlloc(t *testing.T) {
	var cmd Command
	lines := [][]byte{
		[]byte("get alpha beta gamma"),
		[]byte("set k 42 0 100 noreply"),
		[]byte("cas k 1 0 8 991"),
		[]byte("delete k"),
		[]byte("gets a b"),
	}
	ParseCommand(lines[0], &cmd) // warm Keys capacity
	n := testing.AllocsPerRun(200, func() {
		for _, l := range lines {
			if err := ParseCommand(l, &cmd); err != nil {
				t.Fatal(err)
			}
		}
	})
	if n != 0 {
		t.Fatalf("ParseCommand allocs/run = %v, want 0", n)
	}
}

func TestAppendValueZeroAlloc(t *testing.T) {
	dst := make([]byte, 0, 4096)
	key, data := []byte("some-key"), []byte("some-value-payload")
	n := testing.AllocsPerRun(200, func() {
		d := AppendValue(dst, key, 42, data, 1234, true)
		d = appendStat(d, "cmd_get", 99)
		_ = d
	})
	if n != 0 {
		t.Fatalf("response formatting allocs/run = %v, want 0", n)
	}
}

// The aggregated serve loop's steady state is allocation-pinned: one
// flush window of pipelined gets and sets (the hot mix) may allocate
// only the store-side result slices, bounded per op. Regressions that
// add per-op or per-key garbage in the dispatcher trip this.
func TestBatchExecSteadyStateAllocs(t *testing.T) {
	s := NewServer(kvstore.NewHicampServer(testCfg()), DefaultOptions())
	defer s.Close()
	d := s.disp

	const ops, keysPerOp = 16, 4
	keys := make([][]byte, ops*keysPerOp)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("alloc-key-%03d", i))
		if err := s.store.Set(keys[i], []byte(fmt.Sprintf("alloc-val-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	val := []byte("steady-state-value")

	runWindow := func() {
		var batch [ops]*op
		var cmd Command
		for i := 0; i < ops; i++ {
			cmd.Reset()
			if i%2 == 0 {
				cmd.Op = OpGet
				for k := 0; k < keysPerOp; k++ {
					cmd.Keys = append(cmd.Keys, keys[(i*keysPerOp+k)%len(keys)])
				}
				batch[i] = newOp(classRead, &cmd)
			} else {
				cmd.Op = OpSet
				cmd.Keys = append(cmd.Keys, keys[i*keysPerOp])
				o := newOp(classWrite, &cmd)
				o.val = bufPool.GetBuf(frameLen + len(val))
				copy(o.val.S[frameLen:], val)
				batch[i] = o
			}
		}
		d.execBatch(batch[:])
		for _, o := range batch {
			<-o.ready
			o.release()
		}
	}
	runWindow() // warm every pool

	n := testing.AllocsPerRun(50, runWindow)
	perOp := n / ops
	// Budget: the dispatcher machinery itself is pooled (ops, buffers,
	// window groups, gather scratch, materialization storage — its flat
	// allocation count is ~1/window in the profile). What remains is the
	// simulated machine underneath: cache-model metadata, segment-builder
	// canonicalization, and wave-commit nodes, measured at ~10.5/op.
	// 12/op pins the front end's shape — per-op or per-key garbage added
	// to the dispatcher trips this — without flaking on runtime noise.
	if perOp > 12 {
		t.Fatalf("batched serve loop allocs: %.1f/window, %.2f/op (budget 12/op)", n, perOp)
	}
}
